// Package gnn implements the StreamTune GNN-based dataflow encoder: a
// message-passing network over logical dataflow DAGs trained on the
// operator-level bottleneck classification task.
//
// Each layer aggregates the mean of upstream and downstream neighbor
// states with separate weights (dataflow direction matters) and applies
// a shared update. Following the paper's parallelism-handling strategy
// ("parallelism is incorporated into the model only after all other
// features are encoded"), the FUSE transform of Eq. 3 injects the
// normalized parallelism degree once, after the final message-passing
// iteration, preserving dimensionality. The pre-FUSE node states are the
// parallelism-agnostic embeddings used during online fine-tuning; the
// post-FUSE states feed the prediction head, so pre-training shapes the
// agnostic embeddings to carry exactly the signal the fine-tuned
// [embedding, parallelism] classifier needs.
//
// A two-layer MLP head with a sigmoid produces per-operator bottleneck
// probabilities during pre-training.
package gnn

import (
	"fmt"
	"math/rand"
	"sync"

	"github.com/streamtune/streamtune/internal/dag"
	"github.com/streamtune/streamtune/internal/nn"
)

// Config parameterizes an Encoder.
type Config struct {
	// Hidden is the node-state width.
	Hidden int
	// Layers is the number of message-passing iterations.
	Layers int
	// PMax normalizes parallelism degrees into [0,1].
	PMax int
	// Seed drives weight initialization.
	Seed int64
}

// DefaultConfig returns the encoder configuration used throughout the
// reproduction.
func DefaultConfig() Config {
	return Config{Hidden: 32, Layers: 2, PMax: 100, Seed: 1}
}

// Encoder is the GNN encoder plus its pre-training prediction head.
type Encoder struct {
	cfg Config

	input *nn.Linear   // feature projection
	selfW []*nn.Linear // per-layer self transform
	upW   []*nn.Linear // per-layer upstream aggregation transform
	downW []*nn.Linear // per-layer downstream aggregation transform
	fuse  *nn.Linear   // FUSE (hidden+1 -> hidden), applied after the last layer
	head  *nn.MLP      // bottleneck prediction head

	// plans pools compiled execution plans by shape (see plan.go).
	plans sync.Map // planKey -> *sync.Pool of *encPlan
}

// NewEncoder creates a randomly initialized encoder.
func NewEncoder(cfg Config) *Encoder {
	if cfg.Hidden <= 0 || cfg.Layers <= 0 {
		panic(fmt.Sprintf("gnn: invalid config %+v", cfg))
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	e := &Encoder{cfg: cfg}
	e.input = nn.NewLinear(dag.FeatureDim, cfg.Hidden, rng)
	for l := 0; l < cfg.Layers; l++ {
		e.selfW = append(e.selfW, nn.NewLinear(cfg.Hidden, cfg.Hidden, rng))
		e.upW = append(e.upW, nn.NewLinear(cfg.Hidden, cfg.Hidden, rng))
		e.downW = append(e.downW, nn.NewLinear(cfg.Hidden, cfg.Hidden, rng))
	}
	e.fuse = nn.NewLinear(cfg.Hidden+1, cfg.Hidden, rng)
	e.head = nn.NewMLP(rng, cfg.Hidden, cfg.Hidden/2, 1)
	return e
}

// Config returns the encoder configuration.
func (e *Encoder) Config() Config { return e.cfg }

// Params returns all trainable parameters including the prediction head.
func (e *Encoder) Params() []*nn.Node {
	ps := e.input.Params()
	for l := 0; l < e.cfg.Layers; l++ {
		ps = append(ps, e.selfW[l].Params()...)
		ps = append(ps, e.upW[l].Params()...)
		ps = append(ps, e.downW[l].Params()...)
	}
	ps = append(ps, e.fuse.Params()...)
	return append(ps, e.head.Params()...)
}

// aggMatrices builds the row-normalized upstream and downstream
// aggregation matrices of g.
func aggMatrices(g *dag.Graph) (up, down *nn.Matrix) {
	n := g.NumOperators()
	up = nn.NewMatrix(n, n)
	down = nn.NewMatrix(n, n)
	for v := 0; v < n; v++ {
		ups := g.Upstream(v)
		for _, u := range ups {
			up.Set(v, u, 1/float64(len(ups)))
		}
		downs := g.Downstream(v)
		for _, d := range downs {
			down.Set(v, d, 1/float64(len(downs)))
		}
	}
	return up, down
}

// Forward encodes g and returns (embeddings, bottleneckProbs) as graph
// nodes of shape n x Hidden and n x 1. If par is non-nil it must assign
// a parallelism to every operator, the encoder runs in parallelism-aware
// mode, and the returned embeddings are the post-FUSE states feeding the
// head; if nil, the returned embeddings are parallelism-agnostic.
//
// Forward builds an eager autodiff graph per call and is deliberately
// kept at its seed implementation: it is the differential oracle and
// the nn-bench baseline for the compiled plan paths (Infer,
// InferSession, the batched Pretrain). Hot paths should use those
// instead.
func (e *Encoder) Forward(g *dag.Graph, par map[string]int) (*nn.Node, *nn.Node, error) {
	n := g.NumOperators()
	if n == 0 {
		return nil, nil, fmt.Errorf("gnn: empty graph %q", g.Name)
	}
	var pvec *nn.Node
	if par != nil {
		pv := nn.NewMatrix(n, 1)
		for i, op := range g.Operators() {
			p, ok := par[op.ID]
			if !ok {
				return nil, nil, fmt.Errorf("gnn: missing parallelism for %q", op.ID)
			}
			pv.Set(i, 0, dag.NormalizeParallelism(p, e.cfg.PMax))
		}
		pvec = nn.Leaf(pv)
	}

	x := nn.Leaf(nn.FromRows(dag.GraphFeatures(g)))
	upM, downM := aggMatrices(g)
	up, down := nn.Leaf(upM), nn.Leaf(downM)

	h := nn.ReLU(e.input.Forward(x))
	for l := 0; l < e.cfg.Layers; l++ {
		agg := nn.Add(e.selfW[l].Forward(h),
			nn.Add(e.upW[l].Forward(nn.MatMul(up, h)),
				e.downW[l].Forward(nn.MatMul(down, h))))
		h = nn.ReLU(agg)
	}
	// Eq. 3: fuse parallelism after all other features are encoded. The
	// pre-FUSE h is the parallelism-agnostic embedding.
	headIn := h
	if pvec != nil {
		headIn = nn.ReLU(e.fuse.Forward(nn.ConcatCols(h, pvec)))
	}
	probs := nn.Sigmoid(e.head.Forward(headIn))
	return headIn, probs, nil
}

// Embeddings returns the parallelism-agnostic embedding of every
// operator of g (by graph index), detached from the autodiff graph. It
// runs on the grad-free plan path.
func (e *Encoder) Embeddings(g *dag.Graph) ([][]float64, error) {
	embs, _, err := e.Infer(g, nil)
	return embs, err
}

// PredictBottleneck returns per-operator bottleneck probabilities under
// the given deployment. It runs on the grad-free plan path.
func (e *Encoder) PredictBottleneck(g *dag.Graph, par map[string]int) ([]float64, error) {
	_, probs, err := e.Infer(g, par)
	return probs, err
}

// MarshalParams serializes the encoder weights.
func (e *Encoder) MarshalParams() ([]byte, error) { return nn.MarshalParams(e.Params()) }

// UnmarshalParams restores encoder weights produced by MarshalParams on
// an encoder with identical configuration.
func (e *Encoder) UnmarshalParams(data []byte) error { return nn.UnmarshalParams(data, e.Params()) }
