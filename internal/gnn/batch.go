package gnn

import (
	"fmt"

	"github.com/streamtune/streamtune/internal/dag"
	"github.com/streamtune/streamtune/internal/nn"
)

// Grad-free batched inference entry points. The serving path coalesces
// concurrent tenants whose jobs share a structural fingerprint onto one
// block-diagonal plan execution, the same idiom Pretrain uses for
// training batches. Every forward kernel is row-independent given the
// block-diagonal aggregation matrices, so each block's results are
// bit-identical to a blocks=1 replay of the same graph (enforced by the
// differential tests in batch_test.go).

// Graph returns the session's target graph.
func (s *InferSession) Graph() *dag.Graph { return s.g }

// NewInferSessions runs the parallelism-agnostic forward for several
// graphs sharing one structure as a single block-diagonal plan
// execution and returns one InferSession per graph, in input order.
// The graphs must share aggregation structure (same fingerprint — the
// caller batches per fingerprint); features may differ freely, which is
// exactly the serving-time population of rate-perturbed clones. Each
// returned session is indistinguishable from one built by
// NewInferSession on the same graph.
func (e *Encoder) NewInferSessions(graphs []*dag.Graph) ([]*InferSession, error) {
	if len(graphs) == 0 {
		return nil, nil
	}
	if len(graphs) == 1 {
		s, err := e.NewInferSession(graphs[0])
		if err != nil {
			return nil, err
		}
		return []*InferSession{s}, nil
	}
	n := graphs[0].NumOperators()
	if n == 0 {
		return nil, fmt.Errorf("gnn: empty graph %q", graphs[0].Name)
	}
	st := structureOf(graphs[0])
	for _, g := range graphs[1:] {
		if g.NumOperators() != n || structureOf(g) != st {
			return nil, fmt.Errorf("gnn: graphs %q and %q do not share a structure", graphs[0].Name, g.Name)
		}
	}
	key := planKey{n: n, blocks: len(graphs), par: false, kind: planInfer}
	ep := e.getPlan(key)
	defer e.putPlan(key, ep)
	ep.plan.BindConst(ep.up, st.up)
	ep.plan.BindConst(ep.down, st.down)
	for b, g := range graphs {
		fillFeatures(ep.plan, ep.x, g, b)
	}
	ep.plan.Forward()
	emb := ep.plan.Value(ep.emb)
	probs := ep.plan.Value(ep.probs)
	hidden := emb.Cols
	out := make([]*InferSession, len(graphs))
	for b, g := range graphs {
		h := nn.NewMatrix(n, hidden)
		copy(h.Data, emb.Data[b*n*hidden:(b+1)*n*hidden])
		out[b] = &InferSession{enc: e, g: g, n: n,
			h:     h,
			embs:  matRows(h),
			probs: append([]float64(nil), probs.Data[b*n:(b+1)*n]...),
		}
	}
	return out, nil
}

// ProbsBatch predicts per-operator bottleneck probabilities under every
// assignment in pars with one FUSE + head replay: the session's cached
// states are tiled across blocks and each block gets its own
// parallelism vector. Results match calling Probs once per assignment,
// bit for bit, in input order.
func (s *InferSession) ProbsBatch(pars []map[string]int) ([][]float64, error) {
	if len(pars) == 0 {
		return nil, nil
	}
	if len(pars) == 1 {
		p, err := s.Probs(pars[0])
		if err != nil {
			return nil, err
		}
		return [][]float64{p}, nil
	}
	key := planKey{n: s.n, blocks: len(pars), par: true, kind: planFuse}
	ep := s.enc.getPlan(key)
	defer s.enc.putPlan(key, ep)
	xd := ep.plan.InputData(ep.x)
	stride := len(s.h.Data)
	for b, par := range pars {
		copy(xd[b*stride:(b+1)*stride], s.h.Data)
		if err := fillParallelism(ep.plan, ep.pvec, s.g, par, s.enc.cfg.PMax, b); err != nil {
			return nil, err
		}
	}
	ep.plan.Forward()
	flat := ep.plan.Value(ep.probs).Data
	out := make([][]float64, len(pars))
	for b := range pars {
		out[b] = append([]float64(nil), flat[b*s.n:(b+1)*s.n]...)
	}
	return out, nil
}
