package gnn

import (
	"fmt"

	"github.com/streamtune/streamtune/internal/history"
	"github.com/streamtune/streamtune/internal/nn"
)

// TrainOptions configures supervised pre-training of an encoder on
// bottleneck-labeled execution histories.
type TrainOptions struct {
	Epochs       int
	LearningRate float64
	// BatchSize is the number of executions whose gradients are
	// accumulated before each optimizer step.
	BatchSize int
}

// DefaultTrainOptions returns the pre-training hyperparameters used in
// the reproduction.
func DefaultTrainOptions() TrainOptions {
	return TrainOptions{Epochs: 30, LearningRate: 5e-3, BatchSize: 8}
}

// Pretrain trains a fresh encoder on the corpus with the binary
// cross-entropy objective over labeled operators (paper §IV-A) and
// returns it along with the per-epoch mean training loss.
func Pretrain(corpus *history.Corpus, cfg Config, opts TrainOptions) (*Encoder, []float64, error) {
	if corpus.Len() == 0 {
		return nil, nil, fmt.Errorf("gnn: empty corpus")
	}
	if opts.Epochs <= 0 || opts.BatchSize <= 0 || opts.LearningRate <= 0 {
		return nil, nil, fmt.Errorf("gnn: invalid train options %+v", opts)
	}
	enc := NewEncoder(cfg)
	opt := nn.NewAdam(enc.Params(), opts.LearningRate)

	// Positive-class weight counteracting label imbalance (bottleneck
	// labels are sparse: Algorithm 1 labels only the backpressure
	// frontier).
	var n0, n1 float64
	for _, ex := range corpus.Executions {
		for _, l := range ex.Labels {
			switch l {
			case 0:
				n0++
			case 1:
				n1++
			}
		}
	}
	posWeight := 1.0
	if n1 > 0 {
		posWeight = n0 / n1
		if posWeight > 15 {
			posWeight = 15
		}
		if posWeight < 1 {
			posWeight = 1
		}
	}

	var losses []float64
	for ep := 0; ep < opts.Epochs; ep++ {
		total, batches := 0.0, 0
		inBatch := 0
		for _, ex := range corpus.Executions {
			_, probs, err := enc.Forward(ex.Graph, ex.Parallelism)
			if err != nil {
				return nil, nil, fmt.Errorf("gnn: forward %s: %w", ex.Graph.Name, err)
			}
			loss := nn.MaskedBCEWeighted(probs, ex.Labels, posWeight)
			if loss.Val.Data[0] == 0 && allUnlabeled(ex.Labels) {
				continue
			}
			nn.Backward(loss)
			total += loss.Val.Data[0]
			batches++
			inBatch++
			if inBatch >= opts.BatchSize {
				opt.Step()
				inBatch = 0
			}
		}
		if inBatch > 0 {
			opt.Step()
		}
		if batches == 0 {
			return nil, nil, fmt.Errorf("gnn: corpus has no labeled operators")
		}
		losses = append(losses, total/float64(batches))
	}
	return enc, losses, nil
}

func allUnlabeled(labels []int) bool {
	for _, l := range labels {
		if l >= 0 {
			return false
		}
	}
	return true
}

// BalancedAccuracy evaluates the mean of per-class recalls on the
// corpus's labeled operators at a 0.5 threshold. A majority-class
// predictor scores 0.5 regardless of imbalance.
func BalancedAccuracy(enc *Encoder, corpus *history.Corpus) (float64, error) {
	var tp, fn, tn, fp float64
	for _, ex := range corpus.Executions {
		probs, err := enc.PredictBottleneck(ex.Graph, ex.Parallelism)
		if err != nil {
			return 0, err
		}
		for i, l := range ex.Labels {
			if l < 0 {
				continue
			}
			pred := probs[i] >= 0.5
			switch {
			case l == 1 && pred:
				tp++
			case l == 1:
				fn++
			case pred:
				fp++
			default:
				tn++
			}
		}
	}
	if tp+fn == 0 || tn+fp == 0 {
		return 0, fmt.Errorf("gnn: corpus lacks a class for balanced accuracy")
	}
	return (tp/(tp+fn) + tn/(tn+fp)) / 2, nil
}

// Accuracy evaluates classification accuracy of the encoder on the
// corpus's labeled operators at a 0.5 threshold.
func Accuracy(enc *Encoder, corpus *history.Corpus) (float64, error) {
	correct, total := 0, 0
	for _, ex := range corpus.Executions {
		probs, err := enc.PredictBottleneck(ex.Graph, ex.Parallelism)
		if err != nil {
			return 0, err
		}
		for i, l := range ex.Labels {
			if l < 0 {
				continue
			}
			pred := 0
			if probs[i] >= 0.5 {
				pred = 1
			}
			if pred == l {
				correct++
			}
			total++
		}
	}
	if total == 0 {
		return 0, fmt.Errorf("gnn: no labeled operators to evaluate")
	}
	return float64(correct) / float64(total), nil
}
