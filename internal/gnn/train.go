package gnn

import (
	"fmt"

	"github.com/streamtune/streamtune/internal/dag"
	"github.com/streamtune/streamtune/internal/history"
	"github.com/streamtune/streamtune/internal/nn"
)

// TrainOptions configures supervised pre-training of an encoder on
// bottleneck-labeled execution histories.
type TrainOptions struct {
	Epochs       int
	LearningRate float64
	// BatchSize is the number of executions whose gradients are
	// accumulated before each optimizer step.
	BatchSize int
}

// DefaultTrainOptions returns the pre-training hyperparameters used in
// the reproduction.
func DefaultTrainOptions() TrainOptions {
	return TrainOptions{Epochs: 30, LearningRate: 5e-3, BatchSize: 8}
}

// posWeightOf computes the positive-class weight counteracting label
// imbalance (bottleneck labels are sparse: Algorithm 1 labels only the
// backpressure frontier).
func posWeightOf(corpus *history.Corpus) float64 {
	var n0, n1 float64
	for _, ex := range corpus.Executions {
		for _, l := range ex.Labels {
			switch l {
			case 0:
				n0++
			case 1:
				n1++
			}
		}
	}
	posWeight := 1.0
	if n1 > 0 {
		posWeight = n0 / n1
		if posWeight > 15 {
			posWeight = 15
		}
		if posWeight < 1 {
			posWeight = 1
		}
	}
	return posWeight
}

// GroupByStructure returns a copy of the corpus whose executions are
// stably reordered into structural-fingerprint groups, groups ordered
// by first appearance. This is exactly the order the batched Pretrain
// trains in, so PretrainEager on the grouped corpus is the seed oracle
// for Pretrain on the original one (the differential tests and the
// nn-bench cross-check both lean on this).
func GroupByStructure(corpus *history.Corpus) *history.Corpus {
	var order []string
	groups := make(map[string][]history.Execution)
	for _, ex := range corpus.Executions {
		key := structureOf(ex.Graph).key
		if _, ok := groups[key]; !ok {
			order = append(order, key)
		}
		groups[key] = append(groups[key], ex)
	}
	out := &history.Corpus{}
	for _, k := range order {
		out.Executions = append(out.Executions, groups[k]...)
	}
	return out
}

// execPrep is one labeled execution prepared for batched training: its
// cached structure, flat feature and parallelism encodings, and labels.
type execPrep struct {
	st     *structure
	graph  string
	feats  []float64
	pvec   []float64
	labels []int
}

// prepExecutions encodes the corpus once in GroupByStructure order,
// dropping executions without a single labeled operator (the training
// loop skips them anyway). Consecutive runs of equal structures then
// batch into block-diagonal plan replays.
func prepExecutions(corpus *history.Corpus, pmax int) ([]execPrep, error) {
	var seq []execPrep
	for _, ex := range GroupByStructure(corpus).Executions {
		if ex.Graph.NumOperators() == 0 {
			return nil, fmt.Errorf("gnn: %s: empty graph", ex.Graph.Name)
		}
		if allUnlabeled(ex.Labels) {
			continue
		}
		st := structureOf(ex.Graph)
		prep := execPrep{st: st, graph: ex.Graph.Name, labels: ex.Labels}
		n := ex.Graph.NumOperators()
		prep.feats = make([]float64, 0, n*dag.FeatureDim)
		prep.pvec = make([]float64, n)
		for i, op := range ex.Graph.Operators() {
			prep.feats = dag.FeatureVectorInto(op, prep.feats)
			p, ok := ex.Parallelism[op.ID]
			if !ok {
				return nil, fmt.Errorf("gnn: %s: missing parallelism for %q", ex.Graph.Name, op.ID)
			}
			prep.pvec[i] = dag.NormalizeParallelism(p, pmax)
		}
		seq = append(seq, prep)
	}
	return seq, nil
}

// Pretrain trains a fresh encoder on the corpus with the binary
// cross-entropy objective over labeled operators (paper §IV-A) and
// returns it along with the per-epoch mean training loss.
//
// Training runs on the compiled engine: executions are reordered into
// GroupByStructure order, consecutive same-structure executions are
// packed into block-diagonal batched plan replays (never spanning an
// optimizer-step boundary), and every replay reuses pooled buffers.
// The result is bit-identical to PretrainEager on the same
// structure-grouped corpus — the differential tests in seed_test.go
// hold the two paths equal. Note the reorder itself is a deliberate
// semantic change: on a corpus whose executions interleave structures,
// trained weights differ numerically from the seed loop run in raw
// corpus order (gradient batches form in a different sequence), the
// same way any batching reorder would.
func Pretrain(corpus *history.Corpus, cfg Config, opts TrainOptions) (*Encoder, []float64, error) {
	if corpus.Len() == 0 {
		return nil, nil, fmt.Errorf("gnn: empty corpus")
	}
	if opts.Epochs <= 0 || opts.BatchSize <= 0 || opts.LearningRate <= 0 {
		return nil, nil, fmt.Errorf("gnn: invalid train options %+v", opts)
	}
	enc := NewEncoder(cfg)
	opt := nn.NewAdam(enc.Params(), opts.LearningRate)
	posWeight := posWeightOf(corpus)

	seq, err := prepExecutions(corpus, cfg.PMax)
	if err != nil {
		return nil, nil, err
	}
	if len(seq) == 0 {
		return nil, nil, fmt.Errorf("gnn: corpus has no labeled operators")
	}

	maxRows := 0
	for _, p := range seq {
		if r := p.st.n * opts.BatchSize; r > maxRows {
			maxRows = r
		}
	}
	labelBuf := make([]int, 0, maxRows)

	var losses []float64
	for ep := 0; ep < opts.Epochs; ep++ {
		total, batches := 0.0, 0
		inBatch := 0
		for i := 0; i < len(seq); {
			// One chunk: consecutive executions sharing a structure,
			// capped so the chunk never crosses a step boundary.
			st := seq[i].st
			j := i + 1
			for j < len(seq) && j-i < opts.BatchSize-inBatch && seq[j].st == st {
				j++
			}
			blocks := j - i
			n := st.n

			key := planKey{n: n, blocks: blocks, par: true, kind: planTrain}
			epn := enc.getPlan(key)
			epn.plan.BindConst(epn.up, st.up)
			epn.plan.BindConst(epn.down, st.down)
			xd := epn.plan.InputData(epn.x)
			pd := epn.plan.InputData(epn.pvec)
			labelBuf = labelBuf[:0]
			for b := 0; b < blocks; b++ {
				prep := seq[i+b]
				copy(xd[b*len(prep.feats):], prep.feats)
				copy(pd[b*n:], prep.pvec)
				labelBuf = append(labelBuf, prep.labels...)
			}
			epn.plan.SetLabels(labelBuf, posWeight)
			epn.plan.Forward()
			for _, lv := range epn.plan.Losses() {
				total += lv
			}
			batches += blocks
			epn.plan.Backward()
			enc.putPlan(key, epn)

			inBatch += blocks
			if inBatch >= opts.BatchSize {
				opt.Step()
				inBatch = 0
			}
			i = j
		}
		if inBatch > 0 {
			opt.Step()
		}
		losses = append(losses, total/float64(batches))
	}
	return enc, losses, nil
}

// PretrainEager is the seed pre-training loop: one eager autodiff graph
// per execution in corpus order. It is retained verbatim as the
// differential-test oracle and the nn-bench baseline for the batched
// Pretrain above; everything else should call Pretrain.
func PretrainEager(corpus *history.Corpus, cfg Config, opts TrainOptions) (*Encoder, []float64, error) {
	if corpus.Len() == 0 {
		return nil, nil, fmt.Errorf("gnn: empty corpus")
	}
	if opts.Epochs <= 0 || opts.BatchSize <= 0 || opts.LearningRate <= 0 {
		return nil, nil, fmt.Errorf("gnn: invalid train options %+v", opts)
	}
	enc := NewEncoder(cfg)
	opt := nn.NewAdam(enc.Params(), opts.LearningRate)
	posWeight := posWeightOf(corpus)

	var losses []float64
	for ep := 0; ep < opts.Epochs; ep++ {
		total, batches := 0.0, 0
		inBatch := 0
		for _, ex := range corpus.Executions {
			_, probs, err := enc.Forward(ex.Graph, ex.Parallelism)
			if err != nil {
				return nil, nil, fmt.Errorf("gnn: forward %s: %w", ex.Graph.Name, err)
			}
			loss := nn.MaskedBCEWeighted(probs, ex.Labels, posWeight)
			if loss.Val.Data[0] == 0 && allUnlabeled(ex.Labels) {
				continue
			}
			nn.Backward(loss)
			total += loss.Val.Data[0]
			batches++
			inBatch++
			if inBatch >= opts.BatchSize {
				opt.Step()
				inBatch = 0
			}
		}
		if inBatch > 0 {
			opt.Step()
		}
		if batches == 0 {
			return nil, nil, fmt.Errorf("gnn: corpus has no labeled operators")
		}
		losses = append(losses, total/float64(batches))
	}
	return enc, losses, nil
}

func allUnlabeled(labels []int) bool {
	for _, l := range labels {
		if l >= 0 {
			return false
		}
	}
	return true
}

// BalancedAccuracy evaluates the mean of per-class recalls on the
// corpus's labeled operators at a 0.5 threshold. A majority-class
// predictor scores 0.5 regardless of imbalance.
func BalancedAccuracy(enc *Encoder, corpus *history.Corpus) (float64, error) {
	var tp, fn, tn, fp float64
	for _, ex := range corpus.Executions {
		probs, err := enc.PredictBottleneck(ex.Graph, ex.Parallelism)
		if err != nil {
			return 0, err
		}
		for i, l := range ex.Labels {
			if l < 0 {
				continue
			}
			pred := probs[i] >= 0.5
			switch {
			case l == 1 && pred:
				tp++
			case l == 1:
				fn++
			case pred:
				fp++
			default:
				tn++
			}
		}
	}
	if tp+fn == 0 || tn+fp == 0 {
		return 0, fmt.Errorf("gnn: corpus lacks a class for balanced accuracy")
	}
	return (tp/(tp+fn) + tn/(tn+fp)) / 2, nil
}

// Accuracy evaluates classification accuracy of the encoder on the
// corpus's labeled operators at a 0.5 threshold.
func Accuracy(enc *Encoder, corpus *history.Corpus) (float64, error) {
	correct, total := 0, 0
	for _, ex := range corpus.Executions {
		probs, err := enc.PredictBottleneck(ex.Graph, ex.Parallelism)
		if err != nil {
			return 0, err
		}
		for i, l := range ex.Labels {
			if l < 0 {
				continue
			}
			pred := 0
			if probs[i] >= 0.5 {
				pred = 1
			}
			if pred == l {
				correct++
			}
			total++
		}
	}
	if total == 0 {
		return 0, fmt.Errorf("gnn: no labeled operators to evaluate")
	}
	return float64(correct) / float64(total), nil
}
