package gnn

import (
	"sync"

	"github.com/streamtune/streamtune/internal/dag"
	"github.com/streamtune/streamtune/internal/ged"
	"github.com/streamtune/streamtune/internal/nn"
)

// structure holds the precomputed message-passing view of one distinct
// DAG shape: the row-normalized upstream and downstream aggregation
// matrices. StreamTune corpora are perturbed clones of a few query
// templates, so most executions share a handful of structures; caching
// by the canonical structural fingerprint of PR 2 (ged.Fingerprint
// covers operator types plus adjacency, a superset of what aggregation
// depends on) builds each view once per process instead of once per
// forward pass. Cached matrices are immutable and shared by every
// encoder and plan replay, including concurrent ones.
type structure struct {
	key      string
	n        int
	up, down *nn.Matrix
}

// structCache maps ged.Fingerprint -> *structure. Corpora hold at most
// a few hundred distinct structures, so the cache is unbounded.
var structCache sync.Map

// structureOf returns the cached aggregation view of g, computing and
// publishing it on first sight of the structure.
func structureOf(g *dag.Graph) *structure {
	key := ged.Fingerprint(g)
	if v, ok := structCache.Load(key); ok {
		return v.(*structure)
	}
	up, down := aggMatrices(g)
	st := &structure{key: key, n: g.NumOperators(), up: up, down: down}
	v, _ := structCache.LoadOrStore(key, st)
	return v.(*structure)
}

// Structure is the exported view of a cached aggregation structure, for
// consumers (such as the ZeroTune cost model) that bind encoder plans
// themselves. The matrices are shared and immutable.
type Structure struct {
	Up, Down *nn.Matrix
}

// StructureOf returns the cached row-normalized aggregation matrices of
// g, keyed by its structural fingerprint.
func StructureOf(g *dag.Graph) Structure {
	st := structureOf(g)
	return Structure{Up: st.up, Down: st.down}
}
