package gnn

// Differential tests holding the block-diagonal batched inference
// entry points (NewInferSessions, ProbsBatch) bit-identical to the
// single-graph paths they coalesce — the serving-time counterpart of
// seed_test.go's training-batch guarantees.

import (
	"testing"

	"github.com/streamtune/streamtune/internal/dag"
)

// rateVariants returns same-structure clones of g whose source rates
// (and therefore feature vectors) differ — the serving population the
// cross-tenant batcher coalesces.
func rateVariants(g *dag.Graph, rates ...float64) []*dag.Graph {
	out := make([]*dag.Graph, len(rates))
	for i, r := range rates {
		c := g.Clone()
		c.ScaleSourceRates(r)
		out[i] = c
	}
	return out
}

// TestNewInferSessionsMatchesSingle demands bitwise agreement between
// sessions created through one batched block-diagonal forward and
// sessions created one graph at a time, including the FUSE replays
// performed through them afterwards.
func TestNewInferSessionsMatchesSingle(t *testing.T) {
	enc := NewEncoder(DefaultConfig())
	for _, g := range seedTestGraphs(t) {
		variants := rateVariants(g, 1, 3, 7, 9)
		batched, err := enc.NewInferSessions(variants)
		if err != nil {
			t.Fatal(err)
		}
		if len(batched) != len(variants) {
			t.Fatalf("got %d sessions, want %d", len(batched), len(variants))
		}
		for i, v := range variants {
			single, err := enc.NewInferSession(v)
			if err != nil {
				t.Fatal(err)
			}
			if batched[i].Graph() != v {
				t.Fatalf("session %d bound to wrong graph", i)
			}
			sameFloats(t, "agnostic probs", batched[i].AgnosticProbs(), single.AgnosticProbs())
			be, se := batched[i].Embeddings(), single.Embeddings()
			for r := range se {
				sameFloats(t, "embedding row", be[r], se[r])
			}
			for _, p := range []int{1, 5, 37} {
				bp, err := batched[i].Probs(parAll(v, p))
				if err != nil {
					t.Fatal(err)
				}
				sp, err := single.Probs(parAll(v, p))
				if err != nil {
					t.Fatal(err)
				}
				sameFloats(t, "session probs", bp, sp)
			}
		}
	}
}

// TestNewInferSessionsValidation pins the edge cases: empty input,
// single-graph delegation, and structure mismatches.
func TestNewInferSessionsValidation(t *testing.T) {
	enc := NewEncoder(DefaultConfig())
	if out, err := enc.NewInferSessions(nil); err != nil || out != nil {
		t.Fatalf("empty input: got (%v, %v), want (nil, nil)", out, err)
	}
	gs := seedTestGraphs(t)
	one, err := enc.NewInferSessions(gs[:1])
	if err != nil || len(one) != 1 {
		t.Fatalf("single graph: got (%d sessions, %v)", len(one), err)
	}
	if _, err := enc.NewInferSessions([]*dag.Graph{gs[0], gs[1]}); err == nil {
		t.Fatal("expected structure-mismatch error")
	}
	if _, err := enc.NewInferSessions([]*dag.Graph{dag.New("empty"), dag.New("empty")}); err == nil {
		t.Fatal("expected empty-graph error")
	}
}

// TestProbsBatchMatchesProbs holds the batched FUSE grid bit-identical
// to sequential Probs calls — the distillation fast path.
func TestProbsBatchMatchesProbs(t *testing.T) {
	enc := NewEncoder(DefaultConfig())
	for _, g := range seedTestGraphs(t) {
		sess, err := enc.NewInferSession(g)
		if err != nil {
			t.Fatal(err)
		}
		grid := []int{1, 2, 3, 5, 8, 13, 21, 34, 55, 89}
		pars := make([]map[string]int, len(grid))
		for i, p := range grid {
			pars[i] = parAll(g, p)
		}
		batched, err := sess.ProbsBatch(pars)
		if err != nil {
			t.Fatal(err)
		}
		if len(batched) != len(pars) {
			t.Fatalf("got %d result rows, want %d", len(batched), len(pars))
		}
		for i, par := range pars {
			want, err := sess.Probs(par)
			if err != nil {
				t.Fatal(err)
			}
			sameFloats(t, "batched probs", batched[i], want)
		}
	}
	sess, err := enc.NewInferSession(seedTestGraphs(t)[0])
	if err != nil {
		t.Fatal(err)
	}
	if out, err := sess.ProbsBatch(nil); err != nil || out != nil {
		t.Fatalf("empty grid: got (%v, %v), want (nil, nil)", out, err)
	}
	if _, err := sess.ProbsBatch([]map[string]int{{}, {}}); err == nil {
		t.Fatal("expected missing-parallelism error")
	}
}
