package gnn

// Differential tests holding the compiled plan paths (Infer,
// InferSession, batched Pretrain) bit-identical to the seed
// implementation, following the internal/ged/seed_test.go precedent.
// The seed here is not a copy: Forward and PretrainEager ARE the
// unchanged seed code, deliberately retained as the oracle and as the
// nn-bench baseline (see their doc comments) — these tests are what
// keeps them honest.

import (
	"bytes"
	"math"
	"sync"
	"testing"

	"github.com/streamtune/streamtune/internal/dag"
	"github.com/streamtune/streamtune/internal/engine"
	"github.com/streamtune/streamtune/internal/ged"
	"github.com/streamtune/streamtune/internal/history"
	"github.com/streamtune/streamtune/internal/nexmark"
	"github.com/streamtune/streamtune/internal/pqp"
)

func seedTestGraphs(t testing.TB) []*dag.Graph {
	var gs []*dag.Graph
	for _, q := range []nexmark.Query{nexmark.Q1, nexmark.Q3, nexmark.Q5, nexmark.Q8} {
		g, err := nexmark.Build(q, engine.Flink)
		if err != nil {
			t.Fatal(err)
		}
		gs = append(gs, g)
	}
	for _, tmpl := range []pqp.Template{pqp.Linear, pqp.TwoWayJoin} {
		g, err := pqp.Build(tmpl, 2)
		if err != nil {
			t.Fatal(err)
		}
		gs = append(gs, g)
	}
	return gs
}

func parAll(g *dag.Graph, p int) map[string]int {
	out := make(map[string]int, g.NumOperators())
	for _, op := range g.Operators() {
		out[op.ID] = p
	}
	return out
}

func sameFloats(t *testing.T, what string, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d values, want %d", what, len(got), len(want))
	}
	for i := range want {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("%s[%d] = %v, want %v (bit difference)", what, i, got[i], want[i])
		}
	}
}

// TestInferMatchesSeedForward holds the grad-free plan path
// bit-identical to the seed eager Forward across graphs, parallelism
// modes, and repeated (pool-reusing) calls.
func TestInferMatchesSeedForward(t *testing.T) {
	enc := NewEncoder(DefaultConfig())
	for round := 0; round < 2; round++ { // round 2 reuses pooled plans
		for _, g := range seedTestGraphs(t) {
			for _, par := range []map[string]int{nil, parAll(g, 1), parAll(g, 37)} {
				emb, probs, err := enc.Forward(g, par)
				if err != nil {
					t.Fatal(err)
				}
				iemb, iprobs, err := enc.Infer(g, par)
				if err != nil {
					t.Fatal(err)
				}
				for i := range iemb {
					sameFloats(t, "embedding row", iemb[i], emb.Val.Row(i))
				}
				sameFloats(t, "probs", iprobs, probs.Val.Data)
			}
		}
	}
}

// TestInferErrorsMatchSeed pins the validation behavior of the plan
// path to the seed Forward.
func TestInferErrorsMatchSeed(t *testing.T) {
	enc := NewEncoder(DefaultConfig())
	if _, _, err := enc.Infer(dag.New("empty"), nil); err == nil {
		t.Fatal("expected empty-graph error")
	}
	g := seedTestGraphs(t)[1]
	if _, _, err := enc.Infer(g, map[string]int{"bids": 1}); err == nil {
		t.Fatal("expected missing-parallelism error")
	}
	if _, err := enc.NewInferSession(dag.New("empty")); err == nil {
		t.Fatal("expected empty-graph session error")
	}
}

// TestInferSessionMatchesSeedForward sweeps a parallelism grid through
// a session (one agnostic pass + FUSE/head replays) and demands bitwise
// agreement with full seed forwards — the tuner's online-loop pattern.
func TestInferSessionMatchesSeedForward(t *testing.T) {
	enc := NewEncoder(DefaultConfig())
	for _, g := range seedTestGraphs(t) {
		sess, err := enc.NewInferSession(g)
		if err != nil {
			t.Fatal(err)
		}
		agnostic, agProbs, err := enc.Forward(g, nil)
		if err != nil {
			t.Fatal(err)
		}
		embs := sess.Embeddings()
		for i := range embs {
			sameFloats(t, "session embedding", embs[i], agnostic.Val.Row(i))
		}
		sameFloats(t, "session agnostic probs", sess.AgnosticProbs(), agProbs.Val.Data)
		for _, p := range []int{1, 2, 5, 13, 34, 89} {
			par := parAll(g, p)
			_, want, err := enc.Forward(g, par)
			if err != nil {
				t.Fatal(err)
			}
			got, err := sess.Probs(par)
			if err != nil {
				t.Fatal(err)
			}
			sameFloats(t, "session probs", got, want.Val.Data)
		}
		if _, err := sess.Probs(map[string]int{}); err == nil {
			t.Fatal("expected missing-parallelism error from session")
		}
	}
}

// structureOrdered reorders a corpus the way the batched Pretrain does.
// It additionally cross-checks GroupByStructure against an independent
// ged.Fingerprint-based grouping, so the exported helper cannot drift
// from the rule the oracle relies on.
func structureOrdered(t *testing.T, c *history.Corpus) *history.Corpus {
	t.Helper()
	var order []string
	groups := make(map[string][]history.Execution)
	for _, ex := range c.Executions {
		key := ged.Fingerprint(ex.Graph)
		if _, ok := groups[key]; !ok {
			order = append(order, key)
		}
		groups[key] = append(groups[key], ex)
	}
	want := &history.Corpus{}
	for _, k := range order {
		want.Executions = append(want.Executions, groups[k]...)
	}
	got := GroupByStructure(c)
	if len(got.Executions) != len(want.Executions) {
		t.Fatalf("GroupByStructure kept %d executions, want %d", len(got.Executions), len(want.Executions))
	}
	for i := range want.Executions {
		if got.Executions[i].Graph != want.Executions[i].Graph {
			t.Fatalf("GroupByStructure order diverged at %d", i)
		}
	}
	return got
}

// TestPretrainMatchesSeedOnStructureOrder is the full-training
// differential: the batched block-diagonal Pretrain must produce
// byte-identical weights and loss curves to the seed per-execution
// loop fed the same structure-grouped execution order.
func TestPretrainMatchesSeedOnStructureOrder(t *testing.T) {
	corpus := smallCorpus(t)
	cfg := DefaultConfig()
	opts := DefaultTrainOptions()
	opts.Epochs = 6

	batched, batchedLosses, err := Pretrain(corpus, cfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	seed, seedLosses, err := PretrainEager(structureOrdered(t, corpus), cfg, opts)
	if err != nil {
		t.Fatal(err)
	}

	if len(batchedLosses) != len(seedLosses) {
		t.Fatalf("%d epoch losses, want %d", len(batchedLosses), len(seedLosses))
	}
	for i := range seedLosses {
		if math.Float64bits(batchedLosses[i]) != math.Float64bits(seedLosses[i]) {
			t.Fatalf("epoch %d loss %v != seed %v", i, batchedLosses[i], seedLosses[i])
		}
	}
	bw, err := batched.MarshalParams()
	if err != nil {
		t.Fatal(err)
	}
	sw, err := seed.MarshalParams()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bw, sw) {
		t.Fatal("batched Pretrain weights diverged from seed loop on the same order")
	}
}

// TestPretrainBatchSizeBoundaries covers chunking against awkward
// batch sizes (chunks must never span an optimizer step).
func TestPretrainBatchSizeBoundaries(t *testing.T) {
	corpus := smallCorpus(t)
	cfg := DefaultConfig()
	cfg.Hidden = 12
	for _, bs := range []int{1, 3, 7, 1000} {
		opts := TrainOptions{Epochs: 2, LearningRate: 5e-3, BatchSize: bs}
		batched, _, err := Pretrain(corpus, cfg, opts)
		if err != nil {
			t.Fatalf("batch %d: %v", bs, err)
		}
		seed, _, err := PretrainEager(structureOrdered(t, corpus), cfg, opts)
		if err != nil {
			t.Fatalf("batch %d: %v", bs, err)
		}
		bw, _ := batched.MarshalParams()
		sw, _ := seed.MarshalParams()
		if !bytes.Equal(bw, sw) {
			t.Fatalf("batch size %d: batched weights diverged from seed", bs)
		}
	}
}

// TestConcurrentInferIsRaceFreeAndDeterministic checks the plan pools
// under concurrent inference on one shared encoder (the artifact-cache
// sharing pattern of the experiment drivers), relying on -race runs to
// surface unsynchronized access.
func TestConcurrentInferIsRaceFreeAndDeterministic(t *testing.T) {
	enc := NewEncoder(DefaultConfig())
	gs := seedTestGraphs(t)
	type result struct{ probs []float64 }
	want := make([][]float64, len(gs))
	for i, g := range gs {
		var err error
		_, want[i], err = enc.Infer(g, parAll(g, 5))
		if err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for rep := 0; rep < 5; rep++ {
				for i, g := range gs {
					_, probs, err := enc.Infer(g, parAll(g, 5))
					if err != nil {
						errs <- err
						return
					}
					for j := range probs {
						if probs[j] != want[i][j] {
							errs <- errConcurrentMismatch
							return
						}
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

var errConcurrentMismatch = errDeterminism("concurrent Infer diverged from sequential result")

type errDeterminism string

func (e errDeterminism) Error() string { return string(e) }
