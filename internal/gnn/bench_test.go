package gnn

// Benchmarks comparing the seed eager paths against the compiled plan
// engine on encoder-shaped workloads. The seed side (Forward,
// PretrainEager) is the retained old implementation, so one benchmark
// run measures this PR's before/after factor; cmd/experiments -exp
// nn-bench wraps the same comparisons at corpus scale.

import (
	"testing"

	"github.com/streamtune/streamtune/internal/dag"
	"github.com/streamtune/streamtune/internal/engine"
	"github.com/streamtune/streamtune/internal/history"
	"github.com/streamtune/streamtune/internal/nexmark"
	"github.com/streamtune/streamtune/internal/pqp"
)

func benchGraph(b *testing.B) *dag.Graph {
	g, err := nexmark.Build(nexmark.Q3, engine.Flink)
	if err != nil {
		b.Fatal(err)
	}
	return g
}

func benchCorpus(b *testing.B) *history.Corpus {
	q2, err := nexmark.Build(nexmark.Q2, engine.Flink)
	if err != nil {
		b.Fatal(err)
	}
	two, err := pqp.Build(pqp.TwoWayJoin, 1)
	if err != nil {
		b.Fatal(err)
	}
	opts := history.DefaultOptions(engine.Flink)
	opts.SamplesPerGraph = 20
	opts.Engine.MeasureTicks = 40
	opts.Engine.WarmupTicks = 30
	c, err := history.Generate([]*dag.Graph{q2, two}, opts)
	if err != nil {
		b.Fatal(err)
	}
	return c
}

func benchTrainOptions() TrainOptions {
	o := DefaultTrainOptions()
	o.Epochs = 2
	return o
}

func BenchmarkForwardSeed(b *testing.B) {
	g := benchGraph(b)
	enc := NewEncoder(DefaultConfig())
	par := parAll(g, 4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := enc.Forward(g, par); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkInfer(b *testing.B) {
	g := benchGraph(b)
	enc := NewEncoder(DefaultConfig())
	par := parAll(g, 4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := enc.Infer(g, par); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOnlineInferSeed and BenchmarkOnlineInferSession time the
// tuner's online pattern: one agnostic pass plus a Fibonacci grid of
// parallelism-aware predictions (the distillation loop of Algorithm 2).
var benchGrid = []int{1, 2, 3, 5, 8, 13, 21, 34, 55, 89}

func BenchmarkOnlineInferSeed(b *testing.B) {
	g := benchGraph(b)
	enc := NewEncoder(DefaultConfig())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := enc.Forward(g, nil); err != nil {
			b.Fatal(err)
		}
		for _, p := range benchGrid {
			if _, _, err := enc.Forward(g, parAll(g, p)); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkOnlineInferSession(b *testing.B) {
	g := benchGraph(b)
	enc := NewEncoder(DefaultConfig())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sess, err := enc.NewInferSession(g)
		if err != nil {
			b.Fatal(err)
		}
		_ = sess.Embeddings()
		for _, p := range benchGrid {
			if _, err := sess.Probs(parAll(g, p)); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkPretrainSeed(b *testing.B) {
	corpus := benchCorpus(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := PretrainEager(corpus, DefaultConfig(), benchTrainOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPretrainBatched(b *testing.B) {
	corpus := benchCorpus(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Pretrain(corpus, DefaultConfig(), benchTrainOptions()); err != nil {
			b.Fatal(err)
		}
	}
}
