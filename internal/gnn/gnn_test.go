package gnn

import (
	"math"
	"testing"

	"github.com/streamtune/streamtune/internal/dag"
	"github.com/streamtune/streamtune/internal/engine"
	"github.com/streamtune/streamtune/internal/history"
	"github.com/streamtune/streamtune/internal/nexmark"
	"github.com/streamtune/streamtune/internal/pqp"
)

func testGraph(t *testing.T) *dag.Graph {
	t.Helper()
	g, err := nexmark.Build(nexmark.Q3, engine.Flink)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func allOnes(g *dag.Graph) map[string]int {
	p := make(map[string]int)
	for _, op := range g.Operators() {
		p[op.ID] = 1
	}
	return p
}

func TestForwardShapes(t *testing.T) {
	g := testGraph(t)
	enc := NewEncoder(DefaultConfig())
	emb, probs, err := enc.Forward(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	if emb.Val.Rows != g.NumOperators() || emb.Val.Cols != enc.Config().Hidden {
		t.Fatalf("embedding shape %dx%d, want %dx%d", emb.Val.Rows, emb.Val.Cols, g.NumOperators(), enc.Config().Hidden)
	}
	if probs.Val.Rows != g.NumOperators() || probs.Val.Cols != 1 {
		t.Fatalf("probs shape %dx%d", probs.Val.Rows, probs.Val.Cols)
	}
	for i := 0; i < probs.Val.Rows; i++ {
		p := probs.Val.Data[i]
		if p <= 0 || p >= 1 {
			t.Fatalf("prob[%d] = %v outside (0,1)", i, p)
		}
	}
}

func TestForwardErrors(t *testing.T) {
	enc := NewEncoder(DefaultConfig())
	if _, _, err := enc.Forward(dag.New("empty"), nil); err == nil {
		t.Fatal("expected empty-graph error")
	}
	g := testGraph(t)
	if _, _, err := enc.Forward(g, map[string]int{"bids": 1}); err == nil {
		t.Fatal("expected missing-parallelism error")
	}
}

func TestParallelismChangesPrediction(t *testing.T) {
	g := testGraph(t)
	enc := NewEncoder(DefaultConfig())
	p1, err := enc.PredictBottleneck(g, allOnes(g))
	if err != nil {
		t.Fatal(err)
	}
	high := allOnes(g)
	for k := range high {
		high[k] = 90
	}
	p2, err := enc.PredictBottleneck(g, high)
	if err != nil {
		t.Fatal(err)
	}
	diff := 0.0
	for i := range p1 {
		diff += math.Abs(p1[i] - p2[i])
	}
	if diff == 0 {
		t.Fatal("FUSE ignores parallelism: identical predictions at p=1 and p=90")
	}
}

func TestAgnosticEmbeddingIndependentOfParallelism(t *testing.T) {
	g := testGraph(t)
	enc := NewEncoder(DefaultConfig())
	e1, err := enc.Embeddings(g)
	if err != nil {
		t.Fatal(err)
	}
	e2, _ := enc.Embeddings(g)
	for i := range e1 {
		for j := range e1[i] {
			if e1[i][j] != e2[i][j] {
				t.Fatal("agnostic embeddings not deterministic")
			}
		}
	}
}

func TestEmbeddingsDifferAcrossOperators(t *testing.T) {
	g := testGraph(t)
	enc := NewEncoder(DefaultConfig())
	embs, err := enc.Embeddings(g)
	if err != nil {
		t.Fatal(err)
	}
	// The join and a source must embed differently.
	ji, _ := g.IndexOf("incremental-join")
	si, _ := g.IndexOf("auctions")
	same := true
	for j := range embs[ji] {
		if embs[ji][j] != embs[si][j] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("join and source have identical embeddings")
	}
}

func smallCorpus(t *testing.T) *history.Corpus {
	t.Helper()
	q2, err := nexmark.Build(nexmark.Q2, engine.Flink)
	if err != nil {
		t.Fatal(err)
	}
	two, err := pqp.Build(pqp.TwoWayJoin, 1)
	if err != nil {
		t.Fatal(err)
	}
	opts := history.DefaultOptions(engine.Flink)
	opts.SamplesPerGraph = 25
	opts.Engine.MeasureTicks = 40
	opts.Engine.WarmupTicks = 30
	c, err := history.Generate([]*dag.Graph{q2, two}, opts)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestPretrainReducesLossAndBeatsBaseline(t *testing.T) {
	corpus := smallCorpus(t)
	cfg := DefaultConfig()
	opts := DefaultTrainOptions()
	opts.Epochs = 20
	enc, losses, err := Pretrain(corpus, cfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(losses) != opts.Epochs {
		t.Fatalf("got %d epoch losses, want %d", len(losses), opts.Epochs)
	}
	if losses[len(losses)-1] >= losses[0] {
		t.Fatalf("loss did not decrease: %v -> %v", losses[0], losses[len(losses)-1])
	}
	// Pre-training uses a positive-weighted loss, so judge by balanced
	// accuracy: a majority-class predictor scores 0.5.
	bacc, err := BalancedAccuracy(enc, corpus)
	if err != nil {
		t.Fatal(err)
	}
	if bacc < 0.7 {
		t.Fatalf("balanced accuracy %.3f, want >= 0.7 (majority baseline is 0.5)", bacc)
	}
}

func TestPretrainValidation(t *testing.T) {
	corpus := smallCorpus(t)
	if _, _, err := Pretrain(&history.Corpus{}, DefaultConfig(), DefaultTrainOptions()); err == nil {
		t.Fatal("expected empty-corpus error")
	}
	bad := DefaultTrainOptions()
	bad.Epochs = 0
	if _, _, err := Pretrain(corpus, DefaultConfig(), bad); err == nil {
		t.Fatal("expected invalid-options error")
	}
}

func TestParamsRoundTrip(t *testing.T) {
	g := testGraph(t)
	a := NewEncoder(DefaultConfig())
	data, err := a.MarshalParams()
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Seed = 999 // different init, overwritten by restore
	b := NewEncoder(cfg)
	if err := b.UnmarshalParams(data); err != nil {
		t.Fatal(err)
	}
	ea, _ := a.Embeddings(g)
	eb, _ := b.Embeddings(g)
	for i := range ea {
		for j := range ea[i] {
			if ea[i][j] != eb[i][j] {
				t.Fatal("restored encoder produces different embeddings")
			}
		}
	}
}
