package gnn

import (
	"fmt"
	"sync"

	"github.com/streamtune/streamtune/internal/dag"
	"github.com/streamtune/streamtune/internal/nn"
)

// Compiled-plan execution for the encoder. Plans are keyed by shape
// (operator count, batch blocks, parallelism-aware or not, kind) and
// pooled per encoder: concurrent inference callers — the experiment
// drivers share pre-trained encoders across goroutines — each check
// out their own plan instance over the shared parameters. Replays are
// bit-identical to the seed eager Forward (differential tests in
// seed_test.go enforce this).

type planKind int

const (
	planTrain planKind = iota // forward + masked-BCE backward
	planInfer                 // grad-free full forward
	planFuse                  // grad-free FUSE + head over cached states
)

type planKey struct {
	n, blocks int
	par       bool
	kind      planKind
}

// encPlan bundles a compiled plan with its binding points.
type encPlan struct {
	plan       *nn.Plan
	x, pvec    nn.Ref
	up, down   nn.ConstRef
	emb, probs nn.Ref
}

// PlanRefs identifies the bind points of an encoder forward appended to
// a plan builder: fill X (and Par when parallelism-aware), bind Up and
// Down to the graph's cached aggregation matrices, and read Emb and
// Probs after Forward. Consumers such as the ZeroTune cost model extend
// the builder beyond Emb with their own heads.
type PlanRefs struct {
	X, Par     nn.Ref
	Up, Down   nn.ConstRef
	Emb, Probs nn.Ref
}

// AppendPlan appends the encoder's forward computation for graphs of n
// operators (blocks block-diagonal executions) to b, mirroring Forward
// op for op: input projection, Layers message-passing iterations, the
// FUSE transform when par is set, and the prediction head.
func (e *Encoder) AppendPlan(b *nn.Builder, n, blocks int, par bool) PlanRefs {
	rows := n * blocks
	refs := PlanRefs{
		X:    b.Input(rows, dag.FeatureDim),
		Up:   b.Const(n, n),
		Down: b.Const(n, n),
	}
	h := b.Linear(e.input, refs.X, nn.ActReLU)
	for l := 0; l < e.cfg.Layers; l++ {
		s := b.Linear(e.selfW[l], h, nn.ActNone)
		u2 := b.Linear(e.upW[l], b.BlockMatMul(refs.Up, h), nn.ActNone)
		d2 := b.Linear(e.downW[l], b.BlockMatMul(refs.Down, h), nn.ActNone)
		h = b.Sum3(s, u2, d2, nn.ActReLU)
	}
	headIn := h
	if par {
		refs.Par = b.Input(rows, 1)
		headIn = b.Linear(e.fuse, b.ConcatCols(h, refs.Par), nn.ActReLU)
	}
	refs.Emb = headIn
	refs.Probs = b.MLP(e.head, headIn, nn.ActSigmoid)
	return refs
}

func (e *Encoder) buildPlan(key planKey) *encPlan {
	b := nn.NewBuilder()
	b.SetBlocks(key.blocks)
	if key.kind == planFuse {
		h := b.Input(key.n*key.blocks, e.cfg.Hidden)
		pv := b.Input(key.n*key.blocks, 1)
		headIn := b.Linear(e.fuse, b.ConcatCols(h, pv), nn.ActReLU)
		probs := b.MLP(e.head, headIn, nn.ActSigmoid)
		return &encPlan{plan: b.BuildForward(), x: h, pvec: pv, emb: headIn, probs: probs}
	}
	refs := e.AppendPlan(b, key.n, key.blocks, key.par)
	ep := &encPlan{x: refs.X, pvec: refs.Par, up: refs.Up, down: refs.Down, emb: refs.Emb, probs: refs.Probs}
	if key.kind == planTrain {
		ep.plan = b.Build(b.MaskedBCE(refs.Probs))
	} else {
		ep.plan = b.BuildForward()
	}
	return ep
}

// getPlan checks a plan for key out of the encoder's pool, building one
// on first use (or when the pool drained under GC pressure).
func (e *Encoder) getPlan(key planKey) *encPlan {
	pi, ok := e.plans.Load(key)
	if !ok {
		pi, _ = e.plans.LoadOrStore(key, &sync.Pool{})
	}
	if v := pi.(*sync.Pool).Get(); v != nil {
		return v.(*encPlan)
	}
	return e.buildPlan(key)
}

func (e *Encoder) putPlan(key planKey, ep *encPlan) {
	pi, _ := e.plans.Load(key)
	pi.(*sync.Pool).Put(ep)
}

// fillFeatures encodes the operator features of g into block blk of the
// plan's feature input.
func fillFeatures(p *nn.Plan, x nn.Ref, g *dag.Graph, blk int) {
	xd := p.InputData(x)
	off := blk * g.NumOperators() * dag.FeatureDim
	for i, op := range g.Operators() {
		pos := off + i*dag.FeatureDim
		// The append-into window has exactly FeatureDim capacity left
		// in xd; a length mismatch means the encoder and FeatureDim
		// drifted apart, so fail loudly instead of dropping features.
		if v := dag.FeatureVectorInto(op, xd[pos:pos]); len(v) != dag.FeatureDim {
			panic(fmt.Sprintf("gnn: operator %q encoded %d features, want %d", op.ID, len(v), dag.FeatureDim))
		}
	}
}

// fillParallelism encodes the normalized parallelism of every operator
// into block blk of the plan's parallelism input, mirroring Forward's
// validation of missing assignments.
func fillParallelism(p *nn.Plan, pvec nn.Ref, g *dag.Graph, par map[string]int, pmax, blk int) error {
	pd := p.InputData(pvec)
	off := blk * g.NumOperators()
	for i, op := range g.Operators() {
		d, ok := par[op.ID]
		if !ok {
			return fmt.Errorf("gnn: missing parallelism for %q", op.ID)
		}
		pd[off+i] = dag.NormalizeParallelism(d, pmax)
	}
	return nil
}

func matRows(m *nn.Matrix) [][]float64 {
	out := make([][]float64, m.Rows)
	flat := make([]float64, len(m.Data))
	copy(flat, m.Data)
	for i := range out {
		out[i] = flat[i*m.Cols : (i+1)*m.Cols]
	}
	return out
}

// Infer is the grad-free fast path of Forward: it replays a pooled
// compiled plan over the graph's cached aggregation structure and
// returns per-operator embeddings and bottleneck probabilities,
// bit-identical to Forward(g, par) but without building an autodiff
// graph. If par is nil the embeddings are parallelism-agnostic, as with
// Forward.
func (e *Encoder) Infer(g *dag.Graph, par map[string]int) ([][]float64, []float64, error) {
	n := g.NumOperators()
	if n == 0 {
		return nil, nil, fmt.Errorf("gnn: empty graph %q", g.Name)
	}
	key := planKey{n: n, blocks: 1, par: par != nil, kind: planInfer}
	ep := e.getPlan(key)
	defer e.putPlan(key, ep)
	st := structureOf(g)
	ep.plan.BindConst(ep.up, st.up)
	ep.plan.BindConst(ep.down, st.down)
	fillFeatures(ep.plan, ep.x, g, 0)
	if par != nil {
		if err := fillParallelism(ep.plan, ep.pvec, g, par, e.cfg.PMax, 0); err != nil {
			return nil, nil, err
		}
	}
	ep.plan.Forward()
	embs := matRows(ep.plan.Value(ep.emb))
	probs := append([]float64(nil), ep.plan.Value(ep.probs).Data...)
	return embs, probs, nil
}

// InferSession caches the parallelism-agnostic message-passing states
// of one graph so the tuner's online loop can sweep parallelism
// assignments paying only for the FUSE transform and the head — the
// expensive structure-dependent part of the forward runs once. Probs
// results are bit-identical to Forward(g, par). A session holds private
// buffers and is not safe for concurrent use.
type InferSession struct {
	enc   *Encoder
	g     *dag.Graph
	n     int
	h     *nn.Matrix
	embs  [][]float64
	probs []float64
}

// NewInferSession runs the agnostic forward once and captures the
// pre-FUSE states.
func (e *Encoder) NewInferSession(g *dag.Graph) (*InferSession, error) {
	n := g.NumOperators()
	if n == 0 {
		return nil, fmt.Errorf("gnn: empty graph %q", g.Name)
	}
	key := planKey{n: n, blocks: 1, par: false, kind: planInfer}
	ep := e.getPlan(key)
	defer e.putPlan(key, ep)
	st := structureOf(g)
	ep.plan.BindConst(ep.up, st.up)
	ep.plan.BindConst(ep.down, st.down)
	fillFeatures(ep.plan, ep.x, g, 0)
	ep.plan.Forward()
	s := &InferSession{enc: e, g: g, n: n,
		h:     ep.plan.Value(ep.emb).Clone(),
		embs:  matRows(ep.plan.Value(ep.emb)),
		probs: append([]float64(nil), ep.plan.Value(ep.probs).Data...),
	}
	return s, nil
}

// Embeddings returns the parallelism-agnostic embedding of every
// operator (shared slices; callers must not mutate).
func (s *InferSession) Embeddings() [][]float64 { return s.embs }

// AgnosticProbs returns the head's probabilities without FUSE (the
// par == nil prediction).
func (s *InferSession) AgnosticProbs() []float64 { return s.probs }

// Probs predicts per-operator bottleneck probabilities under par,
// replaying only FUSE + head over the cached states.
func (s *InferSession) Probs(par map[string]int) ([]float64, error) {
	key := planKey{n: s.n, blocks: 1, par: true, kind: planFuse}
	ep := s.enc.getPlan(key)
	defer s.enc.putPlan(key, ep)
	ep.plan.SetInput(ep.x, s.h)
	if err := fillParallelism(ep.plan, ep.pvec, s.g, par, s.enc.cfg.PMax, 0); err != nil {
		return nil, err
	}
	ep.plan.Forward()
	return append([]float64(nil), ep.plan.Value(ep.probs).Data...), nil
}
