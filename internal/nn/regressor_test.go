package nn

import (
	"math/rand"
	"testing"
)

// regressorData samples a noisy linear target the tiny MLP can fit.
func regressorData(seed int64, n, in int) ([][]float64, []float64) {
	rng := rand.New(rand.NewSource(seed))
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := range X {
		row := make([]float64, in)
		s := 0.0
		for j := range row {
			row[j] = rng.Float64()
			s += float64(j+1) * row[j]
		}
		X[i] = row
		y[i] = s
	}
	return X, y
}

// TestRegressorLearns checks the MSE loss drops substantially over a
// full-batch Adam fit and that predictions land near the target.
func TestRegressorLearns(t *testing.T) {
	X, y := regressorData(1, 128, 4)
	r := NewRegressor(4, []int{16, 8}, 1)
	losses, err := r.Fit(X, y, 300, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if losses[len(losses)-1] >= losses[0]/10 {
		t.Fatalf("loss barely moved: %v -> %v", losses[0], losses[len(losses)-1])
	}
	if got := r.Predict(X[0]); got < y[0]-1 || got > y[0]+1 {
		t.Fatalf("Predict(X[0]) = %v, want near %v", got, y[0])
	}
}

// TestRegressorDeterministic proves identical (seed, data, epochs)
// produce bit-identical predictions — the property the band's
// calibrated margin and the repo's refit-from-scratch idiom rely on.
func TestRegressorDeterministic(t *testing.T) {
	X, y := regressorData(2, 64, 3)
	a := NewRegressor(3, []int{8}, 7)
	b := NewRegressor(3, []int{8}, 7)
	if _, err := a.Fit(X, y, 50, 0.02); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Fit(X, y, 50, 0.02); err != nil {
		t.Fatal(err)
	}
	for i, row := range X {
		if pa, pb := a.Predict(row), b.Predict(row); pa != pb {
			t.Fatalf("row %d: %v != %v", i, pa, pb)
		}
	}
	// A fit between predictions is picked up by the cached predict plan.
	before := a.Predict(X[0])
	if _, err := a.Fit(X, y, 50, 0.02); err != nil {
		t.Fatal(err)
	}
	if after := a.Predict(X[0]); after == before {
		t.Logf("prediction unchanged after refit (converged); acceptable")
	}
}

// TestRegressorValidation covers the error paths.
func TestRegressorValidation(t *testing.T) {
	r := NewRegressor(2, []int{4}, 1)
	if _, err := r.Fit(nil, nil, 10, 0.01); err == nil {
		t.Fatal("empty training set accepted")
	}
	if _, err := r.Fit([][]float64{{1, 2}}, []float64{1, 2}, 10, 0.01); err == nil {
		t.Fatal("mismatched rows/targets accepted")
	}
	if _, err := r.Fit([][]float64{{1}}, []float64{1}, 10, 0.01); err == nil {
		t.Fatal("wrong feature width accepted")
	}
	if r.InputDim() != 2 {
		t.Fatalf("InputDim = %d", r.InputDim())
	}
	if got := r.PredictBatch([][]float64{{0, 0}, {1, 1}}); len(got) != 2 {
		t.Fatalf("PredictBatch len = %d", len(got))
	}
}
