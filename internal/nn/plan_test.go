package nn

// Differential tests for the compiled Plan engine. The eager graph API
// is kept byte-for-byte at its seed implementation (see the package
// doc), so comparing plan replays against eagerly built graphs is a
// comparison against the seed code, in the same spirit as
// internal/ged/seed_test.go. Every comparison below demands exact
// float64 bit equality, not approximate closeness.

import (
	"math"
	"math/rand"
	"testing"
)

func bitsEqual(a, b float64) bool { return math.Float64bits(a) == math.Float64bits(b) }

func requireSameMatrix(t *testing.T, what string, got, want *Matrix) {
	t.Helper()
	if got.Rows != want.Rows || got.Cols != want.Cols {
		t.Fatalf("%s: shape %dx%d, want %dx%d", what, got.Rows, got.Cols, want.Rows, want.Cols)
	}
	for i := range want.Data {
		if !bitsEqual(got.Data[i], want.Data[i]) {
			t.Fatalf("%s: element %d = %v, want %v (bit difference)", what, i, got.Data[i], want.Data[i])
		}
	}
}

func randMatrix(rng *rand.Rand, rows, cols int) *Matrix {
	m := NewMatrix(rows, cols)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

func randLabels(rng *rand.Rand, n int) []int {
	labels := make([]int, n)
	for i := range labels {
		labels[i] = rng.Intn(3) - 1 // -1, 0, 1
	}
	return labels
}

// cloneMLP deep-copies an MLP so eager and plan paths hold disjoint
// parameters with identical initial values.
func cloneMLP(m *MLP) *MLP {
	c := &MLP{}
	for _, l := range m.Layers {
		c.Layers = append(c.Layers, &Linear{W: Param(l.W.Val.Clone()), B: Param(l.B.Val.Clone())})
	}
	return c
}

func requireSameParams(t *testing.T, what string, got, want []*Node) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d params, want %d", what, len(got), len(want))
	}
	for i := range want {
		requireSameMatrix(t, what+" value", got[i].Val, want[i].Val)
		requireSameMatrix(t, what+" grad", got[i].Grad, want[i].Grad)
	}
}

// TestPlanMLPBCEMatchesEager replays an MLP + sigmoid + masked BCE plan
// over several random inputs and checks probabilities, loss, and
// parameter gradients against freshly built eager graphs, bit for bit.
// Replaying the same plan across rounds also exercises buffer reuse.
func TestPlanMLPBCEMatchesEager(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const rows, in = 9, 6
	eagerMLP := NewMLP(rand.New(rand.NewSource(11)), in, 10, 5, 1)
	planMLP := cloneMLP(eagerMLP)

	b := NewBuilder()
	x := b.Input(rows, in)
	probs := b.MLP(planMLP, x, ActSigmoid)
	plan := b.Build(b.MaskedBCE(probs))

	for round := 0; round < 5; round++ {
		xm := randMatrix(rng, rows, in)
		labels := randLabels(rng, rows)
		posW := []float64{1, 1, 2.5, 7, 1}[round]

		plan.SetInput(x, xm)
		plan.SetLabels(labels, posW)
		plan.Forward()
		plan.Backward()

		eagerProbs := Sigmoid(eagerMLP.Forward(Leaf(xm)))
		eagerLoss := MaskedBCEWeighted(eagerProbs, labels, posW)
		Backward(eagerLoss)

		requireSameMatrix(t, "probs", plan.Value(probs), eagerProbs.Val)
		if !bitsEqual(plan.Losses()[0], eagerLoss.Val.Data[0]) {
			t.Fatalf("round %d: loss %v != eager %v", round, plan.Losses()[0], eagerLoss.Val.Data[0])
		}
		requireSameParams(t, "mlp", planMLP.Params(), eagerMLP.Params())
		// The eager graph accumulates into fresh parameter gradients
		// each round; mirror that for the shared plan parameters.
		for _, p := range planMLP.Params() {
			p.ZeroGrad()
		}
		for _, p := range eagerMLP.Params() {
			p.ZeroGrad()
		}
	}
}

// TestPlanFullTrainingMatchesEager runs the same full-batch Adam
// training loop through both engines and demands byte-identical final
// weights.
func TestPlanFullTrainingMatchesEager(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const rows, in = 12, 5
	xm := randMatrix(rng, rows, in)
	labels := randLabels(rng, rows)

	eagerMLP := NewMLP(rand.New(rand.NewSource(4)), in, 8, 1)
	planMLP := cloneMLP(eagerMLP)

	eagerOpt := NewAdam(eagerMLP.Params(), 0.01)
	for ep := 0; ep < 40; ep++ {
		loss := MaskedBCE(Sigmoid(eagerMLP.Forward(Leaf(xm))), labels)
		Backward(loss)
		eagerOpt.Step()
	}

	b := NewBuilder()
	x := b.Input(rows, in)
	plan := b.Build(b.MaskedBCE(b.MLP(planMLP, x, ActSigmoid)))
	plan.SetInput(x, xm)
	plan.SetLabels(labels, 1)
	planOpt := NewAdam(planMLP.Params(), 0.01)
	for ep := 0; ep < 40; ep++ {
		plan.Forward()
		plan.Backward()
		planOpt.Step()
	}

	eagerBytes, err := MarshalParams(eagerMLP.Params())
	if err != nil {
		t.Fatal(err)
	}
	planBytes, err := MarshalParams(planMLP.Params())
	if err != nil {
		t.Fatal(err)
	}
	if string(eagerBytes) != string(planBytes) {
		t.Fatal("plan training diverged from eager training")
	}
}

// gnnLayerEager mirrors one encoder message-passing layer eagerly:
// ReLU(self(h) + (up(agg_up @ h) + down(agg_dn @ h))).
func gnnLayerEager(selfW, upW, downW *Linear, up, down *Matrix, h *Node) *Node {
	return ReLU(Add(selfW.Forward(h),
		Add(upW.Forward(MatMul(Leaf(up), h)),
			downW.Forward(MatMul(Leaf(down), h)))))
}

// sparseAgg builds a row-normalized aggregation-like sparse matrix.
func sparseAgg(rng *rand.Rand, n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		deg := rng.Intn(3)
		seen := map[int]bool{}
		for d := 0; d < deg; d++ {
			j := rng.Intn(n)
			if j == i || seen[j] {
				continue
			}
			seen[j] = true
		}
		for j := range seen {
			m.Set(i, j, 1/float64(len(seen)))
		}
	}
	return m
}

// TestPlanGNNShapeMatchesEager exercises the gnn-shaped op mix (Sum3,
// BlockMatMul, ConcatCols, fused linears) against the eager chain.
func TestPlanGNNShapeMatchesEager(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	const n, feat, hidden = 7, 10, 8

	mk := func(in, out int, seed int64) (*Linear, *Linear) {
		l := NewLinear(in, out, rand.New(rand.NewSource(seed)))
		return l, &Linear{W: Param(l.W.Val.Clone()), B: Param(l.B.Val.Clone())}
	}
	inpE, inpP := mk(feat, hidden, 1)
	selfE, selfP := mk(hidden, hidden, 2)
	upE, upP := mk(hidden, hidden, 3)
	downE, downP := mk(hidden, hidden, 4)
	fuseE, fuseP := mk(hidden+1, hidden, 5)
	headE, headP := mk(hidden, 1, 6)

	up := sparseAgg(rng, n)
	down := sparseAgg(rng, n)
	xm := randMatrix(rng, n, feat)
	pv := randMatrix(rng, n, 1)
	labels := randLabels(rng, n)

	// Eager chain.
	h := ReLU(inpE.Forward(Leaf(xm)))
	h = gnnLayerEager(selfE, upE, downE, up, down, h)
	headIn := ReLU(fuseE.Forward(ConcatCols(h, Leaf(pv))))
	probs := Sigmoid(headE.Forward(headIn))
	lossE := MaskedBCEWeighted(probs, labels, 3)
	Backward(lossE)

	// Plan.
	b := NewBuilder()
	x := b.Input(n, feat)
	pvec := b.Input(n, 1)
	upC := b.Const(n, n)
	downC := b.Const(n, n)
	hR := b.Linear(inpP, x, ActReLU)
	s := b.Linear(selfP, hR, ActNone)
	u2 := b.Linear(upP, b.BlockMatMul(upC, hR), ActNone)
	d2 := b.Linear(downP, b.BlockMatMul(downC, hR), ActNone)
	hR = b.Sum3(s, u2, d2, ActReLU)
	headInR := b.Linear(fuseP, b.ConcatCols(hR, pvec), ActReLU)
	probsR := b.Linear(headP, headInR, ActSigmoid)
	plan := b.Build(b.MaskedBCE(probsR))

	plan.BindConst(upC, up)
	plan.BindConst(downC, down)
	plan.SetInput(x, xm)
	plan.SetInput(pvec, pv)
	plan.SetLabels(labels, 3)
	plan.Forward()
	plan.Backward()

	requireSameMatrix(t, "headIn", plan.Value(headInR), headIn.Val)
	requireSameMatrix(t, "probs", plan.Value(probsR), probs.Val)
	if !bitsEqual(plan.Losses()[0], lossE.Val.Data[0]) {
		t.Fatalf("loss %v != eager %v", plan.Losses()[0], lossE.Val.Data[0])
	}
	pairs := [][2]*Linear{{inpP, inpE}, {selfP, selfE}, {upP, upE}, {downP, downE}, {fuseP, fuseE}, {headP, headE}}
	for _, pr := range pairs {
		requireSameParams(t, "layer", pr[0].Params(), pr[1].Params())
	}
}

// TestPlanBatchedMatchesSequentialEager checks that a blocks=B plan
// replay equals B sequential eager executions: same per-block losses
// and the same accumulated parameter gradients, bit for bit.
func TestPlanBatchedMatchesSequentialEager(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	const blocks, n, feat, hidden = 4, 5, 9, 6

	mk := func(in, out int, seed int64) (*Linear, *Linear) {
		l := NewLinear(in, out, rand.New(rand.NewSource(seed)))
		return l, &Linear{W: Param(l.W.Val.Clone()), B: Param(l.B.Val.Clone())}
	}
	inpE, inpP := mk(feat, hidden, 10)
	selfE, selfP := mk(hidden, hidden, 11)
	upE, upP := mk(hidden, hidden, 12)
	downE, downP := mk(hidden, hidden, 13)
	headE, headP := mk(hidden, 1, 14)

	up := sparseAgg(rng, n)
	down := sparseAgg(rng, n)

	xs := make([]*Matrix, blocks)
	labels := make([][]int, blocks)
	for i := range xs {
		xs[i] = randMatrix(rng, n, feat)
		labels[i] = randLabels(rng, n)
	}

	// Sequential eager executions, gradients accumulating.
	var eagerLosses []float64
	for i := 0; i < blocks; i++ {
		h := ReLU(inpE.Forward(Leaf(xs[i])))
		h = gnnLayerEager(selfE, upE, downE, up, down, h)
		probs := Sigmoid(headE.Forward(h))
		loss := MaskedBCEWeighted(probs, labels[i], 2)
		Backward(loss)
		eagerLosses = append(eagerLosses, loss.Val.Data[0])
	}

	// One batched plan replay.
	b := NewBuilder()
	b.SetBlocks(blocks)
	x := b.Input(blocks*n, feat)
	upC := b.Const(n, n)
	downC := b.Const(n, n)
	h := b.Linear(inpP, x, ActReLU)
	s := b.Linear(selfP, h, ActNone)
	u2 := b.Linear(upP, b.BlockMatMul(upC, h), ActNone)
	d2 := b.Linear(downP, b.BlockMatMul(downC, h), ActNone)
	h = b.Sum3(s, u2, d2, ActReLU)
	probs := b.Linear(headP, h, ActSigmoid)
	plan := b.Build(b.MaskedBCE(probs))

	plan.BindConst(upC, up)
	plan.BindConst(downC, down)
	xall := plan.InputData(x)
	var lall []int
	for i := 0; i < blocks; i++ {
		copy(xall[i*n*feat:], xs[i].Data)
		lall = append(lall, labels[i]...)
	}
	plan.SetLabels(lall, 2)
	plan.Forward()
	plan.Backward()

	for i, want := range eagerLosses {
		if !bitsEqual(plan.Losses()[i], want) {
			t.Fatalf("block %d loss %v != eager %v", i, plan.Losses()[i], want)
		}
	}
	pairs := [][2]*Linear{{inpP, inpE}, {selfP, selfE}, {upP, upE}, {downP, downE}, {headP, headE}}
	for _, pr := range pairs {
		requireSameParams(t, "batched layer", pr[0].Params(), pr[1].Params())
	}
}

// TestPlanMeanRowsMSEMatchesEager covers the ZeroTune-shaped readout:
// mean pooling, a regression head, and the MSE loss.
func TestPlanMeanRowsMSEMatchesEager(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	const n, hidden = 6, 5
	headE := NewMLP(rand.New(rand.NewSource(18)), hidden, 4, 1)
	headP := cloneMLP(headE)

	xm := randMatrix(rng, n, hidden)
	target := FromRows([][]float64{{0.37}})

	pooled := MeanRows(Leaf(xm))
	// Leaf input means the pooled tensor itself carries no gradient in
	// the eager graph; route through a Tanh Activate on the plan side
	// too, to also cover the standalone activation op.
	predE := Sigmoid(headE.Forward(Tanh(pooled)))
	lossE := MSE(predE, target)
	Backward(lossE)

	b := NewBuilder()
	x := b.Input(n, hidden)
	pl := b.Activate(b.MeanRows(x), ActTanh)
	pred := b.MLP(headP, pl, ActSigmoid)
	plan := b.Build(b.MSE(pred))
	plan.SetInput(x, xm)
	plan.SetTarget(target)
	plan.Forward()
	plan.Backward()

	requireSameMatrix(t, "pred", plan.Value(pred), predE.Val)
	if !bitsEqual(plan.Losses()[0], lossE.Val.Data[0]) {
		t.Fatalf("mse %v != eager %v", plan.Losses()[0], lossE.Val.Data[0])
	}
	requireSameParams(t, "head", headP.Params(), headE.Params())
}

// TestPlanReplayAllocatesNothing is the acceptance check that
// steady-state plan replay performs zero allocations, for both the
// training and the forward-only engines.
func TestPlanReplayAllocatesNothing(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	const rows, in = 10, 7
	mlp := NewMLP(rand.New(rand.NewSource(6)), in, 12, 1)
	xm := randMatrix(rng, rows, in)
	labels := randLabels(rng, rows)

	b := NewBuilder()
	x := b.Input(rows, in)
	plan := b.Build(b.MaskedBCE(b.MLP(mlp, x, ActSigmoid)))
	plan.SetInput(x, xm)
	plan.SetLabels(labels, 2)
	plan.Forward()
	plan.Backward()

	if n := testing.AllocsPerRun(50, func() {
		plan.SetInput(x, xm)
		plan.Forward()
		plan.Backward()
	}); n != 0 {
		t.Fatalf("training replay allocates %v times per run, want 0", n)
	}

	fb := NewBuilder()
	fx := fb.Input(rows, in)
	fprobs := fb.MLP(mlp, fx, ActSigmoid)
	fplan := fb.BuildForward()
	fplan.SetInput(fx, xm)
	fplan.Forward()
	if n := testing.AllocsPerRun(50, func() {
		fplan.SetInput(fx, xm)
		fplan.Forward()
		_ = fplan.Value(fprobs)
	}); n != 0 {
		t.Fatalf("inference replay allocates %v times per run, want 0", n)
	}
}

// TestPlanMisusePanics pins the builder/replay error contract.
func TestPlanMisusePanics(t *testing.T) {
	assertPanics := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mlp := NewMLP(rand.New(rand.NewSource(1)), 3, 2, 1)
	assertPanics("backward on forward-only plan", func() {
		b := NewBuilder()
		x := b.Input(2, 3)
		b.MLP(mlp, x, ActSigmoid)
		p := b.BuildForward()
		p.Forward()
		p.Backward()
	})
	assertPanics("build with non-loss root", func() {
		b := NewBuilder()
		x := b.Input(2, 3)
		b.Build(b.MLP(mlp, x, ActSigmoid))
	})
	assertPanics("linear shape mismatch", func() {
		b := NewBuilder()
		x := b.Input(2, 4)
		b.Linear(mlp.Layers[0], x, ActNone)
	})
	assertPanics("set blocks after ops", func() {
		b := NewBuilder()
		b.Input(2, 3)
		b.SetBlocks(2)
	})
	assertPanics("bce before SetLabels", func() {
		b := NewBuilder()
		x := b.Input(2, 3)
		p := b.Build(b.MaskedBCE(b.MLP(mlp, x, ActSigmoid)))
		p.Forward()
	})
	assertPanics("unbound const", func() {
		b := NewBuilder()
		x := b.Input(2, 3)
		c := b.Const(2, 2)
		b.BlockMatMul(c, x)
		p := b.BuildForward()
		p.Forward()
	})
}
