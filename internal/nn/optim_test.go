package nn

import (
	"math"
	"testing"
)

// TestAdamMatchesHandComputedTrajectory drives Adam with a fixed
// gradient schedule and checks every parameter update against the
// bias-corrected reference recurrence computed independently here
// (Kingma & Ba, Algorithm 1).
func TestAdamMatchesHandComputedTrajectory(t *testing.T) {
	p := Param(FromRows([][]float64{{1.0, -2.0}}))
	const lr = 0.1
	opt := NewAdam([]*Node{p}, lr)

	grads := [][]float64{
		{1.0, -0.5},
		{0.25, 2.0},
		{-3.0, 0.0},
		{0.5, 0.5},
	}

	// Independent reference state.
	want := []float64{1.0, -2.0}
	m := []float64{0, 0}
	v := []float64{0, 0}
	const beta1, beta2, eps = 0.9, 0.999, 1e-8

	for step, g := range grads {
		copy(p.Grad.Data, g)
		opt.Step()

		tt := float64(step + 1)
		for i := range want {
			m[i] = beta1*m[i] + (1-beta1)*g[i]
			v[i] = beta2*v[i] + (1-beta2)*g[i]*g[i]
			mh := m[i] / (1 - math.Pow(beta1, tt))
			vh := v[i] / (1 - math.Pow(beta2, tt))
			want[i] -= lr * mh / (math.Sqrt(vh) + eps)
			if math.Abs(p.Val.Data[i]-want[i]) > 1e-15 {
				t.Fatalf("step %d param[%d] = %.18f, want %.18f", step+1, i, p.Val.Data[i], want[i])
			}
		}
	}

	// First-step sanity against the closed form: with m1h = g and
	// v1h = g^2, the first update is lr * sign(g) (up to eps).
	q := Param(FromRows([][]float64{{0.5}}))
	qopt := NewAdam([]*Node{q}, lr)
	q.Grad.Data[0] = 0.125
	qopt.Step()
	wantFirst := 0.5 - lr*0.125/(math.Sqrt(0.125*0.125)+eps)
	if math.Abs(q.Val.Data[0]-wantFirst) > 1e-15 {
		t.Fatalf("first Adam step = %.18f, want %.18f", q.Val.Data[0], wantFirst)
	}
}

// TestOptimizersZeroGradientsAfterStep checks the Step contract shared
// by SGD and Adam: accumulated gradients are cleared so the next
// backward pass starts fresh.
func TestOptimizersZeroGradientsAfterStep(t *testing.T) {
	for _, tc := range []struct {
		name string
		mk   func(params []*Node) Optimizer
	}{
		{"sgd", func(params []*Node) Optimizer { return NewSGD(params, 0.1) }},
		{"adam", func(params []*Node) Optimizer { return NewAdam(params, 0.1) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			a := Param(FromRows([][]float64{{1, 2}, {3, 4}}))
			b := Param(FromRows([][]float64{{-1, -2}}))
			opt := tc.mk([]*Node{a, b})
			for i := range a.Grad.Data {
				a.Grad.Data[i] = float64(i + 1)
			}
			for i := range b.Grad.Data {
				b.Grad.Data[i] = -float64(i + 1)
			}
			before := append(append([]float64(nil), a.Val.Data...), b.Val.Data...)
			opt.Step()
			after := append(append([]float64(nil), a.Val.Data...), b.Val.Data...)
			for i := range before {
				if before[i] == after[i] {
					t.Fatalf("%s: param %d unchanged by Step with nonzero gradient", tc.name, i)
				}
			}
			for _, p := range []*Node{a, b} {
				for i, g := range p.Grad.Data {
					if g != 0 {
						t.Fatalf("%s: grad[%d] = %v after Step, want 0", tc.name, i, g)
					}
				}
			}
		})
	}
}
