package nn

import (
	"math/rand"
	"testing"
)

// Benchmarks comparing the seed eager graph engine against compiled
// plan replay on an MLP-shaped training step and an inference pass.
// The eager path is the deliberately retained seed implementation, so
// one `go test -bench Train` run measures the PR's before/after factor.

const (
	benchRows   = 16
	benchIn     = 10
	benchHidden = 32
)

func benchSetup() (*MLP, *Matrix, []int) {
	rng := rand.New(rand.NewSource(1))
	mlp := NewMLP(rand.New(rand.NewSource(2)), benchIn, benchHidden, benchHidden/2, 1)
	x := NewMatrix(benchRows, benchIn)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	labels := make([]int, benchRows)
	for i := range labels {
		labels[i] = rng.Intn(3) - 1
	}
	return mlp, x, labels
}

func BenchmarkTrainStepEager(b *testing.B) {
	mlp, x, labels := benchSetup()
	opt := NewAdam(mlp.Params(), 1e-3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		loss := MaskedBCE(Sigmoid(mlp.Forward(Leaf(x))), labels)
		Backward(loss)
		opt.Step()
	}
}

func BenchmarkTrainStepPlan(b *testing.B) {
	mlp, x, labels := benchSetup()
	opt := NewAdam(mlp.Params(), 1e-3)
	bd := NewBuilder()
	xr := bd.Input(benchRows, benchIn)
	plan := bd.Build(bd.MaskedBCE(bd.MLP(mlp, xr, ActSigmoid)))
	plan.SetInput(xr, x)
	plan.SetLabels(labels, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		plan.Forward()
		plan.Backward()
		opt.Step()
	}
}

func BenchmarkInferEager(b *testing.B) {
	mlp, x, _ := benchSetup()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := Sigmoid(mlp.Forward(Leaf(x)))
		_ = out.Val
	}
}

func BenchmarkInferPlan(b *testing.B) {
	mlp, x, _ := benchSetup()
	bd := NewBuilder()
	xr := bd.Input(benchRows, benchIn)
	probs := bd.MLP(mlp, xr, ActSigmoid)
	plan := bd.BuildForward()
	plan.SetInput(xr, x)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		plan.Forward()
		_ = plan.Value(probs)
	}
}
