// Regressor is a tiny scalar-output MLP compiled onto the plan engine:
// the learned GED band trains one on observed exact distances and uses
// its predictions to order and gate candidate pairs. Predictions are
// advisory by construction — callers must keep results exact through
// certificates — so the regressor needs no accuracy guarantee, only
// determinism: identical (seed, training set, epochs) produce identical
// weights and therefore identical predictions.
package nn

import (
	"fmt"
	"math/rand"
	"sync"
)

// Regressor wraps an MLP mapping a fixed-width feature vector to one
// scalar. Fit and Predict are safe for concurrent use with each other;
// concurrent Predicts serialize on an internal lock (the band predicts
// a handful of floats per admission, so contention is negligible).
type Regressor struct {
	in  int
	mlp *MLP

	mu      sync.Mutex
	predict *Plan
	predIn  Ref
	predOut Ref
}

// NewRegressor builds an untrained regressor with the given input
// width and hidden layer widths, deterministically initialized from
// seed.
func NewRegressor(in int, hidden []int, seed int64) *Regressor {
	widths := make([]int, 0, len(hidden)+2)
	widths = append(widths, in)
	widths = append(widths, hidden...)
	widths = append(widths, 1)
	rng := rand.New(rand.NewSource(seed))
	return &Regressor{in: in, mlp: NewMLP(rng, widths...)}
}

// InputDim reports the expected feature vector width.
func (r *Regressor) InputDim() int { return r.in }

// Fit trains full-batch with Adam on mean squared error for the given
// number of epochs, returning the per-epoch losses. Training is
// deterministic: the same regressor state, data, epochs, and learning
// rate always yield the same weights.
func (r *Regressor) Fit(X [][]float64, y []float64, epochs int, lr float64) ([]float64, error) {
	if len(X) == 0 {
		return nil, fmt.Errorf("nn: Fit on empty training set")
	}
	if len(X) != len(y) {
		return nil, fmt.Errorf("nn: Fit got %d feature rows but %d targets", len(X), len(y))
	}
	for i, row := range X {
		if len(row) != r.in {
			return nil, fmt.Errorf("nn: Fit row %d has %d features, want %d", i, len(row), r.in)
		}
	}
	b := NewBuilder()
	x := b.Input(len(X), r.in)
	out := b.MLP(r.mlp, x, ActNone)
	plan := b.Build(b.MSE(out))
	plan.SetInput(x, FromRows(X))
	target := NewMatrix(len(y), 1)
	copy(target.Data, y)
	plan.SetTarget(target)

	opt := NewAdam(r.mlp.Params(), lr)
	losses := make([]float64, epochs)
	for e := 0; e < epochs; e++ {
		plan.Forward()
		losses[e] = plan.Losses()[0]
		plan.Backward()
		opt.Step()
	}
	return losses, nil
}

// Predict returns the model output for one feature vector. Plans read
// parameter matrices live, so a Fit between Predicts is picked up
// without rebuilding the cached single-row plan.
func (r *Regressor) Predict(x []float64) float64 {
	if len(x) != r.in {
		panic(fmt.Sprintf("nn: Predict got %d features, want %d", len(x), r.in))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.predict == nil {
		b := NewBuilder()
		in := b.Input(1, r.in)
		r.predIn = in
		r.predOut = b.MLP(r.mlp, in, ActNone)
		r.predict = b.BuildForward()
	}
	copy(r.predict.InputData(r.predIn), x)
	r.predict.Forward()
	return r.predict.Value(r.predOut).Data[0]
}

// PredictBatch returns the model outputs for each feature row.
func (r *Regressor) PredictBatch(X [][]float64) []float64 {
	out := make([]float64, len(X))
	for i, row := range X {
		out[i] = r.Predict(row)
	}
	return out
}
