package nn

import (
	"encoding/json"
	"fmt"
	"math/rand"
)

// Linear is a fully-connected layer y = x @ W + b.
type Linear struct {
	W *Node
	B *Node
}

// NewLinear creates a Glorot-initialized linear layer.
func NewLinear(in, out int, rng *rand.Rand) *Linear {
	w := NewMatrix(in, out)
	XavierInit(w, rng)
	return &Linear{W: Param(w), B: Param(NewMatrix(1, out))}
}

// Forward applies the layer to x (N x in).
func (l *Linear) Forward(x *Node) *Node { return Add(MatMul(x, l.W), l.B) }

// Params returns the layer's trainable nodes.
func (l *Linear) Params() []*Node { return []*Node{l.W, l.B} }

// MLP is a stack of linear layers with ReLU between them (none after the
// last layer).
type MLP struct {
	Layers []*Linear
}

// NewMLP creates an MLP with the given layer widths, e.g. (in, hidden,
// out).
func NewMLP(rng *rand.Rand, widths ...int) *MLP {
	if len(widths) < 2 {
		panic("nn: MLP needs at least input and output widths")
	}
	m := &MLP{}
	for i := 0; i+1 < len(widths); i++ {
		m.Layers = append(m.Layers, NewLinear(widths[i], widths[i+1], rng))
	}
	return m
}

// Forward applies the MLP.
func (m *MLP) Forward(x *Node) *Node {
	for i, l := range m.Layers {
		x = l.Forward(x)
		if i+1 < len(m.Layers) {
			x = ReLU(x)
		}
	}
	return x
}

// Params returns all trainable nodes.
func (m *MLP) Params() []*Node {
	var ps []*Node
	for _, l := range m.Layers {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// modelState is the serialized form of a parameter list.
type modelState struct {
	Shapes [][2]int    `json:"shapes"`
	Data   [][]float64 `json:"data"`
}

// MarshalParams serializes parameter values (not gradients) to JSON.
func MarshalParams(params []*Node) ([]byte, error) {
	st := modelState{}
	for _, p := range params {
		st.Shapes = append(st.Shapes, [2]int{p.Val.Rows, p.Val.Cols})
		st.Data = append(st.Data, append([]float64(nil), p.Val.Data...))
	}
	return json.Marshal(st)
}

// UnmarshalParams restores parameter values in place. Shapes must match.
func UnmarshalParams(data []byte, params []*Node) error {
	var st modelState
	if err := json.Unmarshal(data, &st); err != nil {
		return fmt.Errorf("nn: decode params: %w", err)
	}
	if len(st.Shapes) != len(params) {
		return fmt.Errorf("nn: param count mismatch: stored %d, have %d", len(st.Shapes), len(params))
	}
	for i, p := range params {
		if st.Shapes[i][0] != p.Val.Rows || st.Shapes[i][1] != p.Val.Cols {
			return fmt.Errorf("nn: param %d shape mismatch: stored %v, have %dx%d",
				i, st.Shapes[i], p.Val.Rows, p.Val.Cols)
		}
		copy(p.Val.Data, st.Data[i])
	}
	return nil
}
