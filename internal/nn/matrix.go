// Package nn is a minimal neural-network toolkit built on a dense-matrix
// reverse-mode automatic differentiation engine. It provides exactly the
// operations the StreamTune reproduction needs: linear layers, ReLU /
// sigmoid / tanh activations, column concatenation (for the FUSE step of
// Eq. 3), mean pooling (for ZeroTune's job-level readout), masked binary
// cross-entropy and mean-squared-error losses, and SGD / Adam optimizers.
//
// The package offers two execution modes over the same parameters:
//
//   - The eager graph API (Leaf/Param + the Op functions + Backward)
//     allocates a fresh computation graph per execution. It is kept
//     byte-for-byte at its seed implementation: it is the differential
//     oracle the compiled engine is verified against and the baseline
//     the nn-bench experiment times. Do not "optimize" it.
//   - The compiled Plan API (Builder/Plan) records the same computation
//     once per shape and replays forward/backward into preallocated
//     buffers with fused kernels — zero steady-state allocation, with
//     optional block-diagonal batching over executions that share a
//     graph structure. Plan replays are bit-identical to the eager
//     graphs (enforced by differential tests).
//
// Everything is float64 and each plan replay is single-threaded; a Plan
// is not safe for concurrent use, but distinct Plans over shared
// parameters may run read-only (inference) replays concurrently.
package nn

import (
	"fmt"
	"math"
	"math/rand"
)

// Matrix is a dense row-major float64 matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64
}

// NewMatrix allocates a zero matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("nn: invalid matrix dims %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromRows builds a matrix from row slices, which must be equal length.
func FromRows(rows [][]float64) *Matrix {
	if len(rows) == 0 {
		return NewMatrix(0, 0)
	}
	m := NewMatrix(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.Cols {
			panic(fmt.Sprintf("nn: ragged rows: row %d has %d cols, want %d", i, len(r), m.Cols))
		}
		copy(m.Data[i*m.Cols:], r)
	}
	return m
}

// FromVec builds a column vector (n x 1).
func FromVec(v []float64) *Matrix {
	m := NewMatrix(len(v), 1)
	copy(m.Data, v)
	return m
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns a copy of row i.
func (m *Matrix) Row(i int) []float64 {
	out := make([]float64, m.Cols)
	copy(out, m.Data[i*m.Cols:(i+1)*m.Cols])
	return out
}

// Clone deep-copies the matrix.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// matMulInto computes dst = a @ b.
func matMulInto(dst, a, b *Matrix) {
	if a.Cols != b.Rows || dst.Rows != a.Rows || dst.Cols != b.Cols {
		panic(fmt.Sprintf("nn: matmul shape mismatch (%dx%d)@(%dx%d)->(%dx%d)",
			a.Rows, a.Cols, b.Rows, b.Cols, dst.Rows, dst.Cols))
	}
	for i := 0; i < a.Rows; i++ {
		arow := a.Data[i*a.Cols : (i+1)*a.Cols]
		drow := dst.Data[i*dst.Cols : (i+1)*dst.Cols]
		for k := range drow {
			drow[k] = 0
		}
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Data[k*b.Cols : (k+1)*b.Cols]
			for j, bv := range brow {
				drow[j] += av * bv
			}
		}
	}
}

// MatMulRaw returns a @ b.
func MatMulRaw(a, b *Matrix) *Matrix {
	out := NewMatrix(a.Rows, b.Cols)
	matMulInto(out, a, b)
	return out
}

// Transpose returns the transpose of m.
func (m *Matrix) Transpose() *Matrix {
	t := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			t.Set(j, i, m.At(i, j))
		}
	}
	return t
}

// addInPlace computes dst += src.
func addInPlace(dst, src *Matrix) {
	if dst.Rows != src.Rows || dst.Cols != src.Cols {
		panic(fmt.Sprintf("nn: add shape mismatch %dx%d vs %dx%d", dst.Rows, dst.Cols, src.Rows, src.Cols))
	}
	for i := range dst.Data {
		dst.Data[i] += src.Data[i]
	}
}

// XavierInit fills m with Glorot-uniform values drawn from rng.
func XavierInit(m *Matrix, rng *rand.Rand) {
	limit := math.Sqrt(6.0 / float64(m.Rows+m.Cols))
	for i := range m.Data {
		m.Data[i] = (2*rng.Float64() - 1) * limit
	}
}
