package nn

import "math"

// Optimizer updates parameters from their accumulated gradients.
type Optimizer interface {
	// Step applies one update and zeroes the gradients.
	Step()
}

// SGD is plain stochastic gradient descent.
type SGD struct {
	Params []*Node
	LR     float64
}

// NewSGD creates an SGD optimizer.
func NewSGD(params []*Node, lr float64) *SGD { return &SGD{Params: params, LR: lr} }

// Step applies one gradient-descent update and zeroes gradients.
func (o *SGD) Step() {
	for _, p := range o.Params {
		for i := range p.Val.Data {
			p.Val.Data[i] -= o.LR * p.Grad.Data[i]
		}
		p.ZeroGrad()
	}
}

// Adam is the Adam optimizer (Kingma & Ba).
type Adam struct {
	Params []*Node
	LR     float64
	Beta1  float64
	Beta2  float64
	Eps    float64

	t int
	m [][]float64
	v [][]float64
}

// NewAdam creates an Adam optimizer with standard defaults.
func NewAdam(params []*Node, lr float64) *Adam {
	a := &Adam{Params: params, LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8}
	for _, p := range params {
		a.m = append(a.m, make([]float64, len(p.Val.Data)))
		a.v = append(a.v, make([]float64, len(p.Val.Data)))
	}
	return a
}

// Step applies one Adam update and zeroes gradients.
func (o *Adam) Step() {
	o.t++
	bc1 := 1 - math.Pow(o.Beta1, float64(o.t))
	bc2 := 1 - math.Pow(o.Beta2, float64(o.t))
	for k, p := range o.Params {
		m, v := o.m[k], o.v[k]
		for i := range p.Val.Data {
			g := p.Grad.Data[i]
			m[i] = o.Beta1*m[i] + (1-o.Beta1)*g
			v[i] = o.Beta2*v[i] + (1-o.Beta2)*g*g
			mh := m[i] / bc1
			vh := v[i] / bc2
			p.Val.Data[i] -= o.LR * mh / (math.Sqrt(vh) + o.Eps)
		}
		p.ZeroGrad()
	}
}
