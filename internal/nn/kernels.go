package nn

// Matmul kernels for the compiled Plan engine.
//
// Each kernel computes every output cell as the same left-to-right
// chain of adds over ascending k that the seed matMulInto produces
// (including the skip of zero left-operand elements), so plan replays
// stay bit-identical to the eager graphs. Within that constraint the
// kernels are free to be fast: output cells are independent, so the
// column loop is blocked into groups of eight register accumulators
// (hiding the serial add latency of each cell's chain), and the
// transpose-aware variants avoid materializing Transpose() copies of
// the weights.

// mmInto computes dst = a @ b.
func mmInto(dst, a, b *Matrix) {
	if a.Cols != b.Rows || dst.Rows != a.Rows || dst.Cols != b.Cols {
		panic("nn: mmInto shape mismatch")
	}
	bc := b.Cols
	bd := b.Data
	for i := 0; i < a.Rows; i++ {
		arow := a.Data[i*a.Cols : (i+1)*a.Cols]
		drow := dst.Data[i*bc : (i+1)*bc]
		mmRow(drow, arow, bd, bc)
	}
}

// mmRow computes one output row: drow = arow @ b, where b is bc wide.
func mmRow(drow, arow, bd []float64, bc int) {
	var j int
	for ; j+8 <= bc; j += 8 {
		var s0, s1, s2, s3, s4, s5, s6, s7 float64
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := bd[k*bc+j:]
			s0 += av * brow[0]
			s1 += av * brow[1]
			s2 += av * brow[2]
			s3 += av * brow[3]
			s4 += av * brow[4]
			s5 += av * brow[5]
			s6 += av * brow[6]
			s7 += av * brow[7]
		}
		drow[j] = s0
		drow[j+1] = s1
		drow[j+2] = s2
		drow[j+3] = s3
		drow[j+4] = s4
		drow[j+5] = s5
		drow[j+6] = s6
		drow[j+7] = s7
	}
	for ; j+4 <= bc; j += 4 {
		var s0, s1, s2, s3 float64
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := bd[k*bc+j:]
			s0 += av * brow[0]
			s1 += av * brow[1]
			s2 += av * brow[2]
			s3 += av * brow[3]
		}
		drow[j] = s0
		drow[j+1] = s1
		drow[j+2] = s2
		drow[j+3] = s3
	}
	for ; j < bc; j++ {
		var s float64
		for k, av := range arow {
			if av == 0 {
				continue
			}
			s += av * bd[k*bc+j]
		}
		drow[j] = s
	}
}

// mmBTAccumInto computes dst += a @ bᵀ without materializing either
// the transpose or the product: every product cell is a dot of two
// contiguous rows, built in a register chain and added to dst exactly
// like the eager temp-then-addInPlace sequence.
func mmBTAccumInto(dst, a, b *Matrix) {
	if a.Cols != b.Cols || dst.Rows != a.Rows || dst.Cols != b.Rows {
		panic("nn: mmBTAccumInto shape mismatch")
	}
	n := a.Cols
	br := b.Rows
	for i := 0; i < a.Rows; i++ {
		arow := a.Data[i*n : (i+1)*n]
		drow := dst.Data[i*dst.Cols : i*dst.Cols+br]
		var j int
		for ; j+8 <= br; j += 8 {
			b0 := b.Data[j*n : (j+1)*n]
			b1 := b.Data[(j+1)*n : (j+2)*n]
			b2 := b.Data[(j+2)*n : (j+3)*n]
			b3 := b.Data[(j+3)*n : (j+4)*n]
			b4 := b.Data[(j+4)*n : (j+5)*n]
			b5 := b.Data[(j+5)*n : (j+6)*n]
			b6 := b.Data[(j+6)*n : (j+7)*n]
			b7 := b.Data[(j+7)*n : (j+8)*n]
			var s0, s1, s2, s3, s4, s5, s6, s7 float64
			for k, av := range arow {
				if av == 0 {
					continue
				}
				s0 += av * b0[k]
				s1 += av * b1[k]
				s2 += av * b2[k]
				s3 += av * b3[k]
				s4 += av * b4[k]
				s5 += av * b5[k]
				s6 += av * b6[k]
				s7 += av * b7[k]
			}
			drow[j] += s0
			drow[j+1] += s1
			drow[j+2] += s2
			drow[j+3] += s3
			drow[j+4] += s4
			drow[j+5] += s5
			drow[j+6] += s6
			drow[j+7] += s7
		}
		for ; j+4 <= br; j += 4 {
			b0 := b.Data[j*n : (j+1)*n]
			b1 := b.Data[(j+1)*n : (j+2)*n]
			b2 := b.Data[(j+2)*n : (j+3)*n]
			b3 := b.Data[(j+3)*n : (j+4)*n]
			var s0, s1, s2, s3 float64
			for k, av := range arow {
				if av == 0 {
					continue
				}
				s0 += av * b0[k]
				s1 += av * b1[k]
				s2 += av * b2[k]
				s3 += av * b3[k]
			}
			drow[j] += s0
			drow[j+1] += s1
			drow[j+2] += s2
			drow[j+3] += s3
		}
		for ; j < br; j++ {
			brow := b.Data[j*n : (j+1)*n]
			var s float64
			for k, av := range arow {
				if av == 0 {
					continue
				}
				s += av * brow[k]
			}
			drow[j] += s
		}
	}
}

// transposeInto writes aᵀ into dst (pure data movement).
func transposeInto(dst, a *Matrix) {
	if dst.Rows != a.Cols || dst.Cols != a.Rows {
		panic("nn: transposeInto shape mismatch")
	}
	for i := 0; i < a.Rows; i++ {
		arow := a.Data[i*a.Cols : (i+1)*a.Cols]
		for j, v := range arow {
			dst.Data[j*dst.Cols+i] = v
		}
	}
}

// mmTBlockAccumInto computes dst += Σ_block atᵀᵀ_block @ b_block —
// that is, dst += aᵀ @ b per block of a block-diagonal batch — taking
// the LEFT operand already transposed (at = aᵀ, rows contiguous).
// Every destination cell is held in a register while the per-block
// chains are built and added in ascending block order: the same
// fresh-product-then-add sequence the eager per-execution backward
// performs, with the same zero skips.
func mmTBlockAccumInto(dst, at, b *Matrix, blocks, rpb int) {
	if at.Cols != b.Rows || dst.Rows != at.Rows || dst.Cols != b.Cols || blocks*rpb != b.Rows {
		panic("nn: mmTBlockAccumInto shape mismatch")
	}
	bc := b.Cols
	bd := b.Data
	for i := 0; i < at.Rows; i++ {
		arow := at.Data[i*at.Cols : (i+1)*at.Cols]
		drow := dst.Data[i*bc : (i+1)*bc]
		var j int
		for ; j+8 <= bc; j += 8 {
			g0, g1, g2, g3 := drow[j], drow[j+1], drow[j+2], drow[j+3]
			g4, g5, g6, g7 := drow[j+4], drow[j+5], drow[j+6], drow[j+7]
			for blk := 0; blk < blocks; blk++ {
				var s0, s1, s2, s3, s4, s5, s6, s7 float64
				for k := blk * rpb; k < (blk+1)*rpb; k++ {
					av := arow[k]
					if av == 0 {
						continue
					}
					brow := bd[k*bc+j:]
					s0 += av * brow[0]
					s1 += av * brow[1]
					s2 += av * brow[2]
					s3 += av * brow[3]
					s4 += av * brow[4]
					s5 += av * brow[5]
					s6 += av * brow[6]
					s7 += av * brow[7]
				}
				g0 += s0
				g1 += s1
				g2 += s2
				g3 += s3
				g4 += s4
				g5 += s5
				g6 += s6
				g7 += s7
			}
			drow[j] = g0
			drow[j+1] = g1
			drow[j+2] = g2
			drow[j+3] = g3
			drow[j+4] = g4
			drow[j+5] = g5
			drow[j+6] = g6
			drow[j+7] = g7
		}
		for ; j+4 <= bc; j += 4 {
			g0, g1, g2, g3 := drow[j], drow[j+1], drow[j+2], drow[j+3]
			for blk := 0; blk < blocks; blk++ {
				var s0, s1, s2, s3 float64
				for k := blk * rpb; k < (blk+1)*rpb; k++ {
					av := arow[k]
					if av == 0 {
						continue
					}
					brow := bd[k*bc+j:]
					s0 += av * brow[0]
					s1 += av * brow[1]
					s2 += av * brow[2]
					s3 += av * brow[3]
				}
				g0 += s0
				g1 += s1
				g2 += s2
				g3 += s3
			}
			drow[j] = g0
			drow[j+1] = g1
			drow[j+2] = g2
			drow[j+3] = g3
		}
		for ; j < bc; j++ {
			g := drow[j]
			for blk := 0; blk < blocks; blk++ {
				var s float64
				for k := blk * rpb; k < (blk+1)*rpb; k++ {
					av := arow[k]
					if av == 0 {
						continue
					}
					s += av * bd[k*bc+j]
				}
				g += s
			}
			drow[j] = g
		}
	}
}
