package nn

import (
	"fmt"
	"math"
)

// Node is a value in the computation graph. Build graphs with the Op
// functions (MatMul, Add, ReLU, ...) and call Backward on a scalar loss
// node to populate gradients.
type Node struct {
	Val  *Matrix
	Grad *Matrix

	requiresGrad bool
	parents      []*Node
	backward     func()
}

// Leaf wraps a constant matrix (no gradient).
func Leaf(m *Matrix) *Node { return &Node{Val: m} }

// Param wraps a trainable matrix (gradient tracked).
func Param(m *Matrix) *Node {
	return &Node{Val: m, Grad: NewMatrix(m.Rows, m.Cols), requiresGrad: true}
}

func (n *Node) ensureGrad() {
	if n.Grad == nil {
		n.Grad = NewMatrix(n.Val.Rows, n.Val.Cols)
	}
}

func anyRequiresGrad(nodes ...*Node) bool {
	for _, n := range nodes {
		if n.requiresGrad {
			return true
		}
	}
	return false
}

func newOp(val *Matrix, backward func(), parents ...*Node) *Node {
	n := &Node{Val: val, parents: parents, backward: backward}
	if anyRequiresGrad(parents...) {
		n.requiresGrad = true
		n.ensureGrad()
	}
	return n
}

// ZeroGrad clears the gradient of n (if any).
func (n *Node) ZeroGrad() {
	if n.Grad != nil {
		for i := range n.Grad.Data {
			n.Grad.Data[i] = 0
		}
	}
}

// Backward runs reverse-mode differentiation from the scalar node root.
func Backward(root *Node) {
	if root.Val.Rows != 1 || root.Val.Cols != 1 {
		panic(fmt.Sprintf("nn: Backward root must be scalar, got %dx%d", root.Val.Rows, root.Val.Cols))
	}
	// Topological order via DFS.
	var order []*Node
	visited := make(map[*Node]bool)
	var visit func(*Node)
	visit = func(n *Node) {
		if visited[n] || !n.requiresGrad {
			return
		}
		visited[n] = true
		for _, p := range n.parents {
			visit(p)
		}
		order = append(order, n)
	}
	visit(root)
	root.ensureGrad()
	root.Grad.Data[0] = 1
	for i := len(order) - 1; i >= 0; i-- {
		if order[i].backward != nil {
			order[i].backward()
		}
	}
}

// MatMul multiplies a @ b.
func MatMul(a, b *Node) *Node {
	val := MatMulRaw(a.Val, b.Val)
	var out *Node
	out = newOp(val, func() {
		if a.requiresGrad {
			a.ensureGrad()
			addInPlace(a.Grad, MatMulRaw(out.Grad, b.Val.Transpose()))
		}
		if b.requiresGrad {
			b.ensureGrad()
			addInPlace(b.Grad, MatMulRaw(a.Val.Transpose(), out.Grad))
		}
	}, a, b)
	return out
}

// Add sums two nodes elementwise. If b is a 1 x C row vector and a is
// R x C, b broadcasts across rows (the bias pattern).
func Add(a, b *Node) *Node {
	broadcast := b.Val.Rows == 1 && a.Val.Rows != 1 && a.Val.Cols == b.Val.Cols
	if !broadcast && (a.Val.Rows != b.Val.Rows || a.Val.Cols != b.Val.Cols) {
		panic(fmt.Sprintf("nn: Add shape mismatch %dx%d + %dx%d", a.Val.Rows, a.Val.Cols, b.Val.Rows, b.Val.Cols))
	}
	val := a.Val.Clone()
	for i := 0; i < val.Rows; i++ {
		for j := 0; j < val.Cols; j++ {
			if broadcast {
				val.Data[i*val.Cols+j] += b.Val.At(0, j)
			} else {
				val.Data[i*val.Cols+j] += b.Val.At(i, j)
			}
		}
	}
	var out *Node
	out = newOp(val, func() {
		if a.requiresGrad {
			a.ensureGrad()
			addInPlace(a.Grad, out.Grad)
		}
		if b.requiresGrad {
			b.ensureGrad()
			if broadcast {
				for i := 0; i < out.Grad.Rows; i++ {
					for j := 0; j < out.Grad.Cols; j++ {
						b.Grad.Data[j] += out.Grad.At(i, j)
					}
				}
			} else {
				addInPlace(b.Grad, out.Grad)
			}
		}
	}, a, b)
	return out
}

// Scale multiplies every element by c.
func Scale(a *Node, c float64) *Node {
	val := a.Val.Clone()
	for i := range val.Data {
		val.Data[i] *= c
	}
	var out *Node
	out = newOp(val, func() {
		if a.requiresGrad {
			a.ensureGrad()
			for i := range a.Grad.Data {
				a.Grad.Data[i] += c * out.Grad.Data[i]
			}
		}
	}, a)
	return out
}

// ReLU applies max(0, x) elementwise.
func ReLU(a *Node) *Node {
	val := a.Val.Clone()
	for i, x := range val.Data {
		if x < 0 {
			val.Data[i] = 0
		}
	}
	var out *Node
	out = newOp(val, func() {
		if a.requiresGrad {
			a.ensureGrad()
			for i := range a.Grad.Data {
				if a.Val.Data[i] > 0 {
					a.Grad.Data[i] += out.Grad.Data[i]
				}
			}
		}
	}, a)
	return out
}

// Tanh applies tanh elementwise.
func Tanh(a *Node) *Node {
	val := a.Val.Clone()
	for i, x := range val.Data {
		val.Data[i] = math.Tanh(x)
	}
	var out *Node
	out = newOp(val, func() {
		if a.requiresGrad {
			a.ensureGrad()
			for i := range a.Grad.Data {
				t := out.Val.Data[i]
				a.Grad.Data[i] += (1 - t*t) * out.Grad.Data[i]
			}
		}
	}, a)
	return out
}

// Sigmoid applies the logistic function elementwise.
func Sigmoid(a *Node) *Node {
	val := a.Val.Clone()
	for i, x := range val.Data {
		val.Data[i] = 1 / (1 + math.Exp(-x))
	}
	var out *Node
	out = newOp(val, func() {
		if a.requiresGrad {
			a.ensureGrad()
			for i := range a.Grad.Data {
				s := out.Val.Data[i]
				a.Grad.Data[i] += s * (1 - s) * out.Grad.Data[i]
			}
		}
	}, a)
	return out
}

// ConcatCols concatenates a (R x Ca) and b (R x Cb) into R x (Ca+Cb).
func ConcatCols(a, b *Node) *Node {
	if a.Val.Rows != b.Val.Rows {
		panic(fmt.Sprintf("nn: ConcatCols row mismatch %d vs %d", a.Val.Rows, b.Val.Rows))
	}
	ca, cb := a.Val.Cols, b.Val.Cols
	val := NewMatrix(a.Val.Rows, ca+cb)
	for i := 0; i < val.Rows; i++ {
		copy(val.Data[i*val.Cols:i*val.Cols+ca], a.Val.Data[i*ca:(i+1)*ca])
		copy(val.Data[i*val.Cols+ca:(i+1)*val.Cols], b.Val.Data[i*cb:(i+1)*cb])
	}
	var out *Node
	out = newOp(val, func() {
		if a.requiresGrad {
			a.ensureGrad()
			for i := 0; i < val.Rows; i++ {
				for j := 0; j < ca; j++ {
					a.Grad.Data[i*ca+j] += out.Grad.At(i, j)
				}
			}
		}
		if b.requiresGrad {
			b.ensureGrad()
			for i := 0; i < val.Rows; i++ {
				for j := 0; j < cb; j++ {
					b.Grad.Data[i*cb+j] += out.Grad.At(i, ca+j)
				}
			}
		}
	}, a, b)
	return out
}

// MeanRows averages an R x C node over rows into 1 x C.
func MeanRows(a *Node) *Node {
	r := a.Val.Rows
	if r == 0 {
		panic("nn: MeanRows on empty matrix")
	}
	val := NewMatrix(1, a.Val.Cols)
	for i := 0; i < r; i++ {
		for j := 0; j < a.Val.Cols; j++ {
			val.Data[j] += a.Val.At(i, j) / float64(r)
		}
	}
	var out *Node
	out = newOp(val, func() {
		if a.requiresGrad {
			a.ensureGrad()
			for i := 0; i < r; i++ {
				for j := 0; j < a.Val.Cols; j++ {
					a.Grad.Data[i*a.Val.Cols+j] += out.Grad.Data[j] / float64(r)
				}
			}
		}
	}, a)
	return out
}

// MaskedBCE computes the mean binary cross-entropy of predictions
// (N x 1 probabilities) against labels, ignoring entries whose label is
// negative (the paper's unlabeled operators). It returns a scalar node.
func MaskedBCE(pred *Node, labels []int) *Node {
	return MaskedBCEWeighted(pred, labels, 1)
}

// MaskedBCEWeighted is MaskedBCE with the positive class weighted by
// posWeight, for imbalanced bottleneck labels.
func MaskedBCEWeighted(pred *Node, labels []int, posWeight float64) *Node {
	if pred.Val.Cols != 1 || pred.Val.Rows != len(labels) {
		panic(fmt.Sprintf("nn: MaskedBCE wants Nx1 preds for %d labels, got %dx%d",
			len(labels), pred.Val.Rows, pred.Val.Cols))
	}
	const eps = 1e-7
	if posWeight <= 0 {
		posWeight = 1
	}
	totalW := 0.0
	loss := 0.0
	for i, l := range labels {
		if l < 0 {
			continue
		}
		p := math.Min(math.Max(pred.Val.Data[i], eps), 1-eps)
		if l == 1 {
			loss -= posWeight * math.Log(p)
			totalW += posWeight
		} else {
			loss -= math.Log(1 - p)
			totalW++
		}
	}
	if totalW == 0 {
		return Leaf(NewMatrix(1, 1)) // zero loss, no gradient
	}
	val := NewMatrix(1, 1)
	val.Data[0] = loss / totalW
	var out *Node
	out = newOp(val, func() {
		if pred.requiresGrad {
			pred.ensureGrad()
			g := out.Grad.Data[0] / totalW
			for i, l := range labels {
				if l < 0 {
					continue
				}
				p := math.Min(math.Max(pred.Val.Data[i], eps), 1-eps)
				if l == 1 {
					pred.Grad.Data[i] += g * posWeight * (-1 / p)
				} else {
					pred.Grad.Data[i] += g * (1 / (1 - p))
				}
			}
		}
	}, pred)
	return out
}

// MSE computes the mean squared error between pred and target (same
// shape), returning a scalar node.
func MSE(pred *Node, target *Matrix) *Node {
	if pred.Val.Rows != target.Rows || pred.Val.Cols != target.Cols {
		panic("nn: MSE shape mismatch")
	}
	n := float64(len(target.Data))
	val := NewMatrix(1, 1)
	for i := range target.Data {
		d := pred.Val.Data[i] - target.Data[i]
		val.Data[0] += d * d / n
	}
	var out *Node
	out = newOp(val, func() {
		if pred.requiresGrad {
			pred.ensureGrad()
			g := out.Grad.Data[0]
			for i := range target.Data {
				pred.Grad.Data[i] += g * 2 * (pred.Val.Data[i] - target.Data[i]) / n
			}
		}
	}, pred)
	return out
}
