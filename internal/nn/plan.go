package nn

import (
	"fmt"
	"math"
)

// This file implements the compiled execution engine: a Plan records an
// autodiff computation once per shape and replays forward/backward into
// preallocated buffers with fused kernels. A replay performs exactly
// the floating-point operations, in exactly the order, that building
// and differentiating the equivalent eager graph would perform, so plan
// results are bit-identical to the eager API (differential tests
// enforce this). The only divergence is deliberate: a plan built with
// blocks > 1 runs a block-diagonal batch of independent executions that
// share one shape, equivalent to running the eager graph once per block
// in ascending block order.
//
// Replays allocate nothing: values, gradients, and per-op backward
// scratch are all preallocated at Build time.

// Act selects the activation fused into a plan op.
type Act int

// Fused activations.
const (
	ActNone Act = iota
	ActReLU
	ActSigmoid
	ActTanh
)

// Ref identifies a tensor (input or op output) within one Plan.
type Ref int

// ConstRef identifies a rebindable gradient-free constant matrix slot
// (the cached aggregation matrices of the GNN encoder bind here without
// copying).
type ConstRef int

type opKind int

const (
	opLinear opKind = iota
	opBlockMM
	opSum3
	opConcat
	opMeanRows
	opAct
	opBCE
	opMSE
)

type planOp struct {
	kind opKind
	out  Ref
	in   [3]Ref
	nin  int
	act  Act
	lin  *Linear  // opLinear
	cm   ConstRef // opBlockMM

	// Backward scratch, preallocated at Build time (nil on
	// forward-only plans or when unused).
	gAct  *Matrix // activation-masked output gradient
	tmpX  *Matrix // input-gradient product before accumulation (opBlockMM)
	tmpXT *Matrix // transposed input for the weight-gradient kernel (opLinear)
}

// Plan is a compiled computation: a fixed op sequence over fixed-shape
// buffers. Plans are built with a Builder, fed via SetInput / BindConst
// / SetLabels / SetTarget, and replayed with Forward and Backward.
// A Plan is not safe for concurrent use.
type Plan struct {
	ops    []planOp
	vals   []*Matrix
	grads  []*Matrix // nil entries: inputs, or all nil when forward-only
	isIn   []bool
	consts []*Matrix
	cshape [][2]int
	bwd    []int // op indices in backward execution order
	blocks int

	loss      Ref // -1 when forward-only
	bceW      []float64
	labels    []int
	posW      float64
	labelsSet bool
	target    *Matrix
	targetSet bool
}

// Builder accumulates ops for a Plan. Methods panic on shape mismatch,
// mirroring the eager API.
type Builder struct {
	p     *Plan
	prod  []int // producing op index per ref, -1 for inputs
	built bool
}

// NewBuilder returns an empty plan builder for a single execution
// (blocks == 1).
func NewBuilder() *Builder {
	return &Builder{p: &Plan{loss: -1, blocks: 1, posW: 1}}
}

// SetBlocks declares that the plan runs a block-diagonal batch of n
// independent same-shape executions. Must be called before any op is
// added. Row counts of inputs and op outputs must be multiples of n;
// weight gradients accumulate per block in ascending block order,
// matching a sequential eager run over the blocks.
func (b *Builder) SetBlocks(n int) {
	if len(b.p.ops) > 0 || len(b.p.vals) > 0 {
		panic("nn: SetBlocks after ops were added")
	}
	if n < 1 {
		panic("nn: SetBlocks needs n >= 1")
	}
	b.p.blocks = n
}

func (b *Builder) newRef(rows, cols int, input bool) Ref {
	if rows%b.p.blocks != 0 {
		panic(fmt.Sprintf("nn: plan tensor rows %d not divisible by %d blocks", rows, b.p.blocks))
	}
	b.p.vals = append(b.p.vals, NewMatrix(rows, cols))
	b.p.isIn = append(b.p.isIn, input)
	b.prod = append(b.prod, -1)
	return Ref(len(b.p.vals) - 1)
}

func (b *Builder) shape(r Ref) (int, int) { return b.p.vals[r].Rows, b.p.vals[r].Cols }

func (b *Builder) addOp(op planOp, rows, cols int) Ref {
	op.out = b.newRef(rows, cols, false)
	b.p.ops = append(b.p.ops, op)
	b.prod[op.out] = len(b.p.ops) - 1
	return op.out
}

// Input declares a runtime-fed leaf of fixed shape (no gradient).
func (b *Builder) Input(rows, cols int) Ref { return b.newRef(rows, cols, true) }

// Const declares a rebindable gradient-free constant slot of fixed
// shape. Bind a matrix with Plan.BindConst before the first Forward.
func (b *Builder) Const(rows, cols int) ConstRef {
	b.p.consts = append(b.p.consts, nil)
	b.p.cshape = append(b.p.cshape, [2]int{rows, cols})
	return ConstRef(len(b.p.consts) - 1)
}

// Linear applies the fused x @ W + bias followed by act, using the
// layer's shared parameter nodes (gradients accumulate into l.W.Grad
// and l.B.Grad during Backward, exactly as the eager
// act(Add(MatMul(x, W), B)) chain would).
func (b *Builder) Linear(l *Linear, x Ref, act Act) Ref {
	rows, cols := b.shape(x)
	if cols != l.W.Val.Rows {
		panic(fmt.Sprintf("nn: plan Linear input %d cols, layer wants %d", cols, l.W.Val.Rows))
	}
	return b.addOp(planOp{kind: opLinear, in: [3]Ref{x}, nin: 1, act: act, lin: l}, rows, l.W.Val.Cols)
}

// MLP chains the layers of m with ReLU between them and final after the
// last, matching Sigmoid-/identity-wrapped MLP.Forward.
func (b *Builder) MLP(m *MLP, x Ref, final Act) Ref {
	for i, l := range m.Layers {
		act := ActReLU
		if i == len(m.Layers)-1 {
			act = final
		}
		x = b.Linear(l, x, act)
	}
	return x
}

// BlockMatMul multiplies each block of x by the constant matrix bound
// to c: out = blockdiag(c, ..., c) @ x.
func (b *Builder) BlockMatMul(c ConstRef, x Ref) Ref {
	rows, cols := b.shape(x)
	sh := b.p.cshape[c]
	if rows != b.p.blocks*sh[1] {
		panic(fmt.Sprintf("nn: BlockMatMul wants %d x const-cols %d rows, got %d", b.p.blocks, sh[1], rows))
	}
	return b.addOp(planOp{kind: opBlockMM, in: [3]Ref{x}, nin: 1, cm: c}, b.p.blocks*sh[0], cols)
}

// Sum3 computes act(x + (y + z)) elementwise, matching the eager
// act(Add(x, Add(y, z))) nesting.
func (b *Builder) Sum3(x, y, z Ref, act Act) Ref {
	r, c := b.shape(x)
	for _, o := range []Ref{y, z} {
		if or, oc := b.shape(o); or != r || oc != c {
			panic("nn: Sum3 shape mismatch")
		}
	}
	return b.addOp(planOp{kind: opSum3, in: [3]Ref{x, y, z}, nin: 3, act: act}, r, c)
}

// ConcatCols concatenates x (R x Cx) and y (R x Cy) into R x (Cx+Cy).
func (b *Builder) ConcatCols(x, y Ref) Ref {
	xr, xc := b.shape(x)
	yr, yc := b.shape(y)
	if xr != yr {
		panic("nn: plan ConcatCols row mismatch")
	}
	return b.addOp(planOp{kind: opConcat, in: [3]Ref{x, y}, nin: 2}, xr, xc+yc)
}

// MeanRows averages an R x C tensor over rows into 1 x C. Requires
// blocks == 1.
func (b *Builder) MeanRows(x Ref) Ref {
	if b.p.blocks != 1 {
		panic("nn: MeanRows requires blocks == 1")
	}
	r, c := b.shape(x)
	if r == 0 {
		panic("nn: MeanRows on empty tensor")
	}
	return b.addOp(planOp{kind: opMeanRows, in: [3]Ref{x}, nin: 1}, 1, c)
}

// Activate applies act elementwise as a standalone op.
func (b *Builder) Activate(x Ref, act Act) Ref {
	r, c := b.shape(x)
	return b.addOp(planOp{kind: opAct, in: [3]Ref{x}, nin: 1, act: act}, r, c)
}

// MaskedBCE computes the per-block mean masked binary cross-entropy of
// x (rows x 1 probabilities) against the labels set via SetLabels,
// yielding a blocks x 1 loss tensor. Backward seeds every block's loss
// gradient with 1, equivalent to one eager Backward per block.
func (b *Builder) MaskedBCE(x Ref) Ref {
	r, c := b.shape(x)
	if c != 1 {
		panic(fmt.Sprintf("nn: MaskedBCE wants Nx1 predictions, got %dx%d", r, c))
	}
	return b.addOp(planOp{kind: opBCE, in: [3]Ref{x}, nin: 1}, b.p.blocks, 1)
}

// MSE computes the mean squared error of x against the target set via
// SetTarget, yielding a 1 x 1 loss. Requires blocks == 1.
func (b *Builder) MSE(x Ref) Ref {
	if b.p.blocks != 1 {
		panic("nn: MSE requires blocks == 1")
	}
	r, c := b.shape(x)
	b.p.target = NewMatrix(r, c)
	return b.addOp(planOp{kind: opMSE, in: [3]Ref{x}, nin: 1}, 1, 1)
}

// finish freezes the builder into p.
func (b *Builder) finish() *Plan {
	if b.built {
		panic("nn: Builder reused after Build")
	}
	b.built = true
	return b.p
}

// BuildForward compiles a gradient-free inference plan: Backward
// panics, and no gradient or scratch buffers are allocated.
func (b *Builder) BuildForward() *Plan { return b.finish() }

// Build compiles a training plan rooted at loss, which must be the
// output of MaskedBCE or MSE. The backward op order is the reverse
// DFS post-order from loss with parents visited in argument order —
// the exact order eager Backward uses — so gradient accumulation into
// shared buffers matches the eager graph bit for bit.
func (b *Builder) Build(loss Ref) *Plan {
	p := b.finish()
	if oi := b.prod[loss]; oi < 0 || (p.ops[oi].kind != opBCE && p.ops[oi].kind != opMSE) {
		panic("nn: Build loss must be a MaskedBCE or MSE output")
	}
	p.loss = loss
	p.bceW = make([]float64, p.blocks)

	// Gradient buffers for every op output (inputs are leaves).
	p.grads = make([]*Matrix, len(p.vals))
	for i, v := range p.vals {
		if !p.isIn[i] {
			p.grads[i] = NewMatrix(v.Rows, v.Cols)
		}
	}

	// Labels buffer for BCE ops (sized to the prediction rows).
	for _, op := range p.ops {
		if op.kind == opBCE {
			p.labels = make([]int, p.vals[op.in[0]].Rows)
		}
	}

	// Backward order: DFS from loss mirroring eager Backward.
	visited := make([]bool, len(p.ops))
	var order []int
	var visit func(Ref)
	visit = func(r Ref) {
		oi := b.prod[r]
		if oi < 0 || visited[oi] {
			return
		}
		visited[oi] = true
		for k := 0; k < p.ops[oi].nin; k++ {
			visit(p.ops[oi].in[k])
		}
		order = append(order, oi)
	}
	visit(loss)
	p.bwd = make([]int, 0, len(order))
	for i := len(order) - 1; i >= 0; i-- {
		p.bwd = append(p.bwd, order[i])
	}

	// Backward scratch.
	for i := range p.ops {
		op := &p.ops[i]
		if !visited[i] {
			continue
		}
		out := p.vals[op.out]
		if op.act != ActNone && (op.kind == opLinear || op.kind == opSum3) {
			op.gAct = NewMatrix(out.Rows, out.Cols)
		}
		switch op.kind {
		case opLinear:
			x := p.vals[op.in[0]]
			op.tmpXT = NewMatrix(x.Cols, x.Rows)
		case opBlockMM:
			if p.grads[op.in[0]] != nil {
				x := p.vals[op.in[0]]
				op.tmpX = NewMatrix(x.Rows, x.Cols)
			}
		}
	}
	return p
}

// SetInput copies src into the input ref's buffer.
func (p *Plan) SetInput(r Ref, src *Matrix) {
	if !p.isIn[r] {
		panic("nn: SetInput on non-input ref")
	}
	dst := p.vals[r]
	if dst.Rows != src.Rows || dst.Cols != src.Cols {
		panic(fmt.Sprintf("nn: SetInput shape %dx%d, want %dx%d", src.Rows, src.Cols, dst.Rows, dst.Cols))
	}
	copy(dst.Data, src.Data)
}

// InputData returns the raw backing slice of an input ref for direct
// row filling (avoiding an intermediate matrix).
func (p *Plan) InputData(r Ref) []float64 {
	if !p.isIn[r] {
		panic("nn: InputData on non-input ref")
	}
	return p.vals[r].Data
}

// BindConst aliases m (no copy) as the value of const slot c. The bound
// matrix must not be mutated while the plan replays.
func (p *Plan) BindConst(c ConstRef, m *Matrix) {
	sh := p.cshape[c]
	if m.Rows != sh[0] || m.Cols != sh[1] {
		panic(fmt.Sprintf("nn: BindConst shape %dx%d, want %dx%d", m.Rows, m.Cols, sh[0], sh[1]))
	}
	p.consts[c] = m
}

// SetLabels copies the BCE labels (one per prediction row; negative =
// unlabeled) and sets the positive-class weight.
func (p *Plan) SetLabels(labels []int, posWeight float64) {
	if p.labels == nil {
		panic("nn: SetLabels on a plan without MaskedBCE")
	}
	if len(labels) != len(p.labels) {
		panic(fmt.Sprintf("nn: SetLabels got %d labels, want %d", len(labels), len(p.labels)))
	}
	copy(p.labels, labels)
	if posWeight <= 0 {
		posWeight = 1
	}
	p.posW = posWeight
	p.labelsSet = true
}

// SetTarget copies the MSE regression target.
func (p *Plan) SetTarget(t *Matrix) {
	if p.target == nil {
		panic("nn: SetTarget on a plan without MSE")
	}
	if t.Rows != p.target.Rows || t.Cols != p.target.Cols {
		panic(fmt.Sprintf("nn: SetTarget shape %dx%d, want %dx%d", t.Rows, t.Cols, p.target.Rows, p.target.Cols))
	}
	copy(p.target.Data, t.Data)
	p.targetSet = true
}

// Value returns the current value buffer of r. The view is invalidated
// by the next Forward; callers must not mutate non-input buffers.
func (p *Plan) Value(r Ref) *Matrix { return p.vals[r] }

// Losses returns the per-block loss values after a Forward (length
// blocks for MaskedBCE plans, 1 for MSE plans).
func (p *Plan) Losses() []float64 { return p.vals[p.loss].Data }

// Forward replays the recorded computation into the plan's buffers.
func (p *Plan) Forward() {
	for i := range p.ops {
		p.forwardOp(&p.ops[i])
	}
}

// Backward zeroes intermediate gradients, seeds every loss block's
// gradient with 1, and replays the recorded ops in eager-Backward
// order. Parameter gradients accumulate (the optimizers zero them on
// Step), exactly as with eager Backward.
func (p *Plan) Backward() {
	if p.loss < 0 {
		panic("nn: Backward on a forward-only plan")
	}
	for _, g := range p.grads {
		if g == nil {
			continue
		}
		for i := range g.Data {
			g.Data[i] = 0
		}
	}
	lg := p.grads[p.loss]
	for i := range lg.Data {
		lg.Data[i] = 1
	}
	for _, oi := range p.bwd {
		p.backwardOp(&p.ops[oi])
	}
}

func applyAct(act Act, data []float64) {
	switch act {
	case ActReLU:
		for i, x := range data {
			if x < 0 {
				data[i] = 0
			}
		}
	case ActSigmoid:
		for i, x := range data {
			data[i] = 1 / (1 + math.Exp(-x))
		}
	case ActTanh:
		for i, x := range data {
			data[i] = math.Tanh(x)
		}
	}
}

// maskAct writes the activation-local gradient into ga: the eager
// chain allocates a fresh zero gradient for the pre-activation node and
// accumulates the masked output gradient into it; writing the masked
// values over the full buffer produces the same bits.
func maskAct(act Act, ga, out, g *Matrix) {
	switch act {
	case ActReLU:
		// ReLU output is positive exactly where its input is, so the
		// seed's pre-activation mask can be read off the output.
		for i, v := range out.Data {
			if v > 0 {
				ga.Data[i] = g.Data[i]
			} else {
				ga.Data[i] = 0
			}
		}
	case ActSigmoid:
		for i, s := range out.Data {
			ga.Data[i] = s * (1 - s) * g.Data[i]
		}
	case ActTanh:
		for i, t := range out.Data {
			ga.Data[i] = (1 - t*t) * g.Data[i]
		}
	default:
		panic("nn: maskAct on ActNone")
	}
}

func (p *Plan) forwardOp(op *planOp) {
	out := p.vals[op.out]
	switch op.kind {
	case opLinear:
		x := p.vals[op.in[0]]
		mmInto(out, x, op.lin.W.Val)
		// Bias broadcast and activation fused into one sweep; per
		// element this is exactly the eager Add-then-activate values.
		bias := op.lin.B.Val.Data
		switch op.act {
		case ActReLU:
			for i := 0; i < out.Rows; i++ {
				row := out.Data[i*out.Cols : (i+1)*out.Cols]
				for j, bv := range bias {
					v := row[j] + bv
					if v < 0 {
						v = 0
					}
					row[j] = v
				}
			}
		case ActSigmoid:
			for i := 0; i < out.Rows; i++ {
				row := out.Data[i*out.Cols : (i+1)*out.Cols]
				for j, bv := range bias {
					row[j] = 1 / (1 + math.Exp(-(row[j] + bv)))
				}
			}
		case ActTanh:
			for i := 0; i < out.Rows; i++ {
				row := out.Data[i*out.Cols : (i+1)*out.Cols]
				for j, bv := range bias {
					row[j] = math.Tanh(row[j] + bv)
				}
			}
		default:
			for i := 0; i < out.Rows; i++ {
				row := out.Data[i*out.Cols : (i+1)*out.Cols]
				for j, bv := range bias {
					row[j] += bv
				}
			}
		}

	case opBlockMM:
		c := p.consts[op.cm]
		if c == nil {
			panic("nn: BlockMatMul const not bound")
		}
		x := p.vals[op.in[0]]
		n, m := c.Rows, c.Cols
		for blk := 0; blk < p.blocks; blk++ {
			xoff, ooff := blk*m, blk*n
			for i := 0; i < n; i++ {
				drow := out.Data[(ooff+i)*out.Cols : (ooff+i+1)*out.Cols]
				for j := range drow {
					drow[j] = 0
				}
				crow := c.Data[i*m : (i+1)*m]
				for k, av := range crow {
					if av == 0 {
						continue
					}
					brow := x.Data[(xoff+k)*x.Cols : (xoff+k+1)*x.Cols]
					for j, bv := range brow {
						drow[j] += av * bv
					}
				}
			}
		}

	case opSum3:
		a := p.vals[op.in[0]].Data
		b := p.vals[op.in[1]].Data
		c := p.vals[op.in[2]].Data
		for i := range out.Data {
			out.Data[i] = a[i] + (b[i] + c[i])
		}
		applyAct(op.act, out.Data)

	case opConcat:
		a, b := p.vals[op.in[0]], p.vals[op.in[1]]
		ca, cb := a.Cols, b.Cols
		for i := 0; i < out.Rows; i++ {
			copy(out.Data[i*out.Cols:i*out.Cols+ca], a.Data[i*ca:(i+1)*ca])
			copy(out.Data[i*out.Cols+ca:(i+1)*out.Cols], b.Data[i*cb:(i+1)*cb])
		}

	case opMeanRows:
		a := p.vals[op.in[0]]
		r := a.Rows
		for j := range out.Data {
			out.Data[j] = 0
		}
		for i := 0; i < r; i++ {
			for j := 0; j < a.Cols; j++ {
				out.Data[j] += a.At(i, j) / float64(r)
			}
		}

	case opAct:
		a := p.vals[op.in[0]]
		switch op.act {
		case ActReLU:
			for i, x := range a.Data {
				if x < 0 {
					x = 0
				}
				out.Data[i] = x
			}
		case ActSigmoid:
			for i, x := range a.Data {
				out.Data[i] = 1 / (1 + math.Exp(-x))
			}
		case ActTanh:
			for i, x := range a.Data {
				out.Data[i] = math.Tanh(x)
			}
		default:
			copy(out.Data, a.Data)
		}

	case opBCE:
		if !p.labelsSet {
			panic("nn: MaskedBCE plan replayed before SetLabels")
		}
		const eps = 1e-7
		x := p.vals[op.in[0]]
		rpb := x.Rows / p.blocks
		for blk := 0; blk < p.blocks; blk++ {
			totalW, loss := 0.0, 0.0
			for i := blk * rpb; i < (blk+1)*rpb; i++ {
				l := p.labels[i]
				if l < 0 {
					continue
				}
				pv := math.Min(math.Max(x.Data[i], eps), 1-eps)
				if l == 1 {
					loss -= p.posW * math.Log(pv)
					totalW += p.posW
				} else {
					loss -= math.Log(1 - pv)
					totalW++
				}
			}
			p.bceW[blk] = totalW
			if totalW == 0 {
				out.Data[blk] = 0
			} else {
				out.Data[blk] = loss / totalW
			}
		}

	case opMSE:
		if !p.targetSet {
			panic("nn: MSE plan replayed before SetTarget")
		}
		x := p.vals[op.in[0]]
		n := float64(len(p.target.Data))
		out.Data[0] = 0
		for i := range p.target.Data {
			d := x.Data[i] - p.target.Data[i]
			out.Data[0] += d * d / n
		}
	}
}

func (p *Plan) backwardOp(op *planOp) {
	out := p.vals[op.out]
	g := p.grads[op.out]
	switch op.kind {
	case opLinear:
		ga := g
		if op.act != ActNone {
			ga = op.gAct
			maskAct(op.act, ga, out, g)
		}
		x := p.vals[op.in[0]]
		// The bias gradient accumulates row by row across the whole
		// batch (the eager broadcast-Add backward per block, in order).
		bg := op.lin.B.Grad.Data
		for i := 0; i < out.Rows; i++ {
			row := ga.Data[i*out.Cols : (i+1)*out.Cols]
			for j, v := range row {
				bg[j] += v
			}
		}
		if gx := p.grads[op.in[0]]; gx != nil {
			mmBTAccumInto(gx, ga, op.lin.W.Val)
		}
		// Weight gradient: one fresh per-block product chain, added in
		// ascending block order — the same per-execution temp + add the
		// eager MatMul backward performs. Transposing x first turns the
		// strided column walk into contiguous row dots.
		transposeInto(op.tmpXT, x)
		mmTBlockAccumInto(op.lin.W.Grad, op.tmpXT, ga, p.blocks, out.Rows/p.blocks)

	case opBlockMM:
		if gx := p.grads[op.in[0]]; gx != nil {
			c := p.consts[op.cm]
			n, m := c.Rows, c.Cols
			tmp := op.tmpX
			for blk := 0; blk < p.blocks; blk++ {
				xoff, ooff := blk*m, blk*n
				for v := 0; v < m; v++ {
					drow := tmp.Data[(xoff+v)*tmp.Cols : (xoff+v+1)*tmp.Cols]
					for j := range drow {
						drow[j] = 0
					}
					for k := 0; k < n; k++ {
						av := c.Data[k*m+v]
						if av == 0 {
							continue
						}
						grow := g.Data[(ooff+k)*g.Cols : (ooff+k+1)*g.Cols]
						for j, gv := range grow {
							drow[j] += av * gv
						}
					}
				}
			}
			addInPlace(gx, tmp)
		}

	case opSum3:
		ga := g
		if op.act != ActNone {
			ga = op.gAct
			maskAct(op.act, ga, out, g)
		}
		for k := 0; k < 3; k++ {
			if gx := p.grads[op.in[k]]; gx != nil {
				addInPlace(gx, ga)
			}
		}

	case opConcat:
		a, b := p.vals[op.in[0]], p.vals[op.in[1]]
		ca, cb := a.Cols, b.Cols
		if gx := p.grads[op.in[0]]; gx != nil {
			for i := 0; i < out.Rows; i++ {
				for j := 0; j < ca; j++ {
					gx.Data[i*ca+j] += g.At(i, j)
				}
			}
		}
		if gx := p.grads[op.in[1]]; gx != nil {
			for i := 0; i < out.Rows; i++ {
				for j := 0; j < cb; j++ {
					gx.Data[i*cb+j] += g.At(i, ca+j)
				}
			}
		}

	case opMeanRows:
		if gx := p.grads[op.in[0]]; gx != nil {
			a := p.vals[op.in[0]]
			r := a.Rows
			for i := 0; i < r; i++ {
				for j := 0; j < a.Cols; j++ {
					gx.Data[i*a.Cols+j] += g.Data[j] / float64(r)
				}
			}
		}

	case opAct:
		gx := p.grads[op.in[0]]
		if gx == nil {
			return
		}
		a := p.vals[op.in[0]]
		switch op.act {
		case ActReLU:
			for i := range gx.Data {
				if a.Data[i] > 0 {
					gx.Data[i] += g.Data[i]
				}
			}
		case ActSigmoid:
			for i := range gx.Data {
				s := out.Data[i]
				gx.Data[i] += s * (1 - s) * g.Data[i]
			}
		case ActTanh:
			for i := range gx.Data {
				t := out.Data[i]
				gx.Data[i] += (1 - t*t) * g.Data[i]
			}
		default:
			addInPlace(gx, g)
		}

	case opBCE:
		const eps = 1e-7
		gx := p.grads[op.in[0]]
		if gx == nil {
			return
		}
		x := p.vals[op.in[0]]
		rpb := x.Rows / p.blocks
		for blk := 0; blk < p.blocks; blk++ {
			totalW := p.bceW[blk]
			if totalW == 0 {
				continue
			}
			gb := g.Data[blk] / totalW
			for i := blk * rpb; i < (blk+1)*rpb; i++ {
				l := p.labels[i]
				if l < 0 {
					continue
				}
				pv := math.Min(math.Max(x.Data[i], eps), 1-eps)
				if l == 1 {
					gx.Data[i] += gb * p.posW * (-1 / pv)
				} else {
					gx.Data[i] += gb * (1 / (1 - pv))
				}
			}
		}

	case opMSE:
		gx := p.grads[op.in[0]]
		if gx == nil {
			return
		}
		x := p.vals[op.in[0]]
		n := float64(len(p.target.Data))
		gb := g.Data[0]
		for i := range p.target.Data {
			gx.Data[i] += gb * 2 * (x.Data[i] - p.target.Data[i]) / n
		}
	}
}
