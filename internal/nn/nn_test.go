package nn

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMatrixBasics(t *testing.T) {
	m := NewMatrix(2, 3)
	m.Set(1, 2, 5)
	if m.At(1, 2) != 5 {
		t.Fatal("Set/At mismatch")
	}
	r := FromRows([][]float64{{1, 2}, {3, 4}})
	if r.At(1, 0) != 3 {
		t.Fatal("FromRows layout wrong")
	}
	v := FromVec([]float64{7, 8})
	if v.Rows != 2 || v.Cols != 1 || v.At(1, 0) != 8 {
		t.Fatal("FromVec wrong")
	}
	c := r.Clone()
	c.Set(0, 0, 99)
	if r.At(0, 0) == 99 {
		t.Fatal("Clone shares storage")
	}
	row := r.Row(0)
	row[0] = 42
	if r.At(0, 0) == 42 {
		t.Fatal("Row shares storage")
	}
}

func TestMatMulRaw(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{5, 6}, {7, 8}})
	c := MatMulRaw(a, b)
	want := [][]float64{{19, 22}, {43, 50}}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if c.At(i, j) != want[i][j] {
				t.Fatalf("c[%d][%d] = %v, want %v", i, j, c.At(i, j), want[i][j])
			}
		}
	}
}

func TestTranspose(t *testing.T) {
	a := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	at := a.Transpose()
	if at.Rows != 3 || at.Cols != 2 || at.At(2, 1) != 6 {
		t.Fatalf("transpose wrong: %+v", at)
	}
}

// numericalGrad estimates dLoss/dParam[i] by central differences.
func numericalGrad(param *Matrix, i int, loss func() float64) float64 {
	const h = 1e-6
	orig := param.Data[i]
	param.Data[i] = orig + h
	up := loss()
	param.Data[i] = orig - h
	down := loss()
	param.Data[i] = orig
	return (up - down) / (2 * h)
}

// TestGradientsMatchNumerical verifies reverse-mode gradients against
// finite differences through a full network: sigmoid(relu(xW1+b1)W2+b2)
// with masked BCE loss.
func TestGradientsMatchNumerical(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x := FromRows([][]float64{{0.5, -0.2, 0.8}, {-1, 0.3, 0.1}, {0.2, 0.9, -0.5}})
	labels := []int{1, 0, -1} // include an unlabeled row

	w1 := NewMatrix(3, 4)
	XavierInit(w1, rng)
	b1 := NewMatrix(1, 4)
	w2 := NewMatrix(4, 1)
	XavierInit(w2, rng)
	b2 := NewMatrix(1, 1)

	forward := func() (*Node, []*Node) {
		pw1, pb1, pw2, pb2 := Param(w1), Param(b1), Param(w2), Param(b2)
		h := ReLU(Add(MatMul(Leaf(x), pw1), pb1))
		out := Sigmoid(Add(MatMul(h, pw2), pb2))
		loss := MaskedBCE(out, labels)
		return loss, []*Node{pw1, pb1, pw2, pb2}
	}
	lossValue := func() float64 {
		l, _ := forward()
		return l.Val.Data[0]
	}

	loss, params := forward()
	Backward(loss)
	mats := []*Matrix{w1, b1, w2, b2}
	for pi, p := range params {
		for i := range p.Grad.Data {
			got := p.Grad.Data[i]
			want := numericalGrad(mats[pi], i, lossValue)
			if math.Abs(got-want) > 1e-4*(1+math.Abs(want)) {
				t.Fatalf("param %d grad[%d] = %v, numerical %v", pi, i, got, want)
			}
		}
	}
}

func TestGradientsThroughConcatMeanTanh(t *testing.T) {
	a := FromRows([][]float64{{0.1, 0.2}, {0.3, -0.4}})
	b := FromRows([][]float64{{0.5}, {-0.6}})
	target := FromRows([][]float64{{0.2, 0.1, 0.7}})

	forward := func() (*Node, []*Node) {
		pa, pb := Param(a), Param(b)
		cat := ConcatCols(pa, pb) // 2x3
		pooled := MeanRows(Tanh(cat))
		loss := MSE(pooled, target)
		return loss, []*Node{pa, pb}
	}
	lossValue := func() float64 {
		l, _ := forward()
		return l.Val.Data[0]
	}
	loss, params := forward()
	Backward(loss)
	mats := []*Matrix{a, b}
	for pi, p := range params {
		for i := range p.Grad.Data {
			got := p.Grad.Data[i]
			want := numericalGrad(mats[pi], i, lossValue)
			if math.Abs(got-want) > 1e-5*(1+math.Abs(want)) {
				t.Fatalf("param %d grad[%d] = %v, numerical %v", pi, i, got, want)
			}
		}
	}
}

func TestScaleGradient(t *testing.T) {
	m := FromRows([][]float64{{2}})
	p := Param(m)
	loss := Scale(p, 3)
	Backward(loss)
	if p.Grad.Data[0] != 3 {
		t.Fatalf("d(3x)/dx = %v, want 3", p.Grad.Data[0])
	}
}

func TestAddBroadcastBias(t *testing.T) {
	x := Leaf(FromRows([][]float64{{1, 2}, {3, 4}}))
	b := Param(FromRows([][]float64{{10, 20}}))
	out := Add(x, b)
	if out.Val.At(1, 1) != 24 {
		t.Fatalf("broadcast add = %v, want 24", out.Val.At(1, 1))
	}
	loss := MSE(out, NewMatrix(2, 2))
	Backward(loss)
	// dL/db_j sums over rows.
	if b.Grad.Data[0] == 0 || b.Grad.Data[1] == 0 {
		t.Fatal("bias gradient not accumulated across rows")
	}
}

func TestMLPLearnsXOR(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	mlp := NewMLP(rng, 2, 8, 1)
	x := FromRows([][]float64{{0, 0}, {0, 1}, {1, 0}, {1, 1}})
	labels := []int{0, 1, 1, 0}
	opt := NewAdam(mlp.Params(), 0.05)
	var last float64
	for i := 0; i < 400; i++ {
		out := Sigmoid(mlp.Forward(Leaf(x)))
		loss := MaskedBCE(out, labels)
		last = loss.Val.Data[0]
		Backward(loss)
		opt.Step()
	}
	if last > 0.1 {
		t.Fatalf("XOR training loss = %v, want < 0.1", last)
	}
	out := Sigmoid(mlp.Forward(Leaf(x)))
	for i, l := range labels {
		pred := out.Val.Data[i] >= 0.5
		if pred != (l == 1) {
			t.Fatalf("XOR sample %d misclassified (p=%v)", i, out.Val.Data[i])
		}
	}
}

func TestSGDReducesLoss(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	lin := NewLinear(3, 1, rng)
	x := FromRows([][]float64{{1, 0, 0}, {0, 1, 0}, {0, 0, 1}, {1, 1, 1}})
	target := FromRows([][]float64{{1}, {2}, {3}, {6}})
	opt := NewSGD(lin.Params(), 0.1)
	first, last := 0.0, 0.0
	for i := 0; i < 300; i++ {
		loss := MSE(lin.Forward(Leaf(x)), target)
		if i == 0 {
			first = loss.Val.Data[0]
		}
		last = loss.Val.Data[0]
		Backward(loss)
		opt.Step()
	}
	if last > first/100 {
		t.Fatalf("SGD loss %v -> %v; insufficient decrease", first, last)
	}
}

func TestMaskedBCEAllUnlabeled(t *testing.T) {
	pred := Param(FromRows([][]float64{{0.5}, {0.9}}))
	loss := MaskedBCE(pred, []int{-1, -1})
	if loss.Val.Data[0] != 0 {
		t.Fatal("all-unlabeled BCE should be zero")
	}
}

func TestParamsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := NewMLP(rng, 4, 8, 2)
	data, err := MarshalParams(a.Params())
	if err != nil {
		t.Fatal(err)
	}
	b := NewMLP(rand.New(rand.NewSource(99)), 4, 8, 2)
	if err := UnmarshalParams(data, b.Params()); err != nil {
		t.Fatal(err)
	}
	x := Leaf(FromRows([][]float64{{1, -1, 0.5, 2}}))
	ya := a.Forward(x).Val.Data[0]
	yb := b.Forward(x).Val.Data[0]
	if ya != yb {
		t.Fatalf("restored model differs: %v vs %v", ya, yb)
	}
	// Mismatched shapes must error.
	c := NewMLP(rand.New(rand.NewSource(1)), 4, 9, 2)
	if err := UnmarshalParams(data, c.Params()); err == nil {
		t.Fatal("expected shape-mismatch error")
	}
}

// Property: sigmoid output is always in (0, 1) and matches 1/(1+e^-x).
func TestSigmoidProperty(t *testing.T) {
	f := func(x float64) bool {
		if math.IsNaN(x) || math.Abs(x) > 500 {
			return true
		}
		out := Sigmoid(Leaf(FromRows([][]float64{{x}})))
		v := out.Val.Data[0]
		want := 1 / (1 + math.Exp(-x))
		return v > 0 && v < 1 && math.Abs(v-want) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: ReLU is idempotent and non-negative.
func TestReLUProperty(t *testing.T) {
	f := func(vals []float64) bool {
		if len(vals) == 0 {
			return true
		}
		for i, v := range vals {
			if math.IsNaN(v) {
				vals[i] = 0
			}
		}
		m := FromVec(vals)
		once := ReLU(Leaf(m))
		twice := ReLU(once)
		for i := range once.Val.Data {
			if once.Val.Data[i] < 0 || once.Val.Data[i] != twice.Val.Data[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestShapePanics(t *testing.T) {
	assertPanics := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	assertPanics("matmul", func() {
		MatMulRaw(NewMatrix(2, 3), NewMatrix(2, 3))
	})
	assertPanics("add", func() {
		Add(Leaf(NewMatrix(2, 3)), Leaf(NewMatrix(3, 2)))
	})
	assertPanics("concat", func() {
		ConcatCols(Leaf(NewMatrix(2, 3)), Leaf(NewMatrix(3, 1)))
	})
	assertPanics("backward non-scalar", func() {
		Backward(Param(NewMatrix(2, 1)))
	})
	assertPanics("ragged rows", func() {
		FromRows([][]float64{{1, 2}, {3}})
	})
}
