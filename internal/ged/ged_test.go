package ged

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"github.com/streamtune/streamtune/internal/dag"
)

// mk builds a graph from a type list and edge list over indices.
func mk(name string, types []dag.OpType, edges [][2]int) *dag.Graph {
	g := dag.New(name)
	for i, ty := range types {
		g.MustAddOperator(&dag.Operator{ID: fmt.Sprintf("n%d", i), Type: ty})
	}
	for _, e := range edges {
		g.MustAddEdge(fmt.Sprintf("n%d", e[0]), fmt.Sprintf("n%d", e[1]))
	}
	return g
}

func chain3() *dag.Graph {
	return mk("c3", []dag.OpType{dag.Source, dag.Map, dag.Sink}, [][2]int{{0, 1}, {1, 2}})
}

func TestDistanceIdentical(t *testing.T) {
	a, b := chain3(), chain3()
	if d := Distance(a, b); d != 0 {
		t.Fatalf("GED(identical) = %v, want 0", d)
	}
}

func TestDistanceRelabel(t *testing.T) {
	a := chain3()
	b := mk("c3f", []dag.OpType{dag.Source, dag.Filter, dag.Sink}, [][2]int{{0, 1}, {1, 2}})
	if d := Distance(a, b); d != 1 {
		t.Fatalf("GED(one relabel) = %v, want 1", d)
	}
}

func TestDistanceNodeInsertion(t *testing.T) {
	a := chain3()
	b := mk("c4", []dag.OpType{dag.Source, dag.Map, dag.Filter, dag.Sink},
		[][2]int{{0, 1}, {1, 2}, {2, 3}})
	// Insert one filter node plus rewire: delete edge map->sink, add
	// map->filter, filter->sink => node + 1 edge del + 2 edge ins is one
	// optimal script of cost 4, but mapping may do better: map n2(sink)
	// to filter (relabel 1) and insert sink (1) + edge (1) = 3.
	d := Distance(a, b)
	if d < 1 || d > 4 {
		t.Fatalf("GED = %v, want in [1,4]", d)
	}
	// Verify symmetry.
	if d2 := Distance(b, a); d2 != d {
		t.Fatalf("GED not symmetric: %v vs %v", d, d2)
	}
}

func TestDistanceEdgeFlip(t *testing.T) {
	a := mk("ab", []dag.OpType{dag.Map, dag.Map}, [][2]int{{0, 1}})
	b := mk("ba", []dag.OpType{dag.Map, dag.Map}, [][2]int{{1, 0}})
	// Identity mapping costs one direction modification; any other
	// mapping also achieves <= 1 here. The flip op caps this at 1.
	if d := Distance(a, b); d > 1 {
		t.Fatalf("GED(flipped edge) = %v, want <= 1", d)
	}
}

func TestDistanceMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 12; trial++ {
		a := randomDAG(rng, 2+rng.Intn(4))
		b := randomDAG(rng, 2+rng.Intn(4))
		fast := Distance(a, b)
		slow := DistanceDirect(a, b)
		if fast != slow {
			t.Fatalf("trial %d: bounded %v != direct %v\nA: %s\nB: %s", trial, fast, slow, a, b)
		}
	}
}

func TestTriangleInequality(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 8; trial++ {
		g1 := randomDAG(rng, 2+rng.Intn(3))
		g2 := randomDAG(rng, 2+rng.Intn(3))
		g3 := randomDAG(rng, 2+rng.Intn(3))
		d13 := Distance(g1, g3)
		d12 := Distance(g1, g2)
		d23 := Distance(g2, g3)
		if d13 > d12+d23+1e-9 {
			t.Fatalf("triangle violated: d13=%v > d12=%v + d23=%v", d13, d12, d23)
		}
	}
}

func TestWithinThreshold(t *testing.T) {
	a := chain3()
	b := mk("c3f", []dag.OpType{dag.Source, dag.Filter, dag.Sink}, [][2]int{{0, 1}, {1, 2}})
	ok, d := WithinThreshold(a, b, 2)
	if !ok || d != 1 {
		t.Fatalf("WithinThreshold(tau=2) = (%v, %v), want (true, 1)", ok, d)
	}
	big := mk("big", []dag.OpType{dag.Source, dag.Join, dag.Join, dag.Aggregate, dag.WindowJoin, dag.Sink},
		[][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}})
	ok, d = WithinThreshold(a, big, 1)
	if ok {
		t.Fatalf("distant graphs reported within tau=1 (d=%v)", d)
	}
	// The miss path reports a finite lower bound on the distance, always
	// beyond the threshold and never beyond the exact distance.
	if math.IsInf(d, 1) || d <= 1 {
		t.Fatalf("out-of-threshold bound = %v, want finite value > tau", d)
	}
	if exact := Distance(a, big); d > exact {
		t.Fatalf("out-of-threshold bound %v exceeds exact distance %v", d, exact)
	}
}

func TestBoundReducesExpandedStates(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a := randomDAG(rng, 7)
	b := randomDAG(rng, 7)
	_, withBound := DistanceWithStats(a, b, true)
	_, noBound := DistanceWithStats(a, b, false)
	if withBound.Expanded >= noBound.Expanded {
		t.Fatalf("LS bound expanded %d states, direct %d; bound should prune",
			withBound.Expanded, noBound.Expanded)
	}
}

func TestDistanceSelfRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 10; trial++ {
		g := randomDAG(rng, 2+rng.Intn(6))
		if d := Distance(g, g); d != 0 {
			t.Fatalf("GED(g,g) = %v, want 0 for %s", d, g)
		}
	}
}

// randomDAG builds a random labeled DAG with edges oriented low -> high.
func randomDAG(rng *rand.Rand, n int) *dag.Graph {
	types := make([]dag.OpType, n)
	for i := range types {
		types[i] = dag.OpType(rng.Intn(dag.NumOpTypes()))
	}
	var edges [][2]int
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < 0.4 {
				edges = append(edges, [2]int{i, j})
			}
		}
	}
	return mk(fmt.Sprintf("rnd%d", rng.Int()), types, edges)
}
