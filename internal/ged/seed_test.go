package ged

// This file carries a verbatim copy of the seed GED solver (pre
// filter-and-verify pipeline): best-first search over partial node
// mappings with [][]bool adjacency and the from-scratch label-set
// bound. It exists purely as the differential-test oracle proving the
// optimized pipeline returns bit-identical distances.

import (
	"math"
	"sort"
	"testing"

	"github.com/streamtune/streamtune/internal/dag"
)

// BenchmarkGEDDistanceSeed runs the verbatim seed solver on the same
// pair bag as BenchmarkGEDDistance, so the before/after factor of the
// whole PR is measurable from one `go test -bench GEDDistance` run.
func BenchmarkGEDDistanceSeed(b *testing.B) {
	gs := benchGraphs(benchSize(b))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := gs[i%len(gs)]
		c := gs[(i*7+3)%len(gs)]
		refDistance(a, c)
	}
}

type refView struct {
	n      int
	labels []int
	adj    [][]bool
	edges  int
}

func refViewOf(g *dag.Graph) *refView {
	n := g.NumOperators()
	v := &refView{n: n, labels: make([]int, n), adj: make([][]bool, n)}
	for i := 0; i < n; i++ {
		v.labels[i] = int(g.OperatorAt(i).Type)
		v.adj[i] = make([]bool, n)
	}
	for i := 0; i < n; i++ {
		for _, d := range g.Downstream(i) {
			v.adj[i][d] = true
			v.edges++
		}
	}
	return v
}

// refDistance is the seed Distance.
func refDistance(g1, g2 *dag.Graph) float64 {
	return refAstar(refViewOf(g1), refViewOf(g2), math.Inf(1), true)
}

// refWithinThreshold is the seed WithinThreshold.
func refWithinThreshold(g1, g2 *dag.Graph, tau float64) (bool, float64) {
	d := refAstar(refViewOf(g1), refViewOf(g2), tau, true)
	if d <= tau {
		return true, d
	}
	return false, math.Inf(1)
}

type refState struct {
	k       int
	mapping []int
	used    []bool
	g       float64
	f       float64
}

type refPQ []*refState

func (q *refPQ) push(s *refState) {
	*q = append(*q, s)
	i := len(*q) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if (*q)[parent].f <= (*q)[i].f {
			break
		}
		(*q)[parent], (*q)[i] = (*q)[i], (*q)[parent]
		i = parent
	}
}

func (q *refPQ) pop() *refState {
	old := *q
	n := len(old)
	top := old[0]
	old[0] = old[n-1]
	*q = old[:n-1]
	h := *q
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < len(h) && h[l].f < h[small].f {
			small = l
		}
		if r < len(h) && h[r].f < h[small].f {
			small = r
		}
		if small == i {
			break
		}
		h[i], h[small] = h[small], h[i]
		i = small
	}
	return top
}

func refAstar(v1, v2 *refView, tau float64, useBound bool) float64 {
	start := &refState{mapping: make([]int, 0, v1.n), used: make([]bool, v2.n)}
	start.f = 0
	if useBound {
		start.f = refLabelSetBound(v1, v2, start)
	}
	open := refPQ{}
	open.push(start)
	best := math.Inf(1)

	for len(open) > 0 {
		cur := open.pop()
		if cur.f >= best || cur.f > tau {
			if cur.f > tau {
				return cur.f
			}
			continue
		}
		if cur.k == v1.n {
			total := cur.g + refFinishCost(v1, v2, cur)
			if total < best {
				best = total
			}
			if best <= cur.f {
				return best
			}
			continue
		}
		i := cur.k
		for j := 0; j < v2.n; j++ {
			if cur.used[j] {
				continue
			}
			g := cur.g + refSubstCost(v1, v2, cur, i, j)
			child := refExtend(cur, j, g)
			child.f = g
			if useBound {
				child.f += refLabelSetBound(v1, v2, child)
			}
			if child.f < best && child.f <= tau {
				open.push(child)
			}
		}
		g := cur.g + costNode + refDeleteEdgeCost(v1, cur, i)
		child := refExtend(cur, -1, g)
		child.f = g
		if useBound {
			child.f += refLabelSetBound(v1, v2, child)
		}
		if child.f < best && child.f <= tau {
			open.push(child)
		}
	}
	return best
}

func refExtend(s *refState, j int, g float64) *refState {
	m := make([]int, s.k+1)
	copy(m, s.mapping)
	m[s.k] = j
	used := append([]bool(nil), s.used...)
	if j >= 0 {
		used[j] = true
	}
	return &refState{k: s.k + 1, mapping: m, used: used, g: g}
}

func refSubstCost(v1, v2 *refView, s *refState, i, j int) float64 {
	c := 0.0
	if v1.labels[i] != v2.labels[j] {
		c += costRelabel
	}
	for a := 0; a < s.k; a++ {
		b := s.mapping[a]
		fwd1, bwd1 := v1.adj[a][i], v1.adj[i][a]
		var fwd2, bwd2 bool
		if b >= 0 && j >= 0 {
			fwd2, bwd2 = v2.adj[b][j], v2.adj[j][b]
		}
		switch {
		case fwd1 == fwd2 && bwd1 == bwd2:
		case fwd1 != fwd2 && bwd1 != bwd2:
			if (fwd1 || bwd1) && (fwd2 || bwd2) {
				c += costEdgeFlip
			} else {
				c += 2 * costEdge
			}
		default:
			c += costEdge
		}
	}
	return c
}

func refDeleteEdgeCost(v1 *refView, s *refState, i int) float64 {
	c := 0.0
	for a := 0; a < s.k; a++ {
		if v1.adj[a][i] {
			c += costEdge
		}
		if v1.adj[i][a] {
			c += costEdge
		}
	}
	return c
}

func refFinishCost(v1, v2 *refView, s *refState) float64 {
	c := 0.0
	for j := 0; j < v2.n; j++ {
		if !s.used[j] {
			c += costNode
		}
	}
	for x := 0; x < v2.n; x++ {
		for y := 0; y < v2.n; y++ {
			if v2.adj[x][y] && (!s.used[x] || !s.used[y]) {
				c += costEdge
			}
		}
	}
	return c
}

func refLabelSetBound(v1, v2 *refView, s *refState) float64 {
	rem1 := v1.n - s.k
	var labels1 []int
	for i := s.k; i < v1.n; i++ {
		labels1 = append(labels1, v1.labels[i])
	}
	var labels2 []int
	rem2 := 0
	for j := 0; j < v2.n; j++ {
		if !s.used[j] {
			labels2 = append(labels2, v2.labels[j])
			rem2++
		}
	}
	common := refMultisetIntersection(labels1, labels2)
	small := rem1
	if rem2 < small {
		small = rem2
	}
	nodeBound := float64(small-common)*costRelabel + math.Abs(float64(rem1-rem2))*costNode

	e1 := refRegionEdges(v1, s.k)
	e2 := 0
	for x := 0; x < v2.n; x++ {
		for y := 0; y < v2.n; y++ {
			if v2.adj[x][y] && !s.used[x] && !s.used[y] {
				e2++
			}
		}
	}
	edgeBound := math.Abs(float64(e1-e2)) * costEdge
	return nodeBound + edgeBound
}

func refRegionEdges(v *refView, from int) int {
	e := 0
	for x := from; x < v.n; x++ {
		for y := from; y < v.n; y++ {
			if v.adj[x][y] {
				e++
			}
		}
	}
	return e
}

func refMultisetIntersection(a, b []int) int {
	sort.Ints(a)
	sort.Ints(b)
	i, j, c := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			c++
			i++
			j++
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return c
}
