// Package ged computes Graph Edit Distance between logical dataflow
// DAGs. The edit operations follow §IV-C of the StreamTune paper: node
// insertion, node deletion, edge insertion, edge deletion, operator-type
// modification and edge-direction modification (a reversed edge costs
// one modification rather than a deletion plus an insertion).
//
// Two solvers are provided:
//
//   - AStar: best-first search over partial node mappings with a
//     label-set lower bound in the style of AStar+-LSa, supporting
//     threshold pruning for similarity search.
//   - Direct: the same search with the trivial zero lower bound — the
//     "directly computing GED" baseline of the paper's Fig. 11b.
//
// Dataflow DAGs are small (tens of nodes), so exact search is practical,
// exactly as the paper argues.
package ged

import (
	"math"
	"sort"

	"github.com/streamtune/streamtune/internal/dag"
)

// graphView is the compact labeled-digraph view used by the solvers.
type graphView struct {
	n      int
	labels []int    // operator type per node
	adj    [][]bool // adjacency matrix, adj[u][v] = edge u->v
	edges  int
}

func view(g *dag.Graph) *graphView {
	n := g.NumOperators()
	v := &graphView{n: n, labels: make([]int, n), adj: make([][]bool, n)}
	for i := 0; i < n; i++ {
		v.labels[i] = int(g.OperatorAt(i).Type)
		v.adj[i] = make([]bool, n)
	}
	for i := 0; i < n; i++ {
		for _, d := range g.Downstream(i) {
			v.adj[i][d] = true
			v.edges++
		}
	}
	return v
}

// Unit costs for every edit operation (the paper counts operations).
const (
	costNode     = 1.0 // node insertion or deletion
	costEdge     = 1.0 // edge insertion or deletion
	costRelabel  = 1.0 // operator type modification
	costEdgeFlip = 1.0 // edge direction modification
)

// Distance computes the exact GED between g1 and g2 using the label-set
// lower bound (AStar+-LS style best-first search).
func Distance(g1, g2 *dag.Graph) float64 {
	d, _ := search(view(g1), view(g2), math.Inf(1), true)
	return d
}

// DistanceDirect computes the exact GED with the zero heuristic — the
// "directly computing GED" baseline. It explores far more states.
func DistanceDirect(g1, g2 *dag.Graph) float64 {
	d, _ := search(view(g1), view(g2), math.Inf(1), false)
	return d
}

// WithinThreshold reports whether ged(g1, g2) <= tau, pruning the search
// at tau. It also returns the exact distance when within threshold
// (otherwise the returned distance is math.Inf(1)).
func WithinThreshold(g1, g2 *dag.Graph, tau float64) (bool, float64) {
	d, pruned := search(view(g1), view(g2), tau, true)
	if d <= tau {
		return true, d
	}
	_ = pruned
	return false, math.Inf(1)
}

// SearchStats counts explored states for benchmarking solver efficiency.
type SearchStats struct {
	Expanded int
}

// DistanceWithStats is Distance but also reports search effort.
func DistanceWithStats(g1, g2 *dag.Graph, useBound bool) (float64, SearchStats) {
	v1, v2 := view(g1), view(g2)
	var stats SearchStats
	d := astar(v1, v2, math.Inf(1), useBound, &stats)
	return d, stats
}

// state is a partial mapping of g1's nodes [0..k) onto g2 nodes or -1
// (deletion).
type state struct {
	k       int   // next g1 node to map
	mapping []int // mapping[i] for i < k: g2 node or -1
	used    []bool
	g       float64 // cost so far
	f       float64 // g + lower bound
}

// priority queue of states ordered by f.
type pq []*state

func (q pq) Len() int           { return len(q) }
func (q pq) Less(i, j int) bool { return q[i].f < q[j].f }
func (q pq) Swap(i, j int)      { q[i], q[j] = q[j], q[i] }
func (q *pq) Push(x *state)     { *q = append(*q, x) }
func (q *pq) Pop() *state {
	old := *q
	n := len(old)
	// Standard binary-heap pop.
	top := old[0]
	old[0] = old[n-1]
	*q = old[:n-1]
	down(*q, 0)
	return top
}

func up(q pq, i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if q[parent].f <= q[i].f {
			break
		}
		q[parent], q[i] = q[i], q[parent]
		i = parent
	}
}

func down(q pq, i int) {
	n := len(q)
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && q[l].f < q[small].f {
			small = l
		}
		if r < n && q[r].f < q[small].f {
			small = r
		}
		if small == i {
			return
		}
		q[i], q[small] = q[small], q[i]
		i = small
	}
}

func (q *pq) push(s *state) {
	*q = append(*q, s)
	up(*q, len(*q)-1)
}

func search(v1, v2 *graphView, tau float64, useBound bool) (float64, bool) {
	var stats SearchStats
	d := astar(v1, v2, tau, useBound, &stats)
	return d, d > tau
}

// astar runs best-first search over node-mapping prefixes. States map
// g1 nodes in index order; when all g1 nodes are mapped, remaining g2
// nodes are insertions and the edge cost is finalized exactly.
func astar(v1, v2 *graphView, tau float64, useBound bool, stats *SearchStats) float64 {
	start := &state{mapping: make([]int, 0, v1.n), used: make([]bool, v2.n)}
	start.f = 0
	if useBound {
		start.f = labelSetBound(v1, v2, start)
	}
	open := pq{}
	open.push(start)
	best := math.Inf(1)

	for len(open) > 0 {
		cur := open.Pop()
		if cur.f >= best || cur.f > tau {
			// Best-first: first goal popped is optimal; anything with
			// f beyond the threshold can be discarded.
			if cur.f > tau {
				return cur.f
			}
			continue
		}
		stats.Expanded++
		if cur.k == v1.n {
			total := cur.g + finishCost(v1, v2, cur)
			if total < best {
				best = total
			}
			if best <= cur.f {
				return best
			}
			continue
		}
		i := cur.k
		// Option A: map node i to each unused g2 node.
		for j := 0; j < v2.n; j++ {
			if cur.used[j] {
				continue
			}
			g := cur.g + substCost(v1, v2, cur, i, j)
			child := extend(cur, j, g)
			child.f = g
			if useBound {
				child.f += labelSetBound(v1, v2, child)
			}
			if child.f < best && child.f <= tau {
				open.push(child)
			}
		}
		// Option B: delete node i.
		g := cur.g + costNode + deleteEdgeCost(v1, cur, i)
		child := extend(cur, -1, g)
		child.f = g
		if useBound {
			child.f += labelSetBound(v1, v2, child)
		}
		if child.f < best && child.f <= tau {
			open.push(child)
		}
	}
	return best
}

func extend(s *state, j int, g float64) *state {
	m := make([]int, s.k+1)
	copy(m, s.mapping)
	m[s.k] = j
	used := append([]bool(nil), s.used...)
	if j >= 0 {
		used[j] = true
	}
	return &state{k: s.k + 1, mapping: m, used: used, g: g}
}

// substCost is the incremental cost of mapping g1 node i onto g2 node j:
// relabeling if types differ, plus edge edits against all previously
// mapped nodes.
func substCost(v1, v2 *graphView, s *state, i, j int) float64 {
	c := 0.0
	if v1.labels[i] != v2.labels[j] {
		c += costRelabel
	}
	for a := 0; a < s.k; a++ {
		b := s.mapping[a]
		c += edgePairCost(v1, v2, a, i, b, j)
	}
	return c
}

// edgePairCost compares the edges between g1 nodes (a, i) with the edges
// between their images (b, j), accounting for direction modification.
func edgePairCost(v1, v2 *graphView, a, i, b, j int) float64 {
	fwd1, bwd1 := v1.adj[a][i], v1.adj[i][a]
	var fwd2, bwd2 bool
	if b >= 0 && j >= 0 {
		fwd2, bwd2 = v2.adj[b][j], v2.adj[j][b]
	}
	// Count matching by direction; a mismatch in orientation costs one
	// flip, a presence mismatch costs one insertion/deletion.
	switch {
	case fwd1 == fwd2 && bwd1 == bwd2:
		return 0
	case fwd1 != fwd2 && bwd1 != bwd2:
		// Either a flip (one edge each, opposite directions) or two edits.
		if (fwd1 || bwd1) && (fwd2 || bwd2) {
			return costEdgeFlip
		}
		return 2 * costEdge
	default:
		return costEdge
	}
}

// deleteEdgeCost is the cost of the edges from deleted g1 node i to all
// previously mapped g1 nodes.
func deleteEdgeCost(v1 *graphView, s *state, i int) float64 {
	c := 0.0
	for a := 0; a < s.k; a++ {
		if v1.adj[a][i] {
			c += costEdge
		}
		if v1.adj[i][a] {
			c += costEdge
		}
	}
	return c
}

// finishCost finalizes a complete g1 mapping: unused g2 nodes are
// insertions (plus their induced edges among themselves and to mapped
// images), and unmatched g2 edges between images are insertions.
func finishCost(v1, v2 *graphView, s *state) float64 {
	c := 0.0
	for j := 0; j < v2.n; j++ {
		if !s.used[j] {
			c += costNode
		}
	}
	// Edges of g2 not yet accounted: any edge with at least one endpoint
	// unused, plus edges between used images that had no counterpart —
	// the latter were already charged in substCost via edgePairCost.
	for x := 0; x < v2.n; x++ {
		for y := 0; y < v2.n; y++ {
			if v2.adj[x][y] && (!s.used[x] || !s.used[y]) {
				c += costEdge
			}
		}
	}
	return c
}

// labelSetBound is the LS lower bound: the multiset edit distance
// between the unmapped labels of g1 and g2, plus a degree-based edge
// bound. It is admissible: every unmapped g1 node must be either
// relabeled/matched to an unmapped g2 label or deleted.
func labelSetBound(v1, v2 *graphView, s *state) float64 {
	rem1 := v1.n - s.k
	var labels1 []int
	for i := s.k; i < v1.n; i++ {
		labels1 = append(labels1, v1.labels[i])
	}
	var labels2 []int
	rem2 := 0
	for j := 0; j < v2.n; j++ {
		if !s.used[j] {
			labels2 = append(labels2, v2.labels[j])
			rem2++
		}
	}
	common := multisetIntersection(labels1, labels2)
	small := rem1
	if rem2 < small {
		small = rem2
	}
	nodeBound := float64(small-common)*costRelabel + math.Abs(float64(rem1-rem2))*costNode

	// Edge-count bound over the unmapped region: edges wholly inside the
	// unmapped region must be edited if counts differ.
	e1 := regionEdges(v1, s.k)
	e2 := 0
	for x := 0; x < v2.n; x++ {
		for y := 0; y < v2.n; y++ {
			if v2.adj[x][y] && !s.used[x] && !s.used[y] {
				e2++
			}
		}
	}
	edgeBound := math.Abs(float64(e1-e2)) * costEdge
	return nodeBound + edgeBound
}

func regionEdges(v *graphView, from int) int {
	e := 0
	for x := from; x < v.n; x++ {
		for y := from; y < v.n; y++ {
			if v.adj[x][y] {
				e++
			}
		}
	}
	return e
}

func multisetIntersection(a, b []int) int {
	sort.Ints(a)
	sort.Ints(b)
	i, j, c := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			c++
			i++
			j++
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return c
}
