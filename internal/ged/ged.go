// Package ged computes Graph Edit Distance between logical dataflow
// DAGs. The edit operations follow §IV-C of the StreamTune paper: node
// insertion, node deletion, edge insertion, edge deletion, operator-type
// modification and edge-direction modification (a reversed edge costs
// one modification rather than a deletion plus an insertion).
//
// Distances are answered by a filter-and-verify pipeline:
//
//   - Filters (filters.go) compute cheap lower bounds (size,
//     label-multiset, degree-sequence) and a greedy-mapping upper bound
//     in O(n^2); when the bounds meet, or the lower bound already
//     exceeds a similarity threshold, no search runs at all.
//   - Verify is an exact best-first A* search over partial node
//     mappings with a label-multiset lower bound in the style of
//     AStar+-LSa, threshold pruning for similarity search, and the
//     greedy upper bound seeding the incumbent. The core uses bitset
//     adjacency, maintains the bound incrementally per state, and
//     recycles states through a free list so expansions do not
//     allocate.
//
// DistanceDirect bypasses both stages with the zero lower bound — the
// "directly computing GED" baseline of the paper's Fig. 11b.
//
// Dataflow DAGs are small (tens of nodes), so exact search is practical,
// exactly as the paper argues.
package ged

import (
	"math"
	"math/bits"
	"sort"

	"github.com/streamtune/streamtune/internal/dag"
)

// bitset is a little-endian fixed-size bit vector.
type bitset []uint64

func newBitset(n int) bitset { return make(bitset, (n+63)/64) }

func (b bitset) set(i int)       { b[i>>6] |= 1 << (uint(i) & 63) }
func (b bitset) test(i int) bool { return b[i>>6]&(1<<(uint(i)&63)) != 0 }

// andCount returns |b AND o|.
func (b bitset) andCount(o bitset) int {
	c := 0
	for w := range b {
		c += bits.OnesCount64(b[w] & o[w])
	}
	return c
}

// graphView is the compact labeled-digraph view used by the solvers.
// out[i] holds the bit j for every edge i->j; in[j] holds the bit i for
// the same edge, giving O(n/64) column access.
type graphView struct {
	n      int
	labels []int
	out    []bitset
	in     []bitset
	outDeg []int
	inDeg  []int
	edges  int
	// labelHist counts labels over all nodes; its length is the label
	// domain size shared with any partner view via max().
	labelHist []int
	// sortedDeg is the ascending total-degree (in+out) sequence, pure
	// per-graph data precomputed so the per-pair degree filter is an
	// allocation-free merge scan.
	sortedDeg []int
}

func view(g *dag.Graph) *graphView {
	n := g.NumOperators()
	v := &graphView{
		n:      n,
		labels: make([]int, n),
		out:    make([]bitset, n),
		in:     make([]bitset, n),
		outDeg: make([]int, n),
		inDeg:  make([]int, n),
	}
	maxLabel := dag.NumOpTypes() - 1
	words := len(newBitset(n))
	slab := make(bitset, 2*n*words)
	for i := 0; i < n; i++ {
		v.labels[i] = int(g.OperatorAt(i).Type)
		if v.labels[i] > maxLabel {
			maxLabel = v.labels[i]
		}
		v.out[i] = slab[2*i*words : (2*i+1)*words]
		v.in[i] = slab[(2*i+1)*words : (2*i+2)*words]
	}
	for i := 0; i < n; i++ {
		for _, d := range g.Downstream(i) {
			v.out[i].set(d)
			v.in[d].set(i)
			v.outDeg[i]++
			v.inDeg[d]++
			v.edges++
		}
	}
	v.labelHist = make([]int, maxLabel+1)
	for _, l := range v.labels {
		v.labelHist[l]++
	}
	v.sortedDeg = make([]int, n)
	for i := 0; i < n; i++ {
		v.sortedDeg[i] = v.outDeg[i] + v.inDeg[i]
	}
	sort.Ints(v.sortedDeg)
	return v
}

// Unit costs for every edit operation (the paper counts operations).
const (
	costNode     = 1.0 // node insertion or deletion
	costEdge     = 1.0 // edge insertion or deletion
	costRelabel  = 1.0 // operator type modification
	costEdgeFlip = 1.0 // edge direction modification
)

// Distance computes the exact GED between g1 and g2 through the
// filter-and-verify pipeline: if the filter bounds meet, the distance is
// returned without opening the search queue; otherwise the AStar+-LS
// search runs with the greedy upper bound as the incumbent.
func Distance(g1, g2 *dag.Graph) float64 {
	return distanceViews(view(g1), view(g2))
}

func distanceViews(v1, v2 *graphView) float64 {
	d, _ := pipelineViews(v1, v2)
	return d
}

// pipelineViews is the shared filter-and-verify core behind Distance
// and PipelineDistance: filter check, counter accounting, and the
// incumbent-seeded exact search.
func pipelineViews(v1, v2 *graphView) (float64, SearchStats) {
	s := newSolver(v1, v2, true)
	lb, ub := lowerBoundViews(v1, v2), s.greedyUpper()
	stats := SearchStats{LowerBound: lb, UpperBound: ub}
	if lb == ub {
		stats.Filtered = true
		counters.FilterAnswered.Add(1)
		return ub, stats
	}
	d := s.search(math.Inf(1), ub)
	counters.Searched.Add(1)
	counters.Expanded.Add(uint64(s.stats.Expanded))
	stats.Expanded = s.stats.Expanded
	return d, stats
}

// DistanceDirect computes the exact GED with the zero heuristic and no
// filtering — the "directly computing GED" baseline. It explores far
// more states.
func DistanceDirect(g1, g2 *dag.Graph) float64 {
	s := newSolver(view(g1), view(g2), false)
	return s.search(math.Inf(1), math.Inf(1))
}

// WithinThreshold reports whether ged(g1, g2) <= tau, pruning the search
// at tau. On a hit the exact distance is returned; on a miss the second
// result is a lower bound on the true distance (always > tau), from the
// filters when they already exceed tau and from the pruned search
// frontier otherwise.
func WithinThreshold(g1, g2 *dag.Graph, tau float64) (bool, float64) {
	return withinViews(view(g1), view(g2), tau)
}

func withinViews(v1, v2 *graphView, tau float64) (bool, float64) {
	lb := lowerBoundViews(v1, v2)
	if lb > tau {
		counters.FilterAnswered.Add(1)
		return false, lb
	}
	s := newSolver(v1, v2, true)
	ub := s.greedyUpper()
	if lb == ub {
		counters.FilterAnswered.Add(1)
		return true, ub
	}
	d := s.search(tau, ub)
	counters.Searched.Add(1)
	counters.Expanded.Add(uint64(s.stats.Expanded))
	return d <= tau, d
}

// WithinThresholdSearchOnly is WithinThreshold without the filter stage:
// the raw threshold-pruned AStar+-LS search of the seed implementation.
// It is kept as the differential-test reference and benchmark baseline
// for the filter-and-verify pipeline.
func WithinThresholdSearchOnly(g1, g2 *dag.Graph, tau float64) (bool, float64) {
	s := newSolver(view(g1), view(g2), true)
	d := s.search(tau, math.Inf(1))
	if d <= tau {
		return true, d
	}
	return false, d
}

// SearchStats counts search effort and records the filter outcome for a
// single pair.
type SearchStats struct {
	// Expanded is the number of A* states expanded (zero when the
	// filters answered the pair).
	Expanded int
	// Filtered reports whether the pair was answered by the filter
	// stage alone, without opening the search queue.
	Filtered bool
	// LowerBound and UpperBound are the filter bounds computed for the
	// pair (valid only for the pipeline entry points).
	LowerBound, UpperBound float64
}

// DistanceWithStats runs the raw A* solver (no filter stage) and reports
// search effort; useBound selects the label-multiset lower bound versus
// the zero heuristic. It is the primitive behind the Fig. 11b solver
// comparison.
func DistanceWithStats(g1, g2 *dag.Graph, useBound bool) (float64, SearchStats) {
	s := newSolver(view(g1), view(g2), useBound)
	d := s.search(math.Inf(1), math.Inf(1))
	return d, *s.stats
}

// PipelineDistance is Distance but also reports the filter outcome and
// search effort of the pair.
func PipelineDistance(g1, g2 *dag.Graph) (float64, SearchStats) {
	return pipelineViews(view(g1), view(g2))
}

// state is a partial mapping of g1's nodes [0..k) onto g2 nodes or -1
// (deletion). States are arena-allocated and recycled through the
// solver's free list; the bound bookkeeping (unused-label histogram and
// unmapped-region edge counts) is carried per state and updated
// incrementally instead of recomputed from scratch.
type state struct {
	next    *state // free-list link
	g, f    float64
	k       int32
	rem2    int32 // unused g2 nodes
	e2      int32 // g2 edges with both endpoints unused
	eUsed   int32 // g2 edges with both endpoints used
	mapping []int32
	used    bitset
	hist2   []int16 // label counts over unused g2 nodes
}

// solver runs one exact search over a pair of graph views.
type solver struct {
	v1, v2   *graphView
	L        int // label domain size
	useBound bool
	words2   int

	// suf1 is the flattened (n1+1) x L suffix label histogram of g1:
	// suf1[k*L+l] counts label l among g1 nodes [k, n1). sufE1[k] counts
	// g1 edges with both endpoints in [k, n1). maskLow[k] has bits
	// [0, k) set. All are immutable after construction, so every state's
	// bound is a table lookup plus its own incremental histogram. The
	// bound tables are built lazily by search(): filter-answered pairs
	// (the majority at corpus scale) never pay for them.
	suf1    []int16
	sufE1   []int32
	maskLow []bitset

	heap  []*state
	free  *state
	stats *SearchStats
}

func newSolver(v1, v2 *graphView, useBound bool) *solver {
	L := len(v1.labelHist)
	if len(v2.labelHist) > L {
		L = len(v2.labelHist)
	}
	s := &solver{
		v1: v1, v2: v2, L: L, useBound: useBound,
		words2: len(newBitset(v2.n)),
		stats:  &SearchStats{},
	}
	n1 := v1.n
	s.maskLow = make([]bitset, n1+1)
	words1 := len(newBitset(n1))
	maskSlab := make(bitset, (n1+1)*words1)
	for k := 0; k <= n1; k++ {
		m := maskSlab[k*words1 : (k+1)*words1]
		for i := 0; i < k; i++ {
			m.set(i)
		}
		s.maskLow[k] = m
	}
	return s
}

// buildBoundTables fills the suffix label histograms and suffix edge
// counts consumed by bound(). Called once per solver, and only when a
// search actually opens (never for filter-answered pairs).
func (s *solver) buildBoundTables() {
	if s.suf1 != nil {
		return
	}
	v1, n1, L := s.v1, s.v1.n, s.L
	s.suf1 = make([]int16, (n1+1)*L)
	for k := n1 - 1; k >= 0; k-- {
		copy(s.suf1[k*L:(k+1)*L], s.suf1[(k+1)*L:(k+2)*L])
		s.suf1[k*L+v1.labels[k]]++
	}
	s.sufE1 = make([]int32, n1+1)
	for k := n1 - 1; k >= 0; k-- {
		e := s.sufE1[k+1]
		for y := k; y < n1; y++ {
			if v1.out[k].test(y) {
				e++
			}
			if v1.out[y].test(k) && y != k {
				e++
			}
		}
		s.sufE1[k] = e
	}
}

// newState returns a blank state from the free list, allocating backing
// storage only when the list is empty (so allocation is bounded by the
// peak number of live states, not the number of expansions).
func (s *solver) newState() *state {
	if st := s.free; st != nil {
		s.free = st.next
		st.next = nil
		return st
	}
	return &state{
		mapping: make([]int32, s.v1.n),
		used:    make(bitset, s.words2),
		hist2:   make([]int16, s.L),
	}
}

func (s *solver) release(st *state) {
	st.next = s.free
	s.free = st
}

// bound is the LS lower bound at depth k with the given unused-label
// histogram and both-unused edge count of g2: the multiset edit distance
// between the unmapped labels plus an unmapped-region edge-count bound.
// It matches the seed labelSetBound value exactly.
func (s *solver) bound(k int, hist2 []int16, rem2 int32, e2 int32) float64 {
	rem1 := s.v1.n - k
	row := s.suf1[k*s.L : (k+1)*s.L]
	common := 0
	for l := 0; l < s.L; l++ {
		m := int(row[l])
		if h := int(hist2[l]); h < m {
			m = h
		}
		common += m
	}
	small := rem1
	if int(rem2) < small {
		small = int(rem2)
	}
	nodeBound := float64(small-common)*costRelabel + math.Abs(float64(rem1-int(rem2)))*costNode
	edgeBound := math.Abs(float64(s.sufE1[k]-e2)) * costEdge
	return nodeBound + edgeBound
}

// search runs best-first A* over node-mapping prefixes. States map g1
// nodes in index order; when all g1 nodes are mapped, remaining g2 nodes
// are insertions and the edge cost is finalized exactly. seedUB, when
// finite, must be an achievable edit cost (it becomes the incumbent).
// The return value is the exact distance when it is <= tau; otherwise it
// is a lower bound on the distance (itself > tau).
func (s *solver) search(tau, seedUB float64) float64 {
	v1, v2 := s.v1, s.v2
	if s.useBound {
		s.buildBoundTables()
	}
	root := s.newState()
	root.k, root.g = 0, 0
	root.rem2 = int32(v2.n)
	root.e2 = int32(v2.edges)
	root.eUsed = 0
	for w := range root.used {
		root.used[w] = 0
	}
	for l := range root.hist2 {
		root.hist2[l] = 0
	}
	for _, l := range v2.labels {
		root.hist2[l]++
	}
	root.f = 0
	if s.useBound {
		root.f = s.bound(0, root.hist2, root.rem2, root.e2)
	}
	if root.f > tau {
		// Mirrors the seed solver: the root bound already proves the
		// pair is beyond the threshold, and is itself a lower bound.
		return root.f
	}
	s.heap = s.heap[:0]
	s.push(root)

	best := seedUB
	// minCut tracks the smallest f discarded at the threshold, so a
	// pruned search still reports a valid lower bound on the distance.
	minCut := math.Inf(1)

	for len(s.heap) > 0 {
		cur := s.pop()
		if cur.f >= best {
			// Best-first: the incumbent is achievable, so anything at or
			// above it cannot improve the optimum.
			s.release(cur)
			continue
		}
		s.stats.Expanded++
		k := int(cur.k)
		if k == v1.n {
			total := cur.g + float64(cur.rem2)*costNode + float64(int32(v2.edges)-cur.eUsed)*costEdge
			if total < best {
				best = total
			}
			if best <= cur.f {
				s.release(cur)
				return best
			}
			s.release(cur)
			continue
		}
		i := k
		// Option A: map node i to each unused g2 node.
		for j := 0; j < v2.n; j++ {
			if cur.used.test(j) {
				continue
			}
			g := cur.g + s.substCost(cur, i, j)
			outToUsed := int32(v2.out[j].andCount(cur.used))
			inToUsed := int32(v2.in[j].andCount(cur.used))
			e2 := cur.e2 - int32(v2.outDeg[j]) + outToUsed - int32(v2.inDeg[j]) + inToUsed
			f := g
			if s.useBound {
				lj := v2.labels[j]
				cur.hist2[lj]--
				f += s.bound(k+1, cur.hist2, cur.rem2-1, e2)
				cur.hist2[lj]++
			}
			if f >= best {
				continue
			}
			if f > tau {
				if f < minCut {
					minCut = f
				}
				continue
			}
			child := s.newState()
			copy(child.mapping, cur.mapping)
			child.mapping[k] = int32(j)
			copy(child.used, cur.used)
			child.used.set(j)
			copy(child.hist2, cur.hist2)
			child.hist2[v2.labels[j]]--
			child.k = cur.k + 1
			child.rem2 = cur.rem2 - 1
			child.e2 = e2
			child.eUsed = cur.eUsed + outToUsed + inToUsed
			child.g, child.f = g, f
			s.push(child)
		}
		// Option B: delete node i.
		g := cur.g + costNode + s.deleteEdgeCost(k, i)
		f := g
		if s.useBound {
			f += s.bound(k+1, cur.hist2, cur.rem2, cur.e2)
		}
		switch {
		case f >= best:
		case f > tau:
			if f < minCut {
				minCut = f
			}
		default:
			child := s.newState()
			copy(child.mapping, cur.mapping)
			child.mapping[k] = -1
			copy(child.used, cur.used)
			copy(child.hist2, cur.hist2)
			child.k = cur.k + 1
			child.rem2 = cur.rem2
			child.e2 = cur.e2
			child.eUsed = cur.eUsed
			child.g, child.f = g, f
			s.push(child)
		}
		s.release(cur)
	}
	if best > tau && minCut < best {
		// Every completion was cut at the threshold or dominated by the
		// incumbent, so min(minCut, best) lower-bounds the distance.
		return minCut
	}
	return best
}

// substCost is the incremental cost of mapping g1 node i onto g2 node j:
// relabeling if types differ, plus edge edits against all previously
// mapped nodes (a reversed edge counts one direction modification).
func (s *solver) substCost(cur *state, i, j int) float64 {
	v1, v2 := s.v1, s.v2
	c := 0.0
	if v1.labels[i] != v2.labels[j] {
		c += costRelabel
	}
	k := int(cur.k)
	for a := 0; a < k; a++ {
		b := cur.mapping[a]
		fwd1, bwd1 := v1.out[a].test(i), v1.out[i].test(a)
		var fwd2, bwd2 bool
		if b >= 0 {
			fwd2, bwd2 = v2.out[b].test(j), v2.out[j].test(int(b))
		}
		switch {
		case fwd1 == fwd2 && bwd1 == bwd2:
		case fwd1 != fwd2 && bwd1 != bwd2:
			// Either a flip (one edge each, opposite directions) or two
			// separate edits.
			if (fwd1 || bwd1) && (fwd2 || bwd2) {
				c += costEdgeFlip
			} else {
				c += 2 * costEdge
			}
		default:
			c += costEdge
		}
	}
	return c
}

// deleteEdgeCost is the cost of the edges between deleted g1 node i and
// all previously mapped g1 nodes [0, k).
func (s *solver) deleteEdgeCost(k, i int) float64 {
	mask := s.maskLow[k]
	n := s.v1.in[i].andCount(mask) + s.v1.out[i].andCount(mask)
	return float64(n) * costEdge
}

// Binary min-heap on f, the single priority-queue implementation of the
// package.
func (s *solver) push(st *state) { s.heap = heapPush(s.heap, st) }
func (s *solver) pop() *state {
	var st *state
	s.heap, st = heapPop(s.heap)
	return st
}

func heapPush(h []*state, st *state) []*state {
	h = append(h, st)
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if h[parent].f <= h[i].f {
			break
		}
		h[parent], h[i] = h[i], h[parent]
		i = parent
	}
	return h
}

func heapPop(h []*state) ([]*state, *state) {
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h[n] = nil
	h = h[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && h[l].f < h[small].f {
			small = l
		}
		if r < n && h[r].f < h[small].f {
			small = r
		}
		if small == i {
			break
		}
		h[i], h[small] = h[small], h[i]
		i = small
	}
	return h, top
}
