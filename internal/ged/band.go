// Learned GED band: a tiny plan-compiled regressor over pair features
// slotted between the O(n^2) filter bounds and the A* search. The model
// predicts GED with a calibrated confidence margin and decides which
// certificate to attempt first and in which order candidates are
// examined — it never decides an answer by itself. Every skip is backed
// by an exact certificate (a cached exact distance, an admissible lower
// bound above the threshold or the incumbent, or an achievable upper
// bound under the threshold), so all returned distances and booleans
// are bit-identical to the unbanded pipeline for every margin,
// including the adversarial extremes 0 (trust predictions fully) and
// +Inf (never trust them). That is the DS2 bar the ROADMAP sets: the
// learned layer only re-orders/skips work, never changes results.
package ged

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"github.com/streamtune/streamtune/internal/dag"
	"github.com/streamtune/streamtune/internal/nn"
)

// BandFeatureDim is the width of the pair feature vector the band's
// regressor consumes.
const BandFeatureDim = 7

// pairFeatures builds the symmetric per-pair feature vector from the
// PR2 view data: node and edge counts (orientation-normalized so
// feat(a,b) == feat(b,a), matching the symmetric metric and the
// canonically-oriented cache), label-multiset L1 distance, optimal
// total-degree mismatch, and the admissible filter lower bound.
func pairFeatures(v1, v2 *graphView) []float64 {
	n1, n2 := v1.n, v2.n
	if n1 > n2 {
		n1, n2 = n2, n1
	}
	e1, e2 := v1.edges, v2.edges
	if e1 > e2 {
		e1, e2 = e2, e1
	}
	labelL1 := 0
	for l := 0; l < len(v1.labelHist) || l < len(v2.labelHist); l++ {
		a, b := 0, 0
		if l < len(v1.labelHist) {
			a = v1.labelHist[l]
		}
		if l < len(v2.labelHist) {
			b = v2.labelHist[l]
		}
		if a > b {
			labelL1 += a - b
		} else {
			labelL1 += b - a
		}
	}
	return []float64{
		float64(n1), float64(n2),
		float64(e1), float64(e2),
		float64(labelL1),
		float64(degreeMismatch(v1, v2)),
		lowerBoundViews(v1, v2),
	}
}

// BandOptions configures the learned band.
type BandOptions struct {
	// MinTrain is the number of observed exact distances before the
	// first fit; the band runs certificate-only until then.
	MinTrain int
	// MaxTrain caps the retained training pairs (the first MaxTrain
	// observations are kept, deterministically).
	MaxTrain int
	// Hidden holds the regressor's hidden-layer widths.
	Hidden []int
	// Epochs and LR drive each full-batch Adam fit.
	Epochs int
	LR     float64
	// Seed makes fits deterministic.
	Seed int64
	// FixedMargin pins the confidence margin to Margin verbatim (0 and
	// +Inf are the adversarial extremes) instead of calibrating it from
	// the fit residuals. Results are exact either way; the margin only
	// shifts which certificates are attempted first.
	FixedMargin bool
	Margin      float64
}

// DefaultBandOptions returns the band setup used by incremental
// clustering and the admission bench.
func DefaultBandOptions() BandOptions {
	return BandOptions{MinTrain: 48, MaxTrain: 4096, Hidden: []int{16, 8}, Epochs: 150, LR: 0.01, Seed: 1}
}

// BandStats is a snapshot of the band's work accounting.
type BandStats struct {
	// Hits counts candidate pairs decided without running an exact
	// search or full distance computation: cache hits, lower-bound
	// prunes, and upper-bound accepts.
	Hits uint64
	// Fallbacks counts candidate pairs that fell through to an exact
	// search or full distance computation.
	Fallbacks uint64
	// Fits counts model (re)fits; Trained and Margin describe the
	// current model; TrainSize the retained observation count.
	Fits      uint64
	Trained   bool
	Margin    float64
	TrainSize int
}

// Band is a learned GED accelerator over a shared PairCache. It is safe
// for concurrent use.
type Band struct {
	cache *PairCache
	opts  BandOptions

	mu      sync.Mutex
	model   *nn.Regressor
	margin  float64
	trained bool
	lastFit int
	trainX  [][]float64
	trainY  []float64

	hits      atomic.Uint64
	fallbacks atomic.Uint64
	fits      atomic.Uint64

	viewMu sync.RWMutex
	views  map[string]*graphView
}

// NewBand returns a band over cache (nil allocates a private one).
// Zero-valued option fields take the DefaultBandOptions values; a zero
// Margin with FixedMargin set is honored verbatim.
func NewBand(cache *PairCache, opts BandOptions) *Band {
	def := DefaultBandOptions()
	if opts.MinTrain <= 0 {
		opts.MinTrain = def.MinTrain
	}
	if opts.MaxTrain <= 0 {
		opts.MaxTrain = def.MaxTrain
	}
	if len(opts.Hidden) == 0 {
		opts.Hidden = def.Hidden
	}
	if opts.Epochs <= 0 {
		opts.Epochs = def.Epochs
	}
	if opts.LR <= 0 {
		opts.LR = def.LR
	}
	if cache == nil {
		cache = NewPairCache()
	}
	return &Band{cache: cache, opts: opts, views: make(map[string]*graphView)}
}

// Cache returns the underlying shared distance cache.
func (b *Band) Cache() *PairCache { return b.cache }

// Stats returns a snapshot of the band's accounting.
func (b *Band) Stats() BandStats {
	b.mu.Lock()
	trained, margin, n := b.trained, b.margin, len(b.trainY)
	b.mu.Unlock()
	return BandStats{
		Hits:      b.hits.Load(),
		Fallbacks: b.fallbacks.Load(),
		Fits:      b.fits.Load(),
		Trained:   trained,
		Margin:    margin,
		TrainSize: n,
	}
}

// Trained reports whether a model has been fit yet.
func (b *Band) Trained() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.trained
}

// Margin returns the current confidence margin (meaningless before the
// first fit unless FixedMargin is set).
func (b *Band) Margin() float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.margin
}

// observe harvests one exact (features, distance) pair and refits when
// the training set first reaches MinTrain and each time it doubles
// since the last fit. Fits are pure functions of (options, retained
// observations), matching the repo's deterministic-refit idiom.
func (b *Band) observe(feat []float64, d float64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if len(b.trainY) < b.opts.MaxTrain {
		b.trainX = append(b.trainX, append([]float64(nil), feat...))
		b.trainY = append(b.trainY, d)
	}
	if len(b.trainY) >= b.opts.MinTrain && (!b.trained || len(b.trainY) >= 2*b.lastFit) {
		b.fitLocked()
	}
}

func (b *Band) fitLocked() {
	model := nn.NewRegressor(BandFeatureDim, b.opts.Hidden, b.opts.Seed)
	if _, err := model.Fit(b.trainX, b.trainY, b.opts.Epochs, b.opts.LR); err != nil {
		return
	}
	if b.opts.FixedMargin {
		b.margin = b.opts.Margin
	} else {
		// Calibrate the margin as the worst absolute residual over the
		// training set: predictions are trusted only where even the
		// worst observed error would not flip the decision.
		worst := 0.0
		for i, x := range b.trainX {
			if r := math.Abs(model.Predict(x) - b.trainY[i]); r > worst {
				worst = r
			}
		}
		b.margin = worst
	}
	b.model = model
	b.trained = true
	b.lastFit = len(b.trainY)
	b.fits.Add(1)
}

// predict returns the model's distance estimate and margin, or ok =
// false before the first fit.
func (b *Band) predict(feat []float64) (pred, margin float64, ok bool) {
	b.mu.Lock()
	model, margin, trained := b.model, b.margin, b.trained
	b.mu.Unlock()
	if !trained {
		return 0, 0, false
	}
	return model.Predict(feat), margin, true
}

// viewOf returns a (cached) solver view for g. Center graphs recur
// across admissions, so the band memoizes views by fingerprint; the map
// is epoch-reset at a small cap to bound growth under churn.
func (b *Band) viewOf(fp string, g *dag.Graph) *graphView {
	b.viewMu.RLock()
	v, ok := b.views[fp]
	b.viewMu.RUnlock()
	if ok {
		return v
	}
	v = view(g)
	b.viewMu.Lock()
	if len(b.views) >= 1024 {
		b.views = make(map[string]*graphView, 1024)
	}
	b.views[fp] = v
	b.viewMu.Unlock()
	return v
}

// Distance is the exact GED between g1 and g2 through the shared cache,
// harvesting a training observation on every computed (non-cached)
// pair.
func (b *Band) Distance(g1, g2 *dag.Graph) float64 {
	key := orientedKey(Fingerprint(g1), Fingerprint(g2))
	if d, ok := b.cache.lookup(key); ok {
		b.hits.Add(1)
		return d
	}
	v1, v2 := view(g1), view(g2)
	feat := pairFeatures(v1, v2)
	d := distanceViews(v1, v2)
	b.cache.store(key, d)
	b.observe(feat, d)
	b.fallbacks.Add(1)
	return d
}

// Within reports whether ged(g1, g2) <= tau. The boolean is exact and
// identical to WithinThreshold's for every margin: the prediction only
// chooses which certificate to attempt first. Unlike the unbanded
// pipeline, an achievable upper bound at or under tau accepts without
// opening the search — the skip the ISSUE's "prediction clears the
// threshold" band performs, certificate-backed.
func (b *Band) Within(g1, g2 *dag.Graph, tau float64) bool {
	key := orientedKey(Fingerprint(g1), Fingerprint(g2))
	if d, ok := b.cache.lookup(key); ok {
		b.hits.Add(1)
		return d <= tau
	}
	v1, v2 := view(g1), view(g2)
	feat := pairFeatures(v1, v2)
	lb := feat[BandFeatureDim-1]
	if lb > tau {
		b.hits.Add(1)
		return false
	}
	if pred, margin, ok := b.predict(feat); ok && pred-margin > tau {
		// Predicted confidently outside: the greedy upper bound cannot
		// certify anything useful, go straight to the pruned search.
		s := newSolver(v1, v2, true)
		d := s.search(tau, math.Inf(1))
		b.fallbacks.Add(1)
		if d <= tau {
			b.cache.store(key, d)
			b.observe(feat, d)
			return true
		}
		return false
	}
	s := newSolver(v1, v2, true)
	ub := s.greedyUpper()
	if lb == ub {
		b.hits.Add(1)
		b.cache.store(key, ub)
		b.observe(feat, ub)
		return true
	}
	if ub <= tau {
		// Achievable cost within the threshold: accept without search.
		// The distance itself stays unknown, so nothing is cached.
		b.hits.Add(1)
		return true
	}
	d := s.search(tau, ub)
	b.fallbacks.Add(1)
	if d <= tau {
		b.cache.store(key, d)
		b.observe(feat, d)
		return true
	}
	return false
}

// WithinThreshold is bit-identical to the package-level WithinThreshold
// (both results, hit or miss) — the band only adds cache consultation,
// which can never change either value: a cached hit is the same exact
// distance a search hit would return, and the miss path replays the
// canonical pipeline verbatim. Property-tested across adversarial
// margins in band_test.go.
func (b *Band) WithinThreshold(g1, g2 *dag.Graph, tau float64) (bool, float64) {
	key := orientedKey(Fingerprint(g1), Fingerprint(g2))
	if d, ok := b.cache.peek(key); ok && d <= tau {
		counters.CacheHits.Add(1)
		b.hits.Add(1)
		return true, d
	}
	v1, v2 := view(g1), view(g2)
	within, d := withinViews(v1, v2, tau)
	b.fallbacks.Add(1)
	if within {
		b.cache.store(key, d)
		b.observe(pairFeatures(v1, v2), d)
	}
	return within, d
}

// CrossDistances is the full exact gs x hs GED matrix through the
// shared cache. Every cell's exact value is the result, so the band has
// nothing to skip here — it delegates to the deduplicating cached
// matrix, which is bit-identical to CrossDistances by construction.
func (b *Band) CrossDistances(gs, hs []*dag.Graph, workers int) [][]float64 {
	return CrossDistancesCached(gs, hs, workers, b.cache)
}

// Nearest returns the index of the center nearest to g and the exact
// distance, identical to the canonical linear scan (strict <, ties to
// the first index) for every margin. The prediction orders candidates
// so a tight incumbent lands early; each skipped candidate is certified
// by a cached distance or an admissible lower bound at or above the
// incumbent, and the rest are verified by incumbent-pruned exact
// searches. allCached reports that no bound or search work was needed.
func (b *Band) Nearest(g *dag.Graph, centers []*dag.Graph) (best int, bestD float64, allCached bool) {
	if len(centers) == 0 {
		return -1, math.Inf(1), true
	}
	fg := Fingerprint(g)
	type cand struct {
		idx  int
		key  pairKey
		feat []float64
		lb   float64
		sort float64
		v    *graphView
	}
	best, bestD = -1, math.Inf(1)
	var vg *graphView
	var open []cand
	for c, center := range centers {
		fc := Fingerprint(center)
		key := orientedKey(fg, fc)
		if d, ok := b.cache.peek(key); ok {
			counters.CacheHits.Add(1)
			b.hits.Add(1)
			// Index order plus strict < keeps the first-index tie-break.
			if d < bestD {
				best, bestD = c, d
			}
			continue
		}
		if vg == nil {
			vg = view(g)
		}
		vc := b.viewOf(fc, center)
		feat := pairFeatures(vg, vc)
		cd := cand{idx: c, key: key, feat: feat, lb: feat[BandFeatureDim-1], v: vc}
		if pred, margin, ok := b.predict(feat); ok && !math.IsInf(margin, 1) {
			cd.sort = pred
		} else {
			// Untrained or infinite margin: fall back to ordering by the
			// admissible lower bound.
			cd.sort = cd.lb
		}
		open = append(open, cd)
	}
	if len(open) == 0 {
		return best, bestD, true
	}
	sort.SliceStable(open, func(i, j int) bool { return open[i].sort < open[j].sort })
	for _, c := range open {
		// Certificate: d(g, c) >= lb, so lb beyond the incumbent (or
		// tying it with a later index) cannot win the lexicographic
		// (distance, index) minimum the canonical scan computes.
		if best >= 0 && (c.lb > bestD || (c.lb == bestD && c.idx > best)) {
			b.hits.Add(1)
			continue
		}
		if best < 0 {
			d := distanceViews(vg, c.v)
			b.cache.store(c.key, d)
			b.observe(c.feat, d)
			b.fallbacks.Add(1)
			best, bestD = c.idx, d
			continue
		}
		within, d := withinViews(vg, c.v, bestD)
		b.fallbacks.Add(1)
		if !within {
			// d is a certified lower bound > bestD: the candidate loses.
			continue
		}
		b.cache.store(c.key, d)
		b.observe(c.feat, d)
		if d < bestD || (d == bestD && c.idx < best) {
			best, bestD = c.idx, d
		}
	}
	return best, bestD, false
}
