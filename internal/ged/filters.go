// Filter stage of the filter-and-verify GED pipeline: cheap lower
// bounds and a greedy-mapping upper bound computed in O(n^2) without
// opening the A* queue. Every similarity query runs the filters first;
// the exact search only verifies pairs the bounds cannot decide.
package ged

import (
	"math"
	"sync/atomic"

	"github.com/streamtune/streamtune/internal/dag"
)

// FilterBounds returns the filter stage's lower and upper bounds on
// ged(g1, g2). The lower bound combines the size, label-multiset and
// degree-sequence bounds; the upper bound is the cost of an explicit
// greedy node mapping, so it is always achievable. lower <= GED <= upper
// holds for every pair.
func FilterBounds(g1, g2 *dag.Graph) (lower, upper float64) {
	return boundsViews(view(g1), view(g2))
}

func boundsViews(v1, v2 *graphView) (lower, upper float64) {
	return lowerBoundViews(v1, v2), newSolver(v1, v2, false).greedyUpper()
}

// lowerBoundViews is max over the admissible lower bounds:
//
//   - label-multiset: every matched node with a differing label costs a
//     relabel, and the node-count difference costs insertions/deletions;
//   - size: the edge-count difference costs edge insertions/deletions
//     (flips preserve the edge count);
//   - degree-sequence: each edge insertion/deletion changes the total
//     degree of exactly two nodes by one, and flips change none, so the
//     optimally-matched total-degree difference D needs >= ceil(D/2)
//     edge operations.
//
// Relabel, node and edge operations are disjoint, so the three parts
// add.
func lowerBoundViews(v1, v2 *graphView) float64 {
	n1, n2 := v1.n, v2.n
	small, large := n1, n2
	if small > large {
		small, large = large, small
	}
	common := 0
	for l := 0; l < len(v1.labelHist) && l < len(v2.labelHist); l++ {
		m := v1.labelHist[l]
		if v2.labelHist[l] < m {
			m = v2.labelHist[l]
		}
		common += m
	}
	nodePart := float64(small-common)*costRelabel + float64(large-small)*costNode

	edgeDiff := v1.edges - v2.edges
	if edgeDiff < 0 {
		edgeDiff = -edgeDiff
	}
	degHalf := (degreeMismatch(v1, v2) + 1) / 2
	edgePart := float64(edgeDiff)
	if h := float64(degHalf); h > edgePart {
		edgePart = h
	}
	return nodePart + edgePart*costEdge
}

// degreeMismatch is the minimum sum of |deg1 - deg2| over matchings of
// the total-degree multisets, padding the smaller graph with zeros:
// sorted alignment attains the minimum, and the views carry their
// sorted sequences precomputed, so this is an allocation-free scan.
// Zero pads sort before everything else, so the shorter sequence is
// aligned to the tail of the longer one.
func degreeMismatch(v1, v2 *graphView) int {
	a, b := v1.sortedDeg, v2.sortedDeg
	if len(a) > len(b) {
		a, b = b, a
	}
	pad := len(b) - len(a)
	sum := 0
	for i, d := range b {
		if i < pad {
			sum += d
			continue
		}
		diff := a[i-pad] - d
		if diff < 0 {
			diff = -diff
		}
		sum += diff
	}
	return sum
}

// greedyUpper builds one explicit full mapping greedily — each g1 node
// takes the cheapest incremental assignment (substitution or deletion),
// preferring the same-index node on ties so identical graphs map by
// identity — and returns its exact edit cost. The result is a valid
// edit script cost, hence an upper bound on the GED. The state it uses
// is returned to the solver's free list, so a following search reuses
// it.
func (s *solver) greedyUpper() float64 {
	v1, v2 := s.v1, s.v2
	st := s.newState()
	st.k, st.g = 0, 0
	st.rem2 = int32(v2.n)
	st.e2 = int32(v2.edges)
	st.eUsed = 0
	for w := range st.used {
		st.used[w] = 0
	}
	for i := 0; i < v1.n; i++ {
		bestC := math.Inf(1)
		bestJ := -2
		for j := 0; j < v2.n; j++ {
			if st.used.test(j) {
				continue
			}
			c := s.substCost(st, i, j)
			if c < bestC || (c == bestC && j == i) {
				bestC, bestJ = c, j
			}
		}
		if del := costNode + s.deleteEdgeCost(i, i); del < bestC {
			bestC, bestJ = del, -1
		}
		st.mapping[i] = int32(bestJ)
		if bestJ >= 0 {
			outToUsed := int32(v2.out[bestJ].andCount(st.used))
			inToUsed := int32(v2.in[bestJ].andCount(st.used))
			st.used.set(bestJ)
			st.rem2--
			st.eUsed += outToUsed + inToUsed
		}
		st.g += bestC
		st.k++
	}
	total := st.g + float64(st.rem2)*costNode + float64(int32(v2.edges)-st.eUsed)*costEdge
	s.release(st)
	return total
}

// Package-level cumulative counters of the filter-and-verify pipeline,
// for benchmark reporting (BENCH_ged.json). They are observational only:
// no result depends on them.
var counters struct {
	FilterAnswered atomic.Uint64 // pairs answered by filters alone
	Searched       atomic.Uint64 // pairs that opened the A* queue
	Expanded       atomic.Uint64 // total A* states expanded
	CacheHits      atomic.Uint64 // pairs answered by the fingerprint cache
}

// Counters is a snapshot of the package's cumulative pipeline counters.
type Counters struct {
	// FilterAnswered counts pairs resolved by the filter lower/upper
	// bounds without any search.
	FilterAnswered uint64
	// Searched counts pairs that required the exact A* verification.
	Searched uint64
	// Expanded is the total number of A* states expanded across all
	// searched pairs.
	Expanded uint64
	// CacheHits counts pairs answered by the canonical-fingerprint
	// distance cache.
	CacheHits uint64
}

// SnapshotCounters returns the cumulative pipeline counters.
func SnapshotCounters() Counters {
	return Counters{
		FilterAnswered: counters.FilterAnswered.Load(),
		Searched:       counters.Searched.Load(),
		Expanded:       counters.Expanded.Load(),
		CacheHits:      counters.CacheHits.Load(),
	}
}

// ResetCounters zeroes the cumulative pipeline counters.
func ResetCounters() {
	counters.FilterAnswered.Store(0)
	counters.Searched.Store(0)
	counters.Expanded.Store(0)
	counters.CacheHits.Store(0)
}
