// Canonical fingerprints and the fingerprint-keyed distance cache that
// dedupe identical DAGs across a corpus: StreamTune corpora are built by
// cloning and perturbing a small set of query templates, so most GED
// pairs repeat and only one representative per distinct structure needs
// an exact computation.
package ged

import (
	"encoding/binary"
	"sort"
	"sync"

	"github.com/streamtune/streamtune/internal/dag"
)

// Fingerprint returns a byte-exact key of the graph's labeled structure:
// operator types in insertion order plus the sorted adjacency of every
// node. Graph and operator names are excluded — GED ignores them — so
// clones and re-rated copies of the same template share a fingerprint.
// Equal fingerprints imply identical solver views, hence identical GED
// to every third graph. (Isomorphic graphs built in different insertion
// orders may still get distinct fingerprints; the cache then simply
// computes both, it never returns a wrong distance.)
func Fingerprint(g *dag.Graph) string {
	n := g.NumOperators()
	buf := make([]byte, 0, 8+8*n)
	buf = binary.AppendUvarint(buf, uint64(n))
	for i := 0; i < n; i++ {
		buf = binary.AppendUvarint(buf, uint64(g.OperatorAt(i).Type))
	}
	for i := 0; i < n; i++ {
		down := append([]int(nil), g.Downstream(i)...)
		sort.Ints(down)
		buf = binary.AppendUvarint(buf, uint64(len(down)))
		for _, d := range down {
			buf = binary.AppendUvarint(buf, uint64(d))
		}
	}
	return string(buf)
}

type pairKey struct{ a, b string }

// orientedKey orders the pair canonically; GED is symmetric, so one
// cache entry serves both orientations.
func orientedKey(ka, kb string) pairKey {
	if ka <= kb {
		return pairKey{ka, kb}
	}
	return pairKey{kb, ka}
}

// PairCache memoizes exact GED values by canonical fingerprint pair. It
// is safe for concurrent use; distances are pure functions of the two
// structures, so concurrent duplicate computations store the same value.
//
// A cache built with NewPairCacheCap bounds its memory with epoch
// resets: once the pair count reaches the cap, the whole map is dropped
// and repopulated by subsequent traffic. Entries are pure recomputable
// values, so a reset costs only recomputation, never correctness —
// which is why a wholesale epoch reset beats per-entry eviction here:
// it needs no access-order bookkeeping on the read-heavy hot path.
type PairCache struct {
	mu     sync.RWMutex
	m      map[pairKey]float64
	cap    int
	resets uint64
}

// NewPairCache returns an empty, unbounded cache.
func NewPairCache() *PairCache {
	return &PairCache{m: make(map[pairKey]float64)}
}

// NewPairCacheCap returns an empty cache holding at most maxPairs
// distinct structure pairs; inserting past the cap clears the cache
// first (an epoch reset). maxPairs < 1 means unbounded.
func NewPairCacheCap(maxPairs int) *PairCache {
	c := NewPairCache()
	if maxPairs > 0 {
		c.cap = maxPairs
	}
	return c
}

// Len reports the number of distinct structure pairs cached.
func (c *PairCache) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.m)
}

// Cap reports the configured pair cap (0 = unbounded).
func (c *PairCache) Cap() int { return c.cap }

// Resets reports how many epoch resets the cap has forced.
func (c *PairCache) Resets() uint64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.resets
}

// Lookup returns the cached distance for the pair when present,
// without computing anything on a miss. Callers that account hits and
// misses themselves (e.g. the tuning service's admission stats) use it
// ahead of Distance so the classification reflects what their own call
// found, not concurrent cache growth.
func (c *PairCache) Lookup(g1, g2 *dag.Graph) (float64, bool) {
	return c.lookup(orientedKey(Fingerprint(g1), Fingerprint(g2)))
}

// Distance returns the exact GED between g1 and g2, consulting the
// cache first and storing the result on a miss.
func (c *PairCache) Distance(g1, g2 *dag.Graph) float64 {
	key := orientedKey(Fingerprint(g1), Fingerprint(g2))
	if d, ok := c.lookup(key); ok {
		return d
	}
	d := distanceViews(view(g1), view(g2))
	c.store(key, d)
	return d
}

func (c *PairCache) lookup(key pairKey) (float64, bool) {
	d, ok := c.peek(key)
	if ok {
		counters.CacheHits.Add(1)
	}
	return d, ok
}

// peek is lookup without touching the cache-hit counter, for bulk
// callers that account for their own hits.
func (c *PairCache) peek(key pairKey) (float64, bool) {
	c.mu.RLock()
	d, ok := c.m[key]
	c.mu.RUnlock()
	return d, ok
}

func (c *PairCache) store(key pairKey, d float64) {
	c.mu.Lock()
	if c.cap > 0 && len(c.m) >= c.cap {
		if _, present := c.m[key]; !present {
			c.m = make(map[pairKey]float64, c.cap)
			c.resets++
		}
	}
	c.m[key] = d
	c.mu.Unlock()
}
