package ged

import (
	"math/rand"
	"testing"

	"github.com/streamtune/streamtune/internal/dag"
)

// benchGraphs returns a deterministic corpus-like family: random DAGs
// plus renamed clones, mirroring how StreamTune corpora repeat
// structures.
func benchGraphs(n int) []*dag.Graph {
	rng := rand.New(rand.NewSource(77))
	out := make([]*dag.Graph, 0, n)
	for len(out) < n {
		if len(out) > 2 && rng.Float64() < 0.4 {
			c := out[rng.Intn(len(out))].Clone()
			c.Name = "clone"
			out = append(out, c)
			continue
		}
		out = append(out, randomDAG(rng, 4+rng.Intn(5)))
	}
	return out
}

func benchSize(b *testing.B) int {
	if testing.Short() {
		return 10
	}
	return 24
}

// BenchmarkGEDDistance measures the filter-and-verify pipeline on a
// fixed bag of random pairs.
func BenchmarkGEDDistance(b *testing.B) {
	gs := benchGraphs(benchSize(b))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := gs[i%len(gs)]
		c := gs[(i*7+3)%len(gs)]
		Distance(a, c)
	}
}

// BenchmarkGEDDistanceSearchOnly measures the raw bounded A* (the seed
// pipeline) on the same pairs, for before/after comparison.
func BenchmarkGEDDistanceSearchOnly(b *testing.B) {
	gs := benchGraphs(benchSize(b))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := gs[i%len(gs)]
		c := gs[(i*7+3)%len(gs)]
		DistanceWithStats(a, c, true)
	}
}

// BenchmarkCrossDistances measures the deduplicating matrix against a
// K-means-shaped workload (many queries, few targets).
func BenchmarkCrossDistances(b *testing.B) {
	gs := benchGraphs(benchSize(b))
	targets := gs[:4]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		CrossDistances(gs, targets, 0)
	}
}

// BenchmarkCrossDistancesSearchOnly is the seed per-cell matrix on the
// same workload.
func BenchmarkCrossDistancesSearchOnly(b *testing.B) {
	gs := benchGraphs(benchSize(b))
	targets := gs[:4]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		CrossDistancesSearchOnly(gs, targets, 0)
	}
}
