package ged

import (
	"math"

	"github.com/streamtune/streamtune/internal/dag"
	"github.com/streamtune/streamtune/internal/parallel"
)

// CrossDistances computes the full queries x targets GED matrix with up
// to workers goroutines. Structurally-identical graphs (by canonical
// fingerprint) are deduplicated, so only one exact computation runs per
// distinct pair; every cell is a pure function of the two structures, so
// the matrix is identical for every worker count.
// out[i][j] = Distance(queries[i], targets[j]).
func CrossDistances(queries, targets []*dag.Graph, workers int) [][]float64 {
	return CrossDistancesCached(queries, targets, workers, nil)
}

// CrossDistancesCached is CrossDistances sharing a fingerprint-keyed
// distance cache across calls: K-means re-evaluates the same graphs
// against recurring centers every iteration, so a per-run cache answers
// most later iterations without any search. A nil cache uses a fresh
// private one (dedup within the call only).
func CrossDistancesCached(queries, targets []*dag.Graph, workers int, cache *PairCache) [][]float64 {
	if cache == nil {
		cache = NewPairCache()
	}
	out := make([][]float64, len(queries))
	for i := range out {
		out[i] = make([]float64, len(targets))
	}
	if len(queries) == 0 || len(targets) == 0 {
		return out
	}

	// One fingerprint and view per graph, deduplicated by structure.
	type rep struct {
		key  string
		view *graphView
	}
	distinct := make(map[string]*graphView)
	intern := func(gs []*dag.Graph) []rep {
		reps := make([]rep, len(gs))
		for i, g := range gs {
			key := Fingerprint(g)
			if _, ok := distinct[key]; !ok {
				distinct[key] = view(g)
			}
			reps[i] = rep{key: key, view: distinct[key]}
		}
		return reps
	}
	qr := intern(queries)
	tr := intern(targets)

	// Collect the distinct uncached pairs in deterministic order.
	type job struct {
		key    pairKey
		va, vb *graphView
	}
	seen := make(map[pairKey]bool)
	var jobs []job
	for _, q := range qr {
		for _, t := range tr {
			key := orientedKey(q.key, t.key)
			if seen[key] {
				continue
			}
			seen[key] = true
			if _, ok := cache.peek(key); !ok {
				jobs = append(jobs, job{key: key, va: q.view, vb: t.view})
			}
		}
	}
	vals := make([]float64, len(jobs))
	_ = parallel.ForEach(len(jobs), workers, func(i int) error {
		vals[i] = distanceViews(jobs[i].va, jobs[i].vb)
		return nil
	})
	for i, j := range jobs {
		cache.store(j.key, vals[i])
	}
	// Every cell beyond the freshly-computed distinct pairs was answered
	// by the cache (pre-existing entries or within-call dedup).
	counters.CacheHits.Add(uint64(len(queries)*len(targets) - len(jobs)))

	for i, q := range qr {
		for j, t := range tr {
			d, _ := cache.peek(orientedKey(q.key, t.key))
			out[i][j] = d
		}
	}
	return out
}

// CrossDistancesSearchOnly is the seed pipeline — one raw bounded A*
// search per cell, no filters, no deduplication — kept as the benchmark
// baseline for the filter-and-verify path.
func CrossDistancesSearchOnly(queries, targets []*dag.Graph, workers int) [][]float64 {
	qv := make([]*graphView, len(queries))
	for i, g := range queries {
		qv[i] = view(g)
	}
	tv := make([]*graphView, len(targets))
	for j, g := range targets {
		tv[j] = view(g)
	}
	out := make([][]float64, len(queries))
	for i := range out {
		out[i] = make([]float64, len(targets))
	}
	if len(targets) == 0 {
		return out
	}
	// Fan out over cells, not rows: with few targets (typical K-means
	// assignment has K centers) rows would under-utilize the pool.
	n := len(queries) * len(targets)
	_ = parallel.ForEach(n, workers, func(c int) error {
		i, j := c/len(targets), c%len(targets)
		s := newSolver(qv[i], tv[j], true)
		out[i][j] = s.search(math.Inf(1), math.Inf(1))
		return nil
	})
	return out
}
