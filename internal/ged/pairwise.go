package ged

import (
	"math"

	"github.com/streamtune/streamtune/internal/dag"
	"github.com/streamtune/streamtune/internal/parallel"
)

// CrossDistances computes the full queries x targets GED matrix with up
// to workers goroutines. Each cell is an independent exact search over
// immutable graph views, so the matrix is identical for every worker
// count. out[i][j] = Distance(queries[i], targets[j]).
func CrossDistances(queries, targets []*dag.Graph, workers int) [][]float64 {
	// Build the compact views once per graph instead of once per pair.
	qv := make([]*graphView, len(queries))
	for i, g := range queries {
		qv[i] = view(g)
	}
	tv := make([]*graphView, len(targets))
	for j, g := range targets {
		tv[j] = view(g)
	}
	out := make([][]float64, len(queries))
	for i := range out {
		out[i] = make([]float64, len(targets))
	}
	if len(targets) == 0 {
		return out
	}
	// Fan out over cells, not rows: with few targets (typical K-means
	// assignment has K centers) rows would under-utilize the pool.
	n := len(queries) * len(targets)
	_ = parallel.ForEach(n, workers, func(c int) error {
		i, j := c/len(targets), c%len(targets)
		d, _ := search(qv[i], tv[j], math.Inf(1), true)
		out[i][j] = d
		return nil
	})
	return out
}
