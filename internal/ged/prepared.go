package ged

import (
	"math"

	"github.com/streamtune/streamtune/internal/dag"
)

// Prepared is a graph with its solver view precomputed once, for
// callers that evaluate many pairs over the same graphs (similarity
// search, metric indexes, clustering). The view is immutable and safe
// for concurrent use.
type Prepared struct {
	g *dag.Graph
	v *graphView
}

// Prepare builds the reusable pair-evaluation handle for g.
func Prepare(g *dag.Graph) *Prepared {
	return &Prepared{g: g, v: view(g)}
}

// PrepareAll prepares every graph of a set.
func PrepareAll(gs []*dag.Graph) []*Prepared {
	out := make([]*Prepared, len(gs))
	for i, g := range gs {
		out[i] = Prepare(g)
	}
	return out
}

// Graph returns the underlying graph.
func (p *Prepared) Graph() *dag.Graph { return p.g }

// Distance is the filter-and-verify exact GED to q.
func (p *Prepared) Distance(q *Prepared) float64 {
	return distanceViews(p.v, q.v)
}

// WithinThreshold is the filter-and-verify threshold query against q,
// with the same semantics as the package-level WithinThreshold.
func (p *Prepared) WithinThreshold(q *Prepared, tau float64) (bool, float64) {
	return withinViews(p.v, q.v, tau)
}

// DistanceDirect is the zero-heuristic unfiltered exact GED to q — the
// Fig. 11b baseline, view reuse aside.
func (p *Prepared) DistanceDirect(q *Prepared) float64 {
	s := newSolver(p.v, q.v, false)
	return s.search(math.Inf(1), math.Inf(1))
}
