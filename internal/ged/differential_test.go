package ged

import (
	"math"
	"math/rand"
	"testing"

	"github.com/streamtune/streamtune/internal/dag"
)

// TestDifferentialDistance proves the filter-and-verify pipeline returns
// bit-identical distances to the seed solver on randomized DAG pairs.
func TestDifferentialDistance(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	pairs := 220
	if testing.Short() {
		pairs = 60
	}
	for trial := 0; trial < pairs; trial++ {
		a := randomDAG(rng, 1+rng.Intn(7))
		b := randomDAG(rng, 1+rng.Intn(7))
		got := Distance(a, b)
		want := refDistance(a, b)
		if got != want {
			t.Fatalf("trial %d: pipeline %v != seed %v\nA: %s\nB: %s", trial, got, want, a, b)
		}
		if gotRaw, _ := DistanceWithStats(a, b, true); gotRaw != want {
			t.Fatalf("trial %d: raw solver %v != seed %v\nA: %s\nB: %s", trial, gotRaw, want, a, b)
		}
	}
}

// TestDifferentialWithinThreshold proves threshold queries agree with
// the seed on the hit/miss decision and on the exact hit distance, and
// that the new miss-path value is a valid finite lower bound.
func TestDifferentialWithinThreshold(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	pairs := 220
	if testing.Short() {
		pairs = 60
	}
	for trial := 0; trial < pairs; trial++ {
		a := randomDAG(rng, 1+rng.Intn(6))
		b := randomDAG(rng, 1+rng.Intn(6))
		tau := float64(rng.Intn(7))
		gotOK, gotD := WithinThreshold(a, b, tau)
		wantOK, wantD := refWithinThreshold(a, b, tau)
		if gotOK != wantOK {
			t.Fatalf("trial %d tau=%v: pipeline ok=%v, seed ok=%v\nA: %s\nB: %s",
				trial, tau, gotOK, wantOK, a, b)
		}
		if gotOK {
			if gotD != wantD {
				t.Fatalf("trial %d tau=%v: hit distance %v != seed %v", trial, tau, gotD, wantD)
			}
			continue
		}
		// Miss path: the seed returned +Inf; the pipeline must return a
		// finite lower bound in (tau, exact].
		exact := refDistance(a, b)
		if math.IsInf(gotD, 1) || gotD <= tau || gotD > exact {
			t.Fatalf("trial %d tau=%v: miss lower bound %v not in (tau, %v]", trial, tau, gotD, exact)
		}
		// The search-only path must agree on the decision too.
		rawOK, rawD := WithinThresholdSearchOnly(a, b, tau)
		if rawOK != wantOK {
			t.Fatalf("trial %d tau=%v: search-only ok=%v, seed ok=%v", trial, tau, rawOK, wantOK)
		}
		if rawD <= tau || rawD > exact {
			t.Fatalf("trial %d tau=%v: search-only miss bound %v not in (tau, %v]", trial, tau, rawD, exact)
		}
	}
}

// TestDifferentialCrossDistances proves the deduplicating matrix equals
// per-pair seed distances, including over structurally-duplicated
// inputs, for several worker counts.
func TestDifferentialCrossDistances(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	qs := make([]*dag.Graph, 0, 8)
	for i := 0; i < 6; i++ {
		qs = append(qs, randomDAG(rng, 1+rng.Intn(5)))
	}
	// Duplicate some queries under new names to exercise the dedup path.
	qs = append(qs, qs[0].Clone(), qs[2].Clone())
	qs[len(qs)-2].Name = "dup0"
	qs[len(qs)-1].Name = "dup2"
	ts := make([]*dag.Graph, 0, 4)
	for j := 0; j < 4; j++ {
		ts = append(ts, randomDAG(rng, 1+rng.Intn(6)))
	}
	for _, workers := range []int{1, 3, 8} {
		got := CrossDistancesCached(qs, ts, workers, NewPairCache())
		for i, q := range qs {
			for j, tg := range ts {
				want := refDistance(q, tg)
				if got[i][j] != want {
					t.Fatalf("workers=%d: [%d][%d] = %v, seed %v", workers, i, j, got[i][j], want)
				}
			}
		}
	}
}
