package ged

import (
	"math/rand"
	"testing"
)

// TestPairCacheCapEpochReset proves a capped cache never exceeds its
// cap, counts its epoch resets, and keeps returning exact distances
// across resets.
func TestPairCacheCapEpochReset(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const cap = 16
	c := NewPairCacheCap(cap)
	if c.Cap() != cap {
		t.Fatalf("Cap() = %d, want %d", c.Cap(), cap)
	}
	for trial := 0; trial < 200; trial++ {
		a := randomDAG(rng, 1+rng.Intn(6))
		b := randomDAG(rng, 1+rng.Intn(6))
		got := c.Distance(a, b)
		if want := Distance(a, b); got != want {
			t.Fatalf("trial %d: capped cache distance %v != %v", trial, got, want)
		}
		if c.Len() > cap {
			t.Fatalf("trial %d: cache holds %d pairs, cap %d", trial, c.Len(), cap)
		}
	}
	if c.Resets() == 0 {
		t.Fatalf("200 random pairs through a %d-pair cap forced no epoch reset", cap)
	}

	// A re-stored existing key at the cap must not force a reset.
	full := NewPairCacheCap(1)
	a := randomDAG(rng, 3)
	b := randomDAG(rng, 4)
	full.Distance(a, b)
	before := full.Resets()
	full.store(orientedKey(Fingerprint(a), Fingerprint(b)), full.Distance(a, b))
	if full.Resets() != before {
		t.Fatalf("re-storing a present key bumped resets %d -> %d", before, full.Resets())
	}

	// The default constructor stays unbounded.
	if NewPairCache().Cap() != 0 {
		t.Fatalf("NewPairCache should be unbounded")
	}
}
