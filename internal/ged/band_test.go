package ged

import (
	"math"
	"math/rand"
	"testing"

	"github.com/streamtune/streamtune/internal/dag"
)

// bandVariants builds one untrained band plus trained bands at the
// adversarial margin extremes (0: trust predictions fully; +Inf: never
// trust them) and with a calibrated margin. Training happens through
// the public harvesting path: observed exact distances.
func bandVariants(t *testing.T, seed int64) map[string]*Band {
	t.Helper()
	mk := func(opts BandOptions) *Band {
		opts.MinTrain = 12
		opts.Epochs = 40
		b := NewBand(nil, opts)
		rng := rand.New(rand.NewSource(seed))
		for i := 0; !b.Trained() || i < 24; i++ {
			b.Distance(randomDAG(rng, 1+rng.Intn(6)), randomDAG(rng, 1+rng.Intn(6)))
			if i > 200 {
				t.Fatalf("band failed to train after %d observations", i)
			}
		}
		if !b.Trained() {
			t.Fatalf("band untrained after warmup")
		}
		return b
	}
	return map[string]*Band{
		"untrained":  NewBand(nil, BandOptions{}),
		"margin0":    mk(BandOptions{FixedMargin: true, Margin: 0}),
		"marginInf":  mk(BandOptions{FixedMargin: true, Margin: math.Inf(1)}),
		"calibrated": mk(BandOptions{}),
	}
}

// TestBandWithinThresholdBitIdentical is the satellite exactness
// property test: band-enabled WithinThreshold returns bit-identical
// results (both values, hit and miss) to the band-disabled pipeline
// across random corpora and adversarial margins.
func TestBandWithinThresholdBitIdentical(t *testing.T) {
	trials := 160
	if testing.Short() {
		trials = 50
	}
	for name, b := range bandVariants(t, 11) {
		rng := rand.New(rand.NewSource(101))
		for trial := 0; trial < trials; trial++ {
			a := randomDAG(rng, 1+rng.Intn(6))
			g := randomDAG(rng, 1+rng.Intn(6))
			tau := float64(rng.Intn(7))
			gotOK, gotD := b.WithinThreshold(a, g, tau)
			wantOK, wantD := WithinThreshold(a, g, tau)
			if gotOK != wantOK || gotD != wantD {
				t.Fatalf("%s trial %d tau=%v: band (%v, %v) != plain (%v, %v)\nA: %s\nB: %s",
					name, trial, tau, gotOK, gotD, wantOK, wantD, a, g)
			}
			// Repeat hits the cache-accept path; it must stay identical.
			gotOK, gotD = b.WithinThreshold(a, g, tau)
			if gotOK != wantOK || gotD != wantD {
				t.Fatalf("%s trial %d tau=%v cached: band (%v, %v) != plain (%v, %v)",
					name, trial, tau, gotOK, gotD, wantOK, wantD)
			}
		}
	}
}

// TestBandWithinBooleanExact proves the boolean-only threshold query —
// where the band is free to accept on an achievable upper bound without
// searching — still never disagrees with the exact pipeline.
func TestBandWithinBooleanExact(t *testing.T) {
	trials := 160
	if testing.Short() {
		trials = 50
	}
	for name, b := range bandVariants(t, 12) {
		rng := rand.New(rand.NewSource(102))
		for trial := 0; trial < trials; trial++ {
			a := randomDAG(rng, 1+rng.Intn(6))
			g := randomDAG(rng, 1+rng.Intn(6))
			tau := float64(rng.Intn(7))
			want, _ := WithinThreshold(a, g, tau)
			if got := b.Within(a, g, tau); got != want {
				t.Fatalf("%s trial %d tau=%v: band %v != plain %v\nA: %s\nB: %s",
					name, trial, tau, got, want, a, g)
			}
		}
	}
}

// TestBandCrossDistancesBitIdentical checks the full-matrix path cell
// for cell against the uncached exact matrix.
func TestBandCrossDistancesBitIdentical(t *testing.T) {
	n := 10
	if testing.Short() {
		n = 6
	}
	for name, b := range bandVariants(t, 13) {
		rng := rand.New(rand.NewSource(103))
		gs := make([]*dag.Graph, n)
		hs := make([]*dag.Graph, n/2)
		for i := range gs {
			gs[i] = randomDAG(rng, 1+rng.Intn(6))
		}
		for i := range hs {
			hs[i] = randomDAG(rng, 1+rng.Intn(6))
		}
		got := b.CrossDistances(gs, hs, 2)
		want := CrossDistances(gs, hs, 2)
		for i := range want {
			for j := range want[i] {
				if got[i][j] != want[i][j] {
					t.Fatalf("%s: cell (%d,%d) band %v != plain %v", name, i, j, got[i][j], want[i][j])
				}
			}
		}
	}
}

// TestBandNearestCanonical proves the banded nearest-center query is
// identical to the canonical linear scan (strict <, ties to the first
// index) for every margin, including duplicate-center tie cases, both
// cold and fully cached.
func TestBandNearestCanonical(t *testing.T) {
	trials := 60
	if testing.Short() {
		trials = 20
	}
	for name, b := range bandVariants(t, 14) {
		rng := rand.New(rand.NewSource(104))
		for trial := 0; trial < trials; trial++ {
			k := 1 + rng.Intn(9)
			centers := make([]*dag.Graph, 0, k+1)
			for len(centers) < k {
				centers = append(centers, randomDAG(rng, 1+rng.Intn(6)))
			}
			if k > 1 && rng.Float64() < 0.5 {
				// Force a structural duplicate so the first-index
				// tie-break is exercised.
				dup := centers[rng.Intn(len(centers))].Clone()
				dup.Name = "dup"
				centers = append(centers, dup)
			}
			q := randomDAG(rng, 1+rng.Intn(6))
			wantC, wantD := -1, math.Inf(1)
			for c, center := range centers {
				if d := Distance(q, center); d < wantD {
					wantC, wantD = c, d
				}
			}
			for pass := 0; pass < 2; pass++ {
				gotC, gotD, _ := b.Nearest(q, centers)
				if gotC != wantC || gotD != wantD {
					t.Fatalf("%s trial %d pass %d: Nearest = (%d, %v), canonical scan (%d, %v)",
						name, trial, pass, gotC, gotD, wantC, wantD)
				}
			}
		}
		// Empty center list mirrors Result.Assign's (-1, +Inf).
		if c, d, _ := b.Nearest(randomDAG(rand.New(rand.NewSource(1)), 3), nil); c != -1 || !math.IsInf(d, 1) {
			t.Fatalf("%s: Nearest over no centers = (%d, %v)", name, c, d)
		}
	}
}
