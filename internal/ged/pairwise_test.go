package ged

import (
	"testing"

	"github.com/streamtune/streamtune/internal/dag"
)

func chain(name string, types ...dag.OpType) *dag.Graph {
	g := dag.New(name)
	g.MustAddOperator(&dag.Operator{ID: "s", Type: dag.Source})
	prev := "s"
	for i, ty := range types {
		id := string(rune('a' + i))
		g.MustAddOperator(&dag.Operator{ID: id, Type: ty})
		g.MustAddEdge(prev, id)
		prev = id
	}
	g.MustAddOperator(&dag.Operator{ID: "k", Type: dag.Sink})
	g.MustAddEdge(prev, "k")
	return g
}

func TestCrossDistancesMatchesDistance(t *testing.T) {
	queries := []*dag.Graph{
		chain("a", dag.Map),
		chain("b", dag.Map, dag.Filter),
		chain("c", dag.Join, dag.Aggregate),
	}
	targets := []*dag.Graph{
		chain("x", dag.Filter),
		chain("y", dag.Map, dag.Filter, dag.Aggregate),
	}
	for _, workers := range []int{1, 2, 8} {
		got := CrossDistances(queries, targets, workers)
		for i, q := range queries {
			for j, tg := range targets {
				want := Distance(q, tg)
				if got[i][j] != want {
					t.Fatalf("workers=%d: [%d][%d] = %v, want %v", workers, i, j, got[i][j], want)
				}
			}
		}
	}
}

func TestCrossDistancesEmpty(t *testing.T) {
	if got := CrossDistances(nil, nil, 4); len(got) != 0 {
		t.Fatalf("CrossDistances(nil, nil) = %v", got)
	}
	qs := []*dag.Graph{chain("a", dag.Map)}
	got := CrossDistances(qs, nil, 4)
	if len(got) != 1 || len(got[0]) != 0 {
		t.Fatalf("CrossDistances(qs, nil) = %v, want one empty row", got)
	}
}
