package ged

import (
	"math/rand"
	"sort"
	"testing"
)

// TestFilterBoundsSandwichExact: every filter lower bound <= exact GED
// and the greedy upper bound >= exact GED, on randomized DAG pairs.
func TestFilterBoundsSandwichExact(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	trials := 150
	if testing.Short() {
		trials = 40
	}
	for trial := 0; trial < trials; trial++ {
		a := randomDAG(rng, 1+rng.Intn(7))
		b := randomDAG(rng, 1+rng.Intn(7))
		lb, ub := FilterBounds(a, b)
		exact := refDistance(a, b)
		if lb > exact {
			t.Fatalf("trial %d: lower bound %v > exact %v\nA: %s\nB: %s", trial, lb, exact, a, b)
		}
		if ub < exact {
			t.Fatalf("trial %d: upper bound %v < exact %v\nA: %s\nB: %s", trial, ub, exact, a, b)
		}
	}
}

// TestFilterBoundsIdentical: identical structures must be fully decided
// by the filters (lb == ub == 0), the property the fingerprint dedup and
// most corpus-scale pruning rely on.
func TestFilterBoundsIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(102))
	for trial := 0; trial < 20; trial++ {
		g := randomDAG(rng, 1+rng.Intn(8))
		c := g.Clone()
		c.Name = "clone"
		lb, ub := FilterBounds(g, c)
		if lb != 0 || ub != 0 {
			t.Fatalf("identical pair bounds (%v, %v), want (0, 0) for %s", lb, ub, g)
		}
	}
}

// TestMetricProperties: GED is a metric on random DAGs — identity,
// symmetry, and the triangle inequality — through the full pipeline.
func TestMetricProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(103))
	trials := 40
	if testing.Short() {
		trials = 12
	}
	for trial := 0; trial < trials; trial++ {
		g1 := randomDAG(rng, 1+rng.Intn(5))
		g2 := randomDAG(rng, 1+rng.Intn(5))
		g3 := randomDAG(rng, 1+rng.Intn(5))
		if d := Distance(g1, g1); d != 0 {
			t.Fatalf("identity violated: d(g1,g1) = %v", d)
		}
		d12, d21 := Distance(g1, g2), Distance(g2, g1)
		if d12 != d21 {
			t.Fatalf("symmetry violated: %v vs %v\nA: %s\nB: %s", d12, d21, g1, g2)
		}
		d13, d23 := Distance(g1, g3), Distance(g2, g3)
		if d13 > d12+d23+1e-9 {
			t.Fatalf("triangle violated: d13=%v > d12=%v + d23=%v", d13, d12, d23)
		}
	}
}

func TestFingerprintEquality(t *testing.T) {
	rng := rand.New(rand.NewSource(104))
	g := randomDAG(rng, 6)
	c := g.Clone()
	c.Name = "renamed"
	if Fingerprint(g) != Fingerprint(c) {
		t.Fatal("clone fingerprint differs from original")
	}
	// A structural perturbation must change the fingerprint.
	h := g.Clone()
	ops := h.Operators()
	ops[2].Type = (ops[2].Type + 1) % 9
	if Fingerprint(g) == Fingerprint(h) {
		t.Fatal("relabel did not change the fingerprint")
	}
}

func TestPairCacheDistance(t *testing.T) {
	rng := rand.New(rand.NewSource(105))
	a := randomDAG(rng, 5)
	b := randomDAG(rng, 6)
	c := NewPairCache()
	first := c.Distance(a, b)
	if want := refDistance(a, b); first != want {
		t.Fatalf("cache distance %v, seed %v", first, want)
	}
	if c.Len() != 1 {
		t.Fatalf("cache holds %d entries, want 1", c.Len())
	}
	// Symmetric lookup must hit the same entry.
	if again := c.Distance(b, a); again != first {
		t.Fatalf("reversed lookup %v, want %v", again, first)
	}
	if c.Len() != 1 {
		t.Fatalf("reversed lookup grew the cache to %d entries", c.Len())
	}
}

// TestPipelineDistanceStats: the filter outcome is reported coherently.
func TestPipelineDistanceStats(t *testing.T) {
	rng := rand.New(rand.NewSource(106))
	g := randomDAG(rng, 6)
	c := g.Clone()
	d, stats := PipelineDistance(g, c)
	if d != 0 || !stats.Filtered || stats.Expanded != 0 {
		t.Fatalf("identical pair: d=%v stats=%+v, want filtered zero-distance", d, stats)
	}
	sawSearch := false
	for trial := 0; trial < 30 && !sawSearch; trial++ {
		a := randomDAG(rng, 2+rng.Intn(5))
		b := randomDAG(rng, 2+rng.Intn(5))
		d, stats := PipelineDistance(a, b)
		if stats.LowerBound > d || stats.UpperBound < d {
			t.Fatalf("bounds (%v, %v) do not sandwich distance %v", stats.LowerBound, stats.UpperBound, d)
		}
		if !stats.Filtered {
			sawSearch = true
			if stats.Expanded <= 0 {
				t.Fatalf("verified pair expanded %d states", stats.Expanded)
			}
		}
	}
	if !sawSearch {
		t.Fatal("no random pair required verification; filters suspiciously strong")
	}
}

// TestHeapInvariant: the consolidated priority queue pops states in
// nondecreasing f order under randomized pushes and interleaved pops.
func TestHeapInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(107))
	var h []*state
	var oracle []float64 // sorted multiset of live values
	for op := 0; op < 2000; op++ {
		if len(oracle) == 0 || rng.Float64() < 0.6 {
			v := float64(rng.Intn(50))
			h = heapPush(h, &state{f: v})
			i := sort.SearchFloat64s(oracle, v)
			oracle = append(oracle, 0)
			copy(oracle[i+1:], oracle[i:])
			oracle[i] = v
		} else {
			var st *state
			h, st = heapPop(h)
			if st.f != oracle[0] {
				t.Fatalf("op %d: popped %v, oracle minimum %v", op, st.f, oracle[0])
			}
			oracle = oracle[1:]
		}
	}
	// Deterministic oracle check: push a fixed multiset, pop everything.
	h = nil
	vals := []float64{5, 1, 4, 1, 3, 9, 2, 6, 5, 3, 5, 8, 9, 7}
	for _, v := range vals {
		h = heapPush(h, &state{f: v})
	}
	want := append([]float64(nil), vals...)
	sort.Float64s(want)
	for i := range want {
		var st *state
		h, st = heapPop(h)
		if st.f != want[i] {
			t.Fatalf("pop %d = %v, want %v", i, st.f, want[i])
		}
	}
}
