package engine

import (
	"math"
	"testing"

	"github.com/streamtune/streamtune/internal/dag"
)

// pipeline builds source -> filter -> window -> sink with the given
// source rate.
func pipeline(rate float64) *dag.Graph {
	g := dag.New("pipe")
	g.MustAddOperator(&dag.Operator{ID: "src", Type: dag.Source, SourceRate: rate, TupleWidthOut: 64})
	g.MustAddOperator(&dag.Operator{ID: "filter", Type: dag.Filter, Selectivity: 0.8, TupleWidthIn: 64, TupleWidthOut: 64})
	g.MustAddOperator(&dag.Operator{
		ID: "window", Type: dag.WindowOp, WindowType: Tumbling(), WindowPolicy: dag.TimePolicy,
		WindowLength: 30, Selectivity: 0.5, TupleWidthIn: 64, TupleWidthOut: 32,
	})
	g.MustAddOperator(&dag.Operator{ID: "sink", Type: dag.Sink, TupleWidthIn: 32})
	g.MustAddEdge("src", "filter")
	g.MustAddEdge("filter", "window")
	g.MustAddEdge("window", "sink")
	return g
}

// Tumbling avoids an import cycle hiccup in test helpers.
func Tumbling() dag.WindowType { return dag.Tumbling }

func deployAll(t *testing.T, e *Engine, p map[string]int) {
	t.Helper()
	if err := e.Deploy(p); err != nil {
		t.Fatalf("Deploy: %v", err)
	}
}

func generous(g *dag.Graph, cfg Config) map[string]int {
	opt, err := GroundTruthOptimal(g, cfg)
	if err != nil {
		panic(err)
	}
	for k, v := range opt {
		p := v * 2
		if p > cfg.MaxParallelism {
			p = cfg.MaxParallelism
		}
		opt[k] = p
	}
	return opt
}

func TestNewRejectsInvalidGraph(t *testing.T) {
	g := dag.New("empty")
	if _, err := New(g, DefaultConfig(Flink)); err == nil {
		t.Fatal("expected error for empty graph")
	}
	cfg := DefaultConfig(Flink)
	cfg.TicksPerSecond = 0
	if _, err := New(pipeline(1000), cfg); err == nil {
		t.Fatal("expected error for zero TicksPerSecond")
	}
}

func TestRunBeforeDeploy(t *testing.T) {
	e, err := New(pipeline(1000), DefaultConfig(Flink))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(); err == nil {
		t.Fatal("expected Run-before-Deploy error")
	}
}

func TestDeployValidation(t *testing.T) {
	e, _ := New(pipeline(1000), DefaultConfig(Flink))
	if err := e.Deploy(map[string]int{"src": 1}); err == nil {
		t.Fatal("expected missing-operator error")
	}
	if err := e.Deploy(map[string]int{"src": 0, "filter": 1, "window": 1, "sink": 1}); err == nil {
		t.Fatal("expected parallelism<1 error")
	}
	if err := e.Deploy(map[string]int{"src": 101, "filter": 1, "window": 1, "sink": 1}); err == nil {
		t.Fatal("expected parallelism>max error")
	}
}

func TestEngineClonesGraph(t *testing.T) {
	g := pipeline(1000)
	e, _ := New(g, DefaultConfig(Flink))
	e.Graph().Operator("src").SourceRate = 777
	if g.Operator("src").SourceRate != 1000 {
		t.Fatal("engine mutated the caller's graph")
	}
}

func TestAdequateParallelismNoBackpressure(t *testing.T) {
	g := pipeline(200000)
	cfg := DefaultConfig(Flink)
	e, err := New(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	deployAll(t, e, generous(g, cfg))
	m, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if m.Backpressured {
		t.Fatalf("generous deployment backpressured:\n%s", m)
	}
	// Sink throughput should be rate * 0.8 * 0.5.
	want := 200000 * 0.8 * 0.5
	if math.Abs(m.Throughput-want)/want > 0.1 {
		t.Fatalf("throughput = %.0f, want ~%.0f", m.Throughput, want)
	}
}

func TestUndersizedOperatorCausesUpstreamBackpressure(t *testing.T) {
	g := pipeline(2e6)
	cfg := DefaultConfig(Flink)
	e, _ := New(g, cfg)
	p := generous(g, cfg)
	p["window"] = 1 // starve the window operator
	deployAll(t, e, p)
	m, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !m.Backpressured {
		t.Fatalf("expected job-level backpressure:\n%s", m)
	}
	// The filter (upstream of the bottleneck) must be under backpressure;
	// the starved window must be busy (CPU-bound), not backpressured.
	if !m.Op("filter").UnderBackpressure {
		t.Errorf("filter not under backpressure:\n%s", m)
	}
	if m.Op("window").CPULoad < 0.9 {
		t.Errorf("window CPU load = %.2f, want ~1.0", m.Op("window").CPULoad)
	}
	if m.Op("window").UnderBackpressure {
		t.Errorf("bottleneck window should not itself be backpressured")
	}
}

func TestBackpressureCascadesToSource(t *testing.T) {
	g := pipeline(2e6)
	cfg := DefaultConfig(Flink)
	e, _ := New(g, cfg)
	p := generous(g, cfg)
	p["filter"] = 1
	deployAll(t, e, p)
	m, _ := e.Run()
	if !m.Op("src").UnderBackpressure {
		t.Fatalf("source not backpressured by starved filter:\n%s", m)
	}
}

func TestThroughputCappedByBottleneck(t *testing.T) {
	g := pipeline(2e6)
	cfg := DefaultConfig(Flink)
	e, _ := New(g, cfg)
	p := generous(g, cfg)
	p["window"] = 1
	deployAll(t, e, p)
	m, _ := e.Run()
	full := 2e6 * 0.8 * 0.5
	if m.Throughput > 0.8*full {
		t.Fatalf("throughput %.0f not capped below %.0f by bottleneck", m.Throughput, full)
	}
}

func TestScaledParallelismMonotone(t *testing.T) {
	prev := 0.0
	for p := 1; p <= 100; p++ {
		s := ScaledParallelism(p, 0.02)
		if s <= prev {
			t.Fatalf("ScaledParallelism not increasing at p=%d", p)
		}
		if s > float64(p) {
			t.Fatalf("ScaledParallelism(%d) = %v exceeds linear", p, s)
		}
		prev = s
	}
	if ScaledParallelism(0, 0.02) != 0 {
		t.Fatal("ScaledParallelism(0) != 0")
	}
}

func TestBasePAFeatureSensitivity(t *testing.T) {
	plain := BasePA(&dag.Operator{ID: "a", Type: dag.Filter, CostFactor: 1})
	wide := BasePA(&dag.Operator{ID: "b", Type: dag.Filter, CostFactor: 1, TupleWidthIn: 512, TupleWidthOut: 512})
	if wide >= plain {
		t.Errorf("wide tuples should reduce PA: %v >= %v", wide, plain)
	}
	tumble := BasePA(&dag.Operator{ID: "c", Type: dag.WindowOp, CostFactor: 1, WindowType: dag.Tumbling, WindowLength: 60})
	slide := BasePA(&dag.Operator{ID: "d", Type: dag.WindowOp, CostFactor: 1, WindowType: dag.Sliding, WindowLength: 60, SlidingLength: 10})
	if slide >= tumble {
		t.Errorf("sliding window should cost more: %v >= %v", slide, tumble)
	}
	josn := BasePA(&dag.Operator{ID: "e", Type: dag.Filter, CostFactor: 1, TupleDataType: dag.JSONTuple})
	if josn >= plain {
		t.Errorf("JSON tuples should cost more: %v >= %v", josn, plain)
	}
	strk := BasePA(&dag.Operator{ID: "f", Type: dag.Join, CostFactor: 1, JoinKeyClass: dag.StringKey})
	intk := BasePA(&dag.Operator{ID: "g", Type: dag.Join, CostFactor: 1, JoinKeyClass: dag.IntKey})
	if strk >= intk {
		t.Errorf("string keys should cost more: %v >= %v", strk, intk)
	}
}

func TestGroundTruthDemandPropagatesSelectivity(t *testing.T) {
	g := pipeline(100000)
	demand, err := GroundTruthDemand(g)
	if err != nil {
		t.Fatal(err)
	}
	fi, _ := g.IndexOf("filter")
	wi, _ := g.IndexOf("window")
	si, _ := g.IndexOf("sink")
	if demand[fi] != 100000 {
		t.Errorf("filter demand = %v, want 100000", demand[fi])
	}
	if demand[wi] != 80000 {
		t.Errorf("window demand = %v, want 80000", demand[wi])
	}
	if demand[si] != 40000 {
		t.Errorf("sink demand = %v, want 40000", demand[si])
	}
}

func TestGroundTruthOptimalIsMinimal(t *testing.T) {
	g := pipeline(300000)
	cfg := DefaultConfig(Flink)
	opt, err := GroundTruthOptimal(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	demand, _ := GroundTruthDemand(g)
	for i, op := range g.Operators() {
		p := opt[op.ID]
		if BasePA(op)*cfg.SpeedFactor*ScaledParallelism(p, cfg.ScaleOverhead) < demand[i] {
			t.Errorf("optimal p=%d for %s cannot sustain demand %.0f", p, op.ID, demand[i])
		}
		if p > 1 && BasePA(op)*cfg.SpeedFactor*ScaledParallelism(p-1, cfg.ScaleOverhead) >= demand[i] {
			t.Errorf("p=%d for %s is not minimal", p, op.ID)
		}
	}
}

func TestGroundTruthOptimalRunsClean(t *testing.T) {
	g := pipeline(500000)
	cfg := DefaultConfig(Flink)
	cfg.CapacityNoise = 0 // exact capacities for this check
	e, _ := New(g, cfg)
	opt, _ := GroundTruthOptimal(g, cfg)
	deployAll(t, e, opt)
	m, _ := e.Run()
	if m.Backpressured {
		t.Fatalf("ground-truth optimal deployment backpressured:\n%s", m)
	}
}

func TestReconfigurationCountAndSimTime(t *testing.T) {
	g := pipeline(1000)
	cfg := DefaultConfig(Flink)
	e, _ := New(g, cfg)
	deployAll(t, e, generous(g, cfg))
	deployAll(t, e, generous(g, cfg))
	if e.Reconfigurations() != 2 {
		t.Fatalf("reconfigs = %d, want 2", e.Reconfigurations())
	}
	if e.SimTime() < 2*cfg.RestartDowntime {
		t.Fatalf("sim time %v missing restart downtime", e.SimTime())
	}
	before := e.SimTime()
	e.Stabilize(cfg.RestartDowntime)
	if e.SimTime() != before+cfg.RestartDowntime {
		t.Fatal("Stabilize did not advance clock")
	}
}

func TestSetSourceRate(t *testing.T) {
	e, _ := New(pipeline(1000), DefaultConfig(Flink))
	if err := e.SetSourceRate("src", 5000); err != nil {
		t.Fatal(err)
	}
	if e.Graph().Operator("src").SourceRate != 5000 {
		t.Fatal("rate not applied")
	}
	if err := e.SetSourceRate("filter", 5); err == nil {
		t.Fatal("expected error for non-source")
	}
}

func TestDeterministicGivenSeed(t *testing.T) {
	run := func() *JobMetrics {
		g := pipeline(150000)
		cfg := DefaultConfig(Flink)
		cfg.Seed = 1234
		e, _ := New(g, cfg)
		p := generous(g, cfg)
		if err := e.Deploy(p); err != nil {
			t.Fatal(err)
		}
		m, _ := e.Run()
		return m
	}
	a, b := run(), run()
	for i := range a.Ops {
		if a.Ops[i].TrueRatePerInstance != b.Ops[i].TrueRatePerInstance {
			t.Fatal("same seed produced different measured rates")
		}
	}
}

func TestMeasurementNoiseApplied(t *testing.T) {
	g := pipeline(400000)
	cfg := DefaultConfig(Flink)
	cfg.UsefulTimeNoise = 0.2
	cfg.CapacityNoise = 0
	e, _ := New(g, cfg)
	deployAll(t, e, generous(g, cfg))
	m, _ := e.Run()
	wi, _ := g.IndexOf("window")
	truth := e.capPerSec[wi] / float64(e.par[wi])
	got := m.Op("window").TrueRatePerInstance
	if got == 0 {
		t.Fatal("no measured rate for busy operator")
	}
	if got == truth {
		t.Fatal("measured rate exactly equals ground truth; noise not applied")
	}
	if got < truth/2 || got > truth*2 {
		t.Fatalf("measured rate %v wildly off truth %v", got, truth)
	}
}

func TestTimelyUnboundedNoBackpressureMetric(t *testing.T) {
	g := pipeline(2e7)
	cfg := DefaultConfig(Timely)
	e, _ := New(g, cfg)
	p := generous(g, cfg)
	p["window"] = 1 // bottleneck
	deployAll(t, e, p)
	m, _ := e.Run()
	for _, om := range m.Ops {
		if om.BackpressureFrac > 0 {
			t.Fatalf("timely flavor reported backpressured time on %s", om.ID)
		}
	}
	if !m.Op("window").Bottleneck {
		t.Fatalf("starved window not flagged by consumption-ratio rule:\n%s", m)
	}
	if m.Op("window").ConsumptionRatio >= cfg.ConsumptionRatio {
		t.Fatalf("consumption ratio %.2f not below threshold", m.Op("window").ConsumptionRatio)
	}
	if !m.Backpressured {
		t.Fatal("job-level bottleneck flag not set")
	}
}

func TestTimelyEpochLatencies(t *testing.T) {
	g := pipeline(100000)
	cfg := DefaultConfig(Timely)
	cfg.MeasureTicks = 200
	e, _ := New(g, cfg)
	deployAll(t, e, generous(g, cfg))
	m, _ := e.Run()
	if len(m.EpochLatencies) == 0 {
		t.Fatal("no epoch latencies recorded")
	}
	med := m.LatencyQuantile(0.5)
	if med <= 0 || med > 2 {
		t.Fatalf("healthy pipeline median epoch latency = %vs, want sub-2s", med)
	}
}

func TestTimelyLatencyGrowsWhenUnderprovisioned(t *testing.T) {
	cfg := DefaultConfig(Timely)
	cfg.MeasureTicks = 300

	good := func() float64 {
		g := pipeline(2e7)
		e, _ := New(g, cfg)
		deployAll(t, e, generous(g, cfg))
		m, _ := e.Run()
		return m.LatencyQuantile(0.9)
	}()
	bad := func() float64 {
		g := pipeline(2e7)
		e, _ := New(g, cfg)
		p := generous(g, cfg)
		p["window"] = 1
		deployAll(t, e, p)
		m, _ := e.Run()
		return m.LatencyQuantile(0.9)
	}()
	if bad < 5*good {
		t.Fatalf("underprovisioned p90 latency %.2fs not much larger than healthy %.2fs", bad, good)
	}
}

func TestLatencyQuantileEmpty(t *testing.T) {
	m := &JobMetrics{}
	if m.LatencyQuantile(0.5) != 0 {
		t.Fatal("quantile of empty latencies should be 0")
	}
}

func TestTotalParallelism(t *testing.T) {
	g := pipeline(1000)
	cfg := DefaultConfig(Flink)
	e, _ := New(g, cfg)
	deployAll(t, e, map[string]int{"src": 2, "filter": 3, "window": 4, "sink": 1})
	if got := e.TotalParallelism(); got != 10 {
		t.Fatalf("TotalParallelism = %d, want 10", got)
	}
}

func TestBackpressuredOpsAndOpLookup(t *testing.T) {
	g := pipeline(2e6)
	cfg := DefaultConfig(Flink)
	e, _ := New(g, cfg)
	p := generous(g, cfg)
	p["window"] = 1
	deployAll(t, e, p)
	m, _ := e.Run()
	if len(m.BackpressuredOps()) == 0 {
		t.Fatal("no backpressured ops reported")
	}
	if m.Op("nonexistent") != nil {
		t.Fatal("Op() for unknown ID should be nil")
	}
	if m.String() == "" {
		t.Fatal("empty String()")
	}
}

func TestCohortQueue(t *testing.T) {
	var q cohortQueue
	q.push(0, 10)
	q.push(0, 5)
	q.push(1, 7)
	if q.Len() != 22 {
		t.Fatalf("len = %v, want 22", q.Len())
	}
	got := q.pop(12)
	if len(got) != 1 || got[0].epoch != 0 || got[0].count != 12 {
		t.Fatalf("pop(12) = %+v, want one epoch-0 cohort of 12", got)
	}
	got = q.pop(100)
	var tot float64
	for _, c := range got {
		tot += c.count
	}
	if math.Abs(tot-10) > 1e-9 || q.Len() > 1e-9 {
		t.Fatalf("drained %v (queue %v), want 10 and empty", tot, q.Len())
	}
	q.push(2, 3)
	q.reset()
	if q.Len() != 0 || len(q.segs) != 0 {
		t.Fatal("reset did not empty queue")
	}
}
