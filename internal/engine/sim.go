package engine

import (
	"fmt"
	"math"
	"sort"
	"time"

	"github.com/streamtune/streamtune/internal/dag"
)

// cohort is a run of records belonging to one source epoch.
type cohort struct {
	epoch int
	count float64
}

// cohortQueue is a FIFO of record cohorts forming an operator's input
// queue. Record counts are fractional (rates are continuous).
type cohortQueue struct {
	segs []cohort
	len  float64
}

// Len reports the number of queued records.
func (q *cohortQueue) Len() float64 { return q.len }

// push appends n records of the given epoch.
func (q *cohortQueue) push(epoch int, n float64) {
	if n <= 0 {
		return
	}
	if m := len(q.segs); m > 0 && q.segs[m-1].epoch == epoch {
		q.segs[m-1].count += n
	} else {
		q.segs = append(q.segs, cohort{epoch, n})
	}
	q.len += n
}

// pop removes up to n records FIFO and returns the consumed cohorts.
func (q *cohortQueue) pop(n float64) []cohort {
	var out []cohort
	for n > 1e-12 && len(q.segs) > 0 {
		s := &q.segs[0]
		take := math.Min(n, s.count)
		out = append(out, cohort{s.epoch, take})
		s.count -= take
		q.len -= take
		n -= take
		if s.count <= 1e-12 {
			q.len -= s.count // absorb residue so len stays consistent
			q.segs = q.segs[1:]
		}
	}
	if q.len < 0 {
		q.len = 0
	}
	return out
}

// reset empties the queue.
func (q *cohortQueue) reset() { q.segs, q.len = nil, 0 }

// opAccum accumulates per-operator statistics over a measurement window.
type opAccum struct {
	arrived   float64 // records pushed into this operator's queue
	consumed  float64 // records processed
	emitted   float64 // records emitted per out-edge (per-edge count)
	busy      float64 // summed per-tick busy fractions
	blocked   float64 // summed per-tick backpressured fractions
	ticks     int
	endQueue  float64
	upstreamO float64 // combined upstream output directed at this op
}

// Run simulates WarmupTicks+MeasureTicks ticks at the current deployment
// and returns metrics aggregated over the measurement window. The job
// must have been deployed.
func (e *Engine) Run() (*JobMetrics, error) {
	if !e.deployed {
		return nil, fmt.Errorf("engine: Run before Deploy")
	}
	n := e.g.NumOperators()
	acc := make([]opAccum, n)
	tps := float64(e.cfg.TicksPerSecond)

	// Epoch bookkeeping (Timely flavor only).
	type epochState struct {
		inflight float64
		closedAt int // tick index when the source stopped emitting, -1 if open
		doneAt   int // tick index when fully drained, -1 if pending
	}
	epochs := make(map[int]*epochState)
	epochOf := func(tick int) int {
		if e.cfg.EpochTicks <= 0 {
			return 0
		}
		return (e.epochClock + tick) / e.cfg.EpochTicks
	}
	getEpoch := func(ep int) *epochState {
		s, ok := epochs[ep]
		if !ok {
			s = &epochState{closedAt: -1, doneAt: -1}
			epochs[ep] = s
		}
		return s
	}
	timely := e.cfg.Flavor == Timely

	totalTicks := e.cfg.WarmupTicks + e.cfg.MeasureTicks
	for tick := 0; tick < totalTicks; tick++ {
		measuring := tick >= e.cfg.WarmupTicks
		curEpoch := 0
		if timely {
			curEpoch = epochOf(tick)
			if prev, ok := epochs[curEpoch-1]; ok && prev.closedAt < 0 {
				prev.closedAt = tick
			}
		}
		for _, i := range e.topo {
			op := e.g.OperatorAt(i)
			capPerTick := e.capPerSec[i] / tps
			if capPerTick <= 0 {
				continue
			}
			a := &acc[i]

			var want float64
			var consumedCohorts []cohort
			if op.Type == dag.Source {
				want = math.Min(op.SourceRate/tps, capPerTick)
				consumedCohorts = []cohort{{curEpoch, want}}
			} else {
				want = math.Min(e.queues[i].Len(), capPerTick)
			}

			// Flink flavor: output limited by free downstream buffer space.
			allowed := want
			if e.cfg.Flavor == Flink && op.Selectivity > 0 {
				for _, d := range e.g.Downstream(i) {
					space := e.queueCap(d) - e.queues[d].Len()
					if space < 0 {
						space = 0
					}
					if lim := space / op.Selectivity; lim < allowed {
						allowed = lim
					}
				}
			}
			processed := allowed

			if op.Type == dag.Source {
				if processed < want {
					// Scale the single synthetic cohort down.
					consumedCohorts[0].count = processed
				}
				if timely && processed > 0 {
					getEpoch(curEpoch).inflight += 0 // records enter and leave source atomically
				}
			} else {
				consumedCohorts = e.queues[i].pop(processed)
				if timely {
					for _, c := range consumedCohorts {
						getEpoch(c.epoch).inflight -= c.count
					}
				}
			}

			// Emit to each downstream consumer (fan-out replicates the
			// stream).
			if op.Selectivity > 0 && processed > 0 {
				for _, d := range e.g.Downstream(i) {
					for _, c := range consumedCohorts {
						out := c.count * op.Selectivity
						e.queues[d].push(c.epoch, out)
						if timely {
							getEpoch(c.epoch).inflight += out
						}
						if measuring {
							acc[d].arrived += out
							acc[d].upstreamO += out
						}
					}
					if measuring {
						a.emitted += processed * op.Selectivity
					}
				}
			}

			if measuring {
				a.consumed += processed
				busyFrac := processed / capPerTick
				a.busy += busyFrac
				// Downstream-limited: the operator has work it cannot
				// emit, so every non-processing moment of the tick is
				// spent blocked on output buffers (Flink's
				// backPressuredTime semantics).
				if want > processed+1e-9 {
					a.blocked += 1 - busyFrac
				}
				a.ticks++
			}
		}

		if timely {
			for ep, s := range epochs {
				if s.closedAt >= 0 && s.doneAt < 0 && s.inflight < 1e-3 {
					s.doneAt = tick
					_ = ep
				}
			}
		}
	}

	// Finalize per-op metrics.
	secs := float64(e.cfg.MeasureTicks) / tps
	m := &JobMetrics{Flavor: e.cfg.Flavor, Window: time.Duration(secs * float64(time.Second))}
	var busyPar, totPar float64
	for i := 0; i < n; i++ {
		op := e.g.OperatorAt(i)
		a := acc[i]
		ticks := float64(e.cfg.MeasureTicks)
		om := OpMetrics{
			ID:          op.ID,
			Index:       i,
			Parallelism: e.par[i],
			InputRate:   a.arrived / secs,
			OutputRate:  a.emitted / secs,
			Processed:   a.consumed / secs,
			BusyFrac:    a.busy / ticks,
			BackpressureFrac: func() float64 {
				return a.blocked / ticks
			}(),
			QueueLen: e.queues[i].Len(),
		}
		if op.Type == dag.Source {
			om.InputRate = op.SourceRate
		}
		om.IdleFrac = 1 - om.BusyFrac - om.BackpressureFrac
		if om.IdleFrac < 0 {
			om.IdleFrac = 0
		}
		om.CPULoad = om.BusyFrac
		if a.consumed > 0 {
			om.ObservedSelectivity = op.Selectivity
		}
		// Measured per-instance true rate ("useful time" derived), with
		// multiplicative measurement noise.
		if om.BusyFrac > 1e-6 {
			noise := math.Exp(e.cfg.UsefulTimeNoise * e.rng.NormFloat64())
			om.TrueRatePerInstance = om.Processed / (om.BusyFrac * float64(e.par[i])) * noise
		}
		if a.upstreamO > 1e-9 {
			om.ConsumptionRatio = a.consumed / a.upstreamO
		} else {
			om.ConsumptionRatio = 1
		}
		om.UnderBackpressure = om.BackpressureFrac > e.cfg.BackpressureFrac
		if timely {
			om.Bottleneck = om.ConsumptionRatio < e.cfg.ConsumptionRatio
		}
		// A source that cannot ingest its offered rate is itself a
		// bottleneck (its lag grows without bound), even though it never
		// blocks on downstream buffers.
		if op.Type == dag.Source && op.SourceRate > e.capPerSec[i]*1.005 {
			om.Bottleneck = true
		}
		busyPar += om.BusyFrac * float64(e.par[i])
		totPar += float64(e.par[i])
		if len(e.g.Downstream(i)) == 0 {
			m.Throughput += om.Processed
		}
		m.Ops = append(m.Ops, om)
	}
	if totPar > 0 {
		m.AvgCPUUtil = busyPar / totPar
	}
	for i, om := range m.Ops {
		if e.cfg.Flavor == Flink && om.UnderBackpressure {
			m.Backpressured = true
		}
		if timely && om.Bottleneck && om.InputRate > 1 {
			m.Backpressured = true
		}
		if e.g.OperatorAt(i).Type == dag.Source && om.Bottleneck {
			m.Backpressured = true
		}
	}

	// Epoch latencies (Timely), reported in epoch order: iterating the
	// epochs map directly would randomize the order per run.
	if timely {
		tickDur := 1.0 / tps
		endTick := totalTicks
		ids := make([]int, 0, len(epochs))
		for ep := range epochs {
			ids = append(ids, ep)
		}
		sort.Ints(ids)
		for _, ep := range ids {
			s := epochs[ep]
			if s.closedAt < 0 {
				continue // epoch still open at run end; skip
			}
			var lat float64
			if s.doneAt >= 0 {
				lat = float64(s.doneAt-s.closedAt) * tickDur
			} else {
				lat = float64(endTick-s.closedAt) * tickDur // still draining: lower bound
				m.IncompleteEpochs++
			}
			if lat < tickDur {
				lat = tickDur
			}
			m.EpochLatencies = append(m.EpochLatencies, lat)
		}
		e.epochClock += totalTicks
	}

	e.simTime += time.Duration(float64(totalTicks) / tps * float64(time.Second))
	return m, nil
}
