package engine

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// OpMetrics are the per-operator runtime metrics of one measurement
// window. They correspond to the signals the paper's tuners consume:
// Flink's backPressured/idle/busyTimeMsPerSecond become the *Frac fields,
// CPULoad feeds Algorithm 1, TrueRatePerInstance is the (noisy)
// useful-time-derived processing ability used by DS2 and ContTune, and
// ConsumptionRatio is the Timely bottleneck signal.
type OpMetrics struct {
	ID          string
	Index       int
	Parallelism int

	InputRate  float64 // records/s arriving (offered rate for sources)
	OutputRate float64 // records/s emitted per out-edge
	Processed  float64 // records/s actually processed

	BusyFrac         float64 // fraction of time actively processing
	IdleFrac         float64 // fraction of time idle
	BackpressureFrac float64 // fraction of time blocked on downstream
	CPULoad          float64 // = BusyFrac

	// TrueRatePerInstance is the measured per-instance processing
	// ability in records/s, derived from useful time, with measurement
	// noise applied. Zero when the operator was essentially idle.
	TrueRatePerInstance float64

	// ObservedSelectivity is output/input records ratio observed.
	ObservedSelectivity float64

	// QueueLen is the input-queue length at window end.
	QueueLen float64

	// ConsumptionRatio is consumed/arrived over the window (Timely
	// bottleneck signal; 1 when nothing arrived).
	ConsumptionRatio float64

	// UnderBackpressure reports BackpressureFrac > threshold (Flink).
	UnderBackpressure bool

	// Bottleneck reports the Timely rate-based bottleneck rule.
	Bottleneck bool
}

// JobMetrics aggregates one measurement window.
type JobMetrics struct {
	Flavor Flavor
	Window time.Duration

	Ops []OpMetrics

	// Backpressured reports job-level backpressure: any operator under
	// backpressure (Flink) or any rate-based bottleneck (Timely).
	Backpressured bool

	// Throughput is the records/s absorbed by sink operators.
	Throughput float64

	// AvgCPUUtil is the parallelism-weighted mean busy fraction across
	// operators — the cluster CPU utilization of Fig. 10.
	AvgCPUUtil float64

	// EpochLatencies holds per-epoch drain latencies in seconds (Timely).
	EpochLatencies []float64
	// IncompleteEpochs counts epochs still draining at window end; their
	// latencies are included as lower bounds.
	IncompleteEpochs int
}

// Op returns the metrics for the named operator, or nil.
func (m *JobMetrics) Op(id string) *OpMetrics {
	for i := range m.Ops {
		if m.Ops[i].ID == id {
			return &m.Ops[i]
		}
	}
	return nil
}

// BackpressuredOps returns indices (graph positions) of operators under
// backpressure.
func (m *JobMetrics) BackpressuredOps() []int {
	var out []int
	for _, om := range m.Ops {
		if om.UnderBackpressure {
			out = append(out, om.Index)
		}
	}
	return out
}

// LatencyQuantile returns the q-quantile (0..1) of the epoch latencies,
// or 0 when none were recorded.
func (m *JobMetrics) LatencyQuantile(q float64) float64 {
	if len(m.EpochLatencies) == 0 {
		return 0
	}
	s := append([]float64(nil), m.EpochLatencies...)
	sort.Float64s(s)
	idx := int(q * float64(len(s)-1))
	if idx < 0 {
		idx = 0
	}
	if idx >= len(s) {
		idx = len(s) - 1
	}
	return s[idx]
}

// String renders a compact diagnostic table.
func (m *JobMetrics) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "job[%s] backpressured=%v throughput=%.0f/s cpu=%.0f%%\n",
		m.Flavor, m.Backpressured, m.Throughput, 100*m.AvgCPUUtil)
	for _, om := range m.Ops {
		fmt.Fprintf(&b, "  %-14s p=%-3d in=%-9.0f busy=%.2f bp=%.2f q=%.0f\n",
			om.ID, om.Parallelism, om.InputRate, om.BusyFrac, om.BackpressureFrac, om.QueueLen)
	}
	return b.String()
}
