package engine

import (
	"math"

	"github.com/streamtune/streamtune/internal/dag"
)

// Per-record base cost by operator type, in microseconds of useful time
// per record at parallelism 1. These constants are the simulator's ground
// truth; they were chosen so that, under the Table II rate units, optimal
// total parallelism degrees land in the same ballpark as the paper's
// Fig. 6 (a handful of slots for simple Nexmark queries, tens for
// multi-way PQP joins).
var baseCostMicros = map[dag.OpType]float64{
	dag.Source:     0.35,
	dag.Sink:       0.8,
	dag.Map:        1.6,
	dag.Filter:     1.2,
	dag.FlatMap:    2.4,
	dag.Join:       5.0,
	dag.Aggregate:  3.5,
	dag.WindowOp:   4.2,
	dag.WindowJoin: 6.5,
}

// BasePA returns the ground-truth processing ability of one instance of
// the operator, in records/second. It is a deterministic function of the
// operator's static features: heavier tuple widths, longer windows,
// sliding windows and string keys all slow an operator down.
func BasePA(op *dag.Operator) float64 {
	cost, ok := baseCostMicros[op.Type]
	if !ok {
		cost = 2.0
	}
	cost *= op.CostFactor

	// Serialization cost grows with tuple width.
	cost *= 1 + (op.TupleWidthIn+op.TupleWidthOut)/1024

	// Window maintenance cost grows slowly with window size; sliding
	// windows pay an extra factor for overlapping panes.
	if op.WindowType != dag.NoWindow {
		cost *= 1 + math.Log10(1+op.WindowLength)/3
		if op.WindowType == dag.Sliding && op.SlidingLength > 0 && op.WindowLength > op.SlidingLength {
			overlap := op.WindowLength / op.SlidingLength
			cost *= 1 + math.Log2(overlap)/4
		}
	}

	// String keys hash and compare slower than numeric keys.
	if op.JoinKeyClass == dag.StringKey || op.AggKeyClass == dag.StringKey {
		cost *= 1.25
	}
	// JSON tuples pay a parsing premium.
	if op.TupleDataType == dag.JSONTuple {
		cost *= 1.4
	}

	return 1e6 / cost
}

// OptimalParallelism returns the ground-truth minimum parallelism at
// which the operator sustains the given input rate (records/second)
// under the engine's scaling law and speed factor. It is used by tests
// and by experiment reporting, never by tuners.
func OptimalParallelism(op *dag.Operator, inputRate float64, cfg Config) int {
	speed := cfg.SpeedFactor
	if speed <= 0 {
		speed = 1
	}
	base := BasePA(op) * speed
	for p := 1; p <= cfg.MaxParallelism; p++ {
		if base*ScaledParallelism(p, cfg.ScaleOverhead) >= inputRate {
			return p
		}
	}
	return cfg.MaxParallelism
}

// GroundTruthDemand computes, in topological order, the steady-state
// input rate every operator must sustain when no operator is a
// bottleneck, and returns per-operator demands indexed by graph position.
// Fan-out edges replicate the full output stream to each consumer.
func GroundTruthDemand(g *dag.Graph) ([]float64, error) {
	topo, err := g.TopoOrder()
	if err != nil {
		return nil, err
	}
	demand := make([]float64, g.NumOperators())
	outRate := make([]float64, g.NumOperators())
	for _, i := range topo {
		op := g.OperatorAt(i)
		in := demand[i]
		if op.Type == dag.Source {
			in = op.SourceRate
			demand[i] = in
		}
		outRate[i] = in * op.Selectivity
		for _, d := range g.Downstream(i) {
			demand[d] += outRate[i]
		}
	}
	return demand, nil
}

// GroundTruthOptimal returns the per-operator minimum parallelism map for
// backpressure-free execution at the graph's current source rates. Used
// by tests and experiment reporting only.
func GroundTruthOptimal(g *dag.Graph, cfg Config) (map[string]int, error) {
	demand, err := GroundTruthDemand(g)
	if err != nil {
		return nil, err
	}
	out := make(map[string]int, g.NumOperators())
	for i, op := range g.Operators() {
		out[op.ID] = OptimalParallelism(op, demand[i], cfg)
	}
	return out, nil
}
