// Package engine implements a discrete-time simulated distributed stream
// processing system (DSPS). It is the execution substrate standing in for
// Apache Flink and Timely Dataflow in the StreamTune reproduction.
//
// The simulator expands a logical dataflow DAG into per-operator instance
// groups, moves records between operators through per-operator input
// queues, and exposes exactly the runtime metrics the tuning algorithms
// in the paper consume: busy/idle/backpressured time fractions, input and
// output rates, CPU load, noisy measured per-instance processing rates
// ("useful time"), and — in the Timely flavor — per-epoch latencies and
// consumption ratios.
//
// Two flavors are provided:
//
//   - Flink: bounded inter-operator buffers with credit-style
//     backpressure. An operator whose output is blocked by a full
//     downstream buffer accrues backpressured time; an operator is "under
//     backpressure" when that fraction exceeds the configured threshold
//     (10% in the paper, §V-B).
//   - Timely: unbounded queues (Timely Dataflow has no built-in
//     backpressure). Bottlenecks are detected from rates: an operator is
//     a bottleneck when its consumption rate falls below 85% of the
//     combined output rate of its upstream operators.
//
// Ground-truth operator capacities are derived deterministically from
// static operator features (see cost.go) plus seeded per-deployment
// noise; tuners never observe ground truth, only measured metrics.
package engine

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"github.com/streamtune/streamtune/internal/dag"
)

// Flavor selects the simulated system's flow-control semantics.
type Flavor int

// Engine flavors.
const (
	// Flink simulates bounded buffers and backpressure metrics.
	Flink Flavor = iota
	// Timely simulates unbounded queues and rate-based bottleneck
	// detection with per-epoch latency measurement.
	Timely
)

// String returns the flavor name.
func (f Flavor) String() string {
	switch f {
	case Flink:
		return "flink"
	case Timely:
		return "timely"
	}
	return fmt.Sprintf("flavor(%d)", int(f))
}

// Config parameterizes an Engine. The zero value is not usable; use
// DefaultConfig.
type Config struct {
	Flavor Flavor

	// TicksPerSecond is the simulation resolution (simulated ticks per
	// simulated second).
	TicksPerSecond int

	// WarmupTicks are simulated but excluded from metrics.
	WarmupTicks int
	// MeasureTicks is the metric window length of one Run.
	MeasureTicks int

	// BufferSeconds sizes the bounded input buffer of each operator as
	// this many seconds of the operator's own processing capacity (Flink
	// flavor only). Credit-based flow control keeps in-flight data small
	// relative to throughput, so buffer capacity should track capacity,
	// not a fixed record count.
	BufferSeconds float64

	// QueueCapacityPerInstance is a fallback fixed input-buffer size in
	// records per instance, used only when BufferSeconds is zero.
	QueueCapacityPerInstance int

	// MaxParallelism is the physical ceiling on per-operator parallelism
	// (task slots in Flink, worker threads in Timely).
	MaxParallelism int

	// ScaleOverhead is the coordination-overhead coefficient c in the
	// capacity scaling law p/(1+c*ln p).
	ScaleOverhead float64

	// SpeedFactor multiplies all ground-truth capacities. It models the
	// per-record speed gap between engines (Timely Dataflow sustains
	// roughly an order of magnitude higher per-core rates than Flink;
	// compare the Wu units in Table II of the paper).
	SpeedFactor float64

	// CapacityNoise is the relative sigma of per-deployment capacity
	// jitter (ground-truth variation between deployments).
	CapacityNoise float64

	// UsefulTimeNoise is the relative sigma of the multiplicative noise
	// applied to the *measured* per-instance true processing rate. This
	// models the paper's observation that useful time is intricate to
	// measure accurately and misleads DS2/ContTune (§V-C, §V-E).
	UsefulTimeNoise float64

	// BackpressureFrac is the backpressured-time fraction above which an
	// operator counts as "under backpressure" (paper: 10%).
	BackpressureFrac float64

	// CPULoadThreshold is Algorithm 1's resource threshold T (paper
	// example: 60%).
	CPULoadThreshold float64

	// ConsumptionRatio is the Timely bottleneck threshold: an operator
	// whose consumption rate is below this fraction of combined upstream
	// output is a bottleneck (paper: 85%).
	ConsumptionRatio float64

	// EpochTicks is the length of one Timely epoch in ticks.
	EpochTicks int

	// RestartDowntime is the simulated wall-clock cost of one
	// stop-and-restart reconfiguration.
	RestartDowntime time.Duration

	// Seed drives all engine randomness (capacity jitter, measurement
	// noise). Runs are fully deterministic given a seed.
	Seed int64
}

// DefaultConfig returns a Config with the evaluation defaults for the
// given flavor.
func DefaultConfig(f Flavor) Config {
	c := Config{
		Flavor:                   f,
		TicksPerSecond:           10,
		WarmupTicks:              50,
		MeasureTicks:             100,
		BufferSeconds:            2,
		QueueCapacityPerInstance: 400000,
		MaxParallelism:           100,
		ScaleOverhead:            0.01,
		SpeedFactor:              1,
		CapacityNoise:            0.03,
		UsefulTimeNoise:          0.05,
		BackpressureFrac:         0.10,
		CPULoadThreshold:         0.60,
		ConsumptionRatio:         0.85,
		EpochTicks:               10,
		RestartDowntime:          30 * time.Second,
		Seed:                     1,
	}
	if f == Timely {
		c.MaxParallelism = 32
		c.SpeedFactor = 20
	}
	return c
}

// Engine simulates the execution of one streaming job. Create with New,
// deploy a parallelism assignment with Deploy, then call Run to simulate
// a measurement interval and obtain metrics. Engines are not safe for
// concurrent use.
type Engine struct {
	cfg  Config
	g    *dag.Graph
	topo []int
	rng  *rand.Rand

	deployed   bool
	par        []int     // parallelism per operator index
	capPerSec  []float64 // ground-truth capacity, records/s, current deployment
	reconfigs  int
	simTime    time.Duration // accumulated simulated time incl. downtime
	epochClock int           // global epoch counter (Timely)

	queues []cohortQueue
}

// New creates an engine for the given job graph. The graph is cloned; the
// caller's copy is never mutated.
func New(g *dag.Graph, cfg Config) (*Engine, error) {
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("engine: invalid job graph: %w", err)
	}
	if cfg.TicksPerSecond <= 0 {
		return nil, fmt.Errorf("engine: TicksPerSecond must be positive, got %d", cfg.TicksPerSecond)
	}
	if cfg.MeasureTicks <= 0 {
		return nil, fmt.Errorf("engine: MeasureTicks must be positive, got %d", cfg.MeasureTicks)
	}
	clone := g.Clone()
	topo, err := clone.TopoOrder()
	if err != nil {
		return nil, err
	}
	return &Engine{
		cfg:  cfg,
		g:    clone,
		topo: topo,
		rng:  rand.New(rand.NewSource(cfg.Seed)),
	}, nil
}

// Graph returns the engine's (cloned) job graph. Mutating source rates on
// it (e.g. via SetSourceRate) is the supported way to change the offered
// load between runs.
func (e *Engine) Graph() *dag.Graph { return e.g }

// Config returns the engine configuration.
func (e *Engine) Config() Config { return e.cfg }

// Reconfigurations reports how many times Deploy has been called.
func (e *Engine) Reconfigurations() int { return e.reconfigs }

// SimTime reports the total simulated time elapsed, including restart
// downtime for each reconfiguration.
func (e *Engine) SimTime() time.Duration { return e.simTime }

// SetSourceRate sets the offered rate of the named source operator in
// records/second. Changing the rate does not count as a reconfiguration.
func (e *Engine) SetSourceRate(id string, rate float64) error {
	op := e.g.Operator(id)
	if op == nil || op.Type != dag.Source {
		return fmt.Errorf("engine: no source operator %q", id)
	}
	op.SourceRate = rate
	return nil
}

// ScaleSourceRates multiplies all source rates by factor.
func (e *Engine) ScaleSourceRates(factor float64) { e.g.ScaleSourceRates(factor) }

// Parallelism returns the currently deployed parallelism of the operator
// at graph index i, or 0 if not deployed.
func (e *Engine) Parallelism(i int) int {
	if !e.deployed {
		return 0
	}
	return e.par[i]
}

// Deploy stops the job (discarding in-flight records, as with the paper's
// stop-and-restart reconfiguration), applies the per-operator parallelism
// assignment, and restarts. Every operator in the graph must be assigned
// a parallelism in [1, MaxParallelism]; sources and sinks included.
func (e *Engine) Deploy(parallelism map[string]int) error {
	n := e.g.NumOperators()
	par := make([]int, n)
	for i := 0; i < n; i++ {
		op := e.g.OperatorAt(i)
		p, ok := parallelism[op.ID]
		if !ok {
			return fmt.Errorf("engine: missing parallelism for operator %q", op.ID)
		}
		if p < 1 || p > e.cfg.MaxParallelism {
			return fmt.Errorf("engine: parallelism %d for %q outside [1, %d]", p, op.ID, e.cfg.MaxParallelism)
		}
		par[i] = p
	}
	e.par = par
	e.capPerSec = make([]float64, n)
	for i := 0; i < n; i++ {
		op := e.g.OperatorAt(i)
		jitter := 1 + e.cfg.CapacityNoise*e.rng.NormFloat64()
		if jitter < 0.5 {
			jitter = 0.5
		}
		speed := e.cfg.SpeedFactor
		if speed <= 0 {
			speed = 1
		}
		e.capPerSec[i] = BasePA(op) * speed * ScaledParallelism(par[i], e.cfg.ScaleOverhead) * jitter
	}
	e.queues = make([]cohortQueue, n)
	e.deployed = true
	e.reconfigs++
	e.simTime += e.cfg.RestartDowntime
	return nil
}

// TotalParallelism reports the sum of deployed parallelism degrees across
// all operators, the paper's resource-consumption metric (Fig. 6).
func (e *Engine) TotalParallelism() int {
	t := 0
	for _, p := range e.par {
		t += p
	}
	return t
}

// queueCap returns the bounded input-buffer capacity of operator i in
// records.
func (e *Engine) queueCap(i int) float64 {
	if e.cfg.BufferSeconds > 0 {
		return e.capPerSec[i] * e.cfg.BufferSeconds
	}
	return float64(e.cfg.QueueCapacityPerInstance * e.par[i])
}

// ScaledParallelism is the engine's capacity scaling law: near-linear
// growth with a mild coordination overhead, matching the shape of the
// paper's Fig. 4.
func ScaledParallelism(p int, overhead float64) float64 {
	if p <= 0 {
		return 0
	}
	return float64(p) / (1 + overhead*math.Log(float64(p)))
}

// Stabilize advances the simulated clock by d without running the
// dataflow, modeling the paper's 10-minute wait between reconfigurations.
func (e *Engine) Stabilize(d time.Duration) { e.simTime += d }
