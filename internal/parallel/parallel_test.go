package parallel

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkersResolution(t *testing.T) {
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(-3); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(-3) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	for _, n := range []int{1, 2, 7, 64} {
		if got := Workers(n); got != n {
			t.Fatalf("Workers(%d) = %d", n, got)
		}
	}
}

func TestForEachCoversAllIndices(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 100} {
		const n = 250
		var hits [n]atomic.Int32
		if err := ForEach(n, workers, func(i int) error {
			hits[i].Add(1)
			return nil
		}); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range hits {
			if c := hits[i].Load(); c != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, c)
			}
		}
	}
}

func TestForEachEmpty(t *testing.T) {
	called := false
	if err := ForEach(0, 8, func(int) error { called = true; return nil }); err != nil {
		t.Fatal(err)
	}
	if called {
		t.Fatal("fn called for n=0")
	}
}

func TestForEachSequentialFailFast(t *testing.T) {
	boom := errors.New("boom")
	ran := 0
	err := ForEach(10, 1, func(i int) error {
		ran++
		if i == 3 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if ran != 4 {
		t.Fatalf("sequential fail-fast ran %d calls, want 4", ran)
	}
}

func TestForEachParallelReturnsLowestIndexError(t *testing.T) {
	err := ForEach(64, 8, func(i int) error {
		if i == 17 {
			return fmt.Errorf("failed at %d", i)
		}
		return nil
	})
	if err == nil || err.Error() != "failed at 17" {
		t.Fatalf("err = %v, want the single recorded error", err)
	}
}

func TestForEachSkipsAfterFailure(t *testing.T) {
	var ran atomic.Int32
	boom := errors.New("boom")
	err := ForEach(10_000, 4, func(i int) error {
		ran.Add(1)
		if i == 0 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if got := ran.Load(); got == 10_000 {
		t.Logf("note: all %d indices ran before the failure was observed", got)
	}
}

func TestMapOrdersResults(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		got, err := Map(100, workers, func(i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestMapPropagatesError(t *testing.T) {
	boom := errors.New("boom")
	out, err := Map(8, 4, func(i int) (int, error) {
		if i == 5 {
			return 0, boom
		}
		return i, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if out != nil {
		t.Fatalf("out = %v, want nil on error", out)
	}
}

// TestForEachDeterministicAccumulation checks the contract callers rely
// on: indexed writes compose into schedule-independent results.
func TestForEachDeterministicAccumulation(t *testing.T) {
	ref := make([]float64, 500)
	for i := range ref {
		ref[i] = float64(i) * 1.5
	}
	for _, workers := range []int{1, 3, 16} {
		got := make([]float64, len(ref))
		if err := ForEach(len(ref), workers, func(i int) error {
			got[i] = float64(i) * 1.5
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		for i := range got {
			if got[i] != ref[i] {
				t.Fatalf("workers=%d: got[%d] = %v, want %v", workers, i, got[i], ref[i])
			}
		}
	}
}

// TestLimiterBound asserts Do never admits more than Cap concurrent
// executions and propagates errors from the task.
func TestLimiterBound(t *testing.T) {
	l := NewLimiter(3)
	if l.Cap() != 3 {
		t.Fatalf("Cap = %d, want 3", l.Cap())
	}
	var inFlight, peak atomic.Int64
	done := make(chan error, 64)
	for i := 0; i < 64; i++ {
		go func() {
			done <- l.Do(func() error {
				n := inFlight.Add(1)
				for {
					p := peak.Load()
					if n <= p || peak.CompareAndSwap(p, n) {
						break
					}
				}
				inFlight.Add(-1)
				return nil
			})
		}()
	}
	for i := 0; i < 64; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	if p := peak.Load(); p > 3 {
		t.Fatalf("peak concurrency = %d, want <= 3", p)
	}
	if l.InFlight() != 0 {
		t.Fatalf("InFlight = %d after drain, want 0", l.InFlight())
	}
	boom := errors.New("boom")
	if err := l.Do(func() error { return boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
}

// occupy grabs the limiter's only slot through DoCtx and returns a
// release function plus a channel that reports the holder's exit.
func occupy(t *testing.T, l *Limiter) (release func(), done chan error) {
	t.Helper()
	hold := make(chan struct{})
	running := make(chan struct{})
	done = make(chan error, 1)
	go func() {
		done <- l.DoCtx(context.Background(), func() error { close(running); <-hold; return nil })
	}()
	<-running
	return func() { close(hold) }, done
}

// TestBoundedLimiterSheds asserts a full waiting room sheds immediately
// with ErrSaturated instead of queueing.
func TestBoundedLimiterSheds(t *testing.T) {
	l := NewBoundedLimiter(1, 1) // one slot, one waiter
	release, holder := occupy(t, l)

	// Fill the single queue spot with a second request.
	queued := make(chan error, 1)
	go func() {
		queued <- l.DoCtx(context.Background(), func() error { return nil })
	}()
	// Wait until the second request is queued for the slot.
	for l.Queued() == 0 {
		runtime.Gosched()
	}

	// A third request must shed, not wait.
	if err := l.DoCtx(context.Background(), func() error { return nil }); !errors.Is(err, ErrSaturated) {
		t.Fatalf("overflow DoCtx = %v, want ErrSaturated", err)
	}

	release()
	if err := <-queued; err != nil {
		t.Fatalf("queued DoCtx = %v, want nil", err)
	}
	if err := <-holder; err != nil {
		t.Fatalf("holder DoCtx = %v, want nil", err)
	}
}

// TestDoCtxCancelWhileQueued asserts a canceled context frees a queued
// request without running its task.
func TestDoCtxCancelWhileQueued(t *testing.T) {
	l := NewBoundedLimiter(1, 4)
	release, holder := occupy(t, l)

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	var ran atomic.Bool
	go func() {
		done <- l.DoCtx(ctx, func() error { ran.Store(true); return nil })
	}()
	for l.Queued() == 0 {
		runtime.Gosched()
	}
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled DoCtx = %v, want context.Canceled", err)
	}
	if ran.Load() {
		t.Fatal("canceled request still executed its task")
	}
	release()
	if err := <-holder; err != nil {
		t.Fatalf("holder DoCtx = %v, want nil", err)
	}

	// The queue token was returned: the limiter still serves requests.
	if err := l.DoCtx(context.Background(), func() error { return nil }); err != nil {
		t.Fatalf("DoCtx after cancel = %v, want nil", err)
	}
	if l.Queued() != 0 {
		t.Fatalf("Queued = %d after drain, want 0", l.Queued())
	}
}

// TestDoCtxPreCanceled asserts an already-canceled context never starts
// the task even when a slot is free.
func TestDoCtxPreCanceled(t *testing.T) {
	l := NewBoundedLimiter(2, 2)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Bool
	err := l.DoCtx(ctx, func() error { ran.Store(true); return nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("DoCtx = %v, want context.Canceled", err)
	}
	if ran.Load() {
		t.Fatal("pre-canceled request executed its task")
	}
}

// TestUnboundedDoCtx asserts DoCtx on a NewLimiter never sheds.
func TestUnboundedDoCtx(t *testing.T) {
	l := NewLimiter(1)
	done := make(chan error, 16)
	for i := 0; i < 16; i++ {
		go func() { done <- l.DoCtx(context.Background(), func() error { return nil }) }()
	}
	for i := 0; i < 16; i++ {
		if err := <-done; err != nil {
			t.Fatalf("unbounded DoCtx = %v, want nil", err)
		}
	}
}
