// Package parallel provides the bounded worker-pool primitives used to
// fan independent work out across CPUs: corpus generation, pairwise GED
// computation, per-cluster GNN pre-training, and the experiment drivers
// of internal/experiments.
//
// Every helper takes an explicit worker count and preserves result
// determinism: outputs are delivered in input-index order regardless of
// scheduling, and a worker count of one executes inline on the calling
// goroutine with exact sequential fail-fast semantics. Callers are
// responsible for making the work itself schedule-independent (pure
// functions of the index, or pre-drawn randomness).
package parallel

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a parallelism knob: values below one mean "use every
// CPU" (GOMAXPROCS); anything else is returned unchanged.
func Workers(n int) int {
	if n < 1 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// ForEach runs fn(i) for every i in [0, n) using at most workers
// goroutines. With workers <= 1 the calls run inline, sequentially and
// fail-fast. With more workers, all indices are attempted unless an
// error occurs, after which not-yet-started indices are skipped; the
// recorded error with the lowest index is returned, so the error
// observed is deterministic whenever a single index fails.
func ForEach(n, workers int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	w := Workers(workers)
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}

	errs := make([]error, n)
	var next atomic.Int64
	var failed atomic.Bool
	var wg sync.WaitGroup
	for g := 0; g < w; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if failed.Load() {
					continue
				}
				if err := fn(i); err != nil {
					errs[i] = err
					failed.Store(true)
				}
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// ErrSaturated reports that a bounded limiter's waiting room was full:
// the request was shed immediately instead of queueing. Services map it
// to a retryable overload response (HTTP 503 + Retry-After).
var ErrSaturated = errors.New("parallel: limiter saturated")

// Limiter bounds the number of tasks executing concurrently. Unlike
// ForEach — which owns a fixed batch of index-addressed work — a
// Limiter serves open-ended request streams: long-lived services
// acquire a slot per request, so at most `workers` expensive operations
// (model refits, encoder inference) run at once while excess callers
// queue in FIFO-ish channel order. A bounded limiter
// (NewBoundedLimiter) additionally caps the queue and sheds the
// overflow, so a saturated service degrades into fast ErrSaturated
// rejections instead of unbounded queueing. The zero Limiter is not
// usable; use NewLimiter or NewBoundedLimiter.
type Limiter struct {
	slots chan struct{}
	// queue holds one token per DoCtx request admitted — executing or
	// waiting. nil means the waiting room is unbounded (NewLimiter).
	queue chan struct{}
	// waiting counts DoCtx requests queued for a slot right now.
	waiting atomic.Int32
}

// NewLimiter returns a limiter admitting at most Workers(workers)
// concurrent executions, with an unbounded waiting room.
func NewLimiter(workers int) *Limiter {
	return &Limiter{slots: make(chan struct{}, Workers(workers))}
}

// NewBoundedLimiter returns a limiter admitting at most
// Workers(workers) concurrent executions and at most maxQueue further
// requests waiting for a slot; DoCtx sheds anything beyond that with
// ErrSaturated. maxQueue < 0 leaves the waiting room unbounded
// (equivalent to NewLimiter).
func NewBoundedLimiter(workers, maxQueue int) *Limiter {
	l := NewLimiter(workers)
	if maxQueue >= 0 {
		l.queue = make(chan struct{}, cap(l.slots)+maxQueue)
	}
	return l
}

// Cap reports the maximum number of concurrent executions.
func (l *Limiter) Cap() int { return cap(l.slots) }

// InFlight reports the number of slots currently held.
func (l *Limiter) InFlight() int { return len(l.slots) }

// Queued reports the number of DoCtx requests waiting for a slot right
// now.
func (l *Limiter) Queued() int { return int(l.waiting.Load()) }

// Do runs fn once a slot is available and releases the slot when fn
// returns, propagating fn's error. Do ignores the queue bound and never
// sheds — it is the batch-work entry point; request-serving paths use
// DoCtx.
func (l *Limiter) Do(fn func() error) error {
	l.slots <- struct{}{}
	defer func() { <-l.slots }()
	return fn()
}

// DoCtx is Do for request-serving paths: it sheds immediately with
// ErrSaturated when the waiting room is full, abandons the wait with
// ctx.Err() if ctx is done before a slot frees (the caller's deadline
// or a disconnected client), and otherwise runs fn holding a slot. A
// context canceled after the slot is acquired but before fn starts also
// aborts — doomed work is never started, only completed.
func (l *Limiter) DoCtx(ctx context.Context, fn func() error) error {
	if l.queue != nil {
		select {
		case l.queue <- struct{}{}:
			defer func() { <-l.queue }()
		default:
			return ErrSaturated
		}
	}
	l.waiting.Add(1)
	select {
	case l.slots <- struct{}{}:
	case <-ctx.Done():
		l.waiting.Add(-1)
		return ctx.Err()
	}
	l.waiting.Add(-1)
	defer func() { <-l.slots }()
	if err := ctx.Err(); err != nil {
		return err
	}
	return fn()
}

// Map runs fn over [0, n) with at most workers goroutines and returns
// the results in index order.
func Map[T any](n, workers int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := ForEach(n, workers, func(i int) error {
		v, err := fn(i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
