package cluster

import (
	"testing"
)

// TestKMeansWorkerInvariant asserts clustering is identical for every
// worker count: the pairwise GED work is pure and the rng-consuming
// control flow stays sequential.
func TestKMeansWorkerInvariant(t *testing.T) {
	gs, _ := twoFamilies()
	run := func(workers int) *Result {
		o := DefaultOptions(2)
		o.Workers = workers
		r, err := KMeans(gs, o)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	ref := run(1)
	for _, workers := range []int{2, 8} {
		r := run(workers)
		if r.Inertia != ref.Inertia {
			t.Fatalf("workers=%d: inertia %v, want %v", workers, r.Inertia, ref.Inertia)
		}
		for i := range ref.Assignments {
			if r.Assignments[i] != ref.Assignments[i] {
				t.Fatalf("workers=%d: assignment[%d] = %d, want %d",
					workers, i, r.Assignments[i], ref.Assignments[i])
			}
		}
		for c := range ref.Centers {
			if r.Centers[c].Name != ref.Centers[c].Name {
				t.Fatalf("workers=%d: center[%d] = %s, want %s",
					workers, c, r.Centers[c].Name, ref.Centers[c].Name)
			}
		}
	}
}

// TestElbowKWorkerInvariant asserts the elbow search is unaffected by
// the worker count threaded through KMeans.
func TestElbowKWorkerInvariant(t *testing.T) {
	gs, _ := twoFamilies()
	run := func(workers int) (int, []float64) {
		o := DefaultOptions(0)
		o.Workers = workers
		k, inertias, err := ElbowK(gs, 4, o)
		if err != nil {
			t.Fatal(err)
		}
		return k, inertias
	}
	refK, refI := run(1)
	for _, workers := range []int{2, 8} {
		k, inertias := run(workers)
		if k != refK {
			t.Fatalf("workers=%d: elbow k = %d, want %d", workers, k, refK)
		}
		for i := range refI {
			if inertias[i] != refI[i] {
				t.Fatalf("workers=%d: inertia[%d] = %v, want %v", workers, i, inertias[i], refI[i])
			}
		}
	}
}
