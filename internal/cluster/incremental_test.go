package cluster

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"github.com/streamtune/streamtune/internal/dag"
	"github.com/streamtune/streamtune/internal/ged"
	"github.com/streamtune/streamtune/internal/simsearch"
)

// perturbedCorpus clones the two test families with occasional single
// operator retypes — the admission-bench growth pattern in miniature.
func perturbedCorpus(seed int64, n int) []*dag.Graph {
	base, _ := twoFamilies()
	rng := rand.New(rand.NewSource(seed))
	out := make([]*dag.Graph, 0, n)
	for len(out) < n {
		g := base[rng.Intn(len(base))].Clone()
		g.Name = fmt.Sprintf("%s#%d", g.Name, len(out))
		if rng.Float64() < 0.7 {
			ops := g.Operators()
			op := ops[rng.Intn(len(ops))]
			if op.Type != dag.Source && op.Type != dag.Sink {
				op.Type = dag.OpType(2 + rng.Intn(dag.NumOpTypes()-2))
			}
		}
		out = append(out, g)
	}
	return out
}

// TestIncrementalMatchesBatchOnStaticCorpus is the tentpole
// differential: on a static corpus the incremental maintainer assigns
// every graph to exactly the cluster batch K-means converged to.
func TestIncrementalMatchesBatchOnStaticCorpus(t *testing.T) {
	gs := perturbedCorpus(31, 40)
	res, err := KMeans(gs, DefaultOptions(3))
	if err != nil {
		t.Fatal(err)
	}
	inc, err := NewIncremental(res, gs, IncrementalOptions{Options: DefaultOptions(3)})
	if err != nil {
		t.Fatal(err)
	}
	for i, g := range gs {
		c, d := inc.Assign(g)
		if c != res.Assignments[i] {
			t.Fatalf("graph %d: incremental assigns %d, batch K-means %d", i, c, res.Assignments[i])
		}
		if want := ged.Distance(g, res.Centers[c]); d != want {
			t.Fatalf("graph %d: distance %v != exact %v", i, d, want)
		}
	}
}

// TestIncrementalAddExactVsCanonical streams new graphs through Add
// with re-centering disabled and checks every assignment against the
// canonical Result.Assign scan over the (static) centers.
func TestIncrementalAddExactVsCanonical(t *testing.T) {
	gs := perturbedCorpus(32, 24)
	res, err := KMeans(gs, DefaultOptions(3))
	if err != nil {
		t.Fatal(err)
	}
	opts := IncrementalOptions{Options: DefaultOptions(3), RecenterChurn: math.Inf(1)}
	inc, err := NewIncremental(res, gs, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i, g := range perturbedCorpus(33, 40) {
		wantC, wantD := res.Assign(g)
		gotC, gotD, err := inc.Add(g)
		if err != nil {
			t.Fatal(err)
		}
		if gotC != wantC || gotD != wantD {
			t.Fatalf("add %d: incremental (%d, %v) != canonical (%d, %v)", i, gotC, gotD, wantC, wantD)
		}
	}
	if st := inc.Stats(); st.Recenters != 0 || st.Adds != 40 {
		t.Fatalf("stats = %+v, want 40 adds and no recenters", inc.Stats())
	}
	// The caller's Result must be untouched.
	if len(res.Assignments) != 24 {
		t.Fatalf("caller Result mutated: %d assignments", len(res.Assignments))
	}
}

// TestIncrementalRecenterDifferential forces lazy re-centering and
// verifies (a) the re-centered center equals the batch center update
// over the same members, (b) later assignments stay canonical against
// the live centers, and (c) the tracked inertia matches an exact
// recomputation.
func TestIncrementalRecenterDifferential(t *testing.T) {
	gs := perturbedCorpus(34, 16)
	res, err := KMeans(gs, DefaultOptions(2))
	if err != nil {
		t.Fatal(err)
	}
	opts := IncrementalOptions{Options: DefaultOptions(2), RecenterChurn: 0.1, RecenterMinAdds: 4}
	inc, err := NewIncremental(res, gs, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range perturbedCorpus(35, 48) {
		c, d, err := inc.Add(g)
		if err != nil {
			t.Fatal(err)
		}
		// Canonical scan against the maintainer's current centers.
		live := inc.Result()
		wantC, wantD := live.Assign(g)
		// Assign ran after the Add's possible re-center; the Add's own
		// answer was computed against the centers in force at its time,
		// which differ only if this very Add triggered the re-center.
		// Re-check directly: the recorded assignment must be exact.
		if d != ged.Distance(g, live.Centers[c]) && d != wantD {
			t.Fatalf("add of %s: distance %v is not exact against any live center (canonical %d/%v)",
				g.Name, d, wantC, wantD)
		}
	}
	st := inc.Stats()
	if st.Recenters == 0 {
		t.Fatalf("churn threshold never re-centered: %+v", st)
	}
	// Center differential: each live center must equal the batch update
	// step's center over the same members.
	live := inc.Result()
	all := append(append([]*dag.Graph(nil), gs...), func() []*dag.Graph {
		var added []*dag.Graph
		for _, g := range perturbedCorpus(35, 48) {
			added = append(added, g)
		}
		return added
	}()...)
	for c := range live.Centers {
		memberIdx := live.ClusterOf(c)
		if len(memberIdx) == 0 {
			continue
		}
		members := make([]*dag.Graph, len(memberIdx))
		for j, i := range memberIdx {
			members[j] = all[i]
		}
		// Only clusters whose drift is fully re-centered are comparable;
		// pending adds since the last re-center shift the member set.
		_, adds, _ := inc.Drift(c)
		if adds != 0 {
			continue
		}
		ci, err := simsearch.CenterWorkersCached(members, 5, simsearch.AStarLS, 0, nil)
		if err != nil {
			t.Fatal(err)
		}
		if ged.Fingerprint(live.Centers[c]) != ged.Fingerprint(members[ci]) {
			t.Fatalf("cluster %d: live center structure differs from batch center update", c)
		}
	}
	// Inertia differential: exact recomputation over live assignments.
	want := 0.0
	for i, a := range live.Assignments {
		want += ged.Distance(all[i], live.Centers[a])
	}
	if diff := math.Abs(live.Inertia - want); diff > 1e-9 {
		t.Fatalf("tracked inertia %v != exact %v (diff %v)", live.Inertia, want, diff)
	}
}

// TestIncrementalIndexedPath grows the center count past the pivot
// index threshold and checks the indexed assignments stay canonical.
func TestIncrementalIndexedPath(t *testing.T) {
	gs := perturbedCorpus(36, 60)
	res, err := KMeans(gs, DefaultOptions(nearestIndexMin+2))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Centers) < nearestIndexMin {
		t.Skipf("only %d centers; need %d for the indexed path", len(res.Centers), nearestIndexMin)
	}
	inc, err := NewIncremental(res, gs, IncrementalOptions{Options: DefaultOptions(nearestIndexMin + 2), RecenterChurn: math.Inf(1)})
	if err != nil {
		t.Fatal(err)
	}
	for i, g := range perturbedCorpus(37, 30) {
		wantC, wantD := res.Assign(g)
		gotC, gotD, err := inc.Add(g)
		if err != nil {
			t.Fatal(err)
		}
		if gotC != wantC || gotD != wantD {
			t.Fatalf("add %d: indexed (%d, %v) != canonical (%d, %v)", i, gotC, gotD, wantC, wantD)
		}
	}
	if st := inc.Stats(); st.IndexedAssigns == 0 {
		t.Fatalf("no assignments took the pivot-index path: %+v", st)
	}
}

// TestIncrementalValidation covers constructor error paths.
func TestIncrementalValidation(t *testing.T) {
	gs := perturbedCorpus(38, 6)
	if _, err := NewIncremental(nil, gs, IncrementalOptions{}); err == nil {
		t.Fatal("nil result accepted")
	}
	res, err := KMeans(gs, DefaultOptions(2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewIncremental(res, gs[:3], IncrementalOptions{}); err == nil {
		t.Fatal("graph/assignment length mismatch accepted")
	}
}
