package cluster

import (
	"fmt"
	"testing"

	"github.com/streamtune/streamtune/internal/dag"
	"github.com/streamtune/streamtune/internal/ged"
)

// twoFamilies builds two structurally distinct groups: short map chains
// and wide join queries.
func twoFamilies() ([]*dag.Graph, int) {
	var gs []*dag.Graph
	// Family A: source -> map[xN] -> sink (N = 1..3).
	for n := 1; n <= 3; n++ {
		g := dag.New(fmt.Sprintf("chain%d", n))
		g.MustAddOperator(&dag.Operator{ID: "s", Type: dag.Source})
		prev := "s"
		for i := 0; i < n; i++ {
			id := fmt.Sprintf("m%d", i)
			g.MustAddOperator(&dag.Operator{ID: id, Type: dag.Map})
			g.MustAddEdge(prev, id)
			prev = id
		}
		g.MustAddOperator(&dag.Operator{ID: "k", Type: dag.Sink})
		g.MustAddEdge(prev, "k")
		gs = append(gs, g)
	}
	split := len(gs)
	// Family B: two sources -> filters -> join -> agg -> sink.
	for v := 0; v < 3; v++ {
		g := dag.New(fmt.Sprintf("join%d", v))
		g.MustAddOperator(&dag.Operator{ID: "s1", Type: dag.Source})
		g.MustAddOperator(&dag.Operator{ID: "s2", Type: dag.Source})
		g.MustAddOperator(&dag.Operator{ID: "f1", Type: dag.Filter})
		g.MustAddOperator(&dag.Operator{ID: "f2", Type: dag.Filter})
		g.MustAddOperator(&dag.Operator{ID: "j", Type: dag.WindowJoin})
		if v > 0 {
			g.MustAddOperator(&dag.Operator{ID: "a", Type: dag.Aggregate})
		}
		g.MustAddOperator(&dag.Operator{ID: "k", Type: dag.Sink})
		g.MustAddEdge("s1", "f1")
		g.MustAddEdge("s2", "f2")
		g.MustAddEdge("f1", "j")
		g.MustAddEdge("f2", "j")
		if v > 0 {
			g.MustAddEdge("j", "a")
			g.MustAddEdge("a", "k")
		} else {
			g.MustAddEdge("j", "k")
		}
		gs = append(gs, g)
	}
	return gs, split
}

func TestKMeansSeparatesFamilies(t *testing.T) {
	gs, split := twoFamilies()
	res, err := KMeans(gs, DefaultOptions(2))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Centers) != 2 {
		t.Fatalf("centers = %d, want 2", len(res.Centers))
	}
	// All chains together, all joins together.
	for i := 1; i < split; i++ {
		if res.Assignments[i] != res.Assignments[0] {
			t.Errorf("chain graphs split across clusters: %v", res.Assignments)
		}
	}
	for i := split + 1; i < len(gs); i++ {
		if res.Assignments[i] != res.Assignments[split] {
			t.Errorf("join graphs split across clusters: %v", res.Assignments)
		}
	}
	if res.Assignments[0] == res.Assignments[split] {
		t.Errorf("families merged into one cluster: %v", res.Assignments)
	}
}

func TestKMeansValidation(t *testing.T) {
	if _, err := KMeans(nil, DefaultOptions(2)); err == nil {
		t.Fatal("expected empty-input error")
	}
	gs, _ := twoFamilies()
	if _, err := KMeans(gs, DefaultOptions(0)); err == nil {
		t.Fatal("expected K<1 error")
	}
	// K > n clamps.
	res, err := KMeans(gs[:2], DefaultOptions(10))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Centers) != 2 {
		t.Fatalf("clamped centers = %d, want 2", len(res.Centers))
	}
}

func TestAssignNearestCenter(t *testing.T) {
	gs, split := twoFamilies()
	res, err := KMeans(gs, DefaultOptions(2))
	if err != nil {
		t.Fatal(err)
	}
	// A fresh chain graph must land in the chain cluster.
	g := dag.New("newchain")
	g.MustAddOperator(&dag.Operator{ID: "s", Type: dag.Source})
	g.MustAddOperator(&dag.Operator{ID: "m", Type: dag.Map})
	g.MustAddOperator(&dag.Operator{ID: "m2", Type: dag.Map})
	g.MustAddOperator(&dag.Operator{ID: "k", Type: dag.Sink})
	g.MustAddEdge("s", "m")
	g.MustAddEdge("m", "m2")
	g.MustAddEdge("m2", "k")
	c, d := res.Assign(g)
	if c != res.Assignments[0] {
		t.Fatalf("new chain assigned to cluster %d, chains live in %d", c, res.Assignments[0])
	}
	if d > 3 {
		t.Fatalf("assignment distance %v unexpectedly large", d)
	}
	_ = split
}

func TestClusterOf(t *testing.T) {
	gs, _ := twoFamilies()
	res, err := KMeans(gs, DefaultOptions(2))
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for c := 0; c < 2; c++ {
		n += len(res.ClusterOf(c))
	}
	if n != len(gs) {
		t.Fatalf("cluster members sum to %d, want %d", n, len(gs))
	}
}

func TestInertiaDecreasesWithK(t *testing.T) {
	gs, _ := twoFamilies()
	o1 := DefaultOptions(1)
	r1, err := KMeans(gs, o1)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := KMeans(gs, DefaultOptions(2))
	if err != nil {
		t.Fatal(err)
	}
	if r2.Inertia > r1.Inertia {
		t.Fatalf("inertia grew with k: k=1 %v, k=2 %v", r1.Inertia, r2.Inertia)
	}
}

func TestElbowK(t *testing.T) {
	gs, _ := twoFamilies()
	k, inertias, err := ElbowK(gs, 4, DefaultOptions(0))
	if err != nil {
		t.Fatal(err)
	}
	if len(inertias) != 4 {
		t.Fatalf("inertias = %d entries, want 4", len(inertias))
	}
	if k < 1 || k > 4 {
		t.Fatalf("elbow k = %d out of range", k)
	}
	if _, _, err := ElbowK(gs, 0, DefaultOptions(0)); err == nil {
		t.Fatal("expected maxK error")
	}
}

func TestCentersAreClusterMembers(t *testing.T) {
	gs, _ := twoFamilies()
	res, err := KMeans(gs, DefaultOptions(2))
	if err != nil {
		t.Fatal(err)
	}
	for c, center := range res.Centers {
		found := false
		for _, g := range gs {
			if ged.Distance(g, center) == 0 {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("center %d is not any input graph", c)
		}
	}
}
