// Incremental cluster maintenance: assign arriving DAGs to existing
// centers through the simsearch pivot index and the learned GED band,
// track per-cluster drift, and re-center only the affected cluster
// lazily — never re-running global K-means on the hot path. Every
// assignment is exact: it equals the canonical linear scan over centers
// (strict <, ties to the first cluster), because both the pivot index
// and the band skip candidates only under exact certificates.
package cluster

import (
	"fmt"
	"math"

	"github.com/streamtune/streamtune/internal/dag"
	"github.com/streamtune/streamtune/internal/ged"
	"github.com/streamtune/streamtune/internal/simsearch"
)

// nearestIndexMin is the smallest center count for which Add routes
// assignments through a pivot metric index; below it the band's
// ordered-certificate scan wins, above it the pivot table amortizes
// its construction over the arrival stream. Profiling the admission
// bench put the crossover well past the paper-scale K=8: the index
// pays full (unpruned) exact query-to-pivot distances per new
// structure, while the band's scan needs one full distance plus
// incumbent-pruned threshold searches.
const nearestIndexMin = 24

// IncrementalOptions configures an Incremental maintainer.
type IncrementalOptions struct {
	// Options carries Tau, Method and Workers for lazy re-centering;
	// zero values default like DefaultOptions.
	Options
	// RecenterChurn is the membership-churn fraction that triggers a
	// lazy local re-center: cluster c is re-centered once the members
	// added since its last re-center exceed RecenterChurn times its
	// size at that point. Default 0.25; +Inf disables re-centering.
	RecenterChurn float64
	// RecenterMinAdds floors the churn trigger so tiny clusters don't
	// re-center on every arrival. Default 8.
	RecenterMinAdds int
	// Band optionally supplies the learned GED band used to order and
	// certify assignment work. Nil builds a private band over Cache.
	Band *ged.Band
	// Cache is the shared distance cache (nil allocates one). Ignored
	// when Band is non-nil — the band's cache wins.
	Cache *ged.PairCache
}

// IncrementalStats counts the maintainer's work.
type IncrementalStats struct {
	// Adds is the number of graphs admitted through Add.
	Adds int
	// Recenters is the number of lazy local re-centers performed —
	// compare against K x iterations center updates of a global K-means
	// re-run per admission batch.
	Recenters int
	// IndexedAssigns and BandAssigns split Adds by the path that served
	// the nearest-center query.
	IndexedAssigns int
	BandAssigns    int
}

// drift is the per-cluster bookkeeping behind lazy re-centering.
type drift struct {
	size    int     // current membership
	adds    int     // members added since the last re-center
	inertia float64 // distance mass added since the last re-center
}

// Incremental maintains a clustering as the corpus grows. It is not
// safe for concurrent use; callers serialize Adds (the tuning service
// admits through its own lock).
type Incremental struct {
	opts   IncrementalOptions
	band   *ged.Band
	res    *Result
	graphs []*dag.Graph
	drift  []drift

	ix      *simsearch.Index // pivot index over centers
	ixDirty bool

	stats IncrementalStats
}

// NewIncremental wraps a batch clustering result for incremental
// growth. The result and graph slice are copied shallowly — the
// caller's Result is never mutated; graphs[i] must be the graph
// res.Assignments[i] assigns.
func NewIncremental(res *Result, graphs []*dag.Graph, opts IncrementalOptions) (*Incremental, error) {
	if res == nil || len(res.Centers) == 0 {
		return nil, fmt.Errorf("cluster: incremental needs a non-empty clustering")
	}
	if len(graphs) != len(res.Assignments) {
		return nil, fmt.Errorf("cluster: %d graphs but %d assignments", len(graphs), len(res.Assignments))
	}
	if opts.MaxIterations <= 0 {
		opts.MaxIterations = 20
	}
	if opts.Tau <= 0 {
		opts.Tau = 5
	}
	if opts.RecenterChurn <= 0 {
		opts.RecenterChurn = 0.25
	}
	if opts.RecenterMinAdds <= 0 {
		opts.RecenterMinAdds = 8
	}
	band := opts.Band
	if band == nil {
		band = ged.NewBand(opts.Cache, ged.DefaultBandOptions())
	}
	own := &Result{
		Centers:     append([]*dag.Graph(nil), res.Centers...),
		Assignments: append([]int(nil), res.Assignments...),
		Inertia:     res.Inertia,
	}
	own.rebuildMembers()
	inc := &Incremental{
		opts:    opts,
		band:    band,
		res:     own,
		graphs:  append([]*dag.Graph(nil), graphs...),
		drift:   make([]drift, len(res.Centers)),
		ixDirty: true,
	}
	for _, a := range own.Assignments {
		if a >= 0 && a < len(inc.drift) {
			inc.drift[a].size++
		}
	}
	return inc, nil
}

// Result returns the live clustering (centers, assignments, member
// lists, inertia). The caller must not mutate it.
func (inc *Incremental) Result() *Result { return inc.res }

// Band returns the learned band serving the maintainer's assignments.
func (inc *Incremental) Band() *ged.Band { return inc.band }

// Stats returns a snapshot of the maintainer's work counters.
func (inc *Incremental) Stats() IncrementalStats { return inc.stats }

// Assign returns the nearest center to g and the exact distance without
// admitting it — identical to Result.Assign's canonical scan.
func (inc *Incremental) Assign(g *dag.Graph) (int, float64) {
	c, d, _ := inc.nearest(g)
	return c, d
}

// nearest serves the exact nearest-center query through the pivot index
// when enough centers exist, and the band's ordered-certificate scan
// otherwise.
func (inc *Incremental) nearest(g *dag.Graph) (int, float64, bool) {
	if len(inc.res.Centers) >= nearestIndexMin {
		if inc.ixDirty {
			inc.ix = simsearch.NewIndexCached(inc.res.Centers, inc.opts.Workers, inc.band.Cache())
			inc.ixDirty = false
		}
		c, d := inc.ix.Nearest(g, inc.band)
		return c, d, true
	}
	c, d, _ := inc.band.Nearest(g, inc.res.Centers)
	return c, d, false
}

// Add admits g: assigns it to its exact nearest center, updates the
// cluster's drift, and lazily re-centers that cluster when churn
// crosses the threshold. Returns the cluster and the exact distance.
func (inc *Incremental) Add(g *dag.Graph) (int, float64, error) {
	c, d, indexed := inc.nearest(g)
	if c < 0 {
		return -1, d, fmt.Errorf("cluster: no centers to assign to")
	}
	if indexed {
		inc.stats.IndexedAssigns++
	} else {
		inc.stats.BandAssigns++
	}
	i := len(inc.graphs)
	inc.graphs = append(inc.graphs, g)
	inc.res.Assignments = append(inc.res.Assignments, c)
	inc.res.members[c] = append(inc.res.members[c], i)
	inc.res.Inertia += d
	inc.stats.Adds++

	dr := &inc.drift[c]
	dr.size++
	dr.adds++
	dr.inertia += d
	if dr.adds >= inc.opts.RecenterMinAdds &&
		float64(dr.adds) >= inc.opts.RecenterChurn*float64(dr.size-dr.adds) {
		if err := inc.recenter(c); err != nil {
			return c, d, err
		}
	}
	return c, d, nil
}

// recenter recomputes cluster c's similarity center over its current
// members — the same CenterWorkersCached computation the batch K-means
// update step runs, scoped to the one drifted cluster. Assignments of
// existing members are left as-is (lazy locality: a later global
// K-means pass, not the admission path, is where cross-cluster moves
// belong); the result's inertia is adjusted exactly for the new center.
func (inc *Incremental) recenter(c int) error {
	memberIdx := inc.res.members[c]
	if len(memberIdx) == 0 {
		return nil
	}
	members := make([]*dag.Graph, len(memberIdx))
	for j, i := range memberIdx {
		members[j] = inc.graphs[i]
	}
	cache := inc.band.Cache()
	ci, err := simsearch.CenterWorkersCached(members, inc.opts.Tau, inc.opts.Method, inc.opts.Workers, cache)
	if err != nil {
		return fmt.Errorf("cluster: re-center cluster %d: %w", c, err)
	}
	newCenter := members[ci]
	oldCenter := inc.res.Centers[c]
	if ged.Fingerprint(newCenter) != ged.Fingerprint(oldCenter) {
		// Exact inertia adjustment: swap each member's old-center
		// distance for its new-center distance. The center search above
		// already computed the member-pair matrix, so these resolve
		// almost entirely from cache.
		var oldSum, newSum float64
		for _, m := range members {
			oldSum += cache.Distance(m, oldCenter)
			newSum += cache.Distance(m, newCenter)
		}
		inc.res.Inertia += newSum - oldSum
		inc.res.Centers[c] = newCenter
		inc.ixDirty = true
	}
	dr := &inc.drift[c]
	dr.adds = 0
	dr.inertia = 0
	inc.stats.Recenters++
	return nil
}

// Drift reports cluster c's churn since its last re-center: members
// added and the distance mass they contributed. Size is the current
// membership.
func (inc *Incremental) Drift(c int) (size, adds int, inertia float64) {
	if c < 0 || c >= len(inc.drift) {
		return 0, 0, math.NaN()
	}
	dr := inc.drift[c]
	return dr.size, dr.adds, dr.inertia
}
