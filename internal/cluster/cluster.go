// Package cluster groups dataflow DAGs with K-means under the Graph
// Edit Distance metric (§IV-C of the StreamTune paper). Cluster
// centroids are similarity centers — approximate median graphs computed
// via graph similarity search — rather than numerical means, which do
// not exist for graphs.
package cluster

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/streamtune/streamtune/internal/dag"
	"github.com/streamtune/streamtune/internal/ged"
	"github.com/streamtune/streamtune/internal/parallel"
	"github.com/streamtune/streamtune/internal/simsearch"
)

// Options configures K-means clustering.
type Options struct {
	// K is the number of clusters.
	K int
	// MaxIterations bounds the assign/update loop.
	MaxIterations int
	// Tau is the similarity-search threshold for center computation.
	Tau float64
	// Method selects the GED verification strategy.
	Method simsearch.Method
	// Seed drives centroid initialization.
	Seed int64
	// Workers bounds the goroutines used for the pairwise GED work of
	// the assignment and center-update steps. Results are identical for
	// every worker count; values below one use every CPU.
	Workers int
}

// DefaultOptions returns the clustering setup used in the reproduction
// (tau = 5 per the paper's §V-A).
func DefaultOptions(k int) Options {
	return Options{K: k, MaxIterations: 20, Tau: 5, Method: simsearch.AStarLS, Seed: 1}
}

// Result is a completed clustering.
type Result struct {
	// Centers holds the representative graph of each cluster.
	Centers []*dag.Graph
	// Assignments maps each input graph index to its cluster.
	Assignments []int
	// Inertia is the sum of GED distances from each graph to its center.
	Inertia float64
	// Iterations is the number of assign/update rounds KMeans ran; each
	// round recomputes all K similarity centers. Zero for results not
	// produced by KMeans.
	Iterations int

	// members caches the per-cluster member lists so hot paths calling
	// ClusterOf per cluster don't rescan Assignments each time. Built
	// once from Assignments on first use (or by KMeans); invalidated by
	// anyone mutating Assignments directly via rebuildMembers.
	members [][]int
}

// ClusterOf returns the members (input indices) of cluster c. The
// per-cluster lists are computed once per Result and shared — callers
// must not mutate the returned slice. Not safe for concurrent first
// use with a mutation of Assignments.
func (r *Result) ClusterOf(c int) []int {
	if r.members == nil {
		r.rebuildMembers()
	}
	if c < 0 || c >= len(r.members) {
		return nil
	}
	return r.members[c]
}

// rebuildMembers recomputes the member lists from Assignments in one
// pass. Call after mutating Assignments out of band.
func (r *Result) rebuildMembers() {
	r.members = make([][]int, len(r.Centers))
	for i, a := range r.Assignments {
		if a >= 0 && a < len(r.members) {
			r.members[a] = append(r.members[a], i)
		}
	}
}

// Assign returns the index of the nearest center to g, and the distance.
func (r *Result) Assign(g *dag.Graph) (int, float64) {
	best, bestD := -1, math.Inf(1)
	for c, center := range r.Centers {
		d := ged.Distance(g, center)
		if d < bestD {
			best, bestD = c, d
		}
	}
	return best, bestD
}

// KMeans clusters the graphs. K is clamped to len(graphs).
func KMeans(graphs []*dag.Graph, opts Options) (*Result, error) {
	n := len(graphs)
	if n == 0 {
		return nil, fmt.Errorf("cluster: no graphs")
	}
	k := opts.K
	if k < 1 {
		return nil, fmt.Errorf("cluster: K must be >= 1, got %d", k)
	}
	if k > n {
		k = n
	}
	if opts.MaxIterations <= 0 {
		opts.MaxIterations = 20
	}

	// Initialization: distinct random members as centroids.
	rng := rand.New(rand.NewSource(opts.Seed))
	perm := rng.Perm(n)
	centerIdx := append([]int(nil), perm[:k]...)
	centers := make([]*dag.Graph, k)
	for c, gi := range centerIdx {
		centers[c] = graphs[gi]
	}

	assign := make([]int, n)
	iterations := 0
	// One fingerprint-keyed distance cache spans all iterations: centers
	// recur across assignment rounds and corpora are full of cloned
	// templates, so later iterations resolve almost entirely from cache.
	cache := ged.NewPairCache()
	for iter := 0; iter < opts.MaxIterations; iter++ {
		iterations = iter + 1
		// Assignment step: the full graphs x centers GED matrix is
		// computed in parallel, then reduced deterministically.
		dists := ged.CrossDistancesCached(graphs, centers, opts.Workers, cache)
		changed := false
		for i := range graphs {
			best, bestD := 0, math.Inf(1)
			for c := range centers {
				if d := dists[i][c]; d < bestD {
					best, bestD = c, d
				}
			}
			if iter == 0 || assign[i] != best {
				changed = true
			}
			assign[i] = best
		}
		if !changed && iter > 0 {
			break
		}
		// Update step: similarity centers. The loop stays sequential so
		// empty-cluster re-seeding consumes rng draws in a fixed order;
		// the quadratic similarity search inside each center fans out.
		for c := 0; c < k; c++ {
			var members []*dag.Graph
			var memberIdx []int
			for i, a := range assign {
				if a == c {
					members = append(members, graphs[i])
					memberIdx = append(memberIdx, i)
				}
			}
			if len(members) == 0 {
				// Re-seed an empty cluster with a random graph.
				gi := perm[rng.Intn(n)]
				centers[c] = graphs[gi]
				continue
			}
			ci, err := simsearch.CenterWorkersCached(members, opts.Tau, opts.Method, opts.Workers, cache)
			if err != nil {
				return nil, fmt.Errorf("cluster: center of cluster %d: %w", c, err)
			}
			centers[c] = graphs[memberIdx[ci]]
		}
	}

	res := &Result{Centers: centers, Assignments: assign, Iterations: iterations}
	res.rebuildMembers()
	perGraph, err := parallel.Map(n, opts.Workers, func(i int) (float64, error) {
		return cache.Distance(graphs[i], centers[assign[i]]), nil
	})
	if err != nil {
		return nil, err
	}
	for _, d := range perGraph {
		res.Inertia += d
	}
	return res, nil
}

// ElbowK picks the number of clusters with the elbow method: the k in
// [1, maxK] where the marginal inertia reduction drops below ratio
// (defaulting to the largest second-difference when no drop qualifies).
func ElbowK(graphs []*dag.Graph, maxK int, opts Options) (int, []float64, error) {
	if maxK < 1 {
		return 0, nil, fmt.Errorf("cluster: maxK must be >= 1")
	}
	if maxK > len(graphs) {
		maxK = len(graphs)
	}
	inertias := make([]float64, maxK)
	for k := 1; k <= maxK; k++ {
		o := opts
		o.K = k
		r, err := KMeans(graphs, o)
		if err != nil {
			return 0, nil, err
		}
		inertias[k-1] = r.Inertia
	}
	// Elbow: first k whose relative improvement over k-1 falls under 15%.
	for k := 2; k <= maxK; k++ {
		prev, cur := inertias[k-2], inertias[k-1]
		if prev <= 0 {
			return k - 1, inertias, nil
		}
		if (prev-cur)/prev < 0.15 {
			return k - 1, inertias, nil
		}
	}
	return maxK, inertias, nil
}
