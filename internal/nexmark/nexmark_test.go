package nexmark

import (
	"testing"

	"github.com/streamtune/streamtune/internal/dag"
	"github.com/streamtune/streamtune/internal/engine"
)

func TestBuildAllQueriesValid(t *testing.T) {
	for _, q := range Queries {
		for _, f := range []engine.Flavor{engine.Flink, engine.Timely} {
			g, err := Build(q, f)
			if err != nil {
				t.Fatalf("Build(%s, %s): %v", q, f, err)
			}
			if err := g.Validate(); err != nil {
				t.Errorf("%s/%s invalid: %v", q, f, err)
			}
		}
	}
}

func TestBuildUnknownQuery(t *testing.T) {
	if _, err := Build(Query("q99"), engine.Flink); err == nil {
		t.Fatal("expected error for unknown query")
	}
}

func TestRateUnitsMatchTableII(t *testing.T) {
	cases := []struct {
		q      Query
		f      engine.Flavor
		source string
		want   float64
	}{
		{Q1, engine.Flink, "bids", 700e3},
		{Q1, engine.Timely, "bids", 9e6},
		{Q2, engine.Flink, "bids", 900e3},
		{Q3, engine.Flink, "auctions", 200e3},
		{Q3, engine.Flink, "persons", 40e3},
		{Q3, engine.Timely, "persons", 5e6},
		{Q5, engine.Flink, "bids", 80e3},
		{Q5, engine.Timely, "bids", 10e6},
		{Q8, engine.Flink, "auctions", 100e3},
		{Q8, engine.Timely, "auctions", 4e6},
	}
	for _, c := range cases {
		u, err := RateUnit(c.q, c.f)
		if err != nil {
			t.Fatalf("RateUnit(%s, %s): %v", c.q, c.f, err)
		}
		if u[c.source] != c.want {
			t.Errorf("Wu[%s/%s/%s] = %v, want %v", c.q, c.f, c.source, u[c.source], c.want)
		}
	}
}

func TestQueryShapes(t *testing.T) {
	shapes := map[Query]struct {
		ops     int
		sources int
		keyType dag.OpType // a type that must be present
	}{
		Q1: {3, 1, dag.Map},
		Q2: {3, 1, dag.Filter},
		Q3: {7, 2, dag.Join},
		Q5: {4, 1, dag.WindowOp},
		Q8: {6, 2, dag.WindowJoin},
	}
	for q, want := range shapes {
		g, err := Build(q, engine.Flink)
		if err != nil {
			t.Fatal(err)
		}
		if g.NumOperators() != want.ops {
			t.Errorf("%s has %d operators, want %d", q, g.NumOperators(), want.ops)
		}
		if len(g.Sources()) != want.sources {
			t.Errorf("%s has %d sources, want %d", q, len(g.Sources()), want.sources)
		}
		found := false
		for _, op := range g.Operators() {
			if op.Type == want.keyType {
				found = true
			}
		}
		if !found {
			t.Errorf("%s missing a %s operator", q, want.keyType)
		}
	}
}

func TestQ5UsesSlidingWindowQ8UsesTumbling(t *testing.T) {
	q5, _ := Build(Q5, engine.Flink)
	for _, op := range q5.Operators() {
		if op.Type == dag.WindowOp && op.WindowType != dag.Sliding {
			t.Errorf("Q5 window is %s, want sliding", op.WindowType)
		}
	}
	q8, _ := Build(Q8, engine.Flink)
	for _, op := range q8.Operators() {
		if op.Type == dag.WindowJoin && op.WindowType != dag.Tumbling {
			t.Errorf("Q8 window join is %s, want tumbling", op.WindowType)
		}
	}
}

func TestQueriesRunnable(t *testing.T) {
	// Every query must execute free of backpressure at 10 rate units
	// when deployed at its ground-truth optimum with exact capacities.
	for _, q := range Queries {
		g, err := Build(q, engine.Flink)
		if err != nil {
			t.Fatal(err)
		}
		g.ScaleSourceRates(10)
		cfg := engine.DefaultConfig(engine.Flink)
		cfg.CapacityNoise = 0
		e, err := engine.New(g, cfg)
		if err != nil {
			t.Fatal(err)
		}
		opt, err := engine.GroundTruthOptimal(g, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := e.Deploy(opt); err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		m, err := e.Run()
		if err != nil {
			t.Fatal(err)
		}
		if m.Backpressured {
			t.Errorf("%s backpressured at optimum:\n%s", q, m)
		}
	}
}
