// Package nexmark provides logical dataflow DAGs for the Nexmark
// streaming benchmark queries used in the StreamTune evaluation (Q1, Q2,
// Q3, Q5 and Q8) together with the per-query source-rate units of
// Table II.
//
// The query shapes follow the paper's characterization: Q1 and Q2 are
// stateless (map, filter); Q3 is a stateful record-at-a-time two-input
// incremental join; Q5 uses a sliding window; Q8 uses a tumbling window
// join.
package nexmark

import (
	"fmt"

	"github.com/streamtune/streamtune/internal/dag"
	"github.com/streamtune/streamtune/internal/engine"
)

// Query identifies a Nexmark query.
type Query string

// The Nexmark queries evaluated in the paper.
const (
	Q1 Query = "q1"
	Q2 Query = "q2"
	Q3 Query = "q3"
	Q5 Query = "q5"
	Q8 Query = "q8"
)

// Queries lists the evaluated Nexmark queries in paper order.
var Queries = []Query{Q1, Q2, Q3, Q5, Q8}

// RateUnit returns the source-rate unit Wu (records/second) for the
// query on the given engine flavor, per Table II of the paper. Queries
// with multiple sources have per-source units; the returned map is keyed
// by source operator ID.
func RateUnit(q Query, flavor engine.Flavor) (map[string]float64, error) {
	type key struct {
		q Query
		f engine.Flavor
	}
	units := map[key]map[string]float64{
		{Q1, engine.Flink}:  {"bids": 700e3},
		{Q1, engine.Timely}: {"bids": 9e6},
		{Q2, engine.Flink}:  {"bids": 900e3},
		{Q2, engine.Timely}: {"bids": 9e6},
		{Q3, engine.Flink}:  {"auctions": 200e3, "persons": 40e3},
		{Q3, engine.Timely}: {"auctions": 5e6, "persons": 5e6},
		{Q5, engine.Flink}:  {"bids": 80e3},
		{Q5, engine.Timely}: {"bids": 10e6},
		{Q8, engine.Flink}:  {"auctions": 100e3, "persons": 60e3},
		{Q8, engine.Timely}: {"auctions": 4e6, "persons": 4e6},
	}
	u, ok := units[key{q, flavor}]
	if !ok {
		return nil, fmt.Errorf("nexmark: no rate unit for %s on %s", q, flavor)
	}
	out := make(map[string]float64, len(u))
	for k, v := range u {
		out[k] = v
	}
	return out, nil
}

// Build constructs the logical dataflow DAG for the query with all
// source rates set to one rate unit for the given flavor.
func Build(q Query, flavor engine.Flavor) (*dag.Graph, error) {
	var g *dag.Graph
	switch q {
	case Q1:
		g = buildQ1()
	case Q2:
		g = buildQ2()
	case Q3:
		g = buildQ3()
	case Q5:
		g = buildQ5()
	case Q8:
		g = buildQ8()
	default:
		return nil, fmt.Errorf("nexmark: unknown query %q", q)
	}
	units, err := RateUnit(q, flavor)
	if err != nil {
		return nil, err
	}
	if err := g.SetSourceRates(units); err != nil {
		return nil, err
	}
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("nexmark: %s: %w", q, err)
	}
	return g, nil
}

// buildQ1 is the currency-conversion query: a stateless map over bids.
func buildQ1() *dag.Graph {
	g := dag.New("nexmark-q1")
	g.MustAddOperator(&dag.Operator{ID: "bids", Type: dag.Source, TupleWidthOut: 96})
	g.MustAddOperator(&dag.Operator{
		ID: "currency-map", Type: dag.Map, Selectivity: 1,
		TupleWidthIn: 96, TupleWidthOut: 96,
	})
	g.MustAddOperator(&dag.Operator{ID: "sink", Type: dag.Sink, TupleWidthIn: 96})
	g.MustAddEdge("bids", "currency-map")
	g.MustAddEdge("currency-map", "sink")
	return g
}

// buildQ2 is the selection query: a stateless filter over bids.
func buildQ2() *dag.Graph {
	g := dag.New("nexmark-q2")
	g.MustAddOperator(&dag.Operator{ID: "bids", Type: dag.Source, TupleWidthOut: 96})
	g.MustAddOperator(&dag.Operator{
		ID: "auction-filter", Type: dag.Filter, Selectivity: 0.2,
		TupleWidthIn: 96, TupleWidthOut: 96,
	})
	g.MustAddOperator(&dag.Operator{ID: "sink", Type: dag.Sink, TupleWidthIn: 96})
	g.MustAddEdge("bids", "auction-filter")
	g.MustAddEdge("auction-filter", "sink")
	return g
}

// buildQ3 is the local-item-suggestion query: an incremental two-input
// join of filtered auctions and persons.
func buildQ3() *dag.Graph {
	g := dag.New("nexmark-q3")
	g.MustAddOperator(&dag.Operator{ID: "auctions", Type: dag.Source, TupleWidthOut: 128})
	g.MustAddOperator(&dag.Operator{ID: "persons", Type: dag.Source, TupleWidthOut: 160})
	g.MustAddOperator(&dag.Operator{
		ID: "category-filter", Type: dag.Filter, Selectivity: 0.5,
		TupleWidthIn: 128, TupleWidthOut: 128,
	})
	g.MustAddOperator(&dag.Operator{
		ID: "state-filter", Type: dag.Filter, Selectivity: 0.3,
		TupleWidthIn: 160, TupleWidthOut: 160,
	})
	g.MustAddOperator(&dag.Operator{
		ID: "incremental-join", Type: dag.Join, JoinKeyClass: dag.IntKey,
		Selectivity: 0.6, TupleWidthIn: 144, TupleWidthOut: 192,
	})
	g.MustAddOperator(&dag.Operator{
		ID: "project", Type: dag.Map, Selectivity: 1,
		TupleWidthIn: 192, TupleWidthOut: 96,
	})
	g.MustAddOperator(&dag.Operator{ID: "sink", Type: dag.Sink, TupleWidthIn: 96})
	g.MustAddEdge("auctions", "category-filter")
	g.MustAddEdge("persons", "state-filter")
	g.MustAddEdge("category-filter", "incremental-join")
	g.MustAddEdge("state-filter", "incremental-join")
	g.MustAddEdge("incremental-join", "project")
	g.MustAddEdge("project", "sink")
	return g
}

// buildQ5 is the hot-items query: a sliding window over bids followed by
// an aggregation.
func buildQ5() *dag.Graph {
	g := dag.New("nexmark-q5")
	g.MustAddOperator(&dag.Operator{ID: "bids", Type: dag.Source, TupleWidthOut: 96})
	g.MustAddOperator(&dag.Operator{
		ID: "sliding-window", Type: dag.WindowOp, WindowType: dag.Sliding,
		WindowPolicy: dag.TimePolicy, WindowLength: 60, SlidingLength: 5,
		Selectivity: 0.5, TupleWidthIn: 96, TupleWidthOut: 64,
	})
	g.MustAddOperator(&dag.Operator{
		ID: "max-agg", Type: dag.Aggregate, AggFunc: dag.AggMax,
		AggClass: dag.IntKey, AggKeyClass: dag.IntKey,
		Selectivity: 0.2, TupleWidthIn: 64, TupleWidthOut: 48,
	})
	g.MustAddOperator(&dag.Operator{ID: "sink", Type: dag.Sink, TupleWidthIn: 48})
	g.MustAddEdge("bids", "sliding-window")
	g.MustAddEdge("sliding-window", "max-agg")
	g.MustAddEdge("max-agg", "sink")
	return g
}

// buildQ8 is the monitor-new-users query: a tumbling window join of
// persons and auctions.
func buildQ8() *dag.Graph {
	g := dag.New("nexmark-q8")
	g.MustAddOperator(&dag.Operator{ID: "persons", Type: dag.Source, TupleWidthOut: 160})
	g.MustAddOperator(&dag.Operator{ID: "auctions", Type: dag.Source, TupleWidthOut: 128})
	g.MustAddOperator(&dag.Operator{
		ID: "person-window", Type: dag.WindowOp, WindowType: dag.Tumbling,
		WindowPolicy: dag.TimePolicy, WindowLength: 10,
		Selectivity: 0.9, TupleWidthIn: 160, TupleWidthOut: 96,
	})
	g.MustAddOperator(&dag.Operator{
		ID: "auction-window", Type: dag.WindowOp, WindowType: dag.Tumbling,
		WindowPolicy: dag.TimePolicy, WindowLength: 10,
		Selectivity: 0.9, TupleWidthIn: 128, TupleWidthOut: 96,
	})
	g.MustAddOperator(&dag.Operator{
		ID: "window-join", Type: dag.WindowJoin, WindowType: dag.Tumbling,
		WindowPolicy: dag.TimePolicy, WindowLength: 10, JoinKeyClass: dag.IntKey,
		Selectivity: 0.4, TupleWidthIn: 96, TupleWidthOut: 128,
	})
	g.MustAddOperator(&dag.Operator{ID: "sink", Type: dag.Sink, TupleWidthIn: 128})
	g.MustAddEdge("persons", "person-window")
	g.MustAddEdge("auctions", "auction-window")
	g.MustAddEdge("person-window", "window-join")
	g.MustAddEdge("auction-window", "window-join")
	g.MustAddEdge("window-join", "sink")
	return g
}
