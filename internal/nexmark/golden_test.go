package nexmark

import (
	"fmt"
	"sort"
	"testing"

	"github.com/streamtune/streamtune/internal/engine"
)

// edgeList renders a graph's edges as sorted "from->to" strings.
func edgeList(t *testing.T, q Query, f engine.Flavor) []string {
	t.Helper()
	g, err := Build(q, f)
	if err != nil {
		t.Fatal(err)
	}
	var edges []string
	for i := 0; i < g.NumOperators(); i++ {
		from := g.OperatorAt(i).ID
		for _, d := range g.Downstream(i) {
			edges = append(edges, fmt.Sprintf("%s->%s", from, g.OperatorAt(d).ID))
		}
	}
	sort.Strings(edges)
	return edges
}

// TestGoldenDAGShapes pins the exact operator count and edge list of
// every evaluated Nexmark query: the DAG topologies are model inputs
// (GED, GNN features), so a silent shape change would invalidate every
// downstream result.
func TestGoldenDAGShapes(t *testing.T) {
	golden := []struct {
		q     Query
		ops   int
		edges []string
	}{
		{Q1, 3, []string{"bids->currency-map", "currency-map->sink"}},
		{Q2, 3, []string{"auction-filter->sink", "bids->auction-filter"}},
		{Q3, 7, []string{
			"auctions->category-filter",
			"category-filter->incremental-join",
			"incremental-join->project",
			"persons->state-filter",
			"project->sink",
			"state-filter->incremental-join",
		}},
		{Q5, 4, []string{"bids->sliding-window", "max-agg->sink", "sliding-window->max-agg"}},
		{Q8, 6, []string{
			"auction-window->window-join",
			"auctions->auction-window",
			"person-window->window-join",
			"persons->person-window",
			"window-join->sink",
		}},
	}
	for _, want := range golden {
		for _, f := range []engine.Flavor{engine.Flink, engine.Timely} {
			g, err := Build(want.q, f)
			if err != nil {
				t.Fatalf("Build(%s, %s): %v", want.q, f, err)
			}
			if g.NumOperators() != want.ops {
				t.Errorf("%s/%s: %d operators, want %d", want.q, f, g.NumOperators(), want.ops)
			}
			got := edgeList(t, want.q, f)
			if len(got) != len(want.edges) {
				t.Fatalf("%s/%s: edges %v, want %v", want.q, f, got, want.edges)
			}
			for i := range got {
				if got[i] != want.edges[i] {
					t.Errorf("%s/%s: edge[%d] = %s, want %s", want.q, f, i, got[i], want.edges[i])
				}
			}
		}
	}
}

// TestGoldenRateUnits pins the complete Table II: every query, every
// flavor, every source.
func TestGoldenRateUnits(t *testing.T) {
	golden := []struct {
		q     Query
		f     engine.Flavor
		units map[string]float64
	}{
		{Q1, engine.Flink, map[string]float64{"bids": 700e3}},
		{Q1, engine.Timely, map[string]float64{"bids": 9e6}},
		{Q2, engine.Flink, map[string]float64{"bids": 900e3}},
		{Q2, engine.Timely, map[string]float64{"bids": 9e6}},
		{Q3, engine.Flink, map[string]float64{"auctions": 200e3, "persons": 40e3}},
		{Q3, engine.Timely, map[string]float64{"auctions": 5e6, "persons": 5e6}},
		{Q5, engine.Flink, map[string]float64{"bids": 80e3}},
		{Q5, engine.Timely, map[string]float64{"bids": 10e6}},
		{Q8, engine.Flink, map[string]float64{"auctions": 100e3, "persons": 60e3}},
		{Q8, engine.Timely, map[string]float64{"auctions": 4e6, "persons": 4e6}},
	}
	for _, want := range golden {
		got, err := RateUnit(want.q, want.f)
		if err != nil {
			t.Fatalf("RateUnit(%s, %s): %v", want.q, want.f, err)
		}
		if len(got) != len(want.units) {
			t.Errorf("%s/%s: units %v, want %v", want.q, want.f, got, want.units)
		}
		for src, wu := range want.units {
			if got[src] != wu {
				t.Errorf("%s/%s: Wu[%s] = %v, want %v", want.q, want.f, src, got[src], wu)
			}
		}
		// The built graph must carry exactly one rate unit per source.
		g, err := Build(want.q, want.f)
		if err != nil {
			t.Fatal(err)
		}
		for src, wu := range want.units {
			op := g.Operator(src)
			if op == nil {
				t.Fatalf("%s/%s: source %s missing from graph", want.q, want.f, src)
			}
			if op.SourceRate != wu {
				t.Errorf("%s/%s: graph rate[%s] = %v, want %v", want.q, want.f, src, op.SourceRate, wu)
			}
		}
	}
}

// TestGoldenRateUnitCopies asserts RateUnit returns a fresh map each
// call: callers scale the returned units in place.
func TestGoldenRateUnitCopies(t *testing.T) {
	a, err := RateUnit(Q1, engine.Flink)
	if err != nil {
		t.Fatal(err)
	}
	a["bids"] = 1
	b, err := RateUnit(Q1, engine.Flink)
	if err != nil {
		t.Fatal(err)
	}
	if b["bids"] != 700e3 {
		t.Fatalf("RateUnit shares state across calls: %v", b["bids"])
	}
}
