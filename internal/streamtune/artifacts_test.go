package streamtune

import (
	"os"
	"path/filepath"
	"testing"

	"github.com/streamtune/streamtune/internal/ged"
	"github.com/streamtune/streamtune/internal/mono"
)

// saveShared saves the shared PreTrained into a fresh temp dir.
func saveShared(t *testing.T) (*PreTrained, string) {
	t.Helper()
	pt := sharedPreTrained(t)
	dir := t.TempDir()
	if err := SaveArtifacts(dir, pt); err != nil {
		t.Fatal(err)
	}
	return pt, dir
}

// TestArtifactsRoundTrip proves the manifest carries the clustering,
// losses, and config through the store exactly.
func TestArtifactsRoundTrip(t *testing.T) {
	pt, dir := saveShared(t)
	lazy, err := OpenArtifacts(dir)
	if err != nil {
		t.Fatal(err)
	}
	if lazy.Config != pt.Config {
		t.Fatalf("config changed: %+v != %+v", lazy.Config, pt.Config)
	}
	if lazy.TrainTime != pt.TrainTime {
		t.Fatalf("train time %v != %v", lazy.TrainTime, pt.TrainTime)
	}
	if len(lazy.Clusters.Centers) != len(pt.Clusters.Centers) {
		t.Fatalf("%d centers != %d", len(lazy.Clusters.Centers), len(pt.Clusters.Centers))
	}
	for c := range pt.Clusters.Centers {
		if ged.Fingerprint(lazy.Clusters.Centers[c]) != ged.Fingerprint(pt.Clusters.Centers[c]) {
			t.Fatalf("center %d structure changed across the round trip", c)
		}
	}
	if len(lazy.Clusters.Assignments) != len(pt.Clusters.Assignments) {
		t.Fatalf("assignment count changed")
	}
	for i, a := range pt.Clusters.Assignments {
		if lazy.Clusters.Assignments[i] != a {
			t.Fatalf("assignment %d: %d != %d", i, lazy.Clusters.Assignments[i], a)
		}
	}
	if lazy.Clusters.Inertia != pt.Clusters.Inertia {
		t.Fatalf("inertia %v != %v", lazy.Clusters.Inertia, pt.Clusters.Inertia)
	}
	for c := range pt.Losses {
		for e := range pt.Losses[c] {
			if lazy.Losses[c][e] != pt.Losses[c][e] {
				t.Fatalf("loss curve %d diverged at epoch %d", c, e)
			}
		}
	}
	// Corpus order survives the cluster-grouped layout.
	all, err := lazy.allExecutions()
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != pt.corpus.Len() {
		t.Fatalf("%d executions != %d", len(all), pt.corpus.Len())
	}
	for i, ex := range pt.corpus.Executions {
		if all[i].Graph.Name != ex.Graph.Name || all[i].TotalParallelism != ex.TotalParallelism {
			t.Fatalf("execution %d reordered: %s/%d != %s/%d",
				i, all[i].Graph.Name, all[i].TotalParallelism, ex.Graph.Name, ex.TotalParallelism)
		}
	}
}

// TestArtifactsLazyAndBitIdentical is the tentpole differential: nothing
// loads until touched, and the warm-up datasets — encoder embeddings
// over streamed executions included — are bit-identical to the in-memory
// PreTrained's, for every cluster.
func TestArtifactsLazyAndBitIdentical(t *testing.T) {
	pt, dir := saveShared(t)
	lazy, err := OpenArtifacts(dir)
	if err != nil {
		t.Fatal(err)
	}
	if gl, eb := lazy.ArtifactStats(); gl != 0 || eb != 0 {
		t.Fatalf("open already loaded %d groups, %d encoders", gl, eb)
	}

	clusters := len(pt.Clusters.Centers)
	if testing.Short() && clusters > 1 {
		clusters = 1
	}
	for c := 0; c < clusters; c++ {
		want, err := ClusterWarmup(pt, c)
		if err != nil {
			t.Fatal(err)
		}
		got, err := ClusterWarmup(lazy, c)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("cluster %d: %d warm-up samples != %d", c, len(got), len(want))
		}
		for i := range want {
			if !sampleEqual(got[i], want[i]) {
				t.Fatalf("cluster %d sample %d diverged", c, i)
			}
		}
	}
	gl, eb := lazy.ArtifactStats()
	if gl == 0 || eb == 0 {
		t.Fatalf("warm-ups loaded %d groups, %d encoders; expected lazy loads to have happened", gl, eb)
	}
	if eb > clusters {
		t.Fatalf("%d encoders built for %d touched clusters", eb, clusters)
	}
	// Encoders memoize: a second warm-up builds nothing new.
	if _, err := ClusterWarmup(lazy, 0); err != nil {
		t.Fatal(err)
	}
	if _, eb2 := lazy.ArtifactStats(); eb2 != eb {
		t.Fatalf("repeat warm-up rebuilt encoders: %d -> %d", eb, eb2)
	}
}

func sampleEqual(a, b mono.Sample) bool {
	if a.Parallelism != b.Parallelism || a.Label != b.Label || len(a.Embedding) != len(b.Embedding) {
		return false
	}
	for i := range a.Embedding {
		if a.Embedding[i] != b.Embedding[i] {
			return false
		}
	}
	return true
}

// TestArtifactsValidation covers the fail-at-open paths: the accessors
// have no error returns, so every corruption must be caught by
// OpenArtifacts.
func TestArtifactsValidation(t *testing.T) {
	if _, err := OpenArtifacts(filepath.Join(t.TempDir(), "absent")); err == nil {
		t.Fatal("opened a nonexistent directory")
	}

	_, dir := saveShared(t)
	manifest := filepath.Join(dir, manifestFileName)
	good, err := os.ReadFile(manifest)
	if err != nil {
		t.Fatal(err)
	}
	restore := func() {
		if err := os.WriteFile(manifest, good, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	if err := os.WriteFile(manifest, []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenArtifacts(dir); err == nil {
		t.Fatal("opened a truncated manifest")
	}
	restore()

	if err := os.WriteFile(manifest, []byte(`{"version": 99}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenArtifacts(dir); err == nil {
		t.Fatal("opened an unknown artifact version")
	}
	restore()

	// Corrupt encoder weights must fail at open, not at first Encoder(c).
	enc := filepath.Join(dir, encoderFileName(0))
	goodEnc, err := os.ReadFile(enc)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(enc, []byte(`{"shapes":[[1,1]],"data":[[0]]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenArtifacts(dir); err == nil {
		t.Fatal("opened mis-shaped encoder weights")
	}
	if err := os.WriteFile(enc, goodEnc, 0o644); err != nil {
		t.Fatal(err)
	}

	// A truncated corpus file is caught by the size check at open.
	corpus := filepath.Join(dir, corpusFileName)
	goodCorpus, err := os.ReadFile(corpus)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(corpus, goodCorpus[:len(goodCorpus)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenArtifacts(dir); err == nil {
		t.Fatal("opened a truncated corpus file")
	}

	// Re-saving a lazily-opened store is refused.
	if err := os.WriteFile(corpus, goodCorpus, 0o644); err != nil {
		t.Fatal(err)
	}
	lazy, err := OpenArtifacts(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := SaveArtifacts(t.TempDir(), lazy); err == nil {
		t.Fatal("re-saved an artifact-backed PreTrained")
	}
}
