// Package streamtune implements the StreamTune tuner: offline
// pre-training (GED clustering of historical dataflow DAGs + per-cluster
// GNN encoders trained on operator-level bottleneck labels) and the
// online fine-tuning loop of Algorithm 2 (cluster assignment, warm-up
// dataset, monotonic prediction model, topological parallelism
// recommendation via binary search, and iterative refinement from
// runtime feedback).
package streamtune

import (
	"fmt"
	"time"

	"github.com/streamtune/streamtune/internal/cluster"
	"github.com/streamtune/streamtune/internal/dag"
	"github.com/streamtune/streamtune/internal/gnn"
	"github.com/streamtune/streamtune/internal/history"
	"github.com/streamtune/streamtune/internal/parallel"
)

// Config parameterizes pre-training and online tuning.
type Config struct {
	// GNN configures the per-cluster encoders.
	GNN gnn.Config
	// Train configures encoder pre-training.
	Train gnn.TrainOptions
	// Cluster configures GED K-means. When Cluster.K == 0, the elbow
	// method picks k up to MaxElbowK.
	Cluster cluster.Options
	// MaxElbowK bounds the elbow search.
	MaxElbowK int
	// Workers bounds the goroutines used to train the per-cluster
	// encoders concurrently (and is forwarded to GED clustering when
	// Cluster.Workers is unset). Each encoder derives its own seed from
	// GNN.Seed and its cluster id, so the trained weights are identical
	// for every worker count; values below one use every CPU.
	Workers int
	// Global disables clustering entirely and trains one encoder on the
	// whole corpus (the paper's limited-pre-training fallback, §VII).
	Global bool

	// Model selects the fine-tuned prediction layer: "svm", "xgb", "nn".
	Model string
	// ModelSeed seeds the prediction model.
	ModelSeed int64
	// Threshold is the bottleneck-probability decision threshold for the
	// binary search.
	Threshold float64
	// WarmupSamples is the number of historical executions sampled from
	// the assigned cluster to seed the fine-tuning dataset T.
	WarmupSamples int
	// MaxIterations bounds one online tuning process.
	MaxIterations int
	// FeedbackWeight replicates each runtime-feedback sample this many
	// times in T, so fresh operator-level observations outweigh the
	// warm-up history during model refits.
	FeedbackWeight int
	// MaxTrainingSet caps |T|; when exceeded, the oldest samples are
	// dropped first. Keeps refit cost bounded over long tuning
	// campaigns (the paper's 120 rate changes per query).
	MaxTrainingSet int
	// StabilityBand treats a backpressure-free recommendation within
	// this per-operator distance of the current deployment as converged,
	// suppressing churn from refit variance: a stop-and-restart
	// reconfiguration is never worth one slot.
	StabilityBand int
	// StabilizeWait is the simulated settling time charged after each
	// reconfiguration (paper: 10 minutes).
	StabilizeWait time.Duration
}

// DefaultConfig returns the evaluation configuration.
func DefaultConfig() Config {
	return Config{
		GNN:            gnn.DefaultConfig(),
		Train:          gnn.DefaultTrainOptions(),
		Cluster:        cluster.DefaultOptions(0),
		MaxElbowK:      6,
		Model:          "svm",
		ModelSeed:      1,
		Threshold:      0.4,
		WarmupSamples:  60,
		MaxIterations:  8,
		FeedbackWeight: 2,
		MaxTrainingSet: 2000,
		StabilityBand:  2,
		StabilizeWait:  10 * time.Minute,
	}
}

// PreTrained is the artifact of offline pre-training: the clustering and
// one encoder per cluster, plus the corpus partition for warm-up
// sampling.
type PreTrained struct {
	Config   Config
	Clusters *cluster.Result
	Encoders []*gnn.Encoder
	// Losses holds per-cluster training loss curves.
	Losses [][]float64
	// TrainTime is the wall-clock duration of PreTrain.
	TrainTime time.Duration

	corpus      *history.Corpus
	execCluster []int // cluster id per corpus execution

	// lazy, when set, backs the corpus and encoders with an on-disk
	// artifact store (OpenArtifacts) instead of the in-memory fields.
	lazy *artifactStore
}

// PreTrain clusters the corpus's distinct dataflow structures with GED
// K-means and trains one GNN encoder per cluster on the operator-level
// bottleneck classification task.
func PreTrain(corpus *history.Corpus, cfg Config) (*PreTrained, error) {
	if corpus.Len() == 0 {
		return nil, fmt.Errorf("streamtune: empty corpus")
	}
	start := time.Now()

	graphs := corpus.Graphs()
	copts := cfg.Cluster
	if copts.Workers == 0 {
		copts.Workers = cfg.Workers
	}
	var clusters *cluster.Result
	var err error
	switch {
	case cfg.Global || len(graphs) == 1:
		// Single global encoder: one cluster containing everything.
		clusters = &cluster.Result{
			Centers:     []*dag.Graph{graphs[0]},
			Assignments: make([]int, len(graphs)),
		}
	case copts.K > 0:
		clusters, err = cluster.KMeans(graphs, copts)
	default:
		maxK := cfg.MaxElbowK
		if maxK < 1 {
			maxK = 4
		}
		var k int
		k, _, err = cluster.ElbowK(graphs, maxK, copts)
		if err == nil {
			o := copts
			o.K = k
			clusters, err = cluster.KMeans(graphs, o)
		}
	}
	if err != nil {
		return nil, fmt.Errorf("streamtune: clustering: %w", err)
	}

	// Partition executions by the cluster of their job structure.
	graphCluster := make(map[string]int, len(graphs))
	for i, g := range graphs {
		graphCluster[g.Name] = clusters.Assignments[i]
	}
	k := len(clusters.Centers)
	subCorpora := make([]*history.Corpus, k)
	for c := range subCorpora {
		subCorpora[c] = &history.Corpus{}
	}
	execCluster := make([]int, corpus.Len())
	for i, ex := range corpus.Executions {
		c := graphCluster[ex.Graph.Name]
		execCluster[i] = c
		subCorpora[c].Executions = append(subCorpora[c].Executions, ex)
	}

	pt := &PreTrained{
		Config:      cfg,
		Clusters:    clusters,
		corpus:      corpus,
		execCluster: execCluster,
	}
	// Per-cluster encoders train concurrently: each derives its seed
	// from the cluster id and touches only its own parameters, so the
	// weights match sequential training for any worker count.
	type trained struct {
		enc    *gnn.Encoder
		losses []float64
	}
	encoders, err := parallel.Map(k, cfg.Workers, func(c int) (trained, error) {
		gcfg := cfg.GNN
		gcfg.Seed = cfg.GNN.Seed + int64(c)
		sub := subCorpora[c]
		if sub.Len() == 0 {
			// An empty cluster still needs an encoder for assignment
			// fallback; train it on the full corpus.
			sub = corpus
		}
		enc, losses, err := gnn.Pretrain(sub, gcfg, cfg.Train)
		if err != nil {
			return trained{}, fmt.Errorf("streamtune: pre-train cluster %d: %w", c, err)
		}
		return trained{enc: enc, losses: losses}, nil
	})
	if err != nil {
		return nil, err
	}
	for _, tr := range encoders {
		pt.Encoders = append(pt.Encoders, tr.enc)
		pt.Losses = append(pt.Losses, tr.losses)
	}
	pt.TrainTime = time.Since(start)
	return pt, nil
}

// AssignCluster returns the nearest cluster for a target job and its GED
// distance to that cluster's center.
func (pt *PreTrained) AssignCluster(g *dag.Graph) (int, float64) {
	return pt.Clusters.Assign(g)
}

// Encoder returns the pre-trained encoder of cluster c. On an
// artifact-backed PreTrained the encoder is constructed from its weight
// file on first use (the bytes were validated at OpenArtifacts, so this
// cannot fail late).
func (pt *PreTrained) Encoder(c int) *gnn.Encoder {
	if pt.lazy != nil {
		return pt.lazy.encoder(c)
	}
	return pt.Encoders[c]
}

// clusterExecutions returns the corpus executions belonging to cluster c
// (or the whole corpus if the cluster has none). Artifact-backed stores
// stream the cluster's group from disk on first use.
func (pt *PreTrained) clusterExecutions(c int) ([]history.Execution, error) {
	if pt.lazy != nil {
		return pt.lazy.clusterExecutions(c)
	}
	var out []history.Execution
	for i, ex := range pt.corpus.Executions {
		if pt.execCluster[i] == c {
			out = append(out, ex)
		}
	}
	if len(out) == 0 {
		return pt.corpus.Executions, nil
	}
	return out, nil
}

// allExecutions returns the whole corpus in its original order.
func (pt *PreTrained) allExecutions() ([]history.Execution, error) {
	if pt.lazy != nil {
		return pt.lazy.allExecutions()
	}
	return pt.corpus.Executions, nil
}

// ArtifactStats reports lazy-load activity on an artifact-backed
// PreTrained: how many per-cluster corpus groups were streamed in and
// how many encoders were constructed. Both are zero for an in-memory
// PreTrained — and stay zero until something actually touches a cluster,
// which is the point of the lazy store.
func (pt *PreTrained) ArtifactStats() (corpusGroupLoads, encoderBuilds int) {
	if pt.lazy == nil {
		return 0, 0
	}
	return pt.lazy.stats()
}
