package streamtune

import (
	"bytes"
	"testing"
)

// TestPreTrainWorkerInvariant asserts pre-training yields bit-identical
// encoder weights, clustering, and loss curves for every worker count:
// each cluster's encoder derives its seed from the cluster id, not from
// any shared rng consumed under scheduling.
func TestPreTrainWorkerInvariant(t *testing.T) {
	corpus := sharedCorpus(t)
	run := func(workers int) *PreTrained {
		cfg := testConfig()
		cfg.Train.Epochs = 4
		cfg.Workers = workers
		cfg.Cluster.Workers = workers
		pt, err := PreTrain(corpus, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return pt
	}
	ref := run(1)
	for _, workers := range []int{2, 8} {
		pt := run(workers)
		if len(pt.Encoders) != len(ref.Encoders) {
			t.Fatalf("workers=%d: %d encoders, want %d", workers, len(pt.Encoders), len(ref.Encoders))
		}
		for i := range ref.Clusters.Assignments {
			if pt.Clusters.Assignments[i] != ref.Clusters.Assignments[i] {
				t.Fatalf("workers=%d: assignment[%d] diverged", workers, i)
			}
		}
		for c := range ref.Encoders {
			refW, err := ref.Encoders[c].MarshalParams()
			if err != nil {
				t.Fatal(err)
			}
			gotW, err := pt.Encoders[c].MarshalParams()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(refW, gotW) {
				t.Fatalf("workers=%d: encoder %d weights diverged from sequential training", workers, c)
			}
			if len(pt.Losses[c]) != len(ref.Losses[c]) {
				t.Fatalf("workers=%d: encoder %d loss curve length diverged", workers, c)
			}
			for e := range ref.Losses[c] {
				if pt.Losses[c][e] != ref.Losses[c][e] {
					t.Fatalf("workers=%d: encoder %d epoch %d loss %v, want %v",
						workers, c, e, pt.Losses[c][e], ref.Losses[c][e])
				}
			}
		}
	}
}
