package streamtune

// Differential tests for the serving-path extraction points: the cached
// cluster warm-up, session-injected Start, and fit deduplication must
// all be bit-identical to the original single-shot paths.

import (
	"reflect"
	"testing"

	"github.com/streamtune/streamtune/internal/engine"
	"github.com/streamtune/streamtune/internal/nexmark"
)

// TestClusterWarmupMatchesNewTuner holds NewTunerWithWarmup over a
// shared ClusterWarmup dataset bit-identical to the original
// NewTunerForCluster — the invariant the service's per-cluster warm-up
// cache rests on.
func TestClusterWarmupMatchesNewTuner(t *testing.T) {
	pt := sharedPreTrained(t)
	g, err := nexmark.Build(nexmark.Q5, engine.Flink)
	if err != nil {
		t.Fatal(err)
	}
	c, _ := pt.AssignCluster(g)
	direct, err := NewTunerForCluster(pt, g, c)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := ClusterWarmup(pt, c)
	if err != nil {
		t.Fatal(err)
	}
	shared, err := NewTunerWithWarmup(pt, c, warm)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(direct.TrainingSamples(), shared.TrainingSamples()) {
		t.Fatal("warm-up dataset differs between direct and shared construction")
	}
	// The second tuner from the same cached dataset must match too (the
	// first one must not have mutated the shared samples).
	shared2, err := NewTunerWithWarmup(pt, c, warm)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(direct.TrainingSamples(), shared2.TrainingSamples()) {
		t.Fatal("shared warm-up dataset was mutated by a prior tuner build")
	}
	if _, err := ClusterWarmup(pt, len(pt.Encoders)); err == nil {
		t.Fatal("expected out-of-range cluster error")
	}
	if _, err := NewTunerWithWarmup(pt, -1, warm); err == nil {
		t.Fatal("expected out-of-range cluster error")
	}
}

// TestStartWithSessionMatchesStart drives two identical tuners to
// convergence, one through Start and one through an injected inference
// session plus Prefit (the service's register path), and demands
// identical tuning outcomes.
func TestStartWithSessionMatchesStart(t *testing.T) {
	pt := sharedPreTrained(t)

	eng1 := targetEngine(t)
	tuner1, err := NewTuner(pt, eng1.Graph())
	if err != nil {
		t.Fatal(err)
	}
	want := driveProcess(t, tuner1, eng1)

	eng2 := targetEngine(t)
	tuner2, err := NewTuner(pt, eng2.Graph())
	if err != nil {
		t.Fatal(err)
	}
	sess, err := pt.Encoder(tuner2.ClusterID()).NewInferSession(eng2.Graph())
	if err != nil {
		t.Fatal(err)
	}
	p, err := tuner2.StartWithSession(sess, eng2.Config())
	if err != nil {
		t.Fatal(err)
	}
	if p.ModelWarm() {
		t.Fatal("model reads warm before any fit")
	}
	if err := p.Prefit(); err != nil {
		t.Fatal(err)
	}
	if !p.ModelWarm() {
		t.Fatal("model still cold after Prefit")
	}
	got := driveSession(t, p, eng2)
	if !reflect.DeepEqual(got.Parallelism, want.Parallelism) {
		t.Fatalf("session-injected start diverged:\ngot  %v\nwant %v", got.Parallelism, want.Parallelism)
	}
	if got.Iterations != want.Iterations || got.Reconfigurations != want.Reconfigurations {
		t.Fatalf("loop shape diverged: got %d/%d iterations/reconfigs, want %d/%d",
			got.Iterations, got.Reconfigurations, want.Iterations, want.Reconfigurations)
	}
}

// driveSession runs an already-started process to convergence against
// the engine.
func driveSession(t *testing.T, p *Process, eng *engine.Engine) *Result {
	t.Helper()
	for {
		rec, deploy, done, err := p.Step()
		if err != nil {
			t.Fatal(err)
		}
		if done {
			break
		}
		if deploy {
			if err := eng.Deploy(rec); err != nil {
				t.Fatal(err)
			}
		}
		m, err := eng.Run()
		if err != nil {
			t.Fatal(err)
		}
		done, err = p.Observe(m)
		if err != nil {
			t.Fatal(err)
		}
		if done {
			break
		}
	}
	return p.Result()
}

// TestFitDeduplication pins the fit-skip bookkeeping: after an Observe,
// the model is already warm for the next Step; a fresh restore is cold.
func TestFitDeduplication(t *testing.T) {
	pt := sharedPreTrained(t)
	eng := targetEngine(t)
	tuner, err := NewTuner(pt, eng.Graph())
	if err != nil {
		t.Fatal(err)
	}
	p, err := tuner.Start(eng.Graph(), eng.Config())
	if err != nil {
		t.Fatal(err)
	}
	rec, _, done, err := p.Step()
	if err != nil || done {
		t.Fatalf("first step: rec=%v done=%v err=%v", rec, done, err)
	}
	if !p.ModelWarm() {
		t.Fatal("model cold right after a fitted Step")
	}
	if err := eng.Deploy(rec); err != nil {
		t.Fatal(err)
	}
	m, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	done, err = p.Observe(m)
	if err != nil {
		t.Fatal(err)
	}
	if !done && !p.ModelWarm() {
		t.Fatal("Observe left the model cold for the next Step")
	}

	st := tuner.State()
	restored, err := RestoreTuner(pt, st)
	if err != nil {
		t.Fatal(err)
	}
	if restored.modelWarm() {
		t.Fatal("restored tuner claims a warm model before any fit")
	}
}
