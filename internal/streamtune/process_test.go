package streamtune

import (
	"encoding/json"
	"reflect"
	"testing"

	"github.com/streamtune/streamtune/internal/engine"
	"github.com/streamtune/streamtune/internal/nexmark"
)

// targetEngine builds a fresh engine for the Q5 target at a fixed
// offered rate; every caller sees an identical simulation.
func targetEngine(t *testing.T) *engine.Engine {
	t.Helper()
	g, err := nexmark.Build(nexmark.Q5, engine.Flink)
	if err != nil {
		t.Fatal(err)
	}
	g.ScaleSourceRates(6)
	cfg := engine.DefaultConfig(engine.Flink)
	cfg.MeasureTicks = 40
	eng, err := engine.New(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

// driveProcess runs one tuning process step by step against the engine,
// exactly as the tuning service drives remote jobs.
func driveProcess(t *testing.T, tuner *Tuner, eng *engine.Engine) *Result {
	t.Helper()
	p, err := tuner.Start(eng.Graph(), eng.Config())
	if err != nil {
		t.Fatal(err)
	}
	for {
		rec, deploy, done, err := p.Step()
		if err != nil {
			t.Fatal(err)
		}
		if done {
			break
		}
		if deploy {
			if err := eng.Deploy(rec); err != nil {
				t.Fatal(err)
			}
			eng.Stabilize(tuner.cfg.StabilizeWait)
		}
		m, err := eng.Run()
		if err != nil {
			t.Fatal(err)
		}
		done, err = p.Observe(m)
		if err != nil {
			t.Fatal(err)
		}
		if done {
			break
		}
	}
	return p.Result()
}

// TestProcessMatchesTune asserts the step-wise Process produces exactly
// the recommendations and bookkeeping of the monolithic Tune loop.
func TestProcessMatchesTune(t *testing.T) {
	pt := sharedPreTrained(t)

	tunerA, err := NewTuner(pt, targetEngine(t).Graph())
	if err != nil {
		t.Fatal(err)
	}
	want, err := tunerA.Tune(targetEngine(t))
	if err != nil {
		t.Fatal(err)
	}

	tunerB, err := NewTuner(pt, targetEngine(t).Graph())
	if err != nil {
		t.Fatal(err)
	}
	got := driveProcess(t, tunerB, targetEngine(t))

	if !reflect.DeepEqual(got.Parallelism, want.Parallelism) {
		t.Errorf("recommendation diverged:\n got %v\nwant %v", got.Parallelism, want.Parallelism)
	}
	if got.Reconfigurations != want.Reconfigurations {
		t.Errorf("reconfigurations = %d, want %d", got.Reconfigurations, want.Reconfigurations)
	}
	if got.Iterations != want.Iterations {
		t.Errorf("iterations = %d, want %d", got.Iterations, want.Iterations)
	}
	if got.BackpressureEvents != want.BackpressureEvents {
		t.Errorf("backpressure events = %d, want %d", got.BackpressureEvents, want.BackpressureEvents)
	}
	if !reflect.DeepEqual(got.CPUTrace, want.CPUTrace) {
		t.Errorf("cpu trace diverged:\n got %v\nwant %v", got.CPUTrace, want.CPUTrace)
	}
	if len(tunerB.train) != len(tunerA.train) {
		t.Errorf("training set size = %d, want %d", len(tunerB.train), len(tunerA.train))
	}
}

// TestRestoreRejectsSemanticGarbage pins the validation layer behind
// the envelope checksum: a checksum can only prove the bytes are the
// ones the writer produced, so checksum-valid but semantically
// impossible state (a writer bug, an incompatible version) must be
// rejected at restore with a diagnostic instead of resumed into a
// process that mispredicts silently.
func TestRestoreRejectsSemanticGarbage(t *testing.T) {
	pt := sharedPreTrained(t)
	eng := targetEngine(t)
	tuner, err := NewTuner(pt, eng.Graph())
	if err != nil {
		t.Fatal(err)
	}
	p, err := tuner.Start(eng.Graph(), eng.Config())
	if err != nil {
		t.Fatal(err)
	}
	pmax := pt.Config.GNN.PMax
	anOp := eng.Graph().OperatorAt(0).ID

	tunerCases := map[string]func(*TunerState){
		"zero parallelism":  func(st *TunerState) { st.Train[0].Parallelism = 0 },
		"parallelism > max": func(st *TunerState) { st.Train[0].Parallelism = pmax + 1 },
		"bad label":         func(st *TunerState) { st.Train[0].Label = 7 },
		"empty embedding":   func(st *TunerState) { st.Train[0].Embedding = nil },
		"ragged embeddings": func(st *TunerState) { st.Train[1].Embedding = st.Train[1].Embedding[:1] },
	}
	for name, mutate := range tunerCases {
		st := tuner.State()
		if len(st.Train) < 2 {
			t.Fatalf("%s: want >= 2 warm-up samples to mutate, got %d", name, len(st.Train))
		}
		mutate(st)
		if _, err := RestoreTuner(pt, st); err == nil {
			t.Errorf("RestoreTuner accepted a snapshot with %s", name)
		}
	}

	processCases := map[string]func(*ProcessState){
		"negative iterations": func(st *ProcessState) { st.Iterations = -1 },
		"done without result": func(st *ProcessState) { st.Done, st.Result = true, nil },
		"ghost operator":      func(st *ProcessState) { st.Current = map[string]int{"no-such-op": 1} },
		"zero assignment":     func(st *ProcessState) { st.Current = map[string]int{anOp: 0} },
		"lower bound > max+1": func(st *ProcessState) { st.LowerBounds = map[string]int{anOp: pmax + 2} },
	}
	for name, mutate := range processCases {
		st := p.State()
		mutate(st)
		if _, err := tuner.Resume(st); err == nil {
			t.Errorf("Resume accepted a snapshot with %s", name)
		}
	}

	// The unmutated state still restores and resumes: validation rejects
	// garbage, never the real thing.
	restored, err := RestoreTuner(pt, tuner.State())
	if err != nil {
		t.Fatalf("RestoreTuner rejected a valid snapshot: %v", err)
	}
	if _, err := restored.Resume(p.State()); err != nil {
		t.Fatalf("Resume rejected a valid snapshot: %v", err)
	}
}

// TestProcessSnapshotResume snapshots a tuner and its in-flight process
// after every observe round, restores both through a JSON round-trip,
// and asserts the resumed run finishes bit-identically to the
// uninterrupted one.
func TestProcessSnapshotResume(t *testing.T) {
	pt := sharedPreTrained(t)

	ref, err := NewTuner(pt, targetEngine(t).Graph())
	if err != nil {
		t.Fatal(err)
	}
	want := driveProcess(t, ref, targetEngine(t))

	// Interrupted run: stop after `cut` observe rounds, snapshot, restore
	// from JSON, and finish on the restored state. The engine is owned by
	// the client in the service architecture, so it survives the restart.
	for cut := 1; cut <= 2; cut++ {
		tuner, err := NewTuner(pt, targetEngine(t).Graph())
		if err != nil {
			t.Fatal(err)
		}
		eng := targetEngine(t)
		p, err := tuner.Start(eng.Graph(), eng.Config())
		if err != nil {
			t.Fatal(err)
		}
		finished := false
		for round := 0; round < cut; round++ {
			rec, deploy, done, err := p.Step()
			if err != nil {
				t.Fatal(err)
			}
			if done {
				finished = true
				break
			}
			if deploy {
				if err := eng.Deploy(rec); err != nil {
					t.Fatal(err)
				}
				eng.Stabilize(tuner.cfg.StabilizeWait)
			}
			m, err := eng.Run()
			if err != nil {
				t.Fatal(err)
			}
			if done, err = p.Observe(m); err != nil {
				t.Fatal(err)
			} else if done {
				finished = true
				break
			}
		}

		// Snapshot both layers through JSON, as the service does.
		tjson, err := json.Marshal(tuner.State())
		if err != nil {
			t.Fatal(err)
		}
		pjson, err := json.Marshal(p.State())
		if err != nil {
			t.Fatal(err)
		}
		var tst TunerState
		if err := json.Unmarshal(tjson, &tst); err != nil {
			t.Fatal(err)
		}
		var pst ProcessState
		if err := json.Unmarshal(pjson, &pst); err != nil {
			t.Fatal(err)
		}
		restored, err := RestoreTuner(pt, &tst)
		if err != nil {
			t.Fatal(err)
		}
		rp, err := restored.Resume(&pst)
		if err != nil {
			t.Fatal(err)
		}
		if rp.Done() != finished {
			t.Fatalf("cut=%d: resumed done=%v, want %v", cut, rp.Done(), finished)
		}
		for !rp.Done() {
			rec, deploy, done, err := rp.Step()
			if err != nil {
				t.Fatal(err)
			}
			if done {
				break
			}
			if deploy {
				if err := eng.Deploy(rec); err != nil {
					t.Fatal(err)
				}
				eng.Stabilize(restored.cfg.StabilizeWait)
			}
			m, err := eng.Run()
			if err != nil {
				t.Fatal(err)
			}
			if done, err = rp.Observe(m); err != nil {
				t.Fatal(err)
			} else if done {
				break
			}
		}
		got := rp.Result()
		if !reflect.DeepEqual(got.Parallelism, want.Parallelism) {
			t.Errorf("cut=%d: resumed recommendation diverged:\n got %v\nwant %v", cut, got.Parallelism, want.Parallelism)
		}
		if got.Iterations != want.Iterations {
			t.Errorf("cut=%d: resumed iterations = %d, want %d", cut, got.Iterations, want.Iterations)
		}
		if got.Reconfigurations != want.Reconfigurations {
			t.Errorf("cut=%d: resumed reconfigurations = %d, want %d", cut, got.Reconfigurations, want.Reconfigurations)
		}
	}
}
