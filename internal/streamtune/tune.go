package streamtune

import (
	"fmt"
	"time"

	"github.com/streamtune/streamtune/internal/dag"
	"github.com/streamtune/streamtune/internal/engine"
	"github.com/streamtune/streamtune/internal/gnn"
	"github.com/streamtune/streamtune/internal/history"
	"github.com/streamtune/streamtune/internal/mono"
)

// System is the engine surface the online tuner drives. *engine.Engine
// satisfies it.
type System interface {
	Graph() *dag.Graph
	Config() engine.Config
	Deploy(map[string]int) error
	Run() (*engine.JobMetrics, error)
	Stabilize(d time.Duration)
}

// Tuner performs online fine-tuning for one target streaming job
// (Algorithm 2). It retains the fine-tuning dataset T across calls to
// Tune, so successive source-rate changes benefit from accumulated
// feedback.
type Tuner struct {
	cfg       Config
	enc       *gnn.Encoder
	clusterID int
	model     mono.Model
	train     []mono.Sample

	// Fit deduplication: every mutation of train bumps trainVersion;
	// fitVersion records the version the model was last fitted against.
	// All prediction models refit from scratch as a deterministic pure
	// function of (training set, seed), so skipping a refit when the set
	// is unchanged is bit-identical to refitting — it only removes the
	// dominant redundant cost from the serving path (each tuning round
	// used to fit twice: Observe's convergence check and the next Step).
	trainVersion uint64
	fitVersion   uint64
	fitted       bool

	// instr holds observability hooks; the zero value (nil funcs) is
	// fully inert. Hooks only count events — they never feed back into
	// tuning state, so an instrumented run is bit-identical to a bare
	// one.
	instr Instruments
}

// Instruments are optional observability hooks a serving layer attaches
// to count tuning-core events. Nil funcs are skipped.
type Instruments struct {
	// OnFit fires after each real prediction-model fit (deduplicated
	// fits that skip do not fire).
	OnFit func()
	// OnDistill fires after each head-distillation pass over the
	// parallelism grid.
	OnDistill func()
}

// SetInstruments attaches observability hooks. Call before the tuner
// starts serving; not synchronized against concurrent tuning.
func (t *Tuner) SetInstruments(in Instruments) { t.instr = in }

// markDirty records a training-set mutation, invalidating the fitted
// model.
func (t *Tuner) markDirty() { t.trainVersion++ }

// fitIfNeeded refits the prediction model only when the training set
// changed since the last fit. Deterministic from-scratch fits make the
// skip bit-identical to an unconditional refit.
func (t *Tuner) fitIfNeeded() error {
	if t.fitted && t.fitVersion == t.trainVersion {
		return nil
	}
	if err := t.model.Fit(t.train); err != nil {
		return fmt.Errorf("streamtune: fit %s: %w", t.model.Name(), err)
	}
	t.fitted = true
	t.fitVersion = t.trainVersion
	if t.instr.OnFit != nil {
		t.instr.OnFit()
	}
	return nil
}

// modelWarm reports whether the next fitIfNeeded will be a no-op.
func (t *Tuner) modelWarm() bool { return t.fitted && t.fitVersion == t.trainVersion }

// NewTuner assigns the target job to its nearest cluster, retrieves the
// cluster's pre-trained encoder, and constructs the warm-up fine-tuning
// dataset from the cluster's historical executions (Algorithm 2, lines
// 1-3).
func NewTuner(pt *PreTrained, g *dag.Graph) (*Tuner, error) {
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("streamtune: target job: %w", err)
	}
	c, _ := pt.AssignCluster(g)
	return NewTunerForCluster(pt, g, c)
}

// NewTunerForCluster is NewTuner with the cluster assignment already
// decided — the tuning service resolves assignments through its shared
// fingerprint-keyed GED cache and hands the result in. The assignment
// must come from the same clustering (distances are pure functions of
// the structures, so a cached assignment is always identical to
// pt.AssignCluster's). The graph must already be validated; both
// callers (NewTuner, service admission) have done so.
func NewTunerForCluster(pt *PreTrained, g *dag.Graph, c int) (*Tuner, error) {
	warm, err := ClusterWarmup(pt, c)
	if err != nil {
		return nil, err
	}
	return NewTunerWithWarmup(pt, c, warm)
}

// ClusterWarmup constructs the warm-up fine-tuning dataset of cluster c
// (Algorithm 2, lines 1-3): labeled embeddings from sampled cluster
// history, widened to the whole corpus when a class is missing, plus
// the head-distilled parallelism grid over up to ten cluster graphs.
// The dataset is a pure deterministic function of (pt, c) — the target
// job never enters its construction — so the tuning service caches one
// per cluster and shares it across every registration.
func ClusterWarmup(pt *PreTrained, c int) ([]mono.Sample, error) {
	if c < 0 || c >= len(pt.Encoders) {
		return nil, fmt.Errorf("streamtune: cluster %d outside [0, %d)", c, len(pt.Encoders))
	}
	t := &Tuner{cfg: pt.Config, enc: pt.Encoder(c), clusterID: c}

	// Warm-up dataset: embeddings + labels from sampled cluster history.
	execs, err := pt.clusterExecutions(c)
	if err != nil {
		return nil, err
	}
	n := pt.Config.WarmupSamples
	if n <= 0 || n > len(execs) {
		n = len(execs)
	}
	if err := t.absorb(execs[:n]); err != nil {
		return nil, err
	}
	// A cluster of rarely-bottlenecked (or always-bottlenecked) jobs can
	// yield a single-class warm-up set, which no classifier can fit.
	// Widen to the rest of the cluster, then to the whole corpus.
	if !t.bothClasses() {
		if err := t.absorb(execs[n:]); err != nil {
			return nil, err
		}
	}
	if !t.bothClasses() {
		all, err := pt.allExecutions()
		if err != nil {
			return nil, err
		}
		if err := t.absorb(all); err != nil {
			return nil, err
		}
	}
	// Distill the pre-trained head's knowledge into T: the head saw
	// parallelism through FUSE during pre-training; querying it across a
	// parallelism grid hands the fine-tuned model a dense view of each
	// operator's bottleneck boundary (Algorithm 2, line 3:
	// ConstructWarmUpDataset(enc)).
	seen := make(map[string]bool)
	distilled := 0
	for _, ex := range execs {
		if seen[ex.Graph.Name] || distilled >= 10 {
			continue
		}
		seen[ex.Graph.Name] = true
		distilled++
		sess, err := t.enc.NewInferSession(ex.Graph)
		if err != nil {
			return nil, fmt.Errorf("streamtune: distill embed %s: %w", ex.Graph.Name, err)
		}
		if err := t.distill(sess, ex.Graph); err != nil {
			return nil, err
		}
	}
	if !t.bothClasses() {
		return nil, fmt.Errorf("streamtune: corpus lacks both bottleneck classes for warm-up")
	}
	return t.train, nil
}

// NewTunerWithWarmup builds a tuner for cluster c over an
// already-constructed warm-up dataset (from ClusterWarmup, possibly
// cached and shared — the samples are copied; embeddings are shared
// read-only). Equivalent to NewTunerForCluster, bit for bit, because
// the warm-up set is deterministic in (pt, c).
func NewTunerWithWarmup(pt *PreTrained, c int, warm []mono.Sample) (*Tuner, error) {
	if c < 0 || c >= len(pt.Encoders) {
		return nil, fmt.Errorf("streamtune: cluster %d outside [0, %d)", c, len(pt.Encoders))
	}
	model, err := mono.New(pt.Config.Model, pt.Config.GNN.PMax, pt.Config.ModelSeed)
	if err != nil {
		return nil, err
	}
	t := &Tuner{cfg: pt.Config, enc: pt.Encoder(c), clusterID: c, model: model,
		train: append([]mono.Sample(nil), warm...)}
	t.markDirty()
	return t, nil
}

// parallelismGrid is the Fibonacci-spaced grid used for distillation.
var parallelismGrid = []int{1, 2, 3, 5, 8, 13, 21, 34, 55, 89}

// distill queries the pre-trained head across the parallelism grid and
// appends its hard labels to T. With FUSE applied after message passing,
// each operator's head prediction depends only on its own embedding and
// parallelism, so the whole grid runs as one batched FUSE + head replay
// over the session's cached message-passing states (one block per grid
// point) — one full encoder pass plus one grid replay total.
func (t *Tuner) distill(sess *gnn.InferSession, g *dag.Graph) error {
	embs := sess.Embeddings()
	pmax := t.cfg.GNN.PMax
	grid := parallelismGrid
	for len(grid) > 0 && grid[len(grid)-1] > pmax {
		grid = grid[:len(grid)-1]
	}
	pars := make([]map[string]int, len(grid))
	for pi, p := range grid {
		par := make(map[string]int, g.NumOperators())
		for _, op := range g.Operators() {
			par[op.ID] = p
		}
		pars[pi] = par
	}
	probsByPoint, err := sess.ProbsBatch(pars)
	if err != nil {
		return fmt.Errorf("streamtune: distill predict %s: %w", g.Name, err)
	}
	for pi, p := range grid {
		for i, prob := range probsByPoint[pi] {
			label := 0
			if prob >= 0.5 {
				label = 1
			}
			t.train = append(t.train, mono.Sample{Embedding: embs[i], Parallelism: p, Label: label})
		}
	}
	t.markDirty()
	if t.instr.OnDistill != nil {
		t.instr.OnDistill()
	}
	return nil
}

// absorb appends the labeled operators of the executions to T.
func (t *Tuner) absorb(execs []history.Execution) error {
	defer t.markDirty()
	for _, ex := range execs {
		embs, err := t.enc.Embeddings(ex.Graph)
		if err != nil {
			return fmt.Errorf("streamtune: warm-up embed %s: %w", ex.Graph.Name, err)
		}
		for i, op := range ex.Graph.Operators() {
			if ex.Labels[i] < 0 {
				continue
			}
			p := ex.Parallelism[op.ID]
			t.train = append(t.train, mono.Sample{
				Embedding:   embs[i],
				Parallelism: p,
				Label:       ex.Labels[i],
			})
			// Monotonicity-implied augmentation: a bottleneck at p is a
			// bottleneck at any lower degree; a non-bottleneck at p stays
			// one at any higher degree. This counteracts the natural
			// sparsity of positive labels in histories (Algorithm 1 only
			// labels the backpressure frontier).
			if ex.Labels[i] == 1 {
				if p > 1 {
					t.train = append(t.train, mono.Sample{Embedding: embs[i], Parallelism: p - 1, Label: 1})
				}
				if half := p / 2; half >= 1 && half != p-1 {
					t.train = append(t.train, mono.Sample{Embedding: embs[i], Parallelism: half, Label: 1})
				}
			}
		}
	}
	return nil
}

// trim caps |T| at MaxTrainingSet, dropping oldest samples first but
// never evicting the last representatives of a class.
func (t *Tuner) trim() {
	max := t.cfg.MaxTrainingSet
	if max <= 0 || len(t.train) <= max {
		return
	}
	defer t.markDirty()
	kept := append([]mono.Sample(nil), t.train[len(t.train)-max:]...)
	var have0, have1 bool
	for _, s := range kept {
		if s.Label == 0 {
			have0 = true
		} else {
			have1 = true
		}
	}
	if !have0 || !have1 {
		// Rescue the newest samples of the missing class from the
		// dropped prefix.
		missing := 0
		if !have1 {
			missing = 1
		}
		for i := len(t.train) - max - 1; i >= 0; i-- {
			if t.train[i].Label == missing {
				kept = append(kept, t.train[i])
				break
			}
		}
	}
	t.train = kept
}

// bothClasses reports whether T holds at least one sample per class.
func (t *Tuner) bothClasses() bool {
	var have0, have1 bool
	for _, s := range t.train {
		if s.Label == 0 {
			have0 = true
		} else {
			have1 = true
		}
		if have0 && have1 {
			return true
		}
	}
	return false
}

// ClusterID reports the cluster the target job was assigned to.
func (t *Tuner) ClusterID() int { return t.clusterID }

// TrainingSetSize reports the current size of the fine-tuning dataset T.
func (t *Tuner) TrainingSetSize() int { return len(t.train) }

// Result summarizes one online tuning process.
type Result struct {
	// Parallelism is the final per-operator recommendation.
	Parallelism map[string]int
	// Reconfigurations counts deployments performed during this tuning
	// process.
	Reconfigurations int
	// BackpressureEvents counts measurement windows with job-level
	// backpressure during tuning.
	BackpressureEvents int
	// Iterations counts fit/recommend/deploy rounds.
	Iterations int
	// CPUTrace holds the cluster CPU utilization after each deployment.
	CPUTrace []float64
	// RecommendTime is the cumulative model fitting + inference
	// wall-clock time (excluding simulated engine time).
	RecommendTime time.Duration
	// TuningTime is the simulated wall-clock cost: stabilization waits
	// plus measurement windows.
	TuningTime time.Duration
	// Final holds the last measurement.
	Final *engine.JobMetrics
}

// TotalParallelism sums the final assignment.
func (r *Result) TotalParallelism() int {
	total := 0
	for _, p := range r.Parallelism {
		total += p
	}
	return total
}

// Tune executes Algorithm 2 against the system: fit the monotonic model
// to T, recommend the minimum non-bottleneck parallelism per operator in
// topological order, redeploy, harvest bottleneck labels, and iterate
// until backpressure-free and stable. It is a thin driver over the
// step-wise Process, so results are identical to driving Start / Step /
// Observe by hand (as the tuning service does).
func (t *Tuner) Tune(sys System) (*Result, error) {
	p, err := t.Start(sys.Graph(), sys.Config())
	if err != nil {
		return nil, err
	}
	for {
		rec, deploy, done, err := p.Step()
		if err != nil {
			return nil, err
		}
		if done {
			break
		}
		if deploy {
			if err := sys.Deploy(rec); err != nil {
				return nil, fmt.Errorf("streamtune: deploy: %w", err)
			}
			sys.Stabilize(t.cfg.StabilizeWait)
		}
		m, err := sys.Run()
		if err != nil {
			return nil, fmt.Errorf("streamtune: measure: %w", err)
		}
		done, err = p.Observe(m)
		if err != nil {
			return nil, err
		}
		if done {
			break
		}
	}
	return p.Result(), nil
}

// equalRecommendation refits (when the training set changed) and checks
// whether the recommendation is already at its fixed point, avoiding a
// wasted extra loop round. A fit failure reads as not-converged; the
// retry in Observe's eager fit surfaces the error.
func equalRecommendation(t *Tuner, embs [][]float64, topo []int, g *dag.Graph, cfg engine.Config, cur, lower map[string]int) bool {
	if err := t.fitIfNeeded(); err != nil {
		return false
	}
	rec := make(map[string]int, len(cur))
	for _, i := range topo {
		op := g.OperatorAt(i)
		p := mono.MinNonBottleneck(t.model, embs[i], cfg.MaxParallelism, t.cfg.Threshold)
		if lb := lower[op.ID]; p < lb {
			p = lb
		}
		rec[op.ID] = p
	}
	return withinBand(rec, cur, t.cfg.StabilityBand)
}

// withinBand reports whether every operator's recommendation is within
// band of the current deployment.
func withinBand(rec, cur map[string]int, band int) bool {
	if band < 0 {
		band = 0
	}
	for k, v := range rec {
		d := v - cur[k]
		if d < 0 {
			d = -d
		}
		if d > band {
			return false
		}
	}
	return len(rec) == len(cur)
}

func equal(a, b map[string]int) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// TrainingSamples returns a copy of the fine-tuning dataset T, for
// diagnostics and tests.
func (t *Tuner) TrainingSamples() []mono.Sample {
	return append([]mono.Sample(nil), t.train...)
}
