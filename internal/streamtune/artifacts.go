package streamtune

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"

	"github.com/streamtune/streamtune/internal/cluster"
	"github.com/streamtune/streamtune/internal/gnn"
	"github.com/streamtune/streamtune/internal/history"
)

// The lazy artifact store replaces the monolithic in-memory PreTrained
// hand-off with an indexed directory:
//
//	manifest.json   config, clustering, losses, corpus index, file list
//	corpus.jsonl    one execution per line, grouped contiguously by cluster
//	encoder-NNN.json  per-cluster encoder weights (nn.MarshalParams)
//
// OpenArtifacts parses only the manifest and the (small) encoder weight
// files' raw bytes; per-cluster executions stream in on first use via the
// manifest's byte-offset index, and encoders are constructed on first
// Encoder(c). At admission scale the corpus dominates the artifact size,
// so a service that only ever sees jobs from a few clusters never pays
// for the rest.

const (
	artifactVersion  = 1
	manifestFileName = "manifest.json"
	corpusFileName   = "corpus.jsonl"
)

// artifactGroup indexes one cluster's contiguous run of corpus.jsonl.
type artifactGroup struct {
	Cluster int   `json:"cluster"`
	Offset  int64 `json:"offset"`
	Bytes   int64 `json:"bytes"`
	Count   int   `json:"count"`
}

// artifactManifest is the eagerly-parsed part of the store.
type artifactManifest struct {
	Version    int             `json:"version"`
	Config     Config          `json:"config"`
	Clusters   *cluster.Result `json:"clusters"`
	Losses     [][]float64     `json:"losses"`
	TrainTime  time.Duration   `json:"train_time_ns"`
	Executions int             `json:"executions"`
	Groups     []artifactGroup `json:"corpus_groups"`
	Encoders   []string        `json:"encoder_files"`
}

// artifactExec is one corpus.jsonl line. Index is the execution's
// position in the original corpus, so the full-corpus order can be
// reconstructed exactly from the cluster-grouped file.
type artifactExec struct {
	Index int               `json:"index"`
	Exec  history.Execution `json:"execution"`
}

func encoderFileName(c int) string { return fmt.Sprintf("encoder-%03d.json", c) }

// SaveArtifacts writes the pre-training artifact directory. The
// PreTrained must be an in-memory one (from PreTrain); re-saving a
// lazily-opened store is not supported.
func SaveArtifacts(dir string, pt *PreTrained) error {
	if pt.lazy != nil {
		return fmt.Errorf("streamtune: cannot re-save an artifact-backed PreTrained")
	}
	if pt.corpus == nil {
		return fmt.Errorf("streamtune: PreTrained has no corpus to save")
	}
	k := len(pt.Clusters.Centers)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("streamtune: artifact dir: %w", err)
	}

	// Corpus: one execution per line, grouped contiguously by cluster so
	// one seek + one bounded read loads a cluster's warm-up history.
	f, err := os.Create(filepath.Join(dir, corpusFileName))
	if err != nil {
		return fmt.Errorf("streamtune: write corpus: %w", err)
	}
	defer f.Close()
	w := bufio.NewWriter(f)
	var offset int64
	groups := make([]artifactGroup, 0, k)
	for c := 0; c < k; c++ {
		g := artifactGroup{Cluster: c, Offset: offset}
		for i, ex := range pt.corpus.Executions {
			if pt.execCluster[i] != c {
				continue
			}
			line, err := json.Marshal(artifactExec{Index: i, Exec: ex})
			if err != nil {
				return fmt.Errorf("streamtune: encode execution %d: %w", i, err)
			}
			line = append(line, '\n')
			if _, err := w.Write(line); err != nil {
				return fmt.Errorf("streamtune: write corpus: %w", err)
			}
			offset += int64(len(line))
			g.Count++
		}
		g.Bytes = offset - g.Offset
		groups = append(groups, g)
	}
	if err := w.Flush(); err != nil {
		return fmt.Errorf("streamtune: write corpus: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("streamtune: write corpus: %w", err)
	}

	encFiles := make([]string, k)
	for c := 0; c < k; c++ {
		data, err := pt.Encoder(c).MarshalParams()
		if err != nil {
			return fmt.Errorf("streamtune: marshal encoder %d: %w", c, err)
		}
		encFiles[c] = encoderFileName(c)
		if err := os.WriteFile(filepath.Join(dir, encFiles[c]), data, 0o644); err != nil {
			return fmt.Errorf("streamtune: write encoder %d: %w", c, err)
		}
	}

	// Manifest last: a directory with a manifest is a complete store.
	man := artifactManifest{
		Version:    artifactVersion,
		Config:     pt.Config,
		Clusters:   pt.Clusters,
		Losses:     pt.Losses,
		TrainTime:  pt.TrainTime,
		Executions: pt.corpus.Len(),
		Groups:     groups,
		Encoders:   encFiles,
	}
	data, err := json.MarshalIndent(man, "", " ")
	if err != nil {
		return fmt.Errorf("streamtune: encode manifest: %w", err)
	}
	if err := os.WriteFile(filepath.Join(dir, manifestFileName), data, 0o644); err != nil {
		return fmt.Errorf("streamtune: write manifest: %w", err)
	}
	return nil
}

// artifactStore backs a lazily-opened PreTrained. Encoder weight bytes
// are read and shape-validated at open (they are small); encoders are
// constructed and corpus groups decoded only on first use.
type artifactStore struct {
	dir      string
	man      artifactManifest
	encBytes [][]byte

	mu         sync.Mutex
	encs       []*gnn.Encoder
	groups     map[int][]artifactExec
	all        []history.Execution
	groupLoads int
	encBuilds  int
}

// OpenArtifacts opens an artifact directory written by SaveArtifacts.
// Only the manifest and encoder weight bytes load eagerly; every input
// that could fail later (file presence, sizes, weight shapes) is
// validated here so the PreTrained accessors keep their non-error
// signatures.
func OpenArtifacts(dir string) (*PreTrained, error) {
	data, err := os.ReadFile(filepath.Join(dir, manifestFileName))
	if err != nil {
		return nil, fmt.Errorf("streamtune: open artifacts: %w", err)
	}
	var man artifactManifest
	if err := json.Unmarshal(data, &man); err != nil {
		return nil, fmt.Errorf("streamtune: decode manifest: %w", err)
	}
	if man.Version != artifactVersion {
		return nil, fmt.Errorf("streamtune: artifact version %d, want %d", man.Version, artifactVersion)
	}
	if man.Clusters == nil || len(man.Clusters.Centers) == 0 {
		return nil, fmt.Errorf("streamtune: manifest has no clustering")
	}
	k := len(man.Clusters.Centers)
	if len(man.Encoders) != k {
		return nil, fmt.Errorf("streamtune: %d encoder files for %d clusters", len(man.Encoders), k)
	}
	if len(man.Groups) != k {
		return nil, fmt.Errorf("streamtune: %d corpus groups for %d clusters", len(man.Groups), k)
	}
	total := 0
	for c, g := range man.Groups {
		if g.Cluster != c || g.Offset < 0 || g.Bytes < 0 || g.Count < 0 {
			return nil, fmt.Errorf("streamtune: corpus group %d malformed: %+v", c, g)
		}
		total += g.Count
	}
	if total != man.Executions {
		return nil, fmt.Errorf("streamtune: corpus groups hold %d executions, manifest says %d", total, man.Executions)
	}
	if man.Config.GNN.Hidden <= 0 || man.Config.GNN.Layers <= 0 {
		return nil, fmt.Errorf("streamtune: manifest GNN config invalid: %+v", man.Config.GNN)
	}
	fi, err := os.Stat(filepath.Join(dir, corpusFileName))
	if err != nil {
		return nil, fmt.Errorf("streamtune: open artifacts: %w", err)
	}
	for c, g := range man.Groups {
		if g.Offset+g.Bytes > fi.Size() {
			return nil, fmt.Errorf("streamtune: corpus group %d extends past %s (%d bytes)", c, corpusFileName, fi.Size())
		}
	}

	// Encoder bytes: read now, shape-check against a throwaway encoder of
	// the same configuration, construct lazily. After this check a later
	// UnmarshalParams of the same bytes cannot fail.
	template := gnn.NewEncoder(man.Config.GNN)
	encBytes := make([][]byte, k)
	for c, name := range man.Encoders {
		b, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return nil, fmt.Errorf("streamtune: open artifacts: %w", err)
		}
		if err := template.UnmarshalParams(b); err != nil {
			return nil, fmt.Errorf("streamtune: encoder %d (%s): %w", c, name, err)
		}
		encBytes[c] = b
	}

	st := &artifactStore{
		dir:      dir,
		man:      man,
		encBytes: encBytes,
		encs:     make([]*gnn.Encoder, k),
		groups:   make(map[int][]artifactExec, k),
	}
	return &PreTrained{
		Config:   man.Config,
		Clusters: man.Clusters,
		// Placeholders keep len(pt.Encoders) == k for range checks; reads
		// go through Encoder(c), which routes to the store.
		Encoders:  make([]*gnn.Encoder, k),
		Losses:    man.Losses,
		TrainTime: man.TrainTime,
		lazy:      st,
	}, nil
}

// encoder constructs (once) and returns cluster c's encoder.
func (s *artifactStore) encoder(c int) *gnn.Encoder {
	s.mu.Lock()
	defer s.mu.Unlock()
	if e := s.encs[c]; e != nil {
		return e
	}
	gcfg := s.man.Config.GNN
	gcfg.Seed += int64(c) // mirrors PreTrain's per-cluster derivation
	e := gnn.NewEncoder(gcfg)
	if err := e.UnmarshalParams(s.encBytes[c]); err != nil {
		// Unreachable: the same bytes shape-checked at OpenArtifacts.
		panic(fmt.Sprintf("streamtune: artifact encoder %d: %v", c, err))
	}
	s.encs[c] = e
	s.encBuilds++
	return e
}

// groupLocked loads (once) cluster c's corpus lines. Caller holds mu.
func (s *artifactStore) groupLocked(c int) ([]artifactExec, error) {
	if g, ok := s.groups[c]; ok {
		return g, nil
	}
	gi := s.man.Groups[c]
	out := make([]artifactExec, 0, gi.Count)
	if gi.Count > 0 {
		f, err := os.Open(filepath.Join(s.dir, corpusFileName))
		if err != nil {
			return nil, fmt.Errorf("streamtune: load cluster %d corpus: %w", c, err)
		}
		defer f.Close()
		if _, err := f.Seek(gi.Offset, io.SeekStart); err != nil {
			return nil, fmt.Errorf("streamtune: load cluster %d corpus: %w", c, err)
		}
		dec := json.NewDecoder(io.LimitReader(bufio.NewReader(f), gi.Bytes))
		for i := 0; i < gi.Count; i++ {
			var ae artifactExec
			if err := dec.Decode(&ae); err != nil {
				return nil, fmt.Errorf("streamtune: decode cluster %d execution %d: %w", c, i, err)
			}
			if ae.Index < 0 || ae.Index >= s.man.Executions {
				return nil, fmt.Errorf("streamtune: cluster %d execution %d: index %d outside corpus of %d",
					c, i, ae.Index, s.man.Executions)
			}
			out = append(out, ae)
		}
	}
	s.groups[c] = out
	s.groupLoads++
	return out, nil
}

// clusterExecutions mirrors the in-memory PreTrained semantics: cluster
// c's executions in corpus order, or the whole corpus when the cluster
// has none.
func (s *artifactStore) clusterExecutions(c int) ([]history.Execution, error) {
	s.mu.Lock()
	g, err := s.groupLocked(c)
	s.mu.Unlock()
	if err != nil {
		return nil, err
	}
	if len(g) == 0 {
		return s.allExecutions()
	}
	out := make([]history.Execution, len(g))
	for i, ae := range g {
		out[i] = ae.Exec
	}
	return out, nil
}

// allExecutions materializes the full corpus in its original order.
func (s *artifactStore) allExecutions() ([]history.Execution, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.all != nil {
		return s.all, nil
	}
	all := make([]history.Execution, s.man.Executions)
	filled := make([]bool, s.man.Executions)
	for c := range s.man.Groups {
		g, err := s.groupLocked(c)
		if err != nil {
			return nil, err
		}
		for _, ae := range g {
			if filled[ae.Index] {
				return nil, fmt.Errorf("streamtune: corpus index %d appears twice", ae.Index)
			}
			filled[ae.Index] = true
			all[ae.Index] = ae.Exec
		}
	}
	for i, ok := range filled {
		if !ok {
			return nil, fmt.Errorf("streamtune: corpus index %d missing from every group", i)
		}
	}
	s.all = all
	return all, nil
}

// stats reports lazy-load activity.
func (s *artifactStore) stats() (groupLoads, encBuilds int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.groupLoads, s.encBuilds
}
