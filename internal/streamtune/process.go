package streamtune

import (
	"fmt"
	"time"

	"github.com/streamtune/streamtune/internal/bottleneck"
	"github.com/streamtune/streamtune/internal/dag"
	"github.com/streamtune/streamtune/internal/engine"
	"github.com/streamtune/streamtune/internal/gnn"
	"github.com/streamtune/streamtune/internal/mono"
)

// Process is one online tuning process (Algorithm 2) decomposed into
// explicit recommend/observe steps, so a caller that owns the engine —
// a remote client of the tuning service, or Tune itself — can interleave
// deployments and measurements with the model updates. The sequence
//
//	p, _ := t.Start(g, cfg)
//	for {
//		rec, deploy, done, _ := p.Step()
//		if done { break }
//		if deploy { /* deploy rec, wait StabilizeWait */ }
//		m := /* measure one window */
//		if done, _ := p.Observe(m); done { break }
//	}
//
// performs exactly the fits, recommendations, and training-set updates
// of Tune, so recommendations are bit-identical to a Tune run against
// the same system.
type Process struct {
	t    *Tuner
	g    *dag.Graph
	cfg  engine.Config
	embs [][]float64
	topo []int

	cur   map[string]int
	lower map[string]int // per operator: 1 + highest parallelism observed to bottleneck
	bp    bool           // last window showed job-level backpressure
	iter  int            // completed recommend/observe rounds
	done  bool
	res   *Result
}

// Start begins a tuning process for the target graph on a system with
// the given engine configuration: it opens one inference session (the
// embeddings reflect the graph's current source rates), and refreshes
// the head-distilled view of the target before the first fit.
func (t *Tuner) Start(g *dag.Graph, cfg engine.Config) (*Process, error) {
	sess, err := t.enc.NewInferSession(g)
	if err != nil {
		return nil, fmt.Errorf("streamtune: embed target: %w", err)
	}
	return t.StartWithSession(sess, cfg)
}

// StartWithSession is Start over a caller-provided inference session
// for the target graph — the tuning service builds sessions through its
// cross-tenant batcher and injects them here. The session must come
// from this tuner's encoder; results are identical to Start on the
// session's graph.
func (t *Tuner) StartWithSession(sess *gnn.InferSession, cfg engine.Config) (*Process, error) {
	g := sess.Graph()
	topo, err := g.TopoOrder()
	if err != nil {
		return nil, err
	}
	if err := t.distill(sess, g); err != nil {
		return nil, err
	}
	return &Process{
		t:     t,
		g:     g,
		cfg:   cfg,
		embs:  sess.Embeddings(),
		topo:  topo,
		lower: make(map[string]int, g.NumOperators()),
		bp:    true,
		res:   &Result{},
	}, nil
}

// Step fits the monotonic model to the current training set and computes
// the next per-operator recommendation in topological order. When deploy
// is true the recommendation differs from the current deployment and the
// caller must deploy it (and wait StabilizeWait) before measuring; when
// false the current deployment stands and the caller only measures.
// After done is returned true the process is complete and Result holds
// the final recommendation.
func (p *Process) Step() (rec map[string]int, deploy, done bool, err error) {
	if p.done {
		return nil, false, true, nil
	}
	if p.iter >= p.t.cfg.MaxIterations {
		p.finish()
		return nil, false, true, nil
	}
	fitStart := time.Now()
	if err := p.t.fitIfNeeded(); err != nil {
		return nil, false, false, err
	}
	rec = make(map[string]int, p.g.NumOperators())
	for _, i := range p.topo {
		op := p.g.OperatorAt(i)
		pr := mono.MinNonBottleneck(p.t.model, p.embs[i], p.cfg.MaxParallelism, p.t.cfg.Threshold)
		if lb := p.lower[op.ID]; pr < lb {
			pr = lb
		}
		if pr > p.cfg.MaxParallelism {
			pr = p.cfg.MaxParallelism // physical ceiling; stay saturated
		}
		rec[op.ID] = pr
	}
	p.res.RecommendTime += time.Since(fitStart)
	p.res.Iterations++

	if p.cur != nil && !p.bp && withinBand(rec, p.cur, p.t.cfg.StabilityBand) {
		p.finish() // Algorithm 2's fixed point: stable and backpressure-free.
		return nil, false, true, nil
	}
	deploy = p.cur == nil || !equal(rec, p.cur)
	if deploy {
		p.res.Reconfigurations++
		p.cur = rec
		p.res.TuningTime += p.t.cfg.StabilizeWait
	}
	return p.cur, deploy, false, nil
}

// Observe absorbs one measurement window taken under the last Step's
// recommendation: it harvests bottleneck labels into the training set
// (Algorithm 2, lines 10-11), tightens the known-bad lower bounds, and
// reports whether the process converged.
func (p *Process) Observe(m *engine.JobMetrics) (done bool, err error) {
	if p.done {
		return true, nil
	}
	if p.cur == nil {
		return false, fmt.Errorf("streamtune: Observe before first recommendation")
	}
	p.res.TuningTime += m.Window
	p.res.CPUTrace = append(p.res.CPUTrace, m.AvgCPUUtil)
	p.res.Final = m
	p.bp = m.Backpressured
	if p.bp {
		p.res.BackpressureEvents++
	}

	labels, err := bottleneck.ForFlavor(p.g, m, p.cfg)
	if err != nil {
		return false, err
	}
	t := p.t
	w := t.cfg.FeedbackWeight
	if w < 1 {
		w = 1
	}
	for i, op := range p.g.Operators() {
		if labels[i] < 0 {
			continue
		}
		pd := p.cur[op.ID]
		sample := mono.Sample{Embedding: p.embs[i], Parallelism: pd, Label: labels[i]}
		for k := 0; k < w; k++ {
			t.train = append(t.train, sample)
		}
		// Monotonicity-implied augmentation: a bottleneck at p is a
		// bottleneck at p-1; a non-bottleneck at p stays one at p+1.
		if labels[i] == 1 {
			if pd+1 > p.lower[op.ID] {
				p.lower[op.ID] = pd + 1
			}
			if pd > 1 {
				t.train = append(t.train, mono.Sample{Embedding: p.embs[i], Parallelism: pd - 1, Label: 1})
			}
		} else if pd < p.cfg.MaxParallelism {
			t.train = append(t.train, mono.Sample{Embedding: p.embs[i], Parallelism: pd + 1, Label: 0})
		}
	}
	t.markDirty()
	t.trim()
	p.iter++
	if !p.bp && equalRecommendation(t, p.embs, p.topo, p.g, p.cfg, p.cur, p.lower) {
		p.finish()
		return true, nil
	}
	if p.iter >= t.cfg.MaxIterations {
		p.finish()
		return true, nil
	}
	// Warm the model for the next Step while still inside this call, so
	// the read path (Recommend) is a pure binary search over cached
	// state. The fit is charged to RecommendTime wherever it runs.
	fitStart := time.Now()
	if err := t.fitIfNeeded(); err != nil {
		return false, err
	}
	p.res.RecommendTime += time.Since(fitStart)
	return false, nil
}

// Prefit warms the prediction model against the current training set
// (a no-op when it is already warm or the process is done), so a
// subsequent Step skips the fit. Fit wall-clock is charged to
// RecommendTime exactly as if Step had performed it.
func (p *Process) Prefit() error {
	if p.done {
		return nil
	}
	fitStart := time.Now()
	if err := p.t.fitIfNeeded(); err != nil {
		return err
	}
	p.res.RecommendTime += time.Since(fitStart)
	return nil
}

// ModelWarm reports whether the next Step will skip the model refit
// (the process is done, or the model is fitted to the current training
// set) — the service's cue that Recommend is cheap enough to bypass the
// worker pool.
func (p *Process) ModelWarm() bool { return p.done || p.t.modelWarm() }

// finish seals the process and records the final recommendation.
func (p *Process) finish() {
	p.done = true
	p.res.Parallelism = p.cur
}

// Done reports whether the process has converged or exhausted its
// iteration budget.
func (p *Process) Done() bool { return p.done }

// Iteration reports the number of completed recommend/observe rounds.
func (p *Process) Iteration() int { return p.iter }

// Recommendation returns the currently deployed recommendation (nil
// before the first Step).
func (p *Process) Recommendation() map[string]int { return p.cur }

// Result returns the accumulated tuning summary. It is complete once
// Done reports true; before that, Parallelism is unset.
func (p *Process) Result() *Result { return p.res }
