package streamtune

import (
	"sync"
	"testing"
	"time"

	"github.com/streamtune/streamtune/internal/dag"
	"github.com/streamtune/streamtune/internal/engine"
	"github.com/streamtune/streamtune/internal/history"
	"github.com/streamtune/streamtune/internal/nexmark"
	"github.com/streamtune/streamtune/internal/pqp"
)

// testConfig shrinks training for fast tests.
func testConfig() Config {
	cfg := DefaultConfig()
	cfg.Train.Epochs = 12
	cfg.WarmupSamples = 40
	cfg.StabilizeWait = time.Minute
	return cfg
}

var (
	corpusOnce sync.Once
	corpusVal  *history.Corpus
	ptOnce     sync.Once
	ptVal      *PreTrained
)

// sharedCorpus builds a small mixed corpus once per test binary.
func sharedCorpus(t *testing.T) *history.Corpus {
	t.Helper()
	corpusOnce.Do(func() {
		q2, err := nexmark.Build(nexmark.Q2, engine.Flink)
		if err != nil {
			t.Fatal(err)
		}
		q3, err := nexmark.Build(nexmark.Q3, engine.Flink)
		if err != nil {
			t.Fatal(err)
		}
		lin, err := pqp.Build(pqp.Linear, 0)
		if err != nil {
			t.Fatal(err)
		}
		two, err := pqp.Build(pqp.TwoWayJoin, 2)
		if err != nil {
			t.Fatal(err)
		}
		opts := history.DefaultOptions(engine.Flink)
		opts.SamplesPerGraph = 25
		opts.Engine.MeasureTicks = 40
		corpusVal, err = history.Generate([]*dag.Graph{q2, q3, lin, two}, opts)
		if err != nil {
			t.Fatal(err)
		}
	})
	if corpusVal == nil {
		t.Fatal("corpus generation failed earlier")
	}
	return corpusVal
}

func sharedPreTrained(t *testing.T) *PreTrained {
	t.Helper()
	corpus := sharedCorpus(t)
	ptOnce.Do(func() {
		var err error
		ptVal, err = PreTrain(corpus, testConfig())
		if err != nil {
			t.Fatal(err)
		}
	})
	if ptVal == nil {
		t.Fatal("pre-training failed earlier")
	}
	return ptVal
}

func TestPreTrainValidation(t *testing.T) {
	if _, err := PreTrain(&history.Corpus{}, testConfig()); err == nil {
		t.Fatal("expected empty-corpus error")
	}
}

func TestPreTrainProducesEncoders(t *testing.T) {
	pt := sharedPreTrained(t)
	if len(pt.Encoders) == 0 || len(pt.Encoders) != len(pt.Clusters.Centers) {
		t.Fatalf("encoders %d vs centers %d", len(pt.Encoders), len(pt.Clusters.Centers))
	}
	for c, losses := range pt.Losses {
		if len(losses) == 0 {
			t.Fatalf("cluster %d has no loss curve", c)
		}
		if losses[len(losses)-1] > losses[0] {
			t.Errorf("cluster %d loss increased: %v -> %v", c, losses[0], losses[len(losses)-1])
		}
	}
	if pt.TrainTime <= 0 {
		t.Error("TrainTime not recorded")
	}
}

func TestGlobalEncoderFallback(t *testing.T) {
	corpus := sharedCorpus(t)
	cfg := testConfig()
	cfg.Global = true
	cfg.Train.Epochs = 4
	pt, err := PreTrain(corpus, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(pt.Encoders) != 1 {
		t.Fatalf("global mode trained %d encoders, want 1", len(pt.Encoders))
	}
}

func TestNewTunerAssignsCluster(t *testing.T) {
	pt := sharedPreTrained(t)
	g, err := nexmark.Build(nexmark.Q2, engine.Flink)
	if err != nil {
		t.Fatal(err)
	}
	tuner, err := NewTuner(pt, g)
	if err != nil {
		t.Fatal(err)
	}
	if tuner.ClusterID() < 0 || tuner.ClusterID() >= len(pt.Encoders) {
		t.Fatalf("cluster id %d out of range", tuner.ClusterID())
	}
	if tuner.TrainingSetSize() == 0 {
		t.Fatal("warm-up dataset is empty")
	}
}

func TestNewTunerRejectsInvalidGraph(t *testing.T) {
	pt := sharedPreTrained(t)
	if _, err := NewTuner(pt, dag.New("empty")); err == nil {
		t.Fatal("expected invalid-graph error")
	}
}

func TestTuneEliminatesBackpressure(t *testing.T) {
	pt := sharedPreTrained(t)
	g, err := nexmark.Build(nexmark.Q2, engine.Flink)
	if err != nil {
		t.Fatal(err)
	}
	g.ScaleSourceRates(8)
	ecfg := engine.DefaultConfig(engine.Flink)
	e, err := engine.New(g, ecfg)
	if err != nil {
		t.Fatal(err)
	}
	tuner, err := NewTuner(pt, e.Graph())
	if err != nil {
		t.Fatal(err)
	}
	res, err := tuner.Tune(e)
	if err != nil {
		t.Fatal(err)
	}
	if res.Final == nil || res.Final.Backpressured {
		t.Fatalf("StreamTune left job backpressured: %+v", res.Final)
	}
	if res.Reconfigurations == 0 {
		t.Fatal("no deployment performed")
	}
	if len(res.CPUTrace) != res.Reconfigurations && len(res.CPUTrace) < res.Iterations-1 {
		t.Errorf("CPU trace length %d inconsistent with %d iterations", len(res.CPUTrace), res.Iterations)
	}
	if res.RecommendTime <= 0 || res.TuningTime <= 0 {
		t.Error("timing not recorded")
	}
}

func TestTuneNearOptimalParallelism(t *testing.T) {
	pt := sharedPreTrained(t)
	g, err := nexmark.Build(nexmark.Q2, engine.Flink)
	if err != nil {
		t.Fatal(err)
	}
	g.ScaleSourceRates(10)
	ecfg := engine.DefaultConfig(engine.Flink)
	e, err := engine.New(g, ecfg)
	if err != nil {
		t.Fatal(err)
	}
	tuner, err := NewTuner(pt, e.Graph())
	if err != nil {
		t.Fatal(err)
	}
	res, err := tuner.Tune(e)
	if err != nil {
		t.Fatal(err)
	}
	opt, _ := engine.GroundTruthOptimal(e.Graph(), ecfg)
	optTotal := 0
	for _, p := range opt {
		optTotal += p
	}
	got := res.TotalParallelism()
	if got > optTotal*3 {
		t.Fatalf("StreamTune total %d way above optimum %d", got, optTotal)
	}
	if res.Final.Backpressured {
		t.Fatal("final deployment backpressured")
	}
}

func TestTrainingSetGrowsWithFeedback(t *testing.T) {
	pt := sharedPreTrained(t)
	g, err := nexmark.Build(nexmark.Q2, engine.Flink)
	if err != nil {
		t.Fatal(err)
	}
	g.ScaleSourceRates(5)
	e, err := engine.New(g, engine.DefaultConfig(engine.Flink))
	if err != nil {
		t.Fatal(err)
	}
	tuner, err := NewTuner(pt, e.Graph())
	if err != nil {
		t.Fatal(err)
	}
	before := tuner.TrainingSetSize()
	if _, err := tuner.Tune(e); err != nil {
		t.Fatal(err)
	}
	if tuner.TrainingSetSize() <= before {
		t.Fatalf("fine-tuning dataset did not grow: %d -> %d", before, tuner.TrainingSetSize())
	}
}

func TestTuneWithXGBModel(t *testing.T) {
	corpus := sharedCorpus(t)
	cfg := testConfig()
	cfg.Model = "xgb"
	cfg.Train.Epochs = 6
	pt, err := PreTrain(corpus, cfg)
	if err != nil {
		t.Fatal(err)
	}
	g, err := nexmark.Build(nexmark.Q2, engine.Flink)
	if err != nil {
		t.Fatal(err)
	}
	g.ScaleSourceRates(6)
	e, err := engine.New(g, engine.DefaultConfig(engine.Flink))
	if err != nil {
		t.Fatal(err)
	}
	tuner, err := NewTuner(pt, e.Graph())
	if err != nil {
		t.Fatal(err)
	}
	res, err := tuner.Tune(e)
	if err != nil {
		t.Fatal(err)
	}
	if res.Final == nil || res.Final.Backpressured {
		t.Fatal("XGB-backed tuner left job backpressured")
	}
}

func TestUnknownModelRejected(t *testing.T) {
	corpus := sharedCorpus(t)
	cfg := testConfig()
	cfg.Model = "forest"
	cfg.Train.Epochs = 2
	pt, err := PreTrain(corpus, cfg)
	if err != nil {
		t.Fatal(err)
	}
	g, _ := nexmark.Build(nexmark.Q2, engine.Flink)
	if _, err := NewTuner(pt, g); err == nil {
		t.Fatal("expected unknown-model error")
	}
}
