package streamtune

import (
	"fmt"

	"github.com/streamtune/streamtune/internal/dag"
	"github.com/streamtune/streamtune/internal/engine"
	"github.com/streamtune/streamtune/internal/gnn"
	"github.com/streamtune/streamtune/internal/mono"
)

// TunerState is the serializable state of a Tuner: everything that is
// not derivable from the shared PreTrained artifact. The fine-tuned
// prediction model is deliberately excluded — it is refit from scratch
// on every Step, so restoring the training set restores the model's
// behavior bit for bit.
type TunerState struct {
	ClusterID int           `json:"cluster_id"`
	Train     []TrainSample `json:"train"`
}

// TrainSample is one serialized fine-tuning sample.
type TrainSample struct {
	Embedding   []float64 `json:"embedding"`
	Parallelism int       `json:"parallelism"`
	Label       int       `json:"label"`
}

// State snapshots the tuner for later RestoreTuner against the same
// PreTrained artifact.
func (t *Tuner) State() *TunerState {
	st := &TunerState{ClusterID: t.clusterID, Train: make([]TrainSample, len(t.train))}
	for i, s := range t.train {
		st.Train[i] = TrainSample{
			Embedding:   append([]float64(nil), s.Embedding...),
			Parallelism: s.Parallelism,
			Label:       s.Label,
		}
	}
	return st
}

// RestoreTuner reconstructs a Tuner from a snapshot taken with State.
// The PreTrained artifact must be the one the original tuner was built
// from (same clustering, same encoder weights, same Config); under that
// condition the restored tuner's recommendations are bit-identical to
// the original's, because the prediction model is deterministic in
// (Config, training set) and the training set is restored verbatim.
func RestoreTuner(pt *PreTrained, st *TunerState) (*Tuner, error) {
	if st == nil {
		return nil, fmt.Errorf("streamtune: nil tuner state")
	}
	if st.ClusterID < 0 || st.ClusterID >= len(pt.Encoders) {
		return nil, fmt.Errorf("streamtune: snapshot cluster %d outside [0, %d)", st.ClusterID, len(pt.Encoders))
	}
	// The snapshot envelope's checksum catches torn writes, not writer
	// bugs or cross-version drift — validate the semantics too, so a bad
	// checkpoint is rejected at restore instead of poisoning every
	// subsequent recommendation.
	pmax := pt.Config.GNN.PMax
	dim := -1
	for i, s := range st.Train {
		switch {
		case s.Parallelism < 1 || s.Parallelism > pmax:
			return nil, fmt.Errorf("streamtune: snapshot train sample %d: parallelism %d outside [1, %d]", i, s.Parallelism, pmax)
		case s.Label != 0 && s.Label != 1:
			return nil, fmt.Errorf("streamtune: snapshot train sample %d: label %d is neither 0 (clear) nor 1 (bottleneck)", i, s.Label)
		case len(s.Embedding) == 0:
			return nil, fmt.Errorf("streamtune: snapshot train sample %d: empty embedding", i)
		case dim >= 0 && len(s.Embedding) != dim:
			return nil, fmt.Errorf("streamtune: snapshot train sample %d: embedding dim %d != %d of earlier samples", i, len(s.Embedding), dim)
		}
		dim = len(s.Embedding)
	}
	model, err := mono.New(pt.Config.Model, pt.Config.GNN.PMax, pt.Config.ModelSeed)
	if err != nil {
		return nil, err
	}
	t := &Tuner{
		cfg:       pt.Config,
		enc:       pt.Encoder(st.ClusterID),
		clusterID: st.ClusterID,
		model:     model,
		train:     make([]mono.Sample, len(st.Train)),
	}
	for i, s := range st.Train {
		t.train[i] = mono.Sample{
			Embedding:   append([]float64(nil), s.Embedding...),
			Parallelism: s.Parallelism,
			Label:       s.Label,
		}
	}
	t.markDirty()
	return t, nil
}

// ProcessState is the serializable state of an in-flight Process. The
// inference session, embeddings, and topological order are recomputed
// from the graph on resume — they are pure functions of (graph, encoder
// weights) — so only the loop state crosses the snapshot.
type ProcessState struct {
	Graph         *dag.Graph     `json:"graph"`
	Engine        engine.Config  `json:"engine_config"`
	Current       map[string]int `json:"current,omitempty"`
	LowerBounds   map[string]int `json:"lower_bounds,omitempty"`
	Backpressured bool           `json:"backpressured"`
	Iterations    int            `json:"iterations_done"`
	Done          bool           `json:"done"`
	Result        *Result        `json:"result"`
}

// State snapshots the process for later Tuner.Resume.
func (p *Process) State() *ProcessState {
	res := *p.res
	res.Parallelism = copyAssignment(p.res.Parallelism)
	res.CPUTrace = append([]float64(nil), p.res.CPUTrace...)
	return &ProcessState{
		Graph:         p.g.Clone(),
		Engine:        p.cfg,
		Current:       copyAssignment(p.cur),
		LowerBounds:   copyAssignment(p.lower),
		Backpressured: p.bp,
		Iterations:    p.iter,
		Done:          p.done,
		Result:        &res,
	}
}

// Resume reconstructs an in-flight Process from a snapshot taken with
// State, on a tuner restored from the matching TunerState. Unlike
// Start, it performs no distillation — the snapshot's training set
// already contains those samples.
func (t *Tuner) Resume(st *ProcessState) (*Process, error) {
	if st == nil || st.Graph == nil {
		return nil, fmt.Errorf("streamtune: nil process state")
	}
	g := st.Graph.Clone()
	sess, err := t.enc.NewInferSession(g)
	if err != nil {
		return nil, fmt.Errorf("streamtune: embed target: %w", err)
	}
	return t.ResumeWithSession(sess, st)
}

// ResumeWithSession is Resume over a caller-provided inference session
// for the snapshot's graph (the restoring service groups sessions by
// structural fingerprint and rebuilds them through one block-diagonal
// batched forward). The session's graph — typically a clone of
// st.Graph — becomes the process's target.
func (t *Tuner) ResumeWithSession(sess *gnn.InferSession, st *ProcessState) (*Process, error) {
	if st == nil {
		return nil, fmt.Errorf("streamtune: nil process state")
	}
	g := sess.Graph()
	if err := st.validate(g, t.cfg.GNN.PMax); err != nil {
		return nil, fmt.Errorf("streamtune: invalid process state: %w", err)
	}
	topo, err := g.TopoOrder()
	if err != nil {
		return nil, err
	}
	res := &Result{}
	if st.Result != nil {
		*res = *st.Result
		res.CPUTrace = append([]float64(nil), st.Result.CPUTrace...)
	}
	p := &Process{
		t:     t,
		g:     g,
		cfg:   st.Engine,
		embs:  sess.Embeddings(),
		topo:  topo,
		cur:   copyAssignment(st.Current),
		lower: copyAssignment(st.LowerBounds),
		bp:    st.Backpressured,
		iter:  st.Iterations,
		done:  st.Done,
		res:   res,
	}
	if p.lower == nil {
		p.lower = make(map[string]int, g.NumOperators())
	}
	if p.done {
		p.res.Parallelism = p.cur
	}
	return p, nil
}

// validate rejects semantically impossible loop state: a checksum-valid
// checkpoint can still carry garbage (a writer bug, a snapshot from an
// incompatible version), and resuming it would mispredict silently on
// every later step. pmax bounds deployed parallelism; lower bounds may
// reach pmax+1 (a bottleneck observed at pmax itself).
func (st *ProcessState) validate(g *dag.Graph, pmax int) error {
	if st.Iterations < 0 {
		return fmt.Errorf("negative iteration count %d", st.Iterations)
	}
	if st.Done && st.Result == nil {
		return fmt.Errorf("done without a result")
	}
	for op, p := range st.Current {
		if g.Operator(op) == nil {
			return fmt.Errorf("current assignment names operator %q absent from the graph", op)
		}
		if p < 1 || p > pmax {
			return fmt.Errorf("current[%q] = %d outside [1, %d]", op, p, pmax)
		}
	}
	for op, lb := range st.LowerBounds {
		if g.Operator(op) == nil {
			return fmt.Errorf("lower bound names operator %q absent from the graph", op)
		}
		if lb < 1 || lb > pmax+1 {
			return fmt.Errorf("lower_bounds[%q] = %d outside [1, %d]", op, lb, pmax+1)
		}
	}
	return nil
}

// copyAssignment deep-copies a per-operator assignment (nil stays nil).
func copyAssignment(m map[string]int) map[string]int {
	if m == nil {
		return nil
	}
	out := make(map[string]int, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}
