package workload

import (
	"math"
	"sort"
	"testing"
)

func TestTracesShapeAndRange(t *testing.T) {
	const n = 60
	for _, tr := range ScenarioTraces(42, n) {
		if tr.Len() != n {
			t.Fatalf("%s: length = %d, want %d", tr.Name, tr.Len(), n)
		}
		for i, m := range tr.Multipliers {
			if m < 1 || m > 10 {
				t.Fatalf("%s[%d] = %v outside [1, 10]", tr.Name, i, m)
			}
		}
	}
}

func TestTracesDeterministic(t *testing.T) {
	a := ScenarioTraces(7, 50)
	b := ScenarioTraces(7, 50)
	for i := range a {
		for j := range a[i].Multipliers {
			if a[i].Multipliers[j] != b[i].Multipliers[j] {
				t.Fatalf("%s: same seed produced different traces", a[i].Name)
			}
		}
	}
	c := ScenarioTraces(8, 50)
	same := true
	for i := range a {
		for j := range a[i].Multipliers {
			if a[i].Multipliers[j] != c[i].Multipliers[j] {
				same = false
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical traces")
	}
}

// TestBurstyRegimes asserts the bursty trace actually has the two load
// regimes it promises: a quiet baseline and high spikes.
func TestBurstyRegimes(t *testing.T) {
	tr := BurstyTrace(1, 200)
	var low, high int
	for _, m := range tr.Multipliers {
		switch {
		case m < 4:
			low++
		case m > 7:
			high++
		}
	}
	if low < 100 {
		t.Errorf("bursty baseline steps = %d of 200, want a low-rate majority", low)
	}
	if high < 10 {
		t.Errorf("bursty spike steps = %d of 200, want a visible burst regime", high)
	}
}

// TestDiurnalSmoothness asserts consecutive diurnal steps change
// gradually — the defining property versus the bursty trace — and that
// the cycle spans most of the envelope.
func TestDiurnalSmoothness(t *testing.T) {
	tr := DiurnalTrace(1, 3*DiurnalPeriod)
	maxStep, lo, hi := 0.0, math.Inf(1), math.Inf(-1)
	for i, m := range tr.Multipliers {
		lo, hi = math.Min(lo, m), math.Max(hi, m)
		if i > 0 {
			maxStep = math.Max(maxStep, math.Abs(m-tr.Multipliers[i-1]))
		}
	}
	// One period moves 2*amplitude over DiurnalPeriod/2 steps; with
	// jitter the largest single step stays well under 3.
	if maxStep > 3 {
		t.Errorf("diurnal max step = %v, want smooth (< 3)", maxStep)
	}
	if lo > 2.5 || hi < 8.5 {
		t.Errorf("diurnal range = [%v, %v], want most of [1, 10]", lo, hi)
	}
}

// TestSkewedHeavyTail asserts the skewed trace is genuinely heavy-tailed:
// median near the floor, maximum near the ceiling.
func TestSkewedHeavyTail(t *testing.T) {
	tr := SkewedTrace(1, 500)
	ms := append([]float64(nil), tr.Multipliers...)
	sort.Float64s(ms)
	median, top := ms[len(ms)/2], ms[len(ms)-1]
	if median > 2.5 {
		t.Errorf("skewed median = %v, want < 2.5", median)
	}
	if top < 8 {
		t.Errorf("skewed max = %v, want tail reaching > 8", top)
	}
}

func TestTraceRates(t *testing.T) {
	tr := Trace{Name: "x", Multipliers: []float64{1.5, 10}}
	r := tr.Rates(1000)
	if r[0] != 1500 || r[1] != 10000 {
		t.Fatalf("Rates = %v", r)
	}
}
