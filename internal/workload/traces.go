package workload

import (
	"math"
	"math/rand"
)

// Trace is a named sequence of fractional source-rate multipliers used
// by the adversarial-traffic scenario benchmarks. Unlike the periodic
// Pattern (integer multipliers replicating the paper's §V-A schedule),
// traces model traffic shapes the paper does not evaluate: bursty
// spikes, diurnal cycles, and skewed heavy-tail load.
type Trace struct {
	Name string
	// Multipliers holds per-step factors of the query's rate unit Wu,
	// each in [1, 10] — the same envelope as the periodic schedule, so
	// the engine semantics (and the pre-training rate range) still hold.
	Multipliers []float64
}

// Len reports the number of rate changes in the trace.
func (t Trace) Len() int { return len(t.Multipliers) }

// Rates materializes the trace against a rate unit Wu, in
// records/second.
func (t Trace) Rates(wu float64) []float64 {
	out := make([]float64, len(t.Multipliers))
	for i, m := range t.Multipliers {
		out[i] = m * wu
	}
	return out
}

// clampMultiplier keeps a multiplier inside the evaluation envelope.
func clampMultiplier(m float64) float64 {
	return math.Min(10, math.Max(1, m))
}

// BurstyTrace generates a low-baseline load punctuated by short bursts:
// the workload idles near 2 x Wu and spikes to 8-10 x Wu for one to
// three consecutive steps, with a seeded 15% chance of a burst starting
// at any baseline step. Deterministic per (seed, n).
func BurstyTrace(seed int64, n int) Trace {
	rng := rand.New(rand.NewSource(seed))
	out := make([]float64, 0, n)
	for len(out) < n {
		if rng.Float64() < 0.15 {
			peak := 8 + 2*rng.Float64()
			for steps := 1 + rng.Intn(3); steps > 0 && len(out) < n; steps-- {
				out = append(out, clampMultiplier(peak+0.3*rng.NormFloat64()))
			}
			continue
		}
		out = append(out, clampMultiplier(2+0.5*rng.NormFloat64()))
	}
	return Trace{Name: "bursty", Multipliers: out}
}

// DiurnalPeriod is the number of steps in one simulated day of the
// diurnal trace.
const DiurnalPeriod = 24

// DiurnalTrace generates a smooth day/night cycle: a sinusoid between
// roughly 1 x and 10 x Wu with period DiurnalPeriod and small seeded
// jitter, so consecutive steps change gradually instead of jumping.
// Deterministic per (seed, n).
func DiurnalTrace(seed int64, n int) Trace {
	rng := rand.New(rand.NewSource(seed))
	phase := 2 * math.Pi * rng.Float64()
	out := make([]float64, n)
	for i := range out {
		base := 5.5 + 4.2*math.Sin(2*math.Pi*float64(i)/DiurnalPeriod+phase)
		out[i] = clampMultiplier(base + 0.2*rng.NormFloat64())
	}
	return Trace{Name: "diurnal", Multipliers: out}
}

// SkewedTrace generates heavy-tail load modeling skewed key popularity:
// most steps sit near the low end while a Zipf-like tail occasionally
// drives the hot partition to the ceiling. Multipliers are drawn as
// 1 + 9*u^4 for uniform u, so the median stays below 2 x Wu but the
// top decile approaches 10 x Wu. Deterministic per (seed, n).
func SkewedTrace(seed int64, n int) Trace {
	rng := rand.New(rand.NewSource(seed))
	out := make([]float64, n)
	for i := range out {
		u := rng.Float64()
		out[i] = clampMultiplier(1 + 9*math.Pow(u, 4))
	}
	return Trace{Name: "skewed", Multipliers: out}
}

// ScenarioTraces returns the scenario-bench trace set for one seed, in
// stable order.
func ScenarioTraces(seed int64, n int) []Trace {
	return []Trace{
		BurstyTrace(seed, n),
		DiurnalTrace(seed+1, n),
		SkewedTrace(seed+2, n),
	}
}
