// Package workload provides the source-rate simulation of the StreamTune
// evaluation: per-query source-rate units (Table II) and the periodic
// rate pattern used to drive 120 rate changes per query (§V-A).
package workload

import "math/rand"

// BasicCycle is the paper's basic cycle of ten source-rate multipliers,
// each to be multiplied by the query's rate unit Wu.
var BasicCycle = []int{3, 7, 4, 2, 1, 10, 8, 5, 6, 9}

// CycleRepeats is how many times the basic cycle is replicated to form
// one permutation sequence (the paper forms sequences of 20 rates).
const CycleRepeats = 2

// NumPermutations is the number of distinct permutations of the replicated
// sequence generated per query, yielding 20*6 = 120 rate changes.
const NumPermutations = 6

// Pattern is a sequence of source-rate multipliers for one tuning run.
type Pattern struct {
	// Multipliers holds the per-step factors to apply to the rate unit.
	Multipliers []int
}

// Len reports the number of rate changes in the pattern.
func (p Pattern) Len() int { return len(p.Multipliers) }

// Rates materializes the pattern against a rate unit Wu, in
// records/second.
func (p Pattern) Rates(wu float64) []float64 {
	out := make([]float64, len(p.Multipliers))
	for i, m := range p.Multipliers {
		out[i] = float64(m) * wu
	}
	return out
}

// PeriodicPatterns generates the paper's evaluation schedule: the basic
// cycle replicated CycleRepeats times, permuted NumPermutations times with
// the given seed. The first permutation is the identity (the replicated
// basic cycle itself); the rest are seeded shuffles, so results are
// reproducible.
func PeriodicPatterns(seed int64) []Pattern {
	base := make([]int, 0, len(BasicCycle)*CycleRepeats)
	for i := 0; i < CycleRepeats; i++ {
		base = append(base, BasicCycle...)
	}
	rng := rand.New(rand.NewSource(seed))
	patterns := make([]Pattern, 0, NumPermutations)
	patterns = append(patterns, Pattern{Multipliers: append([]int(nil), base...)})
	for i := 1; i < NumPermutations; i++ {
		perm := append([]int(nil), base...)
		rng.Shuffle(len(perm), func(a, b int) { perm[a], perm[b] = perm[b], perm[a] })
		patterns = append(patterns, Pattern{Multipliers: perm})
	}
	return patterns
}

// TotalChanges reports the total number of rate changes across a set of
// patterns (the paper's 120 per query).
func TotalChanges(ps []Pattern) int {
	n := 0
	for _, p := range ps {
		n += p.Len()
	}
	return n
}

// RandomMultiplier draws a uniform multiplier in [1, 10] for pre-training
// data generation (the paper samples rates in (1Wu, 10Wu) distinct from
// the tuning-time rates).
func RandomMultiplier(rng *rand.Rand) float64 {
	return 1 + 9*rng.Float64()
}
