package workload

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestBasicCycle(t *testing.T) {
	if len(BasicCycle) != 10 {
		t.Fatalf("basic cycle length = %d, want 10", len(BasicCycle))
	}
	// The cycle is a permutation of 1..10 (paper §V-A).
	seen := make(map[int]bool)
	for _, m := range BasicCycle {
		if m < 1 || m > 10 || seen[m] {
			t.Fatalf("cycle %v is not a permutation of 1..10", BasicCycle)
		}
		seen[m] = true
	}
}

func TestPeriodicPatternsShape(t *testing.T) {
	ps := PeriodicPatterns(42)
	if len(ps) != NumPermutations {
		t.Fatalf("patterns = %d, want %d", len(ps), NumPermutations)
	}
	for i, p := range ps {
		if p.Len() != len(BasicCycle)*CycleRepeats {
			t.Fatalf("pattern %d length = %d, want %d", i, p.Len(), len(BasicCycle)*CycleRepeats)
		}
	}
	if got := TotalChanges(ps); got != 120 {
		t.Fatalf("TotalChanges = %d, want 120 (paper: 20x6)", got)
	}
}

func TestPeriodicPatternsArePermutationsOfSameMultiset(t *testing.T) {
	ps := PeriodicPatterns(7)
	want := append([]int(nil), ps[0].Multipliers...)
	sort.Ints(want)
	for i, p := range ps {
		got := append([]int(nil), p.Multipliers...)
		sort.Ints(got)
		for j := range got {
			if got[j] != want[j] {
				t.Fatalf("pattern %d is not a permutation of the replicated cycle", i)
			}
		}
	}
}

func TestPeriodicPatternsDeterministic(t *testing.T) {
	a := PeriodicPatterns(99)
	b := PeriodicPatterns(99)
	for i := range a {
		for j := range a[i].Multipliers {
			if a[i].Multipliers[j] != b[i].Multipliers[j] {
				t.Fatal("same seed produced different patterns")
			}
		}
	}
	c := PeriodicPatterns(100)
	diff := false
	for i := 1; i < len(a) && !diff; i++ {
		for j := range a[i].Multipliers {
			if a[i].Multipliers[j] != c[i].Multipliers[j] {
				diff = true
				break
			}
		}
	}
	if !diff {
		t.Fatal("different seeds produced identical shuffles")
	}
}

func TestRates(t *testing.T) {
	p := Pattern{Multipliers: []int{3, 7}}
	r := p.Rates(1000)
	if r[0] != 3000 || r[1] != 7000 {
		t.Fatalf("Rates = %v, want [3000 7000]", r)
	}
}

func TestRandomMultiplierRange(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := RandomMultiplier(rng)
		return m >= 1 && m <= 10
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
