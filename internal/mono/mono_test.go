package mono

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// synthSamples fabricates a learnable dataset: each "operator" has an
// embedding whose first component encodes its per-instance cost; the
// operator bottlenecks when parallelism < need = ceil(cost * 20).
func synthSamples(rng *rand.Rand, n, pmax int) []Sample {
	var out []Sample
	for i := 0; i < n; i++ {
		cost := rng.Float64() // in [0,1)
		need := 1 + int(cost*20)
		p := 1 + rng.Intn(pmax)
		label := 0
		if p < need {
			label = 1
		}
		emb := []float64{cost, 1 - cost, 0.5 * cost, rng.Float64() * 0.01}
		out = append(out, Sample{Embedding: emb, Parallelism: p, Label: label})
	}
	return out
}

func trainAccuracy(m Model, samples []Sample) float64 {
	correct := 0
	for _, s := range samples {
		pred := 0
		if m.Predict(s.Embedding, s.Parallelism) >= 0.5 {
			pred = 1
		}
		if pred == s.Label {
			correct++
		}
	}
	return float64(correct) / float64(len(samples))
}

func TestNewByName(t *testing.T) {
	for _, name := range []string{"svm", "xgb", "nn"} {
		m, err := New(name, 100, 1)
		if err != nil {
			t.Fatal(err)
		}
		if m.Name() != name {
			t.Fatalf("Name() = %q, want %q", m.Name(), name)
		}
	}
	if _, err := New("forest", 100, 1); err == nil {
		t.Fatal("expected unknown-model error")
	}
}

func TestMonotonicFlags(t *testing.T) {
	if !NewSVM(100, 1).Monotonic() || !NewXGB(100, 1).Monotonic() {
		t.Fatal("SVM/XGB must report monotonic")
	}
	if NewNN(100, 1).Monotonic() {
		t.Fatal("NN must not report monotonic")
	}
}

func TestValidateRejectsBadData(t *testing.T) {
	m := NewSVM(100, 1)
	if err := m.Fit(nil); err == nil {
		t.Fatal("expected empty-set error")
	}
	oneClass := []Sample{{Embedding: []float64{1}, Parallelism: 1, Label: 0}}
	if err := m.Fit(oneClass); err == nil {
		t.Fatal("expected one-class error")
	}
	ragged := []Sample{
		{Embedding: []float64{1, 2}, Parallelism: 1, Label: 0},
		{Embedding: []float64{1}, Parallelism: 2, Label: 1},
	}
	if err := m.Fit(ragged); err == nil {
		t.Fatal("expected ragged-embedding error")
	}
	badLabel := []Sample{
		{Embedding: []float64{1}, Parallelism: 1, Label: 0},
		{Embedding: []float64{1}, Parallelism: 1, Label: 7},
	}
	if err := m.Fit(badLabel); err == nil {
		t.Fatal("expected bad-label error")
	}
}

func TestUntrainedPredicts50(t *testing.T) {
	emb := []float64{0.3}
	for _, m := range []Model{NewSVM(10, 1), NewXGB(10, 1), NewNN(10, 1)} {
		if got := m.Predict(emb, 5); got != 0.5 {
			t.Errorf("%s untrained Predict = %v, want 0.5", m.Name(), got)
		}
	}
}

func TestModelsLearnSynthetic(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	samples := synthSamples(rng, 400, 30)
	for _, m := range []Model{NewSVM(30, 2), NewXGB(30, 2), NewNN(30, 2)} {
		if err := m.Fit(samples); err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		if acc := trainAccuracy(m, samples); acc < 0.85 {
			t.Errorf("%s train accuracy = %.3f, want >= 0.85", m.Name(), acc)
		}
	}
}

// TestMonotoneProperty: for the constrained models, P(bottleneck) must be
// non-increasing in parallelism for arbitrary embeddings.
func TestMonotoneProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	samples := synthSamples(rng, 300, 30)
	for _, m := range []Model{NewSVM(30, 3), NewXGB(30, 3)} {
		if err := m.Fit(samples); err != nil {
			t.Fatal(err)
		}
		check := func(c0, c1, c2, c3 float64) bool {
			emb := []float64{clamp01(c0), clamp01(c1), clamp01(c2), clamp01(c3)}
			prev := m.Predict(emb, 1)
			for p := 2; p <= 30; p++ {
				cur := m.Predict(emb, p)
				if cur > prev+1e-9 {
					return false
				}
				prev = cur
			}
			return true
		}
		cfg := &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(17))}
		if err := quick.Check(check, cfg); err != nil {
			t.Errorf("%s violates monotonicity: %v", m.Name(), err)
		}
	}
}

func clamp01(x float64) float64 {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return 0.5
	}
	return math.Abs(math.Mod(x, 1))
}

func TestMinNonBottleneckFindsThreshold(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	samples := synthSamples(rng, 600, 30)
	m := NewXGB(30, 4)
	if err := m.Fit(samples); err != nil {
		t.Fatal(err)
	}
	// For a high-cost operator, the recommended parallelism must be
	// close to the ground-truth need and must be predicted
	// non-bottleneck.
	cost := 0.8
	emb := []float64{cost, 1 - cost, 0.5 * cost, 0}
	need := 1 + int(cost*20) // 17
	got := MinNonBottleneck(m, emb, 30, 0.5)
	if m.Predict(emb, got) >= 0.5 {
		t.Fatalf("recommended p=%d still predicted bottleneck", got)
	}
	if got < need-6 || got > need+6 {
		t.Errorf("recommended p=%d far from ground-truth need %d", got, need)
	}
	// A trivial operator should get parallelism 1.
	cheap := []float64{0.0, 1, 0, 0}
	if got := MinNonBottleneck(m, cheap, 30, 0.5); got > 5 {
		t.Errorf("cheap operator recommended p=%d, want small", got)
	}
}

func TestMinNonBottleneckEdgeCases(t *testing.T) {
	m := always(0.9)
	if got := MinNonBottleneck(m, nil, 50, 0.5); got != 50 {
		t.Fatalf("always-bottleneck should return pmax, got %d", got)
	}
	m2 := always(0.1)
	if got := MinNonBottleneck(m2, nil, 50, 0.5); got != 1 {
		t.Fatalf("never-bottleneck should return 1, got %d", got)
	}
	if got := MinNonBottleneck(m2, nil, 0, 0.5); got != 1 {
		t.Fatalf("pmax<1 should return 1, got %d", got)
	}
}

// always is a constant-probability model for edge-case tests.
type always float64

func (a always) Name() string                   { return "const" }
func (a always) Fit([]Sample) error             { return nil }
func (a always) Predict([]float64, int) float64 { return float64(a) }
func (a always) Monotonic() bool                { return true }

// TestMinNonBottleneckMatchesLinearScan: binary search under the
// monotonic constraint must agree with an exhaustive scan.
func TestMinNonBottleneckMatchesLinearScan(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	samples := synthSamples(rng, 300, 30)
	m := NewSVM(30, 5)
	if err := m.Fit(samples); err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 25; trial++ {
		cost := rng.Float64()
		emb := []float64{cost, 1 - cost, 0.5 * cost, 0}
		bin := MinNonBottleneck(m, emb, 30, 0.5)
		lin := 30
		for p := 1; p <= 30; p++ {
			if m.Predict(emb, p) < 0.5 {
				lin = p
				break
			}
		}
		if bin != lin {
			t.Fatalf("binary %d != linear %d for cost %.2f", bin, lin, cost)
		}
	}
}

func TestXGBDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	samples := synthSamples(rng, 200, 20)
	a := NewXGB(20, 7)
	b := NewXGB(20, 7)
	if err := a.Fit(samples); err != nil {
		t.Fatal(err)
	}
	if err := b.Fit(samples); err != nil {
		t.Fatal(err)
	}
	emb := []float64{0.4, 0.6, 0.2, 0}
	for p := 1; p <= 20; p++ {
		if a.Predict(emb, p) != b.Predict(emb, p) {
			t.Fatal("same seed, different predictions")
		}
	}
}
