// Package mono implements the fine-tuned bottleneck prediction models Mf
// of the StreamTune paper: lightweight classifiers over
// [operator-embedding, parallelism] inputs that estimate the probability
// of an operator being a bottleneck, optionally enforcing the paper's
// monotonic constraint — the probability must be non-increasing in the
// parallelism degree.
//
// Three models are provided, matching the paper's ablation (§V-I):
//
//   - SVM: a maximum-margin classifier with a random-Fourier-feature RBF
//     kernel on the embedding and a linear term wp*p with the constraint
//     wp <= 0 (Eq. 5).
//   - XGB: gradient-boosted trees with a monotone-decreasing constraint
//     on the parallelism feature (splits violating the constraint are
//     discarded; leaf values are clamped to propagated bounds).
//   - NN: an unconstrained multilayer perceptron (no monotonicity), used
//     to demonstrate why the constraint matters.
package mono

import "fmt"

// Sample is one fine-tuning training instance: the parallelism-agnostic
// operator embedding, the deployed parallelism, and the observed
// bottleneck label.
type Sample struct {
	Embedding   []float64
	Parallelism int
	Label       int // 0 non-bottleneck, 1 bottleneck
}

// Model is a fine-tuned bottleneck predictor.
type Model interface {
	// Name identifies the model class ("svm", "xgb", "nn").
	Name() string
	// Fit trains the model from scratch on the samples.
	Fit(samples []Sample) error
	// Predict returns the estimated P(bottleneck) for an operator with
	// the given embedding at parallelism p.
	Predict(emb []float64, p int) float64
	// Monotonic reports whether the model enforces the monotonic
	// constraint.
	Monotonic() bool
}

// validate rejects degenerate training sets.
func validate(samples []Sample) error {
	if len(samples) == 0 {
		return fmt.Errorf("mono: no training samples")
	}
	d := len(samples[0].Embedding)
	var have0, have1 bool
	for i, s := range samples {
		if len(s.Embedding) != d {
			return fmt.Errorf("mono: sample %d embedding dim %d != %d", i, len(s.Embedding), d)
		}
		switch s.Label {
		case 0:
			have0 = true
		case 1:
			have1 = true
		default:
			return fmt.Errorf("mono: sample %d has label %d, want 0 or 1", i, s.Label)
		}
	}
	if !have0 || !have1 {
		return fmt.Errorf("mono: training set needs both classes (have0=%v have1=%v)", have0, have1)
	}
	return nil
}

// MinNonBottleneck returns the minimum parallelism in [1, pmax] whose
// predicted bottleneck probability is below threshold, exploiting the
// monotonic constraint with a binary search (Algorithm 2, line 8). If
// even pmax is predicted to bottleneck, pmax is returned.
//
// For non-monotonic models the binary search is still performed — this
// reproduces the paper's ablation, where the unconstrained NN's
// recommendations become unreliable.
func MinNonBottleneck(m Model, emb []float64, pmax int, threshold float64) int {
	if pmax < 1 {
		return 1
	}
	if m.Predict(emb, pmax) >= threshold {
		return pmax
	}
	lo, hi := 1, pmax // invariant: Predict(hi) < threshold
	for lo < hi {
		mid := (lo + hi) / 2
		if m.Predict(emb, mid) < threshold {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// New constructs a model by name with the given maximum parallelism for
// feature normalization and a deterministic seed.
func New(name string, pmax int, seed int64) (Model, error) {
	switch name {
	case "svm":
		return NewSVM(pmax, seed), nil
	case "xgb":
		return NewXGB(pmax, seed), nil
	case "nn":
		return NewNN(pmax, seed), nil
	}
	return nil, fmt.Errorf("mono: unknown model %q (want svm, xgb or nn)", name)
}
