package mono

import (
	"math/rand"

	"github.com/streamtune/streamtune/internal/nn"
)

// NN is the paper's ablation model: an unconstrained multilayer
// perceptron over [embedding, parallelism]. It does not enforce the
// monotonic constraint, so nothing prevents it from predicting a higher
// bottleneck probability at a higher parallelism — the failure mode the
// paper's §V-I attributes its backpressure incidents to.
type NN struct {
	pmax int
	seed int64

	Epochs       int
	LearningRate float64
	Hidden       int

	mlp *nn.MLP
}

// NewNN creates an untrained unconstrained MLP model.
func NewNN(pmax int, seed int64) *NN {
	return &NN{pmax: pmax, seed: seed, Epochs: 120, LearningRate: 1e-2, Hidden: 24}
}

// Name implements Model.
func (m *NN) Name() string { return "nn" }

// Monotonic implements Model.
func (m *NN) Monotonic() bool { return false }

func (m *NN) row(emb []float64, p int) []float64 {
	f := make([]float64, len(emb)+1)
	copy(f, emb)
	if m.pmax > 0 {
		f[len(emb)] = float64(p) / float64(m.pmax)
	}
	return f
}

// Fit implements Model with full-batch Adam on binary cross-entropy.
func (m *NN) Fit(samples []Sample) error {
	if err := validate(samples); err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(m.seed))
	in := len(samples[0].Embedding) + 1
	m.mlp = nn.NewMLP(rng, in, m.Hidden, m.Hidden/2, 1)

	rows := make([][]float64, len(samples))
	labels := make([]int, len(samples))
	for i, s := range samples {
		rows[i] = m.row(s.Embedding, s.Parallelism)
		labels[i] = s.Label
	}
	x := nn.Leaf(nn.FromRows(rows))
	opt := nn.NewAdam(m.mlp.Params(), m.LearningRate)
	for ep := 0; ep < m.Epochs; ep++ {
		probs := nn.Sigmoid(m.mlp.Forward(x))
		loss := nn.MaskedBCE(probs, labels)
		nn.Backward(loss)
		opt.Step()
	}
	return nil
}

// Predict implements Model.
func (m *NN) Predict(emb []float64, p int) float64 {
	if m.mlp == nil {
		return 0.5
	}
	x := nn.Leaf(nn.FromRows([][]float64{m.row(emb, p)}))
	probs := nn.Sigmoid(m.mlp.Forward(x))
	return probs.Val.Data[0]
}
