package mono

import (
	"fmt"
	"math/rand"
	"sync"

	"github.com/streamtune/streamtune/internal/nn"
)

// NN is the paper's ablation model: an unconstrained multilayer
// perceptron over [embedding, parallelism]. It does not enforce the
// monotonic constraint, so nothing prevents it from predicting a higher
// bottleneck probability at a higher parallelism — the failure mode the
// paper's §V-I attributes its backpressure incidents to.
type NN struct {
	pmax int
	seed int64

	Epochs       int
	LearningRate float64
	Hidden       int

	mlp *nn.MLP
	// pred pools compiled single-row inference plans over the current
	// mlp; Fit replaces the pool (stale plans reference the old layers
	// and are dropped with it).
	pred *sync.Pool
}

// NewNN creates an untrained unconstrained MLP model.
func NewNN(pmax int, seed int64) *NN {
	return &NN{pmax: pmax, seed: seed, Epochs: 120, LearningRate: 1e-2, Hidden: 24}
}

// Name implements Model.
func (m *NN) Name() string { return "nn" }

// Monotonic implements Model.
func (m *NN) Monotonic() bool { return false }

func (m *NN) row(emb []float64, p int) []float64 {
	f := make([]float64, len(emb)+1)
	copy(f, emb)
	if m.pmax > 0 {
		f[len(emb)] = float64(p) / float64(m.pmax)
	}
	return f
}

// predPlan is a pooled single-row inference plan.
type predPlan struct {
	plan  *nn.Plan
	x     nn.Ref
	probs nn.Ref
}

// Fit implements Model with full-batch Adam on binary cross-entropy,
// training through one compiled plan replayed per epoch (bit-identical
// to the seed eager loop; see the differential test).
func (m *NN) Fit(samples []Sample) error {
	if err := validate(samples); err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(m.seed))
	in := len(samples[0].Embedding) + 1
	m.mlp = nn.NewMLP(rng, in, m.Hidden, m.Hidden/2, 1)

	rows := make([][]float64, len(samples))
	labels := make([]int, len(samples))
	for i, s := range samples {
		rows[i] = m.row(s.Embedding, s.Parallelism)
		labels[i] = s.Label
	}
	b := nn.NewBuilder()
	x := b.Input(len(samples), in)
	plan := b.Build(b.MaskedBCE(b.MLP(m.mlp, x, nn.ActSigmoid)))
	plan.SetInput(x, nn.FromRows(rows))
	plan.SetLabels(labels, 1)
	opt := nn.NewAdam(m.mlp.Params(), m.LearningRate)
	for ep := 0; ep < m.Epochs; ep++ {
		plan.Forward()
		plan.Backward()
		opt.Step()
	}

	mlp := m.mlp
	m.pred = &sync.Pool{New: func() any {
		pb := nn.NewBuilder()
		px := pb.Input(1, in)
		pp := pb.MLP(mlp, px, nn.ActSigmoid)
		return &predPlan{plan: pb.BuildForward(), x: px, probs: pp}
	}}
	return nil
}

// Predict implements Model on a pooled grad-free plan (the binary
// search of MinNonBottleneck hits this in the tuner's online loop).
func (m *NN) Predict(emb []float64, p int) float64 {
	if m.mlp == nil {
		return 0.5
	}
	pp := m.pred.Get().(*predPlan)
	xd := pp.plan.InputData(pp.x)
	if len(emb)+1 != len(xd) {
		panic(fmt.Sprintf("mono: NN.Predict embedding dim %d, fitted with %d", len(emb), len(xd)-1))
	}
	copy(xd, emb)
	if m.pmax > 0 {
		xd[len(emb)] = float64(p) / float64(m.pmax)
	} else {
		xd[len(emb)] = 0
	}
	pp.plan.Forward()
	out := pp.plan.Value(pp.probs).Data[0]
	m.pred.Put(pp)
	return out
}
