package mono

// Differential test pinning the plan-compiled NN ablation model to a
// verbatim copy of its seed implementation (eager autodiff graphs per
// epoch and per prediction), per the internal/ged/seed_test.go
// precedent.

import (
	"math"
	"math/rand"
	"testing"

	"github.com/streamtune/streamtune/internal/nn"
)

// refNN is the seed NN.Fit/Predict implementation, verbatim except for
// the receiver type.
type refNN struct {
	pmax int
	seed int64

	Epochs       int
	LearningRate float64
	Hidden       int

	mlp *nn.MLP
}

func (m *refNN) row(emb []float64, p int) []float64 {
	f := make([]float64, len(emb)+1)
	copy(f, emb)
	if m.pmax > 0 {
		f[len(emb)] = float64(p) / float64(m.pmax)
	}
	return f
}

func (m *refNN) Fit(samples []Sample) error {
	if err := validate(samples); err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(m.seed))
	in := len(samples[0].Embedding) + 1
	m.mlp = nn.NewMLP(rng, in, m.Hidden, m.Hidden/2, 1)

	rows := make([][]float64, len(samples))
	labels := make([]int, len(samples))
	for i, s := range samples {
		rows[i] = m.row(s.Embedding, s.Parallelism)
		labels[i] = s.Label
	}
	x := nn.Leaf(nn.FromRows(rows))
	opt := nn.NewAdam(m.mlp.Params(), m.LearningRate)
	for ep := 0; ep < m.Epochs; ep++ {
		probs := nn.Sigmoid(m.mlp.Forward(x))
		loss := nn.MaskedBCE(probs, labels)
		nn.Backward(loss)
		opt.Step()
	}
	return nil
}

func (m *refNN) Predict(emb []float64, p int) float64 {
	if m.mlp == nil {
		return 0.5
	}
	x := nn.Leaf(nn.FromRows([][]float64{m.row(emb, p)}))
	probs := nn.Sigmoid(m.mlp.Forward(x))
	return probs.Val.Data[0]
}

func TestNNMatchesSeedImplementation(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	var samples []Sample
	for i := 0; i < 60; i++ {
		emb := make([]float64, 6)
		for j := range emb {
			emb[j] = rng.NormFloat64()
		}
		p := 1 + rng.Intn(40)
		label := 0
		if emb[0]+emb[1]-float64(p)/20 > 0 {
			label = 1
		}
		samples = append(samples, Sample{Embedding: emb, Parallelism: p, Label: label})
	}
	// The synthetic set can degenerate to one class; force both.
	samples[0].Label = 0
	samples[1].Label = 1

	got := NewNN(60, 5)
	got.Epochs = 50
	want := &refNN{pmax: 60, seed: 5, Epochs: 50, LearningRate: got.LearningRate, Hidden: got.Hidden}

	if err := got.Fit(samples); err != nil {
		t.Fatal(err)
	}
	if err := want.Fit(samples); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		emb := make([]float64, 6)
		for j := range emb {
			emb[j] = rng.NormFloat64()
		}
		for _, p := range []int{1, 7, 23, 60} {
			g := got.Predict(emb, p)
			w := want.Predict(emb, p)
			if math.Float64bits(g) != math.Float64bits(w) {
				t.Fatalf("Predict(%d) = %v, seed %v (bit difference)", p, g, w)
			}
		}
	}
}
