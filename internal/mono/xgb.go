package mono

import (
	"math"
	"math/rand"
	"sort"
)

// XGB is a gradient-boosted tree ensemble on [embedding, parallelism]
// features with a monotone-decreasing constraint on the parallelism
// feature, mirroring XGBoost's monotone_constraints implementation:
// candidate splits on the constrained feature whose left/right leaf
// values violate the ordering receive gain -inf, and child leaf values
// are clamped to bounds propagated down the tree.
type XGB struct {
	pmax int
	seed int64

	// Hyperparameters.
	Rounds       int
	MaxDepth     int
	LearningRate float64
	Lambda       float64 // L2 on leaf weights
	Gamma        float64 // min split gain
	MinChild     float64 // min hessian sum per child

	base  float64 // initial log-odds
	trees []*xgbNode
	pIdx  int // feature index of parallelism
}

// NewXGB creates an untrained monotone gradient-boosted tree model.
func NewXGB(pmax int, seed int64) *XGB {
	return &XGB{
		pmax:         pmax,
		seed:         seed,
		Rounds:       40,
		MaxDepth:     4,
		LearningRate: 0.3,
		Lambda:       1.0,
		Gamma:        0.0,
		MinChild:     1.0,
	}
}

// Name implements Model.
func (x *XGB) Name() string { return "xgb" }

// Monotonic implements Model.
func (x *XGB) Monotonic() bool { return true }

type xgbNode struct {
	feature int
	thresh  float64
	left    *xgbNode
	right   *xgbNode
	weight  float64
	leaf    bool
}

func (n *xgbNode) eval(x []float64) float64 {
	for !n.leaf {
		if x[n.feature] <= n.thresh {
			n = n.left
		} else {
			n = n.right
		}
	}
	return n.weight
}

func (x *XGB) features(emb []float64, p int) []float64 {
	f := make([]float64, len(emb)+1)
	copy(f, emb)
	if x.pmax > 0 {
		f[len(emb)] = float64(p) / float64(x.pmax)
	}
	return f
}

// Fit implements Model.
func (x *XGB) Fit(samples []Sample) error {
	if err := validate(samples); err != nil {
		return err
	}
	n := len(samples)
	x.pIdx = len(samples[0].Embedding)
	feats := make([][]float64, n)
	ys := make([]float64, n)
	for i, s := range samples {
		feats[i] = x.features(s.Embedding, s.Parallelism)
		ys[i] = float64(s.Label)
	}

	// Initial prediction: log-odds of the base rate; positive-class
	// weighting counters imbalanced histories.
	pos := 0.0
	for _, y := range ys {
		pos += y
	}
	rate := math.Min(math.Max(pos/float64(n), 1e-3), 1-1e-3)
	x.base = math.Log(rate / (1 - rate))
	x.trees = nil
	posWeight := 1.0
	if pos > 0 {
		posWeight = math.Min(math.Max((float64(n)-pos)/pos, 1), 10)
	}

	margins := make([]float64, n)
	for i := range margins {
		margins[i] = x.base
	}
	grad := make([]float64, n)
	hess := make([]float64, n)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	rng := rand.New(rand.NewSource(x.seed))

	for r := 0; r < x.Rounds; r++ {
		for i := range margins {
			p := 1 / (1 + math.Exp(-margins[i]))
			w := 1.0
			if ys[i] > 0 {
				w = posWeight
			}
			grad[i] = w * (p - ys[i])
			hess[i] = math.Max(w*p*(1-p), 1e-6)
		}
		// Subsample rows for mild stochasticity.
		rows := idx
		if n > 20 {
			rows = rng.Perm(n)[:n*9/10]
		}
		tree := x.buildNode(feats, grad, hess, rows, 0, math.Inf(-1), math.Inf(1))
		if tree == nil {
			break
		}
		x.trees = append(x.trees, tree)
		for i := range margins {
			margins[i] += x.LearningRate * tree.eval(feats[i])
		}
	}
	return nil
}

// leafWeight is the regularized optimal leaf value clamped to [lo, hi].
func (x *XGB) leafWeight(g, h, lo, hi float64) float64 {
	w := -g / (h + x.Lambda)
	return math.Min(math.Max(w, lo), hi)
}

func (x *XGB) buildNode(feats [][]float64, grad, hess []float64, rows []int, depth int, lo, hi float64) *xgbNode {
	var G, H float64
	for _, i := range rows {
		G += grad[i]
		H += hess[i]
	}
	leaf := &xgbNode{leaf: true, weight: x.leafWeight(G, H, lo, hi)}
	if depth >= x.MaxDepth || len(rows) < 2 {
		return leaf
	}

	parentScore := G * G / (H + x.Lambda)
	bestGain := x.Gamma
	var bestFeature int
	var bestThresh, bestWL, bestWR float64
	var bestLeft, bestRight []int

	nf := len(feats[rows[0]])
	order := make([]int, len(rows))
	for f := 0; f < nf; f++ {
		copy(order, rows)
		sort.Slice(order, func(a, b int) bool { return feats[order[a]][f] < feats[order[b]][f] })
		var gl, hl float64
		for k := 0; k+1 < len(order); k++ {
			i := order[k]
			gl += grad[i]
			hl += hess[i]
			if feats[order[k]][f] == feats[order[k+1]][f] {
				continue
			}
			gr, hr := G-gl, H-hl
			if hl < x.MinChild || hr < x.MinChild {
				continue
			}
			gain := gl*gl/(hl+x.Lambda) + gr*gr/(hr+x.Lambda) - parentScore
			if gain <= bestGain {
				continue
			}
			wl := x.leafWeight(gl, hl, lo, hi)
			wr := x.leafWeight(gr, hr, lo, hi)
			// Monotone-decreasing constraint on the parallelism
			// feature: higher parallelism (right child) must not
			// predict a higher bottleneck score.
			if f == x.pIdx && wl < wr {
				continue // gain := -inf in XGBoost terms
			}
			bestGain = gain
			bestFeature = f
			bestThresh = (feats[order[k]][f] + feats[order[k+1]][f]) / 2
			bestWL, bestWR = wl, wr
			bestLeft = append(bestLeft[:0], order[:k+1]...)
			bestRight = append(bestRight[:0], order[k+1:]...)
		}
	}
	if bestLeft == nil {
		return leaf
	}

	childLoL, childHiL, childLoR, childHiR := lo, hi, lo, hi
	if bestFeature == x.pIdx {
		mid := (bestWL + bestWR) / 2
		childLoL, childLoR = mid, lo
		childHiL, childHiR = hi, mid
	}
	left := x.buildNode(feats, grad, hess, append([]int(nil), bestLeft...), depth+1, childLoL, childHiL)
	right := x.buildNode(feats, grad, hess, append([]int(nil), bestRight...), depth+1, childLoR, childHiR)
	return &xgbNode{feature: bestFeature, thresh: bestThresh, left: left, right: right}
}

// Predict implements Model.
func (x *XGB) Predict(emb []float64, p int) float64 {
	if x.trees == nil && x.base == 0 {
		return 0.5
	}
	f := x.features(emb, p)
	m := x.base
	for _, t := range x.trees {
		m += x.LearningRate * t.eval(f)
	}
	return 1 / (1 + math.Exp(-m))
}
