package mono

import (
	"math"
	"math/rand"
	"sort"
)

// SVM is a soft-margin support vector machine over
// [RFF(embedding), parallelism] with the monotonic constraint wp <= 0 of
// Eq. 5 in the paper. The RBF kernel on the embedding is approximated
// with random Fourier features so the primal problem can be solved with
// projected subgradient descent (Pegasos-style); the parallelism term
// stays linear so the constraint is a simple projection.
type SVM struct {
	pmax int
	seed int64

	// Random Fourier feature parameters (fixed at construction).
	numFeatures int
	gamma       float64
	omega       [][]float64 // numFeatures x embeddingDim, lazily sized
	phase       []float64

	// Standardization statistics of the embedding dimensions, estimated
	// at Fit time. RBF kernels need comparable feature scales.
	mean []float64
	std  []float64

	// Learned parameters.
	we []float64 // weights over RFF features
	wp float64   // parallelism weight, constrained <= 0
	b  float64

	// Hyperparameters.
	Lambda float64 // L2 regularization
	Epochs int
	// PlattScale sharpens the sigmoid mapping margin -> probability.
	PlattScale float64
}

// NewSVM creates an untrained monotonic SVM.
func NewSVM(pmax int, seed int64) *SVM {
	return &SVM{
		pmax:        pmax,
		seed:        seed,
		numFeatures: 128,
		gamma:       0.5,
		Lambda:      1e-4,
		Epochs:      60,
		PlattScale:  2.0,
	}
}

// Name implements Model.
func (s *SVM) Name() string { return "svm" }

// Monotonic implements Model.
func (s *SVM) Monotonic() bool { return true }

// initFeatures draws the random Fourier features for embedding dim d.
func (s *SVM) initFeatures(d int) {
	rng := rand.New(rand.NewSource(s.seed))
	s.omega = make([][]float64, s.numFeatures)
	s.phase = make([]float64, s.numFeatures)
	scale := math.Sqrt(2 * s.gamma)
	for i := range s.omega {
		s.omega[i] = make([]float64, d)
		for j := range s.omega[i] {
			s.omega[i][j] = rng.NormFloat64() * scale
		}
		s.phase[i] = 2 * math.Pi * rng.Float64()
	}
}

// standardize z-scores the embedding with the Fit-time statistics.
func (s *SVM) standardize(emb []float64) []float64 {
	if s.mean == nil {
		return emb
	}
	out := make([]float64, len(emb))
	for j, x := range emb {
		if j < len(s.mean) {
			out[j] = (x - s.mean[j]) / s.std[j]
		}
	}
	return out
}

// fitStats estimates per-dimension mean/std over the training set.
func (s *SVM) fitStats(samples []Sample) {
	d := len(samples[0].Embedding)
	s.mean = make([]float64, d)
	s.std = make([]float64, d)
	for _, sm := range samples {
		for j, x := range sm.Embedding {
			s.mean[j] += x
		}
	}
	n := float64(len(samples))
	for j := range s.mean {
		s.mean[j] /= n
	}
	for _, sm := range samples {
		for j, x := range sm.Embedding {
			dx := x - s.mean[j]
			s.std[j] += dx * dx
		}
	}
	for j := range s.std {
		s.std[j] = math.Sqrt(s.std[j] / n)
		if s.std[j] < 1e-6 {
			s.std[j] = 1
		}
	}
}

// medianGamma sets the RBF width by the median pairwise squared distance
// heuristic over a subsample of standardized embeddings.
func (s *SVM) medianGamma(samples []Sample, rng *rand.Rand) {
	limit := 60
	if len(samples) < limit {
		limit = len(samples)
	}
	idx := rng.Perm(len(samples))[:limit]
	var d2s []float64
	for a := 0; a < limit; a++ {
		for b := a + 1; b < limit; b++ {
			ea := s.standardize(samples[idx[a]].Embedding)
			eb := s.standardize(samples[idx[b]].Embedding)
			d2 := 0.0
			for j := range ea {
				dx := ea[j] - eb[j]
				d2 += dx * dx
			}
			d2s = append(d2s, d2)
		}
	}
	if len(d2s) == 0 {
		return
	}
	sort.Float64s(d2s)
	med := d2s[len(d2s)/2]
	if med > 1e-9 {
		s.gamma = 1 / med
	}
}

// rff maps a (raw) embedding into the random-Fourier feature space,
// standardizing first.
func (s *SVM) rff(emb []float64) []float64 {
	emb = s.standardize(emb)
	z := make([]float64, s.numFeatures)
	norm := math.Sqrt(2 / float64(s.numFeatures))
	for i := range z {
		dot := s.phase[i]
		w := s.omega[i]
		for j, x := range emb {
			if j < len(w) {
				dot += w[j] * x
			}
		}
		z[i] = norm * math.Cos(dot)
	}
	return z
}

func (s *SVM) normP(p int) float64 {
	if s.pmax <= 0 {
		return 0
	}
	return float64(p) / float64(s.pmax)
}

// margin computes the decision value f(x) = we . rff(h) + wp*p + b.
func (s *SVM) margin(emb []float64, p int) float64 {
	z := s.rff(emb)
	f := s.b + s.wp*s.normP(p)
	for i, zi := range z {
		f += s.we[i] * zi
	}
	return f
}

// Fit implements Model with projected subgradient descent on the primal
// hinge-loss objective. Labels are mapped to y in {-1, +1} with +1 =
// bottleneck; the projection wp = min(wp, 0) enforces the monotonic
// constraint after every update.
func (s *SVM) Fit(samples []Sample) error {
	if err := validate(samples); err != nil {
		return err
	}
	d := len(samples[0].Embedding)
	s.fitStats(samples)
	rngGamma := rand.New(rand.NewSource(s.seed + 2))
	s.medianGamma(samples, rngGamma)
	s.initFeatures(d)
	s.we = make([]float64, s.numFeatures)
	s.wp, s.b = 0, 0

	// Precompute feature vectors.
	zs := make([][]float64, len(samples))
	ps := make([]float64, len(samples))
	ys := make([]float64, len(samples))
	for i, sm := range samples {
		zs[i] = s.rff(sm.Embedding)
		ps[i] = s.normP(sm.Parallelism)
		ys[i] = -1
		if sm.Label == 1 {
			ys[i] = 1
		}
	}

	// Cost-sensitive hinge: weight the minority bottleneck class up so
	// that imbalanced histories (over-provisioned runs dominate) do not
	// collapse the model to "never a bottleneck".
	n0, n1 := 0.0, 0.0
	for _, y := range ys {
		if y > 0 {
			n1++
		} else {
			n0++
		}
	}
	posWeight := 1.0
	if n1 > 0 {
		posWeight = math.Min(math.Max(n0/n1, 1), 20)
	}

	rng := rand.New(rand.NewSource(s.seed + 1))
	order := rng.Perm(len(samples))
	t := 0
	// Polyak averaging over the second half of training damps the
	// variance of the stochastic subgradient path, keeping repeated
	// refits (Algorithm 2 refits every iteration) stable.
	avgWe := make([]float64, s.numFeatures)
	var avgWp, avgB float64
	avgCount := 0
	avgFrom := s.Epochs / 2
	for ep := 0; ep < s.Epochs; ep++ {
		rng.Shuffle(len(order), func(a, b int) { order[a], order[b] = order[b], order[a] })
		for _, i := range order {
			t++
			lr := 1 / (s.Lambda * float64(t+100))
			f := s.b + s.wp*ps[i]
			for k, zk := range zs[i] {
				f += s.we[k] * zk
			}
			// L2 shrinkage.
			for k := range s.we {
				s.we[k] *= 1 - lr*s.Lambda
			}
			s.wp *= 1 - lr*s.Lambda
			if ys[i]*f < 1 {
				w := 1.0
				if ys[i] > 0 {
					w = posWeight
				}
				for k, zk := range zs[i] {
					s.we[k] += lr * w * ys[i] * zk
				}
				s.wp += lr * w * ys[i] * ps[i]
				s.b += lr * w * ys[i] * 0.1
			}
			// Monotonic projection (Eq. 5: wp <= 0).
			if s.wp > 0 {
				s.wp = 0
			}
		}
		if ep >= avgFrom {
			for k := range avgWe {
				avgWe[k] += s.we[k]
			}
			avgWp += s.wp
			avgB += s.b
			avgCount++
		}
	}
	if avgCount > 0 {
		for k := range avgWe {
			s.we[k] = avgWe[k] / float64(avgCount)
		}
		s.wp = avgWp / float64(avgCount)
		s.b = avgB / float64(avgCount)
		if s.wp > 0 {
			s.wp = 0
		}
	}
	return nil
}

// Predict implements Model, mapping the margin through a scaled sigmoid.
func (s *SVM) Predict(emb []float64, p int) float64 {
	if s.we == nil {
		return 0.5
	}
	return 1 / (1 + math.Exp(-s.PlattScale*s.margin(emb, p)))
}
