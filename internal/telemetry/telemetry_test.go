package telemetry

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_total", "a counter")
	g := r.Gauge("test_gauge", "a gauge")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	g.Set(2.5)
	g.Add(-1)
	if got := g.Value(); got != 1.5 {
		t.Fatalf("gauge = %v, want 1.5", got)
	}
}

func TestNilInstrumentsAreInert(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	var cv *CounterVec
	var hv *HistogramVec
	c.Inc()
	c.Add(3)
	g.Set(1)
	g.Add(1)
	h.Observe(1)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("nil instruments must read zero")
	}
	if cv.With("x") != nil || hv.With("x") != nil {
		t.Fatal("nil vecs must resolve nil children")
	}
	cv.Delete("x")
	hv.Delete("x")
}

func TestHistogramBucketsAndQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "latency", []float64{0.01, 0.1, 1})
	for i := 0; i < 90; i++ {
		h.Observe(0.005) // first bucket
	}
	for i := 0; i < 9; i++ {
		h.Observe(0.05) // second bucket
	}
	h.Observe(5) // +Inf bucket
	if got := h.Count(); got != 100 {
		t.Fatalf("count = %d, want 100", got)
	}
	if got := h.Quantile(0.5); got != 0.01 {
		t.Fatalf("p50 = %v, want 0.01", got)
	}
	if got := h.Quantile(0.99); got != 0.1 {
		t.Fatalf("p99 = %v, want 0.1", got)
	}
	// The +Inf bucket reports the highest finite bound.
	if got := h.Quantile(1); got != 1 {
		t.Fatalf("p100 = %v, want 1", got)
	}
	wantSum := 90*0.005 + 9*0.05 + 5
	if got := h.Sum(); math.Abs(got-wantSum) > 1e-9 {
		t.Fatalf("sum = %v, want %v", got, wantSum)
	}
}

func TestExpositionFormat(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("st_requests_total", "Requests served.")
	c.Add(7)
	r.GaugeFunc("st_sessions", "Active sessions.", func() float64 { return 3 })
	v := r.CounterVec("st_ops_total", "Ops by kind.", "op")
	v.With("register").Add(2)
	v.With("recommend").Inc()
	h := r.Histogram("st_latency_seconds", "Latency.", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(2)

	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	want := []string{
		"# HELP st_requests_total Requests served.\n# TYPE st_requests_total counter\nst_requests_total 7\n",
		"# TYPE st_sessions gauge\nst_sessions 3\n",
		"st_ops_total{op=\"recommend\"} 1\nst_ops_total{op=\"register\"} 2\n",
		"st_latency_seconds_bucket{le=\"0.1\"} 1\n",
		"st_latency_seconds_bucket{le=\"1\"} 2\n",
		"st_latency_seconds_bucket{le=\"+Inf\"} 3\n",
		"st_latency_seconds_sum 2.55\nst_latency_seconds_count 3\n",
	}
	for _, frag := range want {
		if !strings.Contains(out, frag) {
			t.Errorf("exposition missing %q in:\n%s", frag, out)
		}
	}
	// Families render in sorted name order.
	if strings.Index(out, "st_latency_seconds") > strings.Index(out, "st_requests_total") {
		t.Errorf("families not sorted:\n%s", out)
	}
}

func TestHistogramVecExposition(t *testing.T) {
	r := NewRegistry()
	v := r.HistogramVec("st_req_seconds", "Per-op latency.", []float64{1}, "op")
	v.With("a").Observe(0.5)
	v.With("b").Observe(2)
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, frag := range []string{
		"st_req_seconds_bucket{op=\"a\",le=\"1\"} 1",
		"st_req_seconds_bucket{op=\"b\",le=\"+Inf\"} 1",
		"st_req_seconds_count{op=\"a\"} 1",
		"st_req_seconds_sum{op=\"b\"} 2",
	} {
		if !strings.Contains(out, frag) {
			t.Errorf("exposition missing %q in:\n%s", frag, out)
		}
	}
	v.Delete("a")
	b.Reset()
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(b.String(), `op="a"`) {
		t.Error("deleted child still exposed")
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("st_esc_total", "", "job")
	v.With("a\"b\\c\nd").Inc()
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `st_esc_total{job="a\"b\\c\nd"} 1`) {
		t.Errorf("bad escaping:\n%s", b.String())
	}
}

func TestDuplicateAndInvalidNamesPanic(t *testing.T) {
	r := NewRegistry()
	r.Counter("dup_total", "")
	mustPanic(t, "duplicate", func() { r.Counter("dup_total", "") })
	mustPanic(t, "invalid name", func() { r.Counter("9starts_with_digit", "") })
	mustPanic(t, "empty name", func() { r.Gauge("", "") })
	mustPanic(t, "bad bounds", func() { r.Histogram("h_bad", "", []float64{1, 1}) })
}

func mustPanic(t *testing.T, what string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic", what)
		}
	}()
	f()
}

func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("cc_total", "")
	h := r.Histogram("ch_seconds", "", []float64{1, 10})
	g := r.Gauge("cg", "")
	var wg sync.WaitGroup
	const workers, per = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
				h.Observe(0.5)
				g.Add(1)
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != workers*per {
		t.Errorf("counter = %d, want %d", got, workers*per)
	}
	if got := h.Count(); got != workers*per {
		t.Errorf("histogram count = %d, want %d", got, workers*per)
	}
	if got := h.Sum(); math.Abs(got-workers*per*0.5) > 1e-6 {
		t.Errorf("histogram sum = %v, want %v", got, workers*per*0.5)
	}
	if got := g.Value(); got != workers*per {
		t.Errorf("gauge = %v, want %d", got, workers*per)
	}
}

// TestHotPathZeroAllocs pins the instrument hot paths at zero
// allocations per operation — the acceptance bar for wiring telemetry
// into the serving path.
func TestHotPathZeroAllocs(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("alloc_total", "")
	g := r.Gauge("alloc_gauge", "")
	h := r.Histogram("alloc_seconds", "", nil)
	child := r.CounterVec("alloc_vec_total", "", "job").With("tenant-1")
	hchild := r.HistogramVec("alloc_vec_seconds", "", nil, "op").With("recommend")

	if n := testing.AllocsPerRun(1000, func() { c.Inc() }); n != 0 {
		t.Errorf("Counter.Inc allocs/op = %v, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() { g.Set(1.5) }); n != 0 {
		t.Errorf("Gauge.Set allocs/op = %v, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() { h.Observe(0.003) }); n != 0 {
		t.Errorf("Histogram.Observe allocs/op = %v, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() { child.Inc() }); n != 0 {
		t.Errorf("vec child Inc allocs/op = %v, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() { hchild.Observe(0.003) }); n != 0 {
		t.Errorf("vec child Observe allocs/op = %v, want 0", n)
	}
	// Disabled telemetry — nil instruments — is equally free.
	var nc *Counter
	var nh *Histogram
	if n := testing.AllocsPerRun(1000, func() { nc.Inc(); nh.Observe(1) }); n != 0 {
		t.Errorf("nil instrument allocs/op = %v, want 0", n)
	}
}
