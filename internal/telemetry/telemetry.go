// Package telemetry is a dependency-free metrics registry with
// Prometheus text-format exposition: counters, gauges, and fixed-bucket
// histograms whose hot paths are single atomic operations — no locks,
// no allocations — so instrumenting a serving path is provably inert
// (the service's differential tests show recommendations bit-identical
// with telemetry enabled vs disabled, and AllocsPerRun pins the
// instrument cost at zero allocations per operation).
//
// Instruments are registered once (label children resolved up front,
// outside the hot path) and updated forever after via nil-safe methods:
// every instrument method is a no-op on a nil receiver, so "telemetry
// disabled" is simply "the instrument pointer is nil" — no flags, no
// branches at call sites.
//
// Exposition follows the Prometheus text format (version 0.0.4):
//
//	# HELP streamtune_recommendations_total Recommend calls served.
//	# TYPE streamtune_recommendations_total counter
//	streamtune_recommendations_total 42
//
// Families render in sorted name order and label children in sorted
// label-value order, so equal registries expose equal bytes.
package telemetry

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// LatencyBuckets are the default histogram bounds for request
// latencies, in seconds: 100µs up to 10s, roughly geometric.
var LatencyBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
	0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// SizeBuckets are the default bounds for small-count distributions
// (batch occupancy, queue depths).
var SizeBuckets = []float64{1, 2, 3, 4, 6, 8, 12, 16, 24, 32}

// Counter is a monotonically increasing uint64. All methods are safe
// for concurrent use and no-ops on a nil receiver.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count (zero on nil).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable float64. All methods are safe for concurrent use
// and no-ops on a nil receiver.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Add adds delta (atomically, via CAS).
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+delta)) {
			return
		}
	}
}

// Value returns the current value (zero on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket distribution. Observe is lock-free: one
// linear scan over the (small) bound slice plus two atomic adds. All
// methods are safe for concurrent use and no-ops on a nil receiver.
type Histogram struct {
	bounds []float64       // upper bounds, strictly increasing
	counts []atomic.Uint64 // len(bounds)+1; last is the +Inf bucket
	sum    atomic.Uint64   // float64 bits, CAS-updated
}

func newHistogram(bounds []float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("telemetry: histogram bounds not strictly increasing at %d: %v", i, bounds))
		}
	}
	return &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Uint64, len(bounds)+1),
	}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Count returns the total number of observations (zero on nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	var total uint64
	for i := range h.counts {
		total += h.counts[i].Load()
	}
	return total
}

// Sum returns the sum of all observed values (zero on nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// Quantile estimates the q-quantile (0 < q <= 1) as the upper bound of
// the bucket holding the rank — a conservative (never underestimating)
// estimate, which is the right direction for latency ceilings. The +Inf
// bucket reports the highest finite bound. Zero observations report 0.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	total := h.Count()
	if total == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for i := range h.counts {
		cum += h.counts[i].Load()
		if cum >= rank {
			if i < len(h.bounds) {
				return h.bounds[i]
			}
			break
		}
	}
	if len(h.bounds) == 0 {
		return 0
	}
	return h.bounds[len(h.bounds)-1]
}

// metricKind names the TYPE line of a family.
type metricKind string

const (
	kindCounter   metricKind = "counter"
	kindGauge     metricKind = "gauge"
	kindHistogram metricKind = "histogram"
)

// family is one registered metric family: its metadata plus a render
// hook producing the sample lines.
type family struct {
	name   string
	help   string
	kind   metricKind
	render func(w io.Writer) error
}

// Registry holds metric families and renders them in the Prometheus
// text format. Registration methods panic on duplicate or invalid
// names — instruments are wired once at startup, so a clash is a
// programming error, not a runtime condition.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

func validName(name string) bool {
	if name == "" {
		return false
	}
	for i, r := range name {
		alpha := r == '_' || r == ':' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z')
		if !alpha && !(i > 0 && r >= '0' && r <= '9') {
			return false
		}
	}
	return true
}

func (r *Registry) register(name, help string, kind metricKind, render func(io.Writer) error) {
	if !validName(name) {
		panic(fmt.Sprintf("telemetry: invalid metric name %q", name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.families[name]; ok {
		panic(fmt.Sprintf("telemetry: metric %q already registered", name))
	}
	r.families[name] = &family{name: name, help: help, kind: kind, render: render}
}

// Counter registers and returns a new counter.
func (r *Registry) Counter(name, help string) *Counter {
	c := &Counter{}
	r.register(name, help, kindCounter, func(w io.Writer) error {
		return writeSample(w, name, "", float64(c.Value()))
	})
	return c
}

// CounterFunc registers a counter whose value is produced at scrape
// time — the adapter for pre-existing monotonic atomics (e.g. the
// service's Stats counters), which keeps their hot paths untouched.
func (r *Registry) CounterFunc(name, help string, f func() float64) {
	r.register(name, help, kindCounter, func(w io.Writer) error {
		return writeSample(w, name, "", f())
	})
}

// Gauge registers and returns a new gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	g := &Gauge{}
	r.register(name, help, kindGauge, func(w io.Writer) error {
		return writeSample(w, name, "", g.Value())
	})
	return g
}

// GaugeFunc registers a gauge whose value is produced at scrape time.
func (r *Registry) GaugeFunc(name, help string, f func() float64) {
	r.register(name, help, kindGauge, func(w io.Writer) error {
		return writeSample(w, name, "", f())
	})
}

// Histogram registers and returns a new fixed-bucket histogram. Nil or
// empty bounds default to LatencyBuckets.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = LatencyBuckets
	}
	h := newHistogram(bounds)
	r.register(name, help, kindHistogram, func(w io.Writer) error {
		return writeHistogram(w, name, "", h)
	})
	return h
}

// CounterVec registers a labeled counter family. Children are resolved
// with With (allocating, mutex-guarded — do it at setup, not on the hot
// path) and removed with Delete.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	v := &CounterVec{labels: labels, children: make(map[string]*Counter)}
	r.register(name, help, kindCounter, func(w io.Writer) error {
		return v.render(w, name)
	})
	return v
}

// HistogramVec registers a labeled histogram family. Nil or empty
// bounds default to LatencyBuckets.
func (r *Registry) HistogramVec(name, help string, bounds []float64, labels ...string) *HistogramVec {
	if len(bounds) == 0 {
		bounds = LatencyBuckets
	}
	v := &HistogramVec{labels: labels, bounds: bounds, children: make(map[string]*Histogram)}
	r.register(name, help, kindHistogram, func(w io.Writer) error {
		return v.render(w, name)
	})
	return v
}

// CounterVec is a counter family keyed by label values.
type CounterVec struct {
	labels []string

	mu       sync.Mutex
	children map[string]*Counter
}

// With returns the child counter for the given label values (created on
// first use). The value count must match the registered label names.
func (v *CounterVec) With(values ...string) *Counter {
	if v == nil {
		return nil
	}
	if len(values) != len(v.labels) {
		panic(fmt.Sprintf("telemetry: %d label values for %d labels", len(values), len(v.labels)))
	}
	key := labelKey(v.labels, values)
	v.mu.Lock()
	defer v.mu.Unlock()
	c := v.children[key]
	if c == nil {
		c = &Counter{}
		v.children[key] = c
	}
	return c
}

// Delete removes the child for the given label values, bounding family
// growth when the labeled entity (a tenant, a session) goes away.
func (v *CounterVec) Delete(values ...string) {
	if v == nil || len(values) != len(v.labels) {
		return
	}
	key := labelKey(v.labels, values)
	v.mu.Lock()
	delete(v.children, key)
	v.mu.Unlock()
}

func (v *CounterVec) render(w io.Writer, name string) error {
	v.mu.Lock()
	keys := make([]string, 0, len(v.children))
	for k := range v.children {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	counters := make([]*Counter, len(keys))
	for i, k := range keys {
		counters[i] = v.children[k]
	}
	v.mu.Unlock()
	for i, k := range keys {
		if err := writeSample(w, name, k, float64(counters[i].Value())); err != nil {
			return err
		}
	}
	return nil
}

// HistogramVec is a histogram family keyed by label values.
type HistogramVec struct {
	labels []string
	bounds []float64

	mu       sync.Mutex
	children map[string]*Histogram
}

// With returns the child histogram for the given label values (created
// on first use). Resolve children at setup; Observe on the result is
// the zero-allocation hot path.
func (v *HistogramVec) With(values ...string) *Histogram {
	if v == nil {
		return nil
	}
	if len(values) != len(v.labels) {
		panic(fmt.Sprintf("telemetry: %d label values for %d labels", len(values), len(v.labels)))
	}
	key := labelKey(v.labels, values)
	v.mu.Lock()
	defer v.mu.Unlock()
	h := v.children[key]
	if h == nil {
		h = newHistogram(v.bounds)
		v.children[key] = h
	}
	return h
}

// Delete removes the child for the given label values.
func (v *HistogramVec) Delete(values ...string) {
	if v == nil || len(values) != len(v.labels) {
		return
	}
	key := labelKey(v.labels, values)
	v.mu.Lock()
	delete(v.children, key)
	v.mu.Unlock()
}

func (v *HistogramVec) render(w io.Writer, name string) error {
	v.mu.Lock()
	keys := make([]string, 0, len(v.children))
	for k := range v.children {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	hists := make([]*Histogram, len(keys))
	for i, k := range keys {
		hists[i] = v.children[k]
	}
	v.mu.Unlock()
	for i, k := range keys {
		if err := writeHistogram(w, name, k, hists[i]); err != nil {
			return err
		}
	}
	return nil
}

// labelKey renders label pairs in registered order: `a="x",b="y"`.
func labelKey(labels, values []string) string {
	var b strings.Builder
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(values[i]))
		b.WriteByte('"')
	}
	return b.String()
}

// escapeLabel escapes a label value per the text-format rules.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// writeSample writes one `name{labels} value` line.
func writeSample(w io.Writer, name, labels string, v float64) error {
	var err error
	if labels == "" {
		_, err = fmt.Fprintf(w, "%s %s\n", name, formatValue(v))
	} else {
		_, err = fmt.Fprintf(w, "%s{%s} %s\n", name, labels, formatValue(v))
	}
	return err
}

// writeHistogram writes the cumulative _bucket series plus _sum and
// _count for one histogram child.
func writeHistogram(w io.Writer, name, labels string, h *Histogram) error {
	sep := ""
	if labels != "" {
		sep = ","
	}
	var cum uint64
	for i, bound := range h.bounds {
		cum += h.counts[i].Load()
		if _, err := fmt.Fprintf(w, "%s_bucket{%s%sle=%q} %d\n", name, labels, sep, formatValue(bound), cum); err != nil {
			return err
		}
	}
	cum += h.counts[len(h.bounds)].Load()
	if _, err := fmt.Fprintf(w, "%s_bucket{%s%sle=\"+Inf\"} %d\n", name, labels, sep, cum); err != nil {
		return err
	}
	if labels == "" {
		if _, err := fmt.Fprintf(w, "%s_sum %s\n", name, formatValue(h.Sum())); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s_count %d\n", name, cum)
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum{%s} %s\n", name, labels, formatValue(h.Sum())); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count{%s} %d\n", name, labels, cum)
	return err
}

// WriteText renders every family in sorted name order in the
// Prometheus text exposition format.
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	for _, f := range fams {
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind); err != nil {
			return err
		}
		if err := f.render(w); err != nil {
			return err
		}
	}
	return nil
}

// Handler returns an http.Handler serving the registry in the
// Prometheus text exposition format.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WriteText(w) // headers are out; nothing useful left to do on error
	})
}
