package dagspec

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"

	"github.com/streamtune/streamtune/internal/dag"
)

// Mutation is a versioned topology change applied to a running job's
// graph: insert operators, remove operators (dropping their incident
// edges), and rewire edges. Removals apply before insertions, so a
// node may be removed and re-added in one mutation to replace its
// configuration. A document must carry at least one change.
//
//	{
//	  "version": 1,
//	  "add_nodes": [{"id": "dedup", "kind": "filter", "spec": {"selectivity": 0.8}}],
//	  "remove_edges": [["bids", "win"]],
//	  "add_edges": [["bids", "dedup"], ["dedup", "win"]]
//	}
//
// Validation failures carry the same structured field paths as spec
// validation (for example add_nodes[0].spec.window.slide); failures of
// the resulting topology as a whole (a cycle, an unreachable operator)
// are reported against the mutated result under a result. prefix.
type Mutation struct {
	Version     int         `json:"version"`
	AddNodes    []Node      `json:"add_nodes,omitempty"`
	RemoveNodes []string    `json:"remove_nodes,omitempty"`
	AddEdges    [][2]string `json:"add_edges,omitempty"`
	RemoveEdges [][2]string `json:"remove_edges,omitempty"`
}

// ParseMutation decodes a mutation document with the same strictness as
// Parse: unknown fields and trailing garbage are rejected. The returned
// mutation has been parsed but not validated; Apply validates against a
// concrete graph.
func ParseMutation(data []byte) (*Mutation, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var m Mutation
	if err := dec.Decode(&m); err != nil {
		return nil, ValidationErrors{{Message: decodeMessage(err)}}
	}
	if dec.More() {
		return nil, ValidationErrors{{Message: "trailing data after mutation document"}}
	}
	return &m, nil
}

// Apply validates the mutation against the graph and builds the mutated
// graph. The input graph is never modified. Validation failures return
// a ValidationErrors with field paths into the mutation document.
func (m *Mutation) Apply(g *dag.Graph) (*dag.Graph, error) {
	base, err := FromGraph(g)
	if err != nil {
		return nil, fmt.Errorf("dagspec: current topology not expressible as a spec: %w", err)
	}
	var e errs
	if m.Version != Version {
		e.add("version", "unsupported mutation version %d (want %d)", m.Version, Version)
	}
	if len(m.AddNodes) == 0 && len(m.RemoveNodes) == 0 && len(m.AddEdges) == 0 && len(m.RemoveEdges) == 0 {
		e.add("", "mutation contains no changes")
		return nil, e.list
	}

	index := make(map[string]bool, len(base.Nodes))
	for _, n := range base.Nodes {
		index[n.ID] = true
	}

	removed := make(map[string]bool, len(m.RemoveNodes))
	for i, id := range m.RemoveNodes {
		path := fmt.Sprintf("remove_nodes[%d]", i)
		switch {
		case !index[id]:
			e.add(path, "unknown node %q", id)
		case removed[id]:
			e.add(path, "node %q removed twice", id)
		default:
			removed[id] = true
		}
	}

	surviving := make(map[string]bool, len(base.Nodes))
	for _, n := range base.Nodes {
		if !removed[n.ID] {
			surviving[n.ID] = true
		}
	}
	for i, n := range m.AddNodes {
		path := fmt.Sprintf("add_nodes[%d]", i)
		switch {
		case n.ID == "":
			e.add(path+".id", "id must not be empty")
		case surviving[n.ID]:
			e.add(path+".id", "node %q already exists", n.ID)
		default:
			surviving[n.ID] = true
		}
		kind, ok := canonicalKind(n.Kind)
		if !ok {
			e.add(path+".kind", "unknown kind %q (one of %s)", n.Kind, strings.Join(Kinds(), ", "))
			continue
		}
		validateNodeSpec(&e, path+".spec", kind, n.Spec)
	}

	baseEdge := make(map[[2]string]bool, len(base.Edges))
	for _, edge := range base.Edges {
		baseEdge[edge] = true
	}
	removedEdge := make(map[[2]string]bool, len(m.RemoveEdges))
	for i, edge := range m.RemoveEdges {
		path := fmt.Sprintf("remove_edges[%d]", i)
		switch {
		case !baseEdge[edge]:
			e.add(path, "unknown edge %q -> %q", edge[0], edge[1])
		case removedEdge[edge]:
			e.add(path, "edge %q -> %q removed twice", edge[0], edge[1])
		default:
			removedEdge[edge] = true
		}
	}

	// Surviving edges: not removed explicitly, not incident to a removed
	// node.
	var edges [][2]string
	finalEdge := make(map[[2]string]bool, len(base.Edges))
	for _, edge := range base.Edges {
		if removedEdge[edge] || removed[edge[0]] || removed[edge[1]] {
			continue
		}
		edges = append(edges, edge)
		finalEdge[edge] = true
	}
	for i, edge := range m.AddEdges {
		path := fmt.Sprintf("add_edges[%d]", i)
		ok := true
		if !surviving[edge[0]] {
			e.add(path+"[0]", "unknown node %q", edge[0])
			ok = false
		}
		if !surviving[edge[1]] {
			e.add(path+"[1]", "unknown node %q", edge[1])
			ok = false
		}
		if !ok {
			continue
		}
		if edge[0] == edge[1] {
			e.add(path, "self-edge on node %q", edge[0])
			continue
		}
		if finalEdge[edge] {
			e.add(path, "duplicate edge %q -> %q", edge[0], edge[1])
			continue
		}
		edges = append(edges, edge)
		finalEdge[edge] = true
	}
	if len(e.list) > 0 {
		return nil, e.list
	}

	nodes := make([]Node, 0, len(base.Nodes)+len(m.AddNodes))
	for _, n := range base.Nodes {
		if !removed[n.ID] {
			nodes = append(nodes, n)
		}
	}
	nodes = append(nodes, m.AddNodes...)
	final := &Spec{Version: Version, Name: base.Name, Nodes: nodes, Edges: edges}
	if verrs := final.Validate(); len(verrs) > 0 {
		out := make(ValidationErrors, len(verrs))
		for i, fe := range verrs {
			path := "result"
			if fe.Path != "" {
				path += "." + fe.Path
			}
			out[i] = FieldError{Path: path, Message: fe.Message}
		}
		return nil, out
	}
	return final.Compile()
}
