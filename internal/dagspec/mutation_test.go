package dagspec

import (
	"errors"
	"strings"
	"testing"

	"github.com/streamtune/streamtune/internal/dag"
)

// baseGraph compiles the shared test document into a graph: source ->
// filter -> sink.
func baseGraph(t *testing.T) *dag.Graph {
	t.Helper()
	spec, err := Parse([]byte(specDoc))
	if err != nil {
		t.Fatal(err)
	}
	g, err := spec.Compile()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestMutationApply covers the three mutation primitives — insert,
// remove, rewire — and asserts the input graph is never modified.
func TestMutationApply(t *testing.T) {
	g := baseGraph(t)
	before, _ := g.MarshalJSON()

	mut, err := ParseMutation([]byte(`{
		"version": 1,
		"add_nodes": [{"id": "m", "kind": "map", "spec": {"cost_factor": 2}}],
		"remove_edges": [["f", "k"]],
		"add_edges": [["f", "m"], ["m", "k"]]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	out, err := mut.Apply(g)
	if err != nil {
		t.Fatal(err)
	}
	if out.NumOperators() != 4 || out.NumEdges() != 3 {
		t.Fatalf("mutated graph = %s, want 4 ops / 3 edges", out)
	}
	if err := out.Validate(); err != nil {
		t.Fatal(err)
	}
	if op := out.Operator("m"); op == nil || op.Type != dag.Map || op.CostFactor != 2 {
		t.Fatalf("inserted operator = %+v", out.Operator("m"))
	}
	after, _ := g.MarshalJSON()
	if string(before) != string(after) {
		t.Fatal("Apply modified the input graph")
	}

	// Removing a node drops its incident edges implicitly; the rewire
	// reconnects around it.
	mut2, err := ParseMutation([]byte(`{
		"version": 1,
		"remove_nodes": ["f"],
		"add_edges": [["s", "k"]]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	out2, err := mut2.Apply(g)
	if err != nil {
		t.Fatal(err)
	}
	if out2.NumOperators() != 2 || out2.NumEdges() != 1 {
		t.Fatalf("mutated graph = %s, want 2 ops / 1 edge", out2)
	}

	// Remove-then-re-add replaces a node's configuration in place.
	mut3, err := ParseMutation([]byte(`{
		"version": 1,
		"remove_nodes": ["f"],
		"add_nodes": [{"id": "f", "kind": "filter", "spec": {"selectivity": 0.25}}],
		"add_edges": [["s", "f"], ["f", "k"]]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	out3, err := mut3.Apply(g)
	if err != nil {
		t.Fatal(err)
	}
	if got := out3.Operator("f").Selectivity; got != 0.25 {
		t.Fatalf("replaced selectivity = %v, want 0.25", got)
	}
}

// TestMutationValidationPaths asserts each failure mode reports its
// structured field path.
func TestMutationValidationPaths(t *testing.T) {
	cases := []struct {
		name string
		doc  string
		path string
		msg  string
	}{
		{
			"bad version",
			`{"version": 9, "remove_nodes": ["f"]}`,
			"version", "unsupported mutation version",
		},
		{
			"no changes",
			`{"version": 1}`,
			"", "no changes",
		},
		{
			"remove unknown node",
			`{"version": 1, "remove_nodes": ["ghost"]}`,
			"remove_nodes[0]", "unknown node",
		},
		{
			"remove node twice",
			`{"version": 1, "remove_nodes": ["f", "f"]}`,
			"remove_nodes[1]", "removed twice",
		},
		{
			"add existing node",
			`{"version": 1, "add_nodes": [{"id": "f", "kind": "filter"}]}`,
			"add_nodes[0].id", "already exists",
		},
		{
			"add node with bad kind",
			`{"version": 1, "add_nodes": [{"id": "x", "kind": "teleport"}]}`,
			"add_nodes[0].kind", "unknown kind",
		},
		{
			"add node with bad spec",
			`{"version": 1, "add_nodes": [{"id": "w", "kind": "window"}], "add_edges": [["f", "w"]]}`,
			"add_nodes[0].spec.window", "require a window block",
		},
		{
			"remove unknown edge",
			`{"version": 1, "remove_edges": [["s", "k"]]}`,
			"remove_edges[0]", "unknown edge",
		},
		{
			"add edge to unknown node",
			`{"version": 1, "add_edges": [["f", "ghost"]]}`,
			"add_edges[0][1]", "unknown node",
		},
		{
			"add edge to removed node",
			`{"version": 1, "remove_nodes": ["f"], "add_edges": [["s", "f"]]}`,
			"add_edges[0][1]", "unknown node",
		},
		{
			"add duplicate edge",
			`{"version": 1, "add_edges": [["s", "f"]]}`,
			"add_edges[0]", "duplicate edge",
		},
		{
			"add self edge",
			`{"version": 1, "add_edges": [["f", "f"]]}`,
			"add_edges[0]", "self-edge",
		},
		{
			"mutation creates cycle",
			`{"version": 1, "add_nodes": [{"id": "m", "kind": "map"}], "add_edges": [["f", "m"], ["m", "f"]]}`,
			"result.edges", "cycle",
		},
		{
			"mutation strands node",
			`{"version": 1, "remove_edges": [["s", "f"]]}`,
			"result.nodes[1]", "unreachable",
		},
		{
			"mutation feeds a source",
			`{"version": 1, "add_nodes": [{"id": "s2", "kind": "source", "spec": {"rate": 1}}], "add_edges": [["f", "s2"], ["s2", "k"]]}`,
			"result.edges[2][1]", "cannot have inputs",
		},
		{
			"mutation removes every source",
			`{"version": 1, "remove_nodes": ["s"]}`,
			"result.nodes", "at least one source",
		},
	}
	g := baseGraph(t)
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			mut, err := ParseMutation([]byte(c.doc))
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			_, err = mut.Apply(g)
			if err == nil {
				t.Fatal("Apply accepted invalid mutation")
			}
			var verrs ValidationErrors
			if !errors.As(err, &verrs) {
				t.Fatalf("error is %T, want ValidationErrors", err)
			}
			for _, fe := range verrs {
				if fe.Path == c.path && strings.Contains(fe.Message, c.msg) {
					return
				}
			}
			t.Fatalf("no error at %q containing %q; got %v", c.path, c.msg, verrs)
		})
	}
}

// TestParseMutationRejects covers document-level failures.
func TestParseMutationRejects(t *testing.T) {
	for _, doc := range []string{
		`{"version": 1,`,
		`{"version": 1, "add_node": []}`,
		`{"version": 1} trailing`,
	} {
		if _, err := ParseMutation([]byte(doc)); err == nil {
			t.Errorf("ParseMutation accepted %q", doc)
		}
	}
}
