package dagspec

import (
	"errors"
	"strings"
	"testing"
)

// specDoc is a minimal valid document the failure cases below mutate.
const specDoc = `{
	"version": 1,
	"name": "t",
	"nodes": [
		{"id": "s", "kind": "source", "spec": {"rate": 100, "tuple": {"width_out": 96}}},
		{"id": "f", "kind": "filter", "spec": {"selectivity": 0.5}},
		{"id": "k", "kind": "sink"}
	],
	"edges": [["s", "f"], ["f", "k"]]
}`

func TestValidSpecCompiles(t *testing.T) {
	spec, err := Parse([]byte(specDoc))
	if err != nil {
		t.Fatal(err)
	}
	g, err := spec.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if g.NumOperators() != 3 || g.NumEdges() != 2 {
		t.Fatalf("unexpected graph: %s", g)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestValidationPaths asserts each failure mode reports the documented
// structured field path.
func TestValidationPaths(t *testing.T) {
	cases := []struct {
		name string
		doc  string
		path string
		msg  string
	}{
		{
			"bad version",
			`{"version": 2, "nodes": [{"id": "s", "kind": "source"}]}`,
			"version", "unsupported spec version",
		},
		{
			"no nodes",
			`{"version": 1, "nodes": []}`,
			"nodes", "at least one node",
		},
		{
			"empty id",
			`{"version": 1, "nodes": [{"id": "", "kind": "source"}]}`,
			"nodes[0].id", "empty",
		},
		{
			"duplicate id",
			`{"version": 1, "nodes": [{"id": "s", "kind": "source"}, {"id": "s", "kind": "sink"}]}`,
			"nodes[1].id", "duplicate",
		},
		{
			"unknown kind",
			`{"version": 1, "nodes": [{"id": "s", "kind": "teleport"}]}`,
			"nodes[0].kind", "unknown kind",
		},
		{
			"rate on filter",
			`{"version": 1, "nodes": [{"id": "f", "kind": "filter", "spec": {"rate": 5}}]}`,
			"nodes[0].spec.rate", "only allowed on source",
		},
		{
			"negative selectivity",
			`{"version": 1, "nodes": [{"id": "f", "kind": "filter", "spec": {"selectivity": -1}}]}`,
			"nodes[0].spec.selectivity", "negative",
		},
		{
			"window node without window block",
			`{"version": 1, "nodes": [{"id": "w", "kind": "window"}]}`,
			"nodes[0].spec.window", "require a window block",
		},
		{
			"window block on filter",
			`{"version": 1, "nodes": [{"id": "f", "kind": "filter", "spec": {"window": {"type": "tumbling", "policy": "time", "length": 1}}}]}`,
			"nodes[0].spec.window", "not allowed on filter",
		},
		{
			"bad window type",
			`{"version": 1, "nodes": [{"id": "w", "kind": "window", "spec": {"window": {"type": "hopping", "policy": "time", "length": 1}}}]}`,
			"nodes[0].spec.window.type", "unknown window type",
		},
		{
			"sliding without slide",
			`{"version": 1, "nodes": [{"id": "w", "kind": "window", "spec": {"window": {"type": "sliding", "policy": "time", "length": 60}}}]}`,
			"nodes[0].spec.window.slide", "positive slide",
		},
		{
			"slide exceeds length",
			`{"version": 1, "nodes": [{"id": "w", "kind": "window", "spec": {"window": {"type": "sliding", "policy": "time", "length": 60, "slide": 61}}}]}`,
			"nodes[0].spec.window.slide", "exceeds window length",
		},
		{
			"slide on tumbling",
			`{"version": 1, "nodes": [{"id": "w", "kind": "window", "spec": {"window": {"type": "tumbling", "policy": "count", "length": 60, "slide": 5}}}]}`,
			"nodes[0].spec.window.slide", "only allowed on sliding",
		},
		{
			"bad join key",
			`{"version": 1, "nodes": [{"id": "j", "kind": "join", "spec": {"join": {"key": "uuid"}}}]}`,
			"nodes[0].spec.join.key", "unknown key class",
		},
		{
			"agg on map",
			`{"version": 1, "nodes": [{"id": "m", "kind": "map", "spec": {"agg": {"func": "sum"}}}]}`,
			"nodes[0].spec.agg", "not allowed on map",
		},
		{
			"bad agg func",
			`{"version": 1, "nodes": [{"id": "a", "kind": "aggregate", "spec": {"agg": {"func": "median"}}}]}`,
			"nodes[0].spec.agg.func", "unknown aggregation function",
		},
		{
			"bad tuple format",
			`{"version": 1, "nodes": [{"id": "s", "kind": "source", "spec": {"tuple": {"format": "avro"}}}]}`,
			"nodes[0].spec.tuple.format", "unknown tuple format",
		},
		{
			"unknown edge endpoint",
			`{"version": 1, "nodes": [{"id": "s", "kind": "source"}], "edges": [["s", "ghost"]]}`,
			"edges[0][1]", "unknown node",
		},
		{
			"self edge",
			`{"version": 1, "nodes": [{"id": "s", "kind": "source"}, {"id": "f", "kind": "filter"}], "edges": [["f", "f"]]}`,
			"edges[0]", "self-edge",
		},
		{
			"edge into source",
			`{"version": 1, "nodes": [{"id": "s", "kind": "source"}, {"id": "f", "kind": "filter"}], "edges": [["f", "s"]]}`,
			"edges[0][1]", "cannot have inputs",
		},
		{
			"duplicate edge",
			`{"version": 1, "nodes": [{"id": "s", "kind": "source"}, {"id": "f", "kind": "filter"}], "edges": [["s", "f"], ["s", "f"]]}`,
			"edges[1]", "duplicate edge",
		},
		{
			"no sources",
			`{"version": 1, "nodes": [{"id": "f", "kind": "filter"}]}`,
			"nodes", "at least one source",
		},
		{
			"cycle",
			`{"version": 1, "nodes": [{"id": "s", "kind": "source"}, {"id": "a", "kind": "map"}, {"id": "b", "kind": "map"}],
			 "edges": [["s", "a"], ["a", "b"], ["b", "a"]]}`,
			"edges", "cycle",
		},
		{
			"unreachable node",
			`{"version": 1, "nodes": [{"id": "s", "kind": "source"}, {"id": "k", "kind": "sink"}], "edges": []}`,
			"nodes[1]", "unreachable",
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			spec, err := Parse([]byte(c.doc))
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			_, err = spec.Compile()
			if err == nil {
				t.Fatal("compile accepted invalid spec")
			}
			var verrs ValidationErrors
			if !errors.As(err, &verrs) {
				t.Fatalf("error is %T, want ValidationErrors", err)
			}
			found := false
			for _, fe := range verrs {
				if fe.Path == c.path && strings.Contains(fe.Message, c.msg) {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("no error at %q containing %q; got %v", c.path, c.msg, verrs)
			}
		})
	}
}

// TestParseRejects covers document-level failures: malformed JSON,
// unknown fields, trailing garbage.
func TestParseRejects(t *testing.T) {
	for _, doc := range []string{
		`{"version": 1,`,
		`{"version": 1, "nodes": [], "bogus": true}`,
		`{"version": 1, "nodes": [{"id": "s", "kind": "source", "spec": {"rte": 1}}]}`,
		specDoc + `{"another": "doc"}`,
	} {
		if _, err := Parse([]byte(doc)); err == nil {
			t.Errorf("Parse accepted %q", doc)
		}
	}
}

// TestMultiRoot exercises a three-source DAG, beyond anything in the
// built-in templates.
func TestMultiRoot(t *testing.T) {
	doc := []byte(`{
		"version": 1,
		"name": "fan-in",
		"nodes": [
			{"id": "s1", "kind": "source", "spec": {"rate": 10}},
			{"id": "s2", "kind": "source", "spec": {"rate": 20}},
			{"id": "s3", "kind": "source", "spec": {"rate": 30}},
			{"id": "j1", "kind": "windowjoin", "spec": {"join": {"key": "int"}, "window": {"type": "sliding", "policy": "count", "length": 100, "slide": 10}}},
			{"id": "j2", "kind": "join", "spec": {"join": {"key": "string"}}},
			{"id": "k", "kind": "sink"}
		],
		"edges": [["s1","j1"],["s2","j1"],["j1","j2"],["s3","j2"],["j2","k"]]
	}`)
	spec, err := Parse(doc)
	if err != nil {
		t.Fatal(err)
	}
	g, err := spec.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Sources()) != 3 {
		t.Fatalf("sources = %d, want 3", len(g.Sources()))
	}
	back, err := FromGraph(g)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := back.Compile()
	if err != nil {
		t.Fatal(err)
	}
	a, _ := g.MarshalJSON()
	b, _ := g2.MarshalJSON()
	if string(a) != string(b) {
		t.Fatalf("multi-root round trip not bit-identical:\n%s\n%s", a, b)
	}
}
