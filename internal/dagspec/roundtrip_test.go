package dagspec

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"github.com/streamtune/streamtune/internal/dag"
	"github.com/streamtune/streamtune/internal/engine"
	"github.com/streamtune/streamtune/internal/nexmark"
	"github.com/streamtune/streamtune/internal/pqp"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite golden spec files from the current templates")

// templates yields every built-in Nexmark/PQP graph: the full template
// surface the spec must express.
func templates(t *testing.T) []*dag.Graph {
	t.Helper()
	var gs []*dag.Graph
	for _, q := range nexmark.Queries {
		for _, flavor := range []engine.Flavor{engine.Flink, engine.Timely} {
			g, err := nexmark.Build(q, flavor)
			if err != nil {
				t.Fatalf("nexmark %s/%s: %v", q, flavor, err)
			}
			// Same shape per flavor but different source rates; keep
			// both so the rate field round-trips at both magnitudes.
			g.Name = fmt.Sprintf("%s-%s", g.Name, flavor)
			gs = append(gs, g)
		}
	}
	for _, tmpl := range pqp.Templates {
		all, err := pqp.All(tmpl)
		if err != nil {
			t.Fatalf("pqp %s: %v", tmpl, err)
		}
		gs = append(gs, all...)
	}
	return gs
}

// graphBytes is the bit-identity fingerprint: the graph's own JSON
// encoding, which serializes every operator field.
func graphBytes(t *testing.T, g *dag.Graph) []byte {
	t.Helper()
	data, err := json.Marshal(g)
	if err != nil {
		t.Fatalf("marshal graph %s: %v", g.Name, err)
	}
	return data
}

// TestTemplateRoundTrip decompiles every built-in template to a spec and
// recompiles it; the result must be bit-identical to the original graph.
func TestTemplateRoundTrip(t *testing.T) {
	for _, g := range templates(t) {
		spec, err := FromGraph(g)
		if err != nil {
			t.Errorf("%s: FromGraph: %v", g.Name, err)
			continue
		}
		// The spec document itself must survive an encode/parse cycle.
		data, err := spec.Encode()
		if err != nil {
			t.Errorf("%s: encode: %v", g.Name, err)
			continue
		}
		spec2, err := Parse(data)
		if err != nil {
			t.Errorf("%s: reparse: %v", g.Name, err)
			continue
		}
		back, err := spec2.Compile()
		if err != nil {
			t.Errorf("%s: recompile: %v", g.Name, err)
			continue
		}
		want, got := graphBytes(t, g), graphBytes(t, back)
		if !bytes.Equal(want, got) {
			t.Errorf("%s: round trip not bit-identical\n want %s\n  got %s", g.Name, want, got)
		}
	}
}

// TestGoldenSpecs pins the canonical spec encoding of representative
// templates so the external format cannot drift silently. Regenerate
// with -update-golden after an intentional format change.
func TestGoldenSpecs(t *testing.T) {
	cases := []struct {
		golden string
		build  func() (*dag.Graph, error)
	}{
		{"nexmark-q5.json", func() (*dag.Graph, error) { return nexmark.Build(nexmark.Q5, engine.Flink) }},
		{"nexmark-q8.json", func() (*dag.Graph, error) { return nexmark.Build(nexmark.Q8, engine.Flink) }},
		{"pqp-2-way-join-02.json", func() (*dag.Graph, error) { return pqp.Build(pqp.TwoWayJoin, 2) }},
	}
	for _, c := range cases {
		g, err := c.build()
		if err != nil {
			t.Fatalf("%s: build: %v", c.golden, err)
		}
		spec, err := FromGraph(g)
		if err != nil {
			t.Fatalf("%s: FromGraph: %v", c.golden, err)
		}
		data, err := spec.Encode()
		if err != nil {
			t.Fatalf("%s: encode: %v", c.golden, err)
		}
		path := filepath.Join("testdata", c.golden)
		if *updateGolden {
			if err := os.WriteFile(path, data, 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%s: %v (run with -update-golden to create)", c.golden, err)
		}
		if !bytes.Equal(want, data) {
			t.Errorf("%s: spec encoding drifted from golden file\n want:\n%s\n got:\n%s", c.golden, want, data)
		}
	}
}

// TestGoldenSpecsCompile proves the committed golden files themselves
// compile back to the exact template graphs — the files are live
// documentation, not snapshots of a possibly-broken encoder.
func TestGoldenSpecsCompile(t *testing.T) {
	q5, err := nexmark.Build(nexmark.Q5, engine.Flink)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join("testdata", "nexmark-q5.json"))
	if err != nil {
		t.Fatal(err)
	}
	spec, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	g, err := spec.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(graphBytes(t, q5), graphBytes(t, g)) {
		t.Fatal("golden nexmark-q5.json does not compile to the Q5 template")
	}
}

// TestAliasesAndDefaults covers the accepted hyphenated kind aliases and
// the defaulting of omitted selectivity/cost_factor.
func TestAliasesAndDefaults(t *testing.T) {
	doc := []byte(`{
		"version": 1,
		"name": "alias",
		"nodes": [
			{"id": "s", "kind": "source", "spec": {"rate": 100}},
			{"id": "fm", "kind": "flat-map"},
			{"id": "wj", "kind": "window-join", "spec": {"window": {"type": "tumbling", "policy": "time", "length": 10}}},
			{"id": "a", "kind": "window-agg", "spec": {"agg": {"func": "sum"}}},
			{"id": "k", "kind": "sink"}
		],
		"edges": [["s","fm"],["s","wj"],["fm","wj"],["wj","a"],["a","k"]]
	}`)
	spec, err := Parse(doc)
	if err != nil {
		t.Fatal(err)
	}
	g, err := spec.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if got := g.Operator("fm").Type; got != dag.FlatMap {
		t.Errorf("flat-map alias compiled to %v", got)
	}
	if got := g.Operator("wj").Type; got != dag.WindowJoin {
		t.Errorf("window-join alias compiled to %v", got)
	}
	if got := g.Operator("a").Type; got != dag.Aggregate {
		t.Errorf("window-agg alias compiled to %v", got)
	}
	if got := g.Operator("fm").Selectivity; got != 1 {
		t.Errorf("omitted selectivity = %v, want engine default 1", got)
	}
	if got := g.Operator("fm").CostFactor; got != 1 {
		t.Errorf("omitted cost_factor = %v, want engine default 1", got)
	}
	// Decompilation emits canonical kind names.
	back, err := FromGraph(g)
	if err != nil {
		t.Fatal(err)
	}
	if back.Nodes[1].Kind != KindFlatMap || back.Nodes[2].Kind != KindWindowJoin {
		t.Errorf("decompiled kinds not canonical: %q, %q", back.Nodes[1].Kind, back.Nodes[2].Kind)
	}
}
