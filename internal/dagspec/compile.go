package dagspec

import (
	"fmt"

	"github.com/streamtune/streamtune/internal/dag"
)

// Compile validates the spec and builds the corresponding dag.Graph.
// On validation failure the returned error is a ValidationErrors
// carrying every field-level failure.
func (s *Spec) Compile() (*dag.Graph, error) {
	if errs := s.Validate(); len(errs) > 0 {
		return nil, errs
	}
	g := dag.New(s.Name)
	for _, n := range s.Nodes {
		if err := g.AddOperator(n.operator()); err != nil {
			return nil, fmt.Errorf("dagspec: compile: %w", err)
		}
	}
	for _, edge := range s.Edges {
		if err := g.AddEdge(edge[0], edge[1]); err != nil {
			return nil, fmt.Errorf("dagspec: compile: %w", err)
		}
	}
	// Validate already covered the dag invariants at the spec level;
	// this re-check is an internal consistency assertion.
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("dagspec: compiled graph invalid: %w", err)
	}
	return g, nil
}

// operator translates a validated node into a dag.Operator.
func (n Node) operator() *dag.Operator {
	kind, _ := canonicalKind(n.Kind)
	op := &dag.Operator{ID: n.ID, Type: kindToType[kind]}
	ns := n.Spec
	if ns == nil {
		return op
	}
	op.SourceRate = ns.Rate
	op.Selectivity = ns.Selectivity
	op.CostFactor = ns.CostFactor
	if w := ns.Window; w != nil {
		op.WindowType = windowTypes[w.Type]
		op.WindowPolicy = windowPolicies[w.Policy]
		op.WindowLength = w.Length
		op.SlidingLength = w.Slide
	}
	if j := ns.Join; j != nil {
		op.JoinKeyClass = keyClasses[j.Key]
	}
	if a := ns.Agg; a != nil {
		op.AggFunc = aggFuncs[a.Func]
		op.AggClass = keyClasses[a.Class]
		op.AggKeyClass = keyClasses[a.Key]
	}
	if t := ns.Tuple; t != nil {
		op.TupleWidthIn = t.WidthIn
		op.TupleWidthOut = t.WidthOut
		op.TupleDataType = tupleFormats[t.Format]
	}
	return op
}

// FromGraph decompiles a graph into a spec that recompiles to a
// bit-identical graph. It errors when the graph is not expressible —
// for example a window operator without a window configuration, or an
// enum value outside the named range. Every built-in Nexmark/PQP
// template is expressible.
func FromGraph(g *dag.Graph) (*Spec, error) {
	s := &Spec{Version: Version, Name: g.Name}
	for _, op := range g.Operators() {
		n, err := nodeFor(op)
		if err != nil {
			return nil, err
		}
		s.Nodes = append(s.Nodes, n)
	}
	ops := g.Operators()
	for i := range ops {
		for _, d := range g.Downstream(i) {
			s.Edges = append(s.Edges, [2]string{ops[i].ID, ops[d].ID})
		}
	}
	return s, nil
}

// nodeFor translates one operator, rejecting states the spec cannot
// express.
func nodeFor(op *dag.Operator) (Node, error) {
	fail := func(format string, args ...any) (Node, error) {
		return Node{}, fmt.Errorf("dagspec: operator %q: %s", op.ID, fmt.Sprintf(format, args...))
	}
	if !op.Type.Valid() {
		return fail("invalid operator type %d", int(op.Type))
	}
	kind := op.Type.String()
	ns := &NodeSpec{}

	if op.WindowType != dag.NoWindow {
		if kind != KindWindow && kind != KindWindowJoin && kind != KindAggregate {
			return fail("window configuration not expressible on %s", kind)
		}
		w := &WindowSpec{Length: op.WindowLength, Slide: op.SlidingLength}
		switch op.WindowType {
		case dag.Tumbling:
			w.Type = "tumbling"
		case dag.Sliding:
			w.Type = "sliding"
		default:
			return fail("invalid window type %d", int(op.WindowType))
		}
		switch op.WindowPolicy {
		case dag.CountPolicy:
			w.Policy = "count"
		case dag.TimePolicy:
			w.Policy = "time"
		default:
			return fail("windowed operator needs a count or time policy")
		}
		if !(w.Length > 0) {
			return fail("windowed operator needs a positive window length")
		}
		if op.WindowType == dag.Sliding {
			if !(w.Slide > 0) || w.Slide > w.Length {
				return fail("sliding window needs 0 < slide <= length")
			}
		} else if w.Slide != 0 {
			return fail("tumbling window cannot carry a slide")
		}
		ns.Window = w
	} else {
		if kind == KindWindow || kind == KindWindowJoin {
			return fail("%s operator without window configuration", kind)
		}
		if op.WindowPolicy != dag.NoPolicy || op.WindowLength != 0 || op.SlidingLength != 0 {
			return fail("window fields set without a window type")
		}
	}

	if op.JoinKeyClass != dag.NoKey {
		if kind != KindJoin && kind != KindWindowJoin {
			return fail("join key not expressible on %s", kind)
		}
		key, err := keyClassName(op.JoinKeyClass)
		if err != nil {
			return fail("%v", err)
		}
		ns.Join = &JoinSpec{Key: key}
	}

	if op.AggFunc != dag.NoAgg || op.AggClass != dag.NoKey || op.AggKeyClass != dag.NoKey {
		if kind != KindAggregate {
			return fail("aggregation fields not expressible on %s", kind)
		}
		a := &AggSpec{}
		if op.AggFunc != dag.NoAgg {
			if !op.AggFunc.Valid() {
				return fail("invalid aggregation function %d", int(op.AggFunc))
			}
			a.Func = op.AggFunc.String()
		}
		var err error
		if op.AggClass != dag.NoKey {
			if a.Class, err = keyClassName(op.AggClass); err != nil {
				return fail("%v", err)
			}
		}
		if op.AggKeyClass != dag.NoKey {
			if a.Key, err = keyClassName(op.AggKeyClass); err != nil {
				return fail("%v", err)
			}
		}
		ns.Agg = a
	}

	if op.TupleWidthIn != 0 || op.TupleWidthOut != 0 || op.TupleDataType != dag.RowTuple {
		if op.TupleWidthIn < 0 || op.TupleWidthOut < 0 {
			return fail("negative tuple width")
		}
		t := &TupleSpec{WidthIn: op.TupleWidthIn, WidthOut: op.TupleWidthOut}
		if op.TupleDataType != dag.RowTuple {
			if !op.TupleDataType.Valid() {
				return fail("invalid tuple type %d", int(op.TupleDataType))
			}
			t.Format = op.TupleDataType.String()
		}
		ns.Tuple = t
	}

	if op.SourceRate != 0 {
		if kind != KindSource {
			return fail("source rate not expressible on %s", kind)
		}
		if op.SourceRate < 0 {
			return fail("negative source rate")
		}
		ns.Rate = op.SourceRate
	}
	// Selectivity/CostFactor 1 is the AddOperator default; omit it so a
	// recompile restores the identical value.
	if op.Selectivity != 1 {
		if !(op.Selectivity > 0) {
			return fail("selectivity must be positive")
		}
		ns.Selectivity = op.Selectivity
	}
	if op.CostFactor != 1 {
		if !(op.CostFactor > 0) {
			return fail("cost_factor must be positive")
		}
		ns.CostFactor = op.CostFactor
	}

	if (*ns == NodeSpec{}) {
		ns = nil
	}
	return Node{ID: op.ID, Kind: kind, Spec: ns}, nil
}

// keyClassName spells a key class, rejecting out-of-range values.
func keyClassName(k dag.KeyClass) (string, error) {
	switch k {
	case dag.IntKey:
		return "int", nil
	case dag.FloatKey:
		return "float", nil
	case dag.StringKey:
		return "string", nil
	}
	return "", fmt.Errorf("invalid key class %d", int(k))
}
