package dagspec

import (
	"bytes"
	"testing"

	"github.com/streamtune/streamtune/internal/engine"
	"github.com/streamtune/streamtune/internal/nexmark"
	"github.com/streamtune/streamtune/internal/pqp"
)

// FuzzParse asserts the spec frontend's safety contract: Parse never
// panics, and every document it accepts either fails validation with
// structured errors or compiles to a Validate()-clean dag.Graph that
// survives a decompile/recompile round trip bit-identically.
func FuzzParse(f *testing.F) {
	f.Add([]byte(specDoc))
	f.Add([]byte(`{"version": 1, "nodes": [{"id": "s", "kind": "source"}]}`))
	f.Add([]byte(`{"version": 2, "nodes": []}`))
	f.Add([]byte(`{"version": 1, "nodes": [{"id": "w", "kind": "window",
		"spec": {"window": {"type": "sliding", "policy": "time", "length": 60, "slide": 5}}}]}`))
	f.Add([]byte(`{"version": 1, "nodes": [{"id": "s", "kind": "source", "spec": {"rate": -0}}]}`))
	f.Add([]byte(`not json`))
	for _, q := range []nexmark.Query{nexmark.Q3, nexmark.Q5, nexmark.Q8} {
		if g, err := nexmark.Build(q, engine.Flink); err == nil {
			if spec, err := FromGraph(g); err == nil {
				if data, err := spec.Encode(); err == nil {
					f.Add(data)
				}
			}
		}
	}
	if g, err := pqp.Build(pqp.ThreeWayJoin, 7); err == nil {
		if spec, err := FromGraph(g); err == nil {
			if data, err := spec.Encode(); err == nil {
				f.Add(data)
			}
		}
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		spec, err := Parse(data)
		if err != nil {
			return
		}
		g, err := spec.Compile()
		if err != nil {
			return
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("accepted spec compiled to invalid graph: %v\nspec: %s", err, data)
		}
		back, err := FromGraph(g)
		if err != nil {
			t.Fatalf("compiled graph not decompilable: %v\nspec: %s", err, data)
		}
		g2, err := back.Compile()
		if err != nil {
			t.Fatalf("decompiled spec does not recompile: %v\nspec: %s", err, data)
		}
		a, err := g.MarshalJSON()
		if err != nil {
			t.Fatal(err)
		}
		b, err := g2.MarshalJSON()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, b) {
			t.Fatalf("round trip not bit-identical:\n%s\n%s", a, b)
		}
	})
}
