// Package dagspec defines the external, human-readable JSON job spec
// accepted by the tuning service and compiles it to internal/dag graphs.
//
// A spec is a versioned document of nodes and edges:
//
//	{
//	  "version": 1,
//	  "name": "my-job",
//	  "nodes": [
//	    {"id": "bids", "kind": "source", "spec": {"rate": 80000, "tuple": {"width_out": 96}}},
//	    {"id": "win",  "kind": "window", "spec": {"window": {"type": "sliding", "policy": "time", "length": 60, "slide": 5}}},
//	    {"id": "sink", "kind": "sink"}
//	  ],
//	  "edges": [["bids", "win"], ["win", "sink"]]
//	}
//
// Kinds, window types, policies, key classes, aggregation functions and
// tuple formats are all spelled as strings — clients never see the
// internal enum integers of dag.Graph's own JSON form. Multi-root DAGs
// (several source nodes) are supported. Validation failures carry
// structured field paths (for example nodes[3].spec.window.slide) so
// clients can point at the offending field; the service surfaces them in
// the details of its error envelope.
//
// FromGraph inverts Compile: every built-in Nexmark/PQP template
// decompiles to a spec that recompiles to a bit-identical graph
// (golden-tested in roundtrip_test.go).
package dagspec

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"

	"github.com/streamtune/streamtune/internal/dag"
)

// Version is the only spec version currently understood.
const Version = 1

// Spec is a versioned external description of a dataflow DAG.
type Spec struct {
	Version int         `json:"version"`
	Name    string      `json:"name,omitempty"`
	Nodes   []Node      `json:"nodes"`
	Edges   [][2]string `json:"edges,omitempty"`
}

// Node is one operator of the spec. Kind selects the operator type by
// name; Spec carries the kind-specific configuration and may be omitted
// entirely for kinds that need none (for example a sink).
type Node struct {
	ID   string    `json:"id"`
	Kind string    `json:"kind"`
	Spec *NodeSpec `json:"spec,omitempty"`
}

// NodeSpec is the per-node configuration. Every field is optional at the
// JSON level; per-kind validation decides which blocks are required or
// forbidden (a "window" node must carry a window block, a "filter" must
// not, and so on).
type NodeSpec struct {
	// Rate is the records/second emitted by a source node. Only valid
	// on kind "source".
	Rate float64 `json:"rate,omitempty"`
	// Selectivity is the output/input record ratio used by the
	// simulated engine. Omitted or zero means the engine default of 1.
	Selectivity float64 `json:"selectivity,omitempty"`
	// CostFactor scales the node's per-record cost in the simulated
	// engine. Omitted or zero means the engine default of 1.
	CostFactor float64     `json:"cost_factor,omitempty"`
	Window     *WindowSpec `json:"window,omitempty"`
	Join       *JoinSpec   `json:"join,omitempty"`
	Agg        *AggSpec    `json:"agg,omitempty"`
	Tuple      *TupleSpec  `json:"tuple,omitempty"`
}

// WindowSpec configures windowing on "window", "windowjoin" and
// (optionally) "aggregate" nodes.
type WindowSpec struct {
	// Type is "tumbling" or "sliding".
	Type string `json:"type"`
	// Policy is "count" or "time".
	Policy string `json:"policy"`
	// Length is the window extent: records under the count policy,
	// seconds under the time policy.
	Length float64 `json:"length"`
	// Slide is the sliding step; required for sliding windows and
	// forbidden for tumbling ones.
	Slide float64 `json:"slide,omitempty"`
}

// JoinSpec configures "join" and "windowjoin" nodes.
type JoinSpec struct {
	// Key is the join key class: "int", "float" or "string".
	Key string `json:"key"`
}

// AggSpec configures "aggregate" nodes.
type AggSpec struct {
	// Func is the aggregation function: "min", "max", "avg", "sum" or
	// "count".
	Func string `json:"func,omitempty"`
	// Class is the data type class of the aggregated value.
	Class string `json:"class,omitempty"`
	// Key is the data type class of the grouping key.
	Key string `json:"key,omitempty"`
}

// TupleSpec describes the tuples flowing through a node.
type TupleSpec struct {
	// WidthIn and WidthOut are tuple sizes in bytes.
	WidthIn  float64 `json:"width_in,omitempty"`
	WidthOut float64 `json:"width_out,omitempty"`
	// Format is the serialization class: "row" (default), "pojo" or
	// "json".
	Format string `json:"format,omitempty"`
}

// Node kinds, matching dag.OpType names.
const (
	KindSource     = "source"
	KindSink       = "sink"
	KindMap        = "map"
	KindFilter     = "filter"
	KindFlatMap    = "flatmap"
	KindJoin       = "join"
	KindAggregate  = "aggregate"
	KindWindow     = "window"
	KindWindowJoin = "windowjoin"
)

// kindToType maps canonical kind names to operator types.
var kindToType = map[string]dag.OpType{
	KindSource:     dag.Source,
	KindSink:       dag.Sink,
	KindMap:        dag.Map,
	KindFilter:     dag.Filter,
	KindFlatMap:    dag.FlatMap,
	KindJoin:       dag.Join,
	KindAggregate:  dag.Aggregate,
	KindWindow:     dag.WindowOp,
	KindWindowJoin: dag.WindowJoin,
}

// kindAliases accepts common hyphenated spellings on input. The
// decompiler always emits canonical names.
var kindAliases = map[string]string{
	"flat-map":    KindFlatMap,
	"window-join": KindWindowJoin,
	"window-agg":  KindAggregate,
}

// Kinds lists the canonical node kinds in a stable order.
func Kinds() []string {
	return []string{
		KindSource, KindSink, KindMap, KindFilter, KindFlatMap,
		KindJoin, KindAggregate, KindWindow, KindWindowJoin,
	}
}

// canonicalKind resolves aliases and reports whether the kind is known.
func canonicalKind(k string) (string, bool) {
	if alias, ok := kindAliases[k]; ok {
		k = alias
	}
	_, ok := kindToType[k]
	return k, ok
}

// FieldError locates one validation failure within a spec document. Path
// is a dotted/indexed route from the document root, for example
// nodes[3].spec.window.slide or edges[1][0]; an empty path refers to the
// document as a whole.
type FieldError struct {
	Path    string `json:"path,omitempty"`
	Message string `json:"message"`
}

func (e FieldError) String() string {
	if e.Path == "" {
		return e.Message
	}
	return e.Path + ": " + e.Message
}

// ValidationErrors is the full list of validation failures for a spec.
// It implements error so it can flow through service admission; callers
// recover the structured list with errors.As.
type ValidationErrors []FieldError

// Error summarizes the first failure and the count of the rest.
func (e ValidationErrors) Error() string {
	switch len(e) {
	case 0:
		return "dagspec: invalid spec"
	case 1:
		return "dagspec: " + e[0].String()
	default:
		return fmt.Sprintf("dagspec: %s (and %d more)", e[0].String(), len(e)-1)
	}
}

// Parse decodes a spec document. Unknown fields and trailing garbage are
// rejected so client typos fail loudly instead of being ignored. The
// returned spec has been parsed but not validated; Compile validates.
func Parse(data []byte) (*Spec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return nil, ValidationErrors{{Message: decodeMessage(err)}}
	}
	if dec.More() {
		return nil, ValidationErrors{{Message: "trailing data after spec document"}}
	}
	return &s, nil
}

// decodeMessage strips the encoding/json prefix noise from a decode
// error so the message reads naturally inside an error detail.
func decodeMessage(err error) string {
	msg := err.Error()
	msg = strings.TrimPrefix(msg, "json: ")
	return msg
}

// Encode renders the spec as indented JSON with a trailing newline —
// the canonical on-disk form used by golden files and examples/spec.
func (s *Spec) Encode() ([]byte, error) {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}
