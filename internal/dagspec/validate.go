package dagspec

import (
	"fmt"
	"strings"

	"github.com/streamtune/streamtune/internal/dag"
)

// String spellings of the dag enums, used both ways: validation parses
// them, the decompiler emits them. They intentionally match the dag
// String() methods.
var (
	windowTypes = map[string]dag.WindowType{
		"tumbling": dag.Tumbling,
		"sliding":  dag.Sliding,
	}
	windowPolicies = map[string]dag.WindowPolicy{
		"count": dag.CountPolicy,
		"time":  dag.TimePolicy,
	}
	keyClasses = map[string]dag.KeyClass{
		"int":    dag.IntKey,
		"float":  dag.FloatKey,
		"string": dag.StringKey,
	}
	aggFuncs = map[string]dag.AggFunc{
		"min":   dag.AggMin,
		"max":   dag.AggMax,
		"avg":   dag.AggAvg,
		"sum":   dag.AggSum,
		"count": dag.AggCount,
	}
	tupleFormats = map[string]dag.TupleType{
		"row":  dag.RowTuple,
		"pojo": dag.PojoTuple,
		"json": dag.JSONTuple,
	}
)

// errs collects field errors during validation.
type errs struct {
	list ValidationErrors
}

func (e *errs) add(path, format string, args ...any) {
	e.list = append(e.list, FieldError{Path: path, Message: fmt.Sprintf(format, args...)})
}

// Validate checks the spec in full and returns every failure with its
// field path, or nil when the spec is well-formed. Graph-level checks
// (cycles, reachability) run only once the node and edge lists are
// individually sound, so a typo does not cascade into spurious
// structural errors.
func (s *Spec) Validate() ValidationErrors {
	var e errs
	if s.Version != Version {
		e.add("version", "unsupported spec version %d (want %d)", s.Version, Version)
	}
	if len(s.Nodes) == 0 {
		e.add("nodes", "at least one node required")
		return e.list
	}

	index := make(map[string]int, len(s.Nodes))
	kinds := make([]string, len(s.Nodes))
	for i, n := range s.Nodes {
		path := fmt.Sprintf("nodes[%d]", i)
		if n.ID == "" {
			e.add(path+".id", "id must not be empty")
		} else if prev, dup := index[n.ID]; dup {
			e.add(path+".id", "duplicate node id %q (first at nodes[%d])", n.ID, prev)
		} else {
			index[n.ID] = i
		}
		kind, ok := canonicalKind(n.Kind)
		if !ok {
			e.add(path+".kind", "unknown kind %q (one of %s)", n.Kind, strings.Join(Kinds(), ", "))
			continue
		}
		kinds[i] = kind
		validateNodeSpec(&e, path+".spec", kind, n.Spec)
	}

	for j, edge := range s.Edges {
		path := fmt.Sprintf("edges[%d]", j)
		from, okFrom := index[edge[0]]
		to, okTo := index[edge[1]]
		if !okFrom {
			e.add(path+"[0]", "unknown node %q", edge[0])
		}
		if !okTo {
			e.add(path+"[1]", "unknown node %q", edge[1])
		}
		if !okFrom || !okTo {
			continue
		}
		if from == to {
			e.add(path, "self-edge on node %q", edge[0])
			continue
		}
		if kinds[to] == KindSource {
			e.add(path+"[1]", "source node %q cannot have inputs", edge[1])
		}
		for k := 0; k < j; k++ {
			if s.Edges[k] == edge {
				e.add(path, "duplicate edge %q -> %q", edge[0], edge[1])
				break
			}
		}
	}

	if len(e.list) == 0 {
		s.validateStructure(&e, index, kinds)
	}
	if len(e.list) == 0 {
		return nil
	}
	return e.list
}

// validateNodeSpec enforces the per-kind block rules.
func validateNodeSpec(e *errs, path, kind string, ns *NodeSpec) {
	if ns == nil {
		if kind == KindWindow || kind == KindWindowJoin {
			e.add(path+".window", "%s nodes require a window block", kind)
		}
		return
	}
	if ns.Rate != 0 && kind != KindSource {
		e.add(path+".rate", "rate only allowed on source nodes")
	}
	if ns.Rate < 0 {
		e.add(path+".rate", "rate must not be negative")
	}
	if ns.Selectivity < 0 {
		e.add(path+".selectivity", "selectivity must not be negative")
	}
	if ns.CostFactor < 0 {
		e.add(path+".cost_factor", "cost_factor must not be negative")
	}

	switch {
	case ns.Window == nil && (kind == KindWindow || kind == KindWindowJoin):
		e.add(path+".window", "%s nodes require a window block", kind)
	case ns.Window != nil:
		switch kind {
		case KindWindow, KindWindowJoin, KindAggregate:
			validateWindow(e, path+".window", ns.Window)
		default:
			e.add(path+".window", "window block not allowed on %s nodes", kind)
		}
	}

	if ns.Join != nil {
		if kind != KindJoin && kind != KindWindowJoin {
			e.add(path+".join", "join block not allowed on %s nodes", kind)
		} else if _, ok := keyClasses[ns.Join.Key]; !ok {
			e.add(path+".join.key", "unknown key class %q (one of int, float, string)", ns.Join.Key)
		}
	}

	if ns.Agg != nil {
		if kind != KindAggregate {
			e.add(path+".agg", "agg block not allowed on %s nodes", kind)
		} else {
			if ns.Agg.Func != "" {
				if _, ok := aggFuncs[ns.Agg.Func]; !ok {
					e.add(path+".agg.func", "unknown aggregation function %q (one of min, max, avg, sum, count)", ns.Agg.Func)
				}
			}
			validateKeyClass(e, path+".agg.class", ns.Agg.Class)
			validateKeyClass(e, path+".agg.key", ns.Agg.Key)
		}
	}

	if ns.Tuple != nil {
		if ns.Tuple.WidthIn < 0 {
			e.add(path+".tuple.width_in", "width must not be negative")
		}
		if ns.Tuple.WidthOut < 0 {
			e.add(path+".tuple.width_out", "width must not be negative")
		}
		if ns.Tuple.Format != "" {
			if _, ok := tupleFormats[ns.Tuple.Format]; !ok {
				e.add(path+".tuple.format", "unknown tuple format %q (one of row, pojo, json)", ns.Tuple.Format)
			}
		}
	}
}

func validateKeyClass(e *errs, path, class string) {
	if class == "" {
		return
	}
	if _, ok := keyClasses[class]; !ok {
		e.add(path, "unknown key class %q (one of int, float, string)", class)
	}
}

func validateWindow(e *errs, path string, w *WindowSpec) {
	wt, ok := windowTypes[w.Type]
	if !ok {
		e.add(path+".type", "unknown window type %q (one of tumbling, sliding)", w.Type)
	}
	if _, ok := windowPolicies[w.Policy]; !ok {
		e.add(path+".policy", "unknown window policy %q (one of count, time)", w.Policy)
	}
	if !(w.Length > 0) {
		e.add(path+".length", "length must be positive")
	}
	switch wt {
	case dag.Sliding:
		if !(w.Slide > 0) {
			e.add(path+".slide", "sliding windows require a positive slide")
		} else if w.Slide > w.Length {
			e.add(path+".slide", "slide %v exceeds window length %v", w.Slide, w.Length)
		}
	case dag.Tumbling:
		if w.Slide != 0 {
			e.add(path+".slide", "slide only allowed on sliding windows")
		}
	}
}

// validateStructure runs the graph-level checks: at least one source,
// acyclic, every node reachable from a source. Called only on specs
// whose nodes and edges are individually valid.
func (s *Spec) validateStructure(e *errs, index map[string]int, kinds []string) {
	n := len(s.Nodes)
	adj := make([][]int, n)
	indeg := make([]int, n)
	for _, edge := range s.Edges {
		from, to := index[edge[0]], index[edge[1]]
		adj[from] = append(adj[from], to)
		indeg[to]++
	}

	var sources []int
	for i, k := range kinds {
		if k == KindSource {
			sources = append(sources, i)
		}
	}
	if len(sources) == 0 {
		e.add("nodes", "at least one source node required")
		return
	}

	// Kahn's algorithm: fewer than n visited nodes means a cycle.
	queue := make([]int, 0, n)
	deg := append([]int(nil), indeg...)
	for i := 0; i < n; i++ {
		if deg[i] == 0 {
			queue = append(queue, i)
		}
	}
	visited := 0
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		visited++
		for _, d := range adj[v] {
			deg[d]--
			if deg[d] == 0 {
				queue = append(queue, d)
			}
		}
	}
	if visited != n {
		e.add("edges", "graph contains a cycle")
		return
	}

	reached := make([]bool, n)
	stack := append([]int(nil), sources...)
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if reached[v] {
			continue
		}
		reached[v] = true
		stack = append(stack, adj[v]...)
	}
	for i, r := range reached {
		if !r {
			e.add(fmt.Sprintf("nodes[%d]", i), "node %q unreachable from any source", s.Nodes[i].ID)
		}
	}
}
