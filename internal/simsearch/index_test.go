package simsearch

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/streamtune/streamtune/internal/dag"
)

// randomSet builds a structurally-varied family with deliberate
// duplicates (clones under new names) so the fingerprint dedup path is
// always exercised.
func randomSet(seed int64, n int) []*dag.Graph {
	rng := rand.New(rand.NewSource(seed))
	out := make([]*dag.Graph, 0, n)
	for len(out) < n {
		if len(out) > 2 && rng.Float64() < 0.3 {
			c := out[rng.Intn(len(out))].Clone()
			c.Name = fmt.Sprintf("dup%d", len(out))
			out = append(out, c)
			continue
		}
		size := 2 + rng.Intn(5)
		types := make([]dag.OpType, size)
		types[0] = dag.Source
		for i := 1; i < size; i++ {
			types[i] = dag.OpType(rng.Intn(dag.NumOpTypes()))
		}
		g := dag.New(fmt.Sprintf("g%d", len(out)))
		for i, ty := range types {
			g.MustAddOperator(&dag.Operator{ID: fmt.Sprintf("n%d", i), Type: ty})
		}
		for i := 0; i < size; i++ {
			for j := i + 1; j < size; j++ {
				if rng.Float64() < 0.4 {
					g.MustAddEdge(fmt.Sprintf("n%d", i), fmt.Sprintf("n%d", j))
				}
			}
		}
		out = append(out, g)
	}
	return out
}

// TestIndexedSimilarEqualsScan: the pivot index returns exactly the
// linear-scan neighbor set, for every method, on in-set and out-of-set
// queries across thresholds.
func TestIndexedSimilarEqualsScan(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		set := randomSet(seed, 14)
		ix := NewIndex(set, 2)
		queries := append([]*dag.Graph{}, set[:4]...)
		queries = append(queries, randomSet(seed+100, 3)...)
		for _, method := range []Method{AStarLS, DirectGED} {
			for _, tau := range []float64{0, 1, 3, 6} {
				for qi, q := range queries {
					want := Similar(q, set, tau, method)
					got := ix.Similar(q, tau, method)
					if fmt.Sprint(got) != fmt.Sprint(want) {
						t.Fatalf("seed=%d method=%v tau=%v query=%d: indexed %v != scan %v",
							seed, method, tau, qi, got, want)
					}
				}
			}
		}
		st := ix.Stats()
		if st.Candidates == 0 || st.PrunedLB+st.AcceptedUB == 0 {
			t.Fatalf("index never pruned: %+v", st)
		}
	}
}

// TestIndexedCenterEqualsScan: the indexed center equals both the
// appearance-count scan and the seed-pipeline CenterScan for every
// worker count.
func TestIndexedCenterEqualsScan(t *testing.T) {
	for _, seed := range []int64{5, 6} {
		set := randomSet(seed, 16)
		for _, tau := range []float64{1, 3, 5} {
			wantCounts := AppearanceCounts(set, tau, AStarLS)
			want := argmaxFirst(wantCounts)
			seedCenter, err := CenterScan(set, tau, 2)
			if err != nil {
				t.Fatal(err)
			}
			if seedCenter != want {
				t.Fatalf("seed=%d tau=%v: CenterScan %d != scan %d", seed, tau, seedCenter, want)
			}
			for _, workers := range []int{1, 2, 8} {
				got, err := CenterWorkers(set, tau, AStarLS, workers)
				if err != nil {
					t.Fatal(err)
				}
				if got != want {
					t.Fatalf("seed=%d tau=%v workers=%d: indexed center %d != scan %d",
						seed, tau, workers, got, want)
				}
				ixCounts := NewIndex(set, workers).appearanceCounts(tau, AStarLS, workers)
				for i := range wantCounts {
					if ixCounts[i] != wantCounts[i] {
						t.Fatalf("seed=%d tau=%v: counts[%d] indexed %d != scan %d",
							seed, tau, i, ixCounts[i], wantCounts[i])
					}
				}
			}
		}
	}
}

// TestIndexSmallClusterFallback: below the index threshold CenterWorkers
// must still agree with the scan (it takes the scan path).
func TestIndexSmallClusterFallback(t *testing.T) {
	set := randomSet(9, indexMinSize-1)
	want := argmaxFirst(AppearanceCounts(set, 3, AStarLS))
	got, err := CenterWorkers(set, 3, AStarLS, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("small-cluster center %d != scan %d", got, want)
	}
}

// TestIndexDirectMethodKeepsScan: the DirectGED baseline must produce
// identical results through CenterWorkers (which deliberately does not
// index it).
func TestIndexDirectMethodKeepsScan(t *testing.T) {
	set := randomSet(11, 10)
	want := argmaxFirst(AppearanceCounts(set, 3, DirectGED))
	got, err := CenterWorkers(set, 3, DirectGED, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("direct center %d != scan %d", got, want)
	}
}
