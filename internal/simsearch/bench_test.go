package simsearch

import (
	"testing"

	"github.com/streamtune/streamtune/internal/dag"
)

const benchTau = 5

func benchSet(b *testing.B) []*dag.Graph {
	b.Helper()
	n := 48
	if testing.Short() {
		n = 12
	}
	return randomSet(31, n)
}

// BenchmarkSimilarScan is the linear-scan similarity search (per-pair
// filter-and-verify, no index).
func BenchmarkSimilarScan(b *testing.B) {
	set := benchSet(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Similar(set[i%len(set)], set, benchTau, AStarLS)
	}
}

// BenchmarkSimilarIndexed is the same queries through the pivot metric
// index (index construction amortized outside the timer).
func BenchmarkSimilarIndexed(b *testing.B) {
	set := benchSet(b)
	ix := NewIndex(set, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.Similar(set[i%len(set)], benchTau, AStarLS)
	}
}

// BenchmarkCenter is the indexed similarity-center computation used by
// K-means cluster updates.
func BenchmarkCenter(b *testing.B) {
	set := benchSet(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := CenterWorkers(set, benchTau, AStarLS, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCenterScan is the seed-pipeline center (linear scan, raw
// bounded search per pair) on the same set.
func BenchmarkCenterScan(b *testing.B) {
	set := benchSet(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := CenterScan(set, benchTau, 0); err != nil {
			b.Fatal(err)
		}
	}
}
