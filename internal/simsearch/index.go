// Metric index for graph similarity search. GED is a metric on DAGs
// (identity, symmetry, triangle inequality — property-tested in
// internal/ged), so a small set of pivot graphs with precomputed exact
// distances prunes most candidates of a threshold query by the triangle
// inequality:
//
//	|d(q,p) - d(c,p)| > tau  =>  d(q,c) > tau   (reject without search)
//	 d(q,p) + d(p,c) <= tau  =>  d(q,c) <= tau  (accept without search)
//
// Candidates the pivots cannot decide fall through to the
// filter-and-verify pipeline of internal/ged. Structurally-identical
// graphs (by canonical fingerprint) share one representative, so
// corpus-scale duplicate DAGs cost one computation each.
package simsearch

import (
	"math"
	"sort"
	"sync/atomic"

	"github.com/streamtune/streamtune/internal/dag"
	"github.com/streamtune/streamtune/internal/ged"
	"github.com/streamtune/streamtune/internal/parallel"
)

// numPivots is the number of pivot graphs per index; farther-first
// selection saturates quickly on dataflow DAG families, so a handful of
// pivots already decides most candidate pairs.
const numPivots = 3

// indexMinSize is the smallest cluster for which CenterWorkers builds an
// index: below it, the pivot-table construction costs more than the
// pairs it prunes.
const indexMinSize = 8

// Index is a pivot-based metric index over a fixed graph set.
type Index struct {
	set  []*dag.Graph
	prep []*ged.Prepared // one prepared view per structural representative

	repOf     []int          // member -> ordinal of its structural representative
	reps      []int          // rep ordinal -> member index of first occurrence
	groupSize []int          // rep ordinal -> number of members sharing the structure
	keyToRep  map[string]int // fingerprint -> rep ordinal
	pivots    []int          // rep ordinals serving as pivots
	pivotDist [][]float64    // [pivot][rep ordinal] exact GED

	stats indexCounters
}

// IndexStats counts how candidate pairs were decided. All fields are
// cumulative over the queries served by the index.
type IndexStats struct {
	// Candidates is the number of (query, representative) pairs
	// examined.
	Candidates uint64
	// PrunedLB is the pairs rejected by the pivot lower bound.
	PrunedLB uint64
	// AcceptedUB is the pairs accepted by the pivot upper bound.
	AcceptedUB uint64
	// Verified is the pairs that fell through to the GED pipeline.
	Verified uint64
}

type indexCounters struct {
	candidates, prunedLB, acceptedUB, verified atomic.Uint64
}

// NewIndex builds the index over set, computing pivot distances with up
// to workers goroutines. The construction is deterministic: pivots are
// chosen farthest-first with ties to the lowest ordinal.
func NewIndex(set []*dag.Graph, workers int) *Index {
	return NewIndexCached(set, workers, nil)
}

// NewIndexCached is NewIndex with the pivot distances served through a
// fingerprint-keyed distance cache, so a caller that rebuilds indexes
// over recurring members (the K-means update loop) computes each
// distinct pivot pair once across all rebuilds. A nil cache uses a
// fresh private one.
func NewIndexCached(set []*dag.Graph, workers int, cache *ged.PairCache) *Index {
	ix := &Index{set: set, keyToRep: make(map[string]int)}
	ix.repOf = make([]int, len(set))
	for i, g := range set {
		key := ged.Fingerprint(g)
		r, ok := ix.keyToRep[key]
		if !ok {
			r = len(ix.reps)
			ix.keyToRep[key] = r
			ix.reps = append(ix.reps, i)
			ix.groupSize = append(ix.groupSize, 0)
			ix.prep = append(ix.prep, ged.Prepare(g))
		}
		ix.repOf[i] = r
		ix.groupSize[r]++
	}

	R := len(ix.reps)
	p := numPivots
	if p > R {
		p = R
	}
	// Farthest-first pivot selection over representatives. minDist[r] is
	// the distance from r to its closest chosen pivot. Pivot rows run
	// through the deduplicating matrix so a shared cache can answer
	// recurring pairs across index rebuilds.
	repGraphs := make([]*dag.Graph, R)
	for r, m := range ix.reps {
		repGraphs[r] = set[m]
	}
	minDist := make([]float64, R)
	for p0 := 0; len(ix.pivots) < p; {
		ix.pivots = append(ix.pivots, p0)
		row := ged.CrossDistancesCached([]*dag.Graph{repGraphs[p0]}, repGraphs, workers, cache)[0]
		ix.pivotDist = append(ix.pivotDist, row)
		next, nextD := -1, -1.0
		for r := 0; r < R; r++ {
			if len(ix.pivots) == 1 || row[r] < minDist[r] {
				minDist[r] = row[r]
			}
			if !ix.isPivot(r) && minDist[r] > nextD {
				next, nextD = r, minDist[r]
			}
		}
		if next < 0 {
			break
		}
		p0 = next
	}
	return ix
}

func (ix *Index) isPivot(r int) bool {
	for _, p := range ix.pivots {
		if p == r {
			return true
		}
	}
	return false
}

// Stats returns a snapshot of the cumulative pruning counters.
func (ix *Index) Stats() IndexStats {
	return IndexStats{
		Candidates: ix.stats.candidates.Load(),
		PrunedLB:   ix.stats.prunedLB.Load(),
		AcceptedUB: ix.stats.acceptedUB.Load(),
		Verified:   ix.stats.verified.Load(),
	}
}

// Similar returns the indices of graphs in the indexed set whose GED to
// the query does not exceed tau (Definition 1), using pivot pruning
// before per-pair verification. The result is identical to the linear
// scan Similar for every method.
func (ix *Index) Similar(query *dag.Graph, tau float64, method Method) []int {
	decisions := ix.decide(query, tau, method)
	var out []int
	for i := range ix.set {
		if decisions[ix.repOf[i]] {
			out = append(out, i)
		}
	}
	return out
}

// decide resolves, per structural representative, whether the query is
// within tau of that structure.
func (ix *Index) decide(query *dag.Graph, tau float64, method Method) []bool {
	R := len(ix.reps)
	// Query-to-pivot distances: free when the query is itself indexed.
	dq := make([]float64, len(ix.pivots))
	var pq *ged.Prepared
	if r, ok := ix.keyToRep[ged.Fingerprint(query)]; ok {
		pq = ix.prep[r]
		for p := range ix.pivots {
			dq[p] = ix.pivotDist[p][r]
		}
	} else {
		pq = ged.Prepare(query)
		for p := range ix.pivots {
			dq[p] = pq.Distance(ix.prep[ix.pivots[p]])
		}
	}
	decisions := make([]bool, R)
	for r := 0; r < R; r++ {
		in, decided := ix.pivotDecide(dq, r, tau)
		if !decided {
			ix.stats.verified.Add(1)
			in = withinTau(pq, ix.prep[r], tau, method)
		}
		decisions[r] = in
	}
	return decisions
}

// pivotDecide applies the triangle inequality against every pivot.
func (ix *Index) pivotDecide(dq []float64, r int, tau float64) (in, decided bool) {
	ix.stats.candidates.Add(1)
	for p := range ix.pivots {
		dpr := ix.pivotDist[p][r]
		diff := dq[p] - dpr
		if diff < 0 {
			diff = -diff
		}
		if diff > tau {
			ix.stats.prunedLB.Add(1)
			return false, true
		}
		if dq[p]+dpr <= tau {
			ix.stats.acceptedUB.Add(1)
			return true, true
		}
	}
	return false, false
}

// Nearest returns the member index nearest to query plus the exact
// distance — identical to a linear exact scan over the set (strict <,
// ties to the first member index) regardless of the band. Candidates
// are examined in ascending pivot-lower-bound order so a tight
// incumbent lands early; a candidate is skipped only when its pivot
// lower bound certifies it cannot beat the incumbent lexicographically,
// and the rest are verified with incumbent-pruned exact searches. A
// non-nil band serves the exact distances it computes through its
// shared cache (harvesting regressor training pairs as a side effect).
func (ix *Index) Nearest(query *dag.Graph, band *ged.Band) (int, float64) {
	if len(ix.set) == 0 {
		return -1, math.Inf(1)
	}
	R := len(ix.reps)
	ix.stats.candidates.Add(uint64(R))
	dq := make([]float64, len(ix.pivots))
	var pq *ged.Prepared
	if r, ok := ix.keyToRep[ged.Fingerprint(query)]; ok {
		pq = ix.prep[r]
		for p := range ix.pivots {
			dq[p] = ix.pivotDist[p][r]
		}
	} else {
		pq = ged.Prepare(query)
		for p := range ix.pivots {
			if band != nil {
				dq[p] = band.Distance(query, ix.set[ix.reps[ix.pivots[p]]])
			} else {
				dq[p] = pq.Distance(ix.prep[ix.pivots[p]])
			}
		}
	}
	// Pivot lower bound per representative: |d(q,p) - d(p,r)| <= d(q,r)
	// for every pivot p by the triangle inequality.
	lb := make([]float64, R)
	order := make([]int, R)
	for r := 0; r < R; r++ {
		order[r] = r
		for p := range ix.pivots {
			diff := dq[p] - ix.pivotDist[p][r]
			if diff < 0 {
				diff = -diff
			}
			if diff > lb[r] {
				lb[r] = diff
			}
		}
	}
	sort.SliceStable(order, func(i, j int) bool { return lb[order[i]] < lb[order[j]] })
	best, bestD := -1, math.Inf(1)
	for _, r := range order {
		// ix.reps[r] is the lowest member index of the structure, so the
		// scan's lexicographic (distance, index) minimum reduces to the
		// minimum of (d_r, reps[r]) over representatives.
		first := ix.reps[r]
		if best >= 0 && (lb[r] > bestD || (lb[r] == bestD && first > best)) {
			ix.stats.prunedLB.Add(1)
			continue
		}
		if best < 0 {
			var d float64
			if band != nil {
				d = band.Distance(query, ix.set[first])
			} else {
				d = pq.Distance(ix.prep[r])
			}
			best, bestD = first, d
			continue
		}
		ix.stats.verified.Add(1)
		within, d := pq.WithinThreshold(ix.prep[r], bestD)
		if within && (d < bestD || (d == bestD && first < best)) {
			best, bestD = first, d
		}
	}
	return best, bestD
}

// Center computes the similarity center (Definition 2) of the indexed
// set: every member's similarity search runs through the pivot table,
// and each distinct structure pair is verified at most once. The result
// is identical to the linear-scan center for every worker count.
func (ix *Index) Center(tau float64, method Method, workers int) int {
	return argmaxFirst(ix.appearanceCounts(tau, method, workers))
}

// appearanceCounts mirrors the scan-path definition: counts[i] is the
// number of members q with ged(q, set[i]) <= tau. Distances depend only
// on structural representatives, so the count reduces to a weighted sum
// over the symmetric rep-pair within-threshold matrix, computed once per
// unordered pair.
func (ix *Index) appearanceCounts(tau float64, method Method, workers int) []int {
	R := len(ix.reps)
	within := make([][]bool, R)
	for a := range within {
		within[a] = make([]bool, R)
		within[a][a] = tau >= 0 // identity: d = 0
	}
	// Upper-triangle pairs, flattened for the worker pool.
	type pair struct{ a, b int }
	var pairs []pair
	for a := 0; a < R; a++ {
		for b := a + 1; b < R; b++ {
			pairs = append(pairs, pair{a, b})
		}
	}
	dq := make([][]float64, R)
	for r := 0; r < R; r++ {
		dq[r] = make([]float64, len(ix.pivots))
		for p := range ix.pivots {
			dq[r][p] = ix.pivotDist[p][r]
		}
	}
	res, _ := parallel.Map(len(pairs), workers, func(i int) (bool, error) {
		pr := pairs[i]
		in, decided := ix.pivotDecide(dq[pr.a], pr.b, tau)
		if !decided {
			ix.stats.verified.Add(1)
			in = withinTau(ix.prep[pr.a], ix.prep[pr.b], tau, method)
		}
		return in, nil
	})
	for i, pr := range pairs {
		within[pr.a][pr.b] = res[i]
		within[pr.b][pr.a] = res[i]
	}
	counts := make([]int, len(ix.set))
	for i := range ix.set {
		r := ix.repOf[i]
		for a := 0; a < R; a++ {
			if within[r][a] {
				counts[i] += ix.groupSize[a]
			}
		}
	}
	return counts
}
