// Package simsearch implements graph similarity search over dataflow
// DAGs (Definition 1 of the StreamTune paper) and the similarity center
// of a DAG cluster (Definition 2): the DAG appearing most often in the
// threshold-based similarity search results of all cluster members — an
// inexpensive approximation of the median graph used as the K-means
// cluster representative.
package simsearch

import (
	"fmt"

	"github.com/streamtune/streamtune/internal/dag"
	"github.com/streamtune/streamtune/internal/ged"
	"github.com/streamtune/streamtune/internal/parallel"
)

// Method selects the GED verification used by the search.
type Method int

// Search methods.
const (
	// AStarLS uses the label-set lower bound with threshold pruning
	// (the AStar+-LSa approach).
	AStarLS Method = iota
	// DirectGED computes full distances without bounds — the baseline
	// of Fig. 11b.
	DirectGED
)

// String returns the method name.
func (m Method) String() string {
	switch m {
	case AStarLS:
		return "astar+-lsa"
	case DirectGED:
		return "direct-ged"
	}
	return fmt.Sprintf("method(%d)", int(m))
}

// Similar returns the indices of graphs in set whose GED to the query
// does not exceed tau (Definition 1). The query's solver view is built
// once and shared across all candidate pairs.
func Similar(query *dag.Graph, set []*dag.Graph, tau float64, method Method) []int {
	return similarPrepared(ged.Prepare(query), ged.PrepareAll(set), tau, method)
}

func similarPrepared(pq *ged.Prepared, set []*ged.Prepared, tau float64, method Method) []int {
	var out []int
	for i, p := range set {
		if withinTau(pq, p, tau, method) {
			out = append(out, i)
		}
	}
	return out
}

func withinTau(a, b *ged.Prepared, tau float64, method Method) bool {
	switch method {
	case DirectGED:
		return a.DistanceDirect(b) <= tau
	default:
		ok, _ := a.WithinThreshold(b, tau)
		return ok
	}
}

// Center computes the similarity center of the cluster (Definition 2):
// the member with the highest appearance count across all members'
// similarity searches at threshold tau. Ties break to the lowest index.
// It returns the index of the center within the cluster slice.
func Center(cluster []*dag.Graph, tau float64, method Method) (int, error) {
	return CenterWorkers(cluster, tau, method, 1)
}

// CenterWorkers is Center with the per-member similarity searches fanned
// out across up to workers goroutines. GED is a pure function of the two
// graphs, so the result is identical for every worker count.
//
// For the bounded-search method on non-trivial clusters the searches run
// through a pivot metric index (see Index): the triangle inequality
// decides most member pairs from a handful of precomputed distances, and
// structurally-identical members collapse onto one representative. The
// DirectGED method keeps the plain scan — it is the "directly computing
// GED" baseline of Fig. 11b and must not be quietly accelerated.
func CenterWorkers(cluster []*dag.Graph, tau float64, method Method, workers int) (int, error) {
	return CenterWorkersCached(cluster, tau, method, workers, nil)
}

// CenterWorkersCached is CenterWorkers with the index pivot distances
// served through a shared fingerprint-keyed cache, for callers that
// compute centers of overlapping clusters repeatedly (K-means).
func CenterWorkersCached(cluster []*dag.Graph, tau float64, method Method, workers int, cache *ged.PairCache) (int, error) {
	if len(cluster) == 0 {
		return -1, fmt.Errorf("simsearch: empty cluster")
	}
	if method == AStarLS && len(cluster) >= indexMinSize {
		return NewIndexCached(cluster, workers, cache).Center(tau, method, workers), nil
	}
	counts, err := appearanceCounts(cluster, tau, method, workers)
	if err != nil {
		return -1, err
	}
	return argmaxFirst(counts), nil
}

// CenterScan is the pre-index linear-scan center with the raw
// (filter-free) threshold search per pair — the seed pipeline, kept as
// the differential-test reference and benchmark baseline.
func CenterScan(cluster []*dag.Graph, tau float64, workers int) (int, error) {
	if len(cluster) == 0 {
		return -1, fmt.Errorf("simsearch: empty cluster")
	}
	hits, err := parallel.Map(len(cluster), workers, func(q int) ([]int, error) {
		var out []int
		for i, g := range cluster {
			if ok, _ := ged.WithinThresholdSearchOnly(cluster[q], g, tau); ok {
				out = append(out, i)
			}
		}
		return out, nil
	})
	if err != nil {
		return -1, err
	}
	counts := make([]int, len(cluster))
	for _, hit := range hits {
		for _, idx := range hit {
			counts[idx]++
		}
	}
	return argmaxFirst(counts), nil
}

// argmaxFirst returns the index of the maximum count, ties to the lowest
// index (the Definition 2 tie-break shared by every center path).
func argmaxFirst(counts []int) int {
	best := 0
	for i, c := range counts {
		if c > counts[best] {
			best = i
		}
	}
	return best
}

// AppearanceCounts returns, for every cluster member, how many members'
// similarity searches it appears in at threshold tau. Exposed for tests
// and diagnostics.
func AppearanceCounts(cluster []*dag.Graph, tau float64, method Method) []int {
	counts, _ := appearanceCounts(cluster, tau, method, 1)
	return counts
}

// appearanceCounts runs every member's similarity search (in parallel
// when workers > 1) and joins the per-query hit lists into appearance
// counts on the calling goroutine, keeping the tally order-independent.
// Solver views are prepared once per member, not once per pair.
func appearanceCounts(cluster []*dag.Graph, tau float64, method Method, workers int) ([]int, error) {
	prep := ged.PrepareAll(cluster)
	hits, err := parallel.Map(len(cluster), workers, func(q int) ([]int, error) {
		return similarPrepared(prep[q], prep, tau, method), nil
	})
	if err != nil {
		return nil, err
	}
	counts := make([]int, len(cluster))
	for _, hit := range hits {
		for _, idx := range hit {
			counts[idx]++
		}
	}
	return counts, nil
}
