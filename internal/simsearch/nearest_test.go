package simsearch

import (
	"math"
	"math/rand"
	"testing"

	"github.com/streamtune/streamtune/internal/ged"
)

// TestIndexNearestMatchesScan proves the pivot-pruned nearest query is
// identical to the linear exact scan — index and distance — with and
// without a learned band, for member and non-member queries.
func TestIndexNearestMatchesScan(t *testing.T) {
	trials := 40
	if testing.Short() {
		trials = 15
	}
	set := randomSet(21, 24)
	ix := NewIndex(set, 2)
	band := ged.NewBand(nil, ged.BandOptions{MinTrain: 12, Epochs: 40})
	rng := rand.New(rand.NewSource(22))
	queries := randomSet(23, trials)
	for trial, q := range queries {
		if rng.Float64() < 0.3 {
			// Member query: pivot distances come free from the table.
			q = set[rng.Intn(len(set))]
		}
		wantC, wantD := -1, math.Inf(1)
		for i, g := range set {
			if d := ged.Distance(q, g); d < wantD {
				wantC, wantD = i, d
			}
		}
		gotC, gotD := ix.Nearest(q, nil)
		if gotC != wantC || gotD != wantD {
			t.Fatalf("trial %d: Nearest(nil band) = (%d, %v), scan (%d, %v)", trial, gotC, gotD, wantC, wantD)
		}
		gotC, gotD = ix.Nearest(q, band)
		if gotC != wantC || gotD != wantD {
			t.Fatalf("trial %d: Nearest(band) = (%d, %v), scan (%d, %v)", trial, gotC, gotD, wantC, wantD)
		}
	}
	if st := ix.Stats(); st.PrunedLB == 0 {
		t.Fatalf("no pivot lower-bound prunes across %d nearest queries: %+v", trials, st)
	}
}

// TestIndexNearestEmpty covers the degenerate set.
func TestIndexNearestEmpty(t *testing.T) {
	ix := NewIndex(nil, 1)
	if c, d := ix.Nearest(randomSet(1, 1)[0], nil); c != -1 || !math.IsInf(d, 1) {
		t.Fatalf("Nearest over empty set = (%d, %v)", c, d)
	}
}
