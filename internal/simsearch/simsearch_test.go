package simsearch

import (
	"fmt"
	"testing"

	"github.com/streamtune/streamtune/internal/dag"
)

// chainOf builds a linear chain with the given middle operator types.
func chainOf(name string, mids ...dag.OpType) *dag.Graph {
	g := dag.New(name)
	g.MustAddOperator(&dag.Operator{ID: "s", Type: dag.Source})
	prev := "s"
	for i, ty := range mids {
		id := fmt.Sprintf("m%d", i)
		g.MustAddOperator(&dag.Operator{ID: id, Type: ty})
		g.MustAddEdge(prev, id)
		prev = id
	}
	g.MustAddOperator(&dag.Operator{ID: "k", Type: dag.Sink})
	g.MustAddEdge(prev, "k")
	return g
}

func family() []*dag.Graph {
	return []*dag.Graph{
		chainOf("a", dag.Map),                                          // 3 nodes
		chainOf("b", dag.Filter),                                       // 3 nodes, 1 relabel from a
		chainOf("c", dag.Map, dag.Filter),                              // 4 nodes
		chainOf("d", dag.Map, dag.Filter, dag.Map),                     // 5 nodes
		chainOf("e", dag.Join, dag.Join, dag.Join, dag.Join, dag.Join), // far away
	}
}

func TestSimilarFindsCloseGraphs(t *testing.T) {
	set := family()
	got := Similar(set[0], set, 1, AStarLS)
	// Graph a itself (d=0) and b (one relabel) must qualify at tau=1.
	want := map[int]bool{0: true, 1: true}
	if len(got) < 2 {
		t.Fatalf("Similar = %v, want at least a and b", got)
	}
	for _, i := range got {
		if !want[i] && i != 2 {
			t.Errorf("unexpected member %d at tau=1", i)
		}
	}
}

func TestSimilarMethodsAgree(t *testing.T) {
	set := family()
	for _, q := range set {
		fast := Similar(q, set, 3, AStarLS)
		slow := Similar(q, set, 3, DirectGED)
		if len(fast) != len(slow) {
			t.Fatalf("methods disagree for %s: %v vs %v", q.Name, fast, slow)
		}
		for i := range fast {
			if fast[i] != slow[i] {
				t.Fatalf("methods disagree for %s: %v vs %v", q.Name, fast, slow)
			}
		}
	}
}

func TestCenterPicksCentralGraph(t *testing.T) {
	set := family()
	ci, err := Center(set, 3, AStarLS)
	if err != nil {
		t.Fatal(err)
	}
	// The join-chain outlier (index 4) must never be the center.
	if ci == 4 {
		t.Fatalf("center = outlier %d", ci)
	}
	counts := AppearanceCounts(set, 3, AStarLS)
	for i, c := range counts {
		if c > counts[ci] {
			t.Fatalf("center %d has count %d but %d has %d", ci, counts[ci], i, c)
		}
	}
}

func TestCenterEmptyCluster(t *testing.T) {
	if _, err := Center(nil, 3, AStarLS); err == nil {
		t.Fatal("expected empty-cluster error")
	}
}

func TestCenterSingleton(t *testing.T) {
	set := []*dag.Graph{chainOf("solo", dag.Map)}
	ci, err := Center(set, 1, AStarLS)
	if err != nil || ci != 0 {
		t.Fatalf("singleton center = (%d, %v), want (0, nil)", ci, err)
	}
}

func TestMethodString(t *testing.T) {
	if AStarLS.String() != "astar+-lsa" || DirectGED.String() != "direct-ged" {
		t.Fatal("method names wrong")
	}
	if Method(9).String() == "" {
		t.Fatal("unknown method should still render")
	}
}
