package dag

import (
	"encoding/json"
	"fmt"
)

// graphJSON is the serialized form of a Graph.
type graphJSON struct {
	Name      string         `json:"name"`
	Operators []operatorJSON `json:"operators"`
	Edges     [][2]string    `json:"edges"`
}

type operatorJSON struct {
	ID            string  `json:"id"`
	Type          int     `json:"type"`
	WindowType    int     `json:"window_type,omitempty"`
	WindowPolicy  int     `json:"window_policy,omitempty"`
	WindowLength  float64 `json:"window_length,omitempty"`
	SlidingLength float64 `json:"sliding_length,omitempty"`
	JoinKeyClass  int     `json:"join_key_class,omitempty"`
	AggClass      int     `json:"agg_class,omitempty"`
	AggKeyClass   int     `json:"agg_key_class,omitempty"`
	AggFunc       int     `json:"agg_func,omitempty"`
	TupleWidthIn  float64 `json:"tuple_width_in,omitempty"`
	TupleWidthOut float64 `json:"tuple_width_out,omitempty"`
	TupleDataType int     `json:"tuple_data_type,omitempty"`
	SourceRate    float64 `json:"source_rate,omitempty"`
	Selectivity   float64 `json:"selectivity,omitempty"`
	CostFactor    float64 `json:"cost_factor,omitempty"`
}

// MarshalJSON implements json.Marshaler.
func (g *Graph) MarshalJSON() ([]byte, error) {
	gj := graphJSON{Name: g.Name}
	for _, op := range g.ops {
		gj.Operators = append(gj.Operators, operatorJSON{
			ID: op.ID, Type: int(op.Type),
			WindowType: int(op.WindowType), WindowPolicy: int(op.WindowPolicy),
			WindowLength: op.WindowLength, SlidingLength: op.SlidingLength,
			JoinKeyClass: int(op.JoinKeyClass), AggClass: int(op.AggClass),
			AggKeyClass: int(op.AggKeyClass), AggFunc: int(op.AggFunc),
			TupleWidthIn: op.TupleWidthIn, TupleWidthOut: op.TupleWidthOut,
			TupleDataType: int(op.TupleDataType), SourceRate: op.SourceRate,
			Selectivity: op.Selectivity, CostFactor: op.CostFactor,
		})
	}
	for i := range g.adj {
		for _, d := range g.adj[i] {
			gj.Edges = append(gj.Edges, [2]string{g.ops[i].ID, g.ops[d].ID})
		}
	}
	return json.Marshal(gj)
}

// UnmarshalJSON implements json.Unmarshaler.
func (g *Graph) UnmarshalJSON(data []byte) error {
	var gj graphJSON
	if err := json.Unmarshal(data, &gj); err != nil {
		return fmt.Errorf("dag: decode graph: %w", err)
	}
	*g = *New(gj.Name)
	for _, oj := range gj.Operators {
		if err := oj.checkEnums(); err != nil {
			return err
		}
		op := &Operator{
			ID: oj.ID, Type: OpType(oj.Type),
			WindowType: WindowType(oj.WindowType), WindowPolicy: WindowPolicy(oj.WindowPolicy),
			WindowLength: oj.WindowLength, SlidingLength: oj.SlidingLength,
			JoinKeyClass: KeyClass(oj.JoinKeyClass), AggClass: KeyClass(oj.AggClass),
			AggKeyClass: KeyClass(oj.AggKeyClass), AggFunc: AggFunc(oj.AggFunc),
			TupleWidthIn: oj.TupleWidthIn, TupleWidthOut: oj.TupleWidthOut,
			TupleDataType: TupleType(oj.TupleDataType), SourceRate: oj.SourceRate,
			Selectivity: oj.Selectivity, CostFactor: oj.CostFactor,
		}
		if err := g.AddOperator(op); err != nil {
			return err
		}
	}
	for _, e := range gj.Edges {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			return err
		}
	}
	return nil
}

// checkEnums rejects out-of-range enum values so a decoded graph can
// never hold an operator state no builder could construct.
func (oj *operatorJSON) checkEnums() error {
	bad := func(field string, v int) error {
		return fmt.Errorf("dag: operator %q: invalid %s %d", oj.ID, field, v)
	}
	if !OpType(oj.Type).Valid() {
		return bad("type", oj.Type)
	}
	if !WindowType(oj.WindowType).Valid() {
		return bad("window_type", oj.WindowType)
	}
	if !WindowPolicy(oj.WindowPolicy).Valid() {
		return bad("window_policy", oj.WindowPolicy)
	}
	if !KeyClass(oj.JoinKeyClass).Valid() {
		return bad("join_key_class", oj.JoinKeyClass)
	}
	if !KeyClass(oj.AggClass).Valid() {
		return bad("agg_class", oj.AggClass)
	}
	if !KeyClass(oj.AggKeyClass).Valid() {
		return bad("agg_key_class", oj.AggKeyClass)
	}
	if !AggFunc(oj.AggFunc).Valid() {
		return bad("agg_func", oj.AggFunc)
	}
	if !TupleType(oj.TupleDataType).Valid() {
		return bad("tuple_data_type", oj.TupleDataType)
	}
	return nil
}
