package dag

import "math"

// Feature-scaling bounds. Numeric features are min-max scaled into [0,1]
// with these assumed domain bounds (values are clamped), mirroring the
// paper's min-max uniform scaling of numeric operator features.
const (
	maxWindowLength = 3600    // seconds or records
	maxTupleWidth   = 1024    // bytes
	maxSourceRate   = 2e7     // records/second
	maxLogRate      = 7.30103 // log10(1 + maxSourceRate)
)

// FeatureDim is the length of the encoded static+dynamic feature vector
// produced by FeatureVector. Parallelism is deliberately excluded: it is
// fused into node states separately (Eq. 3 of the paper).
var FeatureDim = featureDim()

func featureDim() int {
	return int(numOpTypes) + // operator type one-hot
		int(numWindowTypes) +
		int(numWindowPolicies) +
		3*int(numKeyClasses) + // join key, agg class, agg key class
		int(numAggFuncs) +
		int(numTupleTypes) +
		4 + // window length, sliding length, tuple width in, tuple width out
		1 // source rate (log-scaled)
}

// FeatureVector encodes the operator's static features and its source
// rate into a fixed-length vector: one-hot for categorical features,
// min-max scaling into [0,1] for numeric ones, and log-scaled source rate.
func FeatureVector(op *Operator) []float64 {
	v := make([]float64, 0, FeatureDim)
	return FeatureVectorInto(op, v)
}

// FeatureVectorInto appends the feature encoding of op to dst and
// returns the extended slice, letting batch encoders fill one flat
// buffer without a per-operator allocation.
func FeatureVectorInto(op *Operator, dst []float64) []float64 {
	v := dst
	v = appendOneHot(v, int(op.Type), int(numOpTypes))
	v = appendOneHot(v, int(op.WindowType), int(numWindowTypes))
	v = appendOneHot(v, int(op.WindowPolicy), int(numWindowPolicies))
	v = appendOneHot(v, int(op.JoinKeyClass), int(numKeyClasses))
	v = appendOneHot(v, int(op.AggClass), int(numKeyClasses))
	v = appendOneHot(v, int(op.AggKeyClass), int(numKeyClasses))
	v = appendOneHot(v, int(op.AggFunc), int(numAggFuncs))
	v = appendOneHot(v, int(op.TupleDataType), int(numTupleTypes))
	rate := op.SourceRate
	if rate < 0 || math.IsNaN(rate) {
		rate = 0
	}
	v = append(v,
		clamp01(op.WindowLength/maxWindowLength),
		clamp01(op.SlidingLength/maxWindowLength),
		clamp01(op.TupleWidthIn/maxTupleWidth),
		clamp01(op.TupleWidthOut/maxTupleWidth),
		clamp01(math.Log10(1+rate)/maxLogRate),
	)
	return v
}

// NormalizeParallelism maps a parallelism degree into [0,1] given the
// physical maximum, for use as the fused dynamic feature.
func NormalizeParallelism(p, pmax int) float64 {
	if pmax <= 0 {
		return 0
	}
	return clamp01(float64(p) / float64(pmax))
}

// GraphFeatures encodes every operator of g, in insertion order.
func GraphFeatures(g *Graph) [][]float64 {
	out := make([][]float64, g.NumOperators())
	for i, op := range g.Operators() {
		out[i] = FeatureVector(op)
	}
	return out
}

func appendOneHot(v []float64, idx, n int) []float64 {
	for i := 0; i < n; i++ {
		if i == idx {
			v = append(v, 1)
		} else {
			v = append(v, 0)
		}
	}
	return v
}

func clamp01(x float64) float64 {
	switch {
	case math.IsNaN(x), x < 0:
		return 0
	case x > 1:
		return 1
	}
	return x
}
