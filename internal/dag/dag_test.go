package dag

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func chain(t *testing.T, types ...OpType) *Graph {
	t.Helper()
	g := New("chain")
	prev := ""
	for i, ty := range types {
		id := ty.String() + string(rune('0'+i))
		op := &Operator{ID: id, Type: ty, Selectivity: 1}
		if ty == Source {
			op.SourceRate = 1000
		}
		if err := g.AddOperator(op); err != nil {
			t.Fatalf("AddOperator(%s): %v", id, err)
		}
		if prev != "" {
			if err := g.AddEdge(prev, id); err != nil {
				t.Fatalf("AddEdge(%s, %s): %v", prev, id, err)
			}
		}
		prev = id
	}
	return g
}

func TestAddOperatorDuplicate(t *testing.T) {
	g := New("g")
	if err := g.AddOperator(&Operator{ID: "a", Type: Source}); err != nil {
		t.Fatal(err)
	}
	if err := g.AddOperator(&Operator{ID: "a", Type: Map}); err == nil {
		t.Fatal("expected duplicate-ID error")
	}
}

func TestAddOperatorEmptyID(t *testing.T) {
	g := New("g")
	if err := g.AddOperator(&Operator{Type: Source}); err == nil {
		t.Fatal("expected empty-ID error")
	}
	if err := g.AddOperator(nil); err == nil {
		t.Fatal("expected nil-operator error")
	}
}

func TestAddEdgeErrors(t *testing.T) {
	g := chain(t, Source, Map)
	if err := g.AddEdge("nope", "map1"); err == nil {
		t.Fatal("expected unknown-from error")
	}
	if err := g.AddEdge("source0", "nope"); err == nil {
		t.Fatal("expected unknown-to error")
	}
	if err := g.AddEdge("map1", "map1"); err == nil {
		t.Fatal("expected self-edge error")
	}
	if err := g.AddEdge("source0", "map1"); err == nil {
		t.Fatal("expected duplicate-edge error")
	}
}

func TestTopoOrderChain(t *testing.T) {
	g := chain(t, Source, Map, Filter, Sink)
	order, err := g.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != 4 {
		t.Fatalf("topo order length = %d, want 4", len(order))
	}
	pos := make([]int, 4)
	for p, i := range order {
		pos[i] = p
	}
	for i := 0; i < 3; i++ {
		if pos[i] >= pos[i+1] {
			t.Fatalf("operator %d not before %d in topo order %v", i, i+1, order)
		}
	}
}

func TestTopoOrderCycle(t *testing.T) {
	g := New("cyc")
	g.MustAddOperator(&Operator{ID: "a", Type: Map})
	g.MustAddOperator(&Operator{ID: "b", Type: Map})
	g.MustAddEdge("a", "b")
	g.MustAddEdge("b", "a")
	if _, err := g.TopoOrder(); err == nil {
		t.Fatal("expected cycle error")
	}
}

func TestValidate(t *testing.T) {
	tests := []struct {
		name    string
		build   func() *Graph
		wantErr bool
	}{
		{"valid chain", func() *Graph {
			g := New("ok")
			g.MustAddOperator(&Operator{ID: "s", Type: Source, SourceRate: 10})
			g.MustAddOperator(&Operator{ID: "m", Type: Map})
			g.MustAddEdge("s", "m")
			return g
		}, false},
		{"empty", func() *Graph { return New("empty") }, true},
		{"no source", func() *Graph {
			g := New("nosrc")
			g.MustAddOperator(&Operator{ID: "m", Type: Map})
			return g
		}, true},
		{"source with upstream", func() *Graph {
			g := New("bad")
			g.MustAddOperator(&Operator{ID: "m", Type: Map})
			g.MustAddOperator(&Operator{ID: "s", Type: Source})
			g.MustAddOperator(&Operator{ID: "s2", Type: Source})
			g.MustAddEdge("s2", "m")
			g.MustAddEdge("m", "s")
			return g
		}, true},
		{"unreachable", func() *Graph {
			g := New("unreach")
			g.MustAddOperator(&Operator{ID: "s", Type: Source})
			g.MustAddOperator(&Operator{ID: "m", Type: Map})
			g.MustAddOperator(&Operator{ID: "x", Type: Map})
			g.MustAddEdge("s", "m")
			return g
		}, true},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.build().Validate()
			if (err != nil) != tc.wantErr {
				t.Fatalf("Validate() error = %v, wantErr = %v", err, tc.wantErr)
			}
		})
	}
}

func TestSourcesSinksFirstLevel(t *testing.T) {
	// Two sources joining into one join, then a sink.
	g := New("join")
	g.MustAddOperator(&Operator{ID: "s1", Type: Source, SourceRate: 1})
	g.MustAddOperator(&Operator{ID: "s2", Type: Source, SourceRate: 1})
	g.MustAddOperator(&Operator{ID: "f1", Type: Filter})
	g.MustAddOperator(&Operator{ID: "f2", Type: Filter})
	g.MustAddOperator(&Operator{ID: "j", Type: Join})
	g.MustAddOperator(&Operator{ID: "k", Type: Sink})
	g.MustAddEdge("s1", "f1")
	g.MustAddEdge("s2", "f2")
	g.MustAddEdge("f1", "j")
	g.MustAddEdge("f2", "j")
	g.MustAddEdge("j", "k")

	if got := len(g.Sources()); got != 2 {
		t.Errorf("Sources() = %d, want 2", got)
	}
	sinks := g.Sinks()
	if len(sinks) != 1 || g.OperatorAt(sinks[0]).ID != "k" {
		t.Errorf("Sinks() = %v, want [k]", sinks)
	}
	fl := g.FirstLevelDownstream()
	if len(fl) != 2 {
		t.Errorf("FirstLevelDownstream() = %v, want two filters", fl)
	}
	for _, i := range fl {
		if g.OperatorAt(i).Type != Filter {
			t.Errorf("first-level op %s is %s, want filter", g.OperatorAt(i).ID, g.OperatorAt(i).Type)
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	g := chain(t, Source, Map, Sink)
	c := g.Clone()
	c.Operator("map1").TupleWidthIn = 99
	c.MustAddOperator(&Operator{ID: "extra", Type: Filter})
	if g.Operator("map1").TupleWidthIn == 99 {
		t.Error("clone shares operator storage with original")
	}
	if g.Operator("extra") != nil {
		t.Error("clone shares node list with original")
	}
	if g.NumOperators() != 3 || c.NumOperators() != 4 {
		t.Errorf("sizes: orig=%d clone=%d", g.NumOperators(), c.NumOperators())
	}
}

func TestSetAndScaleSourceRates(t *testing.T) {
	g := chain(t, Source, Map)
	if err := g.SetSourceRates(map[string]float64{"source0": 500}); err != nil {
		t.Fatal(err)
	}
	if got := g.Operator("source0").SourceRate; got != 500 {
		t.Fatalf("rate = %v, want 500", got)
	}
	g.ScaleSourceRates(3)
	if got := g.Operator("source0").SourceRate; got != 1500 {
		t.Fatalf("scaled rate = %v, want 1500", got)
	}
	if err := g.SetSourceRates(map[string]float64{"map1": 1}); err == nil {
		t.Fatal("expected not-a-source error")
	}
	if err := g.SetSourceRates(map[string]float64{"zzz": 1}); err == nil {
		t.Fatal("expected unknown-source error")
	}
}

func TestDefaultSelectivityAndCost(t *testing.T) {
	g := New("g")
	g.MustAddOperator(&Operator{ID: "a", Type: Map})
	op := g.Operator("a")
	if op.Selectivity != 1 || op.CostFactor != 1 {
		t.Fatalf("defaults = (%v, %v), want (1, 1)", op.Selectivity, op.CostFactor)
	}
}

func TestFeatureVectorDim(t *testing.T) {
	op := &Operator{
		ID: "w", Type: WindowOp, WindowType: Sliding, WindowPolicy: TimePolicy,
		WindowLength: 60, SlidingLength: 10, JoinKeyClass: IntKey,
		AggClass: FloatKey, AggKeyClass: StringKey, AggFunc: AggAvg,
		TupleWidthIn: 128, TupleWidthOut: 64, TupleDataType: JSONTuple,
		SourceRate: 0,
	}
	v := FeatureVector(op)
	if len(v) != FeatureDim {
		t.Fatalf("len(FeatureVector) = %d, want FeatureDim = %d", len(v), FeatureDim)
	}
	for i, x := range v {
		if x < 0 || x > 1 {
			t.Errorf("feature %d = %v outside [0,1]", i, x)
		}
	}
}

func TestFeatureVectorDistinguishesTypes(t *testing.T) {
	a := FeatureVector(&Operator{ID: "a", Type: Filter})
	b := FeatureVector(&Operator{ID: "b", Type: Join})
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("filter and join encode to identical vectors")
	}
}

func TestNormalizeParallelism(t *testing.T) {
	if got := NormalizeParallelism(50, 100); got != 0.5 {
		t.Errorf("NormalizeParallelism(50,100) = %v, want 0.5", got)
	}
	if got := NormalizeParallelism(200, 100); got != 1 {
		t.Errorf("clamped = %v, want 1", got)
	}
	if got := NormalizeParallelism(1, 0); got != 0 {
		t.Errorf("pmax=0 = %v, want 0", got)
	}
}

// Property: feature vectors are always FeatureDim long with entries in
// [0,1], regardless of the (possibly nonsensical) operator contents.
func TestFeatureVectorProperty(t *testing.T) {
	f := func(ty uint8, wl, sl, twi, two, rate float64) bool {
		op := &Operator{
			ID:           "x",
			Type:         OpType(int(ty) % NumOpTypes()),
			WindowLength: wl, SlidingLength: sl,
			TupleWidthIn: twi, TupleWidthOut: two,
			SourceRate: rate,
		}
		v := FeatureVector(op)
		if len(v) != FeatureDim {
			return false
		}
		for _, x := range v {
			if x < 0 || x > 1 || x != x {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(7))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	g := New("rt")
	g.MustAddOperator(&Operator{ID: "s", Type: Source, SourceRate: 1234, Selectivity: 1, CostFactor: 2})
	g.MustAddOperator(&Operator{
		ID: "w", Type: WindowJoin, WindowType: Tumbling, WindowPolicy: TimePolicy,
		WindowLength: 30, JoinKeyClass: StringKey, TupleWidthIn: 100, TupleWidthOut: 50,
		Selectivity: 0.4, CostFactor: 1,
	})
	g.MustAddEdge("s", "w")

	data, err := json.Marshal(g)
	if err != nil {
		t.Fatal(err)
	}
	var back Graph
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Name != "rt" || back.NumOperators() != 2 || back.NumEdges() != 1 {
		t.Fatalf("round trip mismatch: %s", back.String())
	}
	w := back.Operator("w")
	if w == nil || w.Type != WindowJoin || w.WindowLength != 30 || w.Selectivity != 0.4 {
		t.Fatalf("operator w corrupted: %+v", w)
	}
	s := back.Operator("s")
	if s.SourceRate != 1234 || s.CostFactor != 2 {
		t.Fatalf("operator s corrupted: %+v", s)
	}
}

func TestJSONRejectsUnknownEnums(t *testing.T) {
	// Each enum field must be range-checked on decode: a raw JSON graph
	// with an out-of-range value must never construct an operator state
	// no builder could produce.
	cases := []struct {
		field string
		body  string
	}{
		{"type", `"type": 99`},
		{"type", `"type": -1`},
		{"window_type", `"window_type": 7`},
		{"window_policy", `"window_policy": 5`},
		{"join_key_class", `"join_key_class": 9`},
		{"agg_class", `"agg_class": 9`},
		{"agg_key_class", `"agg_key_class": -2`},
		{"agg_func", `"agg_func": 42`},
		{"tuple_data_type", `"tuple_data_type": 3`},
	}
	for _, c := range cases {
		doc := fmt.Sprintf(`{"name":"bad","operators":[{"id":"x",%s}],"edges":[]}`, c.body)
		var g Graph
		err := json.Unmarshal([]byte(doc), &g)
		if err == nil {
			t.Errorf("decode with bad %s accepted", c.field)
			continue
		}
		if !strings.Contains(err.Error(), c.field) {
			t.Errorf("decode with bad %s: error %q does not name the field", c.field, err)
		}
	}

	// In-range values at the top of each enum still decode.
	ok := `{"name":"ok","operators":[
		{"id":"s","type":0,"source_rate":1},
		{"id":"x","type":8,"window_type":2,"window_policy":2,"window_length":10,"sliding_length":5,
		 "join_key_class":3,"tuple_data_type":2},
		{"id":"k","type":1}],
		"edges":[["s","x"],["x","k"]]}`
	var g Graph
	if err := json.Unmarshal([]byte(ok), &g); err != nil {
		t.Fatalf("decode of max in-range enums failed: %v", err)
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("decoded graph invalid: %v", err)
	}
}

func TestEnumStrings(t *testing.T) {
	cases := []struct {
		got, want string
	}{
		{Filter.String(), "filter"},
		{WindowJoin.String(), "windowjoin"},
		{OpType(99).String(), "optype(99)"},
		{Tumbling.String(), "tumbling"},
		{CountPolicy.String(), "count"},
		{StringKey.String(), "string"},
		{AggAvg.String(), "avg"},
		{JSONTuple.String(), "json"},
	}
	for _, c := range cases {
		if c.got != c.want {
			t.Errorf("String() = %q, want %q", c.got, c.want)
		}
	}
}
