// Package dag models logical dataflow DAGs for stream processing jobs.
//
// A Graph holds operators (nodes) and directed data-dependency edges.
// Operators carry the static features of Table I in the StreamTune paper
// plus the dynamic source-rate feature. The package also provides
// deterministic feature encoding (one-hot for categorical features,
// min-max scaling for numeric ones) used by the GNN encoder.
package dag

import (
	"fmt"
	"sort"
)

// OpType identifies the computational role of an operator.
type OpType int

// Operator types. Source and Sink delimit the dataflow; the remaining
// types are the streaming operators referenced by the paper's workloads
// (Nexmark Q1-Q8 and the PQP query templates).
const (
	Source OpType = iota
	Sink
	Map
	Filter
	FlatMap
	Join
	Aggregate
	WindowOp
	WindowJoin
	numOpTypes
)

var opTypeNames = [...]string{
	Source: "source", Sink: "sink", Map: "map", Filter: "filter",
	FlatMap: "flatmap", Join: "join", Aggregate: "aggregate",
	WindowOp: "window", WindowJoin: "windowjoin",
}

// String returns the lower-case name of the operator type.
func (t OpType) String() string {
	if t < 0 || int(t) >= len(opTypeNames) {
		return fmt.Sprintf("optype(%d)", int(t))
	}
	return opTypeNames[t]
}

// NumOpTypes reports the number of distinct operator types, used for
// one-hot encoding.
func NumOpTypes() int { return int(numOpTypes) }

// Valid reports whether t is a defined operator type.
func (t OpType) Valid() bool { return t >= 0 && t < numOpTypes }

// WindowType is the window shifting strategy.
type WindowType int

// Window shifting strategies.
const (
	NoWindow WindowType = iota
	Tumbling
	Sliding
	numWindowTypes
)

// Valid reports whether t is a defined window type.
func (t WindowType) Valid() bool { return t >= 0 && t < numWindowTypes }

// String returns the name of the window type.
func (t WindowType) String() string {
	switch t {
	case NoWindow:
		return "none"
	case Tumbling:
		return "tumbling"
	case Sliding:
		return "sliding"
	}
	return fmt.Sprintf("windowtype(%d)", int(t))
}

// WindowPolicy is the windowing strategy (count- or time-based).
type WindowPolicy int

// Window policies.
const (
	NoPolicy WindowPolicy = iota
	CountPolicy
	TimePolicy
	numWindowPolicies
)

// Valid reports whether p is a defined window policy.
func (p WindowPolicy) Valid() bool { return p >= 0 && p < numWindowPolicies }

// String returns the name of the window policy.
func (p WindowPolicy) String() string {
	switch p {
	case NoPolicy:
		return "none"
	case CountPolicy:
		return "count"
	case TimePolicy:
		return "time"
	}
	return fmt.Sprintf("windowpolicy(%d)", int(p))
}

// KeyClass is the data type class of a join or aggregation key.
type KeyClass int

// Key classes.
const (
	NoKey KeyClass = iota
	IntKey
	FloatKey
	StringKey
	numKeyClasses
)

// Valid reports whether k is a defined key class.
func (k KeyClass) Valid() bool { return k >= 0 && k < numKeyClasses }

// String returns the name of the key class.
func (k KeyClass) String() string {
	switch k {
	case NoKey:
		return "none"
	case IntKey:
		return "int"
	case FloatKey:
		return "float"
	case StringKey:
		return "string"
	}
	return fmt.Sprintf("keyclass(%d)", int(k))
}

// AggFunc is the aggregation function applied by an Aggregate operator.
type AggFunc int

// Aggregation functions.
const (
	NoAgg AggFunc = iota
	AggMin
	AggMax
	AggAvg
	AggSum
	AggCount
	numAggFuncs
)

// Valid reports whether f is a defined aggregation function.
func (f AggFunc) Valid() bool { return f >= 0 && f < numAggFuncs }

// String returns the name of the aggregation function.
func (f AggFunc) String() string {
	switch f {
	case NoAgg:
		return "none"
	case AggMin:
		return "min"
	case AggMax:
		return "max"
	case AggAvg:
		return "avg"
	case AggSum:
		return "sum"
	case AggCount:
		return "count"
	}
	return fmt.Sprintf("aggfunc(%d)", int(f))
}

// TupleType is the serialization format class of tuples on a stream.
type TupleType int

// Tuple data types.
const (
	RowTuple TupleType = iota
	PojoTuple
	JSONTuple
	numTupleTypes
)

// Valid reports whether t is a defined tuple type.
func (t TupleType) Valid() bool { return t >= 0 && t < numTupleTypes }

// String returns the name of the tuple type.
func (t TupleType) String() string {
	switch t {
	case RowTuple:
		return "row"
	case PojoTuple:
		return "pojo"
	case JSONTuple:
		return "json"
	}
	return fmt.Sprintf("tupletype(%d)", int(t))
}

// Operator is a node of a logical dataflow DAG. The exported fields up to
// TupleDataType are the static features of Table I; SourceRate is the
// dynamic source-rate feature (non-zero only on Source operators);
// Selectivity is engine ground truth (output/input record ratio) and must
// not be consumed by tuning algorithms.
type Operator struct {
	ID   string
	Type OpType

	WindowType    WindowType
	WindowPolicy  WindowPolicy
	WindowLength  float64 // records (count policy) or seconds (time policy)
	SlidingLength float64
	JoinKeyClass  KeyClass
	AggClass      KeyClass
	AggKeyClass   KeyClass
	AggFunc       AggFunc
	TupleWidthIn  float64 // bytes
	TupleWidthOut float64 // bytes
	TupleDataType TupleType

	// SourceRate is the records/second emitted by a Source operator.
	// Zero for all non-source operators.
	SourceRate float64

	// Selectivity is the ratio of output records to input records.
	// It parameterizes the simulated engine and is hidden from tuners.
	Selectivity float64

	// CostFactor scales the operator's intrinsic per-record cost in the
	// simulated engine. Hidden from tuners.
	CostFactor float64
}

// Clone returns a deep copy of the operator.
func (o *Operator) Clone() *Operator {
	c := *o
	return &c
}

// Graph is a logical dataflow DAG. The zero value is an empty graph ready
// for use.
type Graph struct {
	Name string

	ops   []*Operator
	index map[string]int
	adj   [][]int // out-edges, by operator index
	radj  [][]int // in-edges, by operator index
}

// New returns an empty named graph.
func New(name string) *Graph {
	return &Graph{Name: name, index: make(map[string]int)}
}

// NumOperators reports the number of operators in the graph.
func (g *Graph) NumOperators() int { return len(g.ops) }

// NumEdges reports the number of directed edges in the graph.
func (g *Graph) NumEdges() int {
	n := 0
	for _, out := range g.adj {
		n += len(out)
	}
	return n
}

// AddOperator inserts op into the graph. It returns an error if an
// operator with the same ID already exists or the ID is empty.
func (g *Graph) AddOperator(op *Operator) error {
	if op == nil {
		return fmt.Errorf("dag: nil operator")
	}
	if op.ID == "" {
		return fmt.Errorf("dag: operator with empty ID")
	}
	if g.index == nil {
		g.index = make(map[string]int)
	}
	if _, ok := g.index[op.ID]; ok {
		return fmt.Errorf("dag: duplicate operator %q", op.ID)
	}
	if op.Selectivity == 0 {
		op.Selectivity = 1
	}
	if op.CostFactor == 0 {
		op.CostFactor = 1
	}
	g.index[op.ID] = len(g.ops)
	g.ops = append(g.ops, op)
	g.adj = append(g.adj, nil)
	g.radj = append(g.radj, nil)
	return nil
}

// MustAddOperator is AddOperator but panics on error; for use in
// statically-known query templates.
func (g *Graph) MustAddOperator(op *Operator) {
	if err := g.AddOperator(op); err != nil {
		panic(err)
	}
}

// AddEdge inserts a directed edge from the operator named from to the
// operator named to.
func (g *Graph) AddEdge(from, to string) error {
	fi, ok := g.index[from]
	if !ok {
		return fmt.Errorf("dag: unknown operator %q", from)
	}
	ti, ok := g.index[to]
	if !ok {
		return fmt.Errorf("dag: unknown operator %q", to)
	}
	if fi == ti {
		return fmt.Errorf("dag: self-edge on %q", from)
	}
	for _, d := range g.adj[fi] {
		if d == ti {
			return fmt.Errorf("dag: duplicate edge %q -> %q", from, to)
		}
	}
	g.adj[fi] = append(g.adj[fi], ti)
	g.radj[ti] = append(g.radj[ti], fi)
	return nil
}

// MustAddEdge is AddEdge but panics on error.
func (g *Graph) MustAddEdge(from, to string) {
	if err := g.AddEdge(from, to); err != nil {
		panic(err)
	}
}

// Operator returns the operator with the given ID, or nil if absent.
func (g *Graph) Operator(id string) *Operator {
	i, ok := g.index[id]
	if !ok {
		return nil
	}
	return g.ops[i]
}

// OperatorAt returns the operator at position i in insertion order.
func (g *Graph) OperatorAt(i int) *Operator { return g.ops[i] }

// IndexOf returns the insertion index of the operator with the given ID
// and whether it exists.
func (g *Graph) IndexOf(id string) (int, bool) {
	i, ok := g.index[id]
	return i, ok
}

// Operators returns the operators in insertion order. The slice is shared;
// callers must not mutate it.
func (g *Graph) Operators() []*Operator { return g.ops }

// Downstream returns the insertion indices of the direct downstream
// operators of the operator at index i.
func (g *Graph) Downstream(i int) []int { return g.adj[i] }

// Upstream returns the insertion indices of the direct upstream operators
// of the operator at index i.
func (g *Graph) Upstream(i int) []int { return g.radj[i] }

// Sources returns the indices of all Source operators.
func (g *Graph) Sources() []int {
	var s []int
	for i, op := range g.ops {
		if op.Type == Source {
			s = append(s, i)
		}
	}
	return s
}

// Sinks returns the indices of operators with no downstream operators.
func (g *Graph) Sinks() []int {
	var s []int
	for i := range g.ops {
		if len(g.adj[i]) == 0 {
			s = append(s, i)
		}
	}
	return s
}

// FirstLevelDownstream returns the indices of operators that directly
// receive data from at least one source.
func (g *Graph) FirstLevelDownstream() []int {
	seen := make(map[int]bool)
	var out []int
	for _, si := range g.Sources() {
		for _, d := range g.adj[si] {
			if !seen[d] {
				seen[d] = true
				out = append(out, d)
			}
		}
	}
	sort.Ints(out)
	return out
}

// TopoOrder returns operator indices in a topological order. It returns an
// error if the graph contains a cycle.
func (g *Graph) TopoOrder() ([]int, error) {
	n := len(g.ops)
	indeg := make([]int, n)
	for i := range g.ops {
		for _, d := range g.adj[i] {
			indeg[d]++
		}
	}
	queue := make([]int, 0, n)
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			queue = append(queue, i)
		}
	}
	order := make([]int, 0, n)
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		order = append(order, v)
		for _, d := range g.adj[v] {
			indeg[d]--
			if indeg[d] == 0 {
				queue = append(queue, d)
			}
		}
	}
	if len(order) != n {
		return nil, fmt.Errorf("dag: graph %q contains a cycle", g.Name)
	}
	return order, nil
}

// Validate checks structural invariants: the graph is non-empty and
// acyclic, sources have no upstream operators and positive rates, and
// every non-source operator is reachable from some source.
func (g *Graph) Validate() error {
	if len(g.ops) == 0 {
		return fmt.Errorf("dag: graph %q is empty", g.Name)
	}
	if _, err := g.TopoOrder(); err != nil {
		return err
	}
	srcs := g.Sources()
	if len(srcs) == 0 {
		return fmt.Errorf("dag: graph %q has no source operators", g.Name)
	}
	for _, si := range srcs {
		if len(g.radj[si]) != 0 {
			return fmt.Errorf("dag: source %q has upstream operators", g.ops[si].ID)
		}
		if g.ops[si].SourceRate < 0 {
			return fmt.Errorf("dag: source %q has negative rate", g.ops[si].ID)
		}
	}
	// Reachability from sources.
	reached := make([]bool, len(g.ops))
	stack := append([]int(nil), srcs...)
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if reached[v] {
			continue
		}
		reached[v] = true
		stack = append(stack, g.adj[v]...)
	}
	for i, r := range reached {
		if !r {
			return fmt.Errorf("dag: operator %q unreachable from sources", g.ops[i].ID)
		}
	}
	return nil
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	c := New(g.Name)
	for _, op := range g.ops {
		c.MustAddOperator(op.Clone())
	}
	for i := range g.adj {
		for _, d := range g.adj[i] {
			c.MustAddEdge(g.ops[i].ID, g.ops[d].ID)
		}
	}
	return c
}

// SetSourceRates multiplies every source operator's base rate: source i
// gets rates[i mod len(rates)] if rates holds absolute values per source
// in Sources() order. It returns an error if rates is empty.
func (g *Graph) SetSourceRates(rates map[string]float64) error {
	for id, r := range rates {
		op := g.Operator(id)
		if op == nil {
			return fmt.Errorf("dag: unknown source %q", id)
		}
		if op.Type != Source {
			return fmt.Errorf("dag: operator %q is not a source", id)
		}
		op.SourceRate = r
	}
	return nil
}

// ScaleSourceRates multiplies all source rates by factor.
func (g *Graph) ScaleSourceRates(factor float64) {
	for _, i := range g.Sources() {
		g.ops[i].SourceRate *= factor
	}
}

// String renders a compact human-readable description of the graph.
func (g *Graph) String() string {
	s := fmt.Sprintf("graph %q (%d ops, %d edges):", g.Name, g.NumOperators(), g.NumEdges())
	for i, op := range g.ops {
		s += fmt.Sprintf(" %s:%s", op.ID, op.Type)
		if len(g.adj[i]) > 0 {
			s += "->["
			for j, d := range g.adj[i] {
				if j > 0 {
					s += ","
				}
				s += g.ops[d].ID
			}
			s += "]"
		}
	}
	return s
}
