package pqp

import (
	"testing"

	"github.com/streamtune/streamtune/internal/dag"
	"github.com/streamtune/streamtune/internal/engine"
)

func TestVariantCounts(t *testing.T) {
	if Variants(Linear) != 8 || Variants(TwoWayJoin) != 16 || Variants(ThreeWayJoin) != 32 {
		t.Fatalf("variant counts = %d/%d/%d, want 8/16/32",
			Variants(Linear), Variants(TwoWayJoin), Variants(ThreeWayJoin))
	}
	if Variants(Template("zzz")) != 0 {
		t.Fatal("unknown template should have 0 variants")
	}
}

func TestRateUnitsMatchTableII(t *testing.T) {
	if RateUnit(Linear) != 5e3 {
		t.Errorf("Linear Wu = %v, want 5000", RateUnit(Linear))
	}
	if RateUnit(TwoWayJoin) != 0.5e3 {
		t.Errorf("2-way Wu = %v, want 500", RateUnit(TwoWayJoin))
	}
	if RateUnit(ThreeWayJoin) != 0.25e3 {
		t.Errorf("3-way Wu = %v, want 250", RateUnit(ThreeWayJoin))
	}
	if RateUnit(Template("zzz")) != 0 {
		t.Error("unknown template should have 0 rate unit")
	}
}

func TestBuildAllVariantsValid(t *testing.T) {
	for _, tmpl := range Templates {
		gs, err := All(tmpl)
		if err != nil {
			t.Fatalf("All(%s): %v", tmpl, err)
		}
		if len(gs) != Variants(tmpl) {
			t.Fatalf("All(%s) = %d graphs, want %d", tmpl, len(gs), Variants(tmpl))
		}
		for i, g := range gs {
			if err := g.Validate(); err != nil {
				t.Errorf("%s[%d] invalid: %v", tmpl, i, err)
			}
		}
	}
}

func TestBuildOutOfRange(t *testing.T) {
	if _, err := Build(Linear, 8); err == nil {
		t.Fatal("expected out-of-range error")
	}
	if _, err := Build(Linear, -1); err == nil {
		t.Fatal("expected negative-index error")
	}
	if _, err := Build(Template("zzz"), 0); err == nil {
		t.Fatal("expected unknown-template error")
	}
}

func TestBuildDeterministic(t *testing.T) {
	a, err := Build(TwoWayJoin, 5)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := Build(TwoWayJoin, 5)
	if a.String() != b.String() {
		t.Fatal("same variant built differently across calls")
	}
	opA, opB := a.Operator("join1"), b.Operator("join1")
	if opA.CostFactor != opB.CostFactor || opA.Selectivity != opB.Selectivity {
		t.Fatal("same variant has different hidden parameters")
	}
	c, _ := Build(TwoWayJoin, 6)
	if a.Operator("join1").CostFactor == c.Operator("join1").CostFactor {
		t.Fatal("different variants share identical cost factors")
	}
}

func TestJoinTemplateShape(t *testing.T) {
	g, err := Build(ThreeWayJoin, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(g.Sources()); got != 3 {
		t.Fatalf("3-way join has %d sources, want 3", got)
	}
	joins := 0
	for _, op := range g.Operators() {
		if op.Type == dag.WindowJoin {
			joins++
		}
	}
	if joins != 2 {
		t.Fatalf("3-way join has %d join operators, want 2", joins)
	}
	if g.NumOperators() < 9 || g.NumOperators() > 11 {
		t.Fatalf("3-way join has %d operators, want 9..11", g.NumOperators())
	}
}

func TestLinearTemplateShape(t *testing.T) {
	for i := 0; i < Variants(Linear); i++ {
		g, err := Build(Linear, i)
		if err != nil {
			t.Fatal(err)
		}
		if len(g.Sources()) != 1 {
			t.Fatalf("linear[%d] has %d sources", i, len(g.Sources()))
		}
		if n := g.NumOperators(); n < 3 || n > 8 {
			t.Fatalf("linear[%d] has %d operators, want 3..8", i, n)
		}
		// Linear queries must be chains: every op has <= 1 downstream.
		for j := 0; j < g.NumOperators(); j++ {
			if len(g.Downstream(j)) > 1 {
				t.Fatalf("linear[%d] has fan-out at %s", i, g.OperatorAt(j).ID)
			}
		}
	}
}

func TestJoinsDemandSubstantialParallelism(t *testing.T) {
	// At 10x the rate unit, the ground-truth total parallelism of join
	// templates must land in the tens (Fig. 6's PQP ballpark), and
	// 3-way must exceed 2-way.
	cfg := engine.DefaultConfig(engine.Flink)
	total := func(tmpl Template, idx int) int {
		g, err := Build(tmpl, idx)
		if err != nil {
			t.Fatal(err)
		}
		g.ScaleSourceRates(10)
		opt, err := engine.GroundTruthOptimal(g, cfg)
		if err != nil {
			t.Fatal(err)
		}
		sum := 0
		for _, p := range opt {
			sum += p
		}
		return sum
	}
	two := 0
	for i := 0; i < 4; i++ {
		two += total(TwoWayJoin, i)
	}
	two /= 4
	three := 0
	for i := 0; i < 4; i++ {
		three += total(ThreeWayJoin, i)
	}
	three /= 4
	if two < 15 || two > 70 {
		t.Errorf("2-way optimal total parallelism = %d, want tens", two)
	}
	if three <= two {
		t.Errorf("3-way total %d not above 2-way total %d", three, two)
	}
}
