// Package pqp generates the synthetic Parallel Query Processing (PQP)
// workload of ZeroTune, used by the StreamTune evaluation: Linear queries
// (8 variants), 2-way joins (16 variants) and 3-way joins (32 variants),
// with tumbling/sliding window configurations and common streaming
// operators (source, filter, join, aggregate).
//
// Variants are generated deterministically from the template and variant
// index, so query i is identical across processes.
package pqp

import (
	"fmt"
	"math/rand"

	"github.com/streamtune/streamtune/internal/dag"
)

// Template identifies a PQP query template.
type Template string

// The three PQP templates of the paper's evaluation.
const (
	Linear       Template = "linear"
	TwoWayJoin   Template = "2-way-join"
	ThreeWayJoin Template = "3-way-join"
)

// Templates lists the PQP templates in paper order.
var Templates = []Template{Linear, TwoWayJoin, ThreeWayJoin}

// Variants reports the number of query variants per template used in the
// paper's evaluation (8 linear, 16 two-way, 32 three-way).
func Variants(t Template) int {
	switch t {
	case Linear:
		return 8
	case TwoWayJoin:
		return 16
	case ThreeWayJoin:
		return 32
	}
	return 0
}

// RateUnit returns the PQP source-rate unit Wu in records/second
// (Table II: Linear 5K, 2-way-join 0.5K, 3-way-join 0.25K).
func RateUnit(t Template) float64 {
	switch t {
	case Linear:
		return 5e3
	case TwoWayJoin:
		return 0.5e3
	case ThreeWayJoin:
		return 0.25e3
	}
	return 0
}

// Build constructs variant idx of the template with all source rates set
// to one rate unit. It returns an error for an unknown template or an
// out-of-range variant index.
func Build(t Template, idx int) (*dag.Graph, error) {
	if idx < 0 || idx >= Variants(t) {
		return nil, fmt.Errorf("pqp: variant %d out of range for %s (have %d)", idx, t, Variants(t))
	}
	rng := rand.New(rand.NewSource(int64(idx)*7919 + int64(len(t))))
	var g *dag.Graph
	switch t {
	case Linear:
		g = buildLinear(idx, rng)
	case TwoWayJoin:
		g = buildJoin(idx, rng, 2)
	case ThreeWayJoin:
		g = buildJoin(idx, rng, 3)
	default:
		return nil, fmt.Errorf("pqp: unknown template %q", t)
	}
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("pqp: %s[%d]: %w", t, idx, err)
	}
	return g, nil
}

// All builds every variant of the template, in index order.
func All(t Template) ([]*dag.Graph, error) {
	out := make([]*dag.Graph, 0, Variants(t))
	for i := 0; i < Variants(t); i++ {
		g, err := Build(t, i)
		if err != nil {
			return nil, err
		}
		out = append(out, g)
	}
	return out, nil
}

// jitter returns base scaled by a uniform factor in [1-spread, 1+spread].
func jitter(rng *rand.Rand, base, spread float64) float64 {
	return base * (1 + spread*(2*rng.Float64()-1))
}

func pick[T any](rng *rand.Rand, xs ...T) T { return xs[rng.Intn(len(xs))] }

// windowed decorates op with a random window configuration.
func windowed(rng *rand.Rand, op *dag.Operator) {
	op.WindowType = pick(rng, dag.Tumbling, dag.Sliding)
	op.WindowPolicy = pick(rng, dag.CountPolicy, dag.TimePolicy)
	op.WindowLength = pick(rng, 10.0, 30.0, 60.0, 120.0)
	if op.WindowType == dag.Sliding {
		op.SlidingLength = op.WindowLength / pick(rng, 2.0, 5.0, 10.0)
	}
}

// buildLinear produces source -> (1..4 chained filters/maps) ->
// [aggregate] -> sink, 4..8 operators total.
func buildLinear(idx int, rng *rand.Rand) *dag.Graph {
	g := dag.New(fmt.Sprintf("pqp-linear-%02d", idx))
	width := pick(rng, 64.0, 96.0, 128.0)
	g.MustAddOperator(&dag.Operator{
		ID: "src", Type: dag.Source, SourceRate: RateUnit(Linear),
		TupleWidthOut: width, TupleDataType: pick(rng, dag.RowTuple, dag.PojoTuple, dag.JSONTuple),
	})
	prev := "src"
	nChain := 1 + rng.Intn(4)
	for i := 0; i < nChain; i++ {
		id := fmt.Sprintf("op%d", i+1)
		ty := pick(rng, dag.Filter, dag.Map, dag.FlatMap)
		sel := 1.0
		switch ty {
		case dag.Filter:
			sel = 0.4 + 0.5*rng.Float64()
		case dag.FlatMap:
			sel = 1 + rng.Float64()
		}
		g.MustAddOperator(&dag.Operator{
			ID: id, Type: ty, Selectivity: sel,
			TupleWidthIn: width, TupleWidthOut: width,
			CostFactor: jitter(rng, 40, 0.3),
		})
		g.MustAddEdge(prev, id)
		prev = id
	}
	if rng.Float64() < 0.7 {
		agg := &dag.Operator{
			ID: "agg", Type: dag.Aggregate,
			AggFunc:  pick(rng, dag.AggMin, dag.AggMax, dag.AggAvg, dag.AggSum, dag.AggCount),
			AggClass: pick(rng, dag.IntKey, dag.FloatKey), AggKeyClass: pick(rng, dag.IntKey, dag.StringKey),
			Selectivity: 0.2 + 0.3*rng.Float64(), TupleWidthIn: width, TupleWidthOut: width / 2,
			CostFactor: jitter(rng, 50, 0.3),
		}
		if rng.Float64() < 0.5 {
			windowed(rng, agg)
		}
		g.MustAddOperator(agg)
		g.MustAddEdge(prev, "agg")
		prev = "agg"
	}
	g.MustAddOperator(&dag.Operator{ID: "sink", Type: dag.Sink, TupleWidthIn: width})
	g.MustAddEdge(prev, "sink")
	return g
}

// buildJoin produces an n-way windowed join query: n sources, each with
// a filter, left-deep joins, a final aggregate and a sink.
func buildJoin(idx int, rng *rand.Rand, ways int) *dag.Graph {
	t := TwoWayJoin
	if ways == 3 {
		t = ThreeWayJoin
	}
	g := dag.New(fmt.Sprintf("pqp-%s-%02d", t, idx))
	width := pick(rng, 64.0, 128.0)

	// Ground-truth cost factors sized so that, at 10x the rate unit,
	// joins dominate the parallelism budget (the paper's Fig. 6 shows
	// PQP joins needing tens of slots).
	filterCF, joinCF, aggCF := 200.0, 280.0, 260.0
	if ways == 3 {
		filterCF, joinCF, aggCF = 220.0, 440.0, 300.0
	}

	for i := 0; i < ways; i++ {
		sid := fmt.Sprintf("src%d", i+1)
		fid := fmt.Sprintf("filter%d", i+1)
		g.MustAddOperator(&dag.Operator{
			ID: sid, Type: dag.Source, SourceRate: RateUnit(t),
			TupleWidthOut: width, TupleDataType: pick(rng, dag.RowTuple, dag.PojoTuple),
		})
		g.MustAddOperator(&dag.Operator{
			ID: fid, Type: dag.Filter, Selectivity: 0.55 + 0.3*rng.Float64(),
			TupleWidthIn: width, TupleWidthOut: width,
			CostFactor: jitter(rng, filterCF, 0.25),
		})
		g.MustAddEdge(sid, fid)
	}

	prev := "filter1"
	for j := 2; j <= ways; j++ {
		jid := fmt.Sprintf("join%d", j-1)
		join := &dag.Operator{
			ID: jid, Type: dag.WindowJoin,
			JoinKeyClass: pick(rng, dag.IntKey, dag.StringKey),
			Selectivity:  0.6 + 0.3*rng.Float64(),
			TupleWidthIn: width, TupleWidthOut: width * 1.5,
			CostFactor: jitter(rng, joinCF, 0.25),
		}
		windowed(rng, join)
		g.MustAddOperator(join)
		g.MustAddEdge(prev, jid)
		g.MustAddEdge(fmt.Sprintf("filter%d", j), jid)
		prev = jid
	}

	agg := &dag.Operator{
		ID: "agg", Type: dag.Aggregate,
		AggFunc:  pick(rng, dag.AggAvg, dag.AggSum, dag.AggCount),
		AggClass: dag.FloatKey, AggKeyClass: pick(rng, dag.IntKey, dag.StringKey),
		Selectivity:  0.25 + 0.25*rng.Float64(),
		TupleWidthIn: width * 1.5, TupleWidthOut: width / 2,
		CostFactor: jitter(rng, aggCF, 0.25),
	}
	if rng.Float64() < 0.5 {
		windowed(rng, agg)
	}
	g.MustAddOperator(agg)
	g.MustAddEdge(prev, "agg")
	g.MustAddOperator(&dag.Operator{ID: "sink", Type: dag.Sink, TupleWidthIn: width / 2})
	g.MustAddEdge("agg", "sink")
	return g
}
