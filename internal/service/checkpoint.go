package service

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"github.com/streamtune/streamtune/internal/faultinject"
	"github.com/streamtune/streamtune/internal/streamtune"
)

// WriteFileAtomic writes data to path crash-safely: the bytes land in a
// temp file in the same directory, are fsynced, and only then renamed
// over path — so a crash, OOM-kill, or torn write mid-way never
// truncates or corrupts an existing file at path; readers see either
// the old complete content or the new complete content. The containing
// directory is fsynced after the rename so the new name itself survives
// a power cut. Honors the faultinject.CheckpointWrite failpoint (the
// write fails before any byte reaches disk).
func WriteFileAtomic(path string, data []byte) error {
	if err := faultinject.Hit(faultinject.CheckpointWrite); err != nil {
		return fmt.Errorf("service: write %s: %w", path, err)
	}
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-")
	if err != nil {
		return err
	}
	tmp := f.Name()
	_, err = f.Write(data)
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp, path)
	}
	if err != nil {
		os.Remove(tmp)
		return fmt.Errorf("service: write %s: %w", path, err)
	}
	// Durability of the rename itself; best-effort — some filesystems
	// reject directory fsync, and the data is already safe on those.
	if d, derr := os.Open(dir); derr == nil {
		_ = d.Sync()
		d.Close()
	}
	return nil
}

// checkpointPrefix/-Suffix frame checkpoint file names:
// checkpoint-00000042.json. The sequence number increases monotonically
// across restarts (NewCheckpointer resumes past the newest file), so
// lexical and chronological order agree.
const (
	checkpointPrefix = "checkpoint-"
	checkpointSuffix = ".json"
)

// checkpointName renders the file name of sequence number seq.
func checkpointName(seq uint64) string {
	return fmt.Sprintf("%s%08d%s", checkpointPrefix, seq, checkpointSuffix)
}

// checkpointSeq parses a checkpoint file name back to its sequence
// number; ok is false for foreign files (temp files, strays).
func checkpointSeq(name string) (uint64, bool) {
	if !strings.HasPrefix(name, checkpointPrefix) || !strings.HasSuffix(name, checkpointSuffix) {
		return 0, false
	}
	digits := strings.TrimSuffix(strings.TrimPrefix(name, checkpointPrefix), checkpointSuffix)
	seq, err := strconv.ParseUint(digits, 10, 64)
	if err != nil {
		return 0, false
	}
	return seq, true
}

// ListCheckpoints returns the checkpoint files in dir, newest (highest
// sequence) first. A missing directory is an empty list, not an error.
func ListCheckpoints(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil, nil
		}
		return nil, err
	}
	type candidate struct {
		seq  uint64
		path string
	}
	var cands []candidate
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if seq, ok := checkpointSeq(e.Name()); ok {
			cands = append(cands, candidate{seq: seq, path: filepath.Join(dir, e.Name())})
		}
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].seq > cands[j].seq })
	paths := make([]string, len(cands))
	for i, c := range cands {
		paths[i] = c.path
	}
	return paths, nil
}

// RestoreFromDir restores a service from the newest valid checkpoint in
// dir, falling back past corrupt, truncated, or otherwise unusable
// files to older ones. It returns the restored service, the path it was
// restored from, and one error per skipped candidate (so callers can
// log what was damaged). An empty or missing directory returns
// (nil, "", nil, nil) — no checkpoint is not an error, it means "start
// fresh". A directory whose every checkpoint fails returns an error
// joining the per-file failures.
func RestoreFromDir(pt *streamtune.PreTrained, cfg Config, dir string) (*Service, string, []error, error) {
	paths, err := ListCheckpoints(dir)
	if err != nil {
		return nil, "", nil, err
	}
	var skipped []error
	for _, path := range paths {
		data, rerr := os.ReadFile(path)
		if rerr != nil {
			skipped = append(skipped, rerr)
			continue
		}
		svc, rerr := Restore(pt, cfg, data)
		if rerr != nil {
			skipped = append(skipped, fmt.Errorf("%s: %w", path, rerr))
			continue
		}
		return svc, path, skipped, nil
	}
	if len(paths) == 0 {
		return nil, "", nil, nil
	}
	return nil, "", skipped, fmt.Errorf("service: no valid checkpoint among %d candidate(s) in %s: %w",
		len(paths), dir, errors.Join(skipped...))
}

// CheckpointConfig parameterizes a Checkpointer.
type CheckpointConfig struct {
	// Dir is the checkpoint directory; created if missing.
	Dir string
	// Interval is the periodic checkpoint cadence (zero or negative
	// defaults to 30s). A tick with no mutations since the last
	// checkpoint writes nothing.
	Interval time.Duration
	// EveryMutations checkpoints early once this many registry
	// mutations accumulate, without waiting for Interval. Zero disables
	// the mutation trigger (time-only).
	EveryMutations uint64
	// Keep is how many checkpoint files are retained (older ones are
	// pruned after each successful write). Zero or negative defaults
	// to 3; restores fall back through these on corruption.
	Keep int
}

// Checkpointer periodically snapshots a service's session registry to
// crash-safe checkpoint files: every write is atomic (temp + fsync +
// rename), carries the envelope checksum, and rotates within a bounded
// retention window. A service that dies between checkpoints loses at
// most the mutations since the newest one — RestoreFromDir resumes
// every checkpointed session mid-tuning, bit-identically.
type Checkpointer struct {
	svc *Service
	cfg CheckpointConfig

	mu       sync.Mutex
	seq      uint64 // next sequence number
	lastMut  uint64 // Service.Mutations at the last successful write
	lastTime time.Time
	lastPath string
	lastErr  error

	startOnce sync.Once
	stopOnce  sync.Once
	stop      chan struct{}
	done      chan struct{}
}

// NewCheckpointer prepares (but does not start) a checkpointer for svc:
// the directory is created and the sequence counter resumes past the
// newest existing checkpoint, so a restarted service never overwrites
// the files it is recovering from.
func NewCheckpointer(svc *Service, cfg CheckpointConfig) (*Checkpointer, error) {
	if svc == nil {
		return nil, fmt.Errorf("service: checkpointer needs a service")
	}
	if cfg.Dir == "" {
		return nil, fmt.Errorf("service: checkpointer needs a directory")
	}
	if cfg.Interval <= 0 {
		cfg.Interval = 30 * time.Second
	}
	if cfg.Keep <= 0 {
		cfg.Keep = 3
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, err
	}
	c := &Checkpointer{
		svc:      svc,
		cfg:      cfg,
		lastTime: time.Now(),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	paths, err := ListCheckpoints(cfg.Dir)
	if err != nil {
		return nil, err
	}
	if len(paths) > 0 {
		if seq, ok := checkpointSeq(filepath.Base(paths[0])); ok {
			c.seq = seq + 1
		}
	}
	// lastMut deliberately starts at zero, not svc.Mutations(): state
	// accumulated before the checkpointer attached has never been
	// persisted, so it must count as dirty. A service restored from a
	// checkpoint starts its mutation counter over, so the worst case is
	// one redundant early checkpoint — never a silently unprotected one.
	return c, nil
}

// CheckpointNow takes one checkpoint unconditionally (even with no new
// mutations): snapshot, atomic write, rotation. It returns the path
// written. Failures (including injected ones) are counted on the
// service and leave the previous checkpoints untouched — the newest
// valid file on disk is still a safe restore point.
func (c *Checkpointer) CheckpointNow() (string, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.checkpointLocked()
}

func (c *Checkpointer) checkpointLocked() (string, error) {
	t0 := time.Now()
	mut := c.svc.Mutations()
	data, err := c.svc.Snapshot()
	if err == nil {
		// The corruption failpoint mangles the bytes after the checksum
		// was embedded, so the file lands on disk torn: rename succeeds,
		// verification cannot.
		data = faultinject.Corrupt(faultinject.CheckpointCorrupt, data)
		path := filepath.Join(c.cfg.Dir, checkpointName(c.seq))
		if err = WriteFileAtomic(path, data); err == nil {
			c.svc.checkpointLastSeq.Store(c.seq)
			c.seq++
			c.lastMut = mut
			c.lastTime = time.Now()
			c.lastPath = path
			c.lastErr = nil
			c.svc.checkpointsWritten.Add(1)
			c.svc.checkpointLastBytes.Store(uint64(len(data)))
			c.svc.cfg.Metrics.sinceCheckpoint(t0)
			c.svc.log.Info("checkpoint written", "path", path,
				"bytes", len(data), "seq", c.seq-1, "took", time.Since(t0).String())
			c.pruneLocked()
			return path, nil
		}
	}
	c.lastErr = err
	c.svc.checkpointFailures.Add(1)
	c.svc.log.Error("checkpoint failed", "dir", c.cfg.Dir, "err", err.Error())
	return "", err
}

// pruneLocked deletes checkpoints beyond the retention window. Removal
// errors are ignored: a stray undeletable file costs disk, not
// correctness, and the next rotation retries.
func (c *Checkpointer) pruneLocked() {
	paths, err := ListCheckpoints(c.cfg.Dir)
	if err != nil || len(paths) <= c.cfg.Keep {
		return
	}
	for _, path := range paths[c.cfg.Keep:] {
		os.Remove(path)
	}
}

// maybeCheckpoint applies the cadence rules: nothing without mutations,
// a checkpoint when the interval elapsed or enough mutations piled up.
func (c *Checkpointer) maybeCheckpoint() {
	c.mu.Lock()
	defer c.mu.Unlock()
	mut := c.svc.Mutations()
	if mut == c.lastMut {
		return
	}
	if time.Since(c.lastTime) < c.cfg.Interval &&
		(c.cfg.EveryMutations == 0 || mut-c.lastMut < c.cfg.EveryMutations) {
		return
	}
	c.checkpointLocked() //nolint:errcheck // counted on the service; surfaced via LastError
}

// Start launches the background checkpoint loop. Idempotent.
func (c *Checkpointer) Start() {
	c.startOnce.Do(func() {
		go c.loop()
	})
}

// loop polls well below the interval so the mutation trigger fires
// promptly, while the interval rule still paces actual writes.
func (c *Checkpointer) loop() {
	defer close(c.done)
	poll := c.cfg.Interval / 4
	if poll > time.Second {
		poll = time.Second
	}
	if poll < 10*time.Millisecond {
		poll = 10 * time.Millisecond
	}
	tick := time.NewTicker(poll)
	defer tick.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-tick.C:
			c.maybeCheckpoint()
		}
	}
}

// Stop halts the loop and takes one final checkpoint if mutations
// arrived since the last one — the graceful-drain write. It returns the
// final checkpoint's error, if any. Safe to call without Start, and
// idempotent.
func (c *Checkpointer) Stop() error {
	c.stopOnce.Do(func() {
		close(c.stop)
	})
	c.startOnce.Do(func() { close(c.done) }) // never started: nothing to join
	<-c.done
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.svc.Mutations() != c.lastMut {
		_, err := c.checkpointLocked()
		return err
	}
	return nil
}

// LastCheckpoint reports the newest successfully written checkpoint
// path (empty before the first) and the error of the most recent
// attempt (nil when it succeeded).
func (c *Checkpointer) LastCheckpoint() (string, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lastPath, c.lastErr
}
