package service

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"

	"github.com/streamtune/streamtune/internal/dagspec"
	"github.com/streamtune/streamtune/internal/engine"
	"github.com/streamtune/streamtune/internal/nexmark"
)

// httpJSON posts (or gets) a JSON body and decodes the response.
func httpJSON(t *testing.T, client *http.Client, method, url string, body, out any) int {
	t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatal(err)
		}
	}
	req, err := http.NewRequest(method, url, &buf)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("%s %s: decode response: %v", method, url, err)
		}
	}
	return resp.StatusCode
}

// TestServiceHTTP tunes one job end to end over the HTTP API and
// asserts the final recommendation matches the sequential tuner.
func TestServiceHTTP(t *testing.T) {
	s := newTestService(t, DefaultConfig())
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	client := srv.Client()
	engCfg := testEngineConfig()

	want := sequentialResult(t, targetGraph(t, nexmark.Q5, 5), engCfg)

	g := targetGraph(t, nexmark.Q5, 5)
	var reg RegisterResult
	status := httpJSON(t, client, http.MethodPost, srv.URL+"/v1/jobs",
		RegisterRequest{JobID: "http-q5", Graph: g, Engine: &engCfg}, &reg)
	if status != http.StatusOK {
		t.Fatalf("register status = %d", status)
	}
	if reg.WarmupSamples == 0 {
		t.Fatal("register reported an empty warm-up dataset")
	}

	// Duplicate registration maps to 409, malformed admission to 400.
	if status := httpJSON(t, client, http.MethodPost, srv.URL+"/v1/jobs",
		RegisterRequest{JobID: "http-q5", Graph: g}, nil); status != http.StatusConflict {
		t.Fatalf("duplicate register status = %d, want 409", status)
	}
	if status := httpJSON(t, client, http.MethodPost, srv.URL+"/v1/jobs",
		RegisterRequest{JobID: "no-dag"}, nil); status != http.StatusBadRequest {
		t.Fatalf("empty-DAG register status = %d, want 400", status)
	}

	eng, err := engine.New(g, engCfg)
	if err != nil {
		t.Fatal(err)
	}
	var got map[string]int
	for i := 0; i < 200; i++ {
		var rec Recommendation
		if status := httpJSON(t, client, http.MethodPost, srv.URL+"/v1/jobs/http-q5/recommend", nil, &rec); status != http.StatusOK {
			t.Fatalf("recommend status = %d", status)
		}
		if rec.Done {
			got = rec.Parallelism
			break
		}
		if rec.Deploy {
			if err := eng.Deploy(rec.Parallelism); err != nil {
				t.Fatal(err)
			}
			eng.Stabilize(s.pt.Config.StabilizeWait)
		}
		m, err := eng.Run()
		if err != nil {
			t.Fatal(err)
		}
		var obs ObserveResponse
		if status := httpJSON(t, client, http.MethodPost, srv.URL+"/v1/jobs/http-q5/metrics",
			ObserveRequest{Metrics: m}, &obs); status != http.StatusOK {
			t.Fatalf("metrics status = %d", status)
		}
	}
	if got == nil {
		// The loop may have completed via Observe; fetch the final state.
		var rec Recommendation
		if status := httpJSON(t, client, http.MethodPost, srv.URL+"/v1/jobs/http-q5/recommend", nil, &rec); status != http.StatusOK || !rec.Done {
			t.Fatalf("final recommend status = %d done = %v", status, rec.Done)
		}
		got = rec.Parallelism
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("HTTP recommendation diverged from sequential tuner:\n got %v\nwant %v", got, want)
	}

	var info SessionInfo
	if status := httpJSON(t, client, http.MethodGet, srv.URL+"/v1/jobs/http-q5", nil, &info); status != http.StatusOK {
		t.Fatalf("session status = %d", status)
	}
	if !info.Done || !reflect.DeepEqual(info.Parallelism, want) {
		t.Errorf("session info: done=%v parallelism=%v", info.Done, info.Parallelism)
	}

	var st Stats
	if status := httpJSON(t, client, http.MethodGet, srv.URL+"/v1/stats", nil, &st); status != http.StatusOK {
		t.Fatalf("stats status = %d", status)
	}
	if st.SchemaVersion != StatsSchemaVersion || st.Sessions.Active != 1 || st.Sessions.Completed != 1 {
		t.Errorf("stats = %+v, want 1 active / 1 completed", st)
	}

	// The HTTP snapshot restores into a working service.
	resp, err := client.Get(srv.URL + "/v1/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	var snap bytes.Buffer
	if _, err := snap.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	restored, err := Restore(sharedPreTrained(t), DefaultConfig(), snap.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	rec, err := restored.Recommend(context.Background(), "http-q5")
	if err != nil {
		t.Fatal(err)
	}
	if !rec.Done || !reflect.DeepEqual(rec.Parallelism, want) {
		t.Errorf("restored-via-HTTP recommendation = %v done=%v, want %v", rec.Parallelism, rec.Done, want)
	}

	if status := httpJSON(t, client, http.MethodDelete, srv.URL+"/v1/jobs/http-q5", nil, nil); status != http.StatusOK {
		t.Fatalf("release status = %d", status)
	}
	if status := httpJSON(t, client, http.MethodGet, srv.URL+"/v1/jobs/http-q5", nil, nil); status != http.StatusNotFound {
		t.Fatalf("released session status = %d, want 404", status)
	}
}

// postRaw posts an arbitrary byte body and returns the status code.
func postRaw(t *testing.T, client *http.Client, url string, body []byte) int {
	t.Helper()
	resp, err := client.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp.StatusCode
}

// TestServiceHTTPRejectsMalformedRequests pins the request-body
// hygiene: unknown fields, trailing garbage, non-JSON, and oversized
// bodies all fail with 4xx instead of silently decoding to an empty
// request or streaming unbounded input.
func TestServiceHTTPRejectsMalformedRequests(t *testing.T) {
	s := newTestService(t, Config{})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	client := srv.Client()

	cases := []struct {
		name string
		url  string
		body []byte
		want int
	}{
		{"unknown field", srv.URL + "/v1/jobs", []byte(`{"job_id":"x","grahp":{}}`), http.StatusBadRequest},
		{"not json", srv.URL + "/v1/jobs", []byte(`not json at all`), http.StatusBadRequest},
		{"trailing garbage", srv.URL + "/v1/jobs", []byte(`{"job_id":"x"} trailing`), http.StatusBadRequest},
		{"oversized body", srv.URL + "/v1/jobs",
			[]byte(`{"job_id":"` + strings.Repeat("x", maxRequestBytes+1) + `"}`), http.StatusRequestEntityTooLarge},
		{"metrics unknown field", srv.URL + "/v1/jobs/x/metrics", []byte(`{"metricz":{}}`), http.StatusBadRequest},
	}
	for _, tc := range cases {
		if got := postRaw(t, client, tc.url, tc.body); got != tc.want {
			t.Errorf("%s: status = %d, want %d", tc.name, got, tc.want)
		}
	}
	if got := s.Stats().Sessions.Registered; got != 0 {
		t.Errorf("malformed requests registered %d jobs, want 0", got)
	}
}

// TestServiceHTTPSpecRegistration registers the same topology once as a
// dagspec document and once as a raw graph, and asserts both paths
// admit identically and converge to bit-identical recommendations.
func TestServiceHTTPSpecRegistration(t *testing.T) {
	s := newTestService(t, DefaultConfig())
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	client := srv.Client()
	engCfg := testEngineConfig()

	g := targetGraph(t, nexmark.Q5, 5)
	spec, err := dagspec.FromGraph(g)
	if err != nil {
		t.Fatal(err)
	}
	doc, err := spec.Encode()
	if err != nil {
		t.Fatal(err)
	}

	var viaSpec, viaGraph RegisterResult
	if status := httpJSON(t, client, http.MethodPost, srv.URL+"/v1/jobs",
		RegisterRequest{JobID: "via-spec", Spec: doc, Engine: &engCfg}, &viaSpec); status != http.StatusOK {
		t.Fatalf("spec register status = %d", status)
	}
	if status := httpJSON(t, client, http.MethodPost, srv.URL+"/v1/jobs",
		RegisterRequest{JobID: "via-graph", Graph: g, Engine: &engCfg}, &viaGraph); status != http.StatusOK {
		t.Fatalf("graph register status = %d", status)
	}
	if viaSpec.ClusterID != viaGraph.ClusterID || viaSpec.ClusterDistance != viaGraph.ClusterDistance ||
		viaSpec.WarmupSamples != viaGraph.WarmupSamples {
		t.Fatalf("admissions diverged: spec=%+v graph=%+v", viaSpec, viaGraph)
	}

	gotSpec := driveJob(t, s, "via-spec", targetGraph(t, nexmark.Q5, 5), engCfg)
	gotGraph := driveJob(t, s, "via-graph", targetGraph(t, nexmark.Q5, 5), engCfg)
	if !reflect.DeepEqual(gotSpec, gotGraph) {
		t.Errorf("spec-registered job diverged from graph-registered job:\n spec  %v\n graph %v", gotSpec, gotGraph)
	}

	// Exactly one of graph/spec must be present.
	var envl errorResponse
	if status := httpJSON(t, client, http.MethodPost, srv.URL+"/v1/jobs",
		RegisterRequest{JobID: "both", Graph: g, Spec: doc}, &envl); status != http.StatusBadRequest {
		t.Fatalf("graph+spec register status = %d, want 400", status)
	}
	if envl.Error.Code != "invalid_job" {
		t.Errorf("graph+spec error code = %q, want invalid_job", envl.Error.Code)
	}
}

// TestServiceHTTPErrorEnvelope pins the machine-readable error contract:
// stable codes per failure class and structured field paths for spec
// validation failures.
func TestServiceHTTPErrorEnvelope(t *testing.T) {
	s := newTestService(t, DefaultConfig())
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	client := srv.Client()

	if status := httpJSON(t, client, http.MethodPost, srv.URL+"/v1/jobs",
		RegisterRequest{JobID: "env", Graph: targetGraph(t, nexmark.Q5, 4)}, nil); status != http.StatusOK {
		t.Fatalf("register status = %d", status)
	}

	cases := []struct {
		name   string
		method string
		url    string
		body   any
		status int
		code   string
	}{
		{"unknown job", http.MethodPost, srv.URL + "/v1/jobs/ghost/recommend", nil,
			http.StatusNotFound, "unknown_job"},
		{"duplicate job", http.MethodPost, srv.URL + "/v1/jobs",
			RegisterRequest{JobID: "env", Graph: targetGraph(t, nexmark.Q5, 4)},
			http.StatusConflict, "duplicate_job"},
		{"missing topology", http.MethodPost, srv.URL + "/v1/jobs",
			RegisterRequest{JobID: "empty"}, http.StatusBadRequest, "invalid_job"},
		{"observe before recommend", http.MethodPost, srv.URL + "/v1/jobs/env/metrics",
			ObserveRequest{Metrics: &engine.JobMetrics{}}, http.StatusConflict, "awaiting_recommend"},
		{"release unknown", http.MethodDelete, srv.URL + "/v1/jobs/ghost", nil,
			http.StatusNotFound, "unknown_job"},
		{"bad list limit", http.MethodGet, srv.URL + "/v1/jobs?limit=nope", nil,
			http.StatusBadRequest, "invalid_job"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var envl errorResponse
			if status := httpJSON(t, client, tc.method, tc.url, tc.body, &envl); status != tc.status {
				t.Fatalf("status = %d, want %d", status, tc.status)
			}
			if envl.Error.Code != tc.code {
				t.Errorf("code = %q, want %q", envl.Error.Code, tc.code)
			}
			if envl.Error.Message == "" {
				t.Error("empty error message")
			}
		})
	}

	// Spec validation failures carry every offending field path in the
	// details.
	badSpec := []byte(`{
		"version": 1,
		"nodes": [
			{"id": "s", "kind": "source", "spec": {"rate": -1}},
			{"id": "w", "kind": "window", "spec": {"window": {"type": "sliding", "policy": "time", "length": 60}}}
		],
		"edges": [["s", "w"]]
	}`)
	var envl errorResponse
	if status := httpJSON(t, client, http.MethodPost, srv.URL+"/v1/jobs",
		RegisterRequest{JobID: "bad-spec", Spec: badSpec}, &envl); status != http.StatusBadRequest {
		t.Fatalf("bad-spec register status = %d, want 400", status)
	}
	if envl.Error.Code != "invalid_job" {
		t.Errorf("bad-spec code = %q, want invalid_job", envl.Error.Code)
	}
	wantPaths := map[string]bool{
		"nodes[0].spec.rate":         false,
		"nodes[1].spec.window.slide": false,
	}
	for _, d := range envl.Error.Details {
		if _, ok := wantPaths[d.Path]; ok {
			wantPaths[d.Path] = true
		}
	}
	for path, seen := range wantPaths {
		if !seen {
			t.Errorf("detail path %q missing from %+v", path, envl.Error.Details)
		}
	}
}

// TestServiceHTTPTopology exercises the PATCH endpoint end to end: a
// listing before and after, a rejected mutation with structured detail
// paths, and a committed mutation whose session keeps tuning.
func TestServiceHTTPTopology(t *testing.T) {
	s := newTestService(t, DefaultConfig())
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	client := srv.Client()
	engCfg := testEngineConfig()

	g := targetGraph(t, nexmark.Q5, 4)
	if status := httpJSON(t, client, http.MethodPost, srv.URL+"/v1/jobs",
		RegisterRequest{JobID: "patch-me", Graph: g, Engine: &engCfg}, nil); status != http.StatusOK {
		t.Fatalf("register status = %d", status)
	}

	var list JobList
	if status := httpJSON(t, client, http.MethodGet, srv.URL+"/v1/jobs", nil, &list); status != http.StatusOK {
		t.Fatalf("list status = %d", status)
	}
	if list.Total != 1 || len(list.Jobs) != 1 || list.Jobs[0].JobID != "patch-me" {
		t.Fatalf("listing = %+v", list)
	}

	// A mutation referencing an unknown node is rejected with its field
	// path and rolls back.
	var envl errorResponse
	if status := httpJSON(t, client, http.MethodPatch, srv.URL+"/v1/jobs/patch-me/topology",
		json.RawMessage(`{"version": 1, "remove_nodes": ["ghost"]}`), &envl); status != http.StatusBadRequest {
		t.Fatalf("bad mutation status = %d, want 400", status)
	}
	if envl.Error.Code != "invalid_job" || len(envl.Error.Details) == 0 ||
		envl.Error.Details[0].Path != "remove_nodes[0]" {
		t.Fatalf("bad mutation envelope = %+v", envl.Error)
	}

	var res MutateResult
	if status := httpJSON(t, client, http.MethodPatch, srv.URL+"/v1/jobs/patch-me/topology",
		json.RawMessage(prefilterMutation), &res); status != http.StatusOK {
		t.Fatalf("mutation status = %d", status)
	}
	if res.JobID != "patch-me" || res.Operators != g.NumOperators()+1 {
		t.Fatalf("mutation result = %+v", res)
	}

	var info SessionInfo
	if status := httpJSON(t, client, http.MethodGet, srv.URL+"/v1/jobs/patch-me", nil, &info); status != http.StatusOK {
		t.Fatalf("session status = %d", status)
	}
	if info.Phase != "recommend" || info.Operators != g.NumOperators()+1 {
		t.Fatalf("post-mutation session = %+v", info)
	}

	// Mutating an unknown job is 404 under the new envelope.
	if status := httpJSON(t, client, http.MethodPatch, srv.URL+"/v1/jobs/ghost/topology",
		json.RawMessage(`{"version": 1, "remove_nodes": ["x"]}`), &envl); status != http.StatusNotFound {
		t.Fatalf("unknown-job mutation status = %d, want 404", status)
	}
	if envl.Error.Code != "unknown_job" {
		t.Errorf("unknown-job mutation code = %q", envl.Error.Code)
	}
}
