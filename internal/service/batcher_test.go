package service

import (
	"context"
	"encoding/json"
	"errors"
	"reflect"
	"runtime"
	"sync"
	"testing"
	"time"

	"github.com/streamtune/streamtune/internal/dag"
	"github.com/streamtune/streamtune/internal/engine"
	"github.com/streamtune/streamtune/internal/faultinject"
	"github.com/streamtune/streamtune/internal/ged"
	"github.com/streamtune/streamtune/internal/gnn"
	"github.com/streamtune/streamtune/internal/nexmark"
)

// requireSameSession asserts a batched inference session is bitwise
// identical to the single-graph path for the same graph.
func requireSameSession(t *testing.T, enc *gnn.Encoder, got *gnn.InferSession, g *dag.Graph) {
	t.Helper()
	want, err := enc.NewInferSession(g)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.AgnosticProbs(), want.AgnosticProbs()) {
		t.Fatalf("batched agnostic probs diverge from single-graph session")
	}
	if !reflect.DeepEqual(got.Embeddings(), want.Embeddings()) {
		t.Fatalf("batched embeddings diverge from single-graph session")
	}
}

// TestBatcherCoalescesSameFingerprint fills one queue to maxBatch from
// concurrent waiters and demands a single full-batch flush whose
// per-graph results match the single-graph path bit for bit.
func TestBatcherCoalescesSameFingerprint(t *testing.T) {
	pt := sharedPreTrained(t)
	base := targetGraph(t, nexmark.Q5, 1)
	c, _ := pt.AssignCluster(base)
	enc := pt.Encoder(c)
	fp := ged.Fingerprint(base)

	const waiters = 3
	// The window is a backstop only: the queue reaches maxBatch and
	// flushes full, so the test never actually waits this long.
	b := newBatcher(time.Minute, waiters, 0)
	graphs := make([]*dag.Graph, waiters)
	for i := range graphs {
		graphs[i] = base.Clone()
		graphs[i].ScaleSourceRates(float64(i + 2))
	}
	sessions := make([]*gnn.InferSession, waiters)
	errs := make([]error, waiters)
	var wg sync.WaitGroup
	for i := range graphs {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sessions[i], errs[i] = b.inferSession(context.Background(), enc, fp, graphs[i])
		}()
	}
	wg.Wait()
	for i := range graphs {
		if errs[i] != nil {
			t.Fatalf("waiter %d: %v", i, errs[i])
		}
		requireSameSession(t, enc, sessions[i], graphs[i])
	}
	occ, flushes, batched, single := b.stats()
	if flushes != 1 || batched != waiters || single != 0 {
		t.Errorf("stats = %d flushes / %d batched / %d single, want 1/%d/0", flushes, batched, single, waiters)
	}
	if occ[waiters] != 1 {
		t.Errorf("occupancy = %v, want exactly one batch of %d", occ, waiters)
	}
}

// TestBatcherDeadlineFlushesLoneWaiter pins the deadline path: a single
// request waits out the window, then falls through as a batch of one.
func TestBatcherDeadlineFlushesLoneWaiter(t *testing.T) {
	pt := sharedPreTrained(t)
	g := targetGraph(t, nexmark.Q5, 4)
	c, _ := pt.AssignCluster(g)
	enc := pt.Encoder(c)

	const window = 10 * time.Millisecond
	b := newBatcher(window, 8, 0)
	start := time.Now()
	sess, err := b.inferSession(context.Background(), enc, ged.Fingerprint(g), g)
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < window {
		t.Errorf("lone request completed in %v, before its %v deadline", elapsed, window)
	}
	requireSameSession(t, enc, sess, g)
	occ, flushes, batched, single := b.stats()
	if flushes != 1 || batched != 0 || single != 1 {
		t.Errorf("stats = %d flushes / %d batched / %d single, want 1/0/1", flushes, batched, single)
	}
	if occ[1] != 1 {
		t.Errorf("occupancy = %v, want exactly one batch of 1", occ)
	}
}

// TestBatcherMixedFingerprints interleaves two structures: requests must
// coalesce only within their own fingerprint's queue, never across.
func TestBatcherMixedFingerprints(t *testing.T) {
	pt := sharedPreTrained(t)
	type job struct {
		g   *dag.Graph
		enc *gnn.Encoder
		fp  string
	}
	var jobs []job
	for _, q := range []nexmark.Query{nexmark.Q5, nexmark.Q3} {
		for _, rate := range []float64{2, 3} {
			g := targetGraph(t, q, rate)
			c, _ := pt.AssignCluster(g)
			jobs = append(jobs, job{g: g, enc: pt.Encoder(c), fp: ged.Fingerprint(g)})
		}
	}
	if jobs[0].fp == jobs[2].fp {
		t.Fatal("test premise broken: Q5 and Q3 share a fingerprint")
	}

	// maxBatch matches the per-fingerprint job count, so each queue
	// flushes full and deterministically; the long window is a backstop.
	b := newBatcher(time.Minute, 2, 0)
	sessions := make([]*gnn.InferSession, len(jobs))
	errs := make([]error, len(jobs))
	var wg sync.WaitGroup
	for i, j := range jobs {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sessions[i], errs[i] = b.inferSession(context.Background(), j.enc, j.fp, j.g)
		}()
	}
	wg.Wait()
	for i, j := range jobs {
		if errs[i] != nil {
			t.Fatalf("job %d: %v", i, errs[i])
		}
		requireSameSession(t, j.enc, sessions[i], j.g)
	}
	occ, flushes, batched, single := b.stats()
	if flushes != 2 || batched != 4 || single != 0 {
		t.Errorf("stats = %d flushes / %d batched / %d single, want 2/4/0", flushes, batched, single)
	}
	if occ[2] != 2 {
		t.Errorf("occupancy = %v, want two batches of 2", occ)
	}
}

// TestBatcherCloseMidWait shuts the batcher down while a request sits in
// an open window; the waiter must complete through the single-graph
// fallback, and later requests must bypass coalescing entirely.
func TestBatcherCloseMidWait(t *testing.T) {
	pt := sharedPreTrained(t)
	g := targetGraph(t, nexmark.Q5, 4)
	c, _ := pt.AssignCluster(g)
	enc := pt.Encoder(c)
	fp := ged.Fingerprint(g)

	b := newBatcher(time.Hour, 8, 0) // nothing flushes unless close does
	type res struct {
		sess *gnn.InferSession
		err  error
	}
	done := make(chan res, 1)
	go func() {
		sess, err := b.inferSession(context.Background(), enc, fp, g)
		done <- res{sess, err}
	}()
	waitFor(t, func() bool {
		b.mu.Lock()
		defer b.mu.Unlock()
		return len(b.queues) == 1
	})
	b.close()
	r := <-done
	if r.err != nil {
		t.Fatal(r.err)
	}
	requireSameSession(t, enc, r.sess, g)

	// Post-close requests run unbatched, immediately.
	sess, err := b.inferSession(context.Background(), enc, fp, g)
	if err != nil {
		t.Fatal(err)
	}
	requireSameSession(t, enc, sess, g)
	b.close() // idempotent

	occ, flushes, batched, single := b.stats()
	if flushes != 0 || batched != 0 || single != 2 {
		t.Errorf("stats = %d flushes / %d batched / %d single, want 0/0/2", flushes, batched, single)
	}
	if len(occ) != 0 {
		t.Errorf("occupancy = %v, want empty (no batched executions)", occ)
	}
}

// TestBatcherDisabled covers the nil batcher: every operation degrades
// to the direct path without panicking.
func TestBatcherDisabled(t *testing.T) {
	pt := sharedPreTrained(t)
	g := targetGraph(t, nexmark.Q5, 4)
	c, _ := pt.AssignCluster(g)
	enc := pt.Encoder(c)

	b := newBatcher(0, 8, 0)
	if b != nil {
		t.Fatal("zero window must disable batching")
	}
	sess, err := b.inferSession(context.Background(), enc, ged.Fingerprint(g), g)
	if err != nil {
		t.Fatal(err)
	}
	requireSameSession(t, enc, sess, g)
	if _, err := b.inferSessions(enc, []*dag.Graph{g}); err != nil {
		t.Fatal(err)
	}
	b.close()
	occ, flushes, batched, single := b.stats()
	if occ != nil || flushes != 0 || batched != 0 || single != 0 {
		t.Errorf("nil batcher stats = %v/%d/%d/%d, want all zero", occ, flushes, batched, single)
	}
}

// waitFor polls cond until it holds or the test times out.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached within 10s")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestServiceBatchedMatchesSequential is the end-to-end differential
// test for the tentpole: jobs tuned through a batching service — two of
// them structural clones sharing a coalescing queue — must converge to
// exactly the recommendations of caller-owned sequential tuners. It
// then snapshots the finished registry and restores it onto a second
// batching service, whose grouped resume must batch the structural
// clones into one block-diagonal forward (deterministic occupancy).
func TestServiceBatchedMatchesSequential(t *testing.T) {
	engCfg := testEngineConfig()
	jobs := []struct {
		id   string
		q    nexmark.Query
		rate float64
	}{
		{"q5-lo", nexmark.Q5, 4}, {"q5-hi", nexmark.Q5, 6}, {"q3", nexmark.Q3, 5},
	}

	want := make([]map[string]int, len(jobs))
	for i, j := range jobs {
		want[i] = sequentialResult(t, targetGraph(t, j.q, j.rate), engCfg)
	}

	s := newTestService(t, Config{Workers: 4, BatchWindow: 5 * time.Millisecond, MaxBatch: 8})
	graphs := make([]*dag.Graph, len(jobs))
	var wg sync.WaitGroup
	for i, j := range jobs {
		graphs[i] = targetGraph(t, j.q, j.rate)
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := s.Register(context.Background(), j.id, graphs[i], engCfg); err != nil {
				t.Errorf("register %s: %v", j.id, err)
			}
		}()
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	got := make([]map[string]int, len(jobs))
	for i, j := range jobs {
		wg.Add(1)
		go func() {
			defer wg.Done()
			got[i] = driveJob(t, s, j.id, graphs[i], engCfg)
		}()
	}
	wg.Wait()
	for i, j := range jobs {
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Errorf("job %s: batched service diverged from sequential tuner:\n got %v\nwant %v",
				j.id, got[i], want[i])
		}
	}
	st := s.Stats()
	if st.Batching.Flushes == 0 {
		t.Error("BatchFlushes = 0: no inference ran through the batcher")
	}
	if total := st.Batching.BatchedSessions + st.Batching.UnbatchedSessions; total < uint64(len(jobs)) {
		t.Errorf("batcher served %d sessions, want >= %d", total, len(jobs))
	}

	// Restore groups the two Q5 clones into one batch of 2 and the Q3
	// job into a batch of 1 — deterministically, no window involved.
	data, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	var snap ServiceSnapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatal(err)
	}
	if len(snap.Sessions) != len(jobs) {
		t.Fatalf("snapshot holds %d sessions, want %d", len(snap.Sessions), len(jobs))
	}
	restored, err := Restore(s.PreTrained(), Config{BatchWindow: 5 * time.Millisecond}, data)
	if err != nil {
		t.Fatal(err)
	}
	occ := restored.BatchOccupancy()
	if occ[2] != 1 || occ[1] != 1 {
		t.Errorf("restore occupancy = %v, want one batch of 2 and one of 1", occ)
	}
	for i, j := range jobs {
		rec, err := restored.Recommend(context.Background(), j.id)
		if err != nil {
			t.Fatal(err)
		}
		if !rec.Done || !reflect.DeepEqual(rec.Parallelism, want[i]) {
			t.Errorf("job %s: restored recommendation diverged:\n got %v (done=%v)\nwant %v",
				j.id, rec.Parallelism, rec.Done, want[i])
		}
	}
}

// TestEvictIdleSkipsBusySession is the snapshot-during-eviction
// regression test: a session whose Observe is queued behind a saturated
// worker pool must survive EvictIdle no matter how stale its lease
// looks, and the concurrent snapshot must still carry it. Once the
// request completes the session is evictable again.
func TestEvictIdleSkipsBusySession(t *testing.T) {
	now := time.Unix(1000, 0)
	var clockMu sync.Mutex
	clock := func() time.Time {
		clockMu.Lock()
		defer clockMu.Unlock()
		return now
	}
	advance := func(d time.Duration) {
		clockMu.Lock()
		now = now.Add(d)
		clockMu.Unlock()
	}

	s := newTestService(t, Config{LeaseTTL: time.Minute, Workers: 1, Clock: clock})
	engCfg := testEngineConfig()
	g := targetGraph(t, nexmark.Q5, 4)
	if _, err := s.Register(context.Background(), "job", g, engCfg); err != nil {
		t.Fatal(err)
	}
	rec, err := s.Recommend(context.Background(), "job")
	if err != nil {
		t.Fatal(err)
	}
	eng, err := engine.New(g, engCfg)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Deploy {
		if err := eng.Deploy(rec.Parallelism); err != nil {
			t.Fatal(err)
		}
		eng.Stabilize(s.pt.Config.StabilizeWait)
	}
	m, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}

	// Saturate the single-worker pool so the Observe below queues with
	// its session already marked busy.
	gate := make(chan struct{})
	holding := make(chan struct{})
	poolDone := make(chan struct{})
	go func() {
		defer close(poolDone)
		_ = s.pool.Do(func() error {
			close(holding)
			<-gate
			return nil
		})
	}()
	<-holding
	obsErr := make(chan error, 1)
	go func() {
		_, err := s.Observe(context.Background(), "job", m)
		obsErr <- err
	}()
	s.mu.Lock()
	sess := s.sessions["job"]
	s.mu.Unlock()
	waitFor(t, func() bool { return sess.busy.Load() > 0 })

	// The lease is now 2m stale, but the queued request keeps the
	// session alive — eviction must skip it and the snapshot keep it.
	advance(2 * time.Minute)
	if n := s.EvictIdle(); n != 0 {
		t.Fatalf("evicted %d sessions with a request in flight, want 0", n)
	}
	data, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	var snap ServiceSnapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatal(err)
	}
	if len(snap.Sessions) != 1 || snap.Sessions[0].JobID != "job" {
		t.Fatalf("snapshot during eviction lost the busy session: %+v", snap.Sessions)
	}

	close(gate)
	<-poolDone
	if err := <-obsErr; err != nil {
		t.Fatalf("queued observe failed: %v", err)
	}

	// With the request done (and the lease it renewed stale again), the
	// session is ordinary idle state and must evict.
	waitFor(t, func() bool { return sess.busy.Load() == 0 })
	advance(2 * time.Minute)
	if n := s.EvictIdle(); n != 1 {
		t.Fatalf("evicted %d sessions after the request drained, want 1", n)
	}
	if _, err := s.Session("job"); !errors.Is(err, ErrUnknownJob) {
		t.Fatalf("busy-skipped session survived its real eviction: %v", err)
	}
}

// TestBatcherFlushInjectedError arms the flush failpoint and asserts a
// full-batch flush fans the injected error out to every waiter — no
// waiter hangs, none receives a half-built session.
func TestBatcherFlushInjectedError(t *testing.T) {
	defer faultinject.Reset()
	pt := sharedPreTrained(t)
	base := targetGraph(t, nexmark.Q5, 1)
	c, _ := pt.AssignCluster(base)
	enc := pt.Encoder(c)
	fp := ged.Fingerprint(base)

	faultinject.Enable(faultinject.BatcherFlush)
	const waiters = 3
	b := newBatcher(time.Minute, waiters, 0)
	errs := make([]error, waiters)
	var wg sync.WaitGroup
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		g := base.Clone()
		g.ScaleSourceRates(float64(i + 2))
		go func() {
			defer wg.Done()
			_, errs[i] = b.inferSession(context.Background(), enc, fp, g)
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if !errors.Is(err, faultinject.ErrInjected) {
			t.Fatalf("waiter %d: err = %v, want the injected flush error", i, err)
		}
	}
}

// TestBatcherCloseUnderInjectedFlushErrors is the shutdown satellite: a
// close that drains parked waiters while the flush failpoint fires must
// answer every waiter — some with the injected error, the rest through
// the single-graph fallback — and never hang.
func TestBatcherCloseUnderInjectedFlushErrors(t *testing.T) {
	defer faultinject.Reset()
	pt := sharedPreTrained(t)
	base := targetGraph(t, nexmark.Q5, 1)
	c, _ := pt.AssignCluster(base)
	enc := pt.Encoder(c)
	fp := ged.Fingerprint(base)

	const waiters = 4
	b := newBatcher(time.Hour, waiters+1, 0) // parks until close drains
	type result struct {
		sess *gnn.InferSession
		err  error
	}
	results := make(chan result, waiters)
	graphs := make([]*dag.Graph, waiters)
	for i := range graphs {
		graphs[i] = base.Clone()
		graphs[i].ScaleSourceRates(float64(i + 2))
		g := graphs[i]
		go func() {
			sess, err := b.inferSession(context.Background(), enc, fp, g)
			results <- result{sess, err}
		}()
	}
	// Wait until every waiter is parked in the window.
	deadline := time.Now().Add(10 * time.Second)
	for {
		b.mu.Lock()
		parked := b.pending
		b.mu.Unlock()
		if parked == waiters {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d waiters parked", parked, waiters)
		}
		runtime.Gosched()
	}

	// Two of the four shutdown fallbacks fail; the rest must succeed.
	faultinject.Enable(faultinject.BatcherFlush, faultinject.Times(2))
	done := make(chan struct{})
	go func() { b.close(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("close hung with waiters parked")
	}

	var failed, ok int
	for i := 0; i < waiters; i++ {
		select {
		case r := <-results:
			switch {
			case errors.Is(r.err, faultinject.ErrInjected):
				failed++
			case r.err == nil && r.sess != nil:
				ok++
			default:
				t.Fatalf("waiter returned (%v, %v): neither fallback nor injected error", r.sess, r.err)
			}
		case <-time.After(30 * time.Second):
			t.Fatalf("waiter %d never answered after close", i)
		}
	}
	if failed != 2 || ok != 2 {
		t.Fatalf("close drained %d failed / %d ok, want 2/2", failed, ok)
	}
}

// TestBatcherContextCancelAbandonsWait asserts a parked waiter whose
// context dies leaves immediately; the batch it abandoned still flushes
// for the others.
func TestBatcherContextCancelAbandonsWait(t *testing.T) {
	pt := sharedPreTrained(t)
	g := targetGraph(t, nexmark.Q5, 4)
	c, _ := pt.AssignCluster(g)
	enc := pt.Encoder(c)

	b := newBatcher(time.Hour, 8, 0)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := b.inferSession(ctx, enc, ged.Fingerprint(g), g)
		done <- err
	}()
	deadline := time.Now().Add(10 * time.Second)
	for {
		b.mu.Lock()
		parked := b.pending
		b.mu.Unlock()
		if parked == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("waiter never parked")
		}
		runtime.Gosched()
	}
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("abandoned wait = %v, want context.Canceled", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("canceled waiter still parked")
	}
	b.close() // drains the abandoned request's slot; must not hang
}
