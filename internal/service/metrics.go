package service

import (
	"sync/atomic"
	"time"

	"github.com/streamtune/streamtune/internal/streamtune"
	"github.com/streamtune/streamtune/internal/telemetry"
)

// Metrics bundles the service's telemetry instruments over one
// registry, exposed in Prometheus text format at GET /metrics. Create
// one with NewMetrics and pass it in Config; a nil Metrics disables
// every instrument (all hooks are nil-safe no-ops), which is the
// provably inert path — recommendations are differential-tested
// bit-identical with telemetry enabled vs disabled.
//
// Two instrument styles coexist:
//
//   - Hot-path instruments (latency histograms, batch occupancy,
//     per-tenant reconfiguration/backpressure counters, fit/distill
//     counters) are updated inline by the serving path: each update is
//     a handful of atomic operations and zero allocations
//     (internal/telemetry's AllocsPerRun tests pin this).
//   - The Stats counter families are exported at scrape time by reading
//     the service's existing atomics, so mirroring them into /metrics
//     costs the hot path nothing at all.
//
// One Metrics serves one service at a time: New binds the service at
// construction, and a restored service (same Config) rebinds to itself,
// so checkpoint recovery keeps the same registry without re-registering
// families.
type Metrics struct {
	reg *telemetry.Registry

	// Serving-path latency histograms, one child per operation,
	// resolved once here so the request path never touches the vec map.
	registerSeconds  *telemetry.Histogram
	recommendSeconds *telemetry.Histogram
	observeSeconds   *telemetry.Histogram
	mutateSeconds    *telemetry.Histogram

	// checkpointSeconds tracks full checkpoint writes (snapshot + fsync
	// + rename); batchOccupancy and observeOccupancy the executed batch
	// sizes of the two coalescers.
	checkpointSeconds *telemetry.Histogram
	batchOccupancy    *telemetry.Histogram
	observeOccupancy  *telemetry.Histogram

	// Tuning-core counters: model refits and distillation passes across
	// all tenants, plus per-tenant reconfiguration and backpressure
	// counters (children resolved per session at admission, deleted on
	// release/eviction so family cardinality tracks live sessions).
	tunerFits     *telemetry.Counter
	tunerDistills *telemetry.Counter
	reconfigs     *telemetry.CounterVec
	backpressure  *telemetry.CounterVec

	// svc is the bound service the scrape-time families read; rebound by
	// New so a restored service takes over the registry.
	svc atomic.Pointer[Service]
}

// NewMetrics registers the service's metric families on reg (a fresh
// registry per service lineage — families are registered exactly once)
// and returns the bundle to pass in Config.Metrics.
func NewMetrics(reg *telemetry.Registry) *Metrics {
	m := &Metrics{reg: reg}

	lat := reg.HistogramVec("streamtune_request_duration_seconds",
		"Serving-path latency by operation, measured inside the service (includes worker-pool queueing).",
		telemetry.LatencyBuckets, "op")
	m.registerSeconds = lat.With("register")
	m.recommendSeconds = lat.With("recommend")
	m.observeSeconds = lat.With("observe")
	m.mutateSeconds = lat.With("mutate")

	m.checkpointSeconds = reg.Histogram("streamtune_checkpoint_duration_seconds",
		"Checkpoint write latency: registry snapshot, atomic write, rotation.", telemetry.LatencyBuckets)
	m.batchOccupancy = reg.Histogram("streamtune_batch_occupancy",
		"Executed inference batch sizes (sessions coalesced per flush).", telemetry.SizeBuckets)
	m.observeOccupancy = reg.Histogram("streamtune_observe_batch_occupancy",
		"Executed observe-coalescer flush sizes.", telemetry.SizeBuckets)

	m.tunerFits = reg.Counter("streamtune_tuner_fits_total",
		"Prediction-model refits across all tenants (fit deduplication makes these sparse).")
	m.tunerDistills = reg.Counter("streamtune_tuner_distills_total",
		"Head-distillation passes across all tenants.")
	m.reconfigs = reg.CounterVec("streamtune_tuner_reconfigurations_total",
		"Deployed reconfigurations per tenant.", "job")
	m.backpressure = reg.CounterVec("streamtune_backpressure_windows_total",
		"Measured windows reporting job-level backpressure, per tenant.", "job")

	// --- Scrape-time mirrors of the Stats counters ---
	counter := func(name, help string, f func(*Service) float64) {
		reg.CounterFunc(name, help, func() float64 {
			if s := m.svc.Load(); s != nil {
				return f(s)
			}
			return 0
		})
	}
	gauge := func(name, help string, f func(*Service) float64) {
		reg.GaugeFunc(name, help, func() float64 {
			if s := m.svc.Load(); s != nil {
				return f(s)
			}
			return 0
		})
	}

	gauge("streamtune_ready", "1 when the service is ready to serve (restore finished, not draining).",
		func(s *Service) float64 {
			if s.Ready() {
				return 1
			}
			return 0
		})
	gauge("streamtune_sessions_active", "Sessions currently registered.",
		func(s *Service) float64 {
			s.mu.Lock()
			n := len(s.sessions)
			s.mu.Unlock()
			return float64(n)
		})
	counter("streamtune_sessions_registered_total", "Successful admissions.",
		func(s *Service) float64 { return float64(s.registered.Load()) })
	counter("streamtune_sessions_rejected_total", "Rejected registrations.",
		func(s *Service) float64 { return float64(s.rejected.Load()) })
	counter("streamtune_sessions_released_total", "Explicit session releases.",
		func(s *Service) float64 { return float64(s.released.Load()) })
	counter("streamtune_sessions_evicted_total", "Idle-lease evictions.",
		func(s *Service) float64 { return float64(s.evicted.Load()) })
	counter("streamtune_sessions_completed_total", "Tuning processes converged.",
		func(s *Service) float64 { return float64(s.completed.Load()) })
	counter("streamtune_recommendations_total", "Recommend calls served.",
		func(s *Service) float64 { return float64(s.recommendations.Load()) })
	counter("streamtune_observations_total", "Measured windows absorbed.",
		func(s *Service) float64 { return float64(s.observations.Load()) })
	counter("streamtune_topology_mutations_total", "Committed mid-stream DAG mutations.",
		func(s *Service) float64 { return float64(s.topoMutations.Load()) })
	counter("streamtune_topology_mutations_rejected_total", "Rejected (rolled back) DAG mutations.",
		func(s *Service) float64 { return float64(s.topoRejected.Load()) })

	counter("streamtune_admission_cache_hits_total", "Cluster assignments fully resolved from the shared GED cache.",
		func(s *Service) float64 { return float64(s.admissionHits.Load()) })
	counter("streamtune_admission_cache_misses_total", "Cluster assignments that computed at least one exact GED.",
		func(s *Service) float64 { return float64(s.admissionMisses.Load()) })
	counter("streamtune_admission_cache_resets_total", "Admission-cache epoch resets at the capacity bound.",
		func(s *Service) float64 { return float64(s.admission.Resets()) })
	gauge("streamtune_admission_cache_size", "Distance pairs held by the admission cache.",
		func(s *Service) float64 { return float64(s.admission.Len()) })
	counter("streamtune_encoder_warm_hits_total", "Registrations landing on an already-warm cluster encoder.",
		func(s *Service) float64 { return float64(s.encoderWarmHits.Load()) })

	counter("streamtune_batch_flushes_total", "Executed inference batches (any size).",
		func(s *Service) float64 { f, _, _ := s.batch.counts(); return float64(f) })
	counter("streamtune_batched_sessions_total", "Sessions served from multi-request inference batches.",
		func(s *Service) float64 { _, b, _ := s.batch.counts(); return float64(b) })
	counter("streamtune_unbatched_sessions_total", "Sessions served from lone flushes or fallbacks.",
		func(s *Service) float64 { _, _, u := s.batch.counts(); return float64(u) })
	counter("streamtune_observe_batch_flushes_total", "Executed observe-coalescer flushes.",
		func(s *Service) float64 { f, _, _ := s.observe.stats(); return float64(f) })
	counter("streamtune_batched_observations_total", "Observations served from multi-request flushes.",
		func(s *Service) float64 { _, b, _ := s.observe.stats(); return float64(b) })
	counter("streamtune_unbatched_observations_total", "Observations served unbatched.",
		func(s *Service) float64 { _, _, u := s.observe.stats(); return float64(u) })

	gauge("streamtune_workers_in_flight", "Worker-pool tasks executing right now.",
		func(s *Service) float64 { return float64(s.pool.InFlight()) })
	gauge("streamtune_worker_cap", "Worker-pool size.",
		func(s *Service) float64 { return float64(s.pool.Cap()) })
	gauge("streamtune_workers_queued", "Admitted requests waiting for a worker slot (queue depth).",
		func(s *Service) float64 { return float64(s.pool.Queued()) })
	counter("streamtune_shed_total", "Requests shed with 503 (waiting room or batcher saturated).",
		func(s *Service) float64 { return float64(s.shed.Load()) })
	counter("streamtune_deadline_exceeded_total", "Requests abandoned to their deadline.",
		func(s *Service) float64 { return float64(s.deadlineExceeded.Load()) })
	counter("streamtune_request_canceled_total", "Requests abandoned by their client.",
		func(s *Service) float64 { return float64(s.canceled.Load()) })

	counter("streamtune_registry_mutations_total", "Registry state changes (the checkpointer's dirtiness signal).",
		func(s *Service) float64 { return float64(s.mutations.Load()) })
	counter("streamtune_checkpoints_written_total", "Successful checkpoint writes.",
		func(s *Service) float64 { return float64(s.checkpointsWritten.Load()) })
	counter("streamtune_checkpoint_failures_total", "Failed checkpoint attempts.",
		func(s *Service) float64 { return float64(s.checkpointFailures.Load()) })
	gauge("streamtune_checkpoint_last_bytes", "Size of the newest checkpoint.",
		func(s *Service) float64 { return float64(s.checkpointLastBytes.Load()) })
	gauge("streamtune_checkpoint_last_seq", "Sequence number of the newest checkpoint.",
		func(s *Service) float64 { return float64(s.checkpointLastSeq.Load()) })

	return m
}

// Registry returns the underlying registry (for the /metrics handler
// and for embedding extra families alongside the service's).
func (m *Metrics) Registry() *telemetry.Registry {
	if m == nil {
		return nil
	}
	return m.reg
}

// bind points the scrape-time families at svc. Called by New; the last
// bound service wins, which is exactly what checkpoint recovery wants.
func (m *Metrics) bind(svc *Service) {
	if m != nil {
		m.svc.Store(svc)
	}
}

// RequestQuantile reports the q-quantile of one operation's latency
// histogram in milliseconds (op is register, recommend, observe, or
// mutate; zero when telemetry is disabled or the op unknown). The
// service benchmark snapshots these into BENCH_service.json for
// benchguard's latency ceilings.
func (m *Metrics) RequestQuantile(op string, q float64) float64 {
	h := m.opHistogram(op)
	return h.Quantile(q) * 1e3
}

// RequestCount reports the observation count of one operation's latency
// histogram.
func (m *Metrics) RequestCount(op string) uint64 {
	return m.opHistogram(op).Count()
}

func (m *Metrics) opHistogram(op string) *telemetry.Histogram {
	if m == nil {
		return nil
	}
	switch op {
	case "register":
		return m.registerSeconds
	case "recommend":
		return m.recommendSeconds
	case "observe":
		return m.observeSeconds
	case "mutate":
		return m.mutateSeconds
	}
	return nil
}

// sinceRegister (and siblings) observe one completed operation's
// latency; all are nil-safe so call sites need no telemetry branches:
//
//	defer s.cfg.Metrics.sinceRegister(time.Now())
func (m *Metrics) sinceRegister(t0 time.Time) {
	if m != nil {
		m.registerSeconds.Observe(time.Since(t0).Seconds())
	}
}

func (m *Metrics) sinceRecommend(t0 time.Time) {
	if m != nil {
		m.recommendSeconds.Observe(time.Since(t0).Seconds())
	}
}

func (m *Metrics) sinceObserve(t0 time.Time) {
	if m != nil {
		m.observeSeconds.Observe(time.Since(t0).Seconds())
	}
}

func (m *Metrics) sinceMutate(t0 time.Time) {
	if m != nil {
		m.mutateSeconds.Observe(time.Since(t0).Seconds())
	}
}

func (m *Metrics) sinceCheckpoint(t0 time.Time) {
	if m != nil {
		m.checkpointSeconds.Observe(time.Since(t0).Seconds())
	}
}

// jobCounters resolves the per-tenant counters for one session (nil,
// nil when telemetry is disabled).
func (m *Metrics) jobCounters(id string) (reconfigs, backpressure *telemetry.Counter) {
	if m == nil {
		return nil, nil
	}
	return m.reconfigs.With(id), m.backpressure.With(id)
}

// dropJob removes a released or evicted session's per-tenant counters,
// bounding label cardinality to live sessions.
func (m *Metrics) dropJob(id string) {
	if m == nil {
		return
	}
	m.reconfigs.Delete(id)
	m.backpressure.Delete(id)
}

// tunerInstruments builds the fit/distill hooks handed to every tuner
// the service constructs (zero value when telemetry is disabled — the
// hooks stay nil and the tuner skips them).
func (m *Metrics) tunerInstruments() streamtune.Instruments {
	if m == nil {
		return streamtune.Instruments{}
	}
	return streamtune.Instruments{OnFit: m.tunerFits.Inc, OnDistill: m.tunerDistills.Inc}
}
