package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strconv"
	"time"

	"github.com/streamtune/streamtune/internal/dag"
	"github.com/streamtune/streamtune/internal/dagspec"
	"github.com/streamtune/streamtune/internal/engine"
	"github.com/streamtune/streamtune/internal/logbuffer"
)

// RegisterRequest is the POST /v1/jobs body. Exactly one of Graph (the
// internal dag.Graph JSON form) or Spec (a dagspec document) must carry
// the topology; both admit identically — a spec compiles to the same
// graph, fingerprint, and recommendations as registering the compiled
// graph directly.
type RegisterRequest struct {
	JobID string     `json:"job_id"`
	Graph *dag.Graph `json:"graph,omitempty"`
	// Spec is an external query-DAG spec document (see internal/dagspec
	// and API.md). Validation failures surface as field-path details in
	// the error envelope.
	Spec json.RawMessage `json:"spec,omitempty"`
	// Engine describes the client's system. Omitted fields fall back to
	// the Flink evaluation defaults.
	Engine *engine.Config `json:"engine_config,omitempty"`
}

// ObserveRequest is the POST /v1/jobs/{id}/metrics body.
type ObserveRequest struct {
	Metrics *engine.JobMetrics `json:"metrics"`
}

// ObserveResponse reports whether the tuning process completed.
type ObserveResponse struct {
	JobID string `json:"job_id"`
	Done  bool   `json:"done"`
}

// ErrorDetail locates one field-level failure inside a rejected
// document, mirroring dagspec.FieldError.
type ErrorDetail struct {
	Path    string `json:"path,omitempty"`
	Message string `json:"message"`
}

// ErrorInfo is the machine-readable error envelope: a stable code for
// programmatic dispatch, a human-readable message, and, for validation
// failures, the structured field paths of every offending field.
type ErrorInfo struct {
	Code    string        `json:"code"`
	Message string        `json:"message"`
	Details []ErrorDetail `json:"details,omitempty"`
}

// errorResponse is the uniform error body: {"error": {"code": ...,
// "message": ..., "details": [...]}}.
type errorResponse struct {
	Error ErrorInfo `json:"error"`
}

// codeFor maps service errors to their stable machine-readable codes.
// Every code here is documented in API.md.
func codeFor(err error) string {
	switch {
	case errors.Is(err, ErrUnknownJob):
		return "unknown_job"
	case errors.Is(err, ErrDuplicateJob):
		return "duplicate_job"
	case errors.Is(err, ErrAwaitingMetrics):
		return "awaiting_metrics"
	case errors.Is(err, ErrAwaitingRecommend):
		return "awaiting_recommend"
	case errors.Is(err, ErrCompleted):
		return "completed"
	case errors.Is(err, ErrMutating):
		return "mutation_in_progress"
	case errors.Is(err, ErrSessionLimit):
		return "session_limit"
	case errors.Is(err, ErrOverloaded):
		return "overloaded"
	case errors.Is(err, context.DeadlineExceeded):
		return "deadline_exceeded"
	case errors.Is(err, context.Canceled):
		return "client_closed_request"
	case errors.Is(err, ErrInvalidJob):
		return "invalid_job"
	case errors.Is(err, errRequestTooLarge):
		return "request_too_large"
	case errors.Is(err, ErrNotReady):
		return "not_ready"
	case errors.Is(err, errTelemetryDisabled):
		return "telemetry_disabled"
	}
	return "internal"
}

// errorInfoFor builds the envelope payload for an error, surfacing
// dagspec validation failures as structured field-path details.
func errorInfoFor(err error) ErrorInfo {
	info := ErrorInfo{Code: codeFor(err), Message: err.Error()}
	var verrs dagspec.ValidationErrors
	if errors.As(err, &verrs) {
		for _, fe := range verrs {
			info.Details = append(info.Details, ErrorDetail{Path: fe.Path, Message: fe.Message})
		}
	}
	return info
}

// maxRequestBytes caps request bodies. The largest legitimate body is a
// registration carrying a job DAG — a few KB — so 4 MiB is generous
// headroom while still stopping a tenant from streaming an unbounded
// body into the decoder.
const maxRequestBytes = 4 << 20

// decodeRequest decodes a JSON request body with the server-side
// hygiene the bare json.Decoder lacks: the body is size-capped, unknown
// fields are rejected (catching misspelled keys that would otherwise
// silently decode to an empty request), and trailing garbage after the
// JSON value is an error. Oversized bodies map to 413, everything else
// to 400 via ErrInvalidJob.
func decodeRequest(w http.ResponseWriter, r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			return fmt.Errorf("%w: body exceeds %d bytes", errRequestTooLarge, tooLarge.Limit)
		}
		return fmt.Errorf("%w: decode request: %v", ErrInvalidJob, err)
	}
	if dec.More() {
		return fmt.Errorf("%w: decode request: trailing data after JSON body", ErrInvalidJob)
	}
	return nil
}

// errRequestTooLarge maps to 413 in statusFor; it never leaves the HTTP
// layer, so it stays unexported.
var errRequestTooLarge = errors.New("service: request body too large")

// ErrNotReady reports a readiness probe against a service that should
// not receive traffic — still restoring, or draining for shutdown. The
// HTTP layer maps it to 503 with a Retry-After hint.
var ErrNotReady = errors.New("service: not ready")

// errTelemetryDisabled reports an ops endpoint whose backing facility
// (metrics registry, log ring) is not attached; maps to 404.
var errTelemetryDisabled = errors.New("service: telemetry disabled")

// Handler returns the service's HTTP API:
//
//	POST   /v1/jobs                register a job (RegisterRequest -> RegisterResult)
//	GET    /v1/jobs                paginated session listing (JobList; ?after=&limit=)
//	GET    /v1/jobs/{id}           session state (SessionInfo)
//	DELETE /v1/jobs/{id}           release a session
//	POST   /v1/jobs/{id}/recommend next recommendation (Recommendation)
//	POST   /v1/jobs/{id}/metrics   post a measured window (ObserveRequest -> ObserveResponse)
//	PATCH  /v1/jobs/{id}/topology  mid-stream DAG mutation (dagspec.Mutation -> MutateResult)
//	GET    /v1/stats               service counters (Stats, schema v2)
//	GET    /v1/snapshot            full session snapshot (ServiceSnapshot JSON)
//	GET    /v1/logs                recent structured logs (?limit=&level=)
//	GET    /metrics                Prometheus text exposition
//	GET    /healthz                liveness probe
//	GET    /readyz                 readiness probe (503 while draining)
//
// The ops endpoints (/metrics, /healthz, /readyz, /v1/logs) never read
// a request body and never touch the worker pool or request queues, so
// probes and scrapes stay responsive under overload.
//
// Every error body is an errorResponse envelope; see API.md.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleRegister)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleSession)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleRelease)
	mux.HandleFunc("POST /v1/jobs/{id}/recommend", s.handleRecommend)
	mux.HandleFunc("POST /v1/jobs/{id}/metrics", s.handleObserve)
	mux.HandleFunc("PATCH /v1/jobs/{id}/topology", s.handleMutate)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /v1/snapshot", s.handleSnapshot)
	s.registerOps(mux)
	return mux
}

// OpsHandler returns only the ops surface — /metrics, /healthz,
// /readyz, /v1/logs, /v1/stats — for serving on a separate listener
// (the -metrics-addr flag), so an internal scrape port can stay off the
// tenant-facing one.
func (s *Service) OpsHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.registerOps(mux)
	return mux
}

func (s *Service) registerOps(mux *http.ServeMux) {
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /v1/logs", s.handleLogs)
}

// statusClientClosedRequest is the de-facto standard (nginx) status for
// a request abandoned by its own client; the response is never read,
// the code only keeps access logs honest.
const statusClientClosedRequest = 499

// statusFor maps service errors to HTTP status codes.
func statusFor(err error) int {
	switch {
	case errors.Is(err, ErrUnknownJob):
		return http.StatusNotFound
	case errors.Is(err, ErrDuplicateJob),
		errors.Is(err, ErrAwaitingMetrics),
		errors.Is(err, ErrAwaitingRecommend),
		errors.Is(err, ErrCompleted),
		errors.Is(err, ErrMutating):
		return http.StatusConflict
	case errors.Is(err, ErrSessionLimit):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrOverloaded):
		return http.StatusServiceUnavailable
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return statusClientClosedRequest
	case errors.Is(err, ErrInvalidJob):
		return http.StatusBadRequest
	case errors.Is(err, errRequestTooLarge):
		return http.StatusRequestEntityTooLarge
	case errors.Is(err, ErrNotReady):
		return http.StatusServiceUnavailable
	case errors.Is(err, errTelemetryDisabled):
		return http.StatusNotFound
	}
	return http.StatusInternalServerError
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v) // headers are out; nothing useful left to do on error
}

func writeError(w http.ResponseWriter, err error) {
	writeJSON(w, statusFor(err), errorResponse{Error: errorInfoFor(err)})
}

// writeError is the service-aware variant: shed requests (503) carry a
// Retry-After back-off hint so well-behaved clients spread their
// retries instead of hammering a saturated service.
func (s *Service) writeError(w http.ResponseWriter, err error) {
	status := statusFor(err)
	if status == http.StatusServiceUnavailable {
		retry := s.cfg.RetryAfter
		if retry <= 0 {
			retry = time.Second
		}
		secs := int(retry.Round(time.Second) / time.Second)
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.Itoa(secs))
	}
	writeJSON(w, status, errorResponse{Error: errorInfoFor(err)})
}

func (s *Service) handleRegister(w http.ResponseWriter, r *http.Request) {
	var req RegisterRequest
	if err := decodeRequest(w, r, &req); err != nil {
		writeError(w, err)
		return
	}
	g := req.Graph
	switch {
	case g != nil && len(req.Spec) > 0:
		writeError(w, fmt.Errorf("%w: request carries both graph and spec; send exactly one", ErrInvalidJob))
		return
	case len(req.Spec) > 0:
		spec, err := dagspec.Parse(req.Spec)
		if err != nil {
			writeError(w, fmt.Errorf("%w: invalid spec: %w", ErrInvalidJob, err))
			return
		}
		g, err = spec.Compile()
		if err != nil {
			writeError(w, fmt.Errorf("%w: invalid spec: %w", ErrInvalidJob, err))
			return
		}
	}
	cfg := engine.DefaultConfig(engine.Flink)
	if req.Engine != nil {
		cfg = *req.Engine
	}
	res, err := s.Register(r.Context(), req.JobID, g, cfg)
	if err != nil {
		s.writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

// handleMutate applies a dagspec.Mutation document (the raw PATCH body)
// to a registered job's topology.
func (s *Service) handleMutate(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxRequestBytes))
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, fmt.Errorf("%w: body exceeds %d bytes", errRequestTooLarge, tooLarge.Limit))
			return
		}
		writeError(w, fmt.Errorf("%w: read request: %v", ErrInvalidJob, err))
		return
	}
	mut, err := dagspec.ParseMutation(body)
	if err != nil {
		writeError(w, fmt.Errorf("%w: invalid mutation: %w", ErrInvalidJob, err))
		return
	}
	res, err := s.MutateTopology(r.Context(), r.PathValue("id"), mut)
	if err != nil {
		s.writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

// handleList serves the paginated session listing. Query parameters:
// after (exclusive job-ID cursor) and limit (page size, default 100).
func (s *Service) handleList(w http.ResponseWriter, r *http.Request) {
	limit := 0
	if raw := r.URL.Query().Get("limit"); raw != "" {
		n, err := strconv.Atoi(raw)
		if err != nil || n <= 0 {
			writeError(w, fmt.Errorf("%w: limit must be a positive integer, got %q", ErrInvalidJob, raw))
			return
		}
		limit = n
	}
	writeJSON(w, http.StatusOK, s.ListJobs(r.URL.Query().Get("after"), limit))
}

func (s *Service) handleSession(w http.ResponseWriter, r *http.Request) {
	info, err := s.Session(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, info)
}

func (s *Service) handleRelease(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if err := s.Release(id); err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"job_id": id, "status": "released"})
}

func (s *Service) handleRecommend(w http.ResponseWriter, r *http.Request) {
	rec, err := s.Recommend(r.Context(), r.PathValue("id"))
	if err != nil {
		s.writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, rec)
}

func (s *Service) handleObserve(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	var req ObserveRequest
	if err := decodeRequest(w, r, &req); err != nil {
		writeError(w, err)
		return
	}
	done, err := s.Observe(r.Context(), id, req.Metrics)
	if err != nil {
		s.writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, ObserveResponse{JobID: id, Done: done})
}

func (s *Service) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

func (s *Service) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	data, err := s.Snapshot()
	if err != nil {
		writeError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(data)
}

// handleMetrics serves the telemetry registry in Prometheus text
// exposition format. Without an attached registry the endpoint answers
// 404 through the error envelope, so scrapers get a stable code instead
// of the mux's bare not-found page.
func (s *Service) handleMetrics(w http.ResponseWriter, r *http.Request) {
	m := s.cfg.Metrics
	if m == nil {
		writeError(w, fmt.Errorf("%w: no metrics registry attached (pass Config.Metrics; streamtune serve attaches one)",
			errTelemetryDisabled))
		return
	}
	m.Registry().Handler().ServeHTTP(w, r)
}

// HealthResponse is the GET /healthz and /readyz success body.
type HealthResponse struct {
	Status string `json:"status"`
	// ActiveSessions is included on /readyz so a drain can be watched.
	ActiveSessions int `json:"active_sessions,omitempty"`
}

// handleHealthz is pure liveness: the process is up and serving HTTP.
// It deliberately checks nothing else — a saturated or draining service
// is still alive.
func (s *Service) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, HealthResponse{Status: "ok"})
}

// handleReadyz is readiness: checkpoint restore finished, the
// PreTrained artifact is loaded (both implied by a constructed
// service), and the server is not draining. Not-ready answers 503
// through the envelope with a Retry-After hint.
func (s *Service) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if !s.Ready() {
		s.writeError(w, fmt.Errorf("%w: draining or still restoring", ErrNotReady))
		return
	}
	s.mu.Lock()
	active := len(s.sessions)
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, HealthResponse{Status: "ready", ActiveSessions: active})
}

// LogsResponse is the GET /v1/logs body.
type LogsResponse struct {
	Entries []logbuffer.Entry `json:"entries"`
	// TotalAppended counts every entry ever logged; subtracting
	// len(Entries) bounds how many scrolled out of the ring.
	TotalAppended uint64 `json:"total_appended"`
	Capacity      int    `json:"capacity"`
}

// handleLogs serves the newest entries of the structured-log ring.
// Query parameters: limit (max entries, default 100) and level (minimum
// severity: debug, info, warn, error; default debug — the ring already
// filtered at the logger's level).
func (s *Service) handleLogs(w http.ResponseWriter, r *http.Request) {
	buf := s.cfg.Logs
	if buf == nil {
		writeError(w, fmt.Errorf("%w: no log buffer attached (pass Config.Logs; streamtune serve attaches one)",
			errTelemetryDisabled))
		return
	}
	limit := 100
	if raw := r.URL.Query().Get("limit"); raw != "" {
		n, err := strconv.Atoi(raw)
		if err != nil || n <= 0 {
			writeError(w, fmt.Errorf("%w: limit must be a positive integer, got %q", ErrInvalidJob, raw))
			return
		}
		limit = n
	}
	minLevel := slog.LevelDebug
	if raw := r.URL.Query().Get("level"); raw != "" {
		lvl, err := logbuffer.ParseLevel(raw)
		if err != nil {
			writeError(w, fmt.Errorf("%w: %v", ErrInvalidJob, err))
			return
		}
		minLevel = lvl
	}
	entries := buf.Query(minLevel, limit)
	if entries == nil {
		entries = []logbuffer.Entry{}
	}
	writeJSON(w, http.StatusOK, LogsResponse{
		Entries:       entries,
		TotalAppended: buf.Appended(),
		Capacity:      buf.Cap(),
	})
}
