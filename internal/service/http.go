package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"github.com/streamtune/streamtune/internal/dag"
	"github.com/streamtune/streamtune/internal/dagspec"
	"github.com/streamtune/streamtune/internal/engine"
)

// RegisterRequest is the POST /v1/jobs body. Exactly one of Graph (the
// internal dag.Graph JSON form) or Spec (a dagspec document) must carry
// the topology; both admit identically — a spec compiles to the same
// graph, fingerprint, and recommendations as registering the compiled
// graph directly.
type RegisterRequest struct {
	JobID string     `json:"job_id"`
	Graph *dag.Graph `json:"graph,omitempty"`
	// Spec is an external query-DAG spec document (see internal/dagspec
	// and API.md). Validation failures surface as field-path details in
	// the error envelope.
	Spec json.RawMessage `json:"spec,omitempty"`
	// Engine describes the client's system. Omitted fields fall back to
	// the Flink evaluation defaults.
	Engine *engine.Config `json:"engine_config,omitempty"`
}

// ObserveRequest is the POST /v1/jobs/{id}/metrics body.
type ObserveRequest struct {
	Metrics *engine.JobMetrics `json:"metrics"`
}

// ObserveResponse reports whether the tuning process completed.
type ObserveResponse struct {
	JobID string `json:"job_id"`
	Done  bool   `json:"done"`
}

// ErrorDetail locates one field-level failure inside a rejected
// document, mirroring dagspec.FieldError.
type ErrorDetail struct {
	Path    string `json:"path,omitempty"`
	Message string `json:"message"`
}

// ErrorInfo is the machine-readable error envelope: a stable code for
// programmatic dispatch, a human-readable message, and, for validation
// failures, the structured field paths of every offending field.
type ErrorInfo struct {
	Code    string        `json:"code"`
	Message string        `json:"message"`
	Details []ErrorDetail `json:"details,omitempty"`
}

// errorResponse is the uniform error body: {"error": {"code": ...,
// "message": ..., "details": [...]}}.
type errorResponse struct {
	Error ErrorInfo `json:"error"`
}

// codeFor maps service errors to their stable machine-readable codes.
// Every code here is documented in API.md.
func codeFor(err error) string {
	switch {
	case errors.Is(err, ErrUnknownJob):
		return "unknown_job"
	case errors.Is(err, ErrDuplicateJob):
		return "duplicate_job"
	case errors.Is(err, ErrAwaitingMetrics):
		return "awaiting_metrics"
	case errors.Is(err, ErrAwaitingRecommend):
		return "awaiting_recommend"
	case errors.Is(err, ErrCompleted):
		return "completed"
	case errors.Is(err, ErrMutating):
		return "mutation_in_progress"
	case errors.Is(err, ErrSessionLimit):
		return "session_limit"
	case errors.Is(err, ErrOverloaded):
		return "overloaded"
	case errors.Is(err, context.DeadlineExceeded):
		return "deadline_exceeded"
	case errors.Is(err, context.Canceled):
		return "client_closed_request"
	case errors.Is(err, ErrInvalidJob):
		return "invalid_job"
	case errors.Is(err, errRequestTooLarge):
		return "request_too_large"
	}
	return "internal"
}

// errorInfoFor builds the envelope payload for an error, surfacing
// dagspec validation failures as structured field-path details.
func errorInfoFor(err error) ErrorInfo {
	info := ErrorInfo{Code: codeFor(err), Message: err.Error()}
	var verrs dagspec.ValidationErrors
	if errors.As(err, &verrs) {
		for _, fe := range verrs {
			info.Details = append(info.Details, ErrorDetail{Path: fe.Path, Message: fe.Message})
		}
	}
	return info
}

// maxRequestBytes caps request bodies. The largest legitimate body is a
// registration carrying a job DAG — a few KB — so 4 MiB is generous
// headroom while still stopping a tenant from streaming an unbounded
// body into the decoder.
const maxRequestBytes = 4 << 20

// decodeRequest decodes a JSON request body with the server-side
// hygiene the bare json.Decoder lacks: the body is size-capped, unknown
// fields are rejected (catching misspelled keys that would otherwise
// silently decode to an empty request), and trailing garbage after the
// JSON value is an error. Oversized bodies map to 413, everything else
// to 400 via ErrInvalidJob.
func decodeRequest(w http.ResponseWriter, r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			return fmt.Errorf("%w: body exceeds %d bytes", errRequestTooLarge, tooLarge.Limit)
		}
		return fmt.Errorf("%w: decode request: %v", ErrInvalidJob, err)
	}
	if dec.More() {
		return fmt.Errorf("%w: decode request: trailing data after JSON body", ErrInvalidJob)
	}
	return nil
}

// errRequestTooLarge maps to 413 in statusFor; it never leaves the HTTP
// layer, so it stays unexported.
var errRequestTooLarge = errors.New("service: request body too large")

// Handler returns the service's HTTP API:
//
//	POST   /v1/jobs                register a job (RegisterRequest -> RegisterResult)
//	GET    /v1/jobs                paginated session listing (JobList; ?after=&limit=)
//	GET    /v1/jobs/{id}           session state (SessionInfo)
//	DELETE /v1/jobs/{id}           release a session
//	POST   /v1/jobs/{id}/recommend next recommendation (Recommendation)
//	POST   /v1/jobs/{id}/metrics   post a measured window (ObserveRequest -> ObserveResponse)
//	PATCH  /v1/jobs/{id}/topology  mid-stream DAG mutation (dagspec.Mutation -> MutateResult)
//	GET    /v1/stats               service counters (Stats)
//	GET    /v1/snapshot            full session snapshot (ServiceSnapshot JSON)
//
// Every error body is an errorResponse envelope; see API.md.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleRegister)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleSession)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleRelease)
	mux.HandleFunc("POST /v1/jobs/{id}/recommend", s.handleRecommend)
	mux.HandleFunc("POST /v1/jobs/{id}/metrics", s.handleObserve)
	mux.HandleFunc("PATCH /v1/jobs/{id}/topology", s.handleMutate)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /v1/snapshot", s.handleSnapshot)
	return mux
}

// statusClientClosedRequest is the de-facto standard (nginx) status for
// a request abandoned by its own client; the response is never read,
// the code only keeps access logs honest.
const statusClientClosedRequest = 499

// statusFor maps service errors to HTTP status codes.
func statusFor(err error) int {
	switch {
	case errors.Is(err, ErrUnknownJob):
		return http.StatusNotFound
	case errors.Is(err, ErrDuplicateJob),
		errors.Is(err, ErrAwaitingMetrics),
		errors.Is(err, ErrAwaitingRecommend),
		errors.Is(err, ErrCompleted),
		errors.Is(err, ErrMutating):
		return http.StatusConflict
	case errors.Is(err, ErrSessionLimit):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrOverloaded):
		return http.StatusServiceUnavailable
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return statusClientClosedRequest
	case errors.Is(err, ErrInvalidJob):
		return http.StatusBadRequest
	case errors.Is(err, errRequestTooLarge):
		return http.StatusRequestEntityTooLarge
	}
	return http.StatusInternalServerError
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v) // headers are out; nothing useful left to do on error
}

func writeError(w http.ResponseWriter, err error) {
	writeJSON(w, statusFor(err), errorResponse{Error: errorInfoFor(err)})
}

// writeError is the service-aware variant: shed requests (503) carry a
// Retry-After back-off hint so well-behaved clients spread their
// retries instead of hammering a saturated service.
func (s *Service) writeError(w http.ResponseWriter, err error) {
	status := statusFor(err)
	if status == http.StatusServiceUnavailable {
		retry := s.cfg.RetryAfter
		if retry <= 0 {
			retry = time.Second
		}
		secs := int(retry.Round(time.Second) / time.Second)
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.Itoa(secs))
	}
	writeJSON(w, status, errorResponse{Error: errorInfoFor(err)})
}

func (s *Service) handleRegister(w http.ResponseWriter, r *http.Request) {
	var req RegisterRequest
	if err := decodeRequest(w, r, &req); err != nil {
		writeError(w, err)
		return
	}
	g := req.Graph
	switch {
	case g != nil && len(req.Spec) > 0:
		writeError(w, fmt.Errorf("%w: request carries both graph and spec; send exactly one", ErrInvalidJob))
		return
	case len(req.Spec) > 0:
		spec, err := dagspec.Parse(req.Spec)
		if err != nil {
			writeError(w, fmt.Errorf("%w: invalid spec: %w", ErrInvalidJob, err))
			return
		}
		g, err = spec.Compile()
		if err != nil {
			writeError(w, fmt.Errorf("%w: invalid spec: %w", ErrInvalidJob, err))
			return
		}
	}
	cfg := engine.DefaultConfig(engine.Flink)
	if req.Engine != nil {
		cfg = *req.Engine
	}
	res, err := s.Register(r.Context(), req.JobID, g, cfg)
	if err != nil {
		s.writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

// handleMutate applies a dagspec.Mutation document (the raw PATCH body)
// to a registered job's topology.
func (s *Service) handleMutate(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxRequestBytes))
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, fmt.Errorf("%w: body exceeds %d bytes", errRequestTooLarge, tooLarge.Limit))
			return
		}
		writeError(w, fmt.Errorf("%w: read request: %v", ErrInvalidJob, err))
		return
	}
	mut, err := dagspec.ParseMutation(body)
	if err != nil {
		writeError(w, fmt.Errorf("%w: invalid mutation: %w", ErrInvalidJob, err))
		return
	}
	res, err := s.MutateTopology(r.Context(), r.PathValue("id"), mut)
	if err != nil {
		s.writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

// handleList serves the paginated session listing. Query parameters:
// after (exclusive job-ID cursor) and limit (page size, default 100).
func (s *Service) handleList(w http.ResponseWriter, r *http.Request) {
	limit := 0
	if raw := r.URL.Query().Get("limit"); raw != "" {
		n, err := strconv.Atoi(raw)
		if err != nil || n <= 0 {
			writeError(w, fmt.Errorf("%w: limit must be a positive integer, got %q", ErrInvalidJob, raw))
			return
		}
		limit = n
	}
	writeJSON(w, http.StatusOK, s.ListJobs(r.URL.Query().Get("after"), limit))
}

func (s *Service) handleSession(w http.ResponseWriter, r *http.Request) {
	info, err := s.Session(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, info)
}

func (s *Service) handleRelease(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if err := s.Release(id); err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"job_id": id, "status": "released"})
}

func (s *Service) handleRecommend(w http.ResponseWriter, r *http.Request) {
	rec, err := s.Recommend(r.Context(), r.PathValue("id"))
	if err != nil {
		s.writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, rec)
}

func (s *Service) handleObserve(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	var req ObserveRequest
	if err := decodeRequest(w, r, &req); err != nil {
		writeError(w, err)
		return
	}
	done, err := s.Observe(r.Context(), id, req.Metrics)
	if err != nil {
		s.writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, ObserveResponse{JobID: id, Done: done})
}

func (s *Service) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

func (s *Service) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	data, err := s.Snapshot()
	if err != nil {
		writeError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(data)
}
