package service

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"github.com/streamtune/streamtune/internal/dag"
	"github.com/streamtune/streamtune/internal/engine"
	"github.com/streamtune/streamtune/internal/history"
	"github.com/streamtune/streamtune/internal/nexmark"
	"github.com/streamtune/streamtune/internal/pqp"
	"github.com/streamtune/streamtune/internal/streamtune"
)

// The shared pre-training artifact is expensive; build it once per test
// binary, exactly like the experiment drivers share theirs.
var (
	ptOnce sync.Once
	ptVal  *streamtune.PreTrained
	ptErr  error
)

func sharedPreTrained(t *testing.T) *streamtune.PreTrained {
	t.Helper()
	ptOnce.Do(func() {
		var graphs []*dag.Graph
		for _, q := range []nexmark.Query{nexmark.Q2, nexmark.Q3, nexmark.Q5} {
			g, err := nexmark.Build(q, engine.Flink)
			if err != nil {
				ptErr = err
				return
			}
			graphs = append(graphs, g)
		}
		for _, spec := range []struct {
			tmpl    pqp.Template
			variant int
		}{{pqp.Linear, 0}, {pqp.TwoWayJoin, 2}} {
			g, err := pqp.Build(spec.tmpl, spec.variant)
			if err != nil {
				ptErr = err
				return
			}
			graphs = append(graphs, g)
		}
		hopts := history.DefaultOptions(engine.Flink)
		hopts.SamplesPerGraph = 25
		hopts.Engine.MeasureTicks = 40
		corpus, err := history.Generate(graphs, hopts)
		if err != nil {
			ptErr = err
			return
		}
		cfg := streamtune.DefaultConfig()
		cfg.Train.Epochs = 12
		cfg.WarmupSamples = 40
		cfg.StabilizeWait = time.Minute
		ptVal, ptErr = streamtune.PreTrain(corpus, cfg)
	})
	if ptErr != nil {
		t.Fatal(ptErr)
	}
	return ptVal
}

// targetGraph builds one tuning target at a deterministic offered rate.
func targetGraph(t *testing.T, q nexmark.Query, rate float64) *dag.Graph {
	t.Helper()
	g, err := nexmark.Build(q, engine.Flink)
	if err != nil {
		t.Fatal(err)
	}
	g.ScaleSourceRates(rate)
	return g
}

// testEngineConfig is the client-system configuration used throughout.
func testEngineConfig() engine.Config {
	cfg := engine.DefaultConfig(engine.Flink)
	cfg.MeasureTicks = 40
	return cfg
}

func newTestService(t *testing.T, cfg Config) *Service {
	t.Helper()
	s, err := New(sharedPreTrained(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// driveJob runs one registered job's engine against the service until
// the tuning process converges, returning the final recommendation.
func driveJob(t *testing.T, s *Service, id string, g *dag.Graph, engCfg engine.Config) map[string]int {
	t.Helper()
	eng, err := engine.New(g, engCfg)
	if err != nil {
		t.Fatal(err)
	}
	stabilize := s.pt.Config.StabilizeWait
	for i := 0; i < 200; i++ {
		rec, err := s.Recommend(context.Background(), id)
		if err != nil {
			t.Fatalf("job %s: recommend: %v", id, err)
		}
		if rec.Done {
			return rec.Parallelism
		}
		if rec.Deploy {
			if err := eng.Deploy(rec.Parallelism); err != nil {
				t.Fatalf("job %s: deploy: %v", id, err)
			}
			eng.Stabilize(stabilize)
		}
		m, err := eng.Run()
		if err != nil {
			t.Fatalf("job %s: run: %v", id, err)
		}
		done, err := s.Observe(context.Background(), id, m)
		if err != nil {
			t.Fatalf("job %s: observe: %v", id, err)
		}
		if done {
			rec, err := s.Recommend(context.Background(), id)
			if err != nil {
				t.Fatalf("job %s: final recommend: %v", id, err)
			}
			return rec.Parallelism
		}
	}
	t.Fatalf("job %s: no convergence in 200 rounds", id)
	return nil
}

// sequentialResult tunes the same job with a caller-owned Tuner, the
// single-job path the service must match bit for bit.
func sequentialResult(t *testing.T, g *dag.Graph, engCfg engine.Config) map[string]int {
	t.Helper()
	pt := sharedPreTrained(t)
	eng, err := engine.New(g, engCfg)
	if err != nil {
		t.Fatal(err)
	}
	tuner, err := streamtune.NewTuner(pt, eng.Graph())
	if err != nil {
		t.Fatal(err)
	}
	res, err := tuner.Tune(eng)
	if err != nil {
		t.Fatal(err)
	}
	return res.Parallelism
}

// badTypeGraph builds a structurally valid DAG containing an operator
// type outside the known range.
func badTypeGraph(t *testing.T) *dag.Graph {
	t.Helper()
	g := dag.New("bad-type")
	for _, op := range []*dag.Operator{
		{ID: "src", Type: dag.Source, SourceRate: 100},
		{ID: "weird", Type: dag.OpType(250)},
		{ID: "sink", Type: dag.Sink},
	} {
		if err := g.AddOperator(op); err != nil {
			t.Fatal(err)
		}
	}
	for _, e := range [][2]string{{"src", "weird"}, {"weird", "sink"}} {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

// TestServiceAdmission is the table-driven admission-reject matrix.
func TestServiceAdmission(t *testing.T) {
	s := newTestService(t, DefaultConfig())
	engCfg := testEngineConfig()
	if _, err := s.Register(context.Background(), "taken", targetGraph(t, nexmark.Q5, 4), engCfg); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name  string
		jobID string
		graph *dag.Graph
		want  error
	}{
		{name: "empty job ID", jobID: "", graph: targetGraph(t, nexmark.Q5, 4), want: ErrInvalidJob},
		{name: "nil graph", jobID: "nil-graph", graph: nil, want: ErrInvalidJob},
		{name: "empty DAG", jobID: "empty-dag", graph: dag.New("empty"), want: ErrInvalidJob},
		{name: "unknown operator type", jobID: "bad-type", graph: badTypeGraph(t), want: ErrInvalidJob},
		{name: "duplicate job ID", jobID: "taken", graph: targetGraph(t, nexmark.Q5, 4), want: ErrDuplicateJob},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := s.Register(context.Background(), tc.jobID, tc.graph, engCfg)
			if !errors.Is(err, tc.want) {
				t.Fatalf("Register(%q) error = %v, want %v", tc.jobID, err, tc.want)
			}
		})
	}

	if got := s.Stats().Sessions.Rejected; got != uint64(len(cases)) {
		t.Errorf("Rejected = %d, want %d", got, len(cases))
	}
	if got := s.Stats().Sessions.Active; got != 1 {
		t.Errorf("ActiveSessions = %d, want 1", got)
	}
}

// TestServiceSessionLimit asserts the registry cap rejects the
// overflowing registration.
func TestServiceSessionLimit(t *testing.T) {
	s := newTestService(t, Config{MaxSessions: 1})
	engCfg := testEngineConfig()
	if _, err := s.Register(context.Background(), "a", targetGraph(t, nexmark.Q5, 4), engCfg); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Register(context.Background(), "b", targetGraph(t, nexmark.Q3, 4), engCfg); !errors.Is(err, ErrSessionLimit) {
		t.Fatalf("err = %v, want ErrSessionLimit", err)
	}
	if err := s.Release("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Register(context.Background(), "b", targetGraph(t, nexmark.Q3, 4), engCfg); err != nil {
		t.Fatalf("register after release: %v", err)
	}
}

// TestServiceProtocol asserts the recommend/observe alternation is
// enforced per session.
func TestServiceProtocol(t *testing.T) {
	s := newTestService(t, DefaultConfig())
	engCfg := testEngineConfig()
	g := targetGraph(t, nexmark.Q5, 4)
	if _, err := s.Register(context.Background(), "p", g, engCfg); err != nil {
		t.Fatal(err)
	}
	eng, err := engine.New(g, engCfg)
	if err != nil {
		t.Fatal(err)
	}

	m0 := &engine.JobMetrics{}
	if _, err := s.Observe(context.Background(), "p", m0); !errors.Is(err, ErrAwaitingRecommend) {
		t.Fatalf("observe before recommend: err = %v, want ErrAwaitingRecommend", err)
	}
	rec, err := s.Recommend(context.Background(), "p")
	if err != nil {
		t.Fatal(err)
	}
	if rec.Done || !rec.Deploy {
		t.Fatalf("first recommendation: done=%v deploy=%v, want active deploy", rec.Done, rec.Deploy)
	}
	if _, err := s.Recommend(context.Background(), "p"); !errors.Is(err, ErrAwaitingMetrics) {
		t.Fatalf("double recommend: err = %v, want ErrAwaitingMetrics", err)
	}
	if err := eng.Deploy(rec.Parallelism); err != nil {
		t.Fatal(err)
	}
	m, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Observe(context.Background(), "p", m); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Observe(context.Background(), "unknown", m); !errors.Is(err, ErrUnknownJob) {
		t.Fatalf("unknown job: err = %v, want ErrUnknownJob", err)
	}
	info, err := s.Session("p")
	if err != nil {
		t.Fatal(err)
	}
	if info.Iteration != 1 || len(info.History) != 1 {
		t.Fatalf("session info: iteration=%d history=%d, want 1 and 1", info.Iteration, len(info.History))
	}
}

// TestServiceMatchesSequentialTuner drives concurrent jobs through the
// service and asserts every final recommendation is bit-identical to a
// caller-owned sequential Tuner.Tune run of the same job.
func TestServiceMatchesSequentialTuner(t *testing.T) {
	engCfg := testEngineConfig()
	jobs := []struct {
		id   string
		q    nexmark.Query
		rate float64
	}{
		{"q5-lo", nexmark.Q5, 3}, {"q5-hi", nexmark.Q5, 7},
		{"q3-lo", nexmark.Q3, 3}, {"q3-hi", nexmark.Q3, 7},
		{"q2-lo", nexmark.Q2, 3}, {"q2-hi", nexmark.Q2, 7},
		{"q8-lo", nexmark.Q8, 3}, {"q8-hi", nexmark.Q8, 7},
	}

	want := make([]map[string]int, len(jobs))
	for i, j := range jobs {
		want[i] = sequentialResult(t, targetGraph(t, j.q, j.rate), engCfg)
	}

	s := newTestService(t, Config{Workers: 4})
	// Register sequentially so the shared-cache hit counts are exact;
	// the tuning loops below run fully concurrently.
	graphs := make([]*dag.Graph, len(jobs))
	for i, j := range jobs {
		graphs[i] = targetGraph(t, j.q, j.rate)
		if _, err := s.Register(context.Background(), j.id, graphs[i], engCfg); err != nil {
			t.Fatalf("register %s: %v", j.id, err)
		}
	}
	got := make([]map[string]int, len(jobs))
	var wg sync.WaitGroup
	for i, j := range jobs {
		wg.Add(1)
		go func() {
			defer wg.Done()
			got[i] = driveJob(t, s, j.id, graphs[i], engCfg)
		}()
	}
	wg.Wait()

	for i, j := range jobs {
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Errorf("job %s: service recommendation diverged from sequential tuner:\n got %v\nwant %v",
				j.id, got[i], want[i])
		}
	}
	st := s.Stats()
	if st.Sessions.Completed != uint64(len(jobs)) {
		t.Errorf("Completed = %d, want %d", st.Sessions.Completed, len(jobs))
	}
	// Six of the eight jobs repeat another job's DAG structure, so their
	// admissions must resolve entirely from the shared GED cache.
	if st.Admission.CacheHits < 4 {
		t.Errorf("AdmissionCacheHits = %d, want >= 4", st.Admission.CacheHits)
	}
	if st.Admission.EncoderWarmHits < 4 {
		t.Errorf("EncoderWarmHits = %d, want >= 4", st.Admission.EncoderWarmHits)
	}
}

// TestServiceSnapshotRestore interrupts every job mid-tuning, restores
// the registry from the JSON snapshot onto a fresh service, and asserts
// the resumed runs finish bit-identical to uninterrupted ones.
func TestServiceSnapshotRestore(t *testing.T) {
	engCfg := testEngineConfig()
	jobs := []struct {
		id   string
		q    nexmark.Query
		rate float64
	}{
		{"q5", nexmark.Q5, 5}, {"q3", nexmark.Q3, 5}, {"q2", nexmark.Q2, 6},
	}

	want := make([]map[string]int, len(jobs))
	for i, j := range jobs {
		want[i] = sequentialResult(t, targetGraph(t, j.q, j.rate), engCfg)
	}

	s := newTestService(t, DefaultConfig())
	engines := make([]*engine.Engine, len(jobs))
	stabilize := s.pt.Config.StabilizeWait
	for i, j := range jobs {
		g := targetGraph(t, j.q, j.rate)
		if _, err := s.Register(context.Background(), j.id, g, engCfg); err != nil {
			t.Fatal(err)
		}
		eng, err := engine.New(g, engCfg)
		if err != nil {
			t.Fatal(err)
		}
		engines[i] = eng
		// Advance each job a different number of rounds so the snapshot
		// spans sessions at distinct loop positions (including phase
		// boundaries).
		for round := 0; round <= i; round++ {
			rec, err := s.Recommend(context.Background(), j.id)
			if err != nil {
				t.Fatal(err)
			}
			if rec.Done {
				break
			}
			if rec.Deploy {
				if err := eng.Deploy(rec.Parallelism); err != nil {
					t.Fatal(err)
				}
				eng.Stabilize(stabilize)
			}
			m, err := eng.Run()
			if err != nil {
				t.Fatal(err)
			}
			if _, err := s.Observe(context.Background(), j.id, m); err != nil {
				t.Fatal(err)
			}
		}
	}

	// Freeze the last job in the observe phase: its recommendation is
	// deployed but unmeasured when the snapshot is cut.
	last := len(jobs) - 1
	if info, err := s.Session(jobs[last].id); err != nil {
		t.Fatal(err)
	} else if info.Phase == "recommend" {
		rec, err := s.Recommend(context.Background(), jobs[last].id)
		if err != nil {
			t.Fatal(err)
		}
		if !rec.Done && rec.Deploy {
			if err := engines[last].Deploy(rec.Parallelism); err != nil {
				t.Fatal(err)
			}
			engines[last].Stabilize(stabilize)
		}
	}

	data, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	restored, err := Restore(sharedPreTrained(t), DefaultConfig(), data)
	if err != nil {
		t.Fatal(err)
	}
	if gotIDs, wantIDs := restored.JobIDs(), s.JobIDs(); !reflect.DeepEqual(gotIDs, wantIDs) {
		t.Fatalf("restored jobs = %v, want %v", gotIDs, wantIDs)
	}
	// The snapshot must be reproducible: same registry, same bytes.
	again, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if string(again) != string(data) {
		t.Error("snapshot of an unchanged registry produced different bytes")
	}

	for i, j := range jobs {
		got := resumeJob(t, restored, j.id, engines[i], stabilize)
		if !reflect.DeepEqual(got, want[i]) {
			t.Errorf("job %s: restored recommendation diverged from uninterrupted run:\n got %v\nwant %v",
				j.id, got, want[i])
		}
	}
}

// resumeJob finishes a job whose engine survived the service restart.
func resumeJob(t *testing.T, s *Service, id string, eng *engine.Engine, stabilize time.Duration) map[string]int {
	t.Helper()
	for i := 0; i < 200; i++ {
		info, err := s.Session(id)
		if err != nil {
			t.Fatal(err)
		}
		if info.Phase == "observe" {
			// The outstanding recommendation was deployed before the
			// snapshot; measure and post.
			m, err := eng.Run()
			if err != nil {
				t.Fatal(err)
			}
			if _, err := s.Observe(context.Background(), id, m); err != nil {
				t.Fatal(err)
			}
			continue
		}
		rec, err := s.Recommend(context.Background(), id)
		if err != nil {
			t.Fatal(err)
		}
		if rec.Done {
			return rec.Parallelism
		}
		if rec.Deploy {
			if err := eng.Deploy(rec.Parallelism); err != nil {
				t.Fatal(err)
			}
			eng.Stabilize(stabilize)
		}
		m, err := eng.Run()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Observe(context.Background(), id, m); err != nil {
			t.Fatal(err)
		}
	}
	t.Fatalf("job %s: no convergence after restore", id)
	return nil
}

// TestServiceLeaseEviction asserts idle sessions are evicted once their
// lease expires, and active ones keep renewing.
func TestServiceLeaseEviction(t *testing.T) {
	now := time.Unix(1000, 0)
	clock := func() time.Time { return now }
	s := newTestService(t, Config{LeaseTTL: time.Hour, Clock: clock})
	engCfg := testEngineConfig()
	if _, err := s.Register(context.Background(), "idle", targetGraph(t, nexmark.Q5, 4), engCfg); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Register(context.Background(), "busy", targetGraph(t, nexmark.Q3, 4), engCfg); err != nil {
		t.Fatal(err)
	}

	if n := s.EvictIdle(); n != 0 {
		t.Fatalf("evicted %d sessions before expiry, want 0", n)
	}
	now = now.Add(45 * time.Minute)
	if _, err := s.Recommend(context.Background(), "busy"); err != nil { // renews busy's lease
		t.Fatal(err)
	}
	now = now.Add(30 * time.Minute) // idle is now 75m stale, busy 30m
	if n := s.EvictIdle(); n != 1 {
		t.Fatalf("evicted %d sessions, want 1", n)
	}
	if _, err := s.Session("idle"); !errors.Is(err, ErrUnknownJob) {
		t.Fatalf("idle session survived eviction: %v", err)
	}
	if _, err := s.Session("busy"); err != nil {
		t.Fatalf("busy session evicted: %v", err)
	}
	if got := s.Stats().Sessions.Evicted; got != 1 {
		t.Errorf("Stats.Evicted = %d, want 1", got)
	}
}

// TestServiceConcurrentRegistration hammers Register with duplicate and
// distinct IDs; exactly one registration per ID must win.
func TestServiceConcurrentRegistration(t *testing.T) {
	s := newTestService(t, Config{Workers: 4})
	engCfg := testEngineConfig()
	const dups = 6
	var wg sync.WaitGroup
	errs := make([]error, dups)
	for i := 0; i < dups; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, errs[i] = s.Register(context.Background(), "same", targetGraph(t, nexmark.Q5, 4), engCfg)
		}()
	}
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			id := fmt.Sprintf("job-%d", i)
			if _, err := s.Register(context.Background(), id, targetGraph(t, nexmark.Q3, 4), engCfg); err != nil {
				t.Errorf("register %s: %v", id, err)
			}
		}()
	}
	wg.Wait()
	var won int
	for _, err := range errs {
		if err == nil {
			won++
		} else if !errors.Is(err, ErrDuplicateJob) {
			t.Errorf("unexpected duplicate error: %v", err)
		}
	}
	if won != 1 {
		t.Errorf("%d registrations of the same ID succeeded, want exactly 1", won)
	}
	if got := s.Stats().Sessions.Active; got != 4 {
		t.Errorf("ActiveSessions = %d, want 4", got)
	}
}
