package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"runtime"
	"testing"
	"time"

	"github.com/streamtune/streamtune/internal/engine"
	"github.com/streamtune/streamtune/internal/nexmark"
)

// httpPost posts v as JSON and returns the raw response so callers can
// inspect status and headers.
func httpPost(t *testing.T, url string, v any) (*http.Response, error) {
	t.Helper()
	return httpPostCtx(t, context.Background(), url, v)
}

func httpPostCtx(t *testing.T, ctx context.Context, url string, v any) (*http.Response, error) {
	t.Helper()
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(v); err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, &buf)
	if err != nil {
		t.Fatal(err)
	}
	return http.DefaultClient.Do(req)
}

// holdPool occupies every worker slot of the service's pool and returns
// a release function. Requests issued while held queue (or shed).
func holdPool(t *testing.T, s *Service) (release func()) {
	t.Helper()
	hold := make(chan struct{})
	running := make(chan struct{}, s.pool.Cap())
	done := make(chan error, s.pool.Cap())
	for i := 0; i < s.pool.Cap(); i++ {
		go func() {
			done <- s.pool.DoCtx(context.Background(), func() error {
				running <- struct{}{}
				<-hold
				return nil
			})
		}()
	}
	for i := 0; i < s.pool.Cap(); i++ {
		<-running
	}
	return func() {
		close(hold)
		for i := 0; i < s.pool.Cap(); i++ {
			if err := <-done; err != nil {
				t.Errorf("pool holder: %v", err)
			}
		}
	}
}

// registerOne admits one job so overload tests have a session to hit.
func registerOne(t *testing.T, s *Service, id string) {
	t.Helper()
	if _, err := s.Register(context.Background(), id, targetGraph(t, nexmark.Q5, 5), testEngineConfig()); err != nil {
		t.Fatal(err)
	}
}

// TestOverloadShedsWith503 saturates the worker pool and its bounded
// waiting room, then asserts the HTTP API sheds with 503 plus a
// Retry-After hint while counting the shed in /v1/stats.
func TestOverloadShedsWith503(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Workers = 1
	cfg.MaxQueue = 1
	cfg.RetryAfter = 7 * time.Second
	s := newTestService(t, cfg)
	registerOne(t, s, "shed-job")
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	release := holdPool(t, s)
	// Fill the single waiting-room spot.
	queued := make(chan error, 1)
	go func() {
		queued <- s.pool.DoCtx(context.Background(), func() error { return nil })
	}()
	for s.pool.Queued() == 0 {
		runtime.Gosched()
	}

	// The next pooled request must shed. Observe always takes the pooled
	// path; shedding happens before any protocol validation.
	resp, err := httpPost(t, srv.URL+"/v1/jobs/shed-job/metrics", ObserveRequest{Metrics: &engine.JobMetrics{}})
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("saturated Observe status = %d, want 503", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != "7" {
		t.Fatalf("Retry-After = %q, want %q", got, "7")
	}
	resp.Body.Close()

	if st := s.Stats(); st.Overload.Shed != 1 {
		t.Fatalf("Stats.Shed = %d, want 1", st.Overload.Shed)
	}

	release()
	if err := <-queued; err != nil {
		t.Fatal(err)
	}
	// Drained: the same request now reaches protocol validation (409 —
	// the session awaits a Recommend, not metrics), proving the shed was
	// transient.
	r, err := httpPost(t, srv.URL+"/v1/jobs/shed-job/metrics", ObserveRequest{Metrics: &engine.JobMetrics{}})
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusConflict {
		t.Fatalf("post-drain Observe status = %d, want 409", r.StatusCode)
	}
}

// TestObserveHonorsContext pins both context exits: a caller-supplied
// cancellation while queued (the disconnected client) and the
// service-side RequestTimeout, each freeing the waiting room and
// counting in Stats.
func TestObserveHonorsContext(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Workers = 1
	cfg.RequestTimeout = 50 * time.Millisecond
	s := newTestService(t, cfg)
	registerOne(t, s, "ctx-job")

	release := holdPool(t, s)

	// Caller cancellation while queued.
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := s.Observe(ctx, "ctx-job", &engine.JobMetrics{})
		done <- err
	}()
	for s.pool.Queued() == 0 {
		runtime.Gosched()
	}
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled Observe = %v, want context.Canceled", err)
	}

	// Service-side deadline with no caller deadline at all.
	if _, err := s.Observe(context.Background(), "ctx-job", &engine.JobMetrics{}); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("timed-out Observe = %v, want context.DeadlineExceeded", err)
	}

	st := s.Stats()
	if st.Overload.Canceled != 1 || st.Overload.DeadlineExceeded != 1 {
		t.Fatalf("Stats canceled/deadline = %d/%d, want 1/1", st.Overload.Canceled, st.Overload.DeadlineExceeded)
	}

	release()
	// Both abandoned requests left the waiting room; the pool serves
	// again and the request reaches protocol validation.
	if _, err := s.Observe(context.Background(), "ctx-job", &engine.JobMetrics{}); !errors.Is(err, ErrAwaitingRecommend) {
		t.Fatalf("post-release Observe = %v, want ErrAwaitingRecommend", err)
	}
	if q := s.pool.Queued(); q != 0 {
		t.Fatalf("Queued = %d after drain, want 0", q)
	}
}

// TestHTTPCanceledRequestFreesSlot is the disconnected-client satellite:
// an HTTP request abandoned by its client must unblock server-side and
// free its place in line for live traffic.
func TestHTTPCanceledRequestFreesSlot(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Workers = 1
	s := newTestService(t, cfg)
	registerOne(t, s, "gone-job")
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	release := holdPool(t, s)
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		r, err := httpPostCtx(t, ctx, srv.URL+"/v1/jobs/gone-job/metrics", ObserveRequest{Metrics: &engine.JobMetrics{}})
		if err == nil {
			r.Body.Close()
		}
		errc <- err
	}()
	for s.pool.Queued() == 0 {
		runtime.Gosched()
	}
	cancel() // client disconnects
	if err := <-errc; err == nil {
		t.Fatal("canceled client request returned a response")
	}

	deadline := time.Now().Add(5 * time.Second)
	for s.Stats().Overload.Canceled == 0 {
		if time.Now().After(deadline) {
			t.Fatal("server never observed the client cancellation")
		}
		time.Sleep(time.Millisecond)
	}
	release()
	if _, err := s.Observe(context.Background(), "gone-job", &engine.JobMetrics{}); !errors.Is(err, ErrAwaitingRecommend) {
		t.Fatalf("post-disconnect Observe = %v, want ErrAwaitingRecommend (slot freed)", err)
	}
}

// TestBatcherSaturationShedsRegistration bounds the coalescing windows:
// with one pending inference allowed, a second concurrent registration
// sheds with ErrOverloaded instead of parking.
func TestBatcherSaturationShedsRegistration(t *testing.T) {
	cfg := DefaultConfig()
	cfg.BatchWindow = time.Hour // nothing flushes until Close drains
	cfg.MaxBatch = 100
	cfg.MaxPendingInfer = 1
	s := newTestService(t, cfg)

	first := make(chan error, 1)
	go func() {
		_, err := s.Register(context.Background(), "parked", targetGraph(t, nexmark.Q5, 5), testEngineConfig())
		first <- err
	}()
	// Wait for the first registration to park in its window.
	deadline := time.Now().Add(10 * time.Second)
	for {
		s.batch.mu.Lock()
		pending := s.batch.pending
		s.batch.mu.Unlock()
		if pending == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("first registration never reached the batcher window")
		}
		runtime.Gosched()
	}

	_, err := s.Register(context.Background(), "shed", targetGraph(t, nexmark.Q3, 5), testEngineConfig())
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("second registration = %v, want ErrOverloaded", err)
	}
	if st := s.Stats(); st.Overload.Shed != 1 {
		t.Fatalf("Stats.Shed = %d, want 1", st.Overload.Shed)
	}

	// Draining the batcher completes the parked registration through the
	// single-graph fallback.
	s.Close()
	if err := <-first; err != nil {
		t.Fatalf("parked registration = %v, want success after drain", err)
	}
}
