// Package service implements the multi-tenant online tuning service: a
// long-running, concurrency-safe front end over one shared PreTrained
// artifact set (clustering, per-cluster GNN encoders, corpus partition)
// and a registry of per-job tuning sessions.
//
// Each job passes admission (DAG validation, cluster assignment through
// a shared fingerprint-keyed GED cache), then follows a lease-based
// lifecycle: register -> recommend -> observe metrics -> ... -> done,
// with idle sessions evicted when their lease expires. The expensive
// per-request work (model refits, encoder inference) runs through a
// bounded worker pool, so a burst of tenants degrades into queueing
// rather than unbounded goroutine fan-out. Session state snapshots to
// JSON and restores onto a fresh service holding the same PreTrained
// artifact, resuming every job mid-tuning with bit-identical
// recommendations.
//
// The service never touches an engine: clients own their systems,
// deploy the recommendations they receive, and post back the measured
// windows. Driving Step/Observe through the service is bit-identical to
// a local Tuner.Tune run against the same system (see
// internal/streamtune.Process).
package service

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/streamtune/streamtune/internal/dag"
	"github.com/streamtune/streamtune/internal/engine"
	"github.com/streamtune/streamtune/internal/ged"
	"github.com/streamtune/streamtune/internal/gnn"
	"github.com/streamtune/streamtune/internal/logbuffer"
	"github.com/streamtune/streamtune/internal/mono"
	"github.com/streamtune/streamtune/internal/parallel"
	"github.com/streamtune/streamtune/internal/streamtune"
	"github.com/streamtune/streamtune/internal/telemetry"
)

// Admission and lifecycle errors. Callers distinguish them with
// errors.Is; the HTTP layer maps them to status codes.
var (
	// ErrInvalidJob rejects admission: malformed job ID or DAG.
	ErrInvalidJob = errors.New("service: invalid job")
	// ErrDuplicateJob rejects admission: the job ID is already registered.
	ErrDuplicateJob = errors.New("service: job already registered")
	// ErrSessionLimit rejects admission: the registry is full.
	ErrSessionLimit = errors.New("service: session limit reached")
	// ErrUnknownJob reports an unregistered (or evicted) job ID.
	ErrUnknownJob = errors.New("service: unknown job")
	// ErrAwaitingMetrics reports a Recommend while the previous
	// recommendation still awaits its measurement window.
	ErrAwaitingMetrics = errors.New("service: awaiting metrics for the outstanding recommendation")
	// ErrAwaitingRecommend reports an Observe with no outstanding
	// recommendation.
	ErrAwaitingRecommend = errors.New("service: no outstanding recommendation")
	// ErrCompleted reports an Observe on a finished tuning process.
	ErrCompleted = errors.New("service: tuning process already complete")
	// ErrMutating reports a request that raced a topology mutation: the
	// session is being re-admitted under its mutated DAG and is not
	// addressable until the mutation commits or rolls back.
	ErrMutating = errors.New("service: topology mutation in progress")
	// ErrOverloaded reports load shedding: the worker pool's waiting room
	// or the inference batcher was saturated and the request was rejected
	// immediately instead of queueing. The condition is transient — the
	// HTTP layer maps it to 503 with a Retry-After hint.
	ErrOverloaded = errors.New("service: overloaded")
)

// Config parameterizes a Service.
type Config struct {
	// LeaseTTL is how long a session may sit idle before EvictIdle
	// removes it. Zero or negative disables idle eviction.
	LeaseTTL time.Duration
	// MaxSessions caps the registry size. Zero or negative means
	// unlimited.
	MaxSessions int
	// Workers bounds the worker pool executing model refits and encoder
	// inference; values below one use every CPU.
	Workers int
	// BatchWindow is the deadline of the cross-tenant inference
	// micro-batcher: a registration's target inference waits up to this
	// long for other tenants with the same structural fingerprint, then
	// executes the whole group as one block-diagonal batched forward.
	// Zero or negative disables batching (every request takes the
	// single-graph path, the pre-batcher behavior).
	BatchWindow time.Duration
	// MaxBatch caps how many requests one batch may coalesce; a full
	// queue flushes before its deadline. Values below two default to 8.
	// Only meaningful when BatchWindow is positive.
	MaxBatch int
	// MaxQueue bounds the worker pool's waiting room: beyond Workers
	// requests executing plus MaxQueue waiting, Register/Recommend/
	// Observe shed immediately with ErrOverloaded instead of queueing.
	// Zero or negative leaves the waiting room unbounded (no shedding —
	// the batch-driver default; servers opt in).
	MaxQueue int
	// MaxPendingInfer bounds how many registrations may sit in the
	// inference batcher's coalescing windows at once; beyond it,
	// registrations shed with ErrOverloaded. Zero or negative means
	// unbounded. Only meaningful when BatchWindow is positive.
	MaxPendingInfer int
	// ObserveBatchWindow coalesces concurrent Observe requests into one
	// worker-pool task: a request waits up to this long for other
	// tenants' observations, then the whole batch executes as a single
	// pooled task. Per-session results are bit-identical to the
	// unbatched path — only the per-request pool round trip is
	// amortized. Zero or negative disables coalescing (the default).
	ObserveBatchWindow time.Duration
	// MaxObserveBatch caps how many observations one flush may coalesce;
	// a full queue flushes before its deadline. Values below two default
	// to 16. Only meaningful when ObserveBatchWindow is positive.
	MaxObserveBatch int
	// AdmissionCacheCap bounds the shared admission GED cache (in pairs)
	// with epoch reset: at the cap the cache drops its map and starts a
	// fresh epoch, so a 100k-graph soak doesn't hold every pair ever
	// computed. Entries are pure recomputable distances, so a reset
	// costs only recomputation. Zero or negative means unbounded.
	AdmissionCacheCap int
	// RequestTimeout is a server-side deadline applied to every
	// Register/Recommend/Observe call on top of the caller's context, so
	// a request stuck behind a saturated pool eventually abandons the
	// wait with context.DeadlineExceeded instead of occupying the
	// waiting room forever. Zero or negative applies none.
	RequestTimeout time.Duration
	// RetryAfter is the back-off hint returned with 503 responses when a
	// request is shed. Zero or negative defaults to 1s.
	RetryAfter time.Duration
	// Clock supplies the current time for leases; nil uses time.Now.
	// Tests and deterministic drivers inject a fake clock.
	Clock func() time.Time
	// Metrics attaches a telemetry bundle (NewMetrics over a fresh
	// registry): the serving path records latency histograms and
	// counters into it and GET /metrics serves the registry in
	// Prometheus text format. Nil disables all instrumentation — the
	// disabled path is provably inert (bit-identical recommendations,
	// differential-tested) and /metrics answers 404.
	Metrics *Metrics
	// Logs attaches a structured-log ring buffer served at GET /v1/logs.
	// Nil disables the endpoint. The buffer usually also backs one
	// handler of the Logger fanout, but the two are independent.
	Logs *logbuffer.Buffer
	// Logger receives structured lifecycle logs (admissions, releases,
	// evictions, checkpoints, mutations, sheds). Nil discards them.
	Logger *slog.Logger
}

// DefaultConfig returns the serving defaults.
func DefaultConfig() Config {
	return Config{
		LeaseTTL:    30 * time.Minute,
		MaxSessions: 1024,
		BatchWindow: 2 * time.Millisecond,
		MaxBatch:    8,
	}
}

// sessionPhase is the protocol position of a session.
type sessionPhase int

const (
	phaseBuilding  sessionPhase = iota // admission in progress; not addressable yet
	phaseRecommend                     // next call must be Recommend
	phaseObserve                       // next call must be Observe
	phaseDone                          // tuning complete
	phaseMutating                      // topology mutation in flight; last-committed state still in place
)

func (p sessionPhase) String() string {
	switch p {
	case phaseBuilding:
		return "building"
	case phaseRecommend:
		return "recommend"
	case phaseObserve:
		return "observe"
	case phaseDone:
		return "done"
	case phaseMutating:
		return "mutating"
	}
	return fmt.Sprintf("phase(%d)", int(p))
}

// session is one registered job's tuning state. Its mutex serializes
// the per-job protocol; distinct sessions proceed concurrently up to
// the worker-pool bound.
type session struct {
	mu sync.Mutex

	// busy counts in-flight Recommend/Observe requests, incremented
	// under the registry lock at lookup; EvictIdle skips busy sessions,
	// so a request queued behind the worker pool can never have its
	// session evicted (and then silently dropped from the next
	// snapshot) while it waits.
	busy atomic.Int32

	id          string
	clusterID   int
	clusterDist float64
	graph       *dag.Graph
	engCfg      engine.Config

	tuner *streamtune.Tuner
	proc  *streamtune.Process

	phase sessionPhase
	// prevPhase is the protocol position a topology mutation left behind;
	// while phase is phaseMutating the session's last-committed state
	// (graph, tuner, process) is still in place, so snapshots serialize
	// prevPhase and the old state. Meaningless in every other phase.
	prevPhase sessionPhase
	history   []Recommendation
	lease     time.Time

	// recs/bps are the session's per-tenant telemetry counters
	// (deployed reconfigurations, backpressured windows), resolved once
	// at admission and deleted on release/eviction. Nil when telemetry
	// is disabled — Inc on a nil counter is a no-op.
	recs *telemetry.Counter
	bps  *telemetry.Counter
}

// Recommendation is one recommend-step outcome, also the unit of the
// per-session history.
type Recommendation struct {
	JobID     string `json:"job_id"`
	Iteration int    `json:"iteration"`
	// Parallelism is the per-operator assignment the client should run.
	// On Done it is the final recommendation of the whole process.
	Parallelism map[string]int `json:"parallelism,omitempty"`
	// Deploy reports whether Parallelism differs from the client's
	// current deployment and must be rolled out before measuring.
	Deploy bool `json:"deploy"`
	// Done reports process convergence; no further steps are needed.
	Done bool `json:"done"`
}

// StatsSchemaVersion is the version of the GET /v1/stats document.
// Version 2 grouped the former flat counter blob into per-subsystem
// sections; consumers dispatch on schema_version.
const StatsSchemaVersion = 2

// Stats is a point-in-time counter snapshot, grouped by subsystem.
type Stats struct {
	SchemaVersion int             `json:"schema_version"`
	Sessions      SessionStats    `json:"sessions"`
	Admission     AdmissionStats  `json:"admission"`
	Batching      BatchingStats   `json:"batching"`
	Overload      OverloadStats   `json:"overload"`
	Checkpoint    CheckpointStats `json:"checkpoint"`
	Observer      ObserverStats   `json:"observer"`
}

// SessionStats covers the session registry and the tuning protocol.
type SessionStats struct {
	Active          int    `json:"active"`
	Registered      uint64 `json:"registered"`
	Rejected        uint64 `json:"rejected"`
	Released        uint64 `json:"released"`
	Evicted         uint64 `json:"evicted"`
	Completed       uint64 `json:"completed"`
	Recommendations uint64 `json:"recommendations"`
	Observations    uint64 `json:"observations"`
	// TopologyMutations counts committed mid-stream DAG mutations;
	// MutationsRejected counts mutation requests that failed validation
	// or re-admission (the session rolled back to its previous state).
	TopologyMutations uint64 `json:"topology_mutations"`
	MutationsRejected uint64 `json:"mutations_rejected"`
}

// AdmissionStats covers the shared GED cache and encoder warmth.
type AdmissionStats struct {
	// CacheHits counts cluster assignments fully resolved from the
	// shared fingerprint-keyed GED cache (no exact GED computed);
	// CacheMisses counts the rest. Their ratio is the shared-artifact
	// hit rate of admission.
	CacheHits   uint64 `json:"cache_hits"`
	CacheMisses uint64 `json:"cache_misses"`
	// CacheSize is the pairs held right now; CacheCap the configured
	// bound (0 = unbounded); CacheResets how many times the cache hit
	// its cap and started a fresh epoch.
	CacheSize   int    `json:"cache_size"`
	CacheCap    int    `json:"cache_cap"`
	CacheResets uint64 `json:"cache_resets"`
	// EncoderWarmHits counts registrations assigned to a cluster whose
	// encoder had already served an earlier session of this process —
	// its compiled plans and structure caches are warm.
	EncoderWarmHits uint64 `json:"encoder_warm_hits"`
}

// BatchingStats covers the cross-tenant inference micro-batcher.
type BatchingStats struct {
	// Flushes counts executed inference batches (any size);
	// BatchedSessions counts sessions served from multi-request batches
	// and UnbatchedSessions the rest (lone flushes plus shutdown and
	// disabled-batcher fallbacks). Their split is the coalescing rate
	// of the cross-tenant micro-batcher.
	Flushes           uint64 `json:"flushes"`
	BatchedSessions   uint64 `json:"batched_sessions"`
	UnbatchedSessions uint64 `json:"unbatched_sessions"`
}

// OverloadStats covers the worker pool and load shedding.
type OverloadStats struct {
	// WorkersInFlight and WorkerCap describe the worker pool at the
	// moment of the snapshot; WorkersQueued is how many admitted requests
	// are waiting for a slot right now.
	WorkersInFlight int `json:"workers_in_flight"`
	WorkerCap       int `json:"worker_cap"`
	WorkersQueued   int `json:"workers_queued"`
	// Shed counts requests rejected with ErrOverloaded (waiting room or
	// batcher full); DeadlineExceeded and Canceled count requests
	// abandoned through their context before completing.
	Shed             uint64 `json:"shed"`
	DeadlineExceeded uint64 `json:"deadline_exceeded"`
	Canceled         uint64 `json:"canceled"`
}

// CheckpointStats covers crash-safe checkpointing. All fields except
// Mutations are maintained by an attached Checkpointer.
type CheckpointStats struct {
	// Mutations counts registry state changes (the checkpointer's
	// dirtiness signal).
	Mutations uint64 `json:"mutations"`
	Written   uint64 `json:"written"`
	Failures  uint64 `json:"failures"`
	LastBytes uint64 `json:"last_bytes"`
	// LastSeq is the sequence number of the newest written checkpoint
	// (meaningful once Written > 0).
	LastSeq uint64 `json:"last_seq"`
}

// ObserverStats covers the Observe coalescer.
type ObserverStats struct {
	// Flushes counts executed Observe coalescing flushes;
	// BatchedObservations counts observations served from multi-request
	// flushes and UnbatchedObservations the rest.
	Flushes               uint64 `json:"flushes"`
	BatchedObservations   uint64 `json:"batched_observations"`
	UnbatchedObservations uint64 `json:"unbatched_observations"`
}

// Service is the multi-tenant tuning service. Create with New; all
// methods are safe for concurrent use.
type Service struct {
	cfg  Config
	pt   *streamtune.PreTrained
	pool *parallel.Limiter
	// admission memoizes exact GED values across every admission; the
	// corpus-scale observation (PR2) holds for tenants too: most jobs
	// are structural clones of a few templates.
	admission *ged.PairCache
	// batch coalesces same-fingerprint target inference across tenants;
	// nil when Config.BatchWindow disables it.
	batch *batcher
	// observe coalesces concurrent Observe-side label harvests into one
	// pooled task; nil when Config.ObserveBatchWindow disables it.
	observe *observeBatcher
	// warmups caches the per-cluster warm-up dataset (cluster id ->
	// *warmupEntry); ClusterWarmup is a pure function of (artifact,
	// cluster), so one construction serves every registration.
	warmups sync.Map

	mu           sync.Mutex
	sessions     map[string]*session
	warmClusters map[int]bool

	registered      atomic.Uint64
	rejected        atomic.Uint64
	released        atomic.Uint64
	evicted         atomic.Uint64
	completed       atomic.Uint64
	recommendations atomic.Uint64
	observations    atomic.Uint64
	admissionHits   atomic.Uint64
	admissionMisses atomic.Uint64
	encoderWarmHits atomic.Uint64
	topoMutations   atomic.Uint64
	topoRejected    atomic.Uint64

	// mutations counts registry state changes (registrations, steps,
	// observations, releases, evictions) — the checkpointer's dirtiness
	// signal.
	mutations atomic.Uint64
	// shed counts requests rejected because the worker pool's waiting
	// room or the batcher was saturated; deadlineExceeded and canceled
	// count requests abandoned through their context.
	shed             atomic.Uint64
	deadlineExceeded atomic.Uint64
	canceled         atomic.Uint64
	// checkpointsWritten/checkpointFailures are maintained by an
	// attached Checkpointer.
	checkpointsWritten  atomic.Uint64
	checkpointFailures  atomic.Uint64
	checkpointLastBytes atomic.Uint64
	checkpointLastSeq   atomic.Uint64

	// ready gates GET /readyz: true once the service is fully built
	// (New/Restore return only complete services, so construction sets
	// it), flipped false by the server when draining begins.
	ready atomic.Bool

	// log is the resolved logger: Config.Logger or a discard logger,
	// never nil.
	log *slog.Logger
}

// Ready reports whether the service should receive traffic: restore is
// finished, the PreTrained artifact is loaded, and the server is not
// draining. GET /readyz serves this.
func (s *Service) Ready() bool { return s.ready.Load() }

// SetReady flips the readiness gate; servers call SetReady(false) at
// the start of a graceful shutdown so load balancers stop routing new
// traffic before the drain.
func (s *Service) SetReady(ready bool) {
	if s.ready.Swap(ready) != ready {
		s.log.Info("readiness changed", "ready", ready)
	}
}

// discardHandler drops every record (the stdlib gains one in later Go
// versions; this keeps go 1.22 compatibility).
type discardHandler struct{}

func (discardHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (discardHandler) Handle(context.Context, slog.Record) error { return nil }
func (d discardHandler) WithAttrs([]slog.Attr) slog.Handler      { return d }
func (d discardHandler) WithGroup(string) slog.Handler           { return d }

// Mutations reports the number of registry state changes since startup.
// The checkpointer compares successive values to decide whether a new
// checkpoint is due.
func (s *Service) Mutations() uint64 { return s.mutations.Load() }

// New creates a service over a shared pre-training artifact.
func New(pt *streamtune.PreTrained, cfg Config) (*Service, error) {
	if pt == nil || len(pt.Encoders) == 0 {
		return nil, fmt.Errorf("service: nil or empty PreTrained artifact")
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	maxQueue := cfg.MaxQueue
	if maxQueue <= 0 {
		maxQueue = -1 // unbounded waiting room: DoCtx never sheds
	}
	pool := parallel.NewBoundedLimiter(cfg.Workers, maxQueue)
	s := &Service{
		cfg:          cfg,
		pt:           pt,
		pool:         pool,
		admission:    ged.NewPairCacheCap(cfg.AdmissionCacheCap),
		batch:        newBatcher(cfg.BatchWindow, cfg.MaxBatch, cfg.MaxPendingInfer),
		observe:      newObserveBatcher(cfg.ObserveBatchWindow, cfg.MaxObserveBatch, pool),
		sessions:     make(map[string]*session),
		warmClusters: make(map[int]bool),
		log:          slog.New(discardHandler{}),
	}
	if cfg.Logger != nil {
		s.log = cfg.Logger
	}
	if m := cfg.Metrics; m != nil {
		m.bind(s)
		if s.batch != nil {
			s.batch.occHist = m.batchOccupancy
		}
		if s.observe != nil {
			s.observe.occHist = m.observeOccupancy
		}
	}
	// A fully constructed service is ready by definition: New returns
	// only after the artifact is validated, and Restore only after every
	// session resumed. The server flips this off when draining.
	s.ready.Store(true)
	return s, nil
}

// requestCtx applies the service-side request deadline on top of the
// caller's context. The returned cancel must always be called.
func (s *Service) requestCtx(ctx context.Context) (context.Context, context.CancelFunc) {
	if ctx == nil {
		ctx = context.Background()
	}
	if s.cfg.RequestTimeout > 0 {
		return context.WithTimeout(ctx, s.cfg.RequestTimeout)
	}
	return ctx, func() {}
}

// classify folds an overload or context failure into the service's
// resilience counters and normalizes saturation to ErrOverloaded. Other
// errors pass through untouched.
func (s *Service) classify(op string, err error) error {
	switch {
	case errors.Is(err, parallel.ErrSaturated):
		s.shed.Add(1)
		s.log.Warn("request shed", "op", op, "reason", "worker pool saturated",
			"worker_cap", s.pool.Cap(), "queued", s.pool.Queued())
		return fmt.Errorf("%w: %s shed, worker pool saturated (cap %d, queued %d)",
			ErrOverloaded, op, s.pool.Cap(), s.pool.Queued())
	case errors.Is(err, errBatcherSaturated):
		s.shed.Add(1)
		s.log.Warn("request shed", "op", op, "reason", "inference batcher saturated")
		return fmt.Errorf("%w: %s shed, inference batcher saturated", ErrOverloaded, op)
	case errors.Is(err, context.DeadlineExceeded):
		s.deadlineExceeded.Add(1)
	case errors.Is(err, context.Canceled):
		s.canceled.Add(1)
	}
	return err
}

// Close stops the inference micro-batcher: waiters mid-window complete
// through the single-graph fallback and later registrations run
// unbatched. The service itself stays usable — Close is the
// drain-before-snapshot step of a graceful shutdown. Idempotent.
func (s *Service) Close() {
	s.batch.close()
	s.observe.close()
}

// warmupEntry memoizes one cluster's warm-up dataset (or its
// construction error — deterministic, so retries would fail the same
// way).
type warmupEntry struct {
	once sync.Once
	warm []mono.Sample
	err  error
}

// warmupFor returns the cluster's shared warm-up dataset, constructing
// it on first use. Concurrent registrations for the same cluster block
// on the one construction and then proceed together — which also
// funnels them into the same batcher window right after.
func (s *Service) warmupFor(c int) ([]mono.Sample, error) {
	v, _ := s.warmups.LoadOrStore(c, &warmupEntry{})
	e := v.(*warmupEntry)
	e.once.Do(func() { e.warm, e.err = streamtune.ClusterWarmup(s.pt, c) })
	return e.warm, e.err
}

// PreTrained returns the shared artifact the service serves.
func (s *Service) PreTrained() *streamtune.PreTrained { return s.pt }

// admit validates a registration request. It returns an error wrapping
// ErrInvalidJob for malformed jobs so callers can classify rejects.
func admit(id string, g *dag.Graph) error {
	if id == "" {
		return fmt.Errorf("%w: empty job ID", ErrInvalidJob)
	}
	if g == nil || g.NumOperators() == 0 {
		return fmt.Errorf("%w: empty DAG", ErrInvalidJob)
	}
	for _, op := range g.Operators() {
		if op.Type < 0 || int(op.Type) >= dag.NumOpTypes() {
			return fmt.Errorf("%w: operator %q has unknown type %d", ErrInvalidJob, op.ID, int(op.Type))
		}
	}
	if err := g.Validate(); err != nil {
		return fmt.Errorf("%w: %v", ErrInvalidJob, err)
	}
	return nil
}

// assignCluster resolves the nearest cluster through the shared GED
// cache. Iteration order and tie-breaking match
// PreTrained.AssignCluster exactly, so the result is always identical —
// only the cost differs when the structure repeats. An admission
// counts as a cache hit when every center distance this call looked up
// was already cached.
func (s *Service) assignCluster(g *dag.Graph) (int, float64) {
	best, bestD := -1, math.Inf(1)
	allCached := true
	for c, center := range s.pt.Clusters.Centers {
		d, ok := s.admission.Lookup(g, center)
		if !ok {
			allCached = false
			d = s.admission.Distance(g, center)
		}
		if d < bestD {
			best, bestD = c, d
		}
	}
	if allCached {
		s.admissionHits.Add(1)
	} else {
		s.admissionMisses.Add(1)
	}
	return best, bestD
}

// RegisterResult reports a successful admission.
type RegisterResult struct {
	JobID           string  `json:"job_id"`
	ClusterID       int     `json:"cluster_id"`
	ClusterDistance float64 `json:"cluster_distance"`
	// WarmupSamples is the size of the fine-tuning dataset constructed
	// at admission.
	WarmupSamples int `json:"warmup_samples"`
}

// Register admits a job: validates the DAG, assigns it to its nearest
// cluster via the shared GED cache, builds the warm-up fine-tuning
// dataset from the cluster's history, and starts the tuning process.
// The engine config describes the client's system (flavor, parallelism
// ceiling, bottleneck thresholds); it is used for recommendations and
// label harvesting, never to run anything service-side.
//
// ctx bounds the admission: a canceled or expired context abandons the
// build (including the wait for a worker slot) and a saturated waiting
// room sheds immediately with ErrOverloaded.
func (s *Service) Register(ctx context.Context, id string, g *dag.Graph, engCfg engine.Config) (*RegisterResult, error) {
	defer s.cfg.Metrics.sinceRegister(time.Now())
	ctx, cancel := s.requestCtx(ctx)
	defer cancel()
	if err := admit(id, g); err != nil {
		s.rejected.Add(1)
		s.log.Warn("registration rejected", "job", id, "err", err.Error())
		return nil, err
	}

	// Reserve the ID before the expensive tuner build so concurrent
	// duplicate registrations fail fast instead of both building. The
	// placeholder's phaseBuilding makes it invisible to every other
	// entry point until the build commits.
	sess := &session{id: id, phase: phaseBuilding}
	s.mu.Lock()
	if _, ok := s.sessions[id]; ok {
		s.mu.Unlock()
		s.rejected.Add(1)
		return nil, fmt.Errorf("%w: %q", ErrDuplicateJob, id)
	}
	if s.cfg.MaxSessions > 0 && len(s.sessions) >= s.cfg.MaxSessions {
		s.mu.Unlock()
		s.rejected.Add(1)
		return nil, fmt.Errorf("%w (%d)", ErrSessionLimit, s.cfg.MaxSessions)
	}
	s.sessions[id] = sess
	s.mu.Unlock()

	g = g.Clone() // callers keep their copy; the session owns this one

	// Admission runs in three phases. Pooled: cluster assignment plus
	// the (cached) cluster warm-up dataset. Unpooled: the target's
	// inference session through the cross-tenant batcher — the deadline
	// wait must not hold a pool slot, or a busy pool would serialize
	// the very requests the window is trying to coalesce. Pooled again:
	// tuner build, distillation, and the first model fit.
	var c int
	var d float64
	var warm []mono.Sample
	err := s.pool.DoCtx(ctx, func() error {
		c, d = s.assignCluster(g)
		var werr error
		warm, werr = s.warmupFor(c)
		return werr
	})
	var isess *gnn.InferSession
	if err == nil {
		isess, err = s.batch.inferSession(ctx, s.pt.Encoder(c), ged.Fingerprint(g), g)
	}
	if err == nil {
		err = s.pool.DoCtx(ctx, func() error {
			tuner, err := streamtune.NewTunerWithWarmup(s.pt, c, warm)
			if err != nil {
				return err
			}
			tuner.SetInstruments(s.cfg.Metrics.tunerInstruments())
			proc, err := tuner.StartWithSession(isess, engCfg)
			if err != nil {
				return err
			}
			// Pre-fit the prediction model here, at registration, so the
			// first Recommend — like every later one — is a pure binary
			// search over warm state.
			if err := proc.Prefit(); err != nil {
				return err
			}
			sess.mu.Lock()
			defer sess.mu.Unlock()
			sess.clusterID = c
			sess.clusterDist = d
			sess.graph = g
			sess.engCfg = engCfg
			sess.tuner = tuner
			sess.proc = proc
			sess.phase = phaseRecommend
			sess.lease = s.cfg.Clock()
			return nil
		})
	}
	if err != nil {
		s.mu.Lock()
		delete(s.sessions, id)
		s.mu.Unlock()
		s.rejected.Add(1)
		err = fmt.Errorf("service: register %q: %w", id, s.classify("register", err))
		s.log.Warn("registration failed", "job", id, "err", err.Error())
		return nil, err
	}

	s.mu.Lock()
	if s.warmClusters[sess.clusterID] {
		s.encoderWarmHits.Add(1)
	}
	s.warmClusters[sess.clusterID] = true
	s.mu.Unlock()

	sess.recs, sess.bps = s.cfg.Metrics.jobCounters(id)
	s.registered.Add(1)
	s.mutations.Add(1)
	s.log.Info("session registered", "job", id,
		"cluster", sess.clusterID, "distance", sess.clusterDist,
		"warmup_samples", sess.tuner.TrainingSetSize())
	return &RegisterResult{
		JobID:           id,
		ClusterID:       sess.clusterID,
		ClusterDistance: sess.clusterDist,
		WarmupSamples:   sess.tuner.TrainingSetSize(),
	}, nil
}

// lookup fetches a session by ID. Lease renewal happens inside
// Recommend/Observe, under the session lock — merely looking a session
// up (e.g. polling GET /v1/jobs/{id}) does not keep it alive.
func (s *Service) lookup(id string) (*session, error) {
	s.mu.Lock()
	sess, ok := s.sessions[id]
	s.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownJob, id)
	}
	return sess, nil
}

// lookupBusy is lookup plus an in-flight mark taken under the registry
// lock, so EvictIdle — which scans under the same lock — can never
// evict a session between its lookup and its request completing. The
// caller must decrement sess.busy when the request finishes.
func (s *Service) lookupBusy(id string) (*session, error) {
	s.mu.Lock()
	sess, ok := s.sessions[id]
	if ok {
		sess.busy.Add(1)
	}
	s.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownJob, id)
	}
	return sess, nil
}

// modelWarm reports whether the session's next Step skips the model
// refit — in that case Recommend is a microseconds-scale binary search
// over cached state and bypasses the worker pool entirely, instead of
// queueing behind other tenants' fits and registrations.
func (sess *session) modelWarm() bool {
	sess.mu.Lock()
	defer sess.mu.Unlock()
	return sess.phase != phaseBuilding && sess.proc.ModelWarm()
}

// Recommend runs the next recommend step for the job: fit the
// fine-tuned model to the session's training set and compute the
// minimum non-bottleneck parallelism per operator. The client must
// deploy the returned assignment when Deploy is true, measure one
// window, and post it back via Observe. Once the process converges,
// Recommend keeps returning the final recommendation with Done set.
//
// ctx bounds the request: a disconnected client or expired deadline
// abandons the wait for a worker slot (freeing it for live requests)
// and a saturated waiting room sheds with ErrOverloaded.
func (s *Service) Recommend(ctx context.Context, id string) (*Recommendation, error) {
	defer s.cfg.Metrics.sinceRecommend(time.Now())
	ctx, cancel := s.requestCtx(ctx)
	defer cancel()
	sess, err := s.lookupBusy(id)
	if err != nil {
		return nil, err
	}
	defer sess.busy.Add(-1)
	var out *Recommendation
	stepped := false
	run := func() error {
		sess.mu.Lock()
		defer sess.mu.Unlock()
		sess.lease = s.cfg.Clock()
		switch sess.phase {
		case phaseBuilding:
			return fmt.Errorf("%w: %q still registering", ErrUnknownJob, id)
		case phaseMutating:
			return fmt.Errorf("%w: job %q", ErrMutating, id)
		case phaseObserve:
			return fmt.Errorf("%w: job %q iteration %d", ErrAwaitingMetrics, id, sess.proc.Iteration())
		case phaseDone:
			out = &Recommendation{
				JobID:       id,
				Iteration:   sess.proc.Iteration(),
				Parallelism: sess.proc.Result().Parallelism,
				Done:        true,
			}
			return nil
		}
		rec, deploy, done, err := sess.proc.Step()
		if err != nil {
			return err
		}
		stepped = true
		if done {
			sess.phase = phaseDone
			s.completed.Add(1)
			out = &Recommendation{
				JobID:       id,
				Iteration:   sess.proc.Iteration(),
				Parallelism: sess.proc.Result().Parallelism,
				Done:        true,
			}
		} else {
			sess.phase = phaseObserve
			out = &Recommendation{
				JobID:       id,
				Iteration:   sess.proc.Iteration(),
				Parallelism: rec,
				Deploy:      deploy,
			}
		}
		if out.Deploy {
			sess.recs.Inc()
		}
		sess.history = append(sess.history, *out)
		return nil
	}
	// A warm session's Step performs no fit — don't queue microseconds
	// of binary search behind the pool. Cold sessions (first recommend
	// after a restore, or a prior fit error) still pay the pooled path.
	if sess.modelWarm() {
		if err = ctx.Err(); err == nil {
			err = run()
		}
	} else {
		err = s.pool.DoCtx(ctx, run)
	}
	if err != nil {
		return nil, s.classify("recommend", err)
	}
	s.recommendations.Add(1)
	if stepped {
		s.mutations.Add(1)
	}
	return out, nil
}

// Observe absorbs one measured window for the job's outstanding
// recommendation: bottleneck labels are harvested into the session's
// training set and the convergence checks run. It reports whether the
// tuning process completed. ctx bounds the request exactly as in
// Recommend.
func (s *Service) Observe(ctx context.Context, id string, m *engine.JobMetrics) (done bool, err error) {
	defer s.cfg.Metrics.sinceObserve(time.Now())
	ctx, cancel := s.requestCtx(ctx)
	defer cancel()
	if m == nil {
		return false, fmt.Errorf("%w: nil metrics", ErrInvalidJob)
	}
	sess, err := s.lookupBusy(id)
	if err != nil {
		return false, err
	}
	defer sess.busy.Add(-1)
	// The harvest closure runs identically batched or not; the observe
	// coalescer only decides how many of these share one pooled task.
	err = s.observe.do(ctx, s.pool, func() error {
		sess.mu.Lock()
		defer sess.mu.Unlock()
		sess.lease = s.cfg.Clock()
		switch sess.phase {
		case phaseBuilding:
			return fmt.Errorf("%w: %q still registering", ErrUnknownJob, id)
		case phaseMutating:
			return fmt.Errorf("%w: job %q", ErrMutating, id)
		case phaseRecommend:
			return fmt.Errorf("%w: job %q", ErrAwaitingRecommend, id)
		case phaseDone:
			return fmt.Errorf("%w: job %q", ErrCompleted, id)
		}
		var stepErr error
		done, stepErr = sess.proc.Observe(m)
		if stepErr != nil {
			return stepErr
		}
		if m.Backpressured {
			sess.bps.Inc()
		}
		if done {
			sess.phase = phaseDone
			s.completed.Add(1)
		} else {
			sess.phase = phaseRecommend
		}
		return nil
	})
	if err != nil {
		return false, s.classify("observe", err)
	}
	s.observations.Add(1)
	s.mutations.Add(1)
	return done, nil
}

// SessionInfo is a point-in-time view of one session.
type SessionInfo struct {
	JobID           string           `json:"job_id"`
	Operators       int              `json:"operators"`
	EngineFlavor    string           `json:"engine_flavor"`
	ClusterID       int              `json:"cluster_id"`
	ClusterDistance float64          `json:"cluster_distance"`
	Phase           string           `json:"phase"`
	Iteration       int              `json:"iteration"`
	Done            bool             `json:"done"`
	TrainingSamples int              `json:"training_samples"`
	LeaseExpires    time.Time        `json:"lease_expires"`
	Parallelism     map[string]int   `json:"parallelism,omitempty"`
	History         []Recommendation `json:"history,omitempty"`
}

// Session returns the current view of a registered job.
func (s *Service) Session(id string) (*SessionInfo, error) {
	sess, err := s.lookup(id)
	if err != nil {
		return nil, err
	}
	sess.mu.Lock()
	defer sess.mu.Unlock()
	if sess.phase == phaseBuilding {
		return nil, fmt.Errorf("%w: %q still registering", ErrUnknownJob, id)
	}
	info := &SessionInfo{
		JobID:           sess.id,
		Operators:       sess.graph.NumOperators(),
		EngineFlavor:    sess.engCfg.Flavor.String(),
		ClusterID:       sess.clusterID,
		ClusterDistance: sess.clusterDist,
		Phase:           sess.phase.String(),
		Iteration:       sess.proc.Iteration(),
		Done:            sess.phase == phaseDone,
		TrainingSamples: sess.tuner.TrainingSetSize(),
		History:         append([]Recommendation(nil), sess.history...),
	}
	if s.cfg.LeaseTTL > 0 {
		info.LeaseExpires = sess.lease.Add(s.cfg.LeaseTTL)
	}
	if sess.phase == phaseDone {
		info.Parallelism = sess.proc.Result().Parallelism
	} else {
		info.Parallelism = sess.proc.Recommendation()
	}
	return info, nil
}

// Release removes a job's session explicitly. A session still inside
// admission is not releasable — removing it would orphan the build in
// flight — and reads as not-yet-registered, like every other entry
// point. A session mid-mutation is equally unreleasable, but it exists:
// the caller gets ErrMutating and retries once the mutation settles.
func (s *Service) Release(id string) error {
	var mutating bool
	s.mu.Lock()
	sess, ok := s.sessions[id]
	if ok {
		sess.mu.Lock()
		switch sess.phase {
		case phaseBuilding:
			ok = false
		case phaseMutating:
			mutating = true
		default:
			delete(s.sessions, id)
		}
		sess.mu.Unlock()
	}
	s.mu.Unlock()
	if mutating {
		return fmt.Errorf("%w: job %q", ErrMutating, id)
	}
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownJob, id)
	}
	s.cfg.Metrics.dropJob(id)
	s.released.Add(1)
	s.mutations.Add(1)
	s.log.Info("session released", "job", id)
	return nil
}

// EvictIdle removes every session whose lease expired and reports how
// many were evicted. A server typically calls it from a janitor ticker.
func (s *Service) EvictIdle() int {
	if s.cfg.LeaseTTL <= 0 {
		return 0
	}
	deadline := s.cfg.Clock().Add(-s.cfg.LeaseTTL)
	var victims []string
	s.mu.Lock()
	for id, sess := range s.sessions {
		// A session with an in-flight request (busy is only ever raised
		// under s.mu, which this scan holds) is live no matter how stale
		// its lease looks: the request may be queued behind the worker
		// pool, and evicting now would orphan its result and drop the
		// session from any snapshot taken before the client retried.
		if sess.busy.Load() > 0 {
			continue
		}
		sess.mu.Lock()
		idle := sess.phase != phaseBuilding && sess.phase != phaseMutating &&
			sess.lease.Before(deadline)
		sess.mu.Unlock()
		if idle {
			victims = append(victims, id)
		}
	}
	for _, id := range victims {
		delete(s.sessions, id)
	}
	s.mu.Unlock()
	for _, id := range victims {
		s.cfg.Metrics.dropJob(id)
		s.log.Info("session evicted", "job", id)
	}
	s.evicted.Add(uint64(len(victims)))
	s.mutations.Add(uint64(len(victims)))
	return len(victims)
}

// JobIDs returns the registered job IDs in sorted order.
func (s *Service) JobIDs() []string {
	s.mu.Lock()
	ids := make([]string, 0, len(s.sessions))
	for id := range s.sessions {
		ids = append(ids, id)
	}
	s.mu.Unlock()
	sort.Strings(ids)
	return ids
}

// JobSummary is one row of the paginated session listing.
type JobSummary struct {
	JobID        string    `json:"job_id"`
	Phase        string    `json:"phase"`
	ClusterID    int       `json:"cluster_id"`
	Iteration    int       `json:"iteration"`
	Done         bool      `json:"done"`
	LeaseExpires time.Time `json:"lease_expires"`
}

// JobList is one page of the session listing.
type JobList struct {
	Jobs []JobSummary `json:"jobs"`
	// Total is the number of listable sessions in the registry at the
	// time of the call, across all pages.
	Total int `json:"total"`
	// NextAfter, when set, is the cursor for the next page: pass it as
	// the after parameter of the next call. Empty on the last page.
	NextAfter string `json:"next_after,omitempty"`
}

// maxListLimit caps one listing page.
const maxListLimit = 1000

// ListJobs returns one page of registered sessions in sorted job-ID
// order, starting strictly after the given cursor (empty means the
// beginning). Limits outside (0, maxListLimit] default to 100. Sessions
// still inside admission are invisible, exactly as in every other entry
// point; a session mid-mutation lists under its pre-mutation phase.
func (s *Service) ListJobs(after string, limit int) *JobList {
	if limit <= 0 || limit > maxListLimit {
		limit = 100
	}
	s.mu.Lock()
	sessions := make([]*session, 0, len(s.sessions))
	for _, sess := range s.sessions {
		sessions = append(sessions, sess)
	}
	s.mu.Unlock()
	sort.Slice(sessions, func(i, j int) bool { return sessions[i].id < sessions[j].id })

	list := &JobList{Jobs: []JobSummary{}}
	for _, sess := range sessions {
		sess.mu.Lock()
		if sess.phase == phaseBuilding {
			sess.mu.Unlock()
			continue
		}
		list.Total++
		if sess.id <= after || len(list.Jobs) >= limit {
			if sess.id > after && len(list.Jobs) >= limit && list.NextAfter == "" {
				list.NextAfter = list.Jobs[len(list.Jobs)-1].JobID
			}
			sess.mu.Unlock()
			continue
		}
		phase := sess.phase
		if phase == phaseMutating {
			phase = sess.prevPhase
		}
		row := JobSummary{
			JobID:     sess.id,
			Phase:     phase.String(),
			ClusterID: sess.clusterID,
			Iteration: sess.proc.Iteration(),
			Done:      phase == phaseDone,
		}
		if s.cfg.LeaseTTL > 0 {
			row.LeaseExpires = sess.lease.Add(s.cfg.LeaseTTL)
		}
		list.Jobs = append(list.Jobs, row)
		sess.mu.Unlock()
	}
	return list
}

// Stats snapshots the service counters (schema version 2, grouped by
// subsystem).
func (s *Service) Stats() Stats {
	s.mu.Lock()
	active := len(s.sessions)
	s.mu.Unlock()
	_, flushes, batched, single := s.batch.stats()
	oflushes, obatched, osingle := s.observe.stats()
	return Stats{
		SchemaVersion: StatsSchemaVersion,
		Sessions: SessionStats{
			Active:            active,
			Registered:        s.registered.Load(),
			Rejected:          s.rejected.Load(),
			Released:          s.released.Load(),
			Evicted:           s.evicted.Load(),
			Completed:         s.completed.Load(),
			Recommendations:   s.recommendations.Load(),
			Observations:      s.observations.Load(),
			TopologyMutations: s.topoMutations.Load(),
			MutationsRejected: s.topoRejected.Load(),
		},
		Admission: AdmissionStats{
			CacheHits:       s.admissionHits.Load(),
			CacheMisses:     s.admissionMisses.Load(),
			CacheSize:       s.admission.Len(),
			CacheCap:        s.admission.Cap(),
			CacheResets:     s.admission.Resets(),
			EncoderWarmHits: s.encoderWarmHits.Load(),
		},
		Batching: BatchingStats{
			Flushes:           flushes,
			BatchedSessions:   batched,
			UnbatchedSessions: single,
		},
		Overload: OverloadStats{
			WorkersInFlight:  s.pool.InFlight(),
			WorkerCap:        s.pool.Cap(),
			WorkersQueued:    s.pool.Queued(),
			Shed:             s.shed.Load(),
			DeadlineExceeded: s.deadlineExceeded.Load(),
			Canceled:         s.canceled.Load(),
		},
		Checkpoint: CheckpointStats{
			Mutations: s.mutations.Load(),
			Written:   s.checkpointsWritten.Load(),
			Failures:  s.checkpointFailures.Load(),
			LastBytes: s.checkpointLastBytes.Load(),
			LastSeq:   s.checkpointLastSeq.Load(),
		},
		Observer: ObserverStats{
			Flushes:               oflushes,
			BatchedObservations:   obatched,
			UnbatchedObservations: osingle,
		},
	}
}

// BatchOccupancy returns the histogram of executed inference batch
// sizes (size -> count), nil when batching is disabled.
func (s *Service) BatchOccupancy() map[int]uint64 {
	occ, _, _, _ := s.batch.stats()
	return occ
}
