package service

import (
	"context"
	"fmt"
	"time"

	"github.com/streamtune/streamtune/internal/dagspec"
	"github.com/streamtune/streamtune/internal/ged"
	"github.com/streamtune/streamtune/internal/gnn"
	"github.com/streamtune/streamtune/internal/mono"
	"github.com/streamtune/streamtune/internal/streamtune"
)

// MutateResult reports a committed topology mutation.
type MutateResult struct {
	JobID           string  `json:"job_id"`
	ClusterID       int     `json:"cluster_id"`
	ClusterDistance float64 `json:"cluster_distance"`
	// ClusterChanged reports whether re-admission moved the job to a
	// different cluster than it occupied before the mutation.
	ClusterChanged bool `json:"cluster_changed"`
	// WarmStart reports whether the session's accumulated training
	// samples survived into the new tuning process. Mutations that keep
	// the cluster warm-start; a cluster change means a different encoder
	// produced the old embeddings, so the session restarts from the new
	// cluster's warm-up dataset.
	WarmStart bool `json:"warm_start"`
	// Operators is the operator count of the mutated DAG.
	Operators int `json:"operators"`
	// TrainingSamples is the size of the training set the new process
	// starts from (before its own distillation).
	TrainingSamples int `json:"training_samples"`
}

// MutateTopology applies a mid-stream DAG mutation to a registered job:
// the mutation is validated against the current graph, the mutated
// graph re-enters admission (re-fingerprint, cluster re-assignment
// through the shared GED cache), and a new tuning process starts for
// it. When the cluster assignment survives the mutation, the new tuner
// warm-starts from the session's accumulated training samples — the
// observations gathered on the old topology keep informing the model —
// otherwise it restarts from the new cluster's warm-up dataset.
//
// While the mutation is in flight the session answers every other
// request with ErrMutating; its last-committed state stays in place, so
// a failed mutation rolls back to exactly the pre-mutation session and
// a snapshot cut mid-mutation serializes the pre-mutation state. The
// protocol restarts at recommend after a commit.
//
// ctx bounds the rebuild exactly as in Register: a canceled context
// abandons it (rolling back) and a saturated pool sheds with
// ErrOverloaded.
func (s *Service) MutateTopology(ctx context.Context, id string, mut *dagspec.Mutation) (*MutateResult, error) {
	defer s.cfg.Metrics.sinceMutate(time.Now())
	ctx, cancel := s.requestCtx(ctx)
	defer cancel()
	if mut == nil {
		return nil, fmt.Errorf("%w: nil mutation", ErrInvalidJob)
	}
	sess, err := s.lookupBusy(id)
	if err != nil {
		return nil, err
	}
	defer sess.busy.Add(-1)

	// Claim the session. The transitional phase (mirroring Register's
	// phaseBuilding) keeps every other entry point out without holding
	// sess.mu across the pooled rebuild below — holding it could
	// deadlock against pooled tasks waiting on the same lock.
	sess.mu.Lock()
	switch sess.phase {
	case phaseBuilding:
		sess.mu.Unlock()
		return nil, fmt.Errorf("%w: %q still registering", ErrUnknownJob, id)
	case phaseMutating:
		sess.mu.Unlock()
		return nil, fmt.Errorf("%w: job %q", ErrMutating, id)
	}
	sess.prevPhase = sess.phase
	sess.phase = phaseMutating
	oldG := sess.graph
	oldCluster := sess.clusterID
	engCfg := sess.engCfg
	// Clone the training state now, under the lock: the rebuild fits a
	// fresh tuner from the copy, so the live tuner — still readable by
	// concurrent snapshots — is never touched.
	tunerState := sess.tuner.State()
	sess.mu.Unlock()

	rollback := func() {
		sess.mu.Lock()
		sess.phase = sess.prevPhase
		sess.mu.Unlock()
		s.topoRejected.Add(1)
	}

	newG, err := mut.Apply(oldG)
	if err != nil {
		rollback()
		return nil, fmt.Errorf("%w: invalid mutation: %w", ErrInvalidJob, err)
	}
	if err := admit(id, newG); err != nil {
		rollback()
		return nil, err
	}

	// Re-admission mirrors Register's three phases: pooled cluster
	// assignment (plus warm-up construction on a cluster change),
	// unpooled batched target inference, pooled tuner construction and
	// first fit.
	var c int
	var d float64
	var warm []mono.Sample
	err = s.pool.DoCtx(ctx, func() error {
		c, d = s.assignCluster(newG)
		if c == oldCluster {
			return nil
		}
		var werr error
		warm, werr = s.warmupFor(c)
		return werr
	})
	var isess *gnn.InferSession
	if err == nil {
		isess, err = s.batch.inferSession(ctx, s.pt.Encoder(c), ged.Fingerprint(newG), newG)
	}
	warmStart := c == oldCluster
	trainSize := 0
	if err == nil {
		err = s.pool.DoCtx(ctx, func() error {
			var tuner *streamtune.Tuner
			var terr error
			if warmStart {
				tuner, terr = streamtune.RestoreTuner(s.pt, tunerState)
			} else {
				tuner, terr = streamtune.NewTunerWithWarmup(s.pt, c, warm)
			}
			if terr != nil {
				return terr
			}
			tuner.SetInstruments(s.cfg.Metrics.tunerInstruments())
			proc, perr := tuner.StartWithSession(isess, engCfg)
			if perr != nil {
				return perr
			}
			if ferr := proc.Prefit(); ferr != nil {
				return ferr
			}
			sess.mu.Lock()
			defer sess.mu.Unlock()
			sess.clusterID = c
			sess.clusterDist = d
			sess.graph = newG
			sess.tuner = tuner
			sess.proc = proc
			sess.phase = phaseRecommend
			sess.lease = s.cfg.Clock()
			trainSize = tuner.TrainingSetSize()
			return nil
		})
	}
	if err != nil {
		rollback()
		err = fmt.Errorf("service: mutate %q: %w", id, s.classify("mutate", err))
		s.log.Warn("topology mutation rolled back", "job", id, "err", err.Error())
		return nil, err
	}

	s.mu.Lock()
	if s.warmClusters[c] {
		s.encoderWarmHits.Add(1)
	}
	s.warmClusters[c] = true
	s.mu.Unlock()

	s.topoMutations.Add(1)
	s.mutations.Add(1)
	s.log.Info("topology mutation committed", "job", id,
		"cluster", c, "cluster_changed", !warmStart, "operators", newG.NumOperators())
	return &MutateResult{
		JobID:           id,
		ClusterID:       c,
		ClusterDistance: d,
		ClusterChanged:  !warmStart,
		WarmStart:       warmStart,
		Operators:       newG.NumOperators(),
		TrainingSamples: trainSize,
	}, nil
}
