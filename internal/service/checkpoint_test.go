package service

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/streamtune/streamtune/internal/engine"
	"github.com/streamtune/streamtune/internal/faultinject"
	"github.com/streamtune/streamtune/internal/nexmark"
)

// midTuningService registers one job and advances it a couple of rounds
// so the registry holds genuine mid-tuning state worth checkpointing.
// The engine is returned so callers can finish the run after a restore.
func midTuningService(t *testing.T, cfg Config) (*Service, *engine.Engine) {
	t.Helper()
	s := newTestService(t, cfg)
	engCfg := testEngineConfig()
	g := targetGraph(t, nexmark.Q5, 5)
	if _, err := s.Register(context.Background(), "ckpt-job", g, engCfg); err != nil {
		t.Fatal(err)
	}
	eng, err := engine.New(g, engCfg)
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 2; round++ {
		rec, err := s.Recommend(context.Background(), "ckpt-job")
		if err != nil {
			t.Fatal(err)
		}
		if rec.Done {
			break
		}
		if rec.Deploy {
			if err := eng.Deploy(rec.Parallelism); err != nil {
				t.Fatal(err)
			}
			eng.Stabilize(s.pt.Config.StabilizeWait)
		}
		m, err := eng.Run()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Observe(context.Background(), "ckpt-job", m); err != nil {
			t.Fatal(err)
		}
	}
	return s, eng
}

// TestWriteFileAtomicReplaces asserts an atomic write replaces existing
// content without leaving temp files behind.
func TestWriteFileAtomicReplaces(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "state.json")
	if err := WriteFileAtomic(path, []byte("old")); err != nil {
		t.Fatal(err)
	}
	if err := WriteFileAtomic(path, []byte("new")); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "new" {
		t.Fatalf("content = %q, want %q", got, "new")
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("dir holds %d entries after atomic writes, want 1 (temp leak)", len(entries))
	}
}

// TestSnapshotChecksumDetectsTornFile is the torn-write satellite: a
// snapshot whose session bytes were altered after the checksum was
// embedded — JSON still perfectly parseable — must be rejected by the
// checksum, and a truncated file must fail with a diagnostic naming the
// byte offset, not a raw json error.
func TestSnapshotChecksumDetectsTornFile(t *testing.T) {
	s, _ := midTuningService(t, DefaultConfig())
	data, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeSnapshot(data); err != nil {
		t.Fatalf("pristine snapshot rejected: %v", err)
	}

	// Bit-flip inside the session payload keeping the JSON valid: the
	// job ID changes, the structure does not. Only the checksum can
	// catch this.
	flipped := bytes.Replace(data, []byte("ckpt-job"), []byte("ckpt-joc"), 1)
	if bytes.Equal(flipped, data) {
		t.Fatal("test setup: job ID not found in snapshot bytes")
	}
	_, err = DecodeSnapshot(flipped)
	if !errors.Is(err, ErrCorruptSnapshot) {
		t.Fatalf("flipped snapshot error = %v, want ErrCorruptSnapshot", err)
	}
	if !strings.Contains(err.Error(), "checksum mismatch") {
		t.Fatalf("flipped snapshot error %q does not name the checksum", err)
	}

	// Truncation: the diagnostic must name where decoding stopped.
	_, err = DecodeSnapshot(data[:len(data)/3])
	if !errors.Is(err, ErrCorruptSnapshot) {
		t.Fatalf("truncated snapshot error = %v, want ErrCorruptSnapshot", err)
	}
	if !strings.Contains(err.Error(), "byte") {
		t.Fatalf("truncated snapshot error %q does not name a byte offset", err)
	}

	// Restore surfaces the same classification.
	if _, err := Restore(sharedPreTrained(t), DefaultConfig(), flipped); !errors.Is(err, ErrCorruptSnapshot) {
		t.Fatalf("Restore(flipped) = %v, want ErrCorruptSnapshot", err)
	}
}

// TestCheckpointRotationAndFallback writes several checkpoints under a
// small retention window, corrupts the newest on disk, and asserts
// RestoreFromDir falls back to the older valid file.
func TestCheckpointRotationAndFallback(t *testing.T) {
	s, _ := midTuningService(t, DefaultConfig())
	dir := t.TempDir()
	c, err := NewCheckpointer(s, CheckpointConfig{Dir: dir, Keep: 2, Interval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := c.CheckpointNow(); err != nil {
			t.Fatal(err)
		}
	}
	paths, err := ListCheckpoints(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 2 {
		t.Fatalf("retained %d checkpoints, want 2: %v", len(paths), paths)
	}
	if filepath.Base(paths[0]) != "checkpoint-00000003.json" {
		t.Fatalf("newest checkpoint = %s, want checkpoint-00000003.json", paths[0])
	}

	// Damage the newest file in place (torn tail).
	newest, err := os.ReadFile(paths[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(paths[0], newest[:len(newest)/2], 0o644); err != nil {
		t.Fatal(err)
	}

	restored, from, skipped, err := RestoreFromDir(sharedPreTrained(t), DefaultConfig(), dir)
	if err != nil {
		t.Fatal(err)
	}
	if restored == nil || from != paths[1] {
		t.Fatalf("restored from %q, want fallback to %q", from, paths[1])
	}
	if len(skipped) != 1 || !errors.Is(skipped[0], ErrCorruptSnapshot) {
		t.Fatalf("skipped = %v, want exactly the corrupt newest", skipped)
	}
	if got := restored.JobIDs(); len(got) != 1 || got[0] != "ckpt-job" {
		t.Fatalf("restored jobs = %v, want [ckpt-job]", got)
	}

	if st := s.Stats(); st.Checkpoint.Written != 4 || st.Checkpoint.LastBytes == 0 {
		t.Fatalf("stats = %+v, want 4 checkpoints written with nonzero last size", st)
	}
}

// TestRestoreFromDirEmpty asserts a missing or empty directory means
// "start fresh", not an error.
func TestRestoreFromDirEmpty(t *testing.T) {
	for _, dir := range []string{t.TempDir(), filepath.Join(t.TempDir(), "never-created")} {
		svc, from, skipped, err := RestoreFromDir(sharedPreTrained(t), DefaultConfig(), dir)
		if err != nil || svc != nil || from != "" || skipped != nil {
			t.Fatalf("RestoreFromDir(%s) = (%v, %q, %v, %v), want all-empty", dir, svc, from, skipped, err)
		}
	}
}

// TestCheckpointWriteFailpoint asserts an injected write failure leaves
// the previous checkpoints intact, counts as a failure, and the next
// (healthy) checkpoint recovers.
func TestCheckpointWriteFailpoint(t *testing.T) {
	defer faultinject.Reset()
	s, _ := midTuningService(t, DefaultConfig())
	dir := t.TempDir()
	c, err := NewCheckpointer(s, CheckpointConfig{Dir: dir, Interval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.CheckpointNow(); err != nil {
		t.Fatal(err)
	}

	faultinject.Enable(faultinject.CheckpointWrite, faultinject.Times(1))
	if _, err := c.CheckpointNow(); !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("injected CheckpointNow error = %v, want ErrInjected", err)
	}
	if st := s.Stats(); st.Checkpoint.Failures != 1 {
		t.Fatalf("CheckpointFailures = %d, want 1", st.Checkpoint.Failures)
	}
	paths, _ := ListCheckpoints(dir)
	if len(paths) != 1 {
		t.Fatalf("failed write left %d files, want the 1 prior checkpoint", len(paths))
	}

	// The failpoint is exhausted; the service recovers on its own.
	if _, err := c.CheckpointNow(); err != nil {
		t.Fatalf("post-failure CheckpointNow = %v, want recovery", err)
	}
	if _, _, _, err := RestoreFromDir(sharedPreTrained(t), DefaultConfig(), dir); err != nil {
		t.Fatal(err)
	}
}

// TestCheckpointCorruptFailpoint asserts a checkpoint corrupted between
// checksum and disk (a modeled torn write) is skipped at restore in
// favor of an older valid file.
func TestCheckpointCorruptFailpoint(t *testing.T) {
	defer faultinject.Reset()
	s, _ := midTuningService(t, DefaultConfig())
	dir := t.TempDir()
	c, err := NewCheckpointer(s, CheckpointConfig{Dir: dir, Interval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	valid, err := c.CheckpointNow()
	if err != nil {
		t.Fatal(err)
	}

	faultinject.Enable(faultinject.CheckpointCorrupt, faultinject.Times(1))
	if _, err := c.CheckpointNow(); err != nil {
		t.Fatalf("corrupted checkpoint write itself must succeed, got %v", err)
	}

	restored, from, skipped, err := RestoreFromDir(sharedPreTrained(t), DefaultConfig(), dir)
	if err != nil {
		t.Fatal(err)
	}
	if restored == nil || from != valid {
		t.Fatalf("restored from %q, want fallback to valid %q", from, valid)
	}
	if len(skipped) != 1 || !errors.Is(skipped[0], ErrCorruptSnapshot) {
		t.Fatalf("skipped = %v, want the one corrupt file", skipped)
	}
}

// TestRestoreFromDirAllCorrupt asserts a directory with only damaged
// checkpoints fails with every per-file error aggregated.
func TestRestoreFromDirAllCorrupt(t *testing.T) {
	dir := t.TempDir()
	for i, garbage := range []string{"not json", `{"version":2,"checksum":1,"sessions":[]}`} {
		if err := os.WriteFile(filepath.Join(dir, checkpointName(uint64(i))), []byte(garbage), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	_, _, skipped, err := RestoreFromDir(sharedPreTrained(t), DefaultConfig(), dir)
	if err == nil {
		t.Fatal("RestoreFromDir on all-corrupt dir succeeded")
	}
	if len(skipped) != 2 {
		t.Fatalf("skipped %d candidates, want 2", len(skipped))
	}
	if !errors.Is(err, ErrCorruptSnapshot) {
		t.Fatalf("aggregate error %v does not wrap ErrCorruptSnapshot", err)
	}
}

// TestCheckpointerBackground drives the background loop: a dirty
// registry is checkpointed within the interval and Stop takes a final
// write covering the freshest mutations.
func TestCheckpointerBackground(t *testing.T) {
	s, eng := midTuningService(t, DefaultConfig())
	dir := t.TempDir()
	c, err := NewCheckpointer(s, CheckpointConfig{Dir: dir, Interval: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	// midTuningService left mutations behind; the loop must notice.
	c.Start()
	deadline := time.Now().Add(5 * time.Second)
	for s.Stats().Checkpoint.Written == 0 {
		if time.Now().After(deadline) {
			t.Fatal("background checkpointer never wrote")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// New mutations after the last write: Stop must flush them.
	if rec, err := s.Recommend(context.Background(), "ckpt-job"); err != nil {
		t.Fatal(err)
	} else if !rec.Done && rec.Deploy {
		if err := eng.Deploy(rec.Parallelism); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Stop(); err != nil {
		t.Fatal(err)
	}
	// Stop may find the loop already flushed the last mutation; all
	// that matters is the newest file covers the live state.
	restored, _, _, err := RestoreFromDir(sharedPreTrained(t), DefaultConfig(), dir)
	if err != nil {
		t.Fatal(err)
	}
	info, err := restored.Session("ckpt-job")
	if err != nil {
		t.Fatal(err)
	}
	want, err := s.Session("ckpt-job")
	if err != nil {
		t.Fatal(err)
	}
	if info.Phase != want.Phase || info.Iteration != want.Iteration {
		t.Fatalf("restored session at (%s, %d), live at (%s, %d): final checkpoint missed mutations",
			info.Phase, info.Iteration, want.Phase, want.Iteration)
	}
}
