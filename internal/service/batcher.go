package service

import (
	"sync"
	"time"

	"github.com/streamtune/streamtune/internal/dag"
	"github.com/streamtune/streamtune/internal/gnn"
)

// batcher coalesces concurrent inference-session builds across tenants
// sharing a structural fingerprint onto one block-diagonal batched plan
// execution (gnn.Encoder.NewInferSessions). Requests queue per
// (encoder, fingerprint); the first request of a queue arms a deadline
// timer, and the queue flushes when the deadline expires or the queue
// reaches maxBatch, whichever comes first. A lone request at its
// deadline — and every waiter at shutdown — falls back to the
// single-graph path. Batched results are bit-identical to single-graph
// sessions (differential tests in internal/gnn), so coalescing is
// purely a throughput optimization.
type batcher struct {
	window   time.Duration
	maxBatch int

	mu     sync.Mutex
	queues map[batchKey]*batchQueue
	closed bool

	// occupancy histograms the executed batch sizes; flushes counts
	// batched plan executions, batched/single split the sessions served.
	occupancy map[int]uint64
	flushes   uint64
	batched   uint64
	single    uint64
}

// batchKey scopes a coalescing queue: only sessions sharing both the
// cluster encoder and the structural fingerprint may share a plan.
type batchKey struct {
	enc *gnn.Encoder
	fp  string
}

type inferResult struct {
	sess *gnn.InferSession
	err  error
}

type inferRequest struct {
	g   *dag.Graph
	out chan inferResult
}

// batchQueue is the open queue of one key; a new queue replaces it in
// batcher.queues after every flush, so a stale timer firing against a
// drained queue is a no-op.
type batchQueue struct {
	reqs  []*inferRequest
	timer *time.Timer
}

// newBatcher returns nil (batching disabled) when window <= 0.
func newBatcher(window time.Duration, maxBatch int) *batcher {
	if window <= 0 {
		return nil
	}
	if maxBatch <= 1 {
		maxBatch = 8
	}
	return &batcher{
		window:    window,
		maxBatch:  maxBatch,
		queues:    make(map[batchKey]*batchQueue),
		occupancy: make(map[int]uint64),
	}
}

// inferSession enqueues one session build and blocks until its batch
// executes (at most the deadline window plus the build itself). A nil
// or closed batcher degrades to the direct single-graph path.
func (b *batcher) inferSession(enc *gnn.Encoder, fp string, g *dag.Graph) (*gnn.InferSession, error) {
	if b == nil {
		return enc.NewInferSession(g)
	}
	key := batchKey{enc: enc, fp: fp}
	req := &inferRequest{g: g, out: make(chan inferResult, 1)}
	b.mu.Lock()
	if b.closed {
		b.single++
		b.mu.Unlock()
		return enc.NewInferSession(g)
	}
	q := b.queues[key]
	if q == nil {
		q = &batchQueue{}
		b.queues[key] = q
		q.timer = time.AfterFunc(b.window, func() { b.flush(key, q) })
	}
	q.reqs = append(q.reqs, req)
	full := len(q.reqs) >= b.maxBatch
	b.mu.Unlock()
	if full {
		b.flush(key, q)
	}
	res := <-req.out
	return res.sess, res.err
}

// flush drains q — if it is still the live queue for key — and executes
// it as one batched build, fanning the per-graph sessions back out to
// the waiters. Deadline and batch-full flushes race benignly: the
// loser finds the queue already replaced and returns.
func (b *batcher) flush(key batchKey, q *batchQueue) {
	b.mu.Lock()
	if b.queues[key] != q {
		b.mu.Unlock()
		return
	}
	delete(b.queues, key)
	q.timer.Stop()
	reqs := q.reqs
	b.recordLocked(len(reqs))
	b.mu.Unlock()
	deliver(key.enc, reqs)
}

// recordLocked updates the occupancy counters for one executed batch.
// Callers hold b.mu.
func (b *batcher) recordLocked(size int) {
	b.flushes++
	b.occupancy[size]++
	if size > 1 {
		b.batched += uint64(size)
	} else {
		b.single++
	}
}

// deliver executes one batch outside the batcher lock.
func deliver(enc *gnn.Encoder, reqs []*inferRequest) {
	graphs := make([]*dag.Graph, len(reqs))
	for i, r := range reqs {
		graphs[i] = r.g
	}
	sessions, err := enc.NewInferSessions(graphs)
	for i, r := range reqs {
		if err != nil {
			r.out <- inferResult{err: err}
		} else {
			r.out <- inferResult{sess: sessions[i]}
		}
	}
}

// inferSessions executes an already-assembled same-structure group
// immediately — no deadline wait — while still recording occupancy.
// Restore uses it: the snapshot hands the service every group up
// front, so there is nothing to wait for. Works on a nil batcher
// (occupancy simply isn't recorded).
func (b *batcher) inferSessions(enc *gnn.Encoder, graphs []*dag.Graph) ([]*gnn.InferSession, error) {
	sessions, err := enc.NewInferSessions(graphs)
	if b != nil && err == nil {
		b.mu.Lock()
		b.recordLocked(len(graphs))
		b.mu.Unlock()
	}
	return sessions, err
}

// close drains every open queue through the single-graph fallback and
// rejects future coalescing (requests after close run unbatched).
// Idempotent; safe on nil.
func (b *batcher) close() {
	if b == nil {
		return
	}
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	b.closed = true
	queues := b.queues
	b.queues = make(map[batchKey]*batchQueue)
	b.mu.Unlock()
	for key, q := range queues {
		q.timer.Stop()
		for _, r := range q.reqs {
			sess, err := key.enc.NewInferSession(r.g)
			b.mu.Lock()
			b.single++
			b.mu.Unlock()
			r.out <- inferResult{sess: sess, err: err}
		}
	}
}

// stats returns a point-in-time copy of the batching counters.
func (b *batcher) stats() (occupancy map[int]uint64, flushes, batched, single uint64) {
	if b == nil {
		return nil, 0, 0, 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	occupancy = make(map[int]uint64, len(b.occupancy))
	for k, v := range b.occupancy {
		occupancy[k] = v
	}
	return occupancy, b.flushes, b.batched, b.single
}
