package service

import (
	"context"
	"errors"
	"sync"
	"time"

	"github.com/streamtune/streamtune/internal/dag"
	"github.com/streamtune/streamtune/internal/faultinject"
	"github.com/streamtune/streamtune/internal/gnn"
	"github.com/streamtune/streamtune/internal/telemetry"
)

// errBatcherSaturated reports that the coalescing windows already hold
// maxPending waiters; Service.classify folds it into ErrOverloaded. It
// stays unexported — callers outside the package only ever see the
// classified form.
var errBatcherSaturated = errors.New("service: inference batcher saturated")

// batcher coalesces concurrent inference-session builds across tenants
// sharing a structural fingerprint onto one block-diagonal batched plan
// execution (gnn.Encoder.NewInferSessions). Requests queue per
// (encoder, fingerprint); the first request of a queue arms a deadline
// timer, and the queue flushes when the deadline expires or the queue
// reaches maxBatch, whichever comes first. A lone request at its
// deadline — and every waiter at shutdown — falls back to the
// single-graph path. Batched results are bit-identical to single-graph
// sessions (differential tests in internal/gnn), so coalescing is
// purely a throughput optimization.
type batcher struct {
	window   time.Duration
	maxBatch int
	// maxPending bounds the waiters parked across all open windows;
	// beyond it enqueues shed with errBatcherSaturated. <= 0 = unbounded.
	maxPending int

	mu      sync.Mutex
	queues  map[batchKey]*batchQueue
	pending int // waiters currently parked in open windows
	closed  bool

	// occupancy histograms the executed batch sizes; flushes counts
	// batched plan executions, batched/single split the sessions served.
	occupancy map[int]uint64
	flushes   uint64
	batched   uint64
	single    uint64
	// occHist mirrors occupancy into the telemetry registry when the
	// owning service has metrics attached; nil (inert) otherwise.
	occHist *telemetry.Histogram
}

// batchKey scopes a coalescing queue: only sessions sharing both the
// cluster encoder and the structural fingerprint may share a plan.
type batchKey struct {
	enc *gnn.Encoder
	fp  string
}

type inferResult struct {
	sess *gnn.InferSession
	err  error
}

type inferRequest struct {
	g   *dag.Graph
	out chan inferResult
}

// batchQueue is the open queue of one key; a new queue replaces it in
// batcher.queues after every flush, so a stale timer firing against a
// drained queue is a no-op.
type batchQueue struct {
	reqs  []*inferRequest
	timer *time.Timer
}

// newBatcher returns nil (batching disabled) when window <= 0.
func newBatcher(window time.Duration, maxBatch, maxPending int) *batcher {
	if window <= 0 {
		return nil
	}
	if maxBatch <= 1 {
		maxBatch = 8
	}
	return &batcher{
		window:     window,
		maxBatch:   maxBatch,
		maxPending: maxPending,
		queues:     make(map[batchKey]*batchQueue),
		occupancy:  make(map[int]uint64),
	}
}

// inferSession enqueues one session build and blocks until its batch
// executes (at most the deadline window plus the build itself). A nil
// or closed batcher degrades to the direct single-graph path. When the
// coalescing windows already hold maxPending waiters the request sheds
// with errBatcherSaturated; a context done before the batch delivers
// abandons the wait (the batch still executes for the other waiters —
// the abandoned result is dropped on the floor of the buffered channel).
func (b *batcher) inferSession(ctx context.Context, enc *gnn.Encoder, fp string, g *dag.Graph) (*gnn.InferSession, error) {
	if b == nil {
		return enc.NewInferSession(g)
	}
	key := batchKey{enc: enc, fp: fp}
	req := &inferRequest{g: g, out: make(chan inferResult, 1)}
	b.mu.Lock()
	if b.closed {
		b.single++
		b.mu.Unlock()
		return enc.NewInferSession(g)
	}
	if b.maxPending > 0 && b.pending >= b.maxPending {
		b.mu.Unlock()
		return nil, errBatcherSaturated
	}
	b.pending++
	q := b.queues[key]
	if q == nil {
		q = &batchQueue{}
		b.queues[key] = q
		q.timer = time.AfterFunc(b.window, func() { b.flush(key, q) })
	}
	q.reqs = append(q.reqs, req)
	full := len(q.reqs) >= b.maxBatch
	b.mu.Unlock()
	if full {
		b.flush(key, q)
	}
	if ctx == nil {
		ctx = context.Background()
	}
	select {
	case res := <-req.out:
		return res.sess, res.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// flush drains q — if it is still the live queue for key — and executes
// it as one batched build, fanning the per-graph sessions back out to
// the waiters. Deadline and batch-full flushes race benignly: the
// loser finds the queue already replaced and returns.
func (b *batcher) flush(key batchKey, q *batchQueue) {
	b.mu.Lock()
	if b.queues[key] != q {
		b.mu.Unlock()
		return
	}
	delete(b.queues, key)
	q.timer.Stop()
	reqs := q.reqs
	b.pending -= len(reqs)
	b.recordLocked(len(reqs))
	b.mu.Unlock()
	deliver(key.enc, reqs)
}

// recordLocked updates the occupancy counters for one executed batch.
// Callers hold b.mu.
func (b *batcher) recordLocked(size int) {
	b.flushes++
	b.occupancy[size]++
	b.occHist.Observe(float64(size))
	if size > 1 {
		b.batched += uint64(size)
	} else {
		b.single++
	}
}

// counts returns the flush counters without copying the occupancy map —
// the scrape-time accessor for /metrics.
func (b *batcher) counts() (flushes, batched, single uint64) {
	if b == nil {
		return 0, 0, 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.flushes, b.batched, b.single
}

// deliver executes one batch outside the batcher lock. Two failpoints
// hook the flush: faultinject.BatcherFlush fails the whole batch (every
// waiter receives the injected error — never a hang), and
// faultinject.EncoderLatency stalls it (a delay-only point slows the
// flush without failing it; configured with an error it fails like a
// flush fault).
func deliver(enc *gnn.Encoder, reqs []*inferRequest) {
	graphs := make([]*dag.Graph, len(reqs))
	for i, r := range reqs {
		graphs[i] = r.g
	}
	err := faultinject.Hit(faultinject.BatcherFlush)
	if err == nil {
		err = faultinject.Hit(faultinject.EncoderLatency)
	}
	var sessions []*gnn.InferSession
	if err == nil {
		sessions, err = enc.NewInferSessions(graphs)
	}
	for i, r := range reqs {
		if err != nil {
			r.out <- inferResult{err: err}
		} else {
			r.out <- inferResult{sess: sessions[i]}
		}
	}
}

// inferSessions executes an already-assembled same-structure group
// immediately — no deadline wait — while still recording occupancy.
// Restore uses it: the snapshot hands the service every group up
// front, so there is nothing to wait for. Works on a nil batcher
// (occupancy simply isn't recorded).
func (b *batcher) inferSessions(enc *gnn.Encoder, graphs []*dag.Graph) ([]*gnn.InferSession, error) {
	sessions, err := enc.NewInferSessions(graphs)
	if b != nil && err == nil {
		b.mu.Lock()
		b.recordLocked(len(graphs))
		b.mu.Unlock()
	}
	return sessions, err
}

// close drains every open queue through the single-graph fallback and
// rejects future coalescing (requests after close run unbatched).
// Idempotent; safe on nil.
func (b *batcher) close() {
	if b == nil {
		return
	}
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	b.closed = true
	queues := b.queues
	b.queues = make(map[batchKey]*batchQueue)
	b.mu.Unlock()
	for key, q := range queues {
		q.timer.Stop()
		for _, r := range q.reqs {
			// The shutdown fallback honors the flush failpoint too: an
			// injected flush error surfaces to the waiter instead of
			// silently succeeding through the single-graph path — and
			// either way the waiter is answered, never left hanging.
			var sess *gnn.InferSession
			err := faultinject.Hit(faultinject.BatcherFlush)
			if err == nil {
				sess, err = key.enc.NewInferSession(r.g)
			}
			b.mu.Lock()
			b.pending--
			b.single++
			b.mu.Unlock()
			r.out <- inferResult{sess: sess, err: err}
		}
	}
}

// stats returns a point-in-time copy of the batching counters.
func (b *batcher) stats() (occupancy map[int]uint64, flushes, batched, single uint64) {
	if b == nil {
		return nil, 0, 0, 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	occupancy = make(map[int]uint64, len(b.occupancy))
	for k, v := range b.occupancy {
		occupancy[k] = v
	}
	return occupancy, b.flushes, b.batched, b.single
}
