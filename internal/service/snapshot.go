package service

import (
	"encoding/json"
	"fmt"
	"sort"
	"time"

	"github.com/streamtune/streamtune/internal/dag"
	"github.com/streamtune/streamtune/internal/ged"
	"github.com/streamtune/streamtune/internal/gnn"
	"github.com/streamtune/streamtune/internal/streamtune"
)

// snapshotVersion guards the wire format of service snapshots.
const snapshotVersion = 1

// ServiceSnapshot is the serialized session registry: everything needed
// to resume every in-flight tuning session on a fresh service holding
// the same PreTrained artifact. Counters are intentionally excluded —
// a restarted service starts its statistics over.
type ServiceSnapshot struct {
	Version  int               `json:"version"`
	Sessions []SessionSnapshot `json:"sessions"`
}

// SessionSnapshot is one serialized session.
type SessionSnapshot struct {
	JobID           string                   `json:"job_id"`
	ClusterDistance float64                  `json:"cluster_distance"`
	Phase           string                   `json:"phase"`
	Lease           time.Time                `json:"lease"`
	History         []Recommendation         `json:"history,omitempty"`
	Tuner           *streamtune.TunerState   `json:"tuner"`
	Process         *streamtune.ProcessState `json:"process"`
}

// Snapshot serializes every session (in sorted job-ID order, so equal
// registries produce equal bytes) to JSON.
func (s *Service) Snapshot() ([]byte, error) {
	s.mu.Lock()
	sessions := make([]*session, 0, len(s.sessions))
	for _, sess := range s.sessions {
		sessions = append(sessions, sess)
	}
	s.mu.Unlock()
	sort.Slice(sessions, func(i, j int) bool { return sessions[i].id < sessions[j].id })

	snap := ServiceSnapshot{Version: snapshotVersion}
	for _, sess := range sessions {
		sess.mu.Lock()
		if sess.phase == phaseBuilding {
			sess.mu.Unlock()
			continue // mid-admission; the client will retry registration
		}
		snap.Sessions = append(snap.Sessions, SessionSnapshot{
			JobID:           sess.id,
			ClusterDistance: sess.clusterDist,
			Phase:           sess.phase.String(),
			Lease:           sess.lease,
			History:         append([]Recommendation(nil), sess.history...),
			Tuner:           sess.tuner.State(),
			Process:         sess.proc.State(),
		})
		sess.mu.Unlock()
	}
	return json.MarshalIndent(snap, "", "  ")
}

// parsePhase maps a serialized phase name back to its protocol state.
func parsePhase(name string) (sessionPhase, error) {
	switch name {
	case "recommend":
		return phaseRecommend, nil
	case "observe":
		return phaseObserve, nil
	case "done":
		return phaseDone, nil
	}
	return 0, fmt.Errorf("service: snapshot has unknown phase %q", name)
}

// Restore creates a service from a snapshot taken by Snapshot against
// the same PreTrained artifact. Every session resumes exactly where it
// stopped: the fine-tuning training sets, cluster assignments, and
// in-flight loop state are restored verbatim, so subsequent
// recommendations are bit-identical to an uninterrupted run.
func Restore(pt *streamtune.PreTrained, cfg Config, data []byte) (*Service, error) {
	var snap ServiceSnapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return nil, fmt.Errorf("service: decode snapshot: %w", err)
	}
	if snap.Version != snapshotVersion {
		return nil, fmt.Errorf("service: snapshot version %d, want %d", snap.Version, snapshotVersion)
	}
	s, err := New(pt, cfg)
	if err != nil {
		return nil, err
	}

	// Resuming a session re-runs the target's parallelism-agnostic
	// forward. The snapshot hands us every session up front, so when
	// batching is enabled the forwards group by (cluster, fingerprint)
	// and execute as block-diagonal batches — no deadline window needed,
	// and bit-identical to sequential resumes. With batching disabled
	// each group below has exactly one member, i.e. the sequential path.
	type resumeGroup struct {
		key     batchKey
		indices []int
		graphs  []*dag.Graph
	}
	tuners := make([]*streamtune.Tuner, len(snap.Sessions))
	groupOf := make(map[batchKey]*resumeGroup)
	var groups []*resumeGroup
	for i, ss := range snap.Sessions {
		if ss.Process == nil || ss.Process.Graph == nil {
			return nil, fmt.Errorf("service: job %q: snapshot has no process graph", ss.JobID)
		}
		tuner, err := streamtune.RestoreTuner(pt, ss.Tuner)
		if err != nil {
			return nil, fmt.Errorf("service: restore tuner %q: %w", ss.JobID, err)
		}
		tuners[i] = tuner
		g := ss.Process.Graph.Clone()
		key := batchKey{enc: pt.Encoder(ss.Tuner.ClusterID), fp: ged.Fingerprint(g)}
		if s.batch == nil {
			// Batching disabled: one group per session.
			groups = append(groups, &resumeGroup{key: key, indices: []int{i}, graphs: []*dag.Graph{g}})
			continue
		}
		grp := groupOf[key]
		if grp == nil {
			grp = &resumeGroup{key: key}
			groupOf[key] = grp
			groups = append(groups, grp)
		}
		grp.indices = append(grp.indices, i)
		grp.graphs = append(grp.graphs, g)
	}

	sessions := make([]*gnn.InferSession, len(snap.Sessions))
	for _, grp := range groups {
		batch, err := s.batch.inferSessions(grp.key.enc, grp.graphs)
		if err != nil {
			return nil, fmt.Errorf("service: resume embed %q: %w", snap.Sessions[grp.indices[0]].JobID, err)
		}
		for j, idx := range grp.indices {
			sessions[idx] = batch[j]
		}
	}

	for i, ss := range snap.Sessions {
		phase, err := parsePhase(ss.Phase)
		if err != nil {
			return nil, fmt.Errorf("service: job %q: %w", ss.JobID, err)
		}
		proc, err := tuners[i].ResumeWithSession(sessions[i], ss.Process)
		if err != nil {
			return nil, fmt.Errorf("service: resume process %q: %w", ss.JobID, err)
		}
		if _, ok := s.sessions[ss.JobID]; ok {
			return nil, fmt.Errorf("service: snapshot repeats job %q", ss.JobID)
		}
		s.sessions[ss.JobID] = &session{
			id:          ss.JobID,
			clusterID:   ss.Tuner.ClusterID,
			clusterDist: ss.ClusterDistance,
			graph:       ss.Process.Graph,
			engCfg:      ss.Process.Engine,
			tuner:       tuners[i],
			proc:        proc,
			phase:       phase,
			history:     append([]Recommendation(nil), ss.History...),
			lease:       ss.Lease,
		}
		s.warmClusters[ss.Tuner.ClusterID] = true
	}
	return s, nil
}
