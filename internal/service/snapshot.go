package service

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"sort"
	"time"

	"github.com/streamtune/streamtune/internal/dag"
	"github.com/streamtune/streamtune/internal/ged"
	"github.com/streamtune/streamtune/internal/gnn"
	"github.com/streamtune/streamtune/internal/streamtune"
)

// snapshotVersion guards the wire format of service snapshots. Version
// 2 added the embedded checksum; version-1 files (no checksum) are
// rejected rather than trusted unverified.
const snapshotVersion = 2

// ErrCorruptSnapshot reports a snapshot that failed structural decoding
// or checksum verification — a torn write, a truncated file, or
// bit rot. Restore wraps it so checkpoint recovery can distinguish
// "this file is damaged, fall back to an older one" from harder
// failures (artifact mismatch, unknown cluster).
var ErrCorruptSnapshot = errors.New("service: corrupt snapshot")

// ServiceSnapshot is the serialized session registry: everything needed
// to resume every in-flight tuning session on a fresh service holding
// the same PreTrained artifact. Counters are intentionally excluded —
// a restarted service starts its statistics over.
type ServiceSnapshot struct {
	Version int `json:"version"`
	// Checksum is the IEEE CRC-32 of the compact JSON encoding of
	// Sessions. It is verified before any session is decoded, so a torn
	// or bit-flipped snapshot is detected up front with a precise
	// diagnostic instead of surfacing as an arbitrary decode error (or,
	// worse, a silently wrong restore).
	Checksum uint32            `json:"checksum"`
	Sessions []SessionSnapshot `json:"sessions"`
}

// SessionSnapshot is one serialized session.
type SessionSnapshot struct {
	JobID           string                   `json:"job_id"`
	ClusterDistance float64                  `json:"cluster_distance"`
	Phase           string                   `json:"phase"`
	Lease           time.Time                `json:"lease"`
	History         []Recommendation         `json:"history,omitempty"`
	Tuner           *streamtune.TunerState   `json:"tuner"`
	Process         *streamtune.ProcessState `json:"process"`
}

// snapshotEnvelope is the wire form of ServiceSnapshot: the sessions
// stay raw so the checksum can be computed (and verified) over their
// exact bytes rather than a re-marshaled approximation.
type snapshotEnvelope struct {
	Version  int             `json:"version"`
	Checksum uint32          `json:"checksum"`
	Sessions json.RawMessage `json:"sessions"`
}

// Snapshot serializes every session (in sorted job-ID order, so equal
// registries produce equal bytes) to JSON, embedding a CRC-32 of the
// session payload in the envelope.
func (s *Service) Snapshot() ([]byte, error) {
	s.mu.Lock()
	sessions := make([]*session, 0, len(s.sessions))
	for _, sess := range s.sessions {
		sessions = append(sessions, sess)
	}
	s.mu.Unlock()
	sort.Slice(sessions, func(i, j int) bool { return sessions[i].id < sessions[j].id })

	var snaps []SessionSnapshot
	for _, sess := range sessions {
		sess.mu.Lock()
		if sess.phase == phaseBuilding {
			sess.mu.Unlock()
			continue // mid-admission; the client will retry registration
		}
		// A session mid-mutation still holds its last-committed state —
		// the mutation commits (or rolls back) atomically after this
		// snapshot — so it serializes under its pre-mutation phase.
		phase := sess.phase
		if phase == phaseMutating {
			phase = sess.prevPhase
		}
		snaps = append(snaps, SessionSnapshot{
			JobID:           sess.id,
			ClusterDistance: sess.clusterDist,
			Phase:           phase.String(),
			Lease:           sess.lease,
			History:         append([]Recommendation(nil), sess.history...),
			Tuner:           sess.tuner.State(),
			Process:         sess.proc.State(),
		})
		sess.mu.Unlock()
	}
	payload, err := json.Marshal(snaps)
	if err != nil {
		return nil, err
	}
	return json.MarshalIndent(snapshotEnvelope{
		Version:  snapshotVersion,
		Checksum: crc32.ChecksumIEEE(payload),
		Sessions: payload,
	}, "", "  ")
}

// describeDecodeError turns a json decode failure into a diagnostic
// that names the byte offset (and total size) of the damage.
func describeDecodeError(data []byte, err error) string {
	var syn *json.SyntaxError
	if errors.As(err, &syn) {
		return fmt.Sprintf("%v at byte %d of %d", syn, syn.Offset, len(data))
	}
	var typ *json.UnmarshalTypeError
	if errors.As(err, &typ) {
		return fmt.Sprintf("%v at byte %d of %d", typ, typ.Offset, len(data))
	}
	return err.Error()
}

// DecodeSnapshot parses and verifies a snapshot without building a
// service: the envelope is decoded, the version checked, and the
// session payload's CRC-32 verified before any session is touched.
// Damage produces an error wrapping ErrCorruptSnapshot that names the
// failure, the snapshot version, and the byte offset where decoding
// stopped — not a raw json error.
func DecodeSnapshot(data []byte) (*ServiceSnapshot, error) {
	var env snapshotEnvelope
	if err := json.Unmarshal(data, &env); err != nil {
		return nil, fmt.Errorf("%w: decode envelope: %s", ErrCorruptSnapshot, describeDecodeError(data, err))
	}
	if env.Version != snapshotVersion {
		return nil, fmt.Errorf("service: snapshot version %d, want %d", env.Version, snapshotVersion)
	}
	// Compact to the exact byte form the checksum was computed over
	// (MarshalIndent re-indented the payload inside the envelope).
	var compact bytes.Buffer
	if err := json.Compact(&compact, env.Sessions); err != nil {
		return nil, fmt.Errorf("%w: session payload: %s", ErrCorruptSnapshot, describeDecodeError(env.Sessions, err))
	}
	if got := crc32.ChecksumIEEE(compact.Bytes()); got != env.Checksum {
		return nil, fmt.Errorf("%w: checksum mismatch over %d session bytes: stored %08x, computed %08x (torn or bit-flipped write)",
			ErrCorruptSnapshot, compact.Len(), env.Checksum, got)
	}
	snap := &ServiceSnapshot{Version: env.Version, Checksum: env.Checksum}
	if err := json.Unmarshal(env.Sessions, &snap.Sessions); err != nil {
		return nil, fmt.Errorf("%w: decode sessions: %s", ErrCorruptSnapshot, describeDecodeError(env.Sessions, err))
	}
	return snap, nil
}

// parsePhase maps a serialized phase name back to its protocol state.
func parsePhase(name string) (sessionPhase, error) {
	switch name {
	case "recommend":
		return phaseRecommend, nil
	case "observe":
		return phaseObserve, nil
	case "done":
		return phaseDone, nil
	}
	return 0, fmt.Errorf("service: snapshot has unknown phase %q", name)
}

// Restore creates a service from a snapshot taken by Snapshot against
// the same PreTrained artifact. Every session resumes exactly where it
// stopped: the fine-tuning training sets, cluster assignments, and
// in-flight loop state are restored verbatim, so subsequent
// recommendations are bit-identical to an uninterrupted run.
func Restore(pt *streamtune.PreTrained, cfg Config, data []byte) (*Service, error) {
	snap, err := DecodeSnapshot(data)
	if err != nil {
		return nil, err
	}
	s, err := New(pt, cfg)
	if err != nil {
		return nil, err
	}

	// Resuming a session re-runs the target's parallelism-agnostic
	// forward. The snapshot hands us every session up front, so when
	// batching is enabled the forwards group by (cluster, fingerprint)
	// and execute as block-diagonal batches — no deadline window needed,
	// and bit-identical to sequential resumes. With batching disabled
	// each group below has exactly one member, i.e. the sequential path.
	type resumeGroup struct {
		key     batchKey
		indices []int
		graphs  []*dag.Graph
	}
	tuners := make([]*streamtune.Tuner, len(snap.Sessions))
	groupOf := make(map[batchKey]*resumeGroup)
	var groups []*resumeGroup
	for i, ss := range snap.Sessions {
		if ss.Process == nil || ss.Process.Graph == nil {
			return nil, fmt.Errorf("service: job %q: snapshot has no process graph", ss.JobID)
		}
		tuner, err := streamtune.RestoreTuner(pt, ss.Tuner)
		if err != nil {
			return nil, fmt.Errorf("service: restore tuner %q: %w", ss.JobID, err)
		}
		tuner.SetInstruments(cfg.Metrics.tunerInstruments())
		tuners[i] = tuner
		g := ss.Process.Graph.Clone()
		key := batchKey{enc: pt.Encoder(ss.Tuner.ClusterID), fp: ged.Fingerprint(g)}
		if s.batch == nil {
			// Batching disabled: one group per session.
			groups = append(groups, &resumeGroup{key: key, indices: []int{i}, graphs: []*dag.Graph{g}})
			continue
		}
		grp := groupOf[key]
		if grp == nil {
			grp = &resumeGroup{key: key}
			groupOf[key] = grp
			groups = append(groups, grp)
		}
		grp.indices = append(grp.indices, i)
		grp.graphs = append(grp.graphs, g)
	}

	sessions := make([]*gnn.InferSession, len(snap.Sessions))
	for _, grp := range groups {
		batch, err := s.batch.inferSessions(grp.key.enc, grp.graphs)
		if err != nil {
			return nil, fmt.Errorf("service: resume embed %q: %w", snap.Sessions[grp.indices[0]].JobID, err)
		}
		for j, idx := range grp.indices {
			sessions[idx] = batch[j]
		}
	}

	for i, ss := range snap.Sessions {
		phase, err := parsePhase(ss.Phase)
		if err != nil {
			return nil, fmt.Errorf("service: job %q: %w", ss.JobID, err)
		}
		proc, err := tuners[i].ResumeWithSession(sessions[i], ss.Process)
		if err != nil {
			return nil, fmt.Errorf("service: resume process %q: %w", ss.JobID, err)
		}
		if _, ok := s.sessions[ss.JobID]; ok {
			return nil, fmt.Errorf("service: snapshot repeats job %q", ss.JobID)
		}
		sess := &session{
			id:          ss.JobID,
			clusterID:   ss.Tuner.ClusterID,
			clusterDist: ss.ClusterDistance,
			graph:       ss.Process.Graph,
			engCfg:      ss.Process.Engine,
			tuner:       tuners[i],
			proc:        proc,
			phase:       phase,
			history:     append([]Recommendation(nil), ss.History...),
			lease:       ss.Lease,
		}
		sess.recs, sess.bps = cfg.Metrics.jobCounters(ss.JobID)
		s.sessions[ss.JobID] = sess
		s.warmClusters[ss.Tuner.ClusterID] = true
	}
	return s, nil
}
