package service

import (
	"context"
	"sync"
	"time"

	"github.com/streamtune/streamtune/internal/parallel"
	"github.com/streamtune/streamtune/internal/telemetry"
)

// observeBatcher coalesces concurrent Observe requests — label
// harvesting, convergence checks, model warm-up — into one worker-pool
// task. Each session's harvest is an independent pure step over its own
// state, so batching changes scheduling only: per-session results are
// bit-identical to the unbatched path (differential-tested). The win is
// at thousands-of-tenants scale, where every Observe is sub-millisecond
// of work behind a full worker-pool round trip of queueing; one flush
// pays that round trip once for the whole batch.
//
// Requests queue globally (unlike the inference batcher there is no
// compatibility key — any sessions may share a flush). The first
// request arms the deadline timer; the queue flushes when the deadline
// expires or it reaches maxBatch. A waiter whose context ends before
// the flush delivers abandons the wait; its harvest still executes and
// the result is dropped on the buffered channel's floor.
type observeBatcher struct {
	window   time.Duration
	maxBatch int
	pool     *parallel.Limiter

	mu     sync.Mutex
	queue  *observeQueue
	closed bool

	occupancy map[int]uint64
	flushes   uint64
	batched   uint64
	single    uint64
	// occHist mirrors occupancy into the telemetry registry when the
	// owning service has metrics attached; nil (inert) otherwise.
	occHist *telemetry.Histogram
}

type observeRequest struct {
	run func() error
	out chan error
}

// observeQueue is the open queue; a fresh queue replaces it after every
// flush so a stale timer firing against a drained queue is a no-op.
type observeQueue struct {
	reqs  []*observeRequest
	timer *time.Timer
}

// newObserveBatcher returns nil (coalescing disabled) when window <= 0.
func newObserveBatcher(window time.Duration, maxBatch int, pool *parallel.Limiter) *observeBatcher {
	if window <= 0 {
		return nil
	}
	if maxBatch <= 1 {
		maxBatch = 16
	}
	return &observeBatcher{
		window:    window,
		maxBatch:  maxBatch,
		pool:      pool,
		occupancy: make(map[int]uint64),
	}
}

// do enqueues one harvest closure and blocks until its batch executes.
// A nil or closed batcher degrades to the direct pooled path — exactly
// the pre-batching behavior. The per-waiter context governs only the
// wait: once a flush starts, every enqueued harvest runs to completion.
func (b *observeBatcher) do(ctx context.Context, pool *parallel.Limiter, run func() error) error {
	if b == nil {
		return pool.DoCtx(ctx, run)
	}
	req := &observeRequest{run: run, out: make(chan error, 1)}
	b.mu.Lock()
	if b.closed {
		b.single++
		b.mu.Unlock()
		return pool.DoCtx(ctx, run)
	}
	q := b.queue
	if q == nil {
		q = &observeQueue{}
		b.queue = q
		q.timer = time.AfterFunc(b.window, func() { b.flush(q) })
	}
	q.reqs = append(q.reqs, req)
	full := len(q.reqs) >= b.maxBatch
	b.mu.Unlock()
	if full {
		b.flush(q)
	}
	if ctx == nil {
		ctx = context.Background()
	}
	select {
	case err := <-req.out:
		return err
	case <-ctx.Done():
		return ctx.Err()
	}
}

// flush drains q — if it is still the live queue — and executes every
// harvest inside one worker-pool task. Pool saturation (a bounded
// waiting room that is full) sheds the whole batch: every waiter
// receives ErrSaturated and the service classifies it to ErrOverloaded,
// the same contract as the unbatched path.
func (b *observeBatcher) flush(q *observeQueue) {
	b.mu.Lock()
	if b.queue != q {
		b.mu.Unlock()
		return
	}
	b.queue = nil
	q.timer.Stop()
	reqs := q.reqs
	b.flushes++
	b.occupancy[len(reqs)]++
	b.occHist.Observe(float64(len(reqs)))
	if len(reqs) > 1 {
		b.batched += uint64(len(reqs))
	} else {
		b.single++
	}
	b.mu.Unlock()

	errs := make([]error, len(reqs))
	poolErr := b.pool.DoCtx(context.Background(), func() error {
		for i, r := range reqs {
			errs[i] = r.run()
		}
		return nil
	})
	for i, r := range reqs {
		if poolErr != nil {
			r.out <- poolErr
		} else {
			r.out <- errs[i]
		}
	}
}

// close flushes any open queue inline (answering every waiter) and
// routes future requests to the direct pooled path. Idempotent; safe on
// nil.
func (b *observeBatcher) close() {
	if b == nil {
		return
	}
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	b.closed = true
	q := b.queue
	b.queue = nil
	b.mu.Unlock()
	if q == nil {
		return
	}
	q.timer.Stop()
	b.mu.Lock()
	b.occupancy[len(q.reqs)]++
	b.occHist.Observe(float64(len(q.reqs)))
	b.flushes++
	b.single += uint64(len(q.reqs))
	b.mu.Unlock()
	for _, r := range q.reqs {
		r.out <- r.run()
	}
}

// stats returns a point-in-time copy of the coalescing counters.
func (b *observeBatcher) stats() (flushes, batched, single uint64) {
	if b == nil {
		return 0, 0, 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.flushes, b.batched, b.single
}
