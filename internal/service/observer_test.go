package service

import (
	"context"
	"reflect"
	"sync"
	"testing"
	"time"

	"github.com/streamtune/streamtune/internal/dag"
	"github.com/streamtune/streamtune/internal/nexmark"
)

// TestObserveBatchingBitIdentical drives concurrent jobs through a
// service with Observe coalescing enabled and demands every final
// recommendation match the sequential single-job tuner bit for bit —
// batching may only change scheduling, never results.
func TestObserveBatchingBitIdentical(t *testing.T) {
	engCfg := testEngineConfig()
	jobs := []struct {
		id   string
		q    nexmark.Query
		rate float64
	}{
		{"ob-q5", nexmark.Q5, 3}, {"ob-q3", nexmark.Q3, 3},
		{"ob-q2", nexmark.Q2, 3}, {"ob-q8", nexmark.Q8, 3},
	}
	want := make([]map[string]int, len(jobs))
	for i, j := range jobs {
		want[i] = sequentialResult(t, targetGraph(t, j.q, j.rate), engCfg)
	}

	s := newTestService(t, Config{
		Workers:            4,
		ObserveBatchWindow: 5 * time.Millisecond,
		MaxObserveBatch:    4,
	})
	graphs := make([]*dag.Graph, len(jobs))
	for i, j := range jobs {
		graphs[i] = targetGraph(t, j.q, j.rate)
		if _, err := s.Register(context.Background(), j.id, graphs[i], engCfg); err != nil {
			t.Fatalf("register %s: %v", j.id, err)
		}
	}
	got := make([]map[string]int, len(jobs))
	var wg sync.WaitGroup
	for i, j := range jobs {
		wg.Add(1)
		go func() {
			defer wg.Done()
			got[i] = driveJob(t, s, j.id, graphs[i], engCfg)
		}()
	}
	wg.Wait()

	for i, j := range jobs {
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Errorf("job %s: batched-Observe recommendation diverged:\n got %v\nwant %v",
				j.id, got[i], want[i])
		}
	}
	st := s.Stats()
	if st.Observer.Flushes == 0 {
		t.Errorf("no observe flushes recorded across %d observations", st.Sessions.Observations)
	}
	if served := st.Observer.BatchedObservations + st.Observer.UnbatchedObservations; served != st.Sessions.Observations {
		t.Errorf("flushes served %d observations, service counted %d", served, st.Sessions.Observations)
	}
}

// TestObserveBatcherCloseDegrades proves a closed coalescer falls back
// to the direct pooled path — Observe keeps working through shutdown.
func TestObserveBatcherCloseDegrades(t *testing.T) {
	engCfg := testEngineConfig()
	s := newTestService(t, Config{
		Workers:            2,
		ObserveBatchWindow: time.Millisecond,
	})
	s.Close()
	g := targetGraph(t, nexmark.Q2, 3)
	if _, err := s.Register(context.Background(), "post-close", g, engCfg); err != nil {
		t.Fatal(err)
	}
	if rec := driveJob(t, s, "post-close", g, engCfg); len(rec) == 0 {
		t.Fatal("no recommendation after close")
	}
}

// TestAdmissionCacheCapInStats proves a capped admission cache epoch-
// resets under pressure and surfaces size/cap/resets through Stats.
func TestAdmissionCacheCapInStats(t *testing.T) {
	engCfg := testEngineConfig()
	s := newTestService(t, Config{Workers: 2, AdmissionCacheCap: 2})
	for i, q := range []nexmark.Query{nexmark.Q2, nexmark.Q3, nexmark.Q5} {
		g := targetGraph(t, q, 3)
		if _, err := s.Register(context.Background(), g.Name+"-cap", g, engCfg); err != nil {
			t.Fatalf("register %d: %v", i, err)
		}
	}
	st := s.Stats()
	if st.Admission.CacheCap != 2 {
		t.Fatalf("AdmissionCacheCap = %d, want 2", st.Admission.CacheCap)
	}
	if st.Admission.CacheSize > 2 {
		t.Fatalf("AdmissionCacheSize = %d exceeds cap", st.Admission.CacheSize)
	}
	// Three distinct structures against >= 1 center exceed two pairs, so
	// at least one epoch reset must have fired.
	if st.Admission.CacheResets == 0 {
		t.Fatalf("no epoch resets despite cap pressure: %+v", st)
	}
}
