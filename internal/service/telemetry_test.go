package service

import (
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"reflect"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"

	"github.com/streamtune/streamtune/internal/dagspec"
	"github.com/streamtune/streamtune/internal/logbuffer"
	"github.com/streamtune/streamtune/internal/nexmark"
	"github.com/streamtune/streamtune/internal/telemetry"
)

// scrape fetches /metrics and parses every sample line into a
// name{labels} -> value map (HELP/TYPE comments skipped).
func scrape(t *testing.T, client *http.Client, url string) map[string]float64 {
	t.Helper()
	resp, err := client.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("/metrics content type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[string]float64)
	for _, line := range strings.Split(string(body), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("malformed sample line %q", line)
		}
		v, err := strconv.ParseFloat(line[sp+1:], 64)
		if err != nil {
			t.Fatalf("sample %q: %v", line, err)
		}
		out[line[:sp]] = v
	}
	return out
}

// TestMetricsEndToEnd drives register -> recommend -> observe -> mutate
// over HTTP against an instrumented service and scrapes /metrics,
// asserting the advertised families exist with the right label sets
// and that counters are monotone across scrapes.
func TestMetricsEndToEnd(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Metrics = NewMetrics(telemetry.NewRegistry())
	s := newTestService(t, cfg)
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	client := srv.Client()
	engCfg := testEngineConfig()

	g := targetGraph(t, nexmark.Q5, 4)
	if status := httpJSON(t, client, http.MethodPost, srv.URL+"/v1/jobs",
		RegisterRequest{JobID: "obs-q5", Graph: g, Engine: &engCfg}, nil); status != http.StatusOK {
		t.Fatalf("register status = %d", status)
	}
	driveJob(t, s, "obs-q5", g, engCfg)

	first := scrape(t, client, srv.URL)

	for _, key := range []string{
		`streamtune_ready`,
		`streamtune_sessions_active`,
		`streamtune_sessions_registered_total`,
		`streamtune_sessions_rejected_total`,
		`streamtune_recommendations_total`,
		`streamtune_observations_total`,
		`streamtune_admission_cache_hits_total`,
		`streamtune_admission_cache_misses_total`,
		`streamtune_encoder_warm_hits_total`,
		`streamtune_workers_in_flight`,
		`streamtune_worker_cap`,
		`streamtune_shed_total`,
		`streamtune_checkpoints_written_total`,
		`streamtune_tuner_fits_total`,
		`streamtune_tuner_distills_total`,
		`streamtune_request_duration_seconds_count{op="register"}`,
		`streamtune_request_duration_seconds_count{op="recommend"}`,
		`streamtune_request_duration_seconds_count{op="observe"}`,
		`streamtune_request_duration_seconds_sum{op="recommend"}`,
		`streamtune_tuner_reconfigurations_total{job="obs-q5"}`,
		`streamtune_backpressure_windows_total{job="obs-q5"}`,
	} {
		if _, ok := first[key]; !ok {
			t.Errorf("scrape missing %s", key)
		}
	}
	// Histogram families expose cumulative buckets ending in +Inf.
	if _, ok := first[`streamtune_request_duration_seconds_bucket{op="recommend",le="+Inf"}`]; !ok {
		t.Error(`scrape missing recommend +Inf bucket`)
	}
	if first[`streamtune_ready`] != 1 {
		t.Errorf("streamtune_ready = %v, want 1", first[`streamtune_ready`])
	}
	if first[`streamtune_sessions_registered_total`] != 1 {
		t.Errorf("registered_total = %v, want 1", first[`streamtune_sessions_registered_total`])
	}
	if n := first[`streamtune_request_duration_seconds_count{op="recommend"}`]; n < 1 {
		t.Errorf("recommend duration count = %v, want >= 1", n)
	}
	if n := first[`streamtune_tuner_fits_total`]; n < 1 {
		t.Errorf("tuner_fits_total = %v, want >= 1", n)
	}
	if n := first[`streamtune_tuner_reconfigurations_total{job="obs-q5"}`]; n < 1 {
		t.Errorf("job reconfigurations = %v, want >= 1", n)
	}

	// A topology mutation and a second scrape: every *_total stays
	// monotone, and the mutation op appears in the duration histogram.
	mut, err := dagspec.ParseMutation([]byte(prefilterMutation))
	if err != nil {
		t.Fatal(err)
	}
	var mres MutateResult
	if status := httpJSON(t, client, http.MethodPatch, srv.URL+"/v1/jobs/obs-q5/topology",
		json.RawMessage(prefilterMutation), &mres); status != http.StatusOK {
		t.Fatalf("mutate status = %d", status)
	}
	_ = mut

	second := scrape(t, client, srv.URL)
	for key, v := range first {
		if !strings.Contains(key, "_total") && !strings.Contains(key, "_count") &&
			!strings.Contains(key, "_bucket") && !strings.Contains(key, "_sum") {
			continue
		}
		if second[key] < v {
			t.Errorf("counter %s went backwards: %v -> %v", key, v, second[key])
		}
	}
	if n := second[`streamtune_topology_mutations_total`]; n != 1 {
		t.Errorf("topology_mutations_total = %v, want 1", n)
	}
	if n := second[`streamtune_request_duration_seconds_count{op="mutate"}`]; n != 1 {
		t.Errorf("mutate duration count = %v, want 1", n)
	}

	// Family naming hygiene: every sample matches the Prometheus
	// sample grammar and carries the streamtune_ prefix.
	nameRe := regexp.MustCompile(`^streamtune_[a-z0-9_]+(\{[^}]*\})?$`)
	for key := range second {
		if !nameRe.MatchString(key) {
			t.Errorf("sample %q violates naming convention", key)
		}
	}
}

// TestTelemetryInert proves instrumentation changes no tuning decision:
// the same job driven on an instrumented and a bare service produces
// bit-identical recommendation sequences and snapshots.
func TestTelemetryInert(t *testing.T) {
	engCfg := testEngineConfig()
	// Freeze the lease clock: snapshots embed lease timestamps, and the
	// comparison must only see tuning-state differences.
	epoch := time.Unix(1700000000, 0).UTC()
	clock := func() time.Time { return epoch }
	run := func(cfg Config) (map[string]int, []byte) {
		cfg.Clock = clock
		s := newTestService(t, cfg)
		g := targetGraph(t, nexmark.Q5, 6)
		if _, err := s.Register(context.Background(), "diff", g, engCfg); err != nil {
			t.Fatal(err)
		}
		final := driveJob(t, s, "diff", g, engCfg)
		snap, err := s.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		return final, snap
	}

	instr := DefaultConfig()
	instr.Metrics = NewMetrics(telemetry.NewRegistry())
	instr.Logs = logbuffer.New(256)
	instr.Logger = slog.New(instr.Logs.Handler(slog.LevelDebug))

	baseFinal, baseSnap := run(DefaultConfig())
	instrFinal, instrSnap := run(instr)

	if !reflect.DeepEqual(baseFinal, instrFinal) {
		t.Errorf("instrumentation changed the final recommendation:\nbare  %v\ninstr %v",
			baseFinal, instrFinal)
	}
	// RecommendTime is a wall-clock accumulator — it differs between
	// any two runs, instrumented or not — and the envelope checksum
	// covers it. Normalize both before the bit comparison; everything
	// else (training sets, embeddings, phases, leases) must match.
	normalize := func(snap []byte) string {
		s := regexp.MustCompile(`"RecommendTime": \d+`).ReplaceAllString(string(snap), `"RecommendTime": 0`)
		return regexp.MustCompile(`"checksum": \d+`).ReplaceAllString(s, `"checksum": 0`)
	}
	if normalize(baseSnap) != normalize(instrSnap) {
		t.Error("instrumentation changed the session snapshot bytes")
	}
	if instr.Logs.Len() == 0 {
		t.Error("instrumented run appended no log entries")
	}
}

// TestMetricsHelpersZeroAlloc pins the service-side hot-path helpers —
// the deferred latency observations and per-job counters — at zero
// heap allocations, both enabled and disabled (nil Metrics).
func TestMetricsHelpersZeroAlloc(t *testing.T) {
	m := NewMetrics(telemetry.NewRegistry())
	recs, bps := m.jobCounters("alloc-job")
	t0 := time.Now()
	cases := map[string]func(){
		"sinceRecommend": func() { m.sinceRecommend(t0) },
		"sinceObserve":   func() { m.sinceObserve(t0) },
		"jobCounterInc":  func() { recs.Inc(); bps.Inc() },
		"nilMetrics":     func() { (*Metrics)(nil).sinceRecommend(t0) },
	}
	for name, fn := range cases {
		if n := testing.AllocsPerRun(200, fn); n != 0 {
			t.Errorf("%s allocates %v per call, want 0", name, n)
		}
	}
}

// TestStatsV2Shape locks the /v1/stats document: schema_version 2 with
// the six grouped sections, decoded generically so a renamed or
// flattened field fails loudly.
func TestStatsV2Shape(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Metrics = NewMetrics(telemetry.NewRegistry())
	s := newTestService(t, cfg)
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	g := targetGraph(t, nexmark.Q3, 3)
	if _, err := s.Register(context.Background(), "shape", g, testEngineConfig()); err != nil {
		t.Fatal(err)
	}

	var doc map[string]json.RawMessage
	if status := httpJSON(t, srv.Client(), http.MethodGet, srv.URL+"/v1/stats", nil, &doc); status != http.StatusOK {
		t.Fatalf("stats status = %d", status)
	}
	var version int
	if err := json.Unmarshal(doc["schema_version"], &version); err != nil || version != StatsSchemaVersion {
		t.Fatalf("schema_version = %s (err %v), want %d", doc["schema_version"], err, StatsSchemaVersion)
	}
	for _, section := range []string{"sessions", "admission", "batching", "overload", "checkpoint", "observer"} {
		raw, ok := doc[section]
		if !ok {
			t.Errorf("stats document missing section %q", section)
			continue
		}
		var m map[string]any
		if err := json.Unmarshal(raw, &m); err != nil {
			t.Errorf("section %q is not an object: %v", section, err)
		}
	}
	var sessions map[string]any
	if err := json.Unmarshal(doc["sessions"], &sessions); err != nil {
		t.Fatal(err)
	}
	if sessions["active"] != float64(1) || sessions["registered"] != float64(1) {
		t.Errorf("sessions section = %v, want active=1 registered=1", sessions)
	}
}

// TestHealthAndReadiness covers the probe endpoints: /healthz is
// always 200, /readyz tracks SetReady and serves the uniform error
// envelope with code not_ready while draining.
func TestHealthAndReadiness(t *testing.T) {
	s := newTestService(t, DefaultConfig())
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	client := srv.Client()

	var health HealthResponse
	if status := httpJSON(t, client, http.MethodGet, srv.URL+"/healthz", nil, &health); status != http.StatusOK {
		t.Fatalf("healthz status = %d", status)
	}
	if health.Status != "ok" {
		t.Errorf("healthz status field = %q, want ok", health.Status)
	}
	var ready HealthResponse
	if status := httpJSON(t, client, http.MethodGet, srv.URL+"/readyz", nil, &ready); status != http.StatusOK {
		t.Fatalf("readyz status = %d", status)
	}
	if ready.Status != "ready" {
		t.Errorf("readyz status field = %q, want ready", ready.Status)
	}

	s.SetReady(false)
	var envelope errorResponse
	if status := httpJSON(t, client, http.MethodGet, srv.URL+"/readyz", nil, &envelope); status != http.StatusServiceUnavailable {
		t.Fatalf("draining readyz status = %d, want 503", status)
	}
	if envelope.Error.Code != "not_ready" {
		t.Errorf("draining readyz code = %q, want not_ready", envelope.Error.Code)
	}
	// Liveness is unaffected by draining.
	if status := httpJSON(t, client, http.MethodGet, srv.URL+"/healthz", nil, nil); status != http.StatusOK {
		t.Fatalf("draining healthz status = %d, want 200", status)
	}
	s.SetReady(true)
	if status := httpJSON(t, client, http.MethodGet, srv.URL+"/readyz", nil, nil); status != http.StatusOK {
		t.Fatalf("restored readyz status = %d, want 200", status)
	}
}

// TestLogsEndpoint exercises /v1/logs limit and level filtering plus
// the telemetry_disabled envelope when no ring buffer is attached.
func TestLogsEndpoint(t *testing.T) {
	ring := logbuffer.New(64)
	cfg := DefaultConfig()
	cfg.Logs = ring
	cfg.Logger = slog.New(ring.Handler(slog.LevelDebug))
	s := newTestService(t, cfg)
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	client := srv.Client()

	g := targetGraph(t, nexmark.Q2, 2)
	if _, err := s.Register(context.Background(), "logs-job", g, testEngineConfig()); err != nil {
		t.Fatal(err)
	}
	s.log.Warn("synthetic warning", "n", 1)

	var all LogsResponse
	if status := httpJSON(t, client, http.MethodGet, srv.URL+"/v1/logs", nil, &all); status != http.StatusOK {
		t.Fatalf("logs status = %d", status)
	}
	if len(all.Entries) == 0 {
		t.Fatal("no log entries returned")
	}
	if all.Capacity != 64 {
		t.Errorf("capacity = %d, want 64", all.Capacity)
	}
	foundRegister := false
	for _, e := range all.Entries {
		if e.Msg == "session registered" {
			foundRegister = true
			if e.Attrs["job"] != "logs-job" {
				t.Errorf("register entry attrs = %v, want job=logs-job", e.Attrs)
			}
		}
	}
	if !foundRegister {
		t.Error(`no "session registered" entry in /v1/logs`)
	}

	var warns LogsResponse
	if status := httpJSON(t, client, http.MethodGet, srv.URL+"/v1/logs?level=warn", nil, &warns); status != http.StatusOK {
		t.Fatalf("level-filtered logs status = %d", status)
	}
	for _, e := range warns.Entries {
		if e.Level != "WARN" && e.Level != "ERROR" {
			t.Errorf("level=warn returned %s entry %q", e.Level, e.Msg)
		}
	}
	var limited LogsResponse
	if status := httpJSON(t, client, http.MethodGet, srv.URL+"/v1/logs?limit=1", nil, &limited); status != http.StatusOK {
		t.Fatalf("limited logs status = %d", status)
	}
	if len(limited.Entries) != 1 {
		t.Errorf("limit=1 returned %d entries", len(limited.Entries))
	}
	var envelope errorResponse
	if status := httpJSON(t, client, http.MethodGet, srv.URL+"/v1/logs?limit=bogus", nil, &envelope); status != http.StatusBadRequest {
		t.Fatalf("bad limit status = %d, want 400", status)
	}
	if envelope.Error.Code != "invalid_job" {
		t.Errorf("bad limit code = %q, want invalid_job", envelope.Error.Code)
	}

	// No ring buffer attached -> 404 telemetry_disabled; same for
	// /metrics with no registry.
	bare := newTestService(t, DefaultConfig())
	bareSrv := httptest.NewServer(bare.Handler())
	defer bareSrv.Close()
	for _, path := range []string{"/v1/logs", "/metrics"} {
		var env errorResponse
		if status := httpJSON(t, bareSrv.Client(), http.MethodGet, bareSrv.URL+path, nil, &env); status != http.StatusNotFound {
			t.Fatalf("bare %s status = %d, want 404", path, status)
		}
		if env.Error.Code != "telemetry_disabled" {
			t.Errorf("bare %s code = %q, want telemetry_disabled", path, env.Error.Code)
		}
	}
}

// TestOpsHandler checks the standalone ops surface serves exactly the
// operational endpoints and none of the tenant API.
func TestOpsHandler(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Metrics = NewMetrics(telemetry.NewRegistry())
	cfg.Logs = logbuffer.New(16)
	s := newTestService(t, cfg)
	srv := httptest.NewServer(s.OpsHandler())
	defer srv.Close()
	client := srv.Client()

	for _, path := range []string{"/metrics", "/healthz", "/readyz", "/v1/logs", "/v1/stats"} {
		resp, err := client.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("ops %s status = %d, want 200", path, resp.StatusCode)
		}
	}
	// The tenant API must not leak onto the ops port.
	resp, err := client.Post(srv.URL+"/v1/jobs", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("ops POST /v1/jobs status = %d, want 404", resp.StatusCode)
	}
}

// TestRequestQuantile sanity-checks the benchmark-facing summary
// accessors against a scrape of the same histogram.
func TestRequestQuantile(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Metrics = NewMetrics(telemetry.NewRegistry())
	s := newTestService(t, cfg)
	g := targetGraph(t, nexmark.Q3, 3)
	if _, err := s.Register(context.Background(), "q", g, testEngineConfig()); err != nil {
		t.Fatal(err)
	}
	if n := cfg.Metrics.RequestCount("register"); n != 1 {
		t.Fatalf("RequestCount(register) = %d, want 1", n)
	}
	p99 := cfg.Metrics.RequestQuantile("register", 0.99)
	if p99 <= 0 {
		t.Errorf("RequestQuantile(register, 0.99) = %v, want > 0", p99)
	}
	if n := cfg.Metrics.RequestCount("no-such-op"); n != 0 {
		t.Errorf("RequestCount(no-such-op) = %d, want 0", n)
	}
	if q := cfg.Metrics.RequestQuantile("no-such-op", 0.5); q != 0 {
		t.Errorf("RequestQuantile(no-such-op) = %v, want 0", q)
	}
}
