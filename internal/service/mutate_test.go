package service

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"github.com/streamtune/streamtune/internal/dagspec"
	"github.com/streamtune/streamtune/internal/engine"
	"github.com/streamtune/streamtune/internal/nexmark"
)

// prefilterMutation inserts a selectivity-0.8 filter between the Q5
// source and its sliding window — the canonical mid-stream topology
// change of the scenario suite.
const prefilterMutation = `{
	"version": 1,
	"add_nodes": [{"id": "prefilter", "kind": "filter",
		"spec": {"selectivity": 0.8, "tuple": {"width_in": 96, "width_out": 96}}}],
	"remove_edges": [["bids", "sliding-window"]],
	"add_edges": [["bids", "prefilter"], ["prefilter", "sliding-window"]]
}`

// TestServiceMutateTopology drives a job partway, mutates its DAG
// mid-stream, finishes tuning on the mutated topology, and asserts the
// final recommendation is bit-identical to tuning the mutated graph
// from scratch — the warm start must not change where the process
// converges, only where it starts.
func TestServiceMutateTopology(t *testing.T) {
	engCfg := testEngineConfig()
	s := newTestService(t, DefaultConfig())
	g := targetGraph(t, nexmark.Q5, 4)
	reg, err := s.Register(context.Background(), "mut", g, engCfg)
	if err != nil {
		t.Fatal(err)
	}

	// Accumulate observations on the original topology first, so the
	// warm start has session history to carry over.
	eng, err := engine.New(g, engCfg)
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 3; round++ {
		rec, err := s.Recommend(context.Background(), "mut")
		if err != nil {
			t.Fatal(err)
		}
		if rec.Done {
			break
		}
		if rec.Deploy {
			if err := eng.Deploy(rec.Parallelism); err != nil {
				t.Fatal(err)
			}
			eng.Stabilize(s.pt.Config.StabilizeWait)
		}
		m, err := eng.Run()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Observe(context.Background(), "mut", m); err != nil {
			t.Fatal(err)
		}
	}
	info, err := s.Session("mut")
	if err != nil {
		t.Fatal(err)
	}
	preTrain := info.TrainingSamples
	if preTrain <= reg.WarmupSamples {
		t.Fatalf("pre-mutation training set %d has not grown beyond the warm-up %d",
			preTrain, reg.WarmupSamples)
	}

	mut, err := dagspec.ParseMutation([]byte(prefilterMutation))
	if err != nil {
		t.Fatal(err)
	}
	newG, err := mut.Apply(g)
	if err != nil {
		t.Fatal(err)
	}
	want := sequentialResult(t, newG.Clone(), engCfg)

	res, err := s.MutateTopology(context.Background(), "mut", mut)
	if err != nil {
		t.Fatal(err)
	}
	if res.Operators != newG.NumOperators() {
		t.Errorf("MutateResult.Operators = %d, want %d", res.Operators, newG.NumOperators())
	}
	if res.WarmStart == res.ClusterChanged {
		t.Errorf("inconsistent result: warm_start=%v cluster_changed=%v", res.WarmStart, res.ClusterChanged)
	}
	if res.WarmStart {
		if res.ClusterID != reg.ClusterID {
			t.Errorf("warm start across clusters: %d -> %d", reg.ClusterID, res.ClusterID)
		}
		// The surviving training samples plus the mutated target's
		// distillation must at least preserve the accumulated set.
		if res.TrainingSamples < preTrain {
			t.Errorf("warm start shrank the training set: %d -> %d", preTrain, res.TrainingSamples)
		}
	}

	// The client redeploys the mutated job and finishes tuning against
	// a system running the new topology.
	got := driveJob(t, s, "mut", newG.Clone(), engCfg)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("mutate-then-tune diverged from tuning the mutated graph fresh:\n got %v\nwant %v", got, want)
	}

	st := s.Stats()
	if st.Sessions.TopologyMutations != 1 {
		t.Errorf("TopologyMutations = %d, want 1", st.Sessions.TopologyMutations)
	}
}

// TestServiceMutateRollback asserts a rejected mutation leaves the
// session exactly where it was: same phase, same topology, protocol
// still advancing.
func TestServiceMutateRollback(t *testing.T) {
	engCfg := testEngineConfig()
	s := newTestService(t, DefaultConfig())
	g := targetGraph(t, nexmark.Q5, 4)
	if _, err := s.Register(context.Background(), "rb", g, engCfg); err != nil {
		t.Fatal(err)
	}
	// Advance to the observe phase so rollback restores a non-default
	// position.
	rec, err := s.Recommend(context.Background(), "rb")
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name string
		doc  string
	}{
		{"unknown node", `{"version": 1, "remove_nodes": ["ghost"]}`},
		{"no changes", `{"version": 1}`},
		{"strands the graph", `{"version": 1, "remove_edges": [["bids", "sliding-window"]]}`},
	}
	for _, c := range cases {
		mut, err := dagspec.ParseMutation([]byte(c.doc))
		if err != nil {
			t.Fatalf("%s: parse: %v", c.name, err)
		}
		_, err = s.MutateTopology(context.Background(), "rb", mut)
		if !errors.Is(err, ErrInvalidJob) {
			t.Fatalf("%s: err = %v, want ErrInvalidJob", c.name, err)
		}
		var verrs dagspec.ValidationErrors
		if !errors.As(err, &verrs) {
			t.Fatalf("%s: error does not carry ValidationErrors: %v", c.name, err)
		}
		info, err := s.Session("rb")
		if err != nil {
			t.Fatal(err)
		}
		if info.Phase != "observe" {
			t.Fatalf("%s: phase after rollback = %q, want observe", c.name, info.Phase)
		}
	}
	if got := s.Stats().Sessions.MutationsRejected; got != uint64(len(cases)) {
		t.Errorf("MutationsRejected = %d, want %d", got, len(cases))
	}

	if _, err := s.MutateTopology(context.Background(), "ghost-job", &dagspec.Mutation{Version: 1}); !errors.Is(err, ErrUnknownJob) {
		t.Errorf("unknown job: err = %v, want ErrUnknownJob", err)
	}
	if _, err := s.MutateTopology(context.Background(), "rb", nil); !errors.Is(err, ErrInvalidJob) {
		t.Errorf("nil mutation: err = %v, want ErrInvalidJob", err)
	}

	// The protocol still advances: the outstanding recommendation's
	// window posts normally after the failed mutations.
	eng, err := engine.New(g, engCfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Deploy(rec.Parallelism); err != nil {
		t.Fatal(err)
	}
	eng.Stabilize(s.pt.Config.StabilizeWait)
	m, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Observe(context.Background(), "rb", m); err != nil {
		t.Fatalf("observe after rolled-back mutations: %v", err)
	}
}

// TestServiceListJobs covers the paginated session listing.
func TestServiceListJobs(t *testing.T) {
	engCfg := testEngineConfig()
	s := newTestService(t, DefaultConfig())
	ids := []string{"list-a", "list-b", "list-c", "list-d", "list-e"}
	for i, id := range ids {
		q := nexmark.Q5
		if i%2 == 1 {
			q = nexmark.Q3
		}
		if _, err := s.Register(context.Background(), id, targetGraph(t, q, 4), engCfg); err != nil {
			t.Fatal(err)
		}
	}
	// Advance one job so phases differ across the listing.
	if _, err := s.Recommend(context.Background(), "list-c"); err != nil {
		t.Fatal(err)
	}

	var got []string
	phases := map[string]string{}
	after := ""
	pages := 0
	for {
		page := s.ListJobs(after, 2)
		if page.Total != len(ids) {
			t.Fatalf("Total = %d, want %d", page.Total, len(ids))
		}
		if len(page.Jobs) > 2 {
			t.Fatalf("page holds %d jobs, limit 2", len(page.Jobs))
		}
		for _, j := range page.Jobs {
			got = append(got, j.JobID)
			phases[j.JobID] = j.Phase
		}
		pages++
		if page.NextAfter == "" {
			break
		}
		after = page.NextAfter
	}
	if !reflect.DeepEqual(got, ids) {
		t.Errorf("paginated listing = %v, want %v", got, ids)
	}
	if pages != 3 {
		t.Errorf("pages = %d, want 3", pages)
	}
	if phases["list-c"] != "observe" || phases["list-a"] != "recommend" {
		t.Errorf("phases = %v", phases)
	}

	// Default limit returns everything in one page with no cursor.
	page := s.ListJobs("", 0)
	if len(page.Jobs) != len(ids) || page.NextAfter != "" {
		t.Errorf("default page = %d jobs next_after=%q", len(page.Jobs), page.NextAfter)
	}
}
