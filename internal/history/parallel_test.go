package history

import (
	"testing"

	"github.com/streamtune/streamtune/internal/engine"
)

// TestGenerateWorkerInvariant asserts corpus generation is bit-identical
// for every worker count: the sampling randomness is drawn before the
// fan-out, so scheduling cannot perturb it.
func TestGenerateWorkerInvariant(t *testing.T) {
	graphs := smallGraphSet(t)
	base := DefaultOptions(engine.Flink)
	base.SamplesPerGraph = 6
	base.Engine.MeasureTicks = 30

	gen := func(workers int) *Corpus {
		opts := base
		opts.Workers = workers
		c, err := Generate(graphs, opts)
		if err != nil {
			t.Fatal(err)
		}
		return c
	}

	ref := gen(1)
	for _, workers := range []int{2, 8} {
		c := gen(workers)
		if c.Len() != ref.Len() {
			t.Fatalf("workers=%d: corpus size %d, want %d", workers, c.Len(), ref.Len())
		}
		for i := range ref.Executions {
			a, b := ref.Executions[i], c.Executions[i]
			if a.Graph.Name != b.Graph.Name {
				t.Fatalf("workers=%d: execution %d graph %s, want %s", workers, i, b.Graph.Name, a.Graph.Name)
			}
			if a.Deficit != b.Deficit || a.TotalParallelism != b.TotalParallelism {
				t.Fatalf("workers=%d: execution %d diverged: %+v vs %+v", workers, i, b, a)
			}
			for id, p := range a.Parallelism {
				if b.Parallelism[id] != p {
					t.Fatalf("workers=%d: execution %d parallelism[%s] = %d, want %d",
						workers, i, id, b.Parallelism[id], p)
				}
			}
			for j := range a.Labels {
				if a.Labels[j] != b.Labels[j] {
					t.Fatalf("workers=%d: execution %d label %d diverged", workers, i, j)
				}
			}
		}
	}
}
