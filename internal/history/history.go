// Package history generates and holds dataflow execution histories: the
// pre-training corpus of the StreamTune paper. Each execution records a
// job graph (with the source rates in force), the deployed parallelism,
// and the operator-level bottleneck labels obtained via Algorithm 1.
package history

import (
	"fmt"
	"math/rand"

	"github.com/streamtune/streamtune/internal/bottleneck"
	"github.com/streamtune/streamtune/internal/dag"
	"github.com/streamtune/streamtune/internal/engine"
	"github.com/streamtune/streamtune/internal/ged"
	"github.com/streamtune/streamtune/internal/parallel"
	"github.com/streamtune/streamtune/internal/workload"
)

// Execution is one historical run of a streaming job.
type Execution struct {
	// Graph is the job's logical DAG with the source rates that were in
	// force during the run.
	Graph *dag.Graph
	// Parallelism maps operator ID to its deployed parallelism degree.
	Parallelism map[string]int
	// Labels holds the Algorithm 1 bottleneck labels by graph index
	// (-1 unlabeled, 0 non-bottleneck, 1 bottleneck).
	Labels []int
	// Deficit is the job-level performance shortfall in [0, 1]: zero when
	// the job sustained its ideal sink throughput, approaching one as
	// bottlenecks squeeze output. ZeroTune's job-level cost model trains
	// on this signal.
	Deficit float64
	// TotalParallelism is the sum of deployed parallelism degrees.
	TotalParallelism int
}

// Corpus is a set of historical executions, typically spanning many
// distinct job structures.
type Corpus struct {
	Executions []Execution
}

// Len reports the number of executions.
func (c *Corpus) Len() int { return len(c.Executions) }

// Graphs returns one representative graph per distinct job name.
func (c *Corpus) Graphs() []*dag.Graph {
	seen := make(map[string]bool)
	var out []*dag.Graph
	for _, e := range c.Executions {
		if !seen[e.Graph.Name] {
			seen[e.Graph.Name] = true
			out = append(out, e.Graph)
		}
	}
	return out
}

// DistinctStructures reports how many structurally-distinct job graphs
// (by ged.Fingerprint, ignoring names and rates) the corpus holds. The
// GED layer dedupes identical structures through its fingerprint cache,
// so this is the effective number of exact computations a similarity
// query over the corpus costs — typically far below Len().
func (c *Corpus) DistinctStructures() int {
	seen := make(map[string]bool)
	for _, e := range c.Executions {
		seen[ged.Fingerprint(e.Graph)] = true
	}
	return len(seen)
}

// NodeCountDistribution returns, for each operator count, the fraction
// of distinct job structures in the corpus with that count (the paper's
// Fig. 5 view of the pre-training data).
func (c *Corpus) NodeCountDistribution() map[int]float64 {
	counts := make(map[int]int)
	total := 0
	for _, g := range c.Graphs() {
		counts[g.NumOperators()]++
		total++
	}
	out := make(map[int]float64, len(counts))
	for n, k := range counts {
		out[n] = float64(k) / float64(total)
	}
	return out
}

// Options configures corpus generation.
type Options struct {
	// SamplesPerGraph is how many (rate, parallelism) samples to execute
	// per job structure.
	SamplesPerGraph int
	// MaxParallelism bounds the random parallelism draw (paper: [1, 60]).
	MaxParallelism int
	// Seed drives sampling and per-run engine noise.
	Seed int64
	// Engine is the engine configuration to execute histories with.
	Engine engine.Config
	// Workers bounds the goroutines executing sample runs. All sampling
	// randomness is drawn up front on the calling goroutine, so the
	// corpus is identical for every worker count (including 1, which
	// runs inline). Values below one use every CPU.
	Workers int
}

// DefaultOptions returns the paper's pre-training sampling setup on the
// given engine flavor.
func DefaultOptions(f engine.Flavor) Options {
	cfg := engine.DefaultConfig(f)
	return Options{
		SamplesPerGraph: 40,
		MaxParallelism:  60,
		Seed:            1,
		Engine:          cfg,
	}
}

// sampleDraw is the pre-drawn randomness of one corpus sample. Drawing
// every random value sequentially before fanning the engine runs out
// keeps the corpus bit-identical to a fully sequential generation for
// any worker count.
type sampleDraw struct {
	base        *dag.Graph
	multiplier  float64
	engineSeed  int64
	parallelism map[string]int
}

// Generate executes SamplesPerGraph randomized runs of every graph and
// labels each run with Algorithm 1. Source rates are drawn uniformly in
// (1, 10) rate units, where the graphs' current rates are taken as one
// unit; parallelism degrees are drawn uniformly in [1, MaxParallelism].
// Runs execute on up to Workers goroutines; the corpus content and
// ordering do not depend on the worker count.
func Generate(graphs []*dag.Graph, opts Options) (*Corpus, error) {
	if opts.SamplesPerGraph <= 0 {
		return nil, fmt.Errorf("history: SamplesPerGraph must be positive")
	}
	if opts.MaxParallelism < 1 {
		return nil, fmt.Errorf("history: MaxParallelism must be >= 1")
	}
	// Phase 1 (sequential): draw all sampling randomness in the exact
	// order the sequential generator consumed it.
	rng := rand.New(rand.NewSource(opts.Seed))
	pmax := opts.MaxParallelism
	if pmax > opts.Engine.MaxParallelism {
		pmax = opts.Engine.MaxParallelism
	}
	var draws []sampleDraw
	for _, base := range graphs {
		for s := 0; s < opts.SamplesPerGraph; s++ {
			d := sampleDraw{
				base:        base,
				multiplier:  workload.RandomMultiplier(rng),
				engineSeed:  rng.Int63(),
				parallelism: make(map[string]int, base.NumOperators()),
			}
			for _, op := range base.Operators() {
				d.parallelism[op.ID] = 1 + rng.Intn(pmax)
			}
			draws = append(draws, d)
		}
	}

	// Phase 2 (parallel): execute and label each pre-drawn sample.
	execs, err := parallel.Map(len(draws), opts.Workers, func(i int) (Execution, error) {
		d := draws[i]
		g := d.base.Clone()
		g.ScaleSourceRates(d.multiplier)

		cfg := opts.Engine
		cfg.Seed = d.engineSeed
		eng, err := engine.New(g, cfg)
		if err != nil {
			return Execution{}, fmt.Errorf("history: %s: %w", g.Name, err)
		}
		if err := eng.Deploy(d.parallelism); err != nil {
			return Execution{}, fmt.Errorf("history: deploy %s: %w", g.Name, err)
		}
		m, err := eng.Run()
		if err != nil {
			return Execution{}, fmt.Errorf("history: run %s: %w", g.Name, err)
		}
		labels, err := bottleneck.ForFlavor(eng.Graph(), m, cfg)
		if err != nil {
			return Execution{}, fmt.Errorf("history: label %s: %w", g.Name, err)
		}
		return Execution{
			Graph:            eng.Graph(),
			Parallelism:      d.parallelism,
			Labels:           labels,
			Deficit:          deficit(eng.Graph(), m),
			TotalParallelism: eng.TotalParallelism(),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	return &Corpus{Executions: execs}, nil
}

// deficit computes the job-level performance shortfall of one run: one
// minus the ratio of observed sink throughput to the ground-truth ideal
// sink throughput at the offered source rates, clamped to [0, 1].
func deficit(g *dag.Graph, m *engine.JobMetrics) float64 {
	demand, err := engine.GroundTruthDemand(g)
	if err != nil {
		return 0
	}
	var ideal float64
	for _, i := range g.Sinks() {
		ideal += demand[i]
	}
	if ideal <= 0 {
		return 0
	}
	d := 1 - m.Throughput/ideal
	if d < 0 {
		d = 0
	}
	if d > 1 {
		d = 1
	}
	return d
}

// LabeledCount reports how many operator labels in the corpus are
// definite (not Unlabeled), and how many of those are bottlenecks.
func (c *Corpus) LabeledCount() (labeled, bottlenecks int) {
	for _, e := range c.Executions {
		for _, l := range e.Labels {
			if l != bottleneck.Unlabeled {
				labeled++
				if l == bottleneck.Bottleneck {
					bottlenecks++
				}
			}
		}
	}
	return labeled, bottlenecks
}
