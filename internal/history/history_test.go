package history

import (
	"testing"

	"github.com/streamtune/streamtune/internal/bottleneck"
	"github.com/streamtune/streamtune/internal/dag"
	"github.com/streamtune/streamtune/internal/engine"
	"github.com/streamtune/streamtune/internal/nexmark"
	"github.com/streamtune/streamtune/internal/pqp"
)

func smallGraphSet(t *testing.T) []*dag.Graph {
	t.Helper()
	q2, err := nexmark.Build(nexmark.Q2, engine.Flink)
	if err != nil {
		t.Fatal(err)
	}
	lin, err := pqp.Build(pqp.Linear, 0)
	if err != nil {
		t.Fatal(err)
	}
	two, err := pqp.Build(pqp.TwoWayJoin, 0)
	if err != nil {
		t.Fatal(err)
	}
	return []*dag.Graph{q2, lin, two}
}

func TestGenerateSmallCorpus(t *testing.T) {
	opts := DefaultOptions(engine.Flink)
	opts.SamplesPerGraph = 8
	opts.Engine.MeasureTicks = 50
	graphs := smallGraphSet(t)
	c, err := Generate(graphs, opts)
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() != 3*8 {
		t.Fatalf("corpus size = %d, want 24", c.Len())
	}
	for _, e := range c.Executions {
		if len(e.Labels) != e.Graph.NumOperators() {
			t.Fatalf("%s: %d labels for %d operators", e.Graph.Name, len(e.Labels), e.Graph.NumOperators())
		}
		for _, op := range e.Graph.Operators() {
			p, ok := e.Parallelism[op.ID]
			if !ok || p < 1 || p > opts.MaxParallelism {
				t.Fatalf("%s: parallelism %d for %s outside [1,%d]", e.Graph.Name, p, op.ID, opts.MaxParallelism)
			}
		}
		for _, l := range e.Labels {
			if l < bottleneck.Unlabeled || l > bottleneck.Bottleneck {
				t.Fatalf("invalid label %d", l)
			}
		}
	}
}

func TestGenerateProducesBothClasses(t *testing.T) {
	// Random parallelism in [1,60] against rates in (1,10) units must
	// produce both bottleneck and non-bottleneck labels, otherwise the
	// pre-training task is degenerate.
	opts := DefaultOptions(engine.Flink)
	opts.SamplesPerGraph = 20
	opts.Engine.MeasureTicks = 50
	c, err := Generate(smallGraphSet(t), opts)
	if err != nil {
		t.Fatal(err)
	}
	labeled, bns := c.LabeledCount()
	if labeled == 0 {
		t.Fatal("no labeled operators in corpus")
	}
	if bns == 0 {
		t.Fatal("no bottleneck labels in corpus; loads too light")
	}
	if bns == labeled {
		t.Fatal("all labels are bottleneck; loads too heavy")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	opts := DefaultOptions(engine.Flink)
	opts.SamplesPerGraph = 4
	opts.Engine.MeasureTicks = 30
	a, err := Generate(smallGraphSet(t), opts)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := Generate(smallGraphSet(t), opts)
	for i := range a.Executions {
		ea, eb := a.Executions[i], b.Executions[i]
		for id, p := range ea.Parallelism {
			if eb.Parallelism[id] != p {
				t.Fatal("same seed produced different parallelism samples")
			}
		}
		for j := range ea.Labels {
			if ea.Labels[j] != eb.Labels[j] {
				t.Fatal("same seed produced different labels")
			}
		}
	}
}

func TestGenerateOptionValidation(t *testing.T) {
	graphs := smallGraphSet(t)
	opts := DefaultOptions(engine.Flink)
	opts.SamplesPerGraph = 0
	if _, err := Generate(graphs, opts); err == nil {
		t.Fatal("expected SamplesPerGraph error")
	}
	opts = DefaultOptions(engine.Flink)
	opts.MaxParallelism = 0
	if _, err := Generate(graphs, opts); err == nil {
		t.Fatal("expected MaxParallelism error")
	}
}

func TestNodeCountDistributionAndGraphs(t *testing.T) {
	opts := DefaultOptions(engine.Flink)
	opts.SamplesPerGraph = 2
	opts.Engine.MeasureTicks = 20
	c, err := Generate(smallGraphSet(t), opts)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(c.Graphs()); got != 3 {
		t.Fatalf("distinct graphs = %d, want 3", got)
	}
	dist := c.NodeCountDistribution()
	var sum float64
	for _, f := range dist {
		sum += f
	}
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("distribution sums to %v, want 1", sum)
	}
	// Every execution clones one of three templates (rates differ, but
	// fingerprints ignore rates), so the corpus has exactly three
	// distinct structures despite Len() == 6.
	if got := c.DistinctStructures(); got != 3 {
		t.Fatalf("DistinctStructures = %d, want 3", got)
	}
}
