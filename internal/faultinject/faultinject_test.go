package faultinject

import (
	"errors"
	"testing"
	"time"
)

func TestDisarmedHitIsNil(t *testing.T) {
	Reset()
	if err := Hit("never-armed"); err != nil {
		t.Fatalf("disarmed Hit returned %v", err)
	}
	data := []byte("payload")
	if got := Corrupt("never-armed", data); &got[0] != &data[0] {
		t.Fatal("disarmed Corrupt copied the payload")
	}
}

func TestHitReturnsConfiguredError(t *testing.T) {
	defer Reset()
	sentinel := errors.New("disk full")
	Enable("p", WithError(sentinel))
	if err := Hit("p"); !errors.Is(err, sentinel) {
		t.Fatalf("Hit = %v, want %v", err, sentinel)
	}
	if Fired("p") != 1 {
		t.Fatalf("Fired = %d, want 1", Fired("p"))
	}
}

func TestHitDefaultsToErrInjected(t *testing.T) {
	defer Reset()
	Enable("p")
	if err := Hit("p"); !errors.Is(err, ErrInjected) {
		t.Fatalf("Hit = %v, want ErrInjected", err)
	}
}

func TestDelayOnlyPointSleepsAndReturnsNil(t *testing.T) {
	defer Reset()
	Enable("p", WithDelay(10*time.Millisecond))
	start := time.Now()
	if err := Hit("p"); err != nil {
		t.Fatalf("delay-only Hit = %v, want nil", err)
	}
	if d := time.Since(start); d < 10*time.Millisecond {
		t.Fatalf("Hit returned after %v, want >= 10ms", d)
	}
}

func TestTimesDisarmsAfterN(t *testing.T) {
	defer Reset()
	Enable("p", Times(2))
	for i := 0; i < 2; i++ {
		if err := Hit("p"); err == nil {
			t.Fatalf("fire %d: Hit = nil, want error", i)
		}
	}
	if err := Hit("p"); err != nil {
		t.Fatalf("after Times(2) exhausted: Hit = %v, want nil", err)
	}
	if Fired("p") != 2 {
		t.Fatalf("Fired = %d, want 2", Fired("p"))
	}
}

func TestEveryNth(t *testing.T) {
	defer Reset()
	Enable("p", Every(3))
	var fired int
	for i := 0; i < 9; i++ {
		if Hit("p") != nil {
			fired++
		}
	}
	if fired != 3 {
		t.Fatalf("Every(3) over 9 hits fired %d times, want 3", fired)
	}
}

func TestCorruptFlipsBytes(t *testing.T) {
	defer Reset()
	Enable("p")
	data := []byte("a perfectly healthy checkpoint payload")
	got := Corrupt("p", data)
	if string(got) == string(data) {
		t.Fatal("Corrupt returned the payload unchanged")
	}
	if string(data) != "a perfectly healthy checkpoint payload" {
		t.Fatal("Corrupt mutated the caller's slice")
	}
	if len(got) != len(data) {
		t.Fatalf("default corruption changed length %d -> %d", len(data), len(got))
	}
}

func TestCustomCorruption(t *testing.T) {
	defer Reset()
	Enable("p", WithCorrupt(func(b []byte) []byte { return b[:len(b)/2] }))
	data := []byte("0123456789")
	if got := Corrupt("p", data); len(got) != 5 {
		t.Fatalf("custom corruption returned %d bytes, want 5", len(got))
	}
}

func TestEnableReplacesAndDisable(t *testing.T) {
	defer Reset()
	Enable("p", WithError(errors.New("first")))
	second := errors.New("second")
	Enable("p", WithError(second))
	if err := Hit("p"); !errors.Is(err, second) {
		t.Fatalf("re-armed Hit = %v, want %v", err, second)
	}
	Disable("p")
	if Active("p") {
		t.Fatal("point still active after Disable")
	}
	if err := Hit("p"); err != nil {
		t.Fatalf("disabled Hit = %v, want nil", err)
	}
}
