// Package faultinject provides named failpoints for the serving stack:
// explicit hooks compiled into production code paths that tests and the
// chaos harness arm to inject failures — write errors on the checkpoint
// path, corrupted snapshot bytes, batcher flush errors, encoder latency
// spikes — without touching the code under test.
//
// A failpoint is addressed by name. Production code calls Hit (or
// Corrupt for byte-mangling points) at the guarded site; when nothing is
// armed the call is a single atomic load. Tests arm a point with Enable
// plus behavior options and tear it down with Disable or Reset:
//
//	faultinject.Enable(faultinject.CheckpointWrite,
//	    faultinject.WithError(errors.New("disk full")),
//	    faultinject.Times(1))
//	defer faultinject.Reset()
//
// Firing is deterministic — Every(n) fires on every nth hit and Times(n)
// disarms after n fires — so a seeded chaos driver controls exactly
// which operations fail. The package never fires on its own: a binary
// that enables nothing pays only the disarmed fast path.
package faultinject

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Well-known failpoint names wired into the serving stack. Packages may
// define their own names too; these constants only fix the spelling of
// the shared ones.
const (
	// CheckpointWrite fails the atomic snapshot/checkpoint file write
	// (internal/service.WriteFileAtomic) before any bytes reach disk.
	CheckpointWrite = "checkpoint-write"
	// CheckpointCorrupt mangles checkpoint bytes between serialization
	// and the (otherwise successful) write, producing an on-disk
	// checkpoint whose checksum cannot verify.
	CheckpointCorrupt = "checkpoint-corrupt"
	// BatcherFlush fails a cross-tenant inference batch flush; every
	// waiter of the batch receives the injected error.
	BatcherFlush = "batcher-flush"
	// EncoderLatency delays encoder inference (batched and single-graph)
	// without failing it — the latency-spike scenario. Arm it with
	// WithDelay alone.
	EncoderLatency = "encoder-latency"
)

// ErrInjected is wrapped by the default injected error, so tests can
// errors.Is their way back to "this failure was injected".
var ErrInjected = errors.New("faultinject: injected failure")

// point is one armed failpoint.
type point struct {
	err     error
	delay   time.Duration
	corrupt func([]byte) []byte
	every   int // fire on every nth hit; 1 = always
	times   int // remaining fires before auto-disarm; < 0 = unlimited

	hits  uint64
	fired uint64
}

// Option configures an armed failpoint.
type Option func(*point)

// WithError sets the error Hit returns when the point fires. Without it
// (and without WithDelay) firing returns ErrInjected.
func WithError(err error) Option { return func(p *point) { p.err = err } }

// WithDelay sleeps d on every fire before returning. A point armed with
// WithDelay and no WithError is a pure latency injection: Hit sleeps and
// returns nil.
func WithDelay(d time.Duration) Option { return func(p *point) { p.delay = d } }

// WithCorrupt sets the byte-mangling function Corrupt applies on fire.
// Without it, Corrupt flips one byte in the middle of the payload —
// enough to break any checksum while keeping the length plausible.
func WithCorrupt(fn func([]byte) []byte) Option { return func(p *point) { p.corrupt = fn } }

// Every makes the point fire only on every nth hit (n >= 1).
func Every(n int) Option {
	return func(p *point) {
		if n >= 1 {
			p.every = n
		}
	}
}

// Times disarms the point after n fires (n >= 1). Hits keep counting,
// but the point no longer fires.
func Times(n int) Option {
	return func(p *point) {
		if n >= 1 {
			p.times = n
		}
	}
}

var (
	// armed counts enabled points; the disarmed fast path of Hit and
	// Corrupt is one atomic load and no lock.
	armed  atomic.Int32
	mu     sync.Mutex
	points = map[string]*point{}
)

// Enable arms (or re-arms, replacing the previous behavior of) the
// named failpoint.
func Enable(name string, opts ...Option) {
	p := &point{every: 1, times: -1}
	for _, o := range opts {
		o(p)
	}
	mu.Lock()
	if _, ok := points[name]; !ok {
		armed.Add(1)
	}
	points[name] = p
	mu.Unlock()
}

// Disable disarms the named failpoint; a no-op when it is not armed.
func Disable(name string) {
	mu.Lock()
	if _, ok := points[name]; ok {
		delete(points, name)
		armed.Add(-1)
	}
	mu.Unlock()
}

// Reset disarms every failpoint.
func Reset() {
	mu.Lock()
	armed.Add(-int32(len(points)))
	points = map[string]*point{}
	mu.Unlock()
}

// Active reports whether the named failpoint is currently armed.
func Active(name string) bool {
	mu.Lock()
	_, ok := points[name]
	mu.Unlock()
	return ok
}

// Fired reports how many times the named failpoint has fired since it
// was (last) enabled; zero when disarmed.
func Fired(name string) uint64 {
	mu.Lock()
	defer mu.Unlock()
	if p, ok := points[name]; ok {
		return p.fired
	}
	return 0
}

// fire consults the named point under the lock and returns the behavior
// to apply, consuming one hit.
func fire(name string) (delay time.Duration, err error, corrupt func([]byte) []byte, ok bool) {
	mu.Lock()
	defer mu.Unlock()
	p, armedHere := points[name]
	if !armedHere {
		return 0, nil, nil, false
	}
	p.hits++
	if p.times == 0 || p.hits%uint64(p.every) != 0 {
		return 0, nil, nil, false
	}
	p.fired++
	if p.times > 0 {
		p.times--
	}
	return p.delay, p.err, p.corrupt, true
}

// Hit evaluates the named failpoint at a guarded site: when it fires it
// sleeps the configured delay and returns the configured error (or
// ErrInjected when only a delay was configured — a delay-only point
// returns nil). Disarmed points return nil at atomic-load cost.
func Hit(name string) error {
	if armed.Load() == 0 {
		return nil
	}
	delay, err, _, fired := fire(name)
	if !fired {
		return nil
	}
	if delay > 0 {
		time.Sleep(delay)
	}
	if err == nil && delay == 0 {
		return fmt.Errorf("%w: %s", ErrInjected, name)
	}
	return err
}

// Corrupt applies the named failpoint's corruption to data when it
// fires, returning a mangled copy; otherwise data is returned unchanged
// (not copied). The default corruption flips one byte in the middle of
// the payload.
func Corrupt(name string, data []byte) []byte {
	if armed.Load() == 0 {
		return data
	}
	_, _, corrupt, fired := fire(name)
	if !fired {
		return data
	}
	if corrupt != nil {
		return corrupt(append([]byte(nil), data...))
	}
	out := append([]byte(nil), data...)
	if len(out) > 0 {
		out[len(out)/2] ^= 0xff
	}
	return out
}
