package zerotune

import (
	"testing"

	"github.com/streamtune/streamtune/internal/dag"
	"github.com/streamtune/streamtune/internal/engine"
	"github.com/streamtune/streamtune/internal/gnn"
	"github.com/streamtune/streamtune/internal/history"
	"github.com/streamtune/streamtune/internal/pqp"
)

func pqpCorpus(t *testing.T) *history.Corpus {
	t.Helper()
	var graphs []*dag.Graph
	for i := 0; i < 3; i++ {
		g, err := pqp.Build(pqp.TwoWayJoin, i)
		if err != nil {
			t.Fatal(err)
		}
		graphs = append(graphs, g)
	}
	opts := history.DefaultOptions(engine.Flink)
	opts.SamplesPerGraph = 15
	opts.Engine.MeasureTicks = 40
	c, err := history.Generate(graphs, opts)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func gcfg() gnn.Config {
	c := gnn.DefaultConfig()
	c.Hidden = 16
	return c
}

func trainModel(t *testing.T) (*Model, *history.Corpus) {
	t.Helper()
	corpus := pqpCorpus(t)
	opts := DefaultTrainOptions()
	opts.Epochs = 10
	m, err := Train(corpus, gcfg(), opts)
	if err != nil {
		t.Fatal(err)
	}
	return m, corpus
}

func TestTrainValidation(t *testing.T) {
	if _, err := Train(&history.Corpus{}, gcfg(), DefaultTrainOptions()); err == nil {
		t.Fatal("expected empty-corpus error")
	}
	corpus := pqpCorpus(t)
	bad := DefaultTrainOptions()
	bad.Epochs = 0
	if _, err := Train(corpus, gcfg(), bad); err == nil {
		t.Fatal("expected invalid-options error")
	}
}

func TestPredictDeficitInRange(t *testing.T) {
	m, corpus := trainModel(t)
	for _, ex := range corpus.Executions[:5] {
		d, err := m.PredictDeficit(ex.Graph, ex.Parallelism)
		if err != nil {
			t.Fatal(err)
		}
		if d < 0 || d > 1 {
			t.Fatalf("deficit %v outside [0,1]", d)
		}
	}
}

func TestModelSeparatesStarvedFromProvisioned(t *testing.T) {
	m, corpus := trainModel(t)
	g := corpus.Executions[0].Graph
	starved := make(map[string]int)
	generous := make(map[string]int)
	for _, op := range g.Operators() {
		starved[op.ID] = 1
		generous[op.ID] = 50
	}
	ds, err := m.PredictDeficit(g, starved)
	if err != nil {
		t.Fatal(err)
	}
	dg, err := m.PredictDeficit(g, generous)
	if err != nil {
		t.Fatal(err)
	}
	if ds <= dg {
		t.Fatalf("starved deficit %v not above generous %v", ds, dg)
	}
}

func TestRecommendOverProvisions(t *testing.T) {
	m, corpus := trainModel(t)
	g := corpus.Executions[0].Graph
	opts := DefaultRecommendOptions(60)
	opts.Samples = 40
	rec, err := m.Recommend(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec) != g.NumOperators() {
		t.Fatalf("recommendation covers %d ops, want %d", len(rec), g.NumOperators())
	}
	total := 0
	for _, p := range rec {
		total += p
	}
	// ZeroTune has no resource objective: with 60 as the cap, random
	// argmin-deficit configurations land well above the minimum.
	if total < g.NumOperators()*2 {
		t.Fatalf("ZeroTune total parallelism %d suspiciously small", total)
	}
}

func TestRecommendValidation(t *testing.T) {
	m, corpus := trainModel(t)
	g := corpus.Executions[0].Graph
	if _, err := m.Recommend(g, RecommendOptions{Samples: 0}); err == nil {
		t.Fatal("expected Samples error")
	}
}

func TestRecommendDeterministic(t *testing.T) {
	m, corpus := trainModel(t)
	g := corpus.Executions[0].Graph
	a, err := m.Recommend(g, DefaultRecommendOptions(60))
	if err != nil {
		t.Fatal(err)
	}
	b, _ := m.Recommend(g, DefaultRecommendOptions(60))
	for k, v := range a {
		if b[k] != v {
			t.Fatal("same seed produced different recommendations")
		}
	}
}
