package zerotune

// Differential test: the compiled-plan cost model must train to
// byte-identical weights and predictions as the seed eager path (no
// execution reordering is involved, so equality is exact end to end).

import (
	"math"
	"math/rand"
	"testing"

	"github.com/streamtune/streamtune/internal/gnn"
)

func TestPlanTrainingMatchesSeedEager(t *testing.T) {
	corpus := pqpCorpus(t)
	gcfg := gnn.DefaultConfig()
	gcfg.Hidden = 16
	opts := DefaultTrainOptions()
	opts.Epochs = 6

	plan, err := Train(corpus, gcfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	eopts := opts
	eopts.Eager = true
	eager, err := Train(corpus, gcfg, eopts)
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(3))
	for _, ex := range corpus.Executions[:5] {
		par := make(map[string]int)
		for _, op := range ex.Graph.Operators() {
			par[op.ID] = 1 + rng.Intn(40)
		}
		pd, err := plan.PredictDeficit(ex.Graph, par)
		if err != nil {
			t.Fatal(err)
		}
		// Cross-engine, cross-model: the plan-trained model and the
		// eager-trained model must agree bit for bit on both predict
		// paths.
		for name, got := range map[string]func() (float64, error){
			"plan model, eager predict":  func() (float64, error) { return plan.PredictDeficitEager(ex.Graph, par) },
			"eager model, plan predict":  func() (float64, error) { return eager.PredictDeficit(ex.Graph, par) },
			"eager model, eager predict": func() (float64, error) { return eager.PredictDeficitEager(ex.Graph, par) },
		} {
			v, err := got()
			if err != nil {
				t.Fatal(err)
			}
			if math.Float64bits(v) != math.Float64bits(pd) {
				t.Fatalf("%s = %v, plan/plan = %v (bit difference)", name, v, pd)
			}
		}
	}
}
