// Package zerotune implements the ZeroTune baseline (Agnihotri et al.,
// ICDE 2024): a zero-shot, GNN-based job-level cost model. Operator
// embeddings (with parallelism fused in) are mean-pooled into one job
// summary vector, from which a regression head predicts job-level
// performance. Because ZeroTune does not prescribe a tuning strategy,
// recommendation samples candidate parallelism assignments and picks the
// one with the best predicted performance (paper §V-A) — an objective
// with no resource term, which is why it over-provisions in Fig. 6.
package zerotune

import (
	"fmt"
	"math/rand"

	"github.com/streamtune/streamtune/internal/dag"
	"github.com/streamtune/streamtune/internal/gnn"
	"github.com/streamtune/streamtune/internal/history"
	"github.com/streamtune/streamtune/internal/nn"
)

// Model is the trained job-level cost model.
type Model struct {
	enc  *gnn.Encoder
	head *nn.MLP
	pmax int
}

// TrainOptions configures cost-model training.
type TrainOptions struct {
	Epochs       int
	LearningRate float64
	Hidden       int
	Seed         int64
}

// DefaultTrainOptions returns the training setup used in the
// reproduction.
func DefaultTrainOptions() TrainOptions {
	return TrainOptions{Epochs: 40, LearningRate: 5e-3, Hidden: 16, Seed: 1}
}

// Train fits the cost model on a corpus: the regression target is the
// job-level performance deficit (0 = meets ideal throughput). ZeroTune
// trains on the PQP corpus only, exactly as in the paper's evaluation.
func Train(corpus *history.Corpus, gcfg gnn.Config, opts TrainOptions) (*Model, error) {
	if corpus.Len() == 0 {
		return nil, fmt.Errorf("zerotune: empty corpus")
	}
	if opts.Epochs <= 0 || opts.LearningRate <= 0 {
		return nil, fmt.Errorf("zerotune: invalid options %+v", opts)
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	m := &Model{
		enc:  gnn.NewEncoder(gcfg),
		head: nn.NewMLP(rng, gcfg.Hidden, opts.Hidden, 1),
		pmax: gcfg.PMax,
	}
	params := append(m.enc.Params(), m.head.Params()...)
	opt := nn.NewAdam(params, opts.LearningRate)

	for ep := 0; ep < opts.Epochs; ep++ {
		for _, ex := range corpus.Executions {
			pred, err := m.predictNode(ex.Graph, ex.Parallelism)
			if err != nil {
				return nil, err
			}
			target := nn.FromRows([][]float64{{ex.Deficit}})
			loss := nn.MSE(pred, target)
			nn.Backward(loss)
			opt.Step()
		}
	}
	return m, nil
}

// predictNode builds the autodiff graph for one (job, deployment) pair.
func (m *Model) predictNode(g *dag.Graph, par map[string]int) (*nn.Node, error) {
	emb, _, err := m.enc.Forward(g, par)
	if err != nil {
		return nil, fmt.Errorf("zerotune: encode %s: %w", g.Name, err)
	}
	pooled := nn.MeanRows(emb)
	return nn.Sigmoid(m.head.Forward(pooled)), nil
}

// PredictDeficit estimates the job-level performance deficit of a
// deployment (0 good, 1 starved).
func (m *Model) PredictDeficit(g *dag.Graph, par map[string]int) (float64, error) {
	pred, err := m.predictNode(g, par)
	if err != nil {
		return 0, err
	}
	return pred.Val.Data[0], nil
}

// RecommendOptions configures sampling-based recommendation.
type RecommendOptions struct {
	// Samples is the number of random parallelism assignments scored.
	Samples int
	// MaxParallelism bounds each operator's sampled degree.
	MaxParallelism int
	// Seed drives sampling.
	Seed int64
}

// DefaultRecommendOptions returns the evaluation configuration.
func DefaultRecommendOptions(pmax int) RecommendOptions {
	return RecommendOptions{Samples: 60, MaxParallelism: pmax, Seed: 1}
}

// Recommend samples parallelism assignments and returns the one with the
// lowest predicted deficit; ties break toward the configuration sampled
// first, not toward fewer resources — ZeroTune optimizes performance
// only.
func (m *Model) Recommend(g *dag.Graph, opts RecommendOptions) (map[string]int, error) {
	if opts.Samples <= 0 {
		return nil, fmt.Errorf("zerotune: Samples must be positive")
	}
	if opts.MaxParallelism < 1 {
		opts.MaxParallelism = m.pmax
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	var best map[string]int
	bestCost := 2.0
	for s := 0; s < opts.Samples; s++ {
		cand := make(map[string]int, g.NumOperators())
		for _, op := range g.Operators() {
			cand[op.ID] = 1 + rng.Intn(opts.MaxParallelism)
		}
		cost, err := m.PredictDeficit(g, cand)
		if err != nil {
			return nil, err
		}
		if cost < bestCost {
			bestCost = cost
			best = cand
		}
	}
	return best, nil
}
