// Package zerotune implements the ZeroTune baseline (Agnihotri et al.,
// ICDE 2024): a zero-shot, GNN-based job-level cost model. Operator
// embeddings (with parallelism fused in) are mean-pooled into one job
// summary vector, from which a regression head predicts job-level
// performance. Because ZeroTune does not prescribe a tuning strategy,
// recommendation samples candidate parallelism assignments and picks the
// one with the best predicted performance (paper §V-A) — an objective
// with no resource term, which is why it over-provisions in Fig. 6.
//
// The cost model trains and predicts on the compiled plan engine of
// internal/nn, reusing the encoder's cached aggregation structures; the
// seed eager path is retained behind TrainOptions.Eager and
// PredictDeficitEager as the differential oracle and benchmark
// baseline.
package zerotune

import (
	"fmt"
	"math/rand"
	"sync"

	"github.com/streamtune/streamtune/internal/dag"
	"github.com/streamtune/streamtune/internal/gnn"
	"github.com/streamtune/streamtune/internal/history"
	"github.com/streamtune/streamtune/internal/nn"
)

// Model is the trained job-level cost model.
type Model struct {
	enc  *gnn.Encoder
	head *nn.MLP
	pmax int

	// infer pools compiled grad-free plans by operator count.
	infer sync.Map // int -> *sync.Pool of *ztPlan
}

// ztPlan bundles a compiled cost-model plan with its bind points.
type ztPlan struct {
	plan *nn.Plan
	refs gnn.PlanRefs
	pred nn.Ref
}

// TrainOptions configures cost-model training.
type TrainOptions struct {
	Epochs       int
	LearningRate float64
	Hidden       int
	Seed         int64
	// Eager selects the seed eager-autodiff training loop instead of
	// the compiled plans. Both produce bit-identical models; the eager
	// path exists as the differential oracle and nn-bench baseline.
	Eager bool
}

// DefaultTrainOptions returns the training setup used in the
// reproduction.
func DefaultTrainOptions() TrainOptions {
	return TrainOptions{Epochs: 40, LearningRate: 5e-3, Hidden: 16, Seed: 1}
}

// buildPlan compiles the full cost-model computation for graphs of n
// operators: encoder forward, mean pooling, regression head, and (for
// training plans) the MSE loss.
func (m *Model) buildPlan(n int, train bool) *ztPlan {
	b := nn.NewBuilder()
	zp := &ztPlan{}
	zp.refs = m.enc.AppendPlan(b, n, 1, true)
	pooled := b.MeanRows(zp.refs.Emb)
	zp.pred = b.MLP(m.head, pooled, nn.ActSigmoid)
	if train {
		zp.plan = b.Build(b.MSE(zp.pred))
	} else {
		zp.plan = b.BuildForward()
	}
	return zp
}

// bind points a plan at one (job, deployment) pair.
func (m *Model) bind(zp *ztPlan, g *dag.Graph, par map[string]int) error {
	st := gnn.StructureOf(g)
	zp.plan.BindConst(zp.refs.Up, st.Up)
	zp.plan.BindConst(zp.refs.Down, st.Down)
	xd := zp.plan.InputData(zp.refs.X)
	for i, op := range g.Operators() {
		pos := i * dag.FeatureDim
		if v := dag.FeatureVectorInto(op, xd[pos:pos]); len(v) != dag.FeatureDim {
			return fmt.Errorf("zerotune: encode %s: operator %q encoded %d features, want %d",
				g.Name, op.ID, len(v), dag.FeatureDim)
		}
	}
	pd := zp.plan.InputData(zp.refs.Par)
	for i, op := range g.Operators() {
		p, ok := par[op.ID]
		if !ok {
			return fmt.Errorf("zerotune: encode %s: missing parallelism for %q", g.Name, op.ID)
		}
		pd[i] = dag.NormalizeParallelism(p, m.pmax)
	}
	return nil
}

// Train fits the cost model on a corpus: the regression target is the
// job-level performance deficit (0 = meets ideal throughput). ZeroTune
// trains on the PQP corpus only, exactly as in the paper's evaluation.
func Train(corpus *history.Corpus, gcfg gnn.Config, opts TrainOptions) (*Model, error) {
	if corpus.Len() == 0 {
		return nil, fmt.Errorf("zerotune: empty corpus")
	}
	if opts.Epochs <= 0 || opts.LearningRate <= 0 {
		return nil, fmt.Errorf("zerotune: invalid options %+v", opts)
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	m := &Model{
		enc:  gnn.NewEncoder(gcfg),
		head: nn.NewMLP(rng, gcfg.Hidden, opts.Hidden, 1),
		pmax: gcfg.PMax,
	}
	params := append(m.enc.Params(), m.head.Params()...)
	opt := nn.NewAdam(params, opts.LearningRate)

	if opts.Eager {
		for ep := 0; ep < opts.Epochs; ep++ {
			for _, ex := range corpus.Executions {
				pred, err := m.predictNodeEager(ex.Graph, ex.Parallelism)
				if err != nil {
					return nil, err
				}
				target := nn.FromRows([][]float64{{ex.Deficit}})
				loss := nn.MSE(pred, target)
				nn.Backward(loss)
				opt.Step()
			}
		}
		return m, nil
	}

	// Compiled path: one training plan per operator count, reused
	// across executions and epochs.
	plans := make(map[int]*ztPlan)
	target := nn.NewMatrix(1, 1)
	for ep := 0; ep < opts.Epochs; ep++ {
		for _, ex := range corpus.Executions {
			n := ex.Graph.NumOperators()
			if n == 0 {
				return nil, fmt.Errorf("zerotune: encode %s: empty graph", ex.Graph.Name)
			}
			zp, ok := plans[n]
			if !ok {
				zp = m.buildPlan(n, true)
				plans[n] = zp
			}
			if err := m.bind(zp, ex.Graph, ex.Parallelism); err != nil {
				return nil, err
			}
			target.Data[0] = ex.Deficit
			zp.plan.SetTarget(target)
			zp.plan.Forward()
			zp.plan.Backward()
			opt.Step()
		}
	}
	return m, nil
}

// predictNodeEager builds the seed eager autodiff graph for one
// (job, deployment) pair. Retained verbatim as the differential oracle
// and benchmark baseline for the compiled path.
func (m *Model) predictNodeEager(g *dag.Graph, par map[string]int) (*nn.Node, error) {
	emb, _, err := m.enc.Forward(g, par)
	if err != nil {
		return nil, fmt.Errorf("zerotune: encode %s: %w", g.Name, err)
	}
	pooled := nn.MeanRows(emb)
	return nn.Sigmoid(m.head.Forward(pooled)), nil
}

// PredictDeficitEager estimates the deficit on the seed eager path.
func (m *Model) PredictDeficitEager(g *dag.Graph, par map[string]int) (float64, error) {
	pred, err := m.predictNodeEager(g, par)
	if err != nil {
		return 0, err
	}
	return pred.Val.Data[0], nil
}

// PredictDeficit estimates the job-level performance deficit of a
// deployment (0 good, 1 starved) on a pooled compiled plan,
// bit-identical to the eager path.
func (m *Model) PredictDeficit(g *dag.Graph, par map[string]int) (float64, error) {
	n := g.NumOperators()
	if n == 0 {
		return 0, fmt.Errorf("zerotune: encode %s: empty graph", g.Name)
	}
	pi, ok := m.infer.Load(n)
	if !ok {
		pi, _ = m.infer.LoadOrStore(n, &sync.Pool{})
	}
	pool := pi.(*sync.Pool)
	zp, _ := pool.Get().(*ztPlan)
	if zp == nil {
		zp = m.buildPlan(n, false)
	}
	defer pool.Put(zp)
	if err := m.bind(zp, g, par); err != nil {
		return 0, err
	}
	zp.plan.Forward()
	return zp.plan.Value(zp.pred).Data[0], nil
}

// RecommendOptions configures sampling-based recommendation.
type RecommendOptions struct {
	// Samples is the number of random parallelism assignments scored.
	Samples int
	// MaxParallelism bounds each operator's sampled degree.
	MaxParallelism int
	// Seed drives sampling.
	Seed int64
}

// DefaultRecommendOptions returns the evaluation configuration.
func DefaultRecommendOptions(pmax int) RecommendOptions {
	return RecommendOptions{Samples: 60, MaxParallelism: pmax, Seed: 1}
}

// Recommend samples parallelism assignments and returns the one with the
// lowest predicted deficit; ties break toward the configuration sampled
// first, not toward fewer resources — ZeroTune optimizes performance
// only.
func (m *Model) Recommend(g *dag.Graph, opts RecommendOptions) (map[string]int, error) {
	if opts.Samples <= 0 {
		return nil, fmt.Errorf("zerotune: Samples must be positive")
	}
	if opts.MaxParallelism < 1 {
		opts.MaxParallelism = m.pmax
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	var best map[string]int
	bestCost := 2.0
	for s := 0; s < opts.Samples; s++ {
		cand := make(map[string]int, g.NumOperators())
		for _, op := range g.Operators() {
			cand[op.ID] = 1 + rng.Intn(opts.MaxParallelism)
		}
		cost, err := m.PredictDeficit(g, cand)
		if err != nil {
			return nil, err
		}
		if cost < bestCost {
			bestCost = cost
			best = cand
		}
	}
	return best, nil
}
