package ds2

import (
	"testing"

	"github.com/streamtune/streamtune/internal/dag"
	"github.com/streamtune/streamtune/internal/engine"
)

func pipeline(rate float64) *dag.Graph {
	g := dag.New("pipe")
	g.MustAddOperator(&dag.Operator{ID: "src", Type: dag.Source, SourceRate: rate, TupleWidthOut: 64})
	g.MustAddOperator(&dag.Operator{ID: "map", Type: dag.Map, Selectivity: 1, TupleWidthIn: 64, TupleWidthOut: 64})
	g.MustAddOperator(&dag.Operator{ID: "agg", Type: dag.Aggregate, Selectivity: 0.5, TupleWidthIn: 64, TupleWidthOut: 32})
	g.MustAddOperator(&dag.Operator{ID: "sink", Type: dag.Sink, TupleWidthIn: 32})
	g.MustAddEdge("src", "map")
	g.MustAddEdge("map", "agg")
	g.MustAddEdge("agg", "sink")
	return g
}

func allOne(g *dag.Graph) map[string]int {
	p := make(map[string]int)
	for _, op := range g.Operators() {
		p[op.ID] = 1
	}
	return p
}

func TestTuneValidation(t *testing.T) {
	g := pipeline(1e6)
	e, err := engine.New(g, engine.DefaultConfig(engine.Flink))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Tune(e, Options{MaxIterations: 0}); err == nil {
		t.Fatal("expected MaxIterations error")
	}
	// Run before Deploy must surface as an error.
	if _, err := Tune(e, DefaultOptions()); err == nil {
		t.Fatal("expected error when system not deployed")
	}
}

func TestTuneResolvesBackpressure(t *testing.T) {
	g := pipeline(2e6)
	cfg := engine.DefaultConfig(engine.Flink)
	cfg.UsefulTimeNoise = 0.02
	e, err := engine.New(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Deploy(allOne(g)); err != nil {
		t.Fatal(err)
	}
	res, err := Tune(e, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Final.Backpressured {
		t.Fatalf("DS2 left job backpressured:\n%s", res.Final)
	}
	if res.Reconfigurations == 0 {
		t.Fatal("DS2 performed no reconfigurations from an undersized start")
	}
	// Within ~2x of ground-truth optimum overall.
	opt, _ := engine.GroundTruthOptimal(g, cfg)
	optTotal := 0
	for _, p := range opt {
		optTotal += p
	}
	if got := res.TotalParallelism(); got > optTotal*2 || got < optTotal/2 {
		t.Fatalf("DS2 total parallelism %d far from optimum %d", got, optTotal)
	}
}

func TestTuneScalesInFromOverprovisioned(t *testing.T) {
	g := pipeline(1e6)
	cfg := engine.DefaultConfig(engine.Flink)
	cfg.UsefulTimeNoise = 0.02
	e, _ := engine.New(g, cfg)
	over := map[string]int{"src": 20, "map": 40, "agg": 40, "sink": 20}
	if err := e.Deploy(over); err != nil {
		t.Fatal(err)
	}
	res, err := Tune(e, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	before := 120
	if res.TotalParallelism() >= before {
		t.Fatalf("DS2 did not scale in: %d >= %d", res.TotalParallelism(), before)
	}
}

func TestNoisyMeasurementCausesMoreWork(t *testing.T) {
	run := func(noise float64, seed int64) (int, int) {
		g := pipeline(2e6)
		cfg := engine.DefaultConfig(engine.Flink)
		cfg.UsefulTimeNoise = noise
		cfg.Seed = seed
		e, _ := engine.New(g, cfg)
		if err := e.Deploy(allOne(g)); err != nil {
			t.Fatal(err)
		}
		res, err := Tune(e, DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		return res.Reconfigurations, res.BackpressureEvents
	}
	cleanRecfg, cleanBP := 0, 0
	noisyRecfg, noisyBP := 0, 0
	for seed := int64(1); seed <= 10; seed++ {
		r, b := run(0.005, seed)
		cleanRecfg += r
		cleanBP += b
		r, b = run(0.25, seed)
		noisyRecfg += r
		noisyBP += b
	}
	if noisyRecfg < cleanRecfg {
		t.Errorf("noise should not reduce reconfigurations: %d vs %d", noisyRecfg, cleanRecfg)
	}
	_ = cleanBP
	_ = noisyBP
}

func TestHeadroomDefaults(t *testing.T) {
	g := pipeline(1e6)
	cfg := engine.DefaultConfig(engine.Flink)
	e, _ := engine.New(g, cfg)
	if err := e.Deploy(allOne(g)); err != nil {
		t.Fatal(err)
	}
	res, err := Tune(e, Options{MaxIterations: 4, Headroom: 0})
	if err != nil {
		t.Fatal(err)
	}
	if res.Parallelism == nil {
		t.Fatal("no parallelism returned")
	}
}
