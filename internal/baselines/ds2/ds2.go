// Package ds2 implements the DS2 autoscaling controller (Kalavri et al.,
// OSDI 2018): per-operator "true" processing rates are measured from
// useful time, target rates are propagated through the dataflow under the
// linearity assumption, and each operator's parallelism is set to the
// smallest degree whose aggregate true rate covers its target rate.
//
// DS2 consumes the engine's measured (noisy) per-instance rates; the
// paper attributes its occasional under-provisioning and extra
// reconfigurations to exactly this measurement error (§V-C, §V-E).
package ds2

import (
	"fmt"
	"math"
	"time"

	"github.com/streamtune/streamtune/internal/dag"
	"github.com/streamtune/streamtune/internal/engine"
)

// System is the engine surface DS2 drives. *engine.Engine satisfies it.
type System interface {
	Graph() *dag.Graph
	Config() engine.Config
	Deploy(map[string]int) error
	Run() (*engine.JobMetrics, error)
}

// Options configures the controller.
type Options struct {
	// MaxIterations bounds the measure/scale loop ("three steps is all
	// you need" — but noise can demand more).
	MaxIterations int
	// Headroom multiplies target rates; DS2 uses none (1.0).
	Headroom float64
}

// DefaultOptions returns the paper-faithful configuration.
func DefaultOptions() Options { return Options{MaxIterations: 8, Headroom: 1.0} }

// Result summarizes one tuning process.
type Result struct {
	// Parallelism is the final per-operator assignment.
	Parallelism map[string]int
	// Reconfigurations counts deployments performed by Tune (excluding
	// the caller's initial deployment).
	Reconfigurations int
	// BackpressureEvents counts measurement windows with job-level
	// backpressure observed during tuning.
	BackpressureEvents int
	// Final holds the last measurement.
	Final *engine.JobMetrics
	// RecommendTime is the cumulative wall-clock time spent computing
	// recommendations (excluding engine time).
	RecommendTime time.Duration
}

// TotalParallelism sums the final assignment.
func (r *Result) TotalParallelism() int {
	t := 0
	for _, p := range r.Parallelism {
		t += p
	}
	return t
}

// Tune runs the DS2 control loop until the recommended parallelism is
// stable or MaxIterations is hit. The system must already be deployed
// (DS2 needs a running job to measure).
func Tune(sys System, opts Options) (*Result, error) {
	if opts.MaxIterations <= 0 {
		return nil, fmt.Errorf("ds2: MaxIterations must be positive")
	}
	if opts.Headroom <= 0 {
		opts.Headroom = 1
	}
	g := sys.Graph()
	cfg := sys.Config()
	res := &Result{Parallelism: make(map[string]int)}

	m, err := sys.Run()
	if err != nil {
		return nil, fmt.Errorf("ds2: initial measurement: %w", err)
	}
	if m.Backpressured {
		res.BackpressureEvents++
	}

	cur := currentParallelism(m)
	for iter := 0; iter < opts.MaxIterations; iter++ {
		recStart := time.Now()
		rec, err := recommend(g, cfg, m, cur, opts.Headroom)
		res.RecommendTime += time.Since(recStart)
		if err != nil {
			return nil, err
		}
		if equal(rec, cur) {
			break
		}
		if err := sys.Deploy(rec); err != nil {
			return nil, fmt.Errorf("ds2: deploy: %w", err)
		}
		res.Reconfigurations++
		cur = rec
		m, err = sys.Run()
		if err != nil {
			return nil, fmt.Errorf("ds2: measurement: %w", err)
		}
		if m.Backpressured {
			res.BackpressureEvents++
		}
	}
	res.Parallelism = cur
	res.Final = m
	return res, nil
}

// recommend computes DS2's optimal parallelism: propagate target rates
// from the sources through observed selectivities, then p = ceil(target /
// truePerInstanceRate) for each operator.
func recommend(g *dag.Graph, cfg engine.Config, m *engine.JobMetrics, cur map[string]int, headroom float64) (map[string]int, error) {
	topo, err := g.TopoOrder()
	if err != nil {
		return nil, err
	}
	n := g.NumOperators()
	target := make([]float64, n)
	out := make(map[string]int, n)
	for _, i := range topo {
		op := g.OperatorAt(i)
		om := &m.Ops[i]
		t := target[i]
		if op.Type == dag.Source {
			t = op.SourceRate
		}
		t *= headroom

		p := cur[op.ID]
		if om.TrueRatePerInstance > 0 {
			p = int(math.Ceil(t / om.TrueRatePerInstance))
		}
		if p < 1 {
			p = 1
		}
		if p > cfg.MaxParallelism {
			p = cfg.MaxParallelism
		}
		out[op.ID] = p

		// Propagate the operator's output at the target rate downstream
		// (linearity assumption): output = target * selectivity.
		sel := om.ObservedSelectivity
		if sel == 0 {
			sel = op.Selectivity // nothing observed; fall back
		}
		for _, d := range g.Downstream(i) {
			target[d] += t * sel
		}
	}
	return out, nil
}

func currentParallelism(m *engine.JobMetrics) map[string]int {
	out := make(map[string]int, len(m.Ops))
	for _, om := range m.Ops {
		out[om.ID] = om.Parallelism
	}
	return out
}

func equal(a, b map[string]int) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}
