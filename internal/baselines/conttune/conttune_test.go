package conttune

import (
	"testing"

	"github.com/streamtune/streamtune/internal/dag"
	"github.com/streamtune/streamtune/internal/engine"
)

func pipeline(rate float64) *dag.Graph {
	g := dag.New("pipe")
	g.MustAddOperator(&dag.Operator{ID: "src", Type: dag.Source, SourceRate: rate, TupleWidthOut: 64})
	g.MustAddOperator(&dag.Operator{ID: "map", Type: dag.Map, Selectivity: 1, TupleWidthIn: 64, TupleWidthOut: 64})
	g.MustAddOperator(&dag.Operator{ID: "agg", Type: dag.Aggregate, Selectivity: 0.5, TupleWidthIn: 64, TupleWidthOut: 32})
	g.MustAddOperator(&dag.Operator{ID: "sink", Type: dag.Sink, TupleWidthIn: 32})
	g.MustAddEdge("src", "map")
	g.MustAddEdge("map", "agg")
	g.MustAddEdge("agg", "sink")
	return g
}

func allOne(g *dag.Graph) map[string]int {
	p := make(map[string]int)
	for _, op := range g.Operators() {
		p[op.ID] = 1
	}
	return p
}

func TestDefaultsApplied(t *testing.T) {
	tu := NewTuner(Options{})
	if tu.opts.Alpha != 3 || tu.opts.MaxIterations != 10 || tu.opts.BigFactor != 2 {
		t.Fatalf("defaults not applied: %+v", tu.opts)
	}
}

func TestTuneResolvesBackpressure(t *testing.T) {
	g := pipeline(2e6)
	cfg := engine.DefaultConfig(engine.Flink)
	cfg.UsefulTimeNoise = 0.03
	e, err := engine.New(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Deploy(allOne(g)); err != nil {
		t.Fatal(err)
	}
	tu := NewTuner(DefaultOptions())
	res, err := tu.Tune(e)
	if err != nil {
		t.Fatal(err)
	}
	if res.Final.Backpressured {
		t.Fatalf("ContTune left job backpressured:\n%s", res.Final)
	}
	if res.Reconfigurations == 0 {
		t.Fatal("expected at least one reconfiguration from undersized start")
	}
}

func TestHistoryAccumulatesAcrossTunes(t *testing.T) {
	g := pipeline(1.5e6)
	cfg := engine.DefaultConfig(engine.Flink)
	e, _ := engine.New(g, cfg)
	if err := e.Deploy(allOne(g)); err != nil {
		t.Fatal(err)
	}
	tu := NewTuner(DefaultOptions())
	if _, err := tu.Tune(e); err != nil {
		t.Fatal(err)
	}
	obs1 := tu.gps["agg"].Observations()
	// Rate change: tune again with the same tuner; history must grow.
	if err := e.SetSourceRate("src", 2.5e6); err != nil {
		t.Fatal(err)
	}
	if _, err := tu.Tune(e); err != nil {
		t.Fatal(err)
	}
	obs2 := tu.gps["agg"].Observations()
	if obs2 <= obs1 {
		t.Fatalf("GP history did not grow: %d -> %d", obs1, obs2)
	}
}

func TestBigStepGrowsBottlenecks(t *testing.T) {
	g := pipeline(2e6)
	cfg := engine.DefaultConfig(engine.Flink)
	e, _ := engine.New(g, cfg)
	if err := e.Deploy(allOne(g)); err != nil {
		t.Fatal(err)
	}
	m, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !m.Backpressured {
		t.Skip("fixture not backpressured; engine constants changed")
	}
	tu := NewTuner(DefaultOptions())
	cur := map[string]int{"src": 1, "map": 1, "agg": 1, "sink": 1}
	rec := tu.bigStep(g, cfg, m, cur)
	grew := false
	for id, p := range rec {
		if p > cur[id] {
			grew = true
		}
		if p < cur[id] {
			t.Fatalf("big step shrank %s: %d -> %d", id, cur[id], p)
		}
	}
	if !grew {
		t.Fatal("big step grew nothing under backpressure")
	}
}

func TestSmallStepNeverGrows(t *testing.T) {
	g := pipeline(1e6)
	cfg := engine.DefaultConfig(engine.Flink)
	e, _ := engine.New(g, cfg)
	over := map[string]int{"src": 10, "map": 20, "agg": 20, "sink": 10}
	if err := e.Deploy(over); err != nil {
		t.Fatal(err)
	}
	tu := NewTuner(DefaultOptions())
	m, _ := e.Run()
	tu.observe(m, cfg.MaxParallelism)
	m, _ = e.Run()
	tu.observe(m, cfg.MaxParallelism)
	rec, err := tu.smallStep(g, cfg, over)
	if err != nil {
		t.Fatal(err)
	}
	for id, p := range rec {
		if p > over[id] {
			t.Fatalf("small step grew %s: %d -> %d", id, over[id], p)
		}
	}
}
