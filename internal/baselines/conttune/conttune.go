// Package conttune implements ContTune (Lian et al., VLDB 2023): a
// conservative Bayesian-optimization tuner that models each operator's
// processing ability as a Gaussian process over its parallelism degree
// (fit to the job's own tuning history) and applies the Big-Small
// algorithm — jump "big" to relieve backpressure fast, then step "small"
// toward the minimum parallelism whose conservative lower confidence
// bound still covers the operator's target rate.
package conttune

import (
	"fmt"
	"math"
	"time"

	"github.com/streamtune/streamtune/internal/baselines/gp"
	"github.com/streamtune/streamtune/internal/dag"
	"github.com/streamtune/streamtune/internal/engine"
)

// System is the engine surface ContTune drives. *engine.Engine
// satisfies it.
type System interface {
	Graph() *dag.Graph
	Config() engine.Config
	Deploy(map[string]int) error
	Run() (*engine.JobMetrics, error)
}

// Options configures the tuner.
type Options struct {
	// Alpha is the conservativeness coefficient in the scoring function
	// (paper: 3, following ContTune's reported optimum).
	Alpha float64
	// MaxIterations bounds the tuning loop.
	MaxIterations int
	// BigFactor is the multiplicative jump applied to bottlenecked
	// operators in the Big step.
	BigFactor float64
}

// DefaultOptions returns the evaluation configuration (alpha = 3).
func DefaultOptions() Options {
	return Options{Alpha: 3, MaxIterations: 10, BigFactor: 2}
}

// Result summarizes one tuning process.
type Result struct {
	Parallelism        map[string]int
	Reconfigurations   int
	BackpressureEvents int
	Final              *engine.JobMetrics
	// RecommendTime is the cumulative wall-clock time spent fitting the
	// GPs and searching parallelism degrees (excluding engine time).
	RecommendTime time.Duration
}

// TotalParallelism sums the final assignment.
func (r *Result) TotalParallelism() int {
	t := 0
	for _, p := range r.Parallelism {
		t += p
	}
	return t
}

// Tuner carries the per-job tuning history (the GPs) across source-rate
// changes, which is exactly ContTune's continuous-tuning premise.
type Tuner struct {
	opts Options
	gps  map[string]*gp.GP
}

// NewTuner creates a tuner with empty history.
func NewTuner(opts Options) *Tuner {
	if opts.Alpha <= 0 {
		opts.Alpha = 3
	}
	if opts.MaxIterations <= 0 {
		opts.MaxIterations = 10
	}
	if opts.BigFactor <= 1 {
		opts.BigFactor = 2
	}
	return &Tuner{opts: opts, gps: make(map[string]*gp.GP)}
}

// gpFor returns (creating on demand) the processing-ability surrogate of
// one operator. Inputs are parallelism degrees; outputs are observed
// aggregate processing abilities in records/second.
func (t *Tuner) gpFor(id string, pmax int) *gp.GP {
	g, ok := t.gps[id]
	if !ok {
		// Length scale ~ a tenth of the parallelism domain; signal
		// variance is set high and targets are normalized by 1e6 to keep
		// the kernel well-conditioned.
		g = gp.New(float64(pmax)/10, 4.0, 0.01)
		t.gps[id] = g
	}
	return g
}

const rateScale = 1e6 // records/s per GP target unit

// observe records one measurement into the per-operator GPs.
func (t *Tuner) observe(m *engine.JobMetrics, pmax int) {
	for i := range m.Ops {
		om := &m.Ops[i]
		if om.TrueRatePerInstance <= 0 {
			continue
		}
		total := om.TrueRatePerInstance * float64(om.Parallelism)
		// Ignore fit errors: a duplicate observation can make the
		// kernel matrix near-singular; the jitter normally absorbs it.
		_ = t.gpFor(om.ID, pmax).Add(float64(om.Parallelism), total/rateScale)
	}
}

// Tune runs Big-Small until the deployment is stable and backpressure
// free. The system must already be deployed.
func (t *Tuner) Tune(sys System) (*Result, error) {
	g := sys.Graph()
	cfg := sys.Config()
	res := &Result{}

	m, err := sys.Run()
	if err != nil {
		return nil, fmt.Errorf("conttune: initial measurement: %w", err)
	}
	if m.Backpressured {
		res.BackpressureEvents++
	}
	t.observe(m, cfg.MaxParallelism)
	cur := currentParallelism(m)

	for iter := 0; iter < t.opts.MaxIterations; iter++ {
		var rec map[string]int
		recStart := time.Now()
		if m.Backpressured {
			rec = t.bigStep(g, cfg, m, cur)
		} else {
			rec, err = t.smallStep(g, cfg, cur)
			if err != nil {
				return nil, err
			}
		}
		res.RecommendTime += time.Since(recStart)
		if equal(rec, cur) && !m.Backpressured {
			break
		}
		if err := sys.Deploy(rec); err != nil {
			return nil, fmt.Errorf("conttune: deploy: %w", err)
		}
		res.Reconfigurations++
		cur = rec
		m, err = sys.Run()
		if err != nil {
			return nil, fmt.Errorf("conttune: measurement: %w", err)
		}
		if m.Backpressured {
			res.BackpressureEvents++
		}
		t.observe(m, cfg.MaxParallelism)
	}
	res.Parallelism = cur
	res.Final = m
	return res, nil
}

// bigStep relieves backpressure by jumping bottleneck-side operators up.
// CPU-saturated operators and operators downstream of backpressured ones
// are scaled by BigFactor.
func (t *Tuner) bigStep(g *dag.Graph, cfg engine.Config, m *engine.JobMetrics, cur map[string]int) map[string]int {
	out := make(map[string]int, len(cur))
	for k, v := range cur {
		out[k] = v
	}
	for i := range m.Ops {
		om := &m.Ops[i]
		saturated := om.CPULoad > 0.85
		squeezed := false
		for _, u := range g.Upstream(om.Index) {
			if m.Ops[u].UnderBackpressure {
				squeezed = true
			}
		}
		if om.Bottleneck {
			squeezed = true
		}
		if saturated || squeezed {
			p := int(math.Ceil(float64(cur[om.ID]) * t.opts.BigFactor))
			if p > cfg.MaxParallelism {
				p = cfg.MaxParallelism
			}
			out[om.ID] = p
		}
	}
	return out
}

// smallStep shrinks each operator to the smallest parallelism whose
// conservative GP estimate still covers the operator's target rate.
// Operators without enough history stay put.
func (t *Tuner) smallStep(g *dag.Graph, cfg engine.Config, cur map[string]int) (map[string]int, error) {
	topo, err := g.TopoOrder()
	if err != nil {
		return nil, err
	}
	target := make([]float64, g.NumOperators())
	out := make(map[string]int, len(cur))
	for _, i := range topo {
		op := g.OperatorAt(i)
		tr := target[i]
		if op.Type == dag.Source {
			tr = op.SourceRate
		}
		surrogate := t.gps[op.ID]
		p := cur[op.ID]
		if surrogate != nil && surrogate.Observations() >= 2 {
			for cand := 1; cand <= cfg.MaxParallelism; cand++ {
				if surrogate.LCB(float64(cand), t.opts.Alpha)*rateScale >= tr {
					p = cand
					break
				}
			}
			// Never grow in the Small step beyond the current setting:
			// Small only shrinks (growth is Big's job).
			if p > cur[op.ID] {
				p = cur[op.ID]
			}
		}
		if p < 1 {
			p = 1
		}
		out[op.ID] = p
		for _, d := range g.Downstream(i) {
			target[d] += tr * op.Selectivity
		}
	}
	return out, nil
}

func currentParallelism(m *engine.JobMetrics) map[string]int {
	out := make(map[string]int, len(m.Ops))
	for _, om := range m.Ops {
		out[om.ID] = om.Parallelism
	}
	return out
}

func equal(a, b map[string]int) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}
