package gp

import (
	"math"
	"testing"
)

func TestPriorPrediction(t *testing.T) {
	g := New(1, 2, 0.01)
	mu, sigma := g.Predict(3)
	if mu != 0 {
		t.Errorf("prior mean = %v, want 0", mu)
	}
	if math.Abs(sigma-math.Sqrt(2)) > 1e-12 {
		t.Errorf("prior sigma = %v, want sqrt(2)", sigma)
	}
}

func TestInterpolatesObservations(t *testing.T) {
	g := New(2, 1, 1e-4)
	pts := map[float64]float64{1: 1, 3: 2, 5: 3, 7: 4}
	for x, y := range pts {
		if err := g.Add(x, y); err != nil {
			t.Fatal(err)
		}
	}
	for x, y := range pts {
		mu, sigma := g.Predict(x)
		if math.Abs(mu-y) > 0.05 {
			t.Errorf("mu(%v) = %v, want ~%v", x, mu, y)
		}
		if sigma > 0.1 {
			t.Errorf("sigma(%v) = %v, want near 0 at observation", x, sigma)
		}
	}
	// Interpolation between observations should be sensible.
	mu, _ := g.Predict(4)
	if mu < 2 || mu > 3 {
		t.Errorf("mu(4) = %v, want in [2,3]", mu)
	}
}

func TestUncertaintyGrowsAwayFromData(t *testing.T) {
	g := New(1, 1, 1e-4)
	if err := g.Add(0, 1); err != nil {
		t.Fatal(err)
	}
	_, near := g.Predict(0.1)
	_, far := g.Predict(10)
	if far <= near {
		t.Fatalf("sigma(far)=%v <= sigma(near)=%v", far, near)
	}
}

func TestLCBBelowMean(t *testing.T) {
	g := New(1, 1, 1e-4)
	if err := g.Add(1, 5); err != nil {
		t.Fatal(err)
	}
	if err := g.Add(2, 6); err != nil {
		t.Fatal(err)
	}
	mu, _ := g.Predict(3)
	if lcb := g.LCB(3, 3); lcb >= mu {
		t.Fatalf("LCB %v not below mean %v", lcb, mu)
	}
}

func TestObservationsCount(t *testing.T) {
	g := New(1, 1, 0.01)
	if g.Observations() != 0 {
		t.Fatal("fresh GP has observations")
	}
	if err := g.Add(1, 1); err != nil {
		t.Fatal(err)
	}
	if err := g.Add(1, 1.01); err != nil {
		t.Fatal(err) // duplicate x must not break the factorization
	}
	if g.Observations() != 2 {
		t.Fatal("observation count wrong")
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	if _, err := cholesky([][]float64{{1, 2}, {2, 1}}); err == nil {
		t.Fatal("expected non-PD error")
	}
}

func TestCholSolveRoundTrip(t *testing.T) {
	a := [][]float64{{4, 2, 0.6}, {2, 5, 1.5}, {0.6, 1.5, 3}}
	l, err := cholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	b := []float64{1, 2, 3}
	x := cholSolve(l, b)
	// Verify A x = b.
	for i := range a {
		sum := 0.0
		for j := range a[i] {
			sum += a[i][j] * x[j]
		}
		if math.Abs(sum-b[i]) > 1e-9 {
			t.Fatalf("Ax != b at row %d: %v vs %v", i, sum, b[i])
		}
	}
}
