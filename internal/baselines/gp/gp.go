// Package gp implements one-dimensional Gaussian process regression with
// an RBF kernel and Gaussian observation noise. ContTune uses it as the
// surrogate model from parallelism degree to operator processing
// ability.
package gp

import (
	"fmt"
	"math"
)

// GP is a Gaussian process over scalar inputs. The zero value is not
// usable; create with New.
type GP struct {
	// LengthScale of the RBF kernel, in input units.
	LengthScale float64
	// SignalVar is the kernel variance.
	SignalVar float64
	// NoiseVar is the observation noise variance.
	NoiseVar float64

	xs []float64
	ys []float64

	mean  float64 // empirical mean subtracted from targets
	chol  [][]float64
	alpha []float64
}

// New creates a GP with the given hyperparameters.
func New(lengthScale, signalVar, noiseVar float64) *GP {
	return &GP{LengthScale: lengthScale, SignalVar: signalVar, NoiseVar: noiseVar}
}

// Observations reports the number of stored observations.
func (g *GP) Observations() int { return len(g.xs) }

// kernel is the RBF covariance.
func (g *GP) kernel(a, b float64) float64 {
	d := (a - b) / g.LengthScale
	return g.SignalVar * math.Exp(-0.5*d*d)
}

// Add inserts an observation and refits.
func (g *GP) Add(x, y float64) error {
	g.xs = append(g.xs, x)
	g.ys = append(g.ys, y)
	return g.fit()
}

// fit recomputes the Cholesky factor and alpha = K^-1 (y - mean).
func (g *GP) fit() error {
	n := len(g.xs)
	g.mean = 0
	for _, y := range g.ys {
		g.mean += y / float64(n)
	}
	K := make([][]float64, n)
	for i := range K {
		K[i] = make([]float64, n)
		for j := range K[i] {
			K[i][j] = g.kernel(g.xs[i], g.xs[j])
		}
		K[i][i] += g.NoiseVar + 1e-9
	}
	chol, err := cholesky(K)
	if err != nil {
		return fmt.Errorf("gp: %w", err)
	}
	g.chol = chol
	centered := make([]float64, n)
	for i, y := range g.ys {
		centered[i] = y - g.mean
	}
	g.alpha = cholSolve(chol, centered)
	return nil
}

// Predict returns the posterior mean and standard deviation at x. With
// no observations it returns (0, sqrt(SignalVar)).
func (g *GP) Predict(x float64) (mu, sigma float64) {
	n := len(g.xs)
	if n == 0 {
		return 0, math.Sqrt(g.SignalVar)
	}
	k := make([]float64, n)
	for i := range k {
		k[i] = g.kernel(x, g.xs[i])
	}
	mu = g.mean
	for i := range k {
		mu += k[i] * g.alpha[i]
	}
	// sigma^2 = k(x,x) - k^T K^-1 k  via triangular solve.
	v := forwardSolve(g.chol, k)
	var kk float64
	for _, vi := range v {
		kk += vi * vi
	}
	s2 := g.kernel(x, x) - kk
	if s2 < 0 {
		s2 = 0
	}
	return mu, math.Sqrt(s2)
}

// LCB returns the lower confidence bound mu - beta*sigma at x.
func (g *GP) LCB(x, beta float64) float64 {
	mu, sigma := g.Predict(x)
	return mu - beta*sigma
}

// cholesky computes the lower-triangular factor of a symmetric
// positive-definite matrix.
func cholesky(a [][]float64) ([][]float64, error) {
	n := len(a)
	l := make([][]float64, n)
	for i := range l {
		l[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			sum := a[i][j]
			for k := 0; k < j; k++ {
				sum -= l[i][k] * l[j][k]
			}
			if i == j {
				if sum <= 0 {
					return nil, fmt.Errorf("matrix not positive definite at %d (%v)", i, sum)
				}
				l[i][i] = math.Sqrt(sum)
			} else {
				l[i][j] = sum / l[j][j]
			}
		}
	}
	return l, nil
}

// forwardSolve solves L v = b for lower-triangular L.
func forwardSolve(l [][]float64, b []float64) []float64 {
	n := len(b)
	v := make([]float64, n)
	for i := 0; i < n; i++ {
		sum := b[i]
		for k := 0; k < i; k++ {
			sum -= l[i][k] * v[k]
		}
		v[i] = sum / l[i][i]
	}
	return v
}

// cholSolve solves (L L^T) x = b.
func cholSolve(l [][]float64, b []float64) []float64 {
	n := len(b)
	y := forwardSolve(l, b)
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		sum := y[i]
		for k := i + 1; k < n; k++ {
			sum -= l[k][i] * x[k]
		}
		x[i] = sum / l[i][i]
	}
	return x
}
