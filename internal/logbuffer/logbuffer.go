// Package logbuffer is a bounded in-memory ring of structured log
// entries, queryable over the ops API (GET /v1/logs). It plugs into
// stdlib log/slog as a Handler, so one logger fans out to stderr (JSON
// lines for collectors) and into the ring (recent history for a human
// hitting the HTTP endpoint) without a second logging path.
//
// The ring holds the newest Capacity entries; older ones are dropped
// and counted. Writers never block on readers: Append is one short
// critical section, and Query copies entries out under the same lock.
package logbuffer

import (
	"context"
	"fmt"
	"log/slog"
	"strings"
	"sync"
	"time"
)

// Entry is one structured log record.
type Entry struct {
	// Seq increases by one per appended entry, never resets, and
	// survives wraparound — gaps in a queried range mean entries were
	// dropped between polls.
	Seq   uint64    `json:"seq"`
	Time  time.Time `json:"time"`
	Level string    `json:"level"`
	Msg   string    `json:"msg"`
	// Attrs are the record's resolved attributes; group names join with
	// dots (http.method).
	Attrs map[string]any `json:"attrs,omitempty"`

	// level keeps the numeric form for filtering without re-parsing.
	level slog.Level
}

// Buffer is a fixed-capacity ring of entries. Safe for concurrent use.
type Buffer struct {
	mu      sync.Mutex
	entries []Entry // ring storage, len == cap once full
	cap     int
	start   int    // index of the oldest entry
	next    uint64 // sequence number of the next append
}

// New returns a ring holding the most recent capacity entries. Values
// below one default to 1024.
func New(capacity int) *Buffer {
	if capacity < 1 {
		capacity = 1024
	}
	return &Buffer{cap: capacity}
}

// Append stores one entry, assigning its sequence number and evicting
// the oldest entry once the ring is full.
func (b *Buffer) Append(e Entry) {
	b.mu.Lock()
	e.Seq = b.next
	b.next++
	if len(b.entries) < b.cap {
		b.entries = append(b.entries, e)
	} else {
		b.entries[b.start] = e
		b.start = (b.start + 1) % b.cap
	}
	b.mu.Unlock()
}

// Len reports the entries currently held.
func (b *Buffer) Len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.entries)
}

// Cap reports the ring capacity.
func (b *Buffer) Cap() int { return b.cap }

// Appended reports how many entries were ever appended; subtracting Len
// gives the number dropped to wraparound.
func (b *Buffer) Appended() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.next
}

// Query returns up to limit of the most recent entries at or above
// minLevel, oldest first. Limits below one mean "no limit" (the whole
// retained window).
func (b *Buffer) Query(minLevel slog.Level, limit int) []Entry {
	b.mu.Lock()
	n := len(b.entries)
	ordered := make([]Entry, 0, n)
	for i := 0; i < n; i++ {
		e := b.entries[(b.start+i)%b.cap]
		if e.level >= minLevel {
			ordered = append(ordered, e)
		}
	}
	b.mu.Unlock()
	if limit > 0 && len(ordered) > limit {
		ordered = ordered[len(ordered)-limit:]
	}
	return ordered
}

// ParseLevel maps a level name (debug, info, warn/warning, error, any
// case) to its slog level.
func ParseLevel(s string) (slog.Level, error) {
	switch strings.ToLower(s) {
	case "debug":
		return slog.LevelDebug, nil
	case "info", "":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("logbuffer: unknown level %q (want debug, info, warn, or error)", s)
}

// handler adapts a Buffer to slog.Handler. WithAttrs/WithGroup return
// derived handlers sharing the same ring.
type handler struct {
	buf    *Buffer
	level  slog.Leveler
	attrs  []slog.Attr // pre-resolved attrs from WithAttrs
	groups []string    // open group path from WithGroup
}

// Handler returns a slog.Handler appending every record at or above
// level into the ring. A nil level means slog.LevelInfo.
func (b *Buffer) Handler(level slog.Leveler) slog.Handler {
	if level == nil {
		level = slog.LevelInfo
	}
	return &handler{buf: b, level: level}
}

func (h *handler) Enabled(_ context.Context, l slog.Level) bool {
	return l >= h.level.Level()
}

func (h *handler) Handle(_ context.Context, r slog.Record) error {
	e := Entry{
		Time:  r.Time,
		Level: r.Level.String(),
		Msg:   r.Message,
		level: r.Level,
	}
	if n := len(h.attrs) + r.NumAttrs(); n > 0 {
		e.Attrs = make(map[string]any, n)
	}
	for _, a := range h.attrs {
		addAttr(e.Attrs, "", a)
	}
	prefix := strings.Join(h.groups, ".")
	r.Attrs(func(a slog.Attr) bool {
		addAttr(e.Attrs, prefix, a)
		return true
	})
	h.buf.Append(e)
	return nil
}

func (h *handler) WithAttrs(attrs []slog.Attr) slog.Handler {
	if len(attrs) == 0 {
		return h
	}
	nh := *h
	prefix := strings.Join(h.groups, ".")
	nh.attrs = make([]slog.Attr, len(h.attrs), len(h.attrs)+len(attrs))
	copy(nh.attrs, h.attrs)
	for _, a := range attrs {
		if prefix != "" {
			a.Key = prefix + "." + a.Key
		}
		nh.attrs = append(nh.attrs, a)
	}
	return &nh
}

func (h *handler) WithGroup(name string) slog.Handler {
	if name == "" {
		return h
	}
	nh := *h
	nh.groups = append(append([]string(nil), h.groups...), name)
	return &nh
}

// addAttr flattens one attr (and any group it carries) into m with
// dot-joined keys.
func addAttr(m map[string]any, prefix string, a slog.Attr) {
	v := a.Value.Resolve()
	key := a.Key
	if prefix != "" && key != "" {
		key = prefix + "." + key
	} else if prefix != "" {
		key = prefix
	}
	if v.Kind() == slog.KindGroup {
		for _, ga := range v.Group() {
			addAttr(m, key, ga)
		}
		return
	}
	if key == "" {
		return
	}
	m[key] = v.Any()
}

// Fanout returns a handler forwarding every record to each of hs.
// Enabled reports true when any target is enabled; Handle delivers to
// every enabled target and returns the first error.
func Fanout(hs ...slog.Handler) slog.Handler {
	return fanout(hs)
}

type fanout []slog.Handler

func (f fanout) Enabled(ctx context.Context, l slog.Level) bool {
	for _, h := range f {
		if h.Enabled(ctx, l) {
			return true
		}
	}
	return false
}

func (f fanout) Handle(ctx context.Context, r slog.Record) error {
	var first error
	for _, h := range f {
		if h.Enabled(ctx, r.Level) {
			if err := h.Handle(ctx, r.Clone()); err != nil && first == nil {
				first = err
			}
		}
	}
	return first
}

func (f fanout) WithAttrs(attrs []slog.Attr) slog.Handler {
	out := make(fanout, len(f))
	for i, h := range f {
		out[i] = h.WithAttrs(attrs)
	}
	return out
}

func (f fanout) WithGroup(name string) slog.Handler {
	out := make(fanout, len(f))
	for i, h := range f {
		out[i] = h.WithGroup(name)
	}
	return out
}
