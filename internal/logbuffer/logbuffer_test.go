package logbuffer

import (
	"fmt"
	"log/slog"
	"sync"
	"testing"
)

func TestAppendAndQueryOrder(t *testing.T) {
	b := New(10)
	for i := 0; i < 5; i++ {
		b.Append(Entry{Msg: fmt.Sprintf("m%d", i), level: slog.LevelInfo})
	}
	got := b.Query(slog.LevelDebug, 0)
	if len(got) != 5 {
		t.Fatalf("len = %d, want 5", len(got))
	}
	for i, e := range got {
		if e.Msg != fmt.Sprintf("m%d", i) {
			t.Errorf("entry %d = %q, want m%d", i, e.Msg, i)
		}
		if e.Seq != uint64(i) {
			t.Errorf("entry %d seq = %d, want %d", i, e.Seq, i)
		}
	}
}

func TestWraparound(t *testing.T) {
	b := New(4)
	for i := 0; i < 10; i++ {
		b.Append(Entry{Msg: fmt.Sprintf("m%d", i)})
	}
	if b.Len() != 4 {
		t.Fatalf("len = %d, want 4", b.Len())
	}
	if b.Appended() != 10 {
		t.Fatalf("appended = %d, want 10", b.Appended())
	}
	got := b.Query(slog.LevelDebug, 0)
	// The newest four entries, oldest first, with contiguous sequence
	// numbers surviving the wrap.
	want := []string{"m6", "m7", "m8", "m9"}
	for i, e := range got {
		if e.Msg != want[i] {
			t.Errorf("entry %d = %q, want %q", i, e.Msg, want[i])
		}
		if e.Seq != uint64(6+i) {
			t.Errorf("entry %d seq = %d, want %d", i, e.Seq, 6+i)
		}
	}
}

func TestQueryLimitAndLevelFilter(t *testing.T) {
	b := New(100)
	for i := 0; i < 10; i++ {
		lvl := slog.LevelInfo
		if i%2 == 1 {
			lvl = slog.LevelWarn
		}
		b.Append(Entry{Msg: fmt.Sprintf("m%d", i), Level: lvl.String(), level: lvl})
	}
	warns := b.Query(slog.LevelWarn, 0)
	if len(warns) != 5 {
		t.Fatalf("warn entries = %d, want 5", len(warns))
	}
	// Limit keeps the most recent matches.
	limited := b.Query(slog.LevelWarn, 2)
	if len(limited) != 2 || limited[0].Msg != "m7" || limited[1].Msg != "m9" {
		t.Fatalf("limited = %+v, want [m7 m9]", limited)
	}
}

func TestConcurrentWriters(t *testing.T) {
	b := New(128)
	var wg sync.WaitGroup
	const writers, per = 8, 500
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				b.Append(Entry{Msg: fmt.Sprintf("w%d-%d", w, i)})
			}
		}(w)
	}
	wg.Wait()
	if b.Appended() != writers*per {
		t.Fatalf("appended = %d, want %d", b.Appended(), writers*per)
	}
	if b.Len() != 128 {
		t.Fatalf("len = %d, want 128", b.Len())
	}
	// Sequence numbers must be unique and the retained window contiguous.
	got := b.Query(slog.LevelDebug, 0)
	for i := 1; i < len(got); i++ {
		if got[i].Seq != got[i-1].Seq+1 {
			t.Fatalf("non-contiguous seq at %d: %d then %d", i, got[i-1].Seq, got[i].Seq)
		}
	}
}

func TestSlogHandler(t *testing.T) {
	b := New(16)
	logger := slog.New(b.Handler(slog.LevelInfo))
	logger.Debug("invisible")
	logger.Info("hello", "job", "q5", slog.Int("n", 3))
	logger.With("svc", "tune").WithGroup("http").Warn("slow", "ms", 12)

	got := b.Query(slog.LevelDebug, 0)
	if len(got) != 2 {
		t.Fatalf("entries = %d, want 2 (debug filtered)", len(got))
	}
	e := got[0]
	if e.Level != "INFO" || e.Msg != "hello" || e.Attrs["job"] != "q5" || e.Attrs["n"] != int64(3) {
		t.Errorf("bad entry: %+v", e)
	}
	w := got[1]
	if w.Level != "WARN" || w.Attrs["svc"] != "tune" || w.Attrs["http.ms"] != int64(12) {
		t.Errorf("bad grouped entry: %+v", w)
	}
	if w.Time.IsZero() {
		t.Error("entry lost its timestamp")
	}
}

func TestFanout(t *testing.T) {
	b1, b2 := New(8), New(8)
	logger := slog.New(Fanout(b1.Handler(slog.LevelWarn), b2.Handler(slog.LevelDebug)))
	logger.Info("only-b2")
	logger.Warn("both")
	if n := len(b1.Query(slog.LevelDebug, 0)); n != 1 {
		t.Errorf("b1 entries = %d, want 1", n)
	}
	if n := len(b2.Query(slog.LevelDebug, 0)); n != 2 {
		t.Errorf("b2 entries = %d, want 2", n)
	}
}

func TestParseLevel(t *testing.T) {
	for in, want := range map[string]slog.Level{
		"debug": slog.LevelDebug, "info": slog.LevelInfo, "": slog.LevelInfo,
		"warn": slog.LevelWarn, "warning": slog.LevelWarn, "ERROR": slog.LevelError,
	} {
		got, err := ParseLevel(in)
		if err != nil || got != want {
			t.Errorf("ParseLevel(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Error("ParseLevel(loud) should fail")
	}
}
