package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"github.com/streamtune/streamtune/internal/baselines/ds2"
	"github.com/streamtune/streamtune/internal/dag"
	"github.com/streamtune/streamtune/internal/engine"
	"github.com/streamtune/streamtune/internal/nexmark"
	"github.com/streamtune/streamtune/internal/parallel"
	"github.com/streamtune/streamtune/internal/simsearch"
	"github.com/streamtune/streamtune/internal/streamtune"
	"github.com/streamtune/streamtune/internal/workload"
)

// Fig11a compares the fine-tuned prediction models (NN without the
// monotonic constraint vs SVM and XGBoost with it) on Nexmark Q3, Q5,
// Q8: average reconfigurations and backpressure occurrences per tuning
// process.
func Fig11a(opts Options) (*Table, error) {
	corpus, err := BuildCorpus(engine.Flink, opts)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  "Fig 11a: Effect of classification models (Nexmark Q3/Q5/Q8)",
		Header: []string{"Query", "Model", "Avg reconfigs", "Backpressure events"},
	}
	queries := []nexmark.Query{nexmark.Q3, nexmark.Q5, nexmark.Q8}
	models := []string{"nn", "svm", "xgb"}
	// Pre-train once: Config.Model only selects the fine-tuned head that
	// NewTuner instantiates, so the clustering and encoders are
	// bit-identical across models and per-model copies just override the
	// head selection.
	cfg := streamtune.DefaultConfig()
	cfg.Train.Epochs = opts.TrainEpochs
	cfg.Cluster.K = 3 // fixed k: the ablation varies the model, not the clustering
	cfg.Workers = opts.Parallelism
	base, err := streamtune.PreTrain(corpus, cfg)
	if err != nil {
		return nil, err
	}
	rows, err := parallel.Map(len(models), opts.Parallelism, func(mi int) ([][]string, error) {
		model := models[mi]
		pt := *base // shallow copy; the shared encoders/corpus are read-only
		pt.Config.Model = model
		return parallel.Map(len(queries), opts.Parallelism, func(qi int) ([]string, error) {
			q := queries[qi]
			g, err := nexmark.Build(q, engine.Flink)
			if err != nil {
				return nil, err
			}
			units, err := nexmark.RateUnit(q, engine.Flink)
			if err != nil {
				return nil, err
			}
			w := Workload{Name: string(q), Graph: g, Units: units, Nexmark: true}
			o := opts
			o.Patterns = 1
			stats, err := RunCycle(w, MethodStreamTune, cycleEnv{pt: &pt}, o, engine.Flink)
			if err != nil {
				return nil, err
			}
			return []string{
				string(q), model,
				fmt.Sprintf("%.2f", stats.AvgReconfigurations()),
				fmt.Sprintf("%d", stats.BackpressureEvents),
			}, nil
		})
	})
	if err != nil {
		return nil, err
	}
	for _, rs := range rows {
		t.Rows = append(t.Rows, rs...)
	}
	return t, nil
}

// Fig11b measures similarity-center computation time, directly computing
// GED versus the AStar+-LSa bounded search, across dataset scales. Both
// sides run the plain linear scan — the figure compares the paper's two
// solvers, so the filter/index/dedup pipeline (benchmarked separately by
// GEDBench) is deliberately kept out of either column.
func Fig11b(opts Options, sizes []int) (*Table, error) {
	t := &Table{
		Title:  "Fig 11b: Similarity-center computation time",
		Header: []string{"Dataset scale", "Direct GED", "AStar+-LSa", "Speedup"},
	}
	for _, size := range sizes {
		set := randomDAGSet(opts.Seed, size)
		startDirect := time.Now()
		if _, err := simsearch.Center(set, 5, simsearch.DirectGED); err != nil {
			return nil, err
		}
		direct := time.Since(startDirect)
		startFast := time.Now()
		if _, err := simsearch.CenterScan(set, 5, 1); err != nil {
			return nil, err
		}
		fast := time.Since(startFast)
		speedup := float64(direct) / float64(fast)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", size),
			direct.Round(time.Millisecond).String(),
			fast.Round(time.Millisecond).String(),
			fmt.Sprintf("%.1fx", speedup),
		})
	}
	return t, nil
}

// randomDAGSet builds a pool of structurally-varied dataflow DAGs for
// clustering scale experiments by perturbing the corpus population.
func randomDAGSet(seed int64, n int) []*dag.Graph {
	base, err := CorpusGraphs(engine.Flink)
	if err != nil || len(base) == 0 {
		return nil
	}
	rng := rand.New(rand.NewSource(seed))
	out := make([]*dag.Graph, 0, n)
	for len(out) < n {
		g := base[rng.Intn(len(base))].Clone()
		g.Name = fmt.Sprintf("%s#%d", g.Name, len(out))
		// Random perturbation: retype one non-source operator.
		ops := g.Operators()
		if len(ops) > 2 && rng.Float64() < 0.7 {
			i := 1 + rng.Intn(len(ops)-1)
			if ops[i].Type != dag.Source && ops[i].Type != dag.Sink {
				ops[i].Type = dag.OpType(2 + rng.Intn(dag.NumOpTypes()-2))
			}
		}
		out = append(out, g)
	}
	return out
}

// NoiseRow is one point of the useful-time noise ablation.
type NoiseRow struct {
	Noise              float64
	DS2Reconfigs       float64
	DS2Backpressure    int
	StreamTuneRecfg    float64
	StreamTuneBackpres int
}

// AblationNoise sweeps the useful-time measurement noise and compares
// DS2 (which consumes the noisy metric) against StreamTune (which
// consumes binary bottleneck labels): the design-choice ablation called
// out in DESIGN.md §6.
func AblationNoise(opts Options, noises []float64) ([]NoiseRow, error) {
	pt, _, err := PreTrain(engine.Flink, opts)
	if err != nil {
		return nil, err
	}
	g, err := nexmark.Build(nexmark.Q5, engine.Flink)
	if err != nil {
		return nil, err
	}
	units, err := nexmark.RateUnit(nexmark.Q5, engine.Flink)
	if err != nil {
		return nil, err
	}

	return parallel.Map(len(noises), opts.Parallelism, func(ni int) (NoiseRow, error) {
		noise := noises[ni]
		row := NoiseRow{Noise: noise}
		for _, method := range []string{MethodDS2, MethodStreamTune} {
			eng, st, err := noisyEngine(g, units, noise, opts, pt, method)
			if err != nil {
				return NoiseRow{}, err
			}
			procs, reconfigs, bp := 0, 0, 0
			pat := workload.PeriodicPatterns(opts.Seed)[0]
			for _, mult := range pat.Multipliers {
				for id, wu := range units {
					if err := eng.SetSourceRate(id, wu*float64(mult)); err != nil {
						return NoiseRow{}, err
					}
				}
				switch method {
				case MethodDS2:
					r, err := ds2.Tune(eng, ds2.DefaultOptions())
					if err != nil {
						return NoiseRow{}, err
					}
					reconfigs += r.Reconfigurations
					bp += r.BackpressureEvents
				case MethodStreamTune:
					r, err := st.Tune(eng)
					if err != nil {
						return NoiseRow{}, err
					}
					reconfigs += r.Reconfigurations
					bp += r.BackpressureEvents
				}
				procs++
			}
			avg := float64(reconfigs) / float64(procs)
			if method == MethodDS2 {
				row.DS2Reconfigs, row.DS2Backpressure = avg, bp
			} else {
				row.StreamTuneRecfg, row.StreamTuneBackpres = avg, bp
			}
		}
		return row, nil
	})
}

func noisyEngine(g *dag.Graph, units map[string]float64, noise float64, opts Options, pt *streamtune.PreTrained, method string) (*engine.Engine, *streamtune.Tuner, error) {
	clone := g.Clone()
	cfg := engine.DefaultConfig(engine.Flink)
	cfg.Seed = opts.Seed
	cfg.UsefulTimeNoise = noise
	cfg.MeasureTicks = opts.MeasureTicks
	eng, err := engine.New(clone, cfg)
	if err != nil {
		return nil, nil, err
	}
	initial := make(map[string]int)
	for _, op := range clone.Operators() {
		initial[op.ID] = 1
	}
	if err := eng.Deploy(initial); err != nil {
		return nil, nil, err
	}
	var st *streamtune.Tuner
	if method == MethodStreamTune {
		st, err = streamtune.NewTuner(pt, eng.Graph())
		if err != nil {
			return nil, nil, err
		}
	}
	return eng, st, nil
}

// AblationGlobal compares clustered pre-training against a single global
// encoder (§VII "Limited Pre-training Dataset"): reconfigurations to
// converge on Nexmark Q5.
func AblationGlobal(opts Options) (*Table, error) {
	corpus, err := BuildCorpus(engine.Flink, opts)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  "Ablation: clustered vs global encoder (Nexmark Q5)",
		Header: []string{"Mode", "Avg reconfigs", "Backpressure events", "Final parallelism @10Wu"},
	}
	modes := []bool{false, true}
	rows, err := parallel.Map(len(modes), opts.Parallelism, func(i int) ([]string, error) {
		global := modes[i]
		cfg := streamtune.DefaultConfig()
		cfg.Train.Epochs = opts.TrainEpochs
		cfg.Global = global
		cfg.Workers = opts.Parallelism
		pt, err := streamtune.PreTrain(corpus, cfg)
		if err != nil {
			return nil, err
		}
		g, err := nexmark.Build(nexmark.Q5, engine.Flink)
		if err != nil {
			return nil, err
		}
		units, err := nexmark.RateUnit(nexmark.Q5, engine.Flink)
		if err != nil {
			return nil, err
		}
		w := Workload{Name: "(Nexmark)Q5", Graph: g, Units: units, Nexmark: true}
		o := opts
		o.Patterns = 1
		stats, err := RunCycle(w, MethodStreamTune, cycleEnv{pt: pt}, o, engine.Flink)
		if err != nil {
			return nil, err
		}
		mode := "clustered"
		if global {
			mode = "global"
		}
		return []string{
			mode,
			fmt.Sprintf("%.2f", stats.AvgReconfigurations()),
			fmt.Sprintf("%d", stats.BackpressureEvents),
			fmt.Sprintf("%d", stats.FinalParallelismAt10Wu),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	t.Rows = append(t.Rows, rows...)
	return t, nil
}
