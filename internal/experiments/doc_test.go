package experiments

import (
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tab := &Table{
		Title:  "demo",
		Header: []string{"a", "long-column"},
		Rows:   [][]string{{"x", "1"}, {"yyyy", "22"}},
	}
	var sb strings.Builder
	tab.Render(&sb)
	out := sb.String()
	if !strings.Contains(out, "== demo ==") {
		t.Fatalf("missing title: %q", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d, want 4", len(lines))
	}
	// Columns align: the header and every row start the second column at
	// the same offset.
	idx := strings.Index(lines[1], "long-column")
	for _, l := range lines[2:] {
		if len(l) <= idx {
			t.Fatalf("row %q shorter than header offset", l)
		}
	}
}

func TestOptionsScales(t *testing.T) {
	f, q := Full(), Quick()
	if q.Patterns >= f.Patterns || q.CorpusSamples >= f.CorpusSamples || q.TrainEpochs >= f.TrainEpochs {
		t.Fatalf("Quick() not smaller than Full(): %+v vs %+v", q, f)
	}
}

func TestWorkloadSetRate(t *testing.T) {
	ws, err := FlinkWorkloads(Quick())
	if err != nil {
		t.Fatal(err)
	}
	w := ws[0] // Q1
	g := w.Graph.Clone()
	w.SetRate(g, 10)
	for id, wu := range w.Units {
		if got := g.Operator(id).SourceRate; got != 10*wu {
			t.Fatalf("rate = %v, want %v", got, 10*wu)
		}
	}
}

func TestMethodsFor(t *testing.T) {
	ws, err := FlinkWorkloads(Quick())
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range ws {
		ms := methodsFor(w)
		hasZT := false
		for _, m := range ms {
			if m == MethodZeroTune {
				hasZT = true
			}
		}
		if w.Nexmark && hasZT {
			t.Errorf("%s: ZeroTune must not run on Nexmark", w.Name)
		}
		if !w.Nexmark && !hasZT {
			t.Errorf("%s: ZeroTune missing on PQP", w.Name)
		}
	}
}
