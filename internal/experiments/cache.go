package experiments

import (
	"strings"
	"sync"

	"github.com/streamtune/streamtune/internal/engine"
	"github.com/streamtune/streamtune/internal/history"
	"github.com/streamtune/streamtune/internal/streamtune"
)

// The figure drivers repeatedly rebuild the same expensive artifacts:
// the pre-training corpus, the clustered PreTrained model, and the
// Sweep environment (PreTrained + ZeroTune). All of them are pure
// functions of (flavor, Options[, holdout]), so a process-wide
// memoizing cache builds each once and shares it across drivers — the
// "-exp all" suite then pays for pre-training once instead of once per
// figure. Entries are keyed on the full option struct (Go's comparable
// structs subsume an explicit options hash), so any scale change misses
// the cache instead of returning a stale artifact.
//
// Cached artifacts are shared across concurrently running drivers and
// must therefore be treated as immutable by every consumer; the tuners
// and baselines only ever read them.

type corpusKey struct {
	flavor engine.Flavor
	opts   Options
}

type pretrainKey struct {
	flavor  engine.Flavor
	opts    Options
	holdout string // "\x00"-joined holdout names
}

type envKey struct {
	opts Options
}

type fig8Key struct {
	opts Options
}

// pretrainArtifact pairs the two values PreTrain returns.
type pretrainArtifact struct {
	pt     *streamtune.PreTrained
	corpus *history.Corpus
}

type cacheEntry struct {
	once sync.Once
	val  any
	err  error
}

type artifactCache struct {
	mu      sync.Mutex
	entries map[any]*cacheEntry
}

// do returns the memoized artifact for key, invoking build exactly once
// per key even under concurrent callers (other callers of the same key
// block until the first build finishes).
func (c *artifactCache) do(key any, build func() (any, error)) (any, error) {
	c.mu.Lock()
	if c.entries == nil {
		c.entries = make(map[any]*cacheEntry)
	}
	e, ok := c.entries[key]
	if !ok {
		e = &cacheEntry{}
		c.entries[key] = e
	}
	c.mu.Unlock()
	e.once.Do(func() { e.val, e.err = build() })
	return e.val, e.err
}

// reset drops every cached artifact (tests use this to force genuinely
// independent rebuilds when comparing worker counts).
func (c *artifactCache) reset() {
	c.mu.Lock()
	c.entries = nil
	c.mu.Unlock()
}

// sharedArtifacts is the process-wide cache used by BuildCorpus,
// PreTrain, and buildEnv.
var sharedArtifacts artifactCache

// ResetArtifactCache drops all memoized corpora and pre-training
// artifacts, forcing the next drivers to rebuild from scratch.
func ResetArtifactCache() { sharedArtifacts.reset() }

func holdoutKey(holdout []string) string { return strings.Join(holdout, "\x00") }
