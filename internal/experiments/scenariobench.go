package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"time"

	"github.com/streamtune/streamtune/internal/baselines/conttune"
	"github.com/streamtune/streamtune/internal/baselines/ds2"
	"github.com/streamtune/streamtune/internal/dag"
	"github.com/streamtune/streamtune/internal/dagspec"
	"github.com/streamtune/streamtune/internal/engine"
	"github.com/streamtune/streamtune/internal/nexmark"
	"github.com/streamtune/streamtune/internal/parallel"
	"github.com/streamtune/streamtune/internal/service"
	"github.com/streamtune/streamtune/internal/streamtune"
	"github.com/streamtune/streamtune/internal/workload"
)

// scenarioMutation is the seeded mid-stream topology change every
// scenario cell applies: a selectivity-0.8 pre-filter spliced between
// the Q5 source and its sliding window (expressed as a dagspec mutation
// document, the same wire format PATCH /v1/jobs/{id}/topology accepts).
const scenarioMutation = `{
	"version": 1,
	"add_nodes": [{"id": "prefilter", "kind": "filter",
		"spec": {"selectivity": 0.8, "tuple": {"width_in": 96, "width_out": 96}}}],
	"remove_edges": [["bids", "sliding-window"]],
	"add_edges": [["bids", "prefilter"], ["prefilter", "sliding-window"]]
}`

// ScenarioCell is one (trace, method) run of the adversarial-traffic
// benchmark: a full pass over the trace's rate multipliers with one
// seeded mid-stream topology mutation.
type ScenarioCell struct {
	Scenario string `json:"scenario"`
	Method   string `json:"method"`
	// Steps is the number of tuning processes (one per rate change).
	Steps int `json:"steps"`
	// MutationStep is the trace position after which the topology
	// mutates; identical across methods of the same scenario.
	MutationStep       int     `json:"mutation_step"`
	Reconfigurations   int     `json:"reconfigurations"`
	BackpressureEvents int     `json:"backpressure_events"`
	RecommendSeconds   float64 `json:"recommend_seconds"`
	// FinalParallelism is the total parallelism after the last process.
	FinalParallelism int `json:"final_parallelism"`
	// WarmStart records that the method carried tuning state across the
	// mutation (StreamTune: same-cluster tuner survived; ContTune: the
	// per-operator GPs persist by ID; DS2 is stateless, always false).
	WarmStart bool `json:"warm_start"`
}

// ScenarioBenchReport is the result of -exp scenario-bench: the three
// adversarial traffic traces (bursty, diurnal, skewed) driven through
// StreamTune and the DS2 / ContTune baselines, each with a seeded
// mid-stream DAG mutation, plus a differential check that the service's
// PATCH-topology warm start converges bit-identically to tuning the
// mutated job from scratch.
type ScenarioBenchReport struct {
	Workload string         `json:"workload"`
	Seed     int64          `json:"seed"`
	Steps    int            `json:"steps_per_trace"`
	Cells    []ScenarioCell `json:"cells"`

	// Per-method totals across all scenarios (the guarded aggregates).
	StreamTuneReconfigurations int `json:"streamtune_reconfigurations"`
	DS2Reconfigurations        int `json:"ds2_reconfigurations"`
	ContTuneReconfigurations   int `json:"conttune_reconfigurations"`
	StreamTuneBackpressure     int `json:"streamtune_backpressure"`
	DS2Backpressure            int `json:"ds2_backpressure"`
	ContTuneBackpressure       int `json:"conttune_backpressure"`

	// Differential mutation check through the service API: a job is
	// registered, driven partway, mutated via MutateTopology, and driven
	// to convergence; the final recommendation must be bit-identical to a
	// caller-owned tuner taken through the same lifecycle (partial tune,
	// tuner carried across the mutation, fresh process on the mutated
	// graph) — the service's snapshot/restore warm start and batched
	// inference must not change a single recommendation.
	// MutationWarmStart records that the check exercised the warm-start
	// path (tuner state carried across the mutation rather than rebuilt
	// cold).
	MutationWarmStart    bool `json:"mutation_warm_start"`
	MutationBitIdentical bool `json:"mutation_bit_identical"`
}

// scenarioWorkload returns the Nexmark Q5 evaluation workload — the job
// the scenario mutation is written against.
func scenarioWorkload() (Workload, error) {
	g, err := nexmark.Build(nexmark.Q5, engine.Flink)
	if err != nil {
		return Workload{}, err
	}
	units, err := nexmark.RateUnit(nexmark.Q5, engine.Flink)
	if err != nil {
		return Workload{}, err
	}
	return Workload{Name: "(Nexmark)Q5", Graph: g, Units: units, Nexmark: true}, nil
}

// ScenarioBench runs the adversarial-traffic scenario suite: every
// trace x method cell plus the service-path mutation differential.
// steps is the trace length (<= 0 selects 48).
func ScenarioBench(opts Options, steps int) (*ScenarioBenchReport, error) {
	if steps <= 0 {
		steps = 48
	}
	pt, _, err := PreTrain(engine.Flink, opts)
	if err != nil {
		return nil, err
	}
	w, err := scenarioWorkload()
	if err != nil {
		return nil, err
	}
	mut, err := dagspec.ParseMutation([]byte(scenarioMutation))
	if err != nil {
		return nil, fmt.Errorf("scenariobench: mutation doc: %w", err)
	}

	traces := scenarioTraces(opts.Seed, steps)
	// The mutation lands mid-stream — in the middle third of the trace,
	// at a seeded position shared by every method of the same scenario
	// so their reconfiguration counts stay comparable.
	rng := rand.New(rand.NewSource(opts.Seed + 1789))
	mutSteps := make([]int, len(traces))
	for i := range traces {
		mutSteps[i] = steps/3 + rng.Intn(steps/3+1)
	}

	methods := []string{MethodDS2, MethodContTune, MethodStreamTune}
	type cellSpec struct {
		trace   scenarioTrace
		mutStep int
		method  string
	}
	var specs []cellSpec
	for i, tr := range traces {
		for _, m := range methods {
			specs = append(specs, cellSpec{trace: tr, mutStep: mutSteps[i], method: m})
		}
	}
	cells, err := parallel.Map(len(specs), opts.Parallelism, func(i int) (*ScenarioCell, error) {
		s := specs[i]
		return runScenarioCell(w, s.trace, s.method, s.mutStep, mut, pt, opts)
	})
	if err != nil {
		return nil, err
	}

	r := &ScenarioBenchReport{Workload: w.Name, Seed: opts.Seed, Steps: steps}
	for _, c := range cells {
		r.Cells = append(r.Cells, *c)
		switch c.Method {
		case MethodStreamTune:
			r.StreamTuneReconfigurations += c.Reconfigurations
			r.StreamTuneBackpressure += c.BackpressureEvents
		case MethodDS2:
			r.DS2Reconfigurations += c.Reconfigurations
			r.DS2Backpressure += c.BackpressureEvents
		case MethodContTune:
			r.ContTuneReconfigurations += c.Reconfigurations
			r.ContTuneBackpressure += c.BackpressureEvents
		}
	}

	warm, identical, err := mutationDifferential(pt, w, mut, opts)
	if err != nil {
		return nil, err
	}
	r.MutationWarmStart = warm
	r.MutationBitIdentical = identical
	return r, nil
}

// scenarioTrace decouples the bench loop from the workload package's
// trace type (keeps the cell runner testable with hand-built traces).
type scenarioTrace struct {
	name        string
	multipliers []float64
}

// runScenarioCell drives one trace with one method, mutating the
// topology after mutStep rate changes.
func runScenarioCell(w Workload, tr scenarioTrace, method string, mutStep int, mut *dagspec.Mutation, pt *streamtune.PreTrained, opts Options) (*ScenarioCell, error) {
	ecfg := engine.DefaultConfig(engine.Flink)
	ecfg.Seed = opts.Seed
	ecfg.MeasureTicks = opts.MeasureTicks
	g := w.Graph.Clone()
	eng, err := engine.New(g, ecfg)
	if err != nil {
		return nil, fmt.Errorf("scenario %s/%s: %w", tr.name, method, err)
	}

	cur := make(map[string]int, g.NumOperators())
	for _, op := range g.Operators() {
		cur[op.ID] = 1
	}
	if err := eng.Deploy(cur); err != nil {
		return nil, err
	}

	cell := &ScenarioCell{Scenario: tr.name, Method: method, MutationStep: mutStep}
	var st *streamtune.Tuner
	var ct *conttune.Tuner
	switch method {
	case MethodStreamTune:
		st, err = streamtune.NewTuner(pt, eng.Graph())
		if err != nil {
			return nil, fmt.Errorf("scenario %s: %w", tr.name, err)
		}
	case MethodContTune:
		ct = conttune.NewTuner(conttune.DefaultOptions())
	}

	for i, mult := range tr.multipliers {
		if i == mutStep {
			newG, err := mut.Apply(eng.Graph())
			if err != nil {
				return nil, fmt.Errorf("scenario %s/%s: mutate: %w", tr.name, method, err)
			}
			eng, err = engine.New(newG, ecfg)
			if err != nil {
				return nil, err
			}
			// The running assignment survives the splice; the inserted
			// operator starts at parallelism 1.
			assign := make(map[string]int, newG.NumOperators())
			for _, op := range newG.Operators() {
				if p, ok := cur[op.ID]; ok {
					assign[op.ID] = p
				} else {
					assign[op.ID] = 1
				}
			}
			if err := eng.Deploy(assign); err != nil {
				return nil, err
			}
			cur = assign
			switch method {
			case MethodStreamTune:
				// Same cluster: the fine-tuned training set carries over
				// (the next Start distills the mutated graph into it) —
				// the tuner-level analogue of the service warm start.
				c, _ := pt.AssignCluster(eng.Graph())
				if c == st.ClusterID() {
					cell.WarmStart = true
				} else {
					st, err = streamtune.NewTuner(pt, eng.Graph())
					if err != nil {
						return nil, err
					}
				}
			case MethodContTune:
				// ContTune's per-operator GPs are keyed by ID, so the
				// surviving operators keep their models and only the
				// spliced one starts cold.
				cell.WarmStart = true
			}
		}
		w.SetRate(eng.Graph(), mult)

		var total, reconfigs, bpEvents int
		var recTime time.Duration
		switch method {
		case MethodDS2:
			res, err := ds2.Tune(eng, ds2.DefaultOptions())
			if err != nil {
				return nil, err
			}
			total, reconfigs, bpEvents = res.TotalParallelism(), res.Reconfigurations, res.BackpressureEvents
			recTime = res.RecommendTime
			cur = res.Parallelism
		case MethodContTune:
			res, err := ct.Tune(eng)
			if err != nil {
				return nil, err
			}
			total, reconfigs, bpEvents = res.TotalParallelism(), res.Reconfigurations, res.BackpressureEvents
			recTime = res.RecommendTime
			cur = res.Parallelism
		case MethodStreamTune:
			res, err := st.Tune(eng)
			if err != nil {
				return nil, err
			}
			total, reconfigs, bpEvents = res.TotalParallelism(), res.Reconfigurations, res.BackpressureEvents
			recTime = res.RecommendTime
			cur = res.Parallelism
		default:
			return nil, fmt.Errorf("scenario: unknown method %q", method)
		}
		cell.Steps++
		cell.Reconfigurations += reconfigs
		cell.BackpressureEvents += bpEvents
		cell.RecommendSeconds += recTime.Seconds()
		cell.FinalParallelism = total
	}
	return cell, nil
}

// mutationDifferential replays the PATCH-topology contract through the
// service: register, tune partway, mutate, finish — then demand the
// final recommendation is bit-identical to a caller-owned tuner taken
// through the exact same lifecycle. The caller-owned side never
// snapshots, never batches inference, and never crosses the service's
// phase machinery, so equality proves the warm start changes where
// tuning starts, not where it converges.
func mutationDifferential(pt *streamtune.PreTrained, w Workload, mut *dagspec.Mutation, opts Options) (warmStart, bitIdentical bool, err error) {
	ecfg := engine.DefaultConfig(engine.Flink)
	ecfg.Seed = opts.Seed
	ecfg.MeasureTicks = opts.MeasureTicks
	g := w.Graph.Clone()
	w.SetRate(g, 4)

	svc, err := service.New(pt, service.Config{Workers: opts.Parallelism})
	if err != nil {
		return false, false, err
	}
	const jobID = "scenario-mutation"
	ctx := context.Background()
	if _, err := svc.Register(ctx, jobID, g, ecfg); err != nil {
		return false, false, err
	}

	// Accumulate a few observations on the original topology so the warm
	// start has session history to carry across.
	eng, err := engine.New(g, ecfg)
	if err != nil {
		return false, false, err
	}
	for round := 0; round < 3; round++ {
		rec, err := svc.Recommend(ctx, jobID)
		if err != nil {
			return false, false, err
		}
		if rec.Done {
			break
		}
		if rec.Deploy {
			if err := eng.Deploy(rec.Parallelism); err != nil {
				return false, false, err
			}
			eng.Stabilize(pt.Config.StabilizeWait)
		}
		m, err := eng.Run()
		if err != nil {
			return false, false, err
		}
		if _, err := svc.Observe(ctx, jobID, m); err != nil {
			return false, false, err
		}
	}

	newG, err := mut.Apply(g)
	if err != nil {
		return false, false, err
	}
	refWarm, ref, err := mutateThenTuneReference(pt, g, newG, ecfg)
	if err != nil {
		return false, false, err
	}

	res, err := svc.MutateTopology(ctx, jobID, mut)
	if err != nil {
		return false, false, fmt.Errorf("scenariobench: mutate: %w", err)
	}
	// The client redeploys the mutated job and finishes tuning against a
	// system running the new topology.
	mutEng, err := engine.New(newG.Clone(), ecfg)
	if err != nil {
		return false, false, err
	}
	var got map[string]int
	for rounds := 0; ; rounds++ {
		if rounds >= 1000 {
			return false, false, fmt.Errorf("scenariobench: post-mutation drive: no convergence in %d rounds", rounds)
		}
		rec, err := svc.Recommend(ctx, jobID)
		if err != nil {
			return false, false, fmt.Errorf("scenariobench: post-mutation drive: %w", err)
		}
		if rec.Done {
			got = rec.Parallelism
			break
		}
		if rec.Deploy {
			if err := mutEng.Deploy(rec.Parallelism); err != nil {
				return false, false, err
			}
			mutEng.Stabilize(pt.Config.StabilizeWait)
		}
		m, err := mutEng.Run()
		if err != nil {
			return false, false, err
		}
		if _, err := svc.Observe(ctx, jobID, m); err != nil {
			return false, false, fmt.Errorf("scenariobench: post-mutation drive: %w", err)
		}
	}
	return res.WarmStart, res.WarmStart == refWarm && reflect.DeepEqual(got, ref), nil
}

// mutateThenTuneReference is the caller-owned side of the differential:
// the same partial tune on g, the same carry-the-tuner-across-the-
// mutation decision the service makes (same cluster keeps the tuner,
// a cluster change rebuilds it cold), and a fresh tuning process on the
// mutated graph driven to convergence.
func mutateThenTuneReference(pt *streamtune.PreTrained, g, newG *dag.Graph, ecfg engine.Config) (warmStart bool, final map[string]int, err error) {
	tuner, err := streamtune.NewTuner(pt, g)
	if err != nil {
		return false, nil, err
	}
	eng, err := engine.New(g.Clone(), ecfg)
	if err != nil {
		return false, nil, err
	}
	p, err := tuner.Start(g, ecfg)
	if err != nil {
		return false, nil, err
	}
	for round := 0; round < 3; round++ {
		rec, deploy, done, err := p.Step()
		if err != nil {
			return false, nil, err
		}
		if done {
			break
		}
		if deploy {
			if err := eng.Deploy(rec); err != nil {
				return false, nil, err
			}
			eng.Stabilize(pt.Config.StabilizeWait)
		}
		m, err := eng.Run()
		if err != nil {
			return false, nil, err
		}
		if _, err := p.Observe(m); err != nil {
			return false, nil, err
		}
	}

	c, _ := pt.AssignCluster(newG)
	warmStart = c == tuner.ClusterID()
	if !warmStart {
		tuner, err = streamtune.NewTuner(pt, newG)
		if err != nil {
			return false, nil, err
		}
	}
	newEng, err := engine.New(newG.Clone(), ecfg)
	if err != nil {
		return false, nil, err
	}
	res, err := tuner.Tune(newEng)
	if err != nil {
		return false, nil, err
	}
	return warmStart, res.Parallelism, nil
}

// scenarioTraces adapts workload.ScenarioTraces to the bench's local
// trace type.
func scenarioTraces(seed int64, n int) []scenarioTrace {
	var out []scenarioTrace
	for _, tr := range workload.ScenarioTraces(seed, n) {
		out = append(out, scenarioTrace{name: tr.Name, multipliers: tr.Multipliers})
	}
	return out
}

// ScenarioBenchTable renders the scenario report.
func ScenarioBenchTable(r *ScenarioBenchReport) *Table {
	t := &Table{
		Title: fmt.Sprintf("Adversarial-traffic scenarios: %s, %d steps/trace, seed %d",
			r.Workload, r.Steps, r.Seed),
		Header: []string{"Scenario", "Method", "Reconfigs", "Backpressure", "Final p", "Warm start"},
	}
	for _, c := range r.Cells {
		t.Rows = append(t.Rows, []string{
			c.Scenario, c.Method,
			fmt.Sprintf("%d", c.Reconfigurations),
			fmt.Sprintf("%d", c.BackpressureEvents),
			fmt.Sprintf("%d", c.FinalParallelism),
			fmt.Sprintf("%v", c.WarmStart),
		})
	}
	t.Rows = append(t.Rows, []string{"-- mutation differential", "",
		fmt.Sprintf("warm=%v", r.MutationWarmStart),
		fmt.Sprintf("bit-identical=%v", r.MutationBitIdentical), "", ""})
	return t
}
