package experiments

import (
	"bytes"
	"fmt"
	"math"
	"time"

	"github.com/streamtune/streamtune/internal/baselines/zerotune"
	"github.com/streamtune/streamtune/internal/engine"
	"github.com/streamtune/streamtune/internal/gnn"
)

// NNBenchReport is the result of the neural-engine benchmark: the seed
// eager autodiff paths against the compiled-plan engine (pooled
// buffers, cached aggregation structures, block-diagonal batching,
// grad-free inference sessions) on the three model workloads this
// repository runs — per-cluster GNN pre-training, ZeroTune cost-model
// training, and the tuner's online-loop inference pattern. Every
// comparison cross-checks bit-identical results before timing is
// reported, mirroring BENCH_ged.json.
type NNBenchReport struct {
	CorpusExecutions   int `json:"corpus_executions"`
	DistinctStructures int `json:"distinct_structures"`
	Epochs             int `json:"epochs"`
	ZeroTuneEpochs     int `json:"zerotune_epochs"`

	// Pretrain: gnn.PretrainEager (seed) vs the batched gnn.Pretrain,
	// both at the default encoder/training configuration apart from the
	// epoch count. The seed runs the same structure-ordered execution
	// sequence the batched path uses, and both must produce
	// byte-identical weights.
	PretrainSeedSeconds float64 `json:"pretrain_seed_seconds"`
	PretrainPlanSeconds float64 `json:"pretrain_plan_seconds"`
	PretrainSpeedup     float64 `json:"pretrain_speedup"`

	// ZeroTune job-level cost-model training, eager vs compiled.
	ZeroTuneSeedSeconds float64 `json:"zerotune_seed_seconds"`
	ZeroTunePlanSeconds float64 `json:"zerotune_plan_seconds"`
	ZeroTuneSpeedup     float64 `json:"zerotune_speedup"`

	// Online-tuning inference: the distillation pattern of Algorithm 2
	// (one parallelism-agnostic pass plus a Fibonacci parallelism grid
	// of predictions per job), eager Forward vs the grad-free
	// InferSession fast path.
	InferGraphs      int     `json:"infer_graphs"`
	InferRounds      int     `json:"infer_rounds"`
	InferSeedSeconds float64 `json:"infer_seed_seconds"`
	InferPlanSeconds float64 `json:"infer_plan_seconds"`
	InferSpeedup     float64 `json:"infer_speedup"`
}

// nnBenchGrid mirrors the tuner's Fibonacci distillation grid.
var nnBenchGrid = []int{1, 2, 3, 5, 8, 13, 21, 34, 55, 89}

// NNBench runs the neural-engine benchmark on the shared pre-training
// corpus.
func NNBench(opts Options) (*NNBenchReport, error) {
	corpus, err := BuildCorpus(engine.Flink, opts)
	if err != nil {
		return nil, err
	}
	r := &NNBenchReport{
		CorpusExecutions:   corpus.Len(),
		DistinctStructures: corpus.DistinctStructures(),
		Epochs:             opts.TrainEpochs,
	}

	// --- Pre-training ---
	cfg := gnn.DefaultConfig()
	topts := gnn.DefaultTrainOptions()
	topts.Epochs = opts.TrainEpochs
	grouped := gnn.GroupByStructure(corpus)

	start := time.Now()
	seedEnc, _, err := gnn.PretrainEager(grouped, cfg, topts)
	if err != nil {
		return nil, fmt.Errorf("nnbench: seed pretrain: %w", err)
	}
	r.PretrainSeedSeconds = time.Since(start).Seconds()

	start = time.Now()
	planEnc, _, err := gnn.Pretrain(corpus, cfg, topts)
	if err != nil {
		return nil, fmt.Errorf("nnbench: batched pretrain: %w", err)
	}
	r.PretrainPlanSeconds = time.Since(start).Seconds()

	seedW, err := seedEnc.MarshalParams()
	if err != nil {
		return nil, err
	}
	planW, err := planEnc.MarshalParams()
	if err != nil {
		return nil, err
	}
	if !bytes.Equal(seedW, planW) {
		return nil, fmt.Errorf("nnbench: batched pretrain weights diverged from seed")
	}
	if r.PretrainPlanSeconds > 0 {
		r.PretrainSpeedup = r.PretrainSeedSeconds / r.PretrainPlanSeconds
	}

	// --- ZeroTune cost-model training ---
	// ZeroTune steps the optimizer once per execution, so its epochs are
	// far more expensive than pre-training epochs; cap the benchmark
	// phase to keep the whole report inside one sitting.
	zopts := zerotune.DefaultTrainOptions()
	zopts.Epochs = opts.TrainEpochs
	if zopts.Epochs > 10 {
		zopts.Epochs = 10
	}
	r.ZeroTuneEpochs = zopts.Epochs
	ezopts := zopts
	ezopts.Eager = true

	start = time.Now()
	seedModel, err := zerotune.Train(corpus, cfg, ezopts)
	if err != nil {
		return nil, fmt.Errorf("nnbench: seed zerotune: %w", err)
	}
	r.ZeroTuneSeedSeconds = time.Since(start).Seconds()

	start = time.Now()
	planModel, err := zerotune.Train(corpus, cfg, zopts)
	if err != nil {
		return nil, fmt.Errorf("nnbench: plan zerotune: %w", err)
	}
	r.ZeroTunePlanSeconds = time.Since(start).Seconds()
	if r.ZeroTunePlanSeconds > 0 {
		r.ZeroTuneSpeedup = r.ZeroTuneSeedSeconds / r.ZeroTunePlanSeconds
	}

	// --- Online-tuning inference ---
	workloads, err := FlinkWorkloads(opts)
	if err != nil {
		return nil, err
	}
	rounds := 30
	if opts.CorpusSamples < Full().CorpusSamples {
		rounds = 8
	}
	r.InferGraphs = len(workloads)
	r.InferRounds = rounds

	parFor := func(w Workload, p int) map[string]int {
		par := make(map[string]int, w.Graph.NumOperators())
		for _, op := range w.Graph.Operators() {
			par[op.ID] = p
		}
		return par
	}

	// Cross-check bit for bit before timing. ZeroTune first: the
	// eager-trained and plan-trained models must agree on both predict
	// engines.
	for _, w := range workloads {
		par := parFor(w, 8)
		want, err := seedModel.PredictDeficitEager(w.Graph, par)
		if err != nil {
			return nil, err
		}
		got, err := planModel.PredictDeficit(w.Graph, par)
		if err != nil {
			return nil, err
		}
		if math.Float64bits(got) != math.Float64bits(want) {
			return nil, fmt.Errorf("nnbench: %s: plan zerotune model diverged from seed", w.Name)
		}
	}
	// Then the encoder inference session against the seed Forward on
	// every grid point.
	for _, w := range workloads {
		sess, err := planEnc.NewInferSession(w.Graph)
		if err != nil {
			return nil, err
		}
		aemb, aprobs, err := planEnc.Forward(w.Graph, nil)
		if err != nil {
			return nil, err
		}
		embs := sess.Embeddings()
		for i := range embs {
			row := aemb.Val.Row(i)
			for j := range row {
				if math.Float64bits(embs[i][j]) != math.Float64bits(row[j]) {
					return nil, fmt.Errorf("nnbench: %s: session embedding diverged from seed forward", w.Name)
				}
			}
		}
		for i := range aprobs.Val.Data {
			if math.Float64bits(sess.AgnosticProbs()[i]) != math.Float64bits(aprobs.Val.Data[i]) {
				return nil, fmt.Errorf("nnbench: %s: session probs diverged from seed forward", w.Name)
			}
		}
		for _, p := range nnBenchGrid {
			par := parFor(w, p)
			_, want, err := planEnc.Forward(w.Graph, par)
			if err != nil {
				return nil, err
			}
			got, err := sess.Probs(par)
			if err != nil {
				return nil, err
			}
			for i := range got {
				if math.Float64bits(got[i]) != math.Float64bits(want.Val.Data[i]) {
					return nil, fmt.Errorf("nnbench: %s: grid p=%d diverged from seed forward", w.Name, p)
				}
			}
		}
	}

	start = time.Now()
	for round := 0; round < rounds; round++ {
		for _, w := range workloads {
			if _, _, err := planEnc.Forward(w.Graph, nil); err != nil {
				return nil, err
			}
			for _, p := range nnBenchGrid {
				if _, _, err := planEnc.Forward(w.Graph, parFor(w, p)); err != nil {
					return nil, err
				}
			}
		}
	}
	r.InferSeedSeconds = time.Since(start).Seconds()

	start = time.Now()
	for round := 0; round < rounds; round++ {
		for _, w := range workloads {
			sess, err := planEnc.NewInferSession(w.Graph)
			if err != nil {
				return nil, err
			}
			_ = sess.Embeddings()
			for _, p := range nnBenchGrid {
				if _, err := sess.Probs(parFor(w, p)); err != nil {
					return nil, err
				}
			}
		}
	}
	r.InferPlanSeconds = time.Since(start).Seconds()
	if r.InferPlanSeconds > 0 {
		r.InferSpeedup = r.InferSeedSeconds / r.InferPlanSeconds
	}
	return r, nil
}

// NNBenchTable renders the benchmark report.
func NNBenchTable(r *NNBenchReport) *Table {
	t := &Table{
		Title: fmt.Sprintf("NN engine: compiled plans vs seed eager autodiff (%d executions, %d structures, %d epochs)",
			r.CorpusExecutions, r.DistinctStructures, r.Epochs),
		Header: []string{"Workload", "Seed", "Compiled", "Speedup"},
	}
	row := func(name string, seed, plan, speedup float64) {
		t.Rows = append(t.Rows, []string{
			name,
			fmt.Sprintf("%.3fs", seed),
			fmt.Sprintf("%.3fs", plan),
			fmt.Sprintf("%.1fx", speedup),
		})
	}
	row("GNN pre-training (batched)", r.PretrainSeedSeconds, r.PretrainPlanSeconds, r.PretrainSpeedup)
	row("ZeroTune cost-model training", r.ZeroTuneSeedSeconds, r.ZeroTunePlanSeconds, r.ZeroTuneSpeedup)
	row(fmt.Sprintf("Online inference (%dx%d grid rounds)", r.InferRounds, r.InferGraphs),
		r.InferSeedSeconds, r.InferPlanSeconds, r.InferSpeedup)
	return t
}
