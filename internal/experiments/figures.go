package experiments

import (
	"fmt"
	"math"
	"sort"
	"time"

	"github.com/streamtune/streamtune/internal/dag"
	"github.com/streamtune/streamtune/internal/engine"
	"github.com/streamtune/streamtune/internal/nexmark"
	"github.com/streamtune/streamtune/internal/parallel"
	"github.com/streamtune/streamtune/internal/pqp"
)

// Table2 echoes the source-rate units of Table II.
func Table2() (*Table, error) {
	t := &Table{
		Title:  "Table II: Source Rate Units of Different Streaming Jobs",
		Header: []string{"Job", "Source", "Flink Wu", "Timely Wu"},
	}
	for _, q := range nexmark.Queries {
		fl, err := nexmark.RateUnit(q, engine.Flink)
		if err != nil {
			return nil, err
		}
		tm, err := nexmark.RateUnit(q, engine.Timely)
		if err != nil {
			return nil, err
		}
		for _, src := range sortedKeys(fl) {
			t.Rows = append(t.Rows, []string{
				"(Nexmark)" + string(q), src,
				fmtRate(fl[src]), fmtRate(tm[src]),
			})
		}
	}
	for _, tmpl := range pqp.Templates {
		t.Rows = append(t.Rows, []string{
			"(PQP)" + paperTemplateName(tmpl), "all",
			fmtRate(pqp.RateUnit(tmpl)), "/",
		})
	}
	return t, nil
}

func fmtRate(r float64) string {
	switch {
	case r >= 1e6:
		return fmt.Sprintf("%.0fM", r/1e6)
	case r >= 1e3:
		return fmt.Sprintf("%.0fK", r/1e3)
	}
	return fmt.Sprintf("%.0f", r)
}

// Fig4Point is one sample of the parallelism/processing-ability curve.
type Fig4Point struct {
	Parallelism int
	// FilterPA and WindowPA are measured processing abilities in
	// records/second while the respective operator is saturated.
	FilterPA float64
	WindowPA float64
}

// Fig4 reproduces the motivation experiment: a filter -> window job at a
// fixed source rate; one operator's parallelism is swept while the other
// is fixed high, and the measured processing ability is recorded. It
// also returns the measured bottleneck thresholds (the minimum
// parallelism at which each operator stops bottlenecking).
func Fig4(opts Options) ([]Fig4Point, int, int, error) {
	const rate = 3.5e6 // saturating offered rate
	build := func() *dag.Graph {
		g := dag.New("fig4")
		g.MustAddOperator(&dag.Operator{ID: "src", Type: dag.Source, SourceRate: rate, TupleWidthOut: 64})
		g.MustAddOperator(&dag.Operator{ID: "filter", Type: dag.Filter, Selectivity: 0.8, TupleWidthIn: 64, TupleWidthOut: 64, CostFactor: 3.0})
		g.MustAddOperator(&dag.Operator{
			ID: "window", Type: dag.WindowOp, WindowType: dag.Tumbling, WindowPolicy: dag.TimePolicy,
			WindowLength: 30, Selectivity: 0.5, TupleWidthIn: 64, TupleWidthOut: 32, CostFactor: 0.5,
		})
		g.MustAddOperator(&dag.Operator{ID: "sink", Type: dag.Sink, TupleWidthIn: 32})
		g.MustAddEdge("src", "filter")
		g.MustAddEdge("filter", "window")
		g.MustAddEdge("window", "sink")
		return g
	}

	measure := func(sweep string, p int) (float64, bool, error) {
		g := build()
		cfg := engine.DefaultConfig(engine.Flink)
		cfg.Seed = opts.Seed
		cfg.MeasureTicks = opts.MeasureTicks
		eng, err := engine.New(g, cfg)
		if err != nil {
			return 0, false, err
		}
		par := map[string]int{"src": 4, "filter": 40, "window": 40, "sink": 8}
		par[sweep] = p
		if err := eng.Deploy(par); err != nil {
			return 0, false, err
		}
		m, err := eng.Run()
		if err != nil {
			return 0, false, err
		}
		om := m.Op(sweep)
		pa := om.Processed
		if om.BusyFrac > 0.01 {
			pa = om.Processed / om.BusyFrac // extrapolate to full utilization
		}
		return pa, om.CPULoad > 0.95 && m.Backpressured, nil
	}

	// Every (operator, parallelism) measurement owns a fresh graph and
	// engine, so the 25-point sweep fans out; the threshold scan below
	// consumes the samples in parallelism order, independent of worker
	// scheduling.
	const maxP = 25
	type sample struct {
		fpa, wpa float64
		fbn, wbn bool
	}
	samples, err := parallel.Map(maxP, opts.Parallelism, func(i int) (sample, error) {
		p := i + 1
		fpa, fbn, err := measure("filter", p)
		if err != nil {
			return sample{}, err
		}
		wpa, wbn, err := measure("window", p)
		if err != nil {
			return sample{}, err
		}
		return sample{fpa: fpa, wpa: wpa, fbn: fbn, wbn: wbn}, nil
	})
	if err != nil {
		return nil, 0, 0, err
	}
	var points []Fig4Point
	filterThreshold, windowThreshold := -1, -1
	for i, s := range samples {
		p := i + 1
		if !s.fbn && filterThreshold < 0 {
			filterThreshold = p
		}
		if !s.wbn && windowThreshold < 0 {
			windowThreshold = p
		}
		points = append(points, Fig4Point{Parallelism: p, FilterPA: s.fpa, WindowPA: s.wpa})
	}
	return points, filterThreshold, windowThreshold, nil
}

// Fig5 reports the node-count distribution of the pre-training corpus.
func Fig5(opts Options) (*Table, error) {
	graphs, err := CorpusGraphs(engine.Flink)
	if err != nil {
		return nil, err
	}
	counts := make(map[int]int)
	for _, g := range graphs {
		counts[g.NumOperators()]++
	}
	var sizes []int
	for n := range counts {
		sizes = append(sizes, n)
	}
	sort.Ints(sizes)
	t := &Table{
		Title:  "Fig 5: Distribution of Pre-trained Dataflow DAGs",
		Header: []string{"# of DAG nodes", "count", "ratio"},
	}
	for _, n := range sizes {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", n),
			fmt.Sprintf("%d", counts[n]),
			fmt.Sprintf("%.2f%%", 100*float64(counts[n])/float64(len(graphs))),
		})
	}
	return t, nil
}

// Fig6 renders final parallelism per workload and method at 10 x Wu.
func Fig6(stats []*CycleStats) *Table {
	return pivot(stats, "Fig 6: Final parallelism at 10xWu (Flink)", func(s *CycleStats) string {
		if s.FinalParallelismAt10Wu == 0 {
			return "-"
		}
		return fmt.Sprintf("%d", s.FinalParallelismAt10Wu)
	})
}

// Fig7a renders average reconfigurations per tuning process.
func Fig7a(stats []*CycleStats) *Table {
	return pivot(stats, "Fig 7a: Average number of reconfigurations per tuning", func(s *CycleStats) string {
		if s.Method == MethodZeroTune {
			return "-" // paper: always exactly one, excluded
		}
		return fmt.Sprintf("%.2f", s.AvgReconfigurations())
	})
}

// Table3 renders backpressure occurrence counts during tuning.
func Table3(stats []*CycleStats) *Table {
	return pivot(stats, "Table III: Frequency of Backpressure Occurrences", func(s *CycleStats) string {
		return fmt.Sprintf("%d", s.BackpressureEvents)
	})
}

// Fig9a renders the average recommendation time per tuning process.
func Fig9a(stats []*CycleStats) *Table {
	return pivot(stats, "Fig 9a: Avg recommendation time per tuning process", func(s *CycleStats) string {
		if s.Processes == 0 {
			return "-"
		}
		avg := s.RecommendTime / time.Duration(s.Processes)
		return avg.Round(10 * time.Microsecond).String()
	})
}

// pivot lays stats out as workload rows x method columns.
func pivot(stats []*CycleStats, title string, cell func(*CycleStats) string) *Table {
	methods := []string{MethodDS2, MethodContTune, MethodStreamTune, MethodZeroTune}
	byKey := make(map[string]map[string]*CycleStats)
	var workloads []string
	for _, s := range stats {
		if byKey[s.Workload] == nil {
			byKey[s.Workload] = make(map[string]*CycleStats)
			workloads = append(workloads, s.Workload)
		}
		byKey[s.Workload][s.Method] = s
	}
	t := &Table{Title: title, Header: append([]string{"Workload"}, methods...)}
	for _, w := range workloads {
		row := []string{w}
		for _, m := range methods {
			if s, ok := byKey[w][m]; ok {
				row = append(row, cell(s))
			} else {
				row = append(row, "/")
			}
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// Fig7b runs the unseen-workload case study: one 2-way-join PQP query is
// held out of pre-training, then tuned across the basic rate cycle; the
// tuning time (stabilization + measurement, simulated) per rate change
// is reported in the basic-cycle order.
func Fig7b(opts Options) (*Table, error) {
	holdoutIdx := 5 % pqp.Variants(pqp.TwoWayJoin)
	holdout, err := pqp.Build(pqp.TwoWayJoin, holdoutIdx)
	if err != nil {
		return nil, err
	}
	pt, _, err := PreTrain(engine.Flink, opts, holdout.Name)
	if err != nil {
		return nil, err
	}
	units := make(map[string]float64)
	for _, i := range holdout.Sources() {
		units[holdout.OperatorAt(i).ID] = pqp.RateUnit(pqp.TwoWayJoin)
	}
	w := Workload{Name: "(PQP)2-way-join (unseen)", Graph: holdout, Units: units}
	o := opts
	o.Patterns = 1
	stats, err := RunCycle(w, MethodStreamTune, cycleEnv{pt: pt}, o, engine.Flink)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  "Fig 7b: Tuning time for an unseen 2-way-join query",
		Header: []string{"Source rate (xWu)", "Tuning time (min, simulated)"},
	}
	var total time.Duration
	for i, d := range stats.TuneDurations {
		mult := workloadMultiplier(i)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", mult),
			fmt.Sprintf("%.1f", d.Minutes()),
		})
		total += d
	}
	if n := len(stats.TuneDurations); n > 0 {
		t.Rows = append(t.Rows, []string{"avg", fmt.Sprintf("%.1f", (total / time.Duration(n)).Minutes())})
	}
	return t, nil
}

func workloadMultiplier(i int) int {
	cycle := []int{3, 7, 4, 2, 1, 10, 8, 5, 6, 9}
	return cycle[i%len(cycle)]
}

// Fig10 reports CPU utilization over reconfiguration iterations while
// StreamTune tunes three jobs (Q2, PQP Linear, PQP 2-way-join).
func Fig10(opts Options) (*Table, error) {
	env, err := buildEnv(opts)
	if err != nil {
		return nil, err
	}
	ws, err := FlinkWorkloads(opts)
	if err != nil {
		return nil, err
	}
	wanted := map[string]bool{"(Nexmark)Q2": true, "(PQP)Linear": true, "(PQP)2-way-join": true}
	t := &Table{
		Title:  "Fig 10: CPU utilization across reconfiguration iterations (StreamTune)",
		Header: []string{"Workload", "Iteration", "CPU util (%)"},
	}
	o := opts
	o.Patterns = 1
	var traced []Workload
	for _, w := range ws {
		if wanted[w.Name] {
			traced = append(traced, w)
		}
	}
	results, err := parallel.Map(len(traced), opts.Parallelism, func(i int) (*CycleStats, error) {
		return RunCycle(traced[i], MethodStreamTune, env, o, engine.Flink)
	})
	if err != nil {
		return nil, err
	}
	for i, stats := range results {
		iter := 0
		for _, trace := range stats.CPUTraces {
			for _, u := range trace {
				t.Rows = append(t.Rows, []string{
					traced[i].Name, fmt.Sprintf("%d", iter), fmt.Sprintf("%.1f", 100*u),
				})
				iter++
			}
		}
	}
	return t, nil
}

// quantiles returns the q-quantiles of xs (sorted copy).
func quantiles(xs []float64, qs ...float64) []float64 {
	if len(xs) == 0 {
		return make([]float64, len(qs))
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	out := make([]float64, len(qs))
	for i, q := range qs {
		idx := int(math.Round(q * float64(len(s)-1)))
		out[i] = s[idx]
	}
	return out
}
