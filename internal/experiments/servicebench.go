package experiments

import (
	"context"
	"fmt"
	"reflect"
	"sort"
	"sync"
	"time"

	"github.com/streamtune/streamtune/internal/dag"
	"github.com/streamtune/streamtune/internal/engine"
	"github.com/streamtune/streamtune/internal/parallel"
	"github.com/streamtune/streamtune/internal/service"
	"github.com/streamtune/streamtune/internal/streamtune"
	"github.com/streamtune/streamtune/internal/telemetry"
)

// ServiceBenchReport is the result of the tuning-service load
// benchmark: N concurrent jobs driven through one multi-tenant
// service sharing a single PreTrained artifact, cross-checked
// bit-for-bit against sequential caller-owned Tuner runs of the same
// jobs before any timing is reported (mirroring BENCH_ged.json and
// BENCH_nn.json).
type ServiceBenchReport struct {
	Jobs               int `json:"jobs"`
	Workers            int `json:"workers"`
	DistinctStructures int `json:"distinct_structures"`

	// Sequential: one caller-owned Tuner per job, one after another —
	// the single-job deployment model the service replaces.
	SequentialSeconds float64 `json:"sequential_seconds"`
	// Service: all jobs in flight at once against the shared service.
	ServiceSeconds float64 `json:"service_seconds"`
	Speedup        float64 `json:"speedup"`
	JobsPerSecond  float64 `json:"jobs_per_second"`

	// BitIdentical records that every concurrent final recommendation
	// equaled its sequential reference; the benchmark fails otherwise.
	BitIdentical bool `json:"bit_identical"`

	// Recommend-call latency distribution, measured client-side across
	// every job (includes worker-pool queueing).
	Recommendations int     `json:"recommendations"`
	RecommendP50Ms  float64 `json:"recommend_p50_ms"`
	RecommendP99Ms  float64 `json:"recommend_p99_ms"`

	// Shared-artifact effectiveness: admissions resolved entirely from
	// the shared fingerprint-keyed GED cache, and registrations landing
	// on an already-warm cluster encoder.
	AdmissionCacheHitRate float64 `json:"admission_cache_hit_rate"`
	EncoderWarmHitRate    float64 `json:"encoder_warm_hit_rate"`

	// SnapshotBytes is the size of the full-registry snapshot taken
	// after the run; SnapshotRestored records that the restored service
	// reproduced every final recommendation.
	SnapshotBytes    int  `json:"snapshot_bytes"`
	SnapshotRestored bool `json:"snapshot_restored"`

	// Batched: the same concurrent load with the cross-tenant inference
	// micro-batcher enabled (the serving default). Recommendations must
	// again match the sequential references bit for bit — batching is a
	// scheduling change, never a numeric one.
	BatchWindowMs         float64 `json:"batch_window_ms"`
	BatchedServiceSeconds float64 `json:"batched_service_seconds"`
	// BatchedSpeedup compares against the same sequential reference.
	BatchedSpeedup        float64 `json:"batched_speedup"`
	BatchedBitIdentical   bool    `json:"batched_bit_identical"`
	BatchedRecommendP50Ms float64 `json:"batched_recommend_p50_ms"`
	BatchedRecommendP99Ms float64 `json:"batched_recommend_p99_ms"`
	// BatchFlushes counts executed inference batches; BatchOccupancy is
	// the histogram of their sizes (size -> count). Occupancy above one
	// is the coalescing the batcher exists for.
	BatchFlushes   uint64         `json:"batch_flushes"`
	BatchOccupancy map[int]uint64 `json:"batch_occupancy,omitempty"`

	// Telemetry is the server-side latency distribution per operation
	// (register / recommend / observe), read off the batched pass's
	// /metrics histograms — the same numbers a production scrape would
	// see, as opposed to the client-side stopwatch above. benchguard
	// enforces ceilings over these (-max-recommend-p99-ms and friends)
	// and fails when the section is absent.
	Telemetry map[string]TelemetryOpSummary `json:"telemetry,omitempty"`

	// Recovery: an embedded mini crash-recovery soak over a subset of
	// the jobs — the service is killed mid-tuning and restored from
	// checkpoints. RecoveryCrossChecks counts replayed recommendations
	// compared bit-for-bit against the pre-crash log (the CI benchmark
	// gate fails when this is zero); RecoveryRestores counts the
	// crash/restore cycles; RecoveryBitIdentical records that the soak's
	// final recommendations matched the sequential references.
	RecoveryRestores     int  `json:"recovery_restores"`
	RecoveryCrossChecks  int  `json:"recovery_cross_checks"`
	RecoveryBitIdentical bool `json:"recovery_bit_identical"`
}

// TelemetryOpSummary is one operation's server-side histogram summary:
// sample count plus p50/p99 in milliseconds, as estimated from the
// fixed exposition buckets (each quantile reports its bucket's upper
// bound, i.e. a conservative estimate).
type TelemetryOpSummary struct {
	Count uint64  `json:"count"`
	P50Ms float64 `json:"p50_ms"`
	P99Ms float64 `json:"p99_ms"`
}

// serviceBenchJob is one load-generator tenant.
type serviceBenchJob struct {
	id    string
	graph *dag.Graph
}

// serviceBenchJobs replicates the Flink workloads across rate
// multipliers until n jobs exist. Structures repeat on purpose: a
// production tenant population is dominated by clones of a few query
// shapes, which is what the shared admission cache exploits.
func serviceBenchJobs(opts Options, n int) ([]serviceBenchJob, error) {
	workloads, err := FlinkWorkloads(opts)
	if err != nil {
		return nil, err
	}
	rates := []float64{3, 7, 5, 9}
	jobs := make([]serviceBenchJob, 0, n)
	for i := 0; len(jobs) < n; i++ {
		w := workloads[i%len(workloads)]
		rate := rates[(i/len(workloads))%len(rates)]
		g := w.Graph.Clone()
		w.SetRate(g, rate)
		// The index suffix keeps IDs unique past one full
		// workloads x rates cycle (arbitrary -service-jobs values).
		jobs = append(jobs, serviceBenchJob{
			id:    fmt.Sprintf("%s#%dx-%d", w.Name, int(rate), i),
			graph: g,
		})
	}
	return jobs, nil
}

// benchEngine builds the simulated client system for one job.
func benchEngine(g *dag.Graph, opts Options) (*engine.Engine, error) {
	cfg := engine.DefaultConfig(engine.Flink)
	cfg.MeasureTicks = opts.MeasureTicks
	return engine.New(g, cfg)
}

// ServiceBench tunes n concurrent jobs through the service and reports
// throughput, latency quantiles, and shared-artifact hit rates. Every
// concurrent recommendation is cross-checked bit-for-bit against a
// sequential single-job Tuner run before timings are reported.
func ServiceBench(opts Options, n int) (*ServiceBenchReport, error) {
	if n < 1 {
		return nil, fmt.Errorf("servicebench: need at least one job, got %d", n)
	}
	pt, corpus, err := PreTrain(engine.Flink, opts)
	if err != nil {
		return nil, err
	}
	jobs, err := serviceBenchJobs(opts, n)
	if err != nil {
		return nil, err
	}
	r := &ServiceBenchReport{
		Jobs:               n,
		Workers:            parallel.Workers(opts.Parallelism),
		DistinctStructures: corpus.DistinctStructures(),
	}

	// --- Sequential reference: one caller-owned tuner per job ---
	want := make([]map[string]int, len(jobs))
	start := time.Now()
	for i, job := range jobs {
		eng, err := benchEngine(job.graph, opts)
		if err != nil {
			return nil, err
		}
		tuner, err := streamtune.NewTuner(pt, eng.Graph())
		if err != nil {
			return nil, fmt.Errorf("servicebench: tuner %s: %w", job.id, err)
		}
		res, err := tuner.Tune(eng)
		if err != nil {
			return nil, fmt.Errorf("servicebench: sequential tune %s: %w", job.id, err)
		}
		want[i] = res.Parallelism
	}
	r.SequentialSeconds = time.Since(start).Seconds()

	// --- Concurrent run through the shared service, batching off ---
	unbatched, err := runServicePass(pt, jobs, opts, service.Config{Workers: opts.Parallelism})
	if err != nil {
		return nil, err
	}

	// --- Cross-check before reporting any timing ---
	if err := requireSequentialMatch(jobs, unbatched.got, want); err != nil {
		return nil, err
	}
	r.BitIdentical = true
	r.ServiceSeconds = unbatched.seconds
	if r.ServiceSeconds > 0 {
		r.Speedup = r.SequentialSeconds / r.ServiceSeconds
		r.JobsPerSecond = float64(n) / r.ServiceSeconds
	}
	r.Recommendations = len(unbatched.latencies)
	r.RecommendP50Ms, r.RecommendP99Ms = latencyQuantiles(unbatched.latencies)
	st := unbatched.svc.Stats()
	if tot := st.Admission.CacheHits + st.Admission.CacheMisses; tot > 0 {
		r.AdmissionCacheHitRate = float64(st.Admission.CacheHits) / float64(tot)
	}
	if st.Sessions.Registered > 0 {
		r.EncoderWarmHitRate = float64(st.Admission.EncoderWarmHits) / float64(st.Sessions.Registered)
	}

	// --- The same load with the micro-batcher enabled ---
	// The batched pass runs fully instrumented — the serving default —
	// so the report carries the server-side histogram summaries a
	// production scrape would see, and the differential test's inertness
	// guarantee is re-exercised at benchmark scale (the pass must still
	// be bit-identical to the sequential references).
	batchCfg := service.Config{
		Workers:     opts.Parallelism,
		BatchWindow: service.DefaultConfig().BatchWindow,
		MaxBatch:    service.DefaultConfig().MaxBatch,
		Metrics:     service.NewMetrics(telemetry.NewRegistry()),
	}
	batched, err := runServicePass(pt, jobs, opts, batchCfg)
	if err != nil {
		return nil, err
	}
	// Snapshot the histograms before the restore below replays
	// recommendations through the same (rebound) registry.
	r.Telemetry = make(map[string]TelemetryOpSummary, 3)
	for _, op := range []string{"register", "recommend", "observe"} {
		r.Telemetry[op] = TelemetryOpSummary{
			Count: batchCfg.Metrics.RequestCount(op),
			P50Ms: batchCfg.Metrics.RequestQuantile(op, 0.50),
			P99Ms: batchCfg.Metrics.RequestQuantile(op, 0.99),
		}
	}
	if err := requireSequentialMatch(jobs, batched.got, want); err != nil {
		return nil, fmt.Errorf("batched pass: %w", err)
	}
	r.BatchedBitIdentical = true
	r.BatchWindowMs = float64(batchCfg.BatchWindow.Microseconds()) / 1e3
	r.BatchedServiceSeconds = batched.seconds
	if r.BatchedServiceSeconds > 0 {
		r.BatchedSpeedup = r.SequentialSeconds / r.BatchedServiceSeconds
	}
	r.BatchedRecommendP50Ms, r.BatchedRecommendP99Ms = latencyQuantiles(batched.latencies)
	r.BatchFlushes = batched.svc.Stats().Batching.Flushes
	r.BatchOccupancy = batched.svc.BatchOccupancy()

	// --- Snapshot the batched registry and verify the grouped restore ---
	snap, err := batched.svc.Snapshot()
	if err != nil {
		return nil, err
	}
	r.SnapshotBytes = len(snap)
	restored, err := service.Restore(pt, batchCfg, snap)
	if err != nil {
		return nil, fmt.Errorf("servicebench: restore: %w", err)
	}
	for i, job := range jobs {
		rec, err := restored.Recommend(context.Background(), job.id)
		if err != nil {
			return nil, fmt.Errorf("servicebench: restored recommend %s: %w", job.id, err)
		}
		if !rec.Done || !reflect.DeepEqual(rec.Parallelism, want[i]) {
			return nil, fmt.Errorf("servicebench: restored job %s lost its recommendation", job.id)
		}
	}
	r.SnapshotRestored = true

	// --- Embedded crash-recovery soak over a subset of the jobs ---
	// A scaled-down chaos-bench pass: enough kills that restores replay
	// recommendations through the checkpointed registry, cheap enough to
	// ride along with every service-bench run. The soak errors on the
	// first replay divergence, so a surviving report proves recovery.
	soakJobs := jobs
	if len(soakJobs) > 4 {
		soakJobs = soakJobs[:4]
	}
	soak, err := runChaosSoak(pt, soakJobs, opts, want[:len(soakJobs)], 6, 1)
	if err != nil {
		return nil, fmt.Errorf("servicebench: recovery soak: %w", err)
	}
	r.RecoveryRestores = soak.Restores
	r.RecoveryCrossChecks = soak.RecoveryCrossChecks
	r.RecoveryBitIdentical = soak.RecoveryBitIdentical && soak.FinalBitIdentical
	return r, nil
}

// servicePass is one concurrent run of the full job set against a fresh
// service: the final recommendations, the sorted client-side recommend
// latencies, and the wall-clock total.
type servicePass struct {
	got       []map[string]int
	latencies []time.Duration
	seconds   float64
	svc       *service.Service
}

// runServicePass drives every job concurrently against one service
// built with cfg.
func runServicePass(pt *streamtune.PreTrained, jobs []serviceBenchJob, opts Options, cfg service.Config) (*servicePass, error) {
	svc, err := service.New(pt, cfg)
	if err != nil {
		return nil, err
	}
	got := make([]map[string]int, len(jobs))
	latencies := make([][]time.Duration, len(jobs))
	errs := make([]error, len(jobs))
	var wg sync.WaitGroup
	start := time.Now()
	for i := range jobs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got[i], latencies[i], errs[i] = driveServiceJob(svc, jobs[i], opts, pt.Config.StabilizeWait)
		}(i)
	}
	wg.Wait()
	pass := &servicePass{got: got, seconds: time.Since(start).Seconds(), svc: svc}
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("servicebench: job %s: %w", jobs[i].id, err)
		}
	}
	for _, l := range latencies {
		pass.latencies = append(pass.latencies, l...)
	}
	sort.Slice(pass.latencies, func(i, j int) bool { return pass.latencies[i] < pass.latencies[j] })
	return pass, nil
}

// requireSequentialMatch demands bit-identity against the sequential
// references before any timing is trusted.
func requireSequentialMatch(jobs []serviceBenchJob, got, want []map[string]int) error {
	for i := range jobs {
		if !reflect.DeepEqual(got[i], want[i]) {
			return fmt.Errorf("servicebench: job %s diverged from sequential tuner:\nservice    %v\nsequential %v",
				jobs[i].id, got[i], want[i])
		}
	}
	return nil
}

// latencyQuantiles reads p50/p99 in milliseconds off a sorted latency
// slice.
func latencyQuantiles(sorted []time.Duration) (p50, p99 float64) {
	if len(sorted) == 0 {
		return 0, 0
	}
	p50 = float64(sorted[len(sorted)/2].Microseconds()) / 1e3
	i99 := (len(sorted) - 1) * 99 / 100
	p99 = float64(sorted[i99].Microseconds()) / 1e3
	return p50, p99
}

// driveServiceJob registers one job and runs its simulated engine
// against the service until convergence.
func driveServiceJob(svc *service.Service, job serviceBenchJob, opts Options, stabilize time.Duration) (map[string]int, []time.Duration, error) {
	eng, err := benchEngine(job.graph, opts)
	if err != nil {
		return nil, nil, err
	}
	if _, err := svc.Register(context.Background(), job.id, job.graph, eng.Config()); err != nil {
		return nil, nil, err
	}
	var latencies []time.Duration
	for rounds := 0; rounds < 1000; rounds++ {
		t0 := time.Now()
		rec, err := svc.Recommend(context.Background(), job.id)
		latencies = append(latencies, time.Since(t0))
		if err != nil {
			return nil, nil, err
		}
		if rec.Done {
			return rec.Parallelism, latencies, nil
		}
		if rec.Deploy {
			if err := eng.Deploy(rec.Parallelism); err != nil {
				return nil, nil, err
			}
			eng.Stabilize(stabilize)
		}
		m, err := eng.Run()
		if err != nil {
			return nil, nil, err
		}
		done, err := svc.Observe(context.Background(), job.id, m)
		if err != nil {
			return nil, nil, err
		}
		if done {
			t0 := time.Now()
			rec, err := svc.Recommend(context.Background(), job.id)
			latencies = append(latencies, time.Since(t0))
			if err != nil {
				return nil, nil, err
			}
			return rec.Parallelism, latencies, nil
		}
	}
	return nil, nil, fmt.Errorf("no convergence in 1000 rounds")
}

// ServiceBenchTable renders the benchmark report.
func ServiceBenchTable(r *ServiceBenchReport) *Table {
	t := &Table{
		Title: fmt.Sprintf("Tuning service: %d concurrent jobs, %d workers (%d distinct structures)",
			r.Jobs, r.Workers, r.DistinctStructures),
		Header: []string{"Metric", "Value"},
	}
	add := func(k, v string) { t.Rows = append(t.Rows, []string{k, v}) }
	add("sequential single-job total", fmt.Sprintf("%.3fs", r.SequentialSeconds))
	add("concurrent service total", fmt.Sprintf("%.3fs", r.ServiceSeconds))
	add("speedup", fmt.Sprintf("%.1fx", r.Speedup))
	add("throughput", fmt.Sprintf("%.2f jobs/s", r.JobsPerSecond))
	add("recommend p50 / p99", fmt.Sprintf("%.1fms / %.1fms (%d calls)", r.RecommendP50Ms, r.RecommendP99Ms, r.Recommendations))
	add("admission cache hit rate", fmt.Sprintf("%.0f%%", 100*r.AdmissionCacheHitRate))
	add("encoder warm hit rate", fmt.Sprintf("%.0f%%", 100*r.EncoderWarmHitRate))
	add("bit-identical to sequential", fmt.Sprintf("%v", r.BitIdentical))
	add("batched service total", fmt.Sprintf("%.3fs (window %.1fms)", r.BatchedServiceSeconds, r.BatchWindowMs))
	add("batched speedup", fmt.Sprintf("%.1fx", r.BatchedSpeedup))
	add("batched recommend p50 / p99", fmt.Sprintf("%.1fms / %.1fms", r.BatchedRecommendP50Ms, r.BatchedRecommendP99Ms))
	add("batch occupancy", occupancyString(r.BatchOccupancy, r.BatchFlushes))
	add("batched bit-identical", fmt.Sprintf("%v", r.BatchedBitIdentical))
	add("snapshot restored", fmt.Sprintf("%v (%d bytes)", r.SnapshotRestored, r.SnapshotBytes))
	add("recovery soak", fmt.Sprintf("%d restores, %d replay cross-checks", r.RecoveryRestores, r.RecoveryCrossChecks))
	add("recovery bit-identical", fmt.Sprintf("%v", r.RecoveryBitIdentical))
	return t
}

// occupancyString renders the batch-size histogram compactly, e.g.
// "1:x10 2:x3 (13 flushes)".
func occupancyString(occ map[int]uint64, flushes uint64) string {
	if len(occ) == 0 {
		return "none"
	}
	sizes := make([]int, 0, len(occ))
	for s := range occ {
		sizes = append(sizes, s)
	}
	sort.Ints(sizes)
	out := ""
	for _, s := range sizes {
		if out != "" {
			out += " "
		}
		out += fmt.Sprintf("%d:x%d", s, occ[s])
	}
	return fmt.Sprintf("%s (%d flushes)", out, flushes)
}
