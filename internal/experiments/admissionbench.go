package experiments

import (
	"context"
	"fmt"
	"math"
	"sync"
	"time"

	"github.com/streamtune/streamtune/internal/cluster"
	"github.com/streamtune/streamtune/internal/dag"
	"github.com/streamtune/streamtune/internal/engine"
	"github.com/streamtune/streamtune/internal/ged"
	"github.com/streamtune/streamtune/internal/parallel"
	"github.com/streamtune/streamtune/internal/service"
)

// admissionK is the cluster count the admission bench maintains — the
// same order as the paper's Nexmark+PQP clustering.
const admissionK = 8

// admissionVerifySamples caps the number of admissions per scale that
// are differentially verified against the canonical center scan
// (uncached exact GED per center). Verification time is excluded from
// the throughput measurement either way.
const admissionVerifySamples = 128

// AdmissionBenchRow is one corpus scale of the admission benchmark:
// a seed clustering is grown to Size graphs through the Incremental
// maintainer (learned band + pivot index over a bounded shared cache),
// timed against a batch-only pipeline that keeps its clustering
// comparably current by re-running global K-means on every 25% of
// corpus growth.
type AdmissionBenchRow struct {
	Size           int `json:"size"`
	SeedSize       int `json:"seed_size"`
	Clusters       int `json:"clusters"`
	DistinctGraphs int `json:"distinct_graphs"`
	Admitted       int `json:"admitted"`

	IncrementalSeconds  float64 `json:"incremental_seconds"`
	AdmissionsPerSecond float64 `json:"admissions_per_second"`
	BatchSeconds        float64 `json:"batch_kmeans_seconds"`
	// AdmissionSpeedup is batch wall clock over incremental wall clock
	// for absorbing the same stream at the same clustering currency.
	AdmissionSpeedup float64 `json:"admission_speedup"`

	// Re-centering work: lazy local re-centers performed by the
	// maintainer vs the global K-means re-runs of the batch baseline
	// (one per 25% corpus growth) and their summed K x iterations full
	// center updates.
	IncrementalRecenters int `json:"incremental_recenters"`
	BatchReclusters      int `json:"batch_reclusters"`
	BatchCenterUpdates   int `json:"batch_center_updates"`

	// Assignment-path split: nearest-center queries served through the
	// pivot metric index vs the band's ordered-certificate scan.
	IndexedAssigns int `json:"indexed_assigns"`
	BandAssigns    int `json:"band_assigns"`

	// Learned-band accounting over the whole stream. Hits are pairs
	// decided by certificate without an exact search; fallbacks opened
	// one. The fraction is fallbacks over (hits + fallbacks).
	BandHits             uint64  `json:"band_hits"`
	BandFallbacks        uint64  `json:"band_fallbacks"`
	BandFallbackFraction float64 `json:"band_fallback_fraction"`
	BandTrained          bool    `json:"band_trained"`
	BandFits             uint64  `json:"band_fits"`

	// Bounded shared distance cache behind the band.
	PairCacheLen    int    `json:"pair_cache_len"`
	PairCacheCap    int    `json:"pair_cache_cap"`
	PairCacheResets uint64 `json:"pair_cache_resets"`

	// VerifiedAdds admissions were cross-checked against the canonical
	// linear center scan with fresh uncached exact GED calls; the bench
	// errors on the first divergence, so a written report always has
	// AssignmentsExact true.
	VerifiedAdds     int  `json:"verified_adds"`
	AssignmentsExact bool `json:"assignments_exact"`
}

// AdmissionBenchReport is the full admission benchmark: the per-scale
// corpus-growth rows plus one concurrent-Register pass against the
// multi-tenant service with a capped admission cache.
type AdmissionBenchReport struct {
	Workers int                 `json:"workers"`
	Scales  []AdmissionBenchRow `json:"scales"`

	ServiceRegisters            int     `json:"service_registers"`
	ServiceRegisterSeconds      float64 `json:"service_register_seconds"`
	RegistersPerSecond          float64 `json:"registers_per_second"`
	ServiceAdmissionCacheSize   int     `json:"service_admission_cache_size"`
	ServiceAdmissionCacheCap    int     `json:"service_admission_cache_cap"`
	ServiceAdmissionCacheResets uint64  `json:"service_admission_cache_resets"`
}

// GEDReport is the combined BENCH_ged.json shape: the PR2 engine rows
// under "ged" and the admission benchmark under "admission". Earlier
// revisions wrote the bare row array; readers tolerate that legacy
// layout.
type GEDReport struct {
	GED       []GEDBenchRow         `json:"ged"`
	Admission *AdmissionBenchReport `json:"admission,omitempty"`
}

// AdmissionBench grows a clustered corpus to each size through the
// Incremental maintainer and times it against periodic global K-means
// re-runs over the growing corpus, differentially verifying sampled
// assignments against the canonical center scan. registers concurrent
// service.Register calls are then driven against a shared service with
// a capped admission cache.
func AdmissionBench(opts Options, sizes []int, registers int) (*AdmissionBenchReport, error) {
	report := &AdmissionBenchReport{Workers: parallel.Workers(opts.Parallelism)}
	for _, size := range sizes {
		row, err := admissionScale(opts, size)
		if err != nil {
			return nil, err
		}
		report.Scales = append(report.Scales, *row)
	}
	if err := admissionRegisters(opts, registers, report); err != nil {
		return nil, err
	}
	return report, nil
}

// admissionScale runs one corpus-growth scale.
func admissionScale(opts Options, size int) (*AdmissionBenchRow, error) {
	set := randomDAGSet(opts.Seed, size)
	if len(set) == 0 {
		return nil, fmt.Errorf("admissionbench: empty DAG set at size %d", size)
	}
	seedSize := size / 16
	if seedSize < 2*admissionK {
		seedSize = 2 * admissionK
	}
	if seedSize > 256 {
		seedSize = 256
	}
	if seedSize >= size {
		return nil, fmt.Errorf("admissionbench: size %d leaves no stream past the %d-graph seed", size, seedSize)
	}
	copts := cluster.DefaultOptions(admissionK)
	copts.Workers = opts.Parallelism

	seed, err := cluster.KMeans(set[:seedSize], copts)
	if err != nil {
		return nil, fmt.Errorf("admissionbench: seed clustering: %w", err)
	}
	row := &AdmissionBenchRow{
		Size:           size,
		SeedSize:       seedSize,
		Clusters:       len(seed.Centers),
		DistinctGraphs: distinctStructures(set),
	}

	// The maintainer's band shares one bounded cache — the memory
	// contract a long-lived admission path needs.
	cache := ged.NewPairCacheCap(1 << 17)
	band := ged.NewBand(cache, ged.DefaultBandOptions())
	inc, err := cluster.NewIncremental(seed, set[:seedSize], cluster.IncrementalOptions{
		Options: copts,
		Band:    band,
	})
	if err != nil {
		return nil, err
	}

	stream := set[seedSize:]
	stride := len(stream) / admissionVerifySamples
	if stride < 1 {
		stride = 1
	}
	var incDur time.Duration
	for i, g := range stream {
		verify := i%stride == 0
		var wantC int
		var wantD float64
		if verify {
			// Canonical reference: a linear scan over the centers as they
			// stand right now, with fresh uncached exact GED calls (strict
			// <, ties to the first index) — independent of the band, the
			// pivot index, and the shared cache.
			wantC, wantD = canonicalNearest(g, inc.Result().Centers)
		}
		t0 := time.Now()
		c, d, err := inc.Add(g)
		incDur += time.Since(t0)
		if err != nil {
			return nil, fmt.Errorf("admissionbench: admit #%d: %w", i, err)
		}
		if verify {
			row.VerifiedAdds++
			if c != wantC || d != wantD {
				return nil, fmt.Errorf("admissionbench: size %d admit #%d: incremental (%d, %v) != canonical scan (%d, %v)",
					size, i, c, d, wantC, wantD)
			}
		}
	}
	row.AssignmentsExact = true
	row.Admitted = len(stream)
	row.IncrementalSeconds = incDur.Seconds()
	if row.IncrementalSeconds > 0 {
		row.AdmissionsPerSecond = float64(row.Admitted) / row.IncrementalSeconds
	}

	ist := inc.Stats()
	row.IncrementalRecenters = ist.Recenters
	row.IndexedAssigns = ist.IndexedAssigns
	row.BandAssigns = ist.BandAssigns

	bst := band.Stats()
	row.BandHits = bst.Hits
	row.BandFallbacks = bst.Fallbacks
	row.BandTrained = bst.Trained
	row.BandFits = bst.Fits
	if tot := bst.Hits + bst.Fallbacks; tot > 0 {
		row.BandFallbackFraction = float64(bst.Fallbacks) / float64(tot)
	}
	row.PairCacheLen = cache.Len()
	row.PairCacheCap = cache.Cap()
	row.PairCacheResets = cache.Resets()

	// Baseline: a batch-only pipeline keeps admissions current by
	// re-running global K-means whenever the corpus has grown 25% past
	// the last run — the same churn policy that triggers the
	// maintainer's local re-centers — and once more at the final size.
	// The seed clustering is free on both sides, and the baseline's
	// per-arrival assignment scans between re-runs are not charged at
	// all, so the comparison flatters the baseline if anything.
	t0 := time.Now()
	for next := seedSize + seedSize/4; ; next += next / 4 {
		if next > size {
			next = size
		}
		batch, err := cluster.KMeans(set[:next], copts)
		if err != nil {
			return nil, fmt.Errorf("admissionbench: batch baseline at %d: %w", next, err)
		}
		row.BatchReclusters++
		row.BatchCenterUpdates += batch.Iterations * len(batch.Centers)
		if next == size {
			break
		}
	}
	row.BatchSeconds = time.Since(t0).Seconds()
	if row.IncrementalSeconds > 0 {
		row.AdmissionSpeedup = row.BatchSeconds / row.IncrementalSeconds
	}
	return row, nil
}

// canonicalNearest is the reference nearest-center scan: plain exact
// GED per center, strict <, ties to the first index.
func canonicalNearest(g *dag.Graph, centers []*dag.Graph) (int, float64) {
	best, bestD := -1, math.Inf(1)
	for c, center := range centers {
		if d := ged.Distance(g, center); d < bestD {
			best, bestD = c, d
		}
	}
	return best, bestD
}

// admissionRegisters drives concurrent Register calls against one
// shared service with a capped admission cache and records throughput
// and cache pressure.
func admissionRegisters(opts Options, registers int, report *AdmissionBenchReport) error {
	if registers < 1 {
		registers = 16
	}
	pt, _, err := PreTrain(engine.Flink, opts)
	if err != nil {
		return err
	}
	jobs, err := serviceBenchJobs(opts, registers)
	if err != nil {
		return err
	}
	svc, err := service.New(pt, service.Config{Workers: opts.Parallelism, AdmissionCacheCap: 1024})
	if err != nil {
		return err
	}
	defer svc.Close()
	errs := make([]error, len(jobs))
	var wg sync.WaitGroup
	start := time.Now()
	for i := range jobs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cfg := engine.DefaultConfig(engine.Flink)
			cfg.MeasureTicks = opts.MeasureTicks
			_, errs[i] = svc.Register(context.Background(), jobs[i].id, jobs[i].graph, cfg)
		}(i)
	}
	wg.Wait()
	report.ServiceRegisterSeconds = time.Since(start).Seconds()
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("admissionbench: register %s: %w", jobs[i].id, err)
		}
	}
	report.ServiceRegisters = registers
	if report.ServiceRegisterSeconds > 0 {
		report.RegistersPerSecond = float64(registers) / report.ServiceRegisterSeconds
	}
	st := svc.Stats()
	report.ServiceAdmissionCacheSize = st.Admission.CacheSize
	report.ServiceAdmissionCacheCap = st.Admission.CacheCap
	report.ServiceAdmissionCacheResets = st.Admission.CacheResets
	return nil
}

// AdmissionBenchTable renders the benchmark report.
func AdmissionBenchTable(r *AdmissionBenchReport) *Table {
	t := &Table{
		Title: fmt.Sprintf("Corpus admission: incremental maintainer vs global K-means (K=%d), %d workers",
			admissionK, r.Workers),
		Header: []string{
			"Scale", "Seed", "Adds/s", "Incremental", "Batch", "Speedup",
			"Recenters", "Batch runs/updates", "Band fallback", "Verified",
		},
	}
	for _, row := range r.Scales {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", row.Size),
			fmt.Sprintf("%d", row.SeedSize),
			fmt.Sprintf("%.0f", row.AdmissionsPerSecond),
			fmt.Sprintf("%.3fs", row.IncrementalSeconds),
			fmt.Sprintf("%.3fs", row.BatchSeconds),
			fmt.Sprintf("%.1fx", row.AdmissionSpeedup),
			fmt.Sprintf("%d", row.IncrementalRecenters),
			fmt.Sprintf("%d / %d", row.BatchReclusters, row.BatchCenterUpdates),
			fmt.Sprintf("%.0f%%", 100*row.BandFallbackFraction),
			fmt.Sprintf("%d exact", row.VerifiedAdds),
		})
	}
	t.Rows = append(t.Rows, []string{
		"service", fmt.Sprintf("%d regs", r.ServiceRegisters),
		fmt.Sprintf("%.1f/s", r.RegistersPerSecond),
		fmt.Sprintf("%.3fs", r.ServiceRegisterSeconds),
		fmt.Sprintf("cache %d/%d", r.ServiceAdmissionCacheSize, r.ServiceAdmissionCacheCap),
		fmt.Sprintf("%d resets", r.ServiceAdmissionCacheResets),
		"", "", "", "",
	})
	return t
}
