package experiments

import (
	"fmt"
	"strings"
	"time"

	"github.com/streamtune/streamtune/internal/baselines/conttune"
	"github.com/streamtune/streamtune/internal/baselines/ds2"
	"github.com/streamtune/streamtune/internal/baselines/zerotune"
	"github.com/streamtune/streamtune/internal/engine"
	"github.com/streamtune/streamtune/internal/history"
	"github.com/streamtune/streamtune/internal/parallel"
	"github.com/streamtune/streamtune/internal/streamtune"
	"github.com/streamtune/streamtune/internal/workload"
)

// Method names as rendered in the paper's figures.
const (
	MethodDS2        = "DS2"
	MethodContTune   = "ContTune"
	MethodStreamTune = "StreamTune"
	MethodZeroTune   = "ZeroTune"
)

// CycleStats aggregates one workload x method sweep over the periodic
// source-rate pattern (the unit of §V-C/V-D/V-E).
type CycleStats struct {
	Workload string
	Method   string

	// Processes is the number of tuning processes (rate changes).
	Processes int
	// Reconfigurations is the total deployments across all processes.
	Reconfigurations int
	// BackpressureEvents counts measurement windows with job-level
	// backpressure across the sweep (Table III).
	BackpressureEvents int
	// FinalParallelismAt10Wu is the total parallelism after the tuning
	// process at 10 x Wu (Fig. 6; last such process wins).
	FinalParallelismAt10Wu int
	// RecommendTime is the cumulative recommendation wall-clock time.
	RecommendTime time.Duration
	// TuneDurations holds simulated tuning time per process (Fig. 7b).
	TuneDurations []time.Duration
	// CPUTraces holds per-process CPU utilization traces (Fig. 10,
	// StreamTune only).
	CPUTraces [][]float64
	// FinalParallelism is the assignment after the last process.
	FinalParallelism map[string]int
}

// AvgReconfigurations is reconfigurations per tuning process (Fig. 7a).
func (s *CycleStats) AvgReconfigurations() float64 {
	if s.Processes == 0 {
		return 0
	}
	return float64(s.Reconfigurations) / float64(s.Processes)
}

// cycleEnv bundles per-workload tuning state.
type cycleEnv struct {
	pt  *streamtune.PreTrained
	ztm *zerotune.Model
}

// RunCycle drives one workload through the periodic rate pattern with
// one method and aggregates statistics.
func RunCycle(w Workload, method string, env cycleEnv, opts Options, flavor engine.Flavor) (*CycleStats, error) {
	g := w.Graph.Clone()
	ecfg := engine.DefaultConfig(flavor)
	ecfg.Seed = opts.Seed
	ecfg.MeasureTicks = opts.MeasureTicks
	eng, err := engine.New(g, ecfg)
	if err != nil {
		return nil, fmt.Errorf("cycle %s/%s: %w", w.Name, method, err)
	}

	// Initial deployment: parallelism 1 everywhere.
	initial := make(map[string]int, g.NumOperators())
	for _, op := range g.Operators() {
		initial[op.ID] = 1
	}
	if err := eng.Deploy(initial); err != nil {
		return nil, err
	}

	stats := &CycleStats{Workload: w.Name, Method: method}
	var st *streamtune.Tuner
	var ct *conttune.Tuner
	switch method {
	case MethodStreamTune:
		st, err = streamtune.NewTuner(env.pt, eng.Graph())
		if err != nil {
			return nil, fmt.Errorf("cycle %s: %w", w.Name, err)
		}
	case MethodContTune:
		ct = conttune.NewTuner(conttune.DefaultOptions())
	case MethodZeroTune:
		if env.ztm == nil {
			return nil, fmt.Errorf("cycle %s: ZeroTune model not trained", w.Name)
		}
	}

	patterns := workload.PeriodicPatterns(opts.Seed)
	if opts.Patterns > 0 && opts.Patterns < len(patterns) {
		patterns = patterns[:opts.Patterns]
	}
	for _, pat := range patterns {
		for _, mult := range pat.Multipliers {
			w.SetRate(eng.Graph(), float64(mult))
			start := eng.SimTime()
			var total, reconfigs, bpEvents int
			var recTime time.Duration
			var cpuTrace []float64

			switch method {
			case MethodDS2:
				res, err := ds2.Tune(eng, ds2.DefaultOptions())
				if err != nil {
					return nil, err
				}
				total, reconfigs, bpEvents = res.TotalParallelism(), res.Reconfigurations, res.BackpressureEvents
				recTime = res.RecommendTime
				stats.FinalParallelism = res.Parallelism
			case MethodContTune:
				res, err := ct.Tune(eng)
				if err != nil {
					return nil, err
				}
				total, reconfigs, bpEvents = res.TotalParallelism(), res.Reconfigurations, res.BackpressureEvents
				recTime = res.RecommendTime
				stats.FinalParallelism = res.Parallelism
			case MethodStreamTune:
				res, err := st.Tune(eng)
				if err != nil {
					return nil, err
				}
				total, reconfigs, bpEvents = res.TotalParallelism(), res.Reconfigurations, res.BackpressureEvents
				recTime = res.RecommendTime
				cpuTrace = res.CPUTrace
				stats.FinalParallelism = res.Parallelism
			case MethodZeroTune:
				recStart := time.Now()
				rec, err := env.ztm.Recommend(eng.Graph(), zerotune.DefaultRecommendOptions(60))
				if err != nil {
					return nil, err
				}
				recTime = time.Since(recStart)
				if err := eng.Deploy(rec); err != nil {
					return nil, err
				}
				m, err := eng.Run()
				if err != nil {
					return nil, err
				}
				reconfigs = 1
				if m.Backpressured {
					bpEvents = 1
				}
				total = eng.TotalParallelism()
				stats.FinalParallelism = rec
			default:
				return nil, fmt.Errorf("cycle: unknown method %q", method)
			}

			stats.Processes++
			stats.Reconfigurations += reconfigs
			stats.BackpressureEvents += bpEvents
			stats.RecommendTime += recTime
			stats.TuneDurations = append(stats.TuneDurations, eng.SimTime()-start)
			if cpuTrace != nil {
				stats.CPUTraces = append(stats.CPUTraces, cpuTrace)
			}
			if mult == 10 {
				stats.FinalParallelismAt10Wu = total
			}
		}
	}
	return stats, nil
}

// methodsFor returns the methods compared on a workload: ZeroTune is
// evaluated on PQP queries only (its models are PQP-specific, §V-A).
func methodsFor(w Workload) []string {
	ms := []string{MethodDS2, MethodContTune, MethodStreamTune}
	if !w.Nexmark {
		ms = append(ms, MethodZeroTune)
	}
	return ms
}

// Sweep runs every (workload, method) pair of the Flink evaluation and
// returns the stats in deterministic order. One pre-training pass and
// one ZeroTune model are shared across workloads — exactly the paper's
// setup (global history, PQP-only ZeroTune). The cells are mutually
// independent (each owns its engine and tuner; the pre-trained
// artifacts are only read), so they run on up to opts.Parallelism
// workers with results delivered in sequential order.
func Sweep(opts Options) ([]*CycleStats, error) {
	ws, err := FlinkWorkloads(opts)
	if err != nil {
		return nil, err
	}
	env, err := buildEnv(opts)
	if err != nil {
		return nil, err
	}
	type cell struct {
		w      Workload
		method string
	}
	var cells []cell
	for _, w := range ws {
		for _, method := range methodsFor(w) {
			cells = append(cells, cell{w: w, method: method})
		}
	}
	return parallel.Map(len(cells), opts.Parallelism, func(i int) (*CycleStats, error) {
		return RunCycle(cells[i].w, cells[i].method, env, opts, engine.Flink)
	})
}

// buildEnv pre-trains StreamTune on the full corpus and ZeroTune on the
// PQP subset. The environment is memoized per options and shared (read
// only) across drivers.
func buildEnv(opts Options) (cycleEnv, error) {
	v, err := sharedArtifacts.do(envKey{opts: opts}, func() (any, error) {
		pt, corpus, err := PreTrain(engine.Flink, opts)
		if err != nil {
			return nil, err
		}
		pqpCorpus := pqpOnly(corpus)
		ztOpts := zerotune.DefaultTrainOptions()
		ztOpts.Epochs = opts.TrainEpochs
		gcfg := pt.Config.GNN
		ztm, err := zerotune.Train(pqpCorpus, gcfg, ztOpts)
		if err != nil {
			return nil, err
		}
		return cycleEnv{pt: pt, ztm: ztm}, nil
	})
	if err != nil {
		return cycleEnv{}, err
	}
	return v.(cycleEnv), nil
}

// pqpOnly filters a corpus down to PQP executions (graph names carry the
// "pqp-" prefix from the generators).
func pqpOnly(c *history.Corpus) *history.Corpus {
	out := &history.Corpus{}
	for _, ex := range c.Executions {
		if strings.HasPrefix(ex.Graph.Name, "pqp-") {
			out.Executions = append(out.Executions, ex)
		}
	}
	return out
}
