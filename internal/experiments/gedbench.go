package experiments

import (
	"fmt"
	"time"

	"github.com/streamtune/streamtune/internal/dag"
	"github.com/streamtune/streamtune/internal/ged"
	"github.com/streamtune/streamtune/internal/simsearch"
)

// GEDBenchRow is one corpus scale of the GED engine benchmark: the
// filter-and-verify pipeline (metric index, fingerprint dedup, bounded
// search) against the seed pipeline (linear scan, raw bounded search
// per pair) on the same similarity-center and cross-distance workloads,
// with the pipeline counters showing how pairs were resolved.
type GEDBenchRow struct {
	Size             int     `json:"size"`
	DistinctGraphs   int     `json:"distinct_graphs"`
	Tau              float64 `json:"tau"`
	CenterScanSec    float64 `json:"center_scan_seconds"`
	CenterIndexedSec float64 `json:"center_indexed_seconds"`
	CenterSpeedup    float64 `json:"center_speedup"`
	CrossScanSec     float64 `json:"cross_scan_seconds"`
	CrossDedupSec    float64 `json:"cross_dedup_seconds"`
	CrossSpeedup     float64 `json:"cross_speedup"`
	// Pipeline counters accumulated over the indexed/deduped runs.
	FilterAnswered uint64 `json:"pairs_filter_answered"`
	Verified       uint64 `json:"pairs_verified"`
	CacheHits      uint64 `json:"pairs_cache_hits"`
	StatesExpanded uint64 `json:"states_expanded"`
	// NoSearchFraction is the fraction of pairs resolved without
	// opening the A* queue: filter bounds, fingerprint cache, or index
	// triangle pruning, over all pairs the engine was asked about.
	NoSearchFraction float64 `json:"no_search_fraction"`
	// Index pruning counters for the center workload.
	IndexCandidates uint64 `json:"index_candidates"`
	IndexPruned     uint64 `json:"index_pruned_lb"`
	IndexAccepted   uint64 `json:"index_accepted_ub"`
}

// GEDBench measures the GED engine on corpus-scale similarity workloads
// (the Fig. 11b setting: perturbed clones of the query-template corpus,
// tau = 5) and cross-checks that the optimized pipeline returns exactly
// the seed results at every scale.
func GEDBench(opts Options, sizes []int) ([]GEDBenchRow, error) {
	const tau = 5
	rows := make([]GEDBenchRow, 0, len(sizes))
	for _, size := range sizes {
		set := randomDAGSet(opts.Seed, size)
		if len(set) == 0 {
			return nil, fmt.Errorf("gedbench: empty DAG set at size %d", size)
		}
		row := GEDBenchRow{Size: size, Tau: tau, DistinctGraphs: distinctStructures(set)}

		// Similarity-center workload: seed scan vs metric index.
		start := time.Now()
		scanCenter, err := simsearch.CenterScan(set, tau, opts.Parallelism)
		if err != nil {
			return nil, err
		}
		row.CenterScanSec = time.Since(start).Seconds()

		// Index construction is part of the timed cost: the seed scan
		// amortizes nothing either.
		ged.ResetCounters()
		start = time.Now()
		ix := simsearch.NewIndex(set, opts.Parallelism)
		fastCenter := ix.Center(tau, simsearch.AStarLS, opts.Parallelism)
		row.CenterIndexedSec = time.Since(start).Seconds()
		if fastCenter != scanCenter {
			return nil, fmt.Errorf("gedbench: size %d: indexed center %d != seed center %d",
				size, fastCenter, scanCenter)
		}
		ist := ix.Stats()
		row.IndexCandidates = ist.Candidates
		row.IndexPruned = ist.PrunedLB
		row.IndexAccepted = ist.AcceptedUB

		// Cross-distance workload (K-means assignment shape): raw
		// per-cell search vs fingerprint-deduped pipeline.
		targets := set
		if len(targets) > 8 {
			targets = set[:8]
		}
		start = time.Now()
		base := ged.CrossDistancesSearchOnly(set, targets, opts.Parallelism)
		row.CrossScanSec = time.Since(start).Seconds()
		start = time.Now()
		fast := ged.CrossDistancesCached(set, targets, opts.Parallelism, nil)
		row.CrossDedupSec = time.Since(start).Seconds()
		for i := range base {
			for j := range base[i] {
				if base[i][j] != fast[i][j] {
					return nil, fmt.Errorf("gedbench: size %d: cell [%d][%d] dedup %v != seed %v",
						size, i, j, fast[i][j], base[i][j])
				}
			}
		}

		c := ged.SnapshotCounters()
		row.FilterAnswered = c.FilterAnswered
		row.Verified = c.Searched
		row.CacheHits = c.CacheHits
		row.StatesExpanded = c.Expanded
		resolved := row.FilterAnswered + row.CacheHits + row.IndexPruned + row.IndexAccepted
		if total := resolved + row.Verified; total > 0 {
			row.NoSearchFraction = float64(resolved) / float64(total)
		}
		if row.CenterIndexedSec > 0 {
			row.CenterSpeedup = row.CenterScanSec / row.CenterIndexedSec
		}
		if row.CrossDedupSec > 0 {
			row.CrossSpeedup = row.CrossScanSec / row.CrossDedupSec
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// GEDBenchTable renders the benchmark rows.
func GEDBenchTable(rows []GEDBenchRow) *Table {
	t := &Table{
		Title: "GED engine: filter-and-verify vs seed pipeline (tau=5)",
		Header: []string{
			"Scale", "Distinct", "Center seed", "Center indexed", "Speedup",
			"Cross seed", "Cross dedup", "Speedup", "Filtered", "Verified", "Cached",
		},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", r.Size),
			fmt.Sprintf("%d", r.DistinctGraphs),
			fmt.Sprintf("%.3fs", r.CenterScanSec),
			fmt.Sprintf("%.3fs", r.CenterIndexedSec),
			fmt.Sprintf("%.1fx", r.CenterSpeedup),
			fmt.Sprintf("%.3fs", r.CrossScanSec),
			fmt.Sprintf("%.3fs", r.CrossDedupSec),
			fmt.Sprintf("%.1fx", r.CrossSpeedup),
			fmt.Sprintf("%d", r.FilterAnswered),
			fmt.Sprintf("%d", r.Verified),
			fmt.Sprintf("%d", r.CacheHits),
		})
	}
	return t
}

func distinctStructures(set []*dag.Graph) int {
	seen := make(map[string]bool)
	for _, g := range set {
		seen[ged.Fingerprint(g)] = true
	}
	return len(seen)
}
